// Command svmsim runs one application on the simulated software
// shared-memory cluster and reports speedup, the execution-time
// breakdown and the protocol event counters.
//
// Examples:
//
//	svmsim -app fft -protocol hlrc
//	svmsim -app barnes -protocol sc -comm B -costs B -procs 8
//	svmsim -app radix -protocol hlrc -comm W -scale large
//	svmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swsm"
	"swsm/internal/harness"
	"swsm/internal/stats"
)

func main() {
	var (
		app      = flag.String("app", "fft", "application name (see -list)")
		protocol = flag.String("protocol", "hlrc", "protocol: hlrc, sc or ideal")
		commSet  = flag.String("comm", "A", "communication parameter set: A, B, H, W, B+")
		costSet  = flag.String("costs", "O", "protocol cost set: O, H, B")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.String("scale", "base", "problem scale: tiny, base, large")
		scBlock  = flag.Int("scblock", 0, "override SC block granularity (bytes)")
		list     = flag.Bool("list", false, "list applications and exit")
		perProc  = flag.Bool("perproc", false, "print the per-processor breakdown table")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")

		traceOut    = flag.String("trace", "", "write Chrome trace_event JSON (Perfetto-loadable) to this file")
		traceJSONL  = flag.String("trace-jsonl", "", "write the event trace as compact JSONL to this file")
		traceSample = flag.Int64("trace-sample", 0, "sample the breakdown every N cycles (with tracing)")
		timelineOut = flag.String("timeline", "", "write the sampled breakdown timeline CSV to this file")
		hotK        = flag.Int("hot", 0, "print the top K hot pages/locks/barriers (requires tracing)")
	)
	flag.Parse()

	if *list {
		for _, name := range swsm.Apps() {
			info, _ := swsm.AppLookup(name)
			kind := "original"
			if info.RestructuredOf != "" {
				kind = "restructured " + info.RestructuredOf
			}
			fmt.Printf("%-16s %-30s %s\n", name, info.BaseSize, kind)
		}
		return
	}

	spec := swsm.DefaultSpec(*app, swsm.ProtocolKind(*protocol))
	spec.Procs = *procs
	spec.SCBlockOverride = *scBlock
	switch *scale {
	case "tiny":
		spec.Scale = swsm.Tiny
	case "base":
		spec.Scale = swsm.Base
	case "large":
		spec.Scale = swsm.Large
	default:
		fatalf("unknown scale %q", *scale)
	}
	lc := swsm.LayerConfig{Comm: *commSet, Costs: *costSet}
	if err := lc.Apply(&spec); err != nil {
		fatalf("%v", err)
	}
	tracing := *traceOut != "" || *traceJSONL != "" || *timelineOut != "" || *hotK > 0
	if tracing {
		spec.Trace = true
		spec.TraceSample = *traceSample
		if *timelineOut != "" && *traceSample <= 0 {
			fatalf("-timeline needs -trace-sample N")
		}
	}

	// The session runs the spec and its sequential baseline concurrently
	// (two independent simulations) and memoizes both.
	ses := swsm.NewSession(*parallel)
	start := time.Now()
	speedup, res, err := ses.Speedup(spec)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)
	seq, err := ses.SequentialBaseline(*app, spec.Scale, spec.CacheEnabled)
	if err != nil {
		fatalf("sequential baseline: %v", err)
	}

	fmt.Printf("%s on %s, %d procs, config %s (scale %s)\n",
		*app, *protocol, *procs, lc.Label(), *scale)
	fmt.Printf("  cycles:   %d (sequential %d)\n", res.Cycles, seq)
	fmt.Printf("  speedup:  %.2f\n", speedup)
	fmt.Printf("  breakdown (avg cycles/proc): %s\n", res.Stats.BreakdownString())
	total, diffPct, handlerPct := res.Stats.ProtocolPercent()
	fmt.Printf("  protocol activity: %.1f%% of time (diff %.1f%%, handler %.1f%%)\n",
		total, diffPct, handlerPct)
	fmt.Printf("  counters: %s\n", res.Stats.CounterString())
	fmt.Printf("  imbalance: data %.2fx, lock %.2fx, barrier %.2fx\n",
		res.Stats.Imbalance(stats.DataWait),
		res.Stats.Imbalance(stats.LockWait),
		res.Stats.Imbalance(stats.BarrierWait))
	if *perProc {
		fmt.Println("  per-processor breakdown:")
		fmt.Print(harness.PerProcBreakdown(res))
	}
	if tracing {
		if err := writeTraceOutputs(res, *traceOut, *traceJSONL, *timelineOut, *hotK); err != nil {
			fatalf("%v", err)
		}
	}
	st := ses.Stats()
	fmt.Printf("[%.2fs wall, parallel=%d, %d runs, %d cache hits]\n",
		elapsed.Seconds(), ses.Parallelism(), st.Runs, st.Hits+st.Waits)
}

// writeTraceOutputs serializes a traced run's observability products:
// Chrome trace, JSONL trace, timeline CSV, and a hot-object report on
// stdout.
func writeTraceOutputs(res *swsm.Result, chromePath, jsonlPath, timelinePath string, hotK int) error {
	d := res.Trace
	if d == nil {
		return fmt.Errorf("run carried no trace data")
	}
	label := fmt.Sprintf("%s/%s", res.Spec.App, res.Spec.Protocol)
	if chromePath != "" {
		if err := writeFile(chromePath, func(w *os.File) error {
			return swsm.WriteChromeTrace(w, label, d)
		}); err != nil {
			return err
		}
		fmt.Printf("  trace: %s (%d events; load in Perfetto)\n", chromePath, len(d.Events))
	}
	if jsonlPath != "" {
		if err := writeFile(jsonlPath, func(w *os.File) error {
			return swsm.WriteJSONLTrace(w, []swsm.TraceRun{{Label: label, Data: d}})
		}); err != nil {
			return err
		}
		fmt.Printf("  trace-jsonl: %s\n", jsonlPath)
	}
	if timelinePath != "" {
		if err := writeFile(timelinePath, func(w *os.File) error {
			return swsm.WriteBreakdownTimelineCSV(w, d.Samples)
		}); err != nil {
			return err
		}
		fmt.Printf("  timeline: %s (%d samples)\n", timelinePath, len(d.Samples))
	}
	if hotK > 0 && d.Hot != nil {
		fmt.Printf("  hot objects (top %d):\n", hotK)
		for _, p := range d.Hot.TopPages(hotK) {
			fmt.Printf("    page %6d: faults %d, fetches %d (wait %d cy), diffs %d (%d B), twins %d, invals %d\n",
				p.ID, p.Faults, p.Fetches, p.FetchWait, p.Diffs, p.DiffBytes, p.Twins, p.Invals)
		}
		for _, l := range d.Hot.TopLocks(hotK) {
			fmt.Printf("    lock %6d: acquires %d, wait %d cy\n", l.ID, l.Count, l.Wait)
		}
		for _, b := range d.Hot.TopBarriers(hotK) {
			fmt.Printf("    barrier %4d: episodes %d, wait %d cy\n", b.ID, b.Count, b.Wait)
		}
	}
	return nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "svmsim: "+format+"\n", args...)
	os.Exit(1)
}
