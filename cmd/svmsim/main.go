// Command svmsim runs one application on the simulated software
// shared-memory cluster and reports speedup, the execution-time
// breakdown and the protocol event counters.
//
// Examples:
//
//	svmsim -app fft -protocol hlrc
//	svmsim -app barnes -protocol sc -comm B -costs B -procs 8
//	svmsim -app radix -protocol hlrc -comm W -scale large
//	svmsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"swsm"
	"swsm/internal/harness"
	"swsm/internal/stats"
)

func main() {
	var (
		app      = flag.String("app", "fft", "application name (see -list)")
		protocol = flag.String("protocol", "hlrc", "protocol: hlrc, sc or ideal")
		commSet  = flag.String("comm", "A", "communication parameter set: A, B, H, W, B+")
		costSet  = flag.String("costs", "O", "protocol cost set: O, H, B")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.String("scale", "base", "problem scale: tiny, base, large")
		scBlock  = flag.Int("scblock", 0, "override SC block granularity (bytes)")
		list     = flag.Bool("list", false, "list applications and exit")
		perProc  = flag.Bool("perproc", false, "print the per-processor breakdown table")
	)
	flag.Parse()

	if *list {
		for _, name := range swsm.Apps() {
			info, _ := swsm.AppLookup(name)
			kind := "original"
			if info.RestructuredOf != "" {
				kind = "restructured " + info.RestructuredOf
			}
			fmt.Printf("%-16s %-30s %s\n", name, info.BaseSize, kind)
		}
		return
	}

	spec := swsm.DefaultSpec(*app, swsm.ProtocolKind(*protocol))
	spec.Procs = *procs
	spec.SCBlockOverride = *scBlock
	switch *scale {
	case "tiny":
		spec.Scale = swsm.Tiny
	case "base":
		spec.Scale = swsm.Base
	case "large":
		spec.Scale = swsm.Large
	default:
		fatalf("unknown scale %q", *scale)
	}
	lc := swsm.LayerConfig{Comm: *commSet, Costs: *costSet}
	if err := lc.Apply(&spec); err != nil {
		fatalf("%v", err)
	}

	seq, err := swsm.SequentialBaseline(*app, spec.Scale)
	if err != nil {
		fatalf("sequential baseline: %v", err)
	}
	res, err := swsm.Run(spec)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%s on %s, %d procs, config %s (scale %s)\n",
		*app, *protocol, *procs, lc.Label(), *scale)
	fmt.Printf("  cycles:   %d (sequential %d)\n", res.Cycles, seq)
	fmt.Printf("  speedup:  %.2f\n", float64(seq)/float64(res.Cycles))
	fmt.Printf("  breakdown (avg cycles/proc): %s\n", res.Stats.BreakdownString())
	total, diffPct, handlerPct := res.Stats.ProtocolPercent()
	fmt.Printf("  protocol activity: %.1f%% of time (diff %.1f%%, handler %.1f%%)\n",
		total, diffPct, handlerPct)
	fmt.Printf("  counters: %s\n", res.Stats.CounterString())
	fmt.Printf("  imbalance: data %.2fx, lock %.2fx, barrier %.2fx\n",
		res.Stats.Imbalance(stats.DataWait),
		res.Stats.Imbalance(stats.LockWait),
		res.Stats.Imbalance(stats.BarrierWait))
	if *perProc {
		fmt.Println("  per-processor breakdown:")
		fmt.Print(harness.PerProcBreakdown(res))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "svmsim: "+format+"\n", args...)
	os.Exit(1)
}
