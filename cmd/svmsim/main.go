// Command svmsim runs one application on the simulated software
// shared-memory cluster and reports speedup, the execution-time
// breakdown and the protocol event counters.
//
// Examples:
//
//	svmsim -app fft -protocol hlrc
//	svmsim -app barnes -protocol sc -comm B -costs B -procs 8
//	svmsim -app radix -protocol hlrc -comm W -scale large
//	svmsim -app fft -protocol hlrc -check
//	svmsim -app fft -protocol hlrc -json
//	svmsim -app fft -protocol hlrc -server http://127.0.0.1:7099
//	svmsim -litmus 32 -litmus-seed 1 -procs 4 -scale tiny
//	svmsim -app ocean-rowwise -hetero cpu4 -placement adaptive
//	svmsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"swsm"
	"swsm/internal/harness"
	"swsm/internal/server/api"
	"swsm/internal/server/client"
	"swsm/internal/stats"
)

func main() {
	var (
		app      = flag.String("app", "fft", "application name (see -list)")
		protocol = flag.String("protocol", "hlrc", "protocol: hlrc, sc or ideal")
		commSet  = flag.String("comm", "A", "communication parameter set: A, B, H, W, B+")
		costSet  = flag.String("costs", "O", "protocol cost set: O, H, B")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.String("scale", "base", "problem scale: tiny, base, large")
		scBlock  = flag.Int("scblock", 0, "override SC block granularity (bytes)")
		list     = flag.Bool("list", false, "list applications and exit")
		perProc  = flag.Bool("perproc", false, "print the per-processor breakdown table")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		jsonOut  = flag.Bool("json", false, "print the result as one machine-readable JSON row")
		server   = flag.String("server", "", "execute on a running svmd daemon at this URL instead of in-process")

		traceOut    = flag.String("trace", "", "write Chrome trace_event JSON (Perfetto-loadable) to this file")
		traceJSONL  = flag.String("trace-jsonl", "", "write the event trace as compact JSONL to this file")
		traceSample = flag.Int64("trace-sample", 0, "sample the breakdown every N cycles (with tracing)")
		timelineOut = flag.String("timeline", "", "write the sampled breakdown timeline CSV to this file")
		hotK        = flag.Int("hot", 0, "print the top K hot pages/locks/barriers (requires tracing)")
		stitchedOut = flag.String("stitched-trace", "", "with -server: save the job's stitched service+sim Perfetto timeline to this file")

		check      = flag.Bool("check", false, "run the consistency conformance checker over the run")
		litmusN    = flag.Int("litmus", 0, "run a litmus ladder of N seeds across hlrc/lrc/sc instead of -app")
		litmusSeed = flag.Uint64("litmus-seed", 1, "first seed of the -litmus ladder")

		faultSeed = flag.Uint64("fault-seed", 1, "seed for deterministic fault injection")
		dropPct   = flag.Float64("drop", 0, "message drop rate in percent (enables the reliable transport)")
		dupPct    = flag.Float64("dup", 0, "message duplication rate in percent")
		delayPct  = flag.Float64("delay", 0, "message extra-delay rate in percent")
		delayMax  = flag.Int64("delay-max", 0, "max injected extra delay in cycles (default 10000)")
		pauseSpec = flag.String("pause", "", "periodic node pause windows as EVERY:FOR[:NODEMASK] cycles")
		reliable  = flag.Bool("reliable", false, "route through the reliable transport even with no faults")

		heteroSkew = flag.String("hetero", "uniform", "heterogeneity preset: "+strings.Join(swsm.HeteroPresetNames(), ", "))
		placement  = flag.String("placement", "app", "page-home placement policy: "+strings.Join(swsm.HeteroPlacementNames(), ", "))
	)
	flag.Parse()

	if *list {
		for _, name := range swsm.Apps() {
			info, _ := swsm.AppLookup(name)
			kind := "original"
			if info.RestructuredOf != "" {
				kind = "restructured " + info.RestructuredOf
			}
			fmt.Printf("%-16s %-30s %s\n", name, info.BaseSize, kind)
		}
		return
	}

	var sc swsm.Scale
	switch *scale {
	case "tiny":
		sc = swsm.Tiny
	case "base":
		sc = swsm.Base
	case "large":
		sc = swsm.Large
	default:
		fatalf("unknown scale %q", *scale)
	}
	fs := swsm.FaultSpec{
		Seed:     *faultSeed,
		DropPPM:  pctToPPM(*dropPct, "drop"),
		DupPPM:   pctToPPM(*dupPct, "dup"),
		DelayPPM: pctToPPM(*delayPct, "delay"),
		DelayMax: *delayMax,
		Reliable: *reliable,
	}
	if *pauseSpec != "" {
		every, dur, mask, err := parsePause(*pauseSpec)
		if err != nil {
			fatalf("%v", err)
		}
		fs.PauseEvery, fs.PauseFor, fs.PauseMask = every, dur, mask
	}
	if err := fs.Validate(); err != nil {
		fatalf("%v", err)
	}

	if *litmusN > 0 {
		if *server != "" {
			fatalf("-litmus runs locally (the ladder needs in-process shrinking); drop -server")
		}
		runLitmus(*parallel, *litmusSeed, *litmusN, *procs, sc, fs)
		return
	}

	spec := swsm.DefaultSpec(*app, swsm.ProtocolKind(*protocol))
	spec.Procs = *procs
	spec.SCBlockOverride = *scBlock
	spec.Scale = sc
	spec.Check = *check
	lc := swsm.LayerConfig{Comm: *commSet, Costs: *costSet}
	if err := lc.Apply(&spec); err != nil {
		fatalf("%v", err)
	}
	spec.Fault = fs
	hs, err := swsm.ComposeHeteroSpec(*heteroSkew, *placement)
	if err != nil {
		fatalf("%v", err)
	}
	spec.Hetero = hs

	tracing := *traceOut != "" || *traceJSONL != "" || *timelineOut != "" || *hotK > 0
	if tracing {
		spec.Trace = true
		spec.TraceSample = *traceSample
		if *timelineOut != "" && *traceSample <= 0 {
			fatalf("-timeline needs -trace-sample N")
		}
	}

	if *server != "" {
		if tracing {
			fatalf("trace capture is an in-process artifact; drop -server to trace (or use -stitched-trace)")
		}
		if *perProc {
			fatalf("-perproc needs in-process statistics; drop -server")
		}
		runRemote(*server, spec, *jsonOut, *stitchedOut)
		return
	}
	if *stitchedOut != "" {
		fatalf("-stitched-trace fetches a daemon-side timeline; it needs -server (use -trace locally)")
	}

	// The session runs the spec and its sequential baseline concurrently
	// (two independent simulations) and memoizes both.
	ses := swsm.NewSession(*parallel)
	start := time.Now()
	speedup, res, err := ses.Speedup(spec)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)
	seq, err := ses.SequentialBaseline(*app, spec.Scale, spec.CacheEnabled)
	if err != nil {
		fatalf("sequential baseline: %v", err)
	}

	if *jsonOut {
		row := swsm.NewRunRow(res).WithSpeedup(seq)
		if err := swsm.WriteRunRowJSON(os.Stdout, row); err != nil {
			fatalf("%v", err)
		}
		if tracing {
			// Keep stdout pure JSON; file notices and hot-object reports go
			// to stderr.
			if err := writeTraceOutputs(os.Stderr, res, *traceOut, *traceJSONL, *timelineOut, *hotK); err != nil {
				fatalf("%v", err)
			}
		}
		return
	}

	fmt.Printf("%s on %s, %d procs, config %s (scale %s)\n",
		*app, *protocol, *procs, lc.Label(), *scale)
	if spec.Fault.Enabled() {
		fmt.Printf("  fault plan: seed %d, drop %.2f%%, dup %.2f%%, delay %.2f%%, pause %d/%d\n",
			spec.Fault.Seed, *dropPct, *dupPct, *delayPct,
			spec.Fault.PauseFor, spec.Fault.PauseEvery)
	}
	if spec.Hetero.Enabled() {
		fmt.Printf("  hetero: skew %s, placement %s\n", *heteroSkew, *placement)
		if spec.Hetero.Placement == swsm.PlaceAdaptive {
			fmt.Printf("    pages rehomed %d, demoted %d\n",
				res.Stats.TotalCount(stats.PagesRehomed),
				res.Stats.TotalCount(stats.PagesDemoted))
		}
	}
	fmt.Printf("  cycles:   %d (sequential %d)\n", res.Cycles, seq)
	fmt.Printf("  speedup:  %.2f\n", speedup)
	fmt.Printf("  breakdown (avg cycles/proc): %s\n", res.Stats.BreakdownString())
	total, diffPct, handlerPct := res.Stats.ProtocolPercent()
	fmt.Printf("  protocol activity: %.1f%% of time (diff %.1f%%, handler %.1f%%)\n",
		total, diffPct, handlerPct)
	fmt.Printf("  counters: %s\n", res.Stats.CounterString())
	if res.Consistency != nil {
		fmt.Printf("  consistency: %s\n", res.Consistency)
	}
	fmt.Printf("  imbalance: data %.2fx, lock %.2fx, barrier %.2fx\n",
		res.Stats.Imbalance(stats.DataWait),
		res.Stats.Imbalance(stats.LockWait),
		res.Stats.Imbalance(stats.BarrierWait))
	if *perProc {
		fmt.Println("  per-processor breakdown:")
		fmt.Print(harness.PerProcBreakdown(res))
	}
	if tracing {
		if err := writeTraceOutputs(os.Stdout, res, *traceOut, *traceJSONL, *timelineOut, *hotK); err != nil {
			fatalf("%v", err)
		}
	}
	st := ses.Stats()
	fmt.Printf("[%.2fs wall, parallel=%d, %d runs, %d cache hits]\n",
		elapsed.Seconds(), ses.Parallelism(), st.Runs, st.Hits+st.Waits)
}

// runLitmus executes the litmus ladder: n seeds x {hlrc, lrc, sc} with
// the conformance checker on; with -drop set, a faulted column runs next
// to the clean one.  Every violation is delta-debugged to a minimal
// reproducer and the command exits nonzero.
func runLitmus(parallel int, baseSeed uint64, n, procs int, scale swsm.Scale, fs swsm.FaultSpec) {
	protos := []swsm.ProtocolKind{swsm.HLRC, swsm.LRC, swsm.SC}
	var drops []int64
	if fs.DropPPM > 0 {
		drops = []int64{0, fs.DropPPM}
	}
	ses := swsm.NewSession(parallel)
	start := time.Now()
	points, err := ses.LitmusSweep(baseSeed, n, protos, scale, procs, drops)
	if err != nil {
		fatalf("litmus sweep: %v", err)
	}
	fmt.Printf("Litmus ladder: seeds %d..%d x {hlrc, lrc, sc}, %d procs\n",
		baseSeed, baseSeed+uint64(n)-1, procs)
	fmt.Print(swsm.FormatLitmus(points))
	bad := 0
	for _, p := range points {
		if p.Conforms() {
			continue
		}
		bad++
		spec := swsm.LitmusSpec(p.Seed, p.Proto, scale, procs)
		if p.DropPPM > 0 {
			spec = swsm.FaultedSpec(spec, p.Seed, p.DropPPM)
		}
		prog := swsm.LitmusGenerate(p.Seed, procs, scale)
		if min := swsm.ShrinkLitmus(spec, prog, nil); min != nil {
			fmt.Printf("minimal reproducer for seed %d on %s (%d of %d ops):\n%s\n",
				p.Seed, p.Proto, min.Ops(), prog.Ops(), min)
		}
	}
	st := ses.Stats()
	fmt.Printf("[%.2fs wall, parallel=%d, %d runs, %d cache hits]\n",
		time.Since(start).Seconds(), ses.Parallelism(), st.Runs, st.Hits+st.Waits)
	if bad > 0 {
		fatalf("%d of %d litmus points violated their consistency model", bad, len(points))
	}
	fmt.Printf("all %d points conform\n", len(points))
}

// runRemote executes the spec on an svmd daemon: the service resolves
// it through its persistent store and memoized scheduler (always with
// the sequential-baseline speedup) and returns the same RunRow the
// local -json path prints.  With stitchedPath the job's stitched
// service+sim Perfetto timeline is fetched afterwards.
func runRemote(baseURL string, spec swsm.RunSpec, jsonOut bool, stitchedPath string) {
	start := time.Now()
	c := client.New(baseURL)
	st, err := c.Run(context.Background(), api.RunRequest{Spec: spec, Speedup: true})
	if err != nil {
		fatalf("%v", err)
	}
	if st.State != api.StateDone || st.Row == nil {
		fatalf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	if stitchedPath != "" {
		if err := writeFile(stitchedPath, func(w *os.File) error {
			return c.Trace(context.Background(), st.ID, w)
		}); err != nil {
			fatalf("stitched trace: %v", err)
		}
		// Keep stdout pure JSON under -json; notices go to stderr.
		fmt.Fprintf(os.Stderr, "  stitched-trace: %s (job %s; load in Perfetto)\n", stitchedPath, st.ID)
	}
	row := *st.Row
	if jsonOut {
		if err := swsm.WriteRunRowJSON(os.Stdout, row); err != nil {
			fatalf("%v", err)
		}
		return
	}
	source := "simulated remotely"
	if st.Cached {
		source = "served from result store"
	}
	fmt.Printf("%s on %s, %d procs (svmd %s, %s)\n",
		spec.App, spec.Protocol, spec.Procs, baseURL, source)
	fmt.Printf("  cycles:   %d (sequential %d)\n", row.Cycles, row.SeqCycles)
	fmt.Printf("  speedup:  %.2f\n", row.Speedup)
	fmt.Printf("  breakdown (avg cycles/proc):")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Printf(" %s %.0f", c, row.Breakdown[c.String()])
	}
	fmt.Println()
	fmt.Printf("  protocol activity: %.1f%% of time (diff %.1f%%, handler %.1f%%)\n",
		row.ProtocolPct.Total, row.ProtocolPct.Diff, row.ProtocolPct.Handler)
	if row.Consistency != nil {
		fmt.Printf("  consistency: %s\n", row.Consistency)
	}
	fmt.Printf("[%.2fs wall, job %s, key %s]\n",
		time.Since(start).Seconds(), st.ID, row.Key)
}

// writeTraceOutputs serializes a traced run's observability products:
// Chrome trace, JSONL trace, timeline CSV, and a hot-object report on
// the notice writer.
func writeTraceOutputs(notices io.Writer, res *swsm.Result, chromePath, jsonlPath, timelinePath string, hotK int) error {
	d := res.Trace
	if d == nil {
		return fmt.Errorf("run carried no trace data")
	}
	label := fmt.Sprintf("%s/%s", res.Spec.App, res.Spec.Protocol)
	if chromePath != "" {
		if err := writeFile(chromePath, func(w *os.File) error {
			return swsm.WriteChromeTrace(w, label, d)
		}); err != nil {
			return err
		}
		fmt.Fprintf(notices, "  trace: %s (%d events; load in Perfetto)\n", chromePath, len(d.Events))
	}
	if jsonlPath != "" {
		if err := writeFile(jsonlPath, func(w *os.File) error {
			return swsm.WriteJSONLTrace(w, []swsm.TraceRun{{Label: label, Data: d}})
		}); err != nil {
			return err
		}
		fmt.Fprintf(notices, "  trace-jsonl: %s\n", jsonlPath)
	}
	if timelinePath != "" {
		if err := writeFile(timelinePath, func(w *os.File) error {
			return swsm.WriteBreakdownTimelineCSV(w, d.Samples)
		}); err != nil {
			return err
		}
		fmt.Fprintf(notices, "  timeline: %s (%d samples)\n", timelinePath, len(d.Samples))
	}
	if hotK > 0 && d.Hot != nil {
		fmt.Fprintf(notices, "  hot objects (top %d):\n", hotK)
		for _, p := range d.Hot.TopPages(hotK) {
			fmt.Fprintf(notices, "    page %6d: faults %d, fetches %d (wait %d cy), diffs %d (%d B), twins %d, invals %d\n",
				p.ID, p.Faults, p.Fetches, p.FetchWait, p.Diffs, p.DiffBytes, p.Twins, p.Invals)
		}
		for _, l := range d.Hot.TopLocks(hotK) {
			fmt.Fprintf(notices, "    lock %6d: acquires %d, wait %d cy\n", l.ID, l.Count, l.Wait)
		}
		for _, b := range d.Hot.TopBarriers(hotK) {
			fmt.Fprintf(notices, "    barrier %4d: episodes %d, wait %d cy\n", b.ID, b.Count, b.Wait)
		}
	}
	return nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pctToPPM converts a percentage flag to the fault plane's fixed-point
// parts-per-million rate.
func pctToPPM(pct float64, name string) int64 {
	if pct < 0 || pct > 100 {
		fatalf("-%s %.2f outside [0, 100]", name, pct)
	}
	return int64(pct * 1e4)
}

// parsePause decodes EVERY:FOR[:NODEMASK] (cycles, cycles, hex or
// decimal bitmask of pausing nodes; omitted mask = all nodes).
func parsePause(s string) (every, dur int64, mask uint64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("-pause wants EVERY:FOR[:NODEMASK], got %q", s)
	}
	if every, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("-pause period: %v", err)
	}
	if dur, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("-pause duration: %v", err)
	}
	if len(parts) == 3 {
		if mask, err = strconv.ParseUint(parts[2], 0, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("-pause node mask: %v", err)
		}
	}
	return every, dur, mask, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "svmsim: "+format+"\n", args...)
	os.Exit(1)
}
