// Command svmbench regenerates the paper's evaluation: every table
// (1-5) and figure (3-5).
//
// All measurement sweeps run through one shared session: independent
// runs fan out over -parallel workers, and every run is memoized by its
// spec, so configurations shared between figures/tables (sequential
// baselines, the AO base system...) execute exactly once.  Output is
// deterministic regardless of -parallel: results are collected by
// index, never by completion order.
//
// Examples:
//
//	svmbench -table 4
//	svmbench -figure 3 -apps fft,lu -parallel 8
//	svmbench -figure 3 -apps fft -json > fig3.json
//	svmbench -figure 3 -server http://127.0.0.1:7099
//	svmbench -hetero -apps lu,ocean-rowwise -csv hetero.csv
//	svmbench -all > results.txt
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"swsm"
	"swsm/internal/harness"
	"swsm/internal/server/api"
	"swsm/internal/server/client"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (1-5)")
		figure   = flag.Int("figure", 0, "regenerate figure N (3-5)")
		all      = flag.Bool("all", false, "regenerate everything")
		validate = flag.Bool("validate", false, "run the simulator-validation microbenchmarks (Appendix)")
		appsCS   = flag.String("apps", "", "comma-separated application subset (default: all)")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.String("scale", "base", "problem scale: tiny, base, large")
		csvPath  = flag.String("csv", "", "also write figure data as CSV to this file")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		jsonOut  = flag.Bool("json", false, "with -figure 3: print the grid as machine-readable JSON rows instead of tables")
		server   = flag.String("server", "", "with -figure 3: resolve the grid through a svmd daemon at this URL")

		traceOut    = flag.String("trace", "", "write a multi-run Chrome trace of the figure-3 config ladder to this file")
		traceSample = flag.Int64("trace-sample", 0, "sample the breakdown every N cycles in traced runs")
		hotK        = flag.Int("hot", 0, "print the top K hot pages/locks/barriers per traced run")

		degradation = flag.Bool("degradation", false, "run the slowdown-vs-drop-rate fault sweep")
		dropsCS     = flag.String("drops", "0.5,1,2,5", "comma-separated drop rates in percent for -degradation")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for the -degradation fault plans")

		litmusN     = flag.Int("litmus", 0, "run the litmus conformance sweep with N seeds across hlrc/lrc/sc")
		litmusSeed  = flag.Uint64("litmus-seed", 1, "first seed of the -litmus sweep")
		litmusDrops = flag.String("litmus-drops", "", "comma-separated drop percents for a faulted -litmus column (empty = clean fabric only)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")

		benchJSON     = flag.String("bench-json", "", "run the simulator self-benchmarks and write BENCH_<rev>.json into this directory (\"-\" = stdout)")
		benchBaseline = flag.String("bench-baseline", "", "with -bench-json: compare against this baseline file and exit nonzero on >10% cycles/sec regression or any allocs/op increase")

		exploreApp    = flag.String("explore", "", "auto-tune APP: search the configuration space for the Pareto frontier of speedup vs. simulated cost")
		exploreBudget = flag.Int64("explore-budget", 0, "simulated-cycle budget for fresh (uncached) simulations; 0 runs the search to convergence")
		exploreSeed   = flag.Uint64("explore-seed", 1, "seed of the deterministic search")
		explorePoints = flag.Int("explore-points", 0, "Latin-hypercube seed-set size (0 = default 16)")
		exploreWidth  = flag.Int("explore-width", 0, "evaluation batch width (0 = default 8)")
		exploreProtos = flag.String("explore-protocols", "", "comma-separated protocol subset to search (default hlrc,lrc,sc)")
		exploreProcs  = flag.String("explore-procs", "", "comma-separated processor counts to search (default 4,8,16,32)")
		exploreStore  = flag.String("explore-store", "", "local mode: persistent result store directory — re-running the same search against it costs zero new simulations")

		hetero     = flag.Bool("hetero", false, "run the heterogeneity sweep: skew x placement x protocol with protocol-verdict flips")
		skewsCS    = flag.String("skews", "uniform,cpu4,cpu8,accel4,accel8,link4,link8,mixed", "comma-separated skew presets for -hetero")
		placements = flag.String("placements", "rr,adaptive", "comma-separated placement policies for -hetero")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchBaseline); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *benchBaseline != "" {
		fatalf("-bench-baseline requires -bench-json")
	}

	sc := swsm.Base
	switch *scale {
	case "tiny":
		sc = swsm.Tiny
	case "base":
		sc = swsm.Base
	case "large":
		sc = swsm.Large
	default:
		fatalf("unknown scale %q", *scale)
	}

	var sel []string
	if *appsCS == "" {
		sel = swsm.Apps()
	} else {
		sel = strings.Split(*appsCS, ",")
	}

	ses := swsm.NewSession(*parallel)

	if *exploreApp != "" {
		err := runExplore(ses, exploreOpts{
			app: *exploreApp, scale: sc,
			budget: *exploreBudget, seed: *exploreSeed,
			points: *explorePoints, width: *exploreWidth,
			protocols: *exploreProtos, procs: *exploreProcs,
			storeDir: *exploreStore, serverURL: *server,
			jsonOut: *jsonOut, csvPath: *csvPath,
		})
		if err != nil {
			fatalf("explore: %v", err)
		}
		return
	}

	if *server != "" {
		if *figure != 3 || *table != 0 || *all {
			fatalf("-server supports exactly -figure 3 (the speedup grid); run other sweeps locally")
		}
		if err := runFigure3Remote(*server, sel, sc, *procs, *jsonOut, *parallel); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *jsonOut {
		if *figure != 3 {
			fatalf("-json renders the -figure 3 grid; combine them")
		}
		if err := runFigure3JSON(ses, sel, sc, *procs); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *all {
		for t := 1; t <= 5; t++ {
			runTable(ses, t, sc, *procs)
		}
		for f := 3; f <= 5; f++ {
			runFigure(ses, f, sel, sc, *procs)
		}
		return
	}
	if *table != 0 {
		runTable(ses, *table, sc, *procs)
	}
	if *figure != 0 {
		runFigure(ses, *figure, sel, sc, *procs)
		if *csvPath != "" {
			// The shared session already cached every run of the figure,
			// so the CSV export re-assembles it entirely from cache.
			if err := writeCSV(ses, *figure, sel, sc, *procs, *csvPath); err != nil {
				fatalf("csv: %v", err)
			}
			fmt.Println("wrote", *csvPath)
		}
	}
	if *traceOut != "" || *hotK > 0 {
		sweep(ses, "trace", func() {
			if err := runTraced(ses, sel, sc, *procs, *traceOut, *traceSample, *hotK); err != nil {
				fatalf("trace: %v", err)
			}
		})
	}
	if *degradation {
		sweep(ses, "degradation", func() {
			if err := runDegradation(ses, sel, sc, *procs, *faultSeed, *dropsCS, *csvPath); err != nil {
				fatalf("degradation: %v", err)
			}
		})
	}
	if *litmusN > 0 {
		sweep(ses, "litmus", func() {
			if err := runLitmus(ses, sc, *procs, *litmusSeed, *litmusN, *litmusDrops, *csvPath); err != nil {
				fatalf("litmus: %v", err)
			}
		})
	}
	if *hetero {
		sweep(ses, "hetero", func() {
			if err := runHetero(ses, sel, sc, *procs, *skewsCS, *placements, *csvPath); err != nil {
				fatalf("hetero: %v", err)
			}
		})
	}
	if *validate {
		res, err := harness.ValidateAll()
		if err != nil {
			fatalf("validate: %v", err)
		}
		fmt.Println("Simulator validation microbenchmarks (achievable parameters):")
		for _, r := range res {
			fmt.Printf("  %-24s %8d cycles (%.1f us @200MHz)\n", r.Name, r.Cycles, float64(r.Cycles)/200)
		}
		return
	}
	if *table == 0 && *figure == 0 && *traceOut == "" && *hotK == 0 && !*degradation && *litmusN == 0 && !*hetero {
		flag.Usage()
	}
}

// figureRow labels one cell of the Figure-3 grid for machine-readable
// output: "ideal" or "<protocol>/<config>" plus the full result row.
type figureRow struct {
	App   string      `json:"app"`
	Label string      `json:"label"`
	Row   swsm.RunRow `json:"row"`
}

// figure3Rows expands the grid for the selected apps and pairs each
// spec with its label, in deterministic output order.
func figure3Rows(sel []string, scale swsm.Scale, procs int) ([]figureRow, []swsm.RunSpec, error) {
	var rows []figureRow
	var specs []swsm.RunSpec
	for _, app := range sel {
		ss, labels, err := harness.Figure3Specs(app, scale, procs, harness.Figure3Configs)
		if err != nil {
			return nil, nil, err
		}
		for i := range ss {
			rows = append(rows, figureRow{App: app, Label: labels[i]})
			specs = append(specs, ss[i])
		}
	}
	return rows, specs, nil
}

// runFigure3JSON runs the grid locally through the shared session and
// prints it as JSON rows (speedups against each app's sequential
// baseline included) — the same shape svmd returns remotely.
func runFigure3JSON(ses *swsm.Session, sel []string, scale swsm.Scale, procs int) error {
	rows, specs, err := figure3Rows(sel, scale, procs)
	if err != nil {
		return err
	}
	results, err := ses.RunAll(specs)
	if err != nil {
		return err
	}
	seq := map[string]int64{}
	for i := range rows {
		base, ok := seq[rows[i].App]
		if !ok {
			if base, err = ses.SequentialBaseline(rows[i].App, scale, true); err != nil {
				return err
			}
			seq[rows[i].App] = base
		}
		rows[i].Row = swsm.NewRunRow(results[i]).WithSpeedup(base)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// runFigure3Remote resolves the grid through a running svmd daemon:
// every point is submitted with speedup resolution and bounded client
// fan-out, so warm daemons answer the whole figure from their result
// store without simulating.  Points are submitted individually (not as
// one sweep) so a grid larger than the daemon's admission queue
// degrades to backoff-and-retry instead of rejection.
func runFigure3Remote(baseURL string, sel []string, scale swsm.Scale, procs int, jsonOut bool, parallel int) error {
	rows, specs, err := figure3Rows(sel, scale, procs)
	if err != nil {
		return err
	}
	if parallel <= 0 {
		parallel = 4
	}
	c := client.New(baseURL)
	start := time.Now()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallel)
		mu       sync.Mutex
		firstErr error
		cached   int
	)
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			st, err := c.Run(context.Background(), api.RunRequest{Spec: specs[i], Speedup: true})
			mu.Lock()
			defer mu.Unlock()
			if err == nil && (st.State != api.StateDone || st.Row == nil) {
				err = fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s %s: %w", rows[i].App, rows[i].Label, err)
				}
				return
			}
			rows[i].Row = *st.Row
			if st.Cached {
				cached++
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	fmt.Println("Figure 3: speedups across layer configurations (via svmd)")
	for _, app := range sel {
		bar := &harness.AppBar{App: app, HLRC: map[string]float64{}, SC: map[string]float64{}}
		for _, r := range rows {
			if r.App != app {
				continue
			}
			switch {
			case r.Label == "ideal":
				bar.Ideal = r.Row.Speedup
			case strings.HasPrefix(r.Label, "hlrc/"):
				bar.HLRC[strings.TrimPrefix(r.Label, "hlrc/")] = r.Row.Speedup
			case strings.HasPrefix(r.Label, "sc/"):
				bar.SC[strings.TrimPrefix(r.Label, "sc/")] = r.Row.Speedup
			}
		}
		fmt.Print(swsm.FormatFigure3(bar, swsm.Figure3Configs))
	}
	fmt.Printf("[remote: %.2fs wall, %d points, %d served from the daemon's result store]\n",
		time.Since(start).Seconds(), len(rows), cached)
	return nil
}

// runLitmus sweeps the litmus ladder (n seeds x every real protocol,
// optionally with a faulted drop-rate column) with the conformance
// checker on, printing per-point coverage and failing on any violation.
func runLitmus(ses *swsm.Session, scale swsm.Scale, procs int, seed uint64, n int, dropsCS, csvPath string) error {
	var dropPPMs []int64
	if dropsCS != "" {
		for _, s := range strings.Split(dropsCS, ",") {
			pct, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("-litmus-drops %q: %v", dropsCS, err)
			}
			if pct < 0 || pct > 100 {
				return fmt.Errorf("-litmus-drops rate %.2f outside [0, 100]", pct)
			}
			dropPPMs = append(dropPPMs, int64(pct*1e4))
		}
	}
	protos := []swsm.ProtocolKind{swsm.HLRC, swsm.LRC, swsm.SC}
	points, err := ses.LitmusSweep(seed, n, protos, scale, procs, dropPPMs)
	if err != nil {
		return err
	}
	fmt.Printf("Litmus conformance sweep: seeds %d..%d x {hlrc, lrc, sc}, %d procs (checker on)\n",
		seed, seed+uint64(n)-1, procs)
	fmt.Print(swsm.FormatLitmus(points))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := swsm.WriteLitmusCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", csvPath)
	}
	bad := 0
	for _, p := range points {
		if !p.Conforms() {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d points violated their consistency model", bad, len(points))
	}
	fmt.Printf("all %d points conform\n", len(points))
	return nil
}

// runHetero sweeps machine skew x placement x protocol through the
// shared session and prints the speedup grid plus the protocol-verdict
// flips — the configurations where the protocol that wins on the
// paper's uniform cluster loses under skew.
func runHetero(ses *swsm.Session, sel []string, scale swsm.Scale, procs int, skewsCS, placementsCS, csvPath string) error {
	skews := splitList(skewsCS)
	placements := splitList(placementsCS)
	protos := []swsm.ProtocolKind{swsm.HLRC, swsm.SC}
	points, err := ses.HeterogeneitySweep(sel, protos, scale, procs, skews, placements)
	if err != nil {
		return err
	}
	fmt.Printf("Heterogeneity sweep: skew x placement x {hlrc, sc}, %d procs\n", procs)
	fmt.Print(swsm.FormatHeterogeneity(points))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := swsm.WriteHeterogeneityCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", csvPath)
	}
	return nil
}

// splitList splits a comma-separated flag into trimmed entries.
func splitList(cs string) []string {
	var out []string
	for _, s := range strings.Split(cs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// runDegradation sweeps drop rate x app x protocol through the shared
// session, printing the slowdown table (and optionally its CSV).  Each
// faulted run re-verifies the application's answer, so completing the
// sweep certifies correctness under every injected fault rate.
func runDegradation(ses *swsm.Session, sel []string, scale swsm.Scale, procs int, seed uint64, dropsCS, csvPath string) error {
	var dropPPMs []int64
	for _, s := range strings.Split(dropsCS, ",") {
		pct, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("-drops %q: %v", dropsCS, err)
		}
		if pct < 0 || pct > 100 {
			return fmt.Errorf("-drops rate %.2f outside [0, 100]", pct)
		}
		dropPPMs = append(dropPPMs, int64(pct*1e4))
	}
	protos := []swsm.ProtocolKind{swsm.HLRC, swsm.SC}
	points, err := ses.DegradationSweep(sel, protos, scale, procs, seed, dropPPMs)
	if err != nil {
		return err
	}
	fmt.Printf("Degradation sweep: slowdown vs drop rate (seed %d, all answers verified)\n", seed)
	fmt.Print(swsm.FormatDegradation(points))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := swsm.WriteDegradationCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", csvPath)
	}
	return nil
}

// runTraced re-runs the figure-3 configuration ladder for each selected
// application with tracing enabled and writes every run into one
// multi-run Chrome trace (one Perfetto process per app/config pair).
// Traced specs are memoized separately from their untraced twins, so
// this never contaminates figure results.
func runTraced(ses *swsm.Session, sel []string, scale swsm.Scale, procs int, path string, sample int64, hotK int) error {
	var runs []swsm.TraceRun
	for _, app := range sel {
		specs, labels, err := swsm.TracedConfigSpecs(app, scale, procs, swsm.Figure3Configs, sample)
		if err != nil {
			return err
		}
		results, err := ses.RunAll(specs)
		if err != nil {
			return err
		}
		for i := range labels {
			labels[i] = app + "/" + labels[i]
		}
		runs = append(runs, swsm.TraceRuns(labels, results)...)
	}
	if hotK > 0 {
		for _, r := range runs {
			if r.Data.Hot == nil {
				continue
			}
			fmt.Printf("%s hot objects (top %d):\n", r.Label, hotK)
			for _, p := range r.Data.Hot.TopPages(hotK) {
				fmt.Printf("  page %6d: fetches %d (wait %d cy), diffs %d (%d B)\n",
					p.ID, p.Fetches, p.FetchWait, p.Diffs, p.DiffBytes)
			}
			for _, l := range r.Data.Hot.TopLocks(hotK) {
				fmt.Printf("  lock %6d: acquires %d, wait %d cy\n", l.ID, l.Count, l.Wait)
			}
			for _, b := range r.Data.Hot.TopBarriers(hotK) {
				fmt.Printf("  barrier %4d: episodes %d, wait %d cy\n", b.ID, b.Count, b.Wait)
			}
		}
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := swsm.WriteChromeTraceMulti(f, runs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d traced runs)\n", path, len(runs))
	}
	return nil
}

// sweep times f and prints the one-line wall-clock + cache summary the
// session accumulated during it (skipped for static tables that run
// nothing).
func sweep(ses *swsm.Session, label string, f func()) {
	before := ses.Stats()
	start := time.Now()
	f()
	elapsed := time.Since(start)
	st := ses.Stats()
	runs := st.Runs - before.Runs
	hits := (st.Hits + st.Waits) - (before.Hits + before.Waits)
	if runs+hits == 0 {
		return
	}
	fmt.Printf("[%s: %.2fs wall, parallel=%d, %d runs, %d cache hits]\n",
		label, elapsed.Seconds(), ses.Parallelism(), runs, hits)
}

func runTable(ses *swsm.Session, n int, scale swsm.Scale, procs int) {
	sweep(ses, fmt.Sprintf("table %d", n), func() {
		switch n {
		case 1:
			fmt.Println("Table 1: applications and problem sizes")
			fmt.Print(swsm.Table1())
		case 2:
			fmt.Println("Table 2: communication parameter sets")
			fmt.Print(swsm.Table2())
		case 3:
			fmt.Println("Table 3: protocol cost sets")
			fmt.Print(swsm.Table3())
		case 4:
			fmt.Println("Table 4: % time in protocol activity (HLRC, base config)")
			rows, err := ses.Table4(scale, procs)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(swsm.FormatTable4(rows))
		case 5:
			fmt.Println("Table 5: per-application layer-importance summary (HLRC)")
			rows, err := ses.Table5(scale, procs)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(swsm.FormatTable5(rows))
		default:
			fatalf("no table %d (have 1-5)", n)
		}
	})
	fmt.Println()
}

func runFigure(ses *swsm.Session, n int, sel []string, scale swsm.Scale, procs int) {
	sweep(ses, fmt.Sprintf("figure %d", n), func() {
		switch n {
		case 3:
			fmt.Println("Figure 3: speedups across layer configurations")
			for _, app := range sel {
				bar, err := ses.Figure3(app, scale, procs, harness.Figure3Configs)
				if err != nil {
					fatalf("%v", err)
				}
				fmt.Print(swsm.FormatFigure3(bar, swsm.Figure3Configs))
				fmt.Print(harness.RenderFigure3(bar, swsm.Figure3Configs))
			}
		case 4:
			fmt.Println("Figure 4: execution time breakdowns (avg cycles/proc)")
			for _, app := range sel {
				rows, err := ses.Figure4(app, scale, procs, harness.Figure3Configs)
				if err != nil {
					fatalf("%v", err)
				}
				fmt.Println(app)
				fmt.Print(swsm.FormatFigure4(rows))
				fmt.Print(harness.RenderFigure4(rows))
			}
		case 5:
			fmt.Println("Figure 5: one communication parameter varied at a time (speedups)")
			for _, app := range sel {
				pts, err := ses.Figure5(app, scale, procs)
				if err != nil {
					fatalf("%v", err)
				}
				fmt.Println(app)
				fmt.Print(swsm.FormatFigure5(pts))
			}
		default:
			fatalf("no figure %d (have 3-5)", n)
		}
	})
	fmt.Println()
}

// writeCSV re-assembles the figure (from the session cache when it just
// ran) and saves its data points as CSV.
func writeCSV(ses *swsm.Session, figure int, sel []string, scale swsm.Scale, procs int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch figure {
	case 3:
		var bars []*harness.AppBar
		for _, app := range sel {
			b, err := ses.Figure3(app, scale, procs, harness.Figure3Configs)
			if err != nil {
				return err
			}
			bars = append(bars, b)
		}
		return harness.WriteFigure3CSV(f, bars, swsm.Figure3Configs)
	case 4:
		var all []harness.Figure4Row
		for _, app := range sel {
			rows, err := ses.Figure4(app, scale, procs, harness.Figure3Configs)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		return harness.WriteFigure4CSV(f, all)
	case 5:
		for _, app := range sel {
			pts, err := ses.Figure5(app, scale, procs)
			if err != nil {
				return err
			}
			if err := harness.WriteFigure5CSV(f, app, pts); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("no CSV exporter for figure %d", figure)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "svmbench: "+format+"\n", args...)
	os.Exit(1)
}

// buildRev resolves the VCS revision baked into the binary by the go
// toolchain, for the BENCH_<rev>.json filename.
func buildRev() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return "dev"
}

// runBenchJSON runs the simulator self-benchmark suite, writes the
// report, and optionally gates it against a committed baseline.
func runBenchJSON(dir, baselinePath string) error {
	rev := buildRev()
	fmt.Fprintf(os.Stderr, "svmbench: running self-benchmarks (rev %s)...\n", rev)
	report := harness.RunBench(rev)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dir == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+rev+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "svmbench: wrote %s\n", path)
	}
	for _, b := range report.Benches {
		fmt.Fprintf(os.Stderr, "  %-24s %12.2f ns/op %14.0f cycles/sec %8.3f allocs/op\n",
			b.Name, b.NsPerOp, b.CyclesPerSec, b.AllocsPerOp)
	}

	if baselinePath == "" {
		return nil
	}
	baseline, err := harness.LoadBenchReport(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-baseline: %w", err)
	}
	if failures := harness.CompareBench(baseline, report); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "svmbench: REGRESSION: %s\n", f)
		}
		return fmt.Errorf("benchmark regression vs %s (%d failures)", baselinePath, len(failures))
	}
	fmt.Fprintf(os.Stderr, "svmbench: no regression vs %s\n", baselinePath)
	return nil
}
