// Command svmbench regenerates the paper's evaluation: every table
// (1-5) and figure (3-5).
//
// Examples:
//
//	svmbench -table 4
//	svmbench -figure 3 -apps fft,lu
//	svmbench -all > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swsm"
	"swsm/internal/harness"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table N (1-5)")
		figure   = flag.Int("figure", 0, "regenerate figure N (3-5)")
		all      = flag.Bool("all", false, "regenerate everything")
		validate = flag.Bool("validate", false, "run the simulator-validation microbenchmarks (Appendix)")
		appsCS   = flag.String("apps", "", "comma-separated application subset (default: all)")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.String("scale", "base", "problem scale: tiny, base, large")
		csvPath  = flag.String("csv", "", "also write figure data as CSV to this file")
	)
	flag.Parse()

	sc := swsm.Base
	switch *scale {
	case "tiny":
		sc = swsm.Tiny
	case "base":
		sc = swsm.Base
	case "large":
		sc = swsm.Large
	default:
		fatalf("unknown scale %q", *scale)
	}

	var sel []string
	if *appsCS == "" {
		sel = swsm.Apps()
	} else {
		sel = strings.Split(*appsCS, ",")
	}

	if *all {
		for t := 1; t <= 5; t++ {
			runTable(t, sc, *procs)
		}
		for f := 3; f <= 5; f++ {
			runFigure(f, sel, sc, *procs)
		}
		return
	}
	if *table != 0 {
		runTable(*table, sc, *procs)
	}
	if *figure != 0 {
		runFigure(*figure, sel, sc, *procs)
		if *csvPath != "" {
			if err := writeCSV(*figure, sel, sc, *procs, *csvPath); err != nil {
				fatalf("csv: %v", err)
			}
			fmt.Println("wrote", *csvPath)
		}
	}
	if *validate {
		res, err := harness.ValidateAll()
		if err != nil {
			fatalf("validate: %v", err)
		}
		fmt.Println("Simulator validation microbenchmarks (achievable parameters):")
		for _, r := range res {
			fmt.Printf("  %-24s %8d cycles (%.1f us @200MHz)\n", r.Name, r.Cycles, float64(r.Cycles)/200)
		}
		return
	}
	if *table == 0 && *figure == 0 {
		flag.Usage()
	}
}

func runTable(n int, scale swsm.Scale, procs int) {
	switch n {
	case 1:
		fmt.Println("Table 1: applications and problem sizes")
		fmt.Print(swsm.Table1())
	case 2:
		fmt.Println("Table 2: communication parameter sets")
		fmt.Print(swsm.Table2())
	case 3:
		fmt.Println("Table 3: protocol cost sets")
		fmt.Print(swsm.Table3())
	case 4:
		fmt.Println("Table 4: % time in protocol activity (HLRC, base config)")
		rows, err := swsm.Table4(scale, procs)
		if err != nil {
			fatalf("table 4: %v", err)
		}
		fmt.Print(swsm.FormatTable4(rows))
	case 5:
		fmt.Println("Table 5: per-application layer-importance summary (HLRC)")
		rows, err := swsm.Table5(scale, procs)
		if err != nil {
			fatalf("table 5: %v", err)
		}
		fmt.Print(swsm.FormatTable5(rows))
	default:
		fatalf("no table %d (have 1-5)", n)
	}
	fmt.Println()
}

func runFigure(n int, sel []string, scale swsm.Scale, procs int) {
	switch n {
	case 3:
		fmt.Println("Figure 3: speedups across layer configurations")
		for _, app := range sel {
			bar, err := swsm.Figure3(app, scale, procs)
			if err != nil {
				fatalf("figure 3 (%s): %v", app, err)
			}
			fmt.Print(swsm.FormatFigure3(bar, swsm.Figure3Configs))
			fmt.Print(harness.RenderFigure3(bar, swsm.Figure3Configs))
		}
	case 4:
		fmt.Println("Figure 4: execution time breakdowns (avg cycles/proc)")
		for _, app := range sel {
			rows, err := swsm.Figure4(app, scale, procs)
			if err != nil {
				fatalf("figure 4 (%s): %v", app, err)
			}
			fmt.Println(app)
			fmt.Print(swsm.FormatFigure4(rows))
			fmt.Print(harness.RenderFigure4(rows))
		}
	case 5:
		fmt.Println("Figure 5: one communication parameter varied at a time (speedups)")
		for _, app := range sel {
			pts, err := swsm.Figure5(app, scale, procs)
			if err != nil {
				fatalf("figure 5 (%s): %v", app, err)
			}
			fmt.Println(app)
			fmt.Print(swsm.FormatFigure5(pts))
		}
	default:
		fatalf("no figure %d (have 3-5)", n)
	}
	fmt.Println()
}

// writeCSV re-runs the figure and saves its data points as CSV.
func writeCSV(figure int, sel []string, scale swsm.Scale, procs int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch figure {
	case 3:
		var bars []*harness.AppBar
		for _, app := range sel {
			b, err := swsm.Figure3(app, scale, procs)
			if err != nil {
				return err
			}
			bars = append(bars, b)
		}
		return harness.WriteFigure3CSV(f, bars, swsm.Figure3Configs)
	case 4:
		var all []harness.Figure4Row
		for _, app := range sel {
			rows, err := swsm.Figure4(app, scale, procs)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		return harness.WriteFigure4CSV(f, all)
	case 5:
		for _, app := range sel {
			pts, err := swsm.Figure5(app, scale, procs)
			if err != nil {
				return err
			}
			if err := harness.WriteFigure5CSV(f, app, pts); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("no CSV exporter for figure %d", figure)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "svmbench: "+format+"\n", args...)
	os.Exit(1)
}
