package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swsm"
	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server/client"
	"swsm/internal/store"
)

// exploreOpts collects the -explore* flags.
type exploreOpts struct {
	app       string
	scale     swsm.Scale
	budget    int64
	seed      uint64
	points    int
	width     int
	protocols string
	procs     string
	storeDir  string
	serverURL string
	jsonOut   bool
	csvPath   string
}

// runExplore drives one auto-tuning search, locally through the shared
// session (optionally backed by a persistent store) or remotely through
// a svmd daemon/coordinator, then prints the Pareto frontier.
func runExplore(ses *swsm.Session, opts exploreOpts) error {
	req := explore.Request{
		App:        opts.app,
		Scale:      opts.scale,
		Budget:     opts.budget,
		Seed:       opts.seed,
		SeedPoints: opts.points,
		Width:      opts.width,
	}
	if opts.protocols != "" {
		for _, p := range strings.Split(opts.protocols, ",") {
			req.Space.Protocols = append(req.Space.Protocols, harness.ProtocolKind(strings.TrimSpace(p)))
		}
	}
	if opts.procs != "" {
		for _, p := range strings.Split(opts.procs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad -explore-procs entry %q: %v", p, err)
			}
			req.Space.Procs = append(req.Space.Procs, n)
		}
	}

	if opts.serverURL != "" {
		return runExploreRemote(opts, req)
	}

	var st *store.Store
	if opts.storeDir != "" {
		var err error
		if st, err = store.Open(opts.storeDir, 0); err != nil {
			return err
		}
	}
	progress := func(p explore.Progress) {
		fmt.Fprintf(os.Stderr, "[explore] %-8s batch %3d: evaluated %3d (sims %3d, cached %3d), best speedup %6.2f, spent %d cycles\n",
			p.Phase, p.Batches, p.Evaluated, p.SimsRun, p.CachedHits, p.BestSpeedup, p.SpentCycles)
	}
	rep, err := explore.Run(context.Background(), req, explore.SessionEvaluator{Ses: ses, St: st}, progress)
	if err != nil {
		return err
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("Explore %s (scale %d, seed %d): %s after %d evaluations (%d simulated, %d cached, %d failed) in %d batches\n",
			rep.App, int(rep.Scale), rep.Seed, rep.Stopped,
			rep.Evaluated, rep.SimsRun, rep.CachedHits, rep.Errors, rep.Batches)
		fmt.Printf("Budget: spent %d fresh-simulation cycles (budget %d); total simulated cost %d cycles\n",
			rep.SpentCycles, rep.Budget, rep.CostCycles)
		printFrontier(rep.Frontier)
	}
	return writeFrontierCSV(opts.csvPath, rep.Frontier)
}

// runExploreRemote submits the search to a daemon/coordinator and
// blocks until it finishes.
func runExploreRemote(opts exploreOpts, req explore.Request) error {
	cl := client.New(opts.serverURL)
	st, err := cl.Explore(context.Background(), req)
	if err != nil {
		return err
	}
	if st.State != explore.StateDone {
		return fmt.Errorf("exploration %s ended %s: %s", st.ID, st.State, st.Error)
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			return err
		}
	} else {
		p := st.Progress
		fmt.Printf("Explore %s (remote %s, id %s, seed %d): %s after %d evaluations (%d simulated, %d cached, %d failed) in %d batches\n",
			st.App, opts.serverURL, st.ID, st.Seed, st.Stopped,
			p.Evaluated, p.SimsRun, p.CachedHits, p.Errors, p.Batches)
		fmt.Printf("Budget: spent %d fresh-simulation cycles (budget %d); total simulated cost %d cycles\n",
			p.SpentCycles, st.Budget, p.CostCycles)
		printFrontier(st.Frontier)
	}
	return writeFrontierCSV(opts.csvPath, st.Frontier)
}

// printFrontier renders the Pareto frontier, best configuration last.
func printFrontier(frontier []explore.Point) {
	if len(frontier) == 0 {
		fmt.Println("Frontier: empty (no configuration evaluated successfully)")
		return
	}
	fmt.Println("Pareto frontier (speedup vs. cumulative simulated cost):")
	fmt.Printf("  %-22s %10s %14s %14s\n", "config", "speedup", "cycles", "cost")
	for _, p := range frontier {
		fmt.Printf("  %-22s %10.2f %14d %14d\n", p.Label, p.Speedup, p.Cycles, p.CostCycles)
	}
	best := frontier[len(frontier)-1]
	fmt.Printf("Best: %s (speedup %.2f, key %s)\n", best.Label, best.Speedup, best.Key)
}

func writeFrontierCSV(path string, frontier []explore.Point) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := explore.WriteFrontierCSV(f, frontier); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
