// Command svmd is the experiment service daemon: a long-lived HTTP/JSON
// server that executes simulation runs on a bounded scheduler, coalesces
// identical in-flight requests, and answers repeated configurations from
// a persistent content-addressed result store — so a warm daemon serves
// sweep reruns without re-simulating, across restarts.
//
// Examples:
//
//	svmd -addr :7099 -store /var/tmp/svmd-store
//	curl -s localhost:7099/healthz
//	curl -s -X POST 'localhost:7099/runs?wait=1' -d '{"spec":{...},"speedup":true}'
//	curl -N localhost:7099/events
//	curl -s localhost:7099/metrics                 # Prometheus exposition
//	curl -s 'localhost:7099/metrics?format=json'   # JSON snapshot
//
// Cluster modes (see README "Running a cluster"):
//
//	svmd -coordinator -addr :7100                        # primary coordinator
//	svmd -coordinator -addr :7101 -standby-of http://127.0.0.1:7100
//	svmd -addr :7110 -join http://127.0.0.1:7100,http://127.0.0.1:7101 -node-id w1
//
// A coordinator serves the daemon's job API unchanged and shards
// admitted work across joined workers by consistent hashing on the
// result content key; a worker is a normal daemon plus an agent that
// leases jobs from the coordinator and executes them locally.
//
// Observability: structured leveled logs go to stderr (-log-level,
// -log-json), every job's records carry its ID from enqueue to store
// write, /metrics serves Prometheus text by default, /debug/pprof/* is
// mounted, and -slo-ms arms a latency objective whose breaches (and any
// job failure) dump the flight recorder into -debug-dir.
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503, queued and
// running jobs finish (bounded by -drain-timeout, after which queued
// work is cancelled), and every computed result is already durable in
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swsm/internal/cluster"
	"swsm/internal/comm"
	"swsm/internal/obs"
	"swsm/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7099", "listen address")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x workers); per-worker dispatch queue depth in -coordinator mode (0 = 64)")
		storeDir = flag.String("store", defaultStoreDir(), "persistent result store directory (empty = no persistence)")
		storeMax = flag.Int64("store-max", 256<<20, "result store size bound in bytes")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling queued work")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON lines instead of human-readable text")
		sloMS    = flag.Int64("slo-ms", 0, "per-job latency objective in milliseconds; breaches dump the flight recorder (0 = disabled)")
		explores = flag.Int("explore-limit", 0, "max concurrently running /explore searches (0 = 2)")
		debugDir = flag.String("debug-dir", "", "directory for flight-recorder dumps on job failure or SLO breach (empty = in-memory ring only)")

		// Cluster flags.
		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator instead of an execution daemon")
		standbyOf   = flag.String("standby-of", "", "coordinator mode: follow this primary's log and take over on its failure")
		joinURLs    = flag.String("join", "", "worker mode: comma-separated coordinator URLs to lease jobs from (primary first)")
		nodeID      = flag.String("node-id", "", "stable cluster identity (default: host:port of -addr); ring placement hashes it")
		hbTTL       = flag.Duration("heartbeat-ttl", cluster.DefaultHeartbeatTTL, "coordinator: declare a worker lost after this much heartbeat silence")
		leaseTTL    = flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "coordinator: job lease duration (renewed by worker polls)")
		failAfter   = flag.Duration("failover-after", 0, "standby: promote after this much primary silence (0 = 3x heartbeat-ttl)")
		leasePoll   = flag.Duration("lease-poll", 200*time.Millisecond, "worker: lease poll / heartbeat interval")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	// The simulated transport logs terminal delivery failures through the
	// same process-wide logger (the cold path right before a run fails).
	comm.SetLogger(logger)

	id := *nodeID
	if id == "" {
		id = *addr
	}
	if *coordinator {
		runCoordinator(logger, coordConfig{
			addr: *addr, nodeID: id,
			storeDir: *storeDir, storeMax: *storeMax,
			queueDepth: *queue,
			hbTTL:      *hbTTL, leaseTTL: *leaseTTL, failAfter: *failAfter,
			standbyOf: *standbyOf, exploreLimit: *explores,
		})
		return
	}

	srv, err := server.New(server.Config{
		Parallel:      *parallel,
		QueueDepth:    *queue,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Logger:        logger,
		SLO:           time.Duration(*sloMS) * time.Millisecond,
		DebugDir:      *debugDir,
		ExploreLimit:  *explores,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	st := srv.StoreStats()
	logger.Info("listening",
		"addr", *addr, "store", *storeDir,
		"warmEntries", st.Entries, "warmBytes", st.Bytes)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Worker mode: lease jobs from the coordinator(s) alongside the
	// local HTTP API (a worker is still a fully usable daemon).
	workerDone := make(chan struct{})
	if *joinURLs != "" {
		urls := strings.Split(*joinURLs, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		agent, err := cluster.NewWorker(cluster.WorkerConfig{
			ID: id, Coordinators: urls, Server: srv,
			Poll: *leasePoll, Logger: logger,
		})
		if err != nil {
			logger.Error("worker startup failed", "error", err)
			os.Exit(1)
		}
		logger.Info("joining cluster", "id", id, "coordinators", urls)
		go func() {
			defer close(workerDone)
			agent.Run(ctx)
		}()
	} else {
		close(workerDone)
	}

	select {
	case <-ctx.Done():
		logger.Info("draining", "timeout", *drainTO)
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	}

	<-workerDone
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete, queued work cancelled", "error", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "error", err)
	}
	m := srv.Metrics()
	logger.Info("stopped",
		"simulations", m.Runner.Runs,
		"storeHitRatio", m.StoreHitRatio,
		"evictions", m.Store.Evictions)
}

type coordConfig struct {
	addr, nodeID    string
	storeDir        string
	storeMax        int64
	queueDepth      int
	hbTTL, leaseTTL time.Duration
	failAfter       time.Duration
	standbyOf       string
	exploreLimit    int
}

func runCoordinator(logger *slog.Logger, cfg coordConfig) {
	c, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		NodeID:        cfg.nodeID,
		StoreDir:      cfg.storeDir,
		StoreMaxBytes: cfg.storeMax,
		QueueDepth:    cfg.queueDepth,
		HeartbeatTTL:  cfg.hbTTL,
		LeaseTTL:      cfg.leaseTTL,
		FailoverAfter: cfg.failAfter,
		Standby:       cfg.standbyOf != "",
		PeerURL:       cfg.standbyOf,
		Logger:        logger,
		ExploreLimit:  cfg.exploreLimit,
	})
	if err != nil {
		logger.Error("coordinator startup failed", "error", err)
		os.Exit(1)
	}
	role := c.Role()
	logger.Info("coordinator listening",
		"addr", cfg.addr, "id", cfg.nodeID, "role", role,
		"store", cfg.storeDir, "standbyOf", cfg.standbyOf)

	hs := &http.Server{Addr: cfg.addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("coordinator stopping")
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "error", err)
	}
	c.Stop()
	st := c.Status()
	logger.Info("coordinator stopped",
		"role", st.Role, "epoch", st.Epoch, "logSeq", st.LogSeq,
		"redispatches", st.Redispatches, "duplicates", st.Duplicates)
}

// defaultStoreDir places the store under the user cache dir, falling
// back to a temp path when none is known.
func defaultStoreDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return fmt.Sprintf("%s/svmd/store", dir)
	}
	return fmt.Sprintf("%s/svmd-store", os.TempDir())
}
