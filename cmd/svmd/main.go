// Command svmd is the experiment service daemon: a long-lived HTTP/JSON
// server that executes simulation runs on a bounded scheduler, coalesces
// identical in-flight requests, and answers repeated configurations from
// a persistent content-addressed result store — so a warm daemon serves
// sweep reruns without re-simulating, across restarts.
//
// Examples:
//
//	svmd -addr :7099 -store /var/tmp/svmd-store
//	curl -s localhost:7099/healthz
//	curl -s -X POST 'localhost:7099/runs?wait=1' -d '{"spec":{...},"speedup":true}'
//	curl -N localhost:7099/events
//	curl -s localhost:7099/metrics                 # Prometheus exposition
//	curl -s 'localhost:7099/metrics?format=json'   # JSON snapshot
//
// Observability: structured leveled logs go to stderr (-log-level,
// -log-json), every job's records carry its ID from enqueue to store
// write, /metrics serves Prometheus text by default, /debug/pprof/* is
// mounted, and -slo-ms arms a latency objective whose breaches (and any
// job failure) dump the flight recorder into -debug-dir.
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503, queued and
// running jobs finish (bounded by -drain-timeout, after which queued
// work is cancelled), and every computed result is already durable in
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swsm/internal/comm"
	"swsm/internal/obs"
	"swsm/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7099", "listen address")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		storeDir = flag.String("store", defaultStoreDir(), "persistent result store directory (empty = no persistence)")
		storeMax = flag.Int64("store-max", 256<<20, "result store size bound in bytes")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling queued work")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON lines instead of human-readable text")
		sloMS    = flag.Int64("slo-ms", 0, "per-job latency objective in milliseconds; breaches dump the flight recorder (0 = disabled)")
		debugDir = flag.String("debug-dir", "", "directory for flight-recorder dumps on job failure or SLO breach (empty = in-memory ring only)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	// The simulated transport logs terminal delivery failures through the
	// same process-wide logger (the cold path right before a run fails).
	comm.SetLogger(logger)

	srv, err := server.New(server.Config{
		Parallel:      *parallel,
		QueueDepth:    *queue,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Logger:        logger,
		SLO:           time.Duration(*sloMS) * time.Millisecond,
		DebugDir:      *debugDir,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	st := srv.StoreStats()
	logger.Info("listening",
		"addr", *addr, "store", *storeDir,
		"warmEntries", st.Entries, "warmBytes", st.Bytes)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("draining", "timeout", *drainTO)
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete, queued work cancelled", "error", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "error", err)
	}
	m := srv.Metrics()
	logger.Info("stopped",
		"simulations", m.Runner.Runs,
		"storeHitRatio", m.StoreHitRatio,
		"evictions", m.Store.Evictions)
}

// defaultStoreDir places the store under the user cache dir, falling
// back to a temp path when none is known.
func defaultStoreDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return fmt.Sprintf("%s/svmd/store", dir)
	}
	return fmt.Sprintf("%s/svmd-store", os.TempDir())
}
