// Command svmd is the experiment service daemon: a long-lived HTTP/JSON
// server that executes simulation runs on a bounded scheduler, coalesces
// identical in-flight requests, and answers repeated configurations from
// a persistent content-addressed result store — so a warm daemon serves
// sweep reruns without re-simulating, across restarts.
//
// Examples:
//
//	svmd -addr :7099 -store /var/tmp/svmd-store
//	curl -s localhost:7099/healthz
//	curl -s -X POST 'localhost:7099/runs?wait=1' -d '{"spec":{...},"speedup":true}'
//	curl -N localhost:7099/events
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503, queued and
// running jobs finish (bounded by -drain-timeout, after which queued
// work is cancelled), and every computed result is already durable in
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swsm/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7099", "listen address")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		storeDir = flag.String("store", defaultStoreDir(), "persistent result store directory (empty = no persistence)")
		storeMax = flag.Int64("store-max", 256<<20, "result store size bound in bytes")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling queued work")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Parallel:      *parallel,
		QueueDepth:    *queue,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
	})
	if err != nil {
		log.Fatalf("svmd: %v", err)
	}
	st := srv.StoreStats()
	log.Printf("svmd: listening on %s (store %q: %d entries, %d bytes warm)",
		*addr, *storeDir, st.Entries, st.Bytes)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("svmd: draining (timeout %s)", *drainTO)
	case err := <-errc:
		log.Fatalf("svmd: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("svmd: drain: %v (queued work cancelled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("svmd: shutdown: %v", err)
	}
	m := srv.Metrics()
	log.Printf("svmd: stopped (%d simulations run, store hit ratio %.2f, %d evictions)",
		m.Runner.Runs, m.StoreHitRatio, m.Store.Evictions)
}

// defaultStoreDir places the store under the user cache dir, falling
// back to a temp path when none is known.
func defaultStoreDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return fmt.Sprintf("%s/svmd/store", dir)
	}
	return fmt.Sprintf("%s/svmd-store", os.TempDir())
}
