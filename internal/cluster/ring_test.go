package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real content keys: versioned hash strings.
		keys[i] = fmt.Sprintf("v1-%064x", i*2654435761)
	}
	return keys
}

// Placement must be a pure function of (members, key): two rings built
// independently — even with different insertion orders — agree on every
// key.  This is what lets a failed-over coordinator re-dispatch a job
// to the worker whose store already holds the result.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(128)
	b := NewRing(128)
	for _, n := range []string{"w1", "w2", "w3"} {
		a.Add(n)
	}
	for _, n := range []string{"w3", "w1", "w2"} { // different order
		b.Add(n)
	}
	for _, k := range ringKeys(10000) {
		if got, want := b.Lookup(k), a.Lookup(k); got != want {
			t.Fatalf("placement disagrees for %s: %s vs %s", k, got, want)
		}
	}
}

// A membership change must move close to the theoretical minimum 1/N
// of the keyspace — that is the entire point of consistent hashing over
// mod-N (which would move (N-1)/N and cold every worker store).
func TestRingMinimalMovement(t *testing.T) {
	const n = 10000
	keys := ringKeys(n)
	r := NewRing(128)
	for _, w := range []string{"w1", "w2", "w3"} {
		r.Add(w)
	}
	before := make(map[string]string, n)
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	r.Add("w4")
	moved := 0
	for _, k := range keys {
		if r.Lookup(k) != before[k] {
			moved++
		}
	}
	// Ideal is n/4; allow 2x slack for virtual-point variance but fail
	// hard if movement approaches mod-N behavior (3n/4).
	if moved == 0 || moved > n/2 {
		t.Fatalf("join moved %d of %d keys; want ~%d", moved, n, n/4)
	}
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] && got != "w4" {
			t.Fatalf("key %s moved to %s, not the new node", k, got)
		}
	}

	// Removing the node restores the exact prior placement.
	r.Remove("w4")
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("remove did not restore placement for %s: %s vs %s", k, got, before[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	for _, w := range []string{"w1", "w2", "w3"} {
		r.Add(w)
	}
	counts := map[string]int{}
	keys := ringKeys(9999)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for w, c := range counts {
		if c < len(keys)/6 || c > len(keys)/2+len(keys)/10 {
			t.Fatalf("worker %s owns %d of %d keys; split too uneven: %v", w, c, len(keys), counts)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q", got)
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("empty ring Successors = %v", got)
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		r.Add(w)
	}
	succ := r.Successors("some-key", 0)
	if len(succ) != 3 {
		t.Fatalf("Successors returned %v, want all 3 distinct nodes", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate node in successors: %v", succ)
		}
		seen[s] = true
	}
	if succ[0] != r.Lookup("some-key") {
		t.Fatalf("first successor %s is not the owner %s", succ[0], r.Lookup("some-key"))
	}
	if got := r.Successors("some-key", 2); len(got) != 2 {
		t.Fatalf("Successors(2) = %v", got)
	}
	// Add/Remove are idempotent.
	r.Add("w1")
	r.Remove("nope")
	if r.Len() != 3 {
		t.Fatalf("Len = %d after idempotent ops", r.Len())
	}
}
