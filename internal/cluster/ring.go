// Package cluster turns svmd into a horizontally scaled experiment
// service: a coordinator that accepts the daemon's HTTP/JSON job API
// unchanged and shards work across joined worker daemons, plus the
// worker-side agent that leases, executes and reports jobs.
//
// The design follows the commodity-cluster playbook: placement by
// consistent hashing on the RunSpec content key (each worker's
// persistent store becomes a locality-preserving shard of one
// distributed cache), bounded per-worker dispatch queues with work
// stealing for stragglers, failure handling as a first-class concern
// (heartbeat lapse re-dispatches lost jobs; results are
// content-addressed and idempotent so retries never corrupt a sweep),
// and coordinator state replicated to a standby through a lease/epoch
// log — the deliberately-simpler-than-Paxos scheme that suffices when
// there is exactly one primary, one standby, and fencing by epoch.
package cluster

import "sort"

// ringReplicas is the default number of virtual points per node — high
// enough that ownership splits evenly and a membership change moves
// close to the theoretical 1/N of the keyspace.
const ringReplicas = 64

// ringPoint is one virtual node position.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over worker IDs.  Placement is a pure
// function of (members, key) — two processes with the same membership
// compute identical placements, which is what lets a failed-over
// coordinator re-dispatch a job to the worker whose store already
// holds its result.  Not safe for concurrent use; the coordinator
// guards it with its own mutex.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash, ties broken by node
	nodes    map[string]struct{}
}

// NewRing creates an empty ring with the given virtual-point count per
// node (<= 0 selects the default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// ringHash positions a string on the ring: 64-bit FNV-1a through a
// full-avalanche finalizer.  Raw FNV of short, similar strings ("w1#0",
// "w1#1", ...) clusters badly on the ring; the finalizer spreads it.
// Fixed constants, no per-process seed, so placement is deterministic
// across machines and restarts.
func ringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// splitmix64-style finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node's virtual points (idempotent).
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "#" + itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node's virtual points (idempotent).
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key ("" on an empty ring): the first
// virtual point at or clockwise of the key's hash.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner — the spillover sequence when the owner's dispatch queue
// is full.  n <= 0 or n > members returns every member.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		node := r.points[(start+i)%len(r.points)].node
		if _, ok := seen[node]; ok {
			continue
		}
		seen[node] = struct{}{}
		out = append(out, node)
	}
	return out
}

// search finds the index of the first point at or clockwise of key.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// itoa is strconv.Itoa for the small nonnegative ints of virtual-point
// labels, avoiding the import for this one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
