package cluster

import (
	"context"
	"errors"
	"time"

	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server"
	"swsm/internal/server/api"
)

// clusterEvaluator executes exploration candidates through the
// coordinator's own admission path, so an auto-tuning search is real
// sustained cluster load: every point is sharded to a worker by the
// content-key ring (or answered from the coordinator's store),
// coalesces with identical in-flight submissions, and rides the lease/
// steal/redispatch machinery like any other job.  Full worker queues
// park the batch with a bounded retry instead of overflowing them.
type clusterEvaluator struct{ c *Coordinator }

// clusterSubmitRetryDelay paces re-submission against full queues.
const clusterSubmitRetryDelay = 10 * time.Millisecond

func (e clusterEvaluator) Evaluate(ctx context.Context, specs []harness.RunSpec) ([]explore.Evaluation, error) {
	out := make([]explore.Evaluation, len(specs))
	jobs := make([]*cjob, len(specs))
	for i, spec := range specs {
		out[i].Spec = spec
		// Budget probe: a key already in the coordinator's store costs
		// no new simulation.  (A worker-store hit still simulates
		// nothing but is invisible here; the charge stays conservative.)
		if e.c.st != nil && e.c.st.Has(spec.Key()) {
			out[i].Cached = true
		}
		for {
			j, _, err := e.c.submit(api.RunRequest{Spec: spec})
			if err == nil {
				jobs[i] = j
				break
			}
			if !errors.Is(err, server.ErrQueueFull) {
				return nil, err // fenced/standby or invalid — abort
			}
			select {
			case <-time.After(clusterSubmitRetryDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	for i, j := range jobs {
		if err := e.c.waitJob(ctx, j); err != nil {
			return nil, err
		}
		e.c.mu.Lock()
		switch {
		case j.state == api.StateDone:
			out[i].Row = j.row
			if j.cached {
				out[i].Cached = true
			}
		case j.errMsg != "":
			out[i].Err = j.errMsg
		default:
			out[i].Err = "job " + j.id + " ended in state " + j.state
		}
		e.c.mu.Unlock()
	}
	return out, nil
}

// newExploreManager builds the coordinator's exploration manager:
// events on the coordinator's SSE bus, admission gated on primaryship,
// svmd_explore_* registered on the coordinator's registry.
func newExploreManager(c *Coordinator) *explore.Manager {
	m := explore.NewManager(explore.ManagerConfig{
		Evaluator: clusterEvaluator{c},
		Publish: func(eventType string, st *explore.Status) {
			c.bus.Publish(api.Event{Type: eventType, Explore: st})
		},
		Admit: func() error {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.role != api.RolePrimary {
				return ErrNotPrimary
			}
			return nil
		},
		Limit:  c.cfg.ExploreLimit,
		Logger: c.log,
	})
	explore.RegisterMetrics(c.met.reg, m)
	return m
}
