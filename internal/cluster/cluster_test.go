package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server"
	"swsm/internal/server/api"
	"swsm/internal/server/client"
)

// Integration tests: real worker daemons behind real agents leasing
// over HTTP from a real coordinator.  The acceptance bar throughout is
// byte-identity — a sweep through the cluster must produce rows
// indistinguishable from a single local daemon, including across a
// worker death and a coordinator failover.

func newWorkerDaemon(t *testing.T, parallel int) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// startAgent runs a worker agent until test cleanup (or the returned
// cancel, for tests that kill a worker mid-sweep).
func startAgent(t *testing.T, id string, coords []string, srv *server.Server) context.CancelFunc {
	t.Helper()
	agent, err := NewWorker(WorkerConfig{
		ID: id, Coordinators: coords, Server: srv,
		Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		agent.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// localRow computes the single-daemon reference row for a request.
func localRow(t *testing.T, local *server.Server, req api.RunRequest) *harness.RunRow {
	t.Helper()
	row, _, err := local.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("local execute: %v", err)
	}
	return row
}

func rowsEqual(t *testing.T, got, want *harness.RunRow, what string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no row", what)
	}
	gj, err1 := json.Marshal(got)
	wj, err2 := json.Marshal(want)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("%s: cluster row differs from local:\n cluster %s\n local   %s", what, gj, wj)
	}
}

// A sweep sharded across three workers returns rows byte-identical to
// a single local daemon, each point simulated exactly once cluster-wide.
func TestClusterSweepMatchesLocal(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		NodeID:       "coord",
		HeartbeatTTL: 2 * time.Second,
		PollWait:     100 * time.Millisecond,
	})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	daemons := make([]*server.Server, 3)
	for i, id := range []string{"w1", "w2", "w3"} {
		daemons[i] = newWorkerDaemon(t, 2)
		startAgent(t, id, []string{ts.URL}, daemons[i])
	}

	var points []api.RunRequest
	for procs := 1; procs <= 8; procs++ {
		points = append(points, creq(procs))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := client.New(ts.URL).Sweep(ctx, api.SweepRequest{Points: points})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if st.Done != len(points) || st.Failed != 0 {
		t.Fatalf("sweep finished done=%d failed=%d of %d", st.Done, st.Failed, st.Total)
	}

	local := newWorkerDaemon(t, 2)
	executors := map[string]bool{}
	for i, p := range st.Points {
		rowsEqual(t, p.Row, localRow(t, local, points[i]), p.ID)
		executors[p.Worker] = true
	}
	if len(executors) < 2 {
		t.Fatalf("sweep did not shard: all points executed by %v", executors)
	}

	// Exactly-once accounting: 8 distinct points, 8 simulations total
	// across the fleet, no duplicate completions, no re-dispatches.
	var runs int64
	for _, d := range daemons {
		runs += d.RunnerStats().Runs
	}
	if runs != int64(len(points)) {
		t.Fatalf("fleet ran %d simulations for %d points", runs, len(points))
	}
	cst := c.Status()
	if cst.Duplicates != 0 || cst.Redispatches != 0 {
		t.Fatalf("clean sweep recorded duplicates=%d redispatches=%d", cst.Duplicates, cst.Redispatches)
	}
}

// Killing a worker mid-sweep re-dispatches its leased jobs after
// heartbeat lapse, and the sweep still completes with rows identical
// to a local run.
func TestClusterWorkerDeathRedispatch(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		NodeID:       "coord",
		HeartbeatTTL: 100 * time.Millisecond,
		PollWait:     50 * time.Millisecond,
	})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	survivor := newWorkerDaemon(t, 2)
	startAgent(t, "survivor", []string{ts.URL}, survivor)

	// The victim's daemon never finishes a simulation: it blocks until
	// the test releases it, so any job it leases is stuck until the
	// coordinator declares the worker dead and re-dispatches.
	victim := newWorkerDaemon(t, 2)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unblock detached jobs so Drain returns
	victim.SetRunFunc(func(ctx context.Context, spec harness.RunSpec) (*harness.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return nil, errors.New("victim released after death")
		}
	})
	killVictim := startAgent(t, "victim", []string{ts.URL}, victim)

	var points []api.RunRequest
	for procs := 1; procs <= 10; procs++ {
		points = append(points, creq(procs))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New(ts.URL)
	var ids []string
	for _, p := range points {
		st, err := cl.Submit(ctx, p)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}

	// Wait until the victim actually holds a lease, then kill it.  The
	// held job cannot complete (its simulator is blocked), so this never
	// races with the sweep finishing early.
	deadline := time.Now().Add(10 * time.Second)
	for {
		leased := 0
		for _, w := range c.Status().Workers {
			if w.ID == "victim" {
				leased = w.Leased
			}
		}
		if leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killVictim()

	local := newWorkerDaemon(t, 2)
	for i, id := range ids {
		st, err := cl.Get(ctx, id, true)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State != api.StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
		rowsEqual(t, st.Row, localRow(t, local, points[i]), id)
	}
	cst := c.Status()
	if cst.Redispatches == 0 {
		t.Fatal("worker death caused no re-dispatches")
	}
	for _, w := range cst.Workers {
		if w.ID == "victim" {
			t.Fatalf("dead victim still in membership: %+v", cst.Workers)
		}
	}
}

// Coordinator failover: the standby tails the primary's log, promotes
// itself on silence with a higher epoch, re-learns the worker from its
// lease polls, and finishes the sweep — rows byte-identical to local.
func TestClusterFailover(t *testing.T) {
	a := newTestCoordinator(t, CoordinatorConfig{
		NodeID:       "A",
		HeartbeatTTL: 200 * time.Millisecond,
		PollWait:     50 * time.Millisecond,
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	b := newTestCoordinator(t, CoordinatorConfig{
		NodeID:        "B",
		Standby:       true,
		PeerURL:       tsA.URL,
		FailoverAfter: 250 * time.Millisecond,
		HeartbeatTTL:  200 * time.Millisecond,
		PollWait:      50 * time.Millisecond,
	})
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsB.Close)
	if b.Role() != api.RoleStandby {
		t.Fatalf("standby booted as %s", b.Role())
	}

	// The worker's simulator is gated so jobs are still in flight when
	// the primary dies; the gate opens right after the kill.
	srvW := newWorkerDaemon(t, 2)
	gate := make(chan struct{})
	srvW.SetRunFunc(func(ctx context.Context, spec harness.RunSpec) (*harness.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return harness.RunContext(ctx, spec)
	})
	startAgent(t, "w", []string{tsA.URL, tsB.URL}, srvW)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	clA := client.New(tsA.URL)
	var points []api.RunRequest
	var ids []string
	for procs := 1; procs <= 4; procs++ {
		points = append(points, creq(procs))
		st, err := clA.Submit(ctx, points[len(points)-1])
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}

	// Let replication catch the standby up to every submit before the
	// primary dies — the log tail is the failover's source of truth.
	target := a.Status().LogSeq
	deadline := time.Now().Add(10 * time.Second)
	for b.Status().LogSeq < target {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at seq %d, primary at %d", b.Status().LogSeq, target)
		}
		time.Sleep(5 * time.Millisecond)
	}

	tsA.Close()
	a.Stop()
	close(gate)

	// Every job must land on the promoted standby: completed-but-lost
	// work re-dispatches to the same ring home and is answered from the
	// worker's warm store/memo, so rows stay exactly-once and identical.
	clB := client.New(tsB.URL)
	local := newWorkerDaemon(t, 2)
	for i, id := range ids {
		st, err := clB.Get(ctx, id, true)
		if err != nil {
			t.Fatalf("get %s from standby: %v", id, err)
		}
		if st.State != api.StateDone {
			t.Fatalf("job %s finished %s (%s) after failover", id, st.State, st.Error)
		}
		rowsEqual(t, st.Row, localRow(t, local, points[i]), id)
	}
	if b.Role() != api.RolePrimary {
		t.Fatalf("standby never promoted: role=%s", b.Role())
	}
	if e := b.Epoch(); e < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", e)
	}
}

// exploreReq is the compact 8-point search the cluster explore test
// runs: the same shape the daemon-side tests use.
func exploreReq() explore.Request {
	return explore.Request{
		App:        "fft",
		Scale:      0,
		Seed:       11,
		SeedPoints: 8,
		Width:      4,
		Space: explore.Space{
			Protocols:      []harness.ProtocolKind{harness.HLRC, harness.SC},
			CommSets:       []string{"A", "B"},
			CostSets:       []string{"O"},
			Procs:          []int{2, 4},
			HLRCUnitShifts: []uint{0},
			SCBlocks:       []int{0},
			DropPPMs:       []int64{0},
		},
	}
}

// An exploration submitted to the coordinator shards its candidate
// batches across the workers and converges on the same frontier a
// local search finds; a standby refuses to explore.
func TestClusterExplore(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		HeartbeatTTL: 10 * time.Second,
		StoreDir:     t.TempDir(),
	})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	for i, n := range []string{"w1", "w2"} {
		startAgent(t, n, []string{ts.URL}, newWorkerDaemon(t, 2+i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cl := client.New(ts.URL)
	st, err := cl.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatalf("cluster explore: %v", err)
	}
	if st.State != explore.StateDone || st.Stopped != "converged" {
		t.Fatalf("cluster explore = %s/%s (%s)", st.State, st.Stopped, st.Error)
	}
	if len(st.Frontier) == 0 {
		t.Fatal("cluster explore found nothing")
	}

	// The local reference: same request, fresh session.
	rep, err := explore.Run(ctx, exploreReq(),
		explore.SessionEvaluator{Ses: harness.NewSession(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cf, _ := json.Marshal(st.Frontier)
	lf, _ := json.Marshal(rep.Frontier)
	if !bytes.Equal(cf, lf) {
		t.Fatalf("cluster frontier differs from local:\n cluster %s\n local   %s", cf, lf)
	}

	// A fenced (standby) coordinator refuses new explorations.
	c.lease(api.ClusterLeaseRequest{WorkerID: "w1", Slots: 1, Epoch: c.Epoch() + 1})
	cl.Retries = -1
	if _, err := cl.SubmitExplore(ctx, exploreReq()); client.StatusCode(err) != 503 {
		t.Fatalf("explore on standby = %v, want 503", err)
	}
}
