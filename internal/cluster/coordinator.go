package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server"
	"swsm/internal/server/api"
	"swsm/internal/store"
)

// Scheduling and failure-detection defaults.  Heartbeats ride on the
// workers' lease polls, so the TTL only needs to cover a few poll
// intervals; the lease TTL is long because a held lease is renewed on
// every poll — it only expires when the worker stops polling entirely.
const (
	DefaultHeartbeatTTL = 5 * time.Second
	DefaultLeaseTTL     = 60 * time.Second
	DefaultQueueDepth   = 64
	DefaultPollWait     = time.Second
)

// Admission errors the HTTP layer maps to status codes.
var (
	// ErrNotPrimary rejects writes on a standby (or fenced) coordinator.
	ErrNotPrimary = errors.New("cluster: not the primary coordinator")
	// errUnknownJob rejects a completion for a job this coordinator never
	// heard of (a log tail lost across failover).
	errUnknownJob = errors.New("cluster: unknown job")
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// NodeID names this coordinator in logs and failover events.
	NodeID string
	// StoreDir is the coordinator's own persistent result store ("" =
	// none).  It is the top cache tier: a sweep resubmitted after a crash
	// is answered here without dispatching anything.
	StoreDir      string
	StoreMaxBytes int64
	// QueueDepth bounds each worker's dispatch queue; when a key's ring
	// home and every spillover successor are full, submissions are
	// rejected with 429.
	QueueDepth int
	// HeartbeatTTL is the silence after which a worker is declared lost
	// and its jobs re-dispatched.
	HeartbeatTTL time.Duration
	// LeaseTTL bounds one lease grant; polls renew it.
	LeaseTTL time.Duration
	// FailoverAfter is how long a standby tolerates primary silence
	// before promoting itself (0 = 3x HeartbeatTTL).
	FailoverAfter time.Duration
	// PollWait bounds the /cluster/log long-poll hold.
	PollWait time.Duration
	// RingReplicas is the virtual-point count per worker (0 = default).
	RingReplicas int
	// Standby starts this coordinator as a follower of PeerURL.
	Standby bool
	PeerURL string
	Logger  *slog.Logger
	// ExploreLimit bounds concurrently running /explore searches
	// (default 2); each search's point jobs still shard across workers
	// through the ordinary admission path.
	ExploreLimit int
}

// cjob is one job in the coordinator's table.  Mutable fields are
// guarded by Coordinator.mu; done is closed exactly once on terminal.
type cjob struct {
	id   string
	key  string // spec content key (ring placement + store address)
	ckey string // coalescing/store key (content key + request shape)
	req  api.RunRequest

	state  string
	worker string // dispatch target / executor ("" = unassigned)
	stolen bool

	redispatches int
	leaseUntil   time.Time
	enqueued     time.Time
	wall         time.Duration

	row    *harness.RunRow
	cached bool
	errMsg string

	done   chan struct{}
	sweeps []*csweep
}

func (j *cjob) terminal() bool {
	switch j.state {
	case api.StateDone, api.StateFailed, api.StateCanceled:
		return true
	}
	return false
}

type csweep struct {
	id   string
	jobs []*cjob
}

// workerState is one joined worker.
type workerState struct {
	id       string
	slots    int
	lastSeen time.Time
	queue    []*cjob          // dispatch queue (queued jobs placed here)
	leased   map[string]*cjob // running jobs held under lease
	done     int64
	stolen   int64 // jobs stolen FROM this worker
}

// Coordinator is the cluster's scheduling brain.  It accepts the
// daemon's job API unchanged, shards admitted jobs across workers by
// consistent hashing on the content key, and replicates its decisions
// to a standby through a sequenced log so a crash mid-sweep fails over
// without losing or duplicating completed results.
type Coordinator struct {
	cfg CoordinatorConfig
	st  *store.Store
	bus *server.EventBus
	met *clusterMetrics
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	start  time.Time

	mu         sync.Mutex
	role       string
	epoch      int64
	ring       *Ring
	workers    map[string]*workerState
	jobs       map[string]*cjob
	inflight   map[string]*cjob // coalescing key -> live job
	sweeps     map[string]*csweep
	unassigned []*cjob
	nextJob    int64
	nextSweep  int64
	lastSeq    int64
	wal        []api.ClusterLogRecord
	walNotify  chan struct{}
	// Replication-lag bookkeeping.  On the primary, followerSeq is the
	// highest log sequence any follower has confirmed: a poll from seq N
	// acknowledges every record below N.  On a live standby, following
	// is true and primarySeq mirrors the primary's NextSeq-1 from the
	// last successful poll.
	followerSeq int64
	primarySeq  int64
	following   bool

	expl *explore.Manager // set once in NewCoordinator
}

// NewCoordinator builds a coordinator and starts its janitor (and, on a
// standby, the follower loop).  Stop releases both.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.NodeID == "" {
		cfg.NodeID = "coordinator"
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 3 * cfg.HeartbeatTTL
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = DefaultPollWait
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir, cfg.StoreMaxBytes); err != nil {
			return nil, err
		}
		st.SetLogger(cfg.Logger)
	}
	if cfg.Standby && cfg.PeerURL == "" {
		return nil, errors.New("cluster: standby needs a peer URL to follow")
	}
	met := newClusterMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:       cfg,
		st:        st,
		bus:       server.NewEventBus(met.sseEvents, met.sseDropped),
		met:       met,
		log:       cfg.Logger,
		ctx:       ctx,
		cancel:    cancel,
		start:     time.Now(),
		role:      api.RolePrimary,
		epoch:     1,
		ring:      NewRing(cfg.RingReplicas),
		workers:   make(map[string]*workerState),
		jobs:      make(map[string]*cjob),
		inflight:  make(map[string]*cjob),
		sweeps:    make(map[string]*csweep),
		walNotify: make(chan struct{}),
	}
	c.expl = newExploreManager(c)
	if cfg.Standby {
		c.role = api.RoleStandby
		c.epoch = 0
		c.following = true
		c.wg.Add(1)
		go c.follow()
	}
	c.mu.Lock()
	c.updateGaugesLocked()
	c.mu.Unlock()
	c.wg.Add(1)
	go c.janitor()
	return c, nil
}

// Stop shuts the coordinator down: background loops exit, the event bus
// closes.  In-flight worker executions are not interrupted — their
// completions simply have nowhere to land (the failover peer, if any,
// accepts them).
func (c *Coordinator) Stop() {
	// Cancel explorations first and wait for their drivers: they park on
	// job completions and exit promptly once their contexts end.
	c.expl.Shutdown()
	c.cancel()
	c.wg.Wait()
	c.bus.Close()
}

// Role reports "primary" or "standby".
func (c *Coordinator) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Epoch reports the current coordination epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// submit admits one request: coalesce onto an identical live job,
// answer from the coordinator's own store, or place on a worker queue
// chosen by the ring.  Mirrors the daemon's submit contract (429 when
// every eligible queue is full) so the client-visible API is unchanged.
func (c *Coordinator) submit(req api.RunRequest) (*cjob, bool, error) {
	key := req.Spec.Key()
	ckey := key
	if req.Speedup {
		ckey += "+speedup"
	}
	// Cheap existence probe first: Has is a stat, Get decodes and
	// checksums.  Only a likely hit pays the full read.
	var hit *harness.RunRow
	if c.st != nil && c.st.Has(ckey) {
		if payload, ok := c.st.Get(ckey); ok {
			var row harness.RunRow
			if json.Unmarshal(payload, &row) == nil && row.Spec == req.Spec {
				hit = &row
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role != api.RolePrimary {
		return nil, false, ErrNotPrimary
	}
	if j, ok := c.inflight[ckey]; ok {
		c.met.coalesced.Inc()
		return j, false, nil
	}
	j := &cjob{
		key: key, ckey: ckey, req: req,
		state:    api.StateQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	if hit == nil {
		if err := c.placeLocked(j, false); err != nil {
			return nil, false, err
		}
	}
	c.nextJob++
	j.id = "j" + strconv.FormatInt(c.nextJob, 10)
	c.jobs[j.id] = j
	c.inflight[ckey] = j
	c.met.created.Inc()
	c.appendLogLocked(api.ClusterLogRecord{Type: api.ClusterLogSubmit, JobID: j.id, Req: &req})
	c.bus.Publish(api.Event{Type: "jobQueued", Job: c.statusLocked(j), Worker: j.worker})
	if c.log != nil {
		c.log.LogAttrs(c.ctx, slog.LevelInfo, "job queued",
			slog.String("job", j.id),
			slog.String("app", req.Spec.App),
			slog.String("protocol", string(req.Spec.Protocol)),
			slog.Int("procs", req.Spec.Procs),
			slog.String("worker", j.worker))
	}
	if hit != nil {
		c.met.coordCacheHits.Inc()
		c.finishLocked(j, c.cfg.NodeID, hit, true, "")
	}
	c.updateGaugesLocked()
	return j, true, nil
}

// placeLocked assigns a queued job to a worker: the key's ring home
// first, then successors whose queues have room.  With force (re-
// dispatch paths, where dropping is not an option) or with no workers
// at all, the job parks on the unassigned list instead of erroring.
func (c *Coordinator) placeLocked(j *cjob, force bool) error {
	for _, n := range c.ring.Successors(j.key, 0) {
		w := c.workers[n]
		if w == nil || len(w.queue) >= c.cfg.QueueDepth {
			continue
		}
		j.worker = n
		j.state = api.StateQueued
		w.queue = append(w.queue, j)
		return nil
	}
	if force || len(c.workers) == 0 {
		if !force && len(c.unassigned) >= 4*c.cfg.QueueDepth {
			return server.ErrQueueFull
		}
		j.worker = ""
		j.state = api.StateQueued
		c.unassigned = append(c.unassigned, j)
		return nil
	}
	return server.ErrQueueFull
}

// lease is the worker protocol's heart: register/refresh the worker,
// renew its held leases, then hand out jobs — its own ring share FIFO,
// then (if it still has idle slots) jobs stolen from the tail of the
// most backlogged other worker.
func (c *Coordinator) lease(req api.ClusterLeaseRequest) api.ClusterLeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Epoch > c.epoch {
		c.stepDownLocked(req.Epoch, "lease from "+req.WorkerID)
	}
	if c.role != api.RolePrimary {
		return api.ClusterLeaseResponse{Epoch: c.epoch, Role: c.role}
	}
	w := c.ensureWorkerLocked(req.WorkerID, req.Slots, now)
	w.lastSeen = now
	if req.Slots > 0 {
		w.slots = req.Slots
	}
	for _, id := range req.Held {
		if j := c.jobs[id]; j != nil && j.state == api.StateRunning && j.worker == req.WorkerID {
			j.leaseUntil = now.Add(c.cfg.LeaseTTL)
		}
	}
	var out []api.ClusterLeasedJob
	for len(out) < req.Max && len(w.queue) > 0 {
		j := w.queue[0]
		w.queue = w.queue[1:]
		out = append(out, c.leaseJobLocked(j, w, false, now))
	}
	for len(out) < req.Max {
		v := c.stealVictimLocked(w.id)
		if v == nil {
			break
		}
		j := v.queue[len(v.queue)-1]
		v.queue = v.queue[:len(v.queue)-1]
		v.stolen++
		c.met.stolen.With(w.id).Inc()
		if c.log != nil {
			c.log.LogAttrs(c.ctx, slog.LevelInfo, "job stolen",
				slog.String("job", j.id), slog.String("from", v.id), slog.String("by", w.id))
		}
		out = append(out, c.leaseJobLocked(j, w, true, now))
	}
	c.updateGaugesLocked()
	return api.ClusterLeaseResponse{Epoch: c.epoch, Role: c.role, Jobs: out}
}

func (c *Coordinator) leaseJobLocked(j *cjob, w *workerState, stolen bool, now time.Time) api.ClusterLeasedJob {
	j.state = api.StateRunning
	j.worker = w.id
	j.stolen = j.stolen || stolen
	j.leaseUntil = now.Add(c.cfg.LeaseTTL)
	w.leased[j.id] = j
	c.bus.Publish(api.Event{Type: "jobStarted", Job: c.statusLocked(j), Worker: w.id})
	return api.ClusterLeasedJob{ID: j.id, Req: j.req, Stolen: stolen}
}

// stealVictimLocked picks the most backlogged other worker worth
// robbing: it must have queued work it is in no position to start soon
// (all slots busy, or a queue of 2+).  An idle worker with one queued
// job keeps it — it will lease it on its next poll, and moving it would
// only cost cache locality.
func (c *Coordinator) stealVictimLocked(thief string) *workerState {
	var best *workerState
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := c.workers[id]
		if id == thief || len(v.queue) == 0 {
			continue
		}
		if len(v.leased) < v.slots && len(v.queue) < 2 {
			continue
		}
		if best == nil || len(v.queue) > len(best.queue) {
			best = v
		}
	}
	return best
}

// ensureWorkerLocked registers a worker on first contact (join or lease
// — after a failover the new primary learns its membership this way)
// and drains any unassigned backlog onto the grown ring.
func (c *Coordinator) ensureWorkerLocked(id string, slots int, now time.Time) *workerState {
	if w, ok := c.workers[id]; ok {
		return w
	}
	if slots <= 0 {
		slots = 1
	}
	w := &workerState{id: id, slots: slots, lastSeen: now, leased: make(map[string]*cjob)}
	c.workers[id] = w
	c.ring.Add(id)
	c.appendLogLocked(api.ClusterLogRecord{Type: api.ClusterLogJoin, Worker: id})
	c.bus.Publish(api.Event{Type: "workerJoined", Worker: id})
	if c.log != nil {
		c.log.LogAttrs(c.ctx, slog.LevelInfo, "worker joined",
			slog.String("worker", id), slog.Int("slots", slots))
	}
	// Membership changed: re-place every queued job so placement stays
	// the pure ring function of (members, key) — anything parked on a
	// successor (or unassigned) moves home if the new worker owns it.
	c.rebalanceLocked()
	return w
}

// rebalanceLocked re-derives every queued job's placement from the
// current ring.  Running jobs are left alone — their lease, not the
// ring, owns them now.
func (c *Coordinator) rebalanceLocked() {
	var queued []*cjob
	for _, w := range c.workers {
		queued = append(queued, w.queue...)
		w.queue = w.queue[:0]
	}
	queued = append(queued, c.unassigned...)
	c.unassigned = nil
	sort.Slice(queued, func(i, k int) bool { return jobSeq(queued[i].id) < jobSeq(queued[k].id) })
	for _, j := range queued {
		j.worker = ""
		c.placeLocked(j, true)
	}
}

// loseWorkerLocked removes a dead worker and re-dispatches everything
// it held.  Ring determinism works for us here: a re-dispatched job
// lands on the dead worker's ring successor, and if the job actually
// completed before the death was detected, the duplicate completion is
// discarded idempotently — the store row and the recomputed row are
// byte-identical by simulator determinism anyway.
func (c *Coordinator) loseWorkerLocked(w *workerState) {
	delete(c.workers, w.id)
	c.ring.Remove(w.id)
	c.met.queueDepth.With(w.id).Set(0)
	c.met.leased.With(w.id).Set(0)
	c.appendLogLocked(api.ClusterLogRecord{Type: api.ClusterLogLost, Worker: w.id})
	c.bus.Publish(api.Event{Type: "workerLost", Worker: w.id})
	if c.log != nil {
		c.log.LogAttrs(c.ctx, slog.LevelWarn, "worker lost",
			slog.String("worker", w.id),
			slog.Int("queued", len(w.queue)), slog.Int("leased", len(w.leased)))
	}
	for _, j := range w.queue {
		j.worker = ""
		c.placeLocked(j, true)
	}
	w.queue = nil
	for _, j := range w.leased {
		c.redispatchLocked(j, "worker "+w.id+" lost")
	}
	w.leased = make(map[string]*cjob)
}

// redispatchLocked returns a running job to the queued state and places
// it again.
func (c *Coordinator) redispatchLocked(j *cjob, reason string) {
	if j.terminal() {
		return
	}
	c.dequeueLocked(j)
	j.worker = ""
	j.state = api.StateQueued
	j.leaseUntil = time.Time{}
	j.redispatches++
	c.met.redispatches.Inc()
	if c.log != nil {
		c.log.LogAttrs(c.ctx, slog.LevelWarn, "job re-dispatched",
			slog.String("job", j.id), slog.String("reason", reason))
	}
	c.placeLocked(j, true)
	c.bus.Publish(api.Event{Type: "jobQueued", Job: c.statusLocked(j), Worker: j.worker})
}

// dequeueLocked detaches a job from whatever scheduling structure
// currently holds it (owner queue, owner lease table, or unassigned).
func (c *Coordinator) dequeueLocked(j *cjob) {
	if j.worker != "" {
		if w := c.workers[j.worker]; w != nil {
			for i, q := range w.queue {
				if q == j {
					w.queue = append(w.queue[:i], w.queue[i+1:]...)
					break
				}
			}
			delete(w.leased, j.id)
		}
		return
	}
	for i, q := range c.unassigned {
		if q == j {
			c.unassigned = append(c.unassigned[:i], c.unassigned[i+1:]...)
			break
		}
	}
}

// complete lands one worker-reported result.  Idempotent: a job
// already terminal acknowledges as a duplicate and changes nothing.
func (c *Coordinator) complete(req api.ClusterCompleteRequest) (api.ClusterCompleteResponse, error) {
	now := time.Now()
	c.mu.Lock()
	if req.Epoch > c.epoch {
		c.stepDownLocked(req.Epoch, "completion from "+req.WorkerID)
	}
	if c.role != api.RolePrimary {
		epoch := c.epoch
		c.mu.Unlock()
		return api.ClusterCompleteResponse{Epoch: epoch}, ErrNotPrimary
	}
	j, ok := c.jobs[req.JobID]
	if !ok {
		epoch := c.epoch
		c.mu.Unlock()
		return api.ClusterCompleteResponse{Epoch: epoch}, errUnknownJob
	}
	if w := c.workers[req.WorkerID]; w != nil {
		w.lastSeen = now
	}
	if j.terminal() {
		c.met.duplicates.Inc()
		epoch := c.epoch
		c.mu.Unlock()
		return api.ClusterCompleteResponse{Epoch: epoch, Duplicate: true}, nil
	}
	c.dequeueLocked(j)
	if req.Cached {
		c.met.workerCacheHits.Inc()
	}
	c.met.workerDone.With(req.WorkerID).Inc()
	if w := c.workers[req.WorkerID]; w != nil {
		w.done++
	}
	c.finishLocked(j, req.WorkerID, req.Row, req.Cached, req.Error)
	c.updateGaugesLocked()
	epoch := c.epoch
	ckey := j.ckey
	c.mu.Unlock()
	// Write-back outside the lock; store damage must not fail the ack.
	if req.Row != nil && req.Error == "" && c.st != nil {
		if payload, err := json.Marshal(req.Row); err == nil {
			_ = c.st.Put(ckey, payload)
		}
	}
	return api.ClusterCompleteResponse{Epoch: epoch}, nil
}

// finishLocked moves a job to done/failed, logs the transition to the
// replicated log and unparks watchers.  Cancellation goes through
// cancelLocked instead (its log record type differs).
func (c *Coordinator) finishLocked(j *cjob, worker string, row *harness.RunRow, cached bool, errMsg string) {
	j.worker = worker
	j.wall = time.Since(j.enqueued)
	if errMsg != "" {
		j.state = api.StateFailed
		j.errMsg = errMsg
		c.met.jobsFailed.Inc()
	} else {
		j.state = api.StateDone
		j.row = row
		j.cached = cached
		c.met.jobsDone.Inc()
	}
	delete(c.inflight, j.ckey)
	close(j.done)
	c.appendLogLocked(api.ClusterLogRecord{
		Type: api.ClusterLogComplete, JobID: j.id,
		Row: row, Cached: cached, Error: errMsg, Worker: worker,
	})
	typ := "jobDone"
	if errMsg != "" {
		typ = "jobFailed"
	}
	c.bus.Publish(api.Event{Type: typ, Job: c.statusLocked(j), Worker: worker})
	for _, sw := range j.sweeps {
		c.bus.Publish(api.Event{Type: "sweepProgress", Sweep: c.sweepStatusLocked(sw, false)})
	}
	if c.log != nil {
		lvl := slog.LevelInfo
		if errMsg != "" {
			lvl = slog.LevelWarn
		}
		c.log.LogAttrs(c.ctx, lvl, "job "+j.state,
			slog.String("job", j.id), slog.String("worker", worker),
			slog.Bool("cached", cached), slog.Duration("wall", j.wall))
	}
}

// cancelLocked cancels a job.  Queued jobs leave the schedule
// immediately; a running job is marked terminal here and its eventual
// completion discarded as a duplicate (the coordinator has no channel
// to interrupt a worker mid-simulation).  Reports whether the job was
// still live.
func (c *Coordinator) cancelLocked(j *cjob) bool {
	if j.terminal() {
		return false
	}
	c.dequeueLocked(j)
	j.state = api.StateCanceled
	j.errMsg = context.Canceled.Error()
	j.wall = time.Since(j.enqueued)
	c.met.jobsCanceled.Inc()
	delete(c.inflight, j.ckey)
	close(j.done)
	c.appendLogLocked(api.ClusterLogRecord{Type: api.ClusterLogCancel, JobID: j.id})
	c.bus.Publish(api.Event{Type: "jobCanceled", Job: c.statusLocked(j)})
	for _, sw := range j.sweeps {
		c.bus.Publish(api.Event{Type: "sweepProgress", Sweep: c.sweepStatusLocked(sw, false)})
	}
	return true
}

// janitor is the failure detector: it declares workers lost after
// heartbeat silence, re-dispatches expired leases, and drains the
// unassigned backlog when capacity appears.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	tick := c.cfg.HeartbeatTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.janitorOnce()
		}
	}
}

func (c *Coordinator) janitorOnce() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role != api.RolePrimary {
		return
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if w := c.workers[id]; now.Sub(w.lastSeen) > c.cfg.HeartbeatTTL {
			c.loseWorkerLocked(w)
		}
	}
	for _, j := range c.jobs {
		if j.state == api.StateRunning && now.After(j.leaseUntil) {
			c.redispatchLocked(j, "lease expired")
		}
	}
	c.drainUnassignedLocked()
	c.updateGaugesLocked()
}

func (c *Coordinator) drainUnassignedLocked() {
	if len(c.unassigned) == 0 || len(c.workers) == 0 {
		return
	}
	pending := c.unassigned
	c.unassigned = nil
	for _, j := range pending {
		if err := c.placeLocked(j, false); err != nil {
			c.unassigned = append(c.unassigned, j)
		}
	}
}

// appendLogLocked sequences a record into the replicated log and wakes
// long-polling followers.  The log is in-memory and unbounded — see
// DESIGN.md for the tradeoff (a sweep's worth of records is small, and
// a restarted coordinator re-derives state from its store instead).
func (c *Coordinator) appendLogLocked(rec api.ClusterLogRecord) {
	c.lastSeq++
	rec.Seq = c.lastSeq
	rec.Epoch = c.epoch
	c.wal = append(c.wal, rec)
	close(c.walNotify)
	c.walNotify = make(chan struct{})
	c.met.logSeq.Set(float64(c.lastSeq))
}

// waitLog serves the follower's log tail, long-polling up to PollWait
// when wait is set and no records past from exist yet.
func (c *Coordinator) waitLog(ctx context.Context, from int64, wait bool) api.ClusterLogResponse {
	if from < 1 {
		from = 1
	}
	deadline := time.Now().Add(c.cfg.PollWait)
	for {
		c.mu.Lock()
		// A poll from seq N is the follower's acknowledgement of every
		// record below N — the primary side of the replication-lag
		// measurement.
		if fs := from - 1; fs > c.followerSeq {
			c.followerSeq = fs
			c.met.replLag.Set(float64(c.replicationLagLocked()))
		}
		var recs []api.ClusterLogRecord
		if idx := int(from - 1); idx < len(c.wal) {
			recs = append([]api.ClusterLogRecord(nil), c.wal[idx:]...)
		}
		resp := api.ClusterLogResponse{
			Epoch: c.epoch, Role: c.role, NextSeq: c.lastSeq + 1, Records: recs,
		}
		notify := c.walNotify
		c.mu.Unlock()
		if len(recs) > 0 || !wait {
			return resp
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return resp
		}
		select {
		case <-notify:
		case <-time.After(remain):
			return resp
		case <-ctx.Done():
			return resp
		}
	}
}

// registerSweep groups already-admitted jobs as one tracked sweep.
func (c *Coordinator) registerSweep(jobs []*cjob) *csweep {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSweep++
	sw := &csweep{id: "s" + strconv.FormatInt(c.nextSweep, 10), jobs: jobs}
	c.sweeps[sw.id] = sw
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		j.sweeps = append(j.sweeps, sw)
		ids[i] = j.id
	}
	c.appendLogLocked(api.ClusterLogRecord{Type: api.ClusterLogSweep, SweepID: sw.id, JobIDs: ids})
	return sw
}

// waitJob parks until the job is terminal or ctx expires.  Coordinator
// jobs are always detached — a sweep in flight on three machines does
// not stop because one HTTP watcher went away.
func (c *Coordinator) waitJob(ctx context.Context, j *cjob) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stepDownLocked fences this coordinator: a message carried a higher
// epoch, so a peer has been promoted and this node's writes must stop.
// It does not auto-rejoin as a follower — the operator restarts it as a
// standby of the new primary (single-failover assumption, DESIGN.md).
func (c *Coordinator) stepDownLocked(newEpoch int64, why string) {
	if c.role == api.RolePrimary {
		c.role = api.RoleStandby
		c.bus.Publish(api.Event{Type: "fenced", Worker: c.cfg.NodeID})
		if c.log != nil {
			c.log.LogAttrs(c.ctx, slog.LevelWarn, "fenced: stepping down",
				slog.Int64("seenEpoch", newEpoch), slog.String("via", why))
		}
	}
	if newEpoch > c.epoch {
		c.epoch = newEpoch
	}
	c.updateGaugesLocked()
}

// Status snapshots membership and scheduling state.
func (c *Coordinator) Status() api.ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ws := make([]api.ClusterWorker, 0, len(ids))
	for _, id := range ids {
		w := c.workers[id]
		ws = append(ws, api.ClusterWorker{
			ID: w.id, Slots: w.slots,
			Queued: len(w.queue), Leased: len(w.leased),
			Done: w.done, Stolen: w.stolen,
			LastSeen: w.lastSeen.UTC().Format(time.RFC3339Nano),
		})
	}
	standbySeq := c.followerSeq
	if c.following {
		standbySeq = c.lastSeq
	}
	return api.ClusterStatus{
		Role: c.role, Epoch: c.epoch, LogSeq: c.lastSeq,
		Workers: ws, Unassigned: len(c.unassigned),
		Redispatches:   c.met.redispatches.Value(),
		CacheHits:      c.met.coordCacheHits.Value(),
		Duplicates:     c.met.duplicates.Value(),
		StandbySeq:     standbySeq,
		ReplicationLag: c.replicationLagLocked(),
	}
}

// replicationLagLocked measures the replication link's backlog in log
// records.  On the primary it is how far the best follower trails the
// log head; on a live standby, how far this node trails the primary's
// head as of the last poll.  Caller holds c.mu.
func (c *Coordinator) replicationLagLocked() int64 {
	var lag int64
	if c.following {
		lag = c.primarySeq - c.lastSeq
	} else {
		lag = c.lastSeq - c.followerSeq
	}
	if lag < 0 {
		return 0
	}
	return lag
}

// statusLocked snapshots one job as the wire RunStatus.
func (c *Coordinator) statusLocked(j *cjob) *api.RunStatus {
	st := &api.RunStatus{
		ID: j.id, Key: j.key, State: j.state, Cached: j.cached,
		Row: j.row, Worker: j.worker,
	}
	if j.state == api.StateFailed || j.state == api.StateCanceled {
		st.Error = j.errMsg
	}
	if j.wall > 0 {
		st.WallMS = j.wall.Milliseconds()
	}
	return st
}

func (c *Coordinator) sweepStatusLocked(sw *csweep, includePoints bool) *api.SweepStatus {
	st := &api.SweepStatus{ID: sw.id, Total: len(sw.jobs)}
	for _, j := range sw.jobs {
		switch j.state {
		case api.StateDone:
			st.Done++
		case api.StateFailed, api.StateCanceled:
			st.Failed++
		}
		if includePoints {
			st.Points = append(st.Points, *c.statusLocked(j))
		}
	}
	return st
}

// updateGaugesLocked refreshes the aggregate and per-worker gauges from
// scheduler state.  Called at the end of every mutating entry point so
// scrapes read current values without taking c.mu.
func (c *Coordinator) updateGaugesLocked() {
	c.met.workers.Set(float64(len(c.workers)))
	c.met.epoch.Set(float64(c.epoch))
	if c.role == api.RolePrimary {
		c.met.isPrimary.Set(1)
	} else {
		c.met.isPrimary.Set(0)
	}
	c.met.unassigned.Set(float64(len(c.unassigned)))
	c.met.logSeq.Set(float64(c.lastSeq))
	c.met.replLag.Set(float64(c.replicationLagLocked()))
	for id, w := range c.workers {
		c.met.queueDepth.With(id).Set(float64(len(w.queue)))
		c.met.leased.With(id).Set(float64(len(w.leased)))
	}
}

// jobSeq extracts the numeric part of a "j<n>" job ID (0 on mismatch).
func jobSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// sweepSeq extracts the numeric part of an "s<n>" sweep ID (0 on mismatch).
func sweepSeq(id string) int64 {
	if len(id) < 2 || id[0] != 's' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
