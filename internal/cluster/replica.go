package cluster

import (
	"context"
	"encoding/json"
	"log/slog"
	"sort"
	"time"

	"swsm/internal/server/api"
	"swsm/internal/server/client"
)

// This file is the standby side of the lease/epoch scheme: a follower
// loop that tails the primary's log, an apply function that replays
// records into the shadow job table, and the promotion path that turns
// the shadow into a live schedule under a higher epoch.
//
// The scheme is deliberately not consensus.  There is one primary and
// one standby; the log is a simple sequenced stream; failover is
// detection (primary silent past FailoverAfter) plus promotion (epoch+1)
// plus fencing (any node seeing a higher epoch stops writing).  What
// makes this safe where it would normally lose work is the layer below:
// results are content-addressed and the simulator deterministic, so a
// record lost off the log tail costs at most a re-dispatch that the
// owning worker answers from its own store.

// storePut is a deferred store write-back collected under the mutex and
// applied outside it.
type storePut struct {
	key     string
	payload []byte
}

// follow tails the primary's log until the coordinator stops or the
// primary goes silent long enough to trigger promotion.
func (c *Coordinator) follow() {
	defer c.wg.Done()
	cl := client.New(c.cfg.PeerURL)
	cl.Retries = -1 // fail fast; this loop is the failure detector
	from := int64(1)
	lastContact := time.Now()
	for {
		if c.ctx.Err() != nil {
			return
		}
		reqCtx, cancel := context.WithTimeout(c.ctx, c.cfg.PollWait+2*time.Second)
		resp, err := cl.PollLog(reqCtx, from, true)
		cancel()
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			if time.Since(lastContact) > c.cfg.FailoverAfter {
				c.promote()
				return
			}
			select {
			case <-time.After(c.cfg.PollWait / 8):
			case <-c.ctx.Done():
				return
			}
			continue
		}
		lastContact = time.Now()
		var puts []storePut
		c.mu.Lock()
		if resp.Epoch > c.epoch {
			c.epoch = resp.Epoch
		}
		// NextSeq-1 is the primary's log head as of this poll — the
		// standby side of the replication-lag measurement.
		if head := resp.NextSeq - 1; head > c.primarySeq {
			c.primarySeq = head
		}
		for _, rec := range resp.Records {
			if rec.Seq <= c.lastSeq {
				continue // replayed tail after a reconnect
			}
			if p := c.applyLocked(rec); p != nil {
				puts = append(puts, *p)
			}
			from = rec.Seq + 1
		}
		c.updateGaugesLocked()
		c.mu.Unlock()
		// Warm the standby's store outside the lock: a failover then
		// serves already-completed specs from its own coordinator cache.
		for _, p := range puts {
			if c.st != nil {
				_ = c.st.Put(p.key, p.payload)
			}
		}
	}
}

// applyLocked replays one log record into the shadow state.  Only the
// job/sweep tables are replicated; queue placement and leases are
// derived state the new primary rebuilds from the ring, and membership
// is re-learned live from the workers' own lease polls.
func (c *Coordinator) applyLocked(rec api.ClusterLogRecord) *storePut {
	c.lastSeq = rec.Seq
	c.wal = append(c.wal, rec)
	close(c.walNotify)
	c.walNotify = make(chan struct{})
	switch rec.Type {
	case api.ClusterLogSubmit:
		if rec.Req == nil {
			return nil
		}
		if _, ok := c.jobs[rec.JobID]; ok {
			return nil
		}
		key := rec.Req.Spec.Key()
		ckey := key
		if rec.Req.Speedup {
			ckey += "+speedup"
		}
		j := &cjob{
			id: rec.JobID, key: key, ckey: ckey, req: *rec.Req,
			state:    api.StateQueued,
			enqueued: time.Now(),
			done:     make(chan struct{}),
		}
		c.jobs[j.id] = j
		if _, ok := c.inflight[ckey]; !ok {
			c.inflight[ckey] = j
		}
		if n := jobSeq(j.id); n > c.nextJob {
			c.nextJob = n
		}
	case api.ClusterLogComplete:
		j := c.jobs[rec.JobID]
		if j == nil || j.terminal() {
			return nil
		}
		j.worker = rec.Worker
		j.wall = time.Since(j.enqueued)
		if rec.Error != "" {
			j.state = api.StateFailed
			j.errMsg = rec.Error
		} else {
			j.state = api.StateDone
			j.row = rec.Row
			j.cached = rec.Cached
		}
		if c.inflight[j.ckey] == j {
			delete(c.inflight, j.ckey)
		}
		close(j.done)
		if rec.Row != nil && rec.Error == "" {
			if payload, err := json.Marshal(rec.Row); err == nil {
				return &storePut{key: j.ckey, payload: payload}
			}
		}
	case api.ClusterLogCancel:
		j := c.jobs[rec.JobID]
		if j == nil || j.terminal() {
			return nil
		}
		j.state = api.StateCanceled
		j.errMsg = context.Canceled.Error()
		if c.inflight[j.ckey] == j {
			delete(c.inflight, j.ckey)
		}
		close(j.done)
	case api.ClusterLogSweep:
		if _, ok := c.sweeps[rec.SweepID]; ok {
			return nil
		}
		sw := &csweep{id: rec.SweepID}
		for _, id := range rec.JobIDs {
			if j := c.jobs[id]; j != nil {
				sw.jobs = append(sw.jobs, j)
				j.sweeps = append(j.sweeps, sw)
			}
		}
		c.sweeps[sw.id] = sw
		if n := sweepSeq(sw.id); n > c.nextSweep {
			c.nextSweep = n
		}
	case api.ClusterLogJoin, api.ClusterLogLost:
		// Membership records are informational on a standby: liveness is
		// whatever the workers prove to the *current* primary, so the new
		// primary always re-learns membership from their lease polls.
	}
	return nil
}

// promote turns this standby into the primary under a fresh epoch.
// Every non-terminal job becomes unassigned; workers re-register
// through their next lease poll (adopting the higher epoch, which
// fences the old primary if it is merely partitioned rather than dead)
// and the unassigned backlog drains onto the rebuilt ring.  Jobs that
// completed after the log tail was lost re-dispatch to the same ring
// home, whose store answers without re-simulating — results stay
// exactly-once at the content-key level even though the job record ran
// "twice".
func (c *Coordinator) promote() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role == api.RolePrimary {
		return
	}
	c.role = api.RolePrimary
	c.following = false
	c.epoch++
	if c.epoch < 2 {
		// A standby that never reached its primary still needs a higher
		// epoch than the default primary boot epoch (1).
		c.epoch = 2
	}
	c.ring = NewRing(c.cfg.RingReplicas)
	c.workers = make(map[string]*workerState)
	c.unassigned = nil
	var pending []*cjob
	for _, j := range c.jobs {
		if !j.terminal() {
			pending = append(pending, j)
		}
	}
	sort.Slice(pending, func(i, k int) bool { return jobSeq(pending[i].id) < jobSeq(pending[k].id) })
	for _, j := range pending {
		j.worker = ""
		j.state = api.StateQueued
		j.leaseUntil = time.Time{}
		c.unassigned = append(c.unassigned, j)
	}
	c.met.failovers.Inc()
	c.bus.Publish(api.Event{Type: "failover", Worker: c.cfg.NodeID})
	if c.log != nil {
		c.log.LogAttrs(c.ctx, slog.LevelWarn, "promoted to primary",
			slog.Int64("epoch", c.epoch),
			slog.Int64("logSeq", c.lastSeq),
			slog.Int("pendingJobs", len(pending)))
	}
	c.updateGaugesLocked()
}
