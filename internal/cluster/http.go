package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"swsm/internal/harness"
	"swsm/internal/server"
	"swsm/internal/server/api"
)

// Handler returns the coordinator's HTTP API.  The job surface (/runs,
// /sweeps, /events, /metrics, /healthz) is the daemon's API unchanged —
// svmbench -server and the thin client cannot tell a coordinator from a
// single daemon — plus the cluster protocol underneath:
//
//	POST /cluster/join      worker registration
//	POST /cluster/lease     heartbeat + lease renewal + job handout
//	POST /cluster/complete  terminal result (idempotent)
//	GET  /cluster/log       replicated log tail (?from=N&wait=1 long-polls)
//	GET  /cluster/status    membership/scheduling snapshot
//
// A standby serves reads and the cluster protocol but rejects
// submissions with 503 until promoted.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", c.handleSubmitRun)
	mux.HandleFunc("GET /runs", c.handleListRuns)
	mux.HandleFunc("GET /runs/{id}", c.handleGetRun)
	mux.HandleFunc("DELETE /runs/{id}", c.handleCancelRun)
	mux.HandleFunc("POST /sweeps", c.handleSubmitSweep)
	mux.HandleFunc("GET /sweeps/{id}", c.handleGetSweep)
	mux.HandleFunc("POST /explore", c.expl.HandleSubmit)
	mux.HandleFunc("GET /explore", c.expl.HandleList)
	mux.HandleFunc("GET /explore/{id}", c.expl.HandleGet)
	mux.HandleFunc("GET /explore/{id}/frontier", c.expl.HandleFrontierCSV)
	mux.HandleFunc("DELETE /explore/{id}", c.expl.HandleCancel)
	mux.HandleFunc("GET /events", c.handleEvents)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("POST /cluster/join", c.handleJoin)
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/complete", c.handleComplete)
	mux.HandleFunc("GET /cluster/log", c.handleLog)
	mux.HandleFunc("GET /cluster/status", c.handleStatus)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submitError maps admission errors exactly as the daemon does, adding
// the standby case (503, like draining: back off and come back).
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotPrimary):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, server.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "", "0", "false":
		return false
	}
	return true
}

func (c *Coordinator) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Same admission gate as the daemon: a bad spec is rejected here,
	// before it is dispatched to (and fails on) a worker.
	if err := server.ValidateRequest(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	j, _, err := c.submit(req)
	if err != nil {
		submitError(w, err)
		return
	}
	if wantWait(r) {
		if err := c.waitJob(r.Context(), j); err != nil {
			return
		}
	}
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	code := http.StatusAccepted
	if st.State == api.StateDone || st.State == api.StateFailed || st.State == api.StateCanceled {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleListRuns(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]api.RunStatus, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, *c.statusLocked(j))
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return jobSeq(out[i].ID) > jobSeq(out[k].ID) })
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) jobByID(r *http.Request) (*cjob, bool) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	return j, ok
}

func (c *Coordinator) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobByID(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if wantWait(r) {
		if err := c.waitJob(r.Context(), j); err != nil {
			return
		}
	}
	c.mu.Lock()
	st := c.statusLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobByID(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	live := c.cancelLocked(j)
	st := c.statusLocked(j)
	c.updateGaugesLocked()
	c.mu.Unlock()
	if !live && st.State != api.StateCanceled {
		httpError(w, http.StatusConflict, "job %s already %s", st.ID, st.State)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "sweep has no points")
		return
	}
	for i, p := range req.Points {
		if err := server.ValidateRequest(p); err != nil {
			httpError(w, http.StatusBadRequest, "invalid point %d: %v", i, err)
			return
		}
	}
	// All-or-nothing admission, as on the daemon: rollback cancels only
	// jobs this sweep created, never coalesced ones.
	jobs := make([]*cjob, 0, len(req.Points))
	var ours []*cjob
	for i, p := range req.Points {
		j, created, err := c.submit(p)
		if err != nil {
			c.mu.Lock()
			for _, mine := range ours {
				if mine.state == api.StateQueued {
					c.cancelLocked(mine)
				}
			}
			c.updateGaugesLocked()
			c.mu.Unlock()
			if errors.Is(err, server.ErrQueueFull) {
				err = fmt.Errorf("%w admitting point %d of %d", err, i, len(req.Points))
			}
			submitError(w, err)
			return
		}
		jobs = append(jobs, j)
		if created {
			ours = append(ours, j)
		}
	}
	sw := c.registerSweep(jobs)

	if wantWait(r) {
		for _, j := range jobs {
			if err := c.waitJob(r.Context(), j); err != nil {
				return
			}
		}
	}
	c.mu.Lock()
	st := c.sweepStatusLocked(sw, true)
	c.mu.Unlock()
	code := http.StatusAccepted
	if st.Done+st.Failed == st.Total {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	sw, ok := c.sweeps[r.PathValue("id")]
	var st *api.SweepStatus
	if ok {
		st = c.sweepStatusLocked(sw, true)
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents is the coordinator's SSE fan-in: every worker's job
// transitions, membership changes and failover events on one stream.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := c.bus.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": %s coordinator connected\n\n", server.Version)
	fl.Flush()

	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
			fl.Flush()
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, c.Status())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.reg.WritePrometheus(w)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	role, epoch, workers := c.role, c.epoch, len(c.workers)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, api.Health{
		OK: true, Version: server.Version, KeyVersion: harness.KeyVersion,
		Role: role, Epoch: epoch, Workers: workers,
	})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterJoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		httpError(w, http.StatusBadRequest, "bad join body")
		return
	}
	c.mu.Lock()
	if req.Epoch > c.epoch {
		c.stepDownLocked(req.Epoch, "join from "+req.WorkerID)
	}
	if c.role == api.RolePrimary {
		c.ensureWorkerLocked(req.WorkerID, req.Slots, time.Now())
	}
	resp := api.ClusterJoinResponse{Epoch: c.epoch, Role: c.role}
	c.updateGaugesLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterLeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		httpError(w, http.StatusBadRequest, "bad lease body")
		return
	}
	writeJSON(w, http.StatusOK, c.lease(req))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req api.ClusterCompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.JobID == "" {
		httpError(w, http.StatusBadRequest, "bad complete body")
		return
	}
	resp, err := c.complete(req)
	switch {
	case errors.Is(err, ErrNotPrimary):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, errUnknownJob):
		httpError(w, http.StatusNotFound, "no job %q", req.JobID)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleLog(w http.ResponseWriter, r *http.Request) {
	from, _ := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	wait := false
	switch r.URL.Query().Get("wait") {
	case "", "0", "false":
	default:
		wait = true
	}
	writeJSON(w, http.StatusOK, c.waitLog(r.Context(), from, wait))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}
