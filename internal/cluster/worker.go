package cluster

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"swsm/internal/harness"
	"swsm/internal/server"
	"swsm/internal/server/api"
	"swsm/internal/server/client"
)

// WorkerConfig parameterizes a worker agent.
type WorkerConfig struct {
	// ID is the worker's stable identity.  Ring placement hashes it, so
	// it must survive restarts for the worker's store shard to keep
	// receiving the same keys.
	ID string
	// Coordinators lists coordinator base URLs in preference order
	// (primary first, standby after); the agent rotates on failure or on
	// a standby answer, which is how it follows a failover.
	Coordinators []string
	// Server is the local daemon whose engine executes leased jobs.
	Server *server.Server
	// Poll is the lease-poll (and heartbeat) interval.
	Poll   time.Duration
	Logger *slog.Logger
}

// Worker is the agent that plugs a daemon into the cluster: it polls
// the coordinator for leases sized to the daemon's idle pool slots,
// executes each leased job through the daemon's normal admission path
// (so the worker's persistent store and memo pool warm exactly as for
// local traffic — they are the cluster's distributed cache tier), and
// reports terminal results until acknowledged.
type Worker struct {
	cfg     WorkerConfig
	clients []*client.Client

	mu    sync.Mutex
	cur   int // index of the coordinator currently believed primary
	epoch int64
	held  map[string]struct{}
}

// NewWorker builds a worker agent; Run starts it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: worker needs an ID")
	}
	if len(cfg.Coordinators) == 0 {
		return nil, errors.New("cluster: worker needs at least one coordinator URL")
	}
	if cfg.Server == nil {
		return nil, errors.New("cluster: worker needs a server")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	w := &Worker{cfg: cfg, held: make(map[string]struct{})}
	for _, u := range cfg.Coordinators {
		cl := client.New(u)
		cl.Retries = -1 // the agent's own loop is the retry policy
		w.clients = append(w.clients, cl)
	}
	return w, nil
}

// Run polls for leases until ctx is cancelled, then waits for in-
// flight executions to finish reporting.  The lease poll doubles as the
// heartbeat: a worker that stops calling is declared lost after the
// coordinator's heartbeat TTL and its jobs re-dispatched.
func (w *Worker) Run(ctx context.Context) error {
	w.join(ctx)
	var inflight sync.WaitGroup
	t := time.NewTicker(w.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			inflight.Wait()
			return ctx.Err()
		case <-t.C:
			w.pollOnce(ctx, &inflight)
		}
	}
}

// join announces the worker to whichever coordinator answers as
// primary.  Best-effort: lease polls auto-register too (that is how a
// freshly promoted primary re-learns membership), so a failed join just
// delays the first lease by one poll.
func (w *Worker) join(ctx context.Context) {
	srv := w.cfg.Server
	for range w.clients {
		resp, err := w.client().Join(ctx, api.ClusterJoinRequest{
			WorkerID: w.cfg.ID, Slots: srv.Parallelism(), Epoch: w.epochNow(),
		})
		if err == nil {
			w.observeEpoch(resp.Epoch)
			if resp.Role == api.RolePrimary {
				return
			}
		}
		w.rotate()
	}
}

// pollOnce sends one lease request sized to the daemon's idle capacity
// and spawns an executor per granted job.
func (w *Worker) pollOnce(ctx context.Context, inflight *sync.WaitGroup) {
	srv := w.cfg.Server
	held := w.heldIDs()
	// Leased-but-not-yet-simulating jobs occupy the daemon's queue, not
	// a pool slot; count whichever view is larger so local submissions
	// sharing the daemon are never starved by over-leasing.
	busy := len(held)
	if sif := srv.SimsInFlight(); sif > busy {
		busy = sif
	}
	max := srv.Parallelism() - busy
	if max < 0 {
		max = 0
	}
	resp, err := w.client().Lease(ctx, api.ClusterLeaseRequest{
		WorkerID: w.cfg.ID, Slots: srv.Parallelism(),
		Max: max, Held: held, Epoch: w.epochNow(),
	})
	if err != nil {
		if ctx.Err() == nil {
			w.rotate()
		}
		return
	}
	w.observeEpoch(resp.Epoch)
	if resp.Role != api.RolePrimary {
		w.rotate()
		return
	}
	for _, lj := range resp.Jobs {
		if !w.markHeld(lj.ID) {
			continue // duplicate grant (e.g. re-dispatch raced our renewal)
		}
		inflight.Add(1)
		go func(lj api.ClusterLeasedJob) {
			defer inflight.Done()
			w.execute(ctx, lj)
		}(lj)
	}
}

// execute runs one leased job on the local daemon and reports the
// result until some coordinator acknowledges it.
func (w *Worker) execute(ctx context.Context, lj api.ClusterLeasedJob) {
	defer w.unmarkHeld(lj.ID)
	var (
		row    *harness.RunRow
		cached bool
		errMsg string
	)
	for {
		r, hit, err := w.cfg.Server.Execute(ctx, lj.Req)
		if err == nil {
			row, cached = r, hit
			break
		}
		if ctx.Err() != nil {
			// Shutting down mid-execution: stop reporting; the lease
			// lapses and the job is re-dispatched elsewhere.
			return
		}
		if errors.Is(err, server.ErrQueueFull) {
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return
			}
			continue
		}
		errMsg = err.Error()
		break
	}
	if w.cfg.Logger != nil {
		w.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "leased job executed",
			slog.String("job", lj.ID), slog.Bool("cached", cached),
			slog.Bool("stolen", lj.Stolen), slog.String("error", errMsg))
	}
	req := api.ClusterCompleteRequest{
		WorkerID: w.cfg.ID, JobID: lj.ID,
		Row: row, Cached: cached, Error: errMsg,
	}
	for {
		req.Epoch = w.epochNow()
		resp, err := w.client().Complete(ctx, req)
		if err == nil {
			w.observeEpoch(resp.Epoch)
			return
		}
		if ctx.Err() != nil {
			return
		}
		if client.StatusCode(err) == http.StatusNotFound {
			// No coordinator knows this job (log tail lost and the new
			// primary never saw the submit).  Nothing to report against;
			// the result is safe in the local store either way.
			return
		}
		// Standby answer or transport failure: try the next coordinator
		// after a short pause.  During a failover window every address
		// may refuse for a while; keep cycling until the promotion.
		w.rotate()
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return
		}
	}
}

func (w *Worker) client() *client.Client {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clients[w.cur]
}

func (w *Worker) rotate() {
	w.mu.Lock()
	w.cur = (w.cur + 1) % len(w.clients)
	w.mu.Unlock()
}

func (w *Worker) epochNow() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

func (w *Worker) observeEpoch(e int64) {
	w.mu.Lock()
	if e > w.epoch {
		w.epoch = e
	}
	w.mu.Unlock()
}

func (w *Worker) heldIDs() []string {
	w.mu.Lock()
	ids := make([]string, 0, len(w.held))
	for id := range w.held {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	sort.Strings(ids)
	return ids
}

func (w *Worker) markHeld(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.held[id]; ok {
		return false
	}
	w.held[id] = struct{}{}
	return true
}

func (w *Worker) unmarkHeld(id string) {
	w.mu.Lock()
	delete(w.held, id)
	w.mu.Unlock()
}
