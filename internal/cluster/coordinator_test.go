package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"swsm/internal/apps"
	"swsm/internal/harness"
	"swsm/internal/server/api"
	"swsm/internal/sim"
)

// cspec is the i-th canonical fast test point: fft at Tiny scale, with
// the processor count cycling through fft-legal powers of two and the
// host overhead nudged so every index yields a distinct content key.
func cspec(i int) harness.RunSpec {
	spec := harness.DefaultSpec("fft", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 1 << (i % 3)
	spec.Comm.HostOverhead += sim.Time(i / 3)
	return spec
}

func creq(i int) api.RunRequest { return api.RunRequest{Spec: cspec(i)} }

// crow fabricates a plausible result row for direct protocol-level
// tests that never touch a real simulator.
func crow(i int) *harness.RunRow {
	spec := cspec(i)
	return &harness.RunRow{Key: spec.Key(), Spec: spec, Cycles: int64(1000 + i)}
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.NodeID == "" {
		cfg.NodeID = "coord-test"
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// A submission with no workers parks unassigned; the first lease poll
// registers the worker, drains the backlog onto it, and grants the job
// — the exact sequence a freshly promoted primary goes through.
func TestCoordinatorUnassignedThenLease(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{HeartbeatTTL: 10 * time.Second})
	j, created, err := c.submit(creq(2))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if st := c.Status(); st.Unassigned != 1 {
		t.Fatalf("unassigned = %d, want 1", st.Unassigned)
	}
	resp := c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2, Max: 2})
	if resp.Role != api.RolePrimary || len(resp.Jobs) != 1 || resp.Jobs[0].ID != j.id {
		t.Fatalf("lease = %+v, want the one unassigned job", resp)
	}
	if resp.Jobs[0].Stolen {
		t.Fatal("own-queue grant marked stolen")
	}

	ack, err := c.complete(api.ClusterCompleteRequest{WorkerID: "a", JobID: j.id, Row: crow(2)})
	if err != nil || ack.Duplicate {
		t.Fatalf("complete: %+v err=%v", ack, err)
	}
	if err := c.waitJob(context.Background(), j); err != nil {
		t.Fatalf("waitJob after complete: %v", err)
	}
	if j.state != api.StateDone || j.row == nil || j.worker != "a" {
		t.Fatalf("job after complete: state=%s worker=%s", j.state, j.worker)
	}

	// Completion is idempotent: a second report acks as a duplicate.
	ack, err = c.complete(api.ClusterCompleteRequest{WorkerID: "a", JobID: j.id, Row: crow(2)})
	if err != nil || !ack.Duplicate {
		t.Fatalf("duplicate complete: %+v err=%v", ack, err)
	}
	if st := c.Status(); st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
	// Unknown jobs are rejected distinctly (worker drops the result).
	if _, err := c.complete(api.ClusterCompleteRequest{WorkerID: "a", JobID: "j999"}); !errors.Is(err, errUnknownJob) {
		t.Fatalf("unknown-job complete err = %v", err)
	}
}

// Identical live submissions coalesce onto one job.
func TestCoordinatorCoalesce(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{HeartbeatTTL: 10 * time.Second})
	j1, created1, err1 := c.submit(creq(3))
	j2, created2, err2 := c.submit(creq(3))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !created1 || created2 || j1 != j2 {
		t.Fatalf("coalesce: created=%v,%v same=%v", created1, created2, j1 == j2)
	}
}

// An idle worker steals from the tail of a backlogged one, and the
// grant is flagged so the victim's Stolen counter accounts for it.
func TestCoordinatorSteal(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{HeartbeatTTL: 10 * time.Second})
	c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 1})
	c.lease(api.ClusterLeaseRequest{WorkerID: "b", Slots: 1})

	// Pick points until worker a owns at least 3 keys (placement is the
	// deterministic ring function, so the test can precompute homes).
	ring := NewRing(0)
	ring.Add("a")
	ring.Add("b")
	aOwned := 0
	for procs := 1; aOwned < 3 && procs < 64; procs++ {
		if _, _, err := c.submit(creq(procs)); err != nil {
			t.Fatal(err)
		}
		if ring.Lookup(cspec(procs).Key()) == "a" {
			aOwned++
		}
	}
	if aOwned < 3 {
		t.Fatal("could not construct 3 keys homed on worker a")
	}

	// a leases one job: now busy (leased >= slots) with a backlog.
	if got := c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 1, Max: 1}); len(got.Jobs) != 1 {
		t.Fatalf("a lease = %+v", got)
	}
	// b drains its own queue first, then steals a's tail.
	resp := c.lease(api.ClusterLeaseRequest{WorkerID: "b", Slots: 1, Max: 100})
	stolen := 0
	for _, lj := range resp.Jobs {
		if lj.Stolen {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatalf("b leased %d jobs, none stolen from backlogged a", len(resp.Jobs))
	}
	st := c.Status()
	for _, w := range st.Workers {
		if w.ID == "a" && w.Stolen != int64(stolen) {
			t.Fatalf("a.Stolen = %d, want %d", w.Stolen, stolen)
		}
		if w.ID == "a" && w.Queued != 0 {
			t.Fatalf("a still has %d queued after steal", w.Queued)
		}
	}
}

// An expired lease re-dispatches the job; the janitor (driven directly
// here) is the only party that moves running jobs.
func TestCoordinatorLeaseExpiry(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:     5 * time.Millisecond,
		HeartbeatTTL: 10 * time.Second, // keep the worker alive; only the lease lapses
	})
	c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2})
	j, _, err := c.submit(creq(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2, Max: 1}); len(got.Jobs) != 1 {
		t.Fatalf("lease = %+v", got)
	}
	time.Sleep(20 * time.Millisecond)
	c.janitorOnce()
	if j.state != api.StateQueued || j.redispatches != 1 {
		t.Fatalf("after expiry: state=%s redispatches=%d", j.state, j.redispatches)
	}
	if st := c.Status(); st.Redispatches != 1 {
		t.Fatalf("Redispatches = %d, want 1", st.Redispatches)
	}
	// The job is schedulable again.
	if got := c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2, Max: 1}); len(got.Jobs) != 1 || got.Jobs[0].ID != j.id {
		t.Fatalf("re-lease = %+v", got)
	}
	// A held lease is renewed by polls and does NOT expire.
	for i := 0; i < 4; i++ {
		time.Sleep(2 * time.Millisecond)
		c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2, Held: []string{j.id}})
	}
	c.janitorOnce()
	if j.state != api.StateRunning {
		t.Fatalf("renewed lease still expired: state=%s", j.state)
	}
}

// A message carrying a higher epoch fences the primary: it steps down
// and refuses writes.
func TestCoordinatorEpochFence(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{HeartbeatTTL: 10 * time.Second})
	resp := c.lease(api.ClusterLeaseRequest{WorkerID: "w", Slots: 1, Epoch: 5})
	if resp.Role != api.RoleStandby || resp.Epoch != 5 {
		t.Fatalf("fenced lease response = %+v", resp)
	}
	if _, _, err := c.submit(creq(2)); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("submit on fenced coordinator err = %v", err)
	}
	if got := c.Role(); got != api.RoleStandby {
		t.Fatalf("role = %s", got)
	}
}

// The replicated log long-poll returns immediately when records exist,
// wakes on a fresh append, and gives up empty at the poll deadline.
func TestCoordinatorWaitLog(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		HeartbeatTTL: 10 * time.Second,
		PollWait:     150 * time.Millisecond,
	})
	if _, _, err := c.submit(creq(2)); err != nil {
		t.Fatal(err)
	}
	r := c.waitLog(context.Background(), 1, false)
	if len(r.Records) == 0 || r.Records[0].Seq != 1 || r.NextSeq != r.Records[len(r.Records)-1].Seq+1 {
		t.Fatalf("waitLog(1) = %+v", r)
	}
	if r.Records[0].Type != api.ClusterLogSubmit || r.Records[0].Req == nil {
		t.Fatalf("first record = %+v, want the replicated submit", r.Records[0])
	}

	// A long-poll parked past the tail wakes on the next append.
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.submit(creq(3))
	}()
	start := time.Now()
	r2 := c.waitLog(context.Background(), r.NextSeq, true)
	if len(r2.Records) == 0 {
		t.Fatal("long-poll returned empty despite an append")
	}
	if d := time.Since(start); d > 140*time.Millisecond {
		t.Fatalf("long-poll slept to the deadline (%v) instead of waking on append", d)
	}

	// Nothing new: the poll holds for PollWait, then returns empty.
	start = time.Now()
	r3 := c.waitLog(context.Background(), r2.NextSeq+100, true)
	if len(r3.Records) != 0 {
		t.Fatalf("poll past the tail returned records: %+v", r3)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("empty long-poll returned after %v, want ~PollWait hold", d)
	}
}

// The coordinator's own store is the top cache tier: a spec completed
// once is answered on resubmission without dispatching anything.
func TestCoordinatorStoreTier(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		HeartbeatTTL: 10 * time.Second,
		StoreDir:     t.TempDir(),
	})
	c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2})
	j1, _, err := c.submit(creq(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.lease(api.ClusterLeaseRequest{WorkerID: "a", Slots: 2, Max: 1}); len(got.Jobs) != 1 {
		t.Fatalf("lease = %+v", got)
	}
	if _, err := c.complete(api.ClusterCompleteRequest{WorkerID: "a", JobID: j1.id, Row: crow(4)}); err != nil {
		t.Fatal(err)
	}

	j2, created, err := c.submit(creq(4))
	if err != nil || !created || j2 == j1 {
		t.Fatalf("resubmit: created=%v same=%v err=%v", created, j2 == j1, err)
	}
	if j2.state != api.StateDone || !j2.cached || j2.row == nil {
		t.Fatalf("resubmit not served from store: state=%s cached=%v", j2.state, j2.cached)
	}
	if j2.row.Cycles != crow(4).Cycles {
		t.Fatalf("cached row cycles = %d, want %d", j2.row.Cycles, crow(4).Cycles)
	}
	st := c.Status()
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}
	for _, w := range st.Workers {
		if w.Queued != 0 {
			t.Fatalf("cache hit still dispatched: %+v", w)
		}
	}
}

// Replication lag: a primary with no follower reports its whole log as
// backlog; a follower's log poll acknowledges the prefix it has and
// drives the lag back to zero.
func TestCoordinatorReplicationLagPrimary(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{HeartbeatTTL: 10 * time.Second})
	if _, _, err := c.submit(creq(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.submit(creq(1)); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.LogSeq != 2 || st.StandbySeq != 0 || st.ReplicationLag != 2 {
		t.Fatalf("pre-ack status: logSeq=%d standbySeq=%d lag=%d, want 2/0/2",
			st.LogSeq, st.StandbySeq, st.ReplicationLag)
	}

	// A poll starting at seq 3 acknowledges records 1..2.
	c.waitLog(context.Background(), 3, false)
	st = c.Status()
	if st.StandbySeq != 2 || st.ReplicationLag != 0 {
		t.Fatalf("post-ack status: standbySeq=%d lag=%d, want 2/0", st.StandbySeq, st.ReplicationLag)
	}

	// Acknowledgements never regress: an older replayed poll is ignored.
	c.waitLog(context.Background(), 2, false)
	if st := c.Status(); st.StandbySeq != 2 {
		t.Fatalf("stale poll regressed standbySeq to %d", st.StandbySeq)
	}
}

// A live standby reports how far it trails the primary's log head, and
// catches up to zero lag.
func TestCoordinatorReplicationLagStandby(t *testing.T) {
	a := newTestCoordinator(t, CoordinatorConfig{
		NodeID:       "A",
		HeartbeatTTL: 10 * time.Second,
		PollWait:     50 * time.Millisecond,
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)
	b := newTestCoordinator(t, CoordinatorConfig{
		NodeID:        "B",
		Standby:       true,
		PeerURL:       tsA.URL,
		FailoverAfter: time.Hour, // never promote in this test
		HeartbeatTTL:  10 * time.Second,
		PollWait:      50 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		if _, _, err := a.submit(creq(i)); err != nil {
			t.Fatal(err)
		}
	}
	target := a.Status().LogSeq
	deadline := time.Now().Add(10 * time.Second)
	for b.Status().LogSeq < target {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at seq %d, primary at %d", b.Status().LogSeq, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := b.Status()
		if st.ReplicationLag < 0 {
			t.Fatalf("negative standby lag: %+v", st)
		}
		if st.ReplicationLag == 0 && st.StandbySeq == target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby lag never reached 0: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The primary has seen the standby's polls too.
	deadlineA := time.Now().Add(10 * time.Second)
	for a.Status().ReplicationLag != 0 {
		if time.Now().After(deadlineA) {
			t.Fatalf("primary still reports lag %d", a.Status().ReplicationLag)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
