package cluster

import "swsm/internal/obs"

// clusterMetrics is the coordinator's Prometheus plane, rendered by the
// same dependency-free obs registry as the daemon's.  Aggregate gauges
// are explicit instruments refreshed under the coordinator mutex
// (updateGaugesLocked) rather than scrape-time callbacks: a scrape then
// never takes c.mu, which keeps the lock order one-directional
// (coordinator mutex -> registry mutex, only ever on registration).
type clusterMetrics struct {
	reg *obs.Registry

	// Admission and terminal counters, mirroring the daemon's.
	created      *obs.Counter
	coalesced    *obs.Counter
	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	jobsCanceled *obs.Counter

	// Cluster-specific counters.
	coordCacheHits  *obs.Counter // answered from the coordinator's own store
	workerCacheHits *obs.Counter // worker reported cached=true
	redispatches    *obs.Counter
	duplicates      *obs.Counter
	failovers       *obs.Counter

	// Per-worker families (label values appear as workers join).
	stolen     *obs.CounterVec // jobs stolen BY a worker (the thief)
	workerDone *obs.CounterVec
	queueDepth *obs.GaugeVec
	leased     *obs.GaugeVec

	// Aggregate gauges refreshed under the coordinator mutex.
	workers    *obs.Gauge
	epoch      *obs.Gauge
	isPrimary  *obs.Gauge
	unassigned *obs.Gauge
	logSeq     *obs.Gauge
	replLag    *obs.Gauge

	// SSE bus counters (shared with server.EventBus).
	sseEvents  *obs.Counter
	sseDropped *obs.Counter
}

func newClusterMetrics() *clusterMetrics {
	reg := obs.NewRegistry()
	return &clusterMetrics{
		reg: reg,

		created:      reg.Counter("svmd_cluster_jobs_created_total", "Jobs admitted by the coordinator.", ""),
		coalesced:    reg.Counter("svmd_cluster_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.", ""),
		jobsDone:     reg.Counter("svmd_cluster_jobs_total", "Jobs reaching a terminal state.", `state="done"`),
		jobsFailed:   reg.Counter("svmd_cluster_jobs_total", "Jobs reaching a terminal state.", `state="failed"`),
		jobsCanceled: reg.Counter("svmd_cluster_jobs_total", "Jobs reaching a terminal state.", `state="canceled"`),

		coordCacheHits:  reg.Counter("svmd_cluster_cache_hits_total", "Jobs answered from a cluster cache tier without simulating.", `tier="coordinator"`),
		workerCacheHits: reg.Counter("svmd_cluster_cache_hits_total", "Jobs answered from a cluster cache tier without simulating.", `tier="worker"`),
		redispatches:    reg.Counter("svmd_cluster_redispatches_total", "Jobs re-dispatched after a lost worker or an expired lease.", ""),
		duplicates:      reg.Counter("svmd_cluster_duplicate_completions_total", "Duplicate completions discarded idempotently.", ""),
		failovers:       reg.Counter("svmd_cluster_failovers_total", "Promotions of this coordinator from standby to primary.", ""),

		stolen:     reg.CounterVec("svmd_cluster_jobs_stolen_total", "Jobs stolen from another worker's queue, by thief.", "worker"),
		workerDone: reg.CounterVec("svmd_cluster_worker_jobs_total", "Completions reported, by worker.", "worker"),
		queueDepth: reg.GaugeVec("svmd_cluster_worker_queue_depth", "Dispatch-queue depth, by worker.", "worker"),
		leased:     reg.GaugeVec("svmd_cluster_worker_leased", "Jobs currently leased, by worker.", "worker"),

		workers:    reg.Gauge("svmd_cluster_workers", "Live joined workers.", ""),
		epoch:      reg.Gauge("svmd_cluster_epoch", "Current coordination epoch.", ""),
		isPrimary:  reg.Gauge("svmd_cluster_is_primary", "1 when this coordinator is the primary, 0 on a standby.", ""),
		unassigned: reg.Gauge("svmd_cluster_unassigned_jobs", "Jobs waiting for any worker to join.", ""),
		logSeq:     reg.Gauge("svmd_cluster_log_seq", "Highest sequence number in the replicated log.", ""),
		replLag:    reg.Gauge("svmd_cluster_replication_lag", "Replication backlog in log records: head minus last follower-confirmed seq (primary) or last applied seq minus primary head (standby).", ""),

		sseEvents:  reg.Counter("svmd_sse_events_total", "SSE frames delivered to subscribers.", ""),
		sseDropped: reg.Counter("svmd_sse_dropped_total", "SSE frames dropped on slow subscribers.", ""),
	}
}
