package explore

import (
	"fmt"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/fault"
	"swsm/internal/harness"
	"swsm/internal/hetero"
	"swsm/internal/proto"
)

// Space is the finite configuration grid an exploration searches.  Each
// field lists the admissible values of one search dimension; empty
// slices take the defaults below.  The space is deliberately expressed
// in the named vocabulary of the paper's experiments (comm sets A/H/B/
// W/B+, cost sets O/H/B) so every point the optimizer proposes is an
// ordinary RunSpec any other front-end could have submitted — and
// therefore shares its memo key and store row with them.
type Space struct {
	// Protocols to consider ("hlrc", "lrc", "sc").
	Protocols []harness.ProtocolKind `json:"protocols,omitempty"`
	// CommSets are named communication-parameter sets (comm.ParamsByName:
	// "A", "H", "B", "W", "B+").
	CommSets []string `json:"commSets,omitempty"`
	// CostSets are named protocol-cost sets (proto.CostsByName: "O",
	// "H", "B").
	CostSets []string `json:"costSets,omitempty"`
	// Procs are the processor counts to consider.
	Procs []int `json:"procs,omitempty"`
	// HLRCUnitShifts are HLRC coherence-unit overrides as log2(bytes);
	// 0 means the 4 KB page.  Only meaningful for the hlrc protocol —
	// the dimension is pinned to its first value elsewhere.
	HLRCUnitShifts []uint `json:"hlrcUnitShifts,omitempty"`
	// SCBlocks are SC granularity overrides in bytes; 0 means the
	// application's preferred block.  Only meaningful for sc.
	SCBlocks []int `json:"scBlocks,omitempty"`
	// DropPPMs are optional fault rates (dropped transmissions per
	// million) to consider; 0 means the reliable fabric.
	DropPPMs []int64 `json:"dropPPMs,omitempty"`
	// FaultSeed seeds fault injection for points with a nonzero drop
	// rate (default 1).
	FaultSeed uint64 `json:"faultSeed,omitempty"`
	// Skews are named heterogeneity presets (hetero.PresetNames:
	// "uniform", "cpu2".."cpu8", "accel2".."accel8", "link4"/"link8",
	// "mixed"); "uniform" means the paper's identical nodes.
	Skews []string `json:"skews,omitempty"`
	// Placements are named placement policies (harness.PlacementNames:
	// "app", "rr", "adaptive", "adaptive+grain").  The adaptive policies
	// are HLRC-only — the dimension is pinned to its first value
	// elsewhere, so include "app" or "rr" first when searching several
	// protocols.
	Placements []string `json:"placements,omitempty"`
}

// The search dimensions, in the fixed order every deterministic
// traversal (seeding, neighbor proposal, coordinate descent) uses.
const (
	dimProto = iota
	dimComm
	dimCost
	dimProcs
	dimUnit
	dimBlock
	dimDrop
	dimSkew
	dimPlace
	numDims
)

// vec indexes one point of the space: vec[d] selects a value from
// dimension d's list.  Canonicalized vecs (see canon) are bijective
// with RunSpecs, so a map[vec]bool is the exact dedupe set.
type vec [numDims]int

func (s Space) withDefaults() Space {
	if len(s.Protocols) == 0 {
		s.Protocols = []harness.ProtocolKind{harness.HLRC, harness.LRC, harness.SC}
	}
	if len(s.CommSets) == 0 {
		s.CommSets = []string{"A", "H", "B", "W", "B+"}
	}
	if len(s.CostSets) == 0 {
		s.CostSets = []string{"O", "H", "B"}
	}
	if len(s.Procs) == 0 {
		s.Procs = []int{4, 8, 16, 32}
	}
	if len(s.HLRCUnitShifts) == 0 {
		s.HLRCUnitShifts = []uint{0, 10, 11}
	}
	if len(s.SCBlocks) == 0 {
		s.SCBlocks = []int{0, 64, 256}
	}
	if len(s.DropPPMs) == 0 {
		s.DropPPMs = []int64{0}
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 1
	}
	if len(s.Skews) == 0 {
		s.Skews = []string{"uniform"}
	}
	if len(s.Placements) == 0 {
		s.Placements = []string{"app"}
	}
	return s
}

func (s Space) validate() error {
	for _, p := range s.Protocols {
		switch p {
		case harness.HLRC, harness.LRC, harness.SC:
		default:
			return fmt.Errorf("explore: protocol %q not searchable (want hlrc, lrc or sc)", p)
		}
	}
	for _, n := range s.CommSets {
		if _, err := comm.ParamsByName(n); err != nil {
			return fmt.Errorf("explore: comm set %q: %v", n, err)
		}
	}
	for _, n := range s.CostSets {
		if _, ok := proto.CostsByName(n); !ok {
			return fmt.Errorf("explore: unknown cost set %q (want O, H or B)", n)
		}
	}
	for _, p := range s.Procs {
		if p < 1 || p > 64 {
			return fmt.Errorf("explore: procs %d out of range [1,64]", p)
		}
	}
	for _, sh := range s.HLRCUnitShifts {
		if sh > 12 {
			return fmt.Errorf("explore: hlrc unit shift %d exceeds the page (12)", sh)
		}
	}
	for _, b := range s.SCBlocks {
		if b < 0 || b > 4096 {
			return fmt.Errorf("explore: sc block %d out of range [0,4096]", b)
		}
	}
	for _, d := range s.DropPPMs {
		if d < 0 || d >= 1_000_000 {
			return fmt.Errorf("explore: drop rate %d PPM out of range [0,1e6)", d)
		}
	}
	for _, n := range s.Skews {
		if _, err := hetero.PresetByName(n); err != nil {
			return fmt.Errorf("explore: skew %q: %v", n, err)
		}
	}
	for _, n := range s.Placements {
		if _, err := harness.HeteroSpec("uniform", n); err != nil {
			return fmt.Errorf("explore: placement %q: %v", n, err)
		}
	}
	return nil
}

// dims returns the per-dimension value counts in dimension order.
func (s Space) dims() [numDims]int {
	return [numDims]int{
		dimProto: len(s.Protocols),
		dimComm:  len(s.CommSets),
		dimCost:  len(s.CostSets),
		dimProcs: len(s.Procs),
		dimUnit:  len(s.HLRCUnitShifts),
		dimBlock: len(s.SCBlocks),
		dimDrop:  len(s.DropPPMs),
		dimSkew:  len(s.Skews),
		dimPlace: len(s.Placements),
	}
}

// size is the number of distinct canonical points (protocol-irrelevant
// dimensions collapse, so this over-counts only when both unit and
// block lists exceed one entry for non-matching protocols).
func (s Space) size() int {
	n := 0
	d := s.dims()
	for _, p := range s.Protocols {
		per := d[dimComm] * d[dimCost] * d[dimProcs] * d[dimDrop] * d[dimSkew]
		switch p {
		case harness.HLRC:
			per *= d[dimUnit] * d[dimPlace]
		case harness.SC:
			per *= d[dimBlock]
		}
		n += per
	}
	return n
}

// canon pins dimensions that are meaningless for v's protocol to their
// first value, making vec<->RunSpec a bijection: without it, the same
// simulation would be proposed (and charged) once per irrelevant index.
func (s Space) canon(v vec) vec {
	p := s.Protocols[v[dimProto]]
	if p != harness.HLRC {
		v[dimUnit] = 0
		// Adaptive home migration lives in the HLRC protocol; under the
		// others every placement beyond the first would re-run the same
		// simulation under a different key.
		v[dimPlace] = 0
	}
	if p != harness.SC {
		v[dimBlock] = 0
	}
	if p == harness.HLRC && s.Placements[v[dimPlace]] == "adaptive+grain" {
		// Adaptive grain supersedes the static unit-shift override (the
		// harness rejects the combination).
		v[dimUnit] = 0
	}
	return v
}

// spec materializes a canonical vec as a RunSpec for (app, scale).
// Validation has already vetted every name, so lookups cannot fail.
func (s Space) spec(app string, scale apps.Scale, v vec) harness.RunSpec {
	cp, err := comm.ParamsByName(s.CommSets[v[dimComm]])
	if err != nil {
		panic(fmt.Sprintf("explore: validated comm set vanished: %v", err))
	}
	costs, ok := proto.CostsByName(s.CostSets[v[dimCost]])
	if !ok {
		panic(fmt.Sprintf("explore: validated cost set %q vanished", s.CostSets[v[dimCost]]))
	}
	placement := s.Placements[v[dimPlace]]
	hs, err := harness.HeteroSpec(s.Skews[v[dimSkew]], placement)
	if err != nil {
		panic(fmt.Sprintf("explore: validated hetero point vanished: %v", err))
	}
	spec := harness.RunSpec{
		App:          app,
		Scale:        scale,
		Protocol:     s.Protocols[v[dimProto]],
		Procs:        s.Procs[v[dimProcs]],
		Comm:         cp,
		Costs:        costs,
		CacheEnabled: true,
		Hetero:       hs,
	}
	if spec.Protocol == harness.HLRC && spec.Hetero.Grain != hetero.GrainAdaptive {
		spec.HLRCUnitShift = s.HLRCUnitShifts[v[dimUnit]]
	}
	if spec.Protocol == harness.SC {
		spec.SCBlockOverride = s.SCBlocks[v[dimBlock]]
	}
	if ppm := s.DropPPMs[v[dimDrop]]; ppm > 0 {
		spec.Fault = fault.Spec{Seed: s.FaultSeed, DropPPM: ppm}
	}
	return spec
}

// label renders a short human-readable name for a point, e.g.
// "hlrc/AO/p16/u10" — protocol, comm+cost set, procs, then only the
// overrides that differ from their defaults.
func (s Space) label(v vec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s%s/p%d",
		s.Protocols[v[dimProto]], s.CommSets[v[dimComm]], s.CostSets[v[dimCost]], s.Procs[v[dimProcs]])
	if s.Protocols[v[dimProto]] == harness.HLRC {
		if sh := s.HLRCUnitShifts[v[dimUnit]]; sh != 0 {
			fmt.Fprintf(&b, "/u%d", sh)
		}
	}
	if s.Protocols[v[dimProto]] == harness.SC {
		if blk := s.SCBlocks[v[dimBlock]]; blk != 0 {
			fmt.Fprintf(&b, "/b%d", blk)
		}
	}
	if ppm := s.DropPPMs[v[dimDrop]]; ppm != 0 {
		fmt.Fprintf(&b, "/d%d", ppm)
	}
	if skew := s.Skews[v[dimSkew]]; skew != "uniform" {
		fmt.Fprintf(&b, "/%s", skew)
	}
	if pl := s.Placements[v[dimPlace]]; pl != "app" {
		fmt.Fprintf(&b, "/%s", pl)
	}
	return b.String()
}
