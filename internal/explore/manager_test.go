package explore

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swsm/internal/harness"
	"swsm/internal/obs"
)

// fakeEval scores candidates synthetically — fast and deterministic —
// so the manager tests exercise lifecycle, not simulation.  An optional
// gate blocks every batch until released, for cancel/limit tests.
type fakeEval struct {
	gate chan struct{}

	mu      sync.Mutex
	batches int
}

func (f *fakeEval) Evaluate(ctx context.Context, specs []harness.RunSpec) ([]Evaluation, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	f.batches++
	f.mu.Unlock()
	out := make([]Evaluation, len(specs))
	for i, spec := range specs {
		cycles := int64(1000)
		if spec.Protocol != harness.Ideal {
			// More processors run faster; cheaper comm sets too.
			cycles = 4000/int64(spec.Procs) + int64(spec.Comm.HostOverhead)
		}
		row := harness.RunRow{Key: spec.Key(), Spec: spec, Cycles: cycles}
		out[i] = Evaluation{Spec: spec, Row: &row}
	}
	return out, nil
}

func managerReq() Request { return smallReq(2, 4) }

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Evaluator == nil {
		cfg.Evaluator = &fakeEval{}
	}
	m := NewManager(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func TestManagerLifecycle(t *testing.T) {
	var mu sync.Mutex
	events := map[string]int{}
	m := newTestManager(t, ManagerConfig{
		Publish: func(typ string, st *Status) {
			mu.Lock()
			events[typ]++
			mu.Unlock()
		},
	})
	st, err := m.Submit(managerReq())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.ID != "e1" {
		t.Fatalf("initial status = %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Stopped != "converged" {
		t.Fatalf("terminal status = %+v", fin)
	}
	if len(fin.Frontier) == 0 {
		t.Error("done exploration has empty frontier")
	}
	if fin.WallMS < 0 {
		t.Error("missing wall time")
	}
	mu.Lock()
	defer mu.Unlock()
	if events[EventStarted] != 1 || events[EventDone] != 1 {
		t.Errorf("lifecycle events = %v", events)
	}
	if events[EventProgress] == 0 || events[EventFrontier] == 0 {
		t.Errorf("no progress/frontier events: %v", events)
	}
}

func TestManagerLimitAndSlotRelease(t *testing.T) {
	ev := &fakeEval{gate: make(chan struct{})}
	m := newTestManager(t, ManagerConfig{Evaluator: ev, Limit: 1})
	st, err := m.Submit(managerReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(managerReq()); !errors.Is(err, ErrLimit) {
		t.Fatalf("second submit = %v, want ErrLimit", err)
	}
	close(ev.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// The slot is free again once the first search completes.
	st2, err := m.Submit(managerReq())
	if err != nil {
		t.Fatalf("submit after completion = %v", err)
	}
	if _, err := m.Wait(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
}

func TestManagerCancel(t *testing.T) {
	ev := &fakeEval{gate: make(chan struct{})}
	m := newTestManager(t, ManagerConfig{Evaluator: ev})
	st, err := m.Submit(managerReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("state after cancel = %s", fin.State)
	}
}

func TestManagerAdmitGate(t *testing.T) {
	refusal := errors.New("draining")
	m := newTestManager(t, ManagerConfig{Admit: func() error { return refusal }})
	_, err := m.Submit(managerReq())
	if !errors.Is(err, ErrUnavailable) || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("gated submit = %v, want ErrUnavailable wrapping the reason", err)
	}
}

func TestManagerShutdown(t *testing.T) {
	m := NewManager(ManagerConfig{Evaluator: &fakeEval{}})
	st, err := m.Submit(managerReq())
	if err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	if _, err := m.Submit(managerReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown = %v, want ErrClosed", err)
	}
	// The job reached a terminal state (done or canceled, depending on
	// how far it got).
	fin, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State == StateRunning {
		t.Fatalf("job still running after Shutdown")
	}
	if _, err := m.Get("e99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id = %v, want ErrNotFound", err)
	}
}

func TestManagerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, ManagerConfig{})
	RegisterMetrics(reg, m)
	st, err := m.Submit(managerReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		`svmd_explore_total{state="done"} 1`,
		"svmd_explore_active 0",
		"svmd_explore_frontier_points_total",
		`svmd_explore_evaluations_total{outcome="sim"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The HTTP surface: submit-and-wait, list, get, frontier CSV, cancel.
func TestHandlersEndToEnd(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Limit: 1})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /explore", m.HandleSubmit)
	mux.HandleFunc("GET /explore", m.HandleList)
	mux.HandleFunc("GET /explore/{id}", m.HandleGet)
	mux.HandleFunc("GET /explore/{id}/frontier", m.HandleFrontierCSV)
	mux.HandleFunc("DELETE /explore/{id}", m.HandleCancel)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, _ := json.Marshal(managerReq())
	resp, err := http.Post(srv.URL+"/explore?wait=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit wait=1 status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || len(st.Frontier) == 0 {
		t.Fatalf("terminal status = %+v", st)
	}

	r2, err := http.Get(srv.URL + "/explore/" + st.ID + "/frontier")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	csv, err := io.ReadAll(r2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := r2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("frontier content type %q", ct)
	}
	if !strings.HasPrefix(string(csv), "eval,cost_cycles,speedup,cycles,label,key\n") {
		t.Errorf("frontier csv = %q", csv)
	}

	r3, err := http.Get(srv.URL + "/explore")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var list []Status
	if err := json.NewDecoder(r3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	r4, err := http.Get(srv.URL + "/explore/e404")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d", r4.StatusCode)
	}

	// A malformed body is a 400.
	r5, err := http.Post(srv.URL+"/explore", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status %d", r5.StatusCode)
	}
}

func TestHandlerLimitMapsTo429(t *testing.T) {
	ev := &fakeEval{gate: make(chan struct{})}
	defer close(ev.gate)
	m := newTestManager(t, ManagerConfig{Evaluator: ev, Limit: 1})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /explore", m.HandleSubmit)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, _ := json.Marshal(managerReq())
	r1, err := http.Post(srv.URL+"/explore", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", r1.StatusCode)
	}
	r2, err := http.Post(srv.URL+"/explore", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit submit status %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
}
