package explore

import (
	"context"
	"encoding/json"
	"sync"

	"swsm/internal/harness"
	"swsm/internal/store"
)

// Evaluation is one candidate's outcome.
type Evaluation struct {
	// Spec echoes the evaluated configuration.
	Spec harness.RunSpec
	// Row is the run's row (nil when Err is set).  Rows are plain —
	// no speedup resolution — exactly as the daemon persists them, so
	// every frontier point is resolvable from the store by Row.Key.
	Row *harness.RunRow
	// Cached reports that the result came from a cache (session memo or
	// persistent store) — such evaluations are not charged against the
	// budget.
	Cached bool
	// Err is a per-candidate failure (unrunnable geometry, etc.); the
	// search drops the candidate and continues.
	Err string
}

// Evaluator executes a batch of candidate configurations and returns
// one Evaluation per spec, index-aligned with the input.  A returned
// error aborts the whole exploration (context cancellation, transport
// loss); per-candidate failures belong in Evaluation.Err instead.
type Evaluator interface {
	Evaluate(ctx context.Context, specs []harness.RunSpec) ([]Evaluation, error)
}

// SessionEvaluator runs candidates through a local harness.Session,
// optionally backed by a persistent store: store hits skip simulation
// entirely, fresh rows are written back, and the Cached flag — the
// budget ledger's input — is probed before execution (store presence or
// completed session memo entry).
type SessionEvaluator struct {
	Ses *harness.Session
	// St, if non-nil, is the persistent content-addressed result store
	// shared with the daemon: the evaluator reads warm rows from it and
	// persists fresh ones, so a re-run of the same exploration after a
	// crash replays from the store with zero new simulations.
	St *store.Store
}

// Evaluate implements Evaluator.  Batch members run concurrently
// through the session pool (bounded by its parallelism); results are
// returned in spec order.
func (e SessionEvaluator) Evaluate(ctx context.Context, specs []harness.RunSpec) ([]Evaluation, error) {
	out := make([]Evaluation, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		out[i].Spec = spec
		key := spec.Key()
		if e.Ses.Cached(spec) {
			out[i].Cached = true
		} else if e.St != nil {
			if payload, ok := e.St.Get(key); ok {
				var row harness.RunRow
				// Same guard as the daemon: a decodable row whose spec
				// disagrees means collision or encoder drift; recompute.
				if err := json.Unmarshal(payload, &row); err == nil && row.Spec == spec {
					out[i].Cached = true
					out[i].Row = &row
					continue
				}
			}
		}
		wg.Add(1)
		go func(i int, spec harness.RunSpec) {
			defer wg.Done()
			res, err := e.Ses.RunCtx(ctx, spec)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			row := harness.NewRunRow(res)
			out[i].Row = &row
		}(i, spec)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.St != nil {
		for i := range out {
			if out[i].Row != nil && !out[i].Cached {
				if payload, err := json.Marshal(*out[i].Row); err == nil {
					// Store damage must not fail the search; a later run
					// just recomputes.
					_ = e.St.Put(out[i].Spec.Key(), payload)
				}
			}
		}
	}
	return out, nil
}
