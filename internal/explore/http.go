package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The /explore HTTP surface.  The handlers live here — rather than in
// internal/server — because both execution tiers mount them verbatim:
// the daemon on its mux and the cluster coordinator on its own, each
// backed by its Manager.  Status-code mapping mirrors the run API:
// 429 + Retry-After at the concurrency limit (explicit backpressure),
// 503 for a shut-down/draining/standby service, 400 for a bad request.

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "", "0", "false":
		return false
	}
	return true
}

// HandleSubmit serves POST /explore.  ?wait=1 blocks until the
// exploration finishes (or the request context ends) and answers 200;
// otherwise the initial running status answers 202.
func (m *Manager) HandleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st, err := m.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, ErrLimit):
			w.Header().Set("Retry-After", "5")
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrClosed), errors.Is(err, ErrUnavailable):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if !wantWait(r) {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	st, err = m.Wait(r.Context(), st.ID)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusOK
	if st.State == StateRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// HandleList serves GET /explore.
func (m *Manager) HandleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.List())
}

// HandleGet serves GET /explore/{id} (?wait=1 blocks until terminal).
func (m *Manager) HandleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var st *Status
	var err error
	if wantWait(r) {
		st, err = m.Wait(r.Context(), id)
	} else {
		st, err = m.Get(id)
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// HandleCancel serves DELETE /explore/{id}.
func (m *Manager) HandleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// HandleFrontierCSV serves GET /explore/{id}/frontier — the current
// Pareto frontier in the same CSV shape svmbench -explore -csv writes.
func (m *Manager) HandleFrontierCSV(w http.ResponseWriter, r *http.Request) {
	st, err := m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	WriteFrontierCSV(w, st.Frontier)
}
