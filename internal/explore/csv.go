package explore

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteFrontierCSV writes the frontier as CSV: one row per Pareto
// point in discovery order, cost and speedup both non-decreasing down
// the file.  The content key column makes every row resolvable from
// the persistent store.
func WriteFrontierCSV(w io.Writer, frontier []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"eval", "cost_cycles", "speedup", "cycles", "label", "key"}); err != nil {
		return err
	}
	for _, p := range frontier {
		rec := []string{
			fmt.Sprintf("%d", p.Eval),
			fmt.Sprintf("%d", p.CostCycles),
			fmt.Sprintf("%.4f", p.Speedup),
			fmt.Sprintf("%d", p.Cycles),
			p.Label,
			p.Key,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
