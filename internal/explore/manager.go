package explore

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"swsm/internal/apps"
	"swsm/internal/obs"
)

// Submission errors, mapped to HTTP by the handlers in http.go.
var (
	// ErrLimit means too many explorations are already running (429).
	ErrLimit = errors.New("explore: too many active explorations")
	// ErrClosed means the manager has been shut down (503).
	ErrClosed = errors.New("explore: manager shut down")
	// ErrUnavailable wraps an admission-gate refusal (draining daemon,
	// standby coordinator — 503).
	ErrUnavailable = errors.New("explore: service unavailable")
	// ErrNotFound means no exploration has that ID (404).
	ErrNotFound = errors.New("explore: no such exploration")
)

// Exploration states (jobs are born running — the search driver starts
// immediately; admission control bounds concurrency instead of queuing).
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Status is an exploration's wire representation.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Req echoes the (defaulted, validated) request.
	App    string     `json:"app"`
	Scale  apps.Scale `json:"scale"`
	Seed   uint64     `json:"seed"`
	Budget int64      `json:"budget"`
	// Error is set for failed explorations.
	Error string `json:"error,omitempty"`
	// Stopped is the finished search's stop reason (see Report.Stopped).
	Stopped string `json:"stopped,omitempty"`
	// WallMS is the exploration's wall-clock duration, set on
	// completion.
	WallMS int64 `json:"wallMs,omitempty"`
	// Progress is the latest per-batch snapshot.  On frontier-update
	// events its NewPoints field carries the points just added;
	// elsewhere NewPoints is empty and Frontier holds the whole curve.
	Progress Progress `json:"progress"`
	// Frontier is the Pareto frontier discovered so far (complete on
	// terminal statuses).
	Frontier []Point `json:"frontier,omitempty"`
}

// Publisher receives exploration lifecycle events: eventType is one of
// the Event* constants, st a point-in-time status snapshot.
type Publisher func(eventType string, st *Status)

// Event types published by the manager (carried on the daemon's SSE
// channel with the status under the "explore" field).
const (
	EventStarted  = "exploreStarted"
	EventProgress = "exploreProgress"
	EventFrontier = "exploreFrontier"
	EventDone     = "exploreDone"
	EventFailed   = "exploreFailed"
	EventCanceled = "exploreCanceled"
)

// ManagerConfig configures a Manager.
type ManagerConfig struct {
	// Evaluator executes candidate batches (required).
	Evaluator Evaluator
	// Publish, if non-nil, receives lifecycle/progress events.
	Publish Publisher
	// Admit, if non-nil, is consulted before accepting a submission;
	// a non-nil error (wrapped in ErrUnavailable) refuses it — the
	// daemon gates on draining, the coordinator on primaryship.
	Admit func() error
	// Limit bounds concurrently running explorations (default 2).
	Limit int
	// Logger receives lifecycle logs (nil = logging disabled, the
	// daemon's usual convention).
	Logger *slog.Logger
}

// Manager owns the explorations of one daemon or coordinator: it
// admits requests, runs one search driver goroutine per exploration,
// tracks statuses for the HTTP surface, publishes SSE events, and
// exposes lifetime counters for /metrics.
type Manager struct {
	cfg ManagerConfig

	mu     sync.Mutex
	jobs   map[string]*expJob
	order  []*expJob
	nextID int64
	closed bool
	wg     sync.WaitGroup

	active, started, done, failed, canceled    atomic.Int64
	batches, evals, sims, cachedHits, frontier atomic.Int64
}

type expJob struct {
	id     string
	req    Request
	cancel context.CancelFunc
	done   chan struct{}

	// Guarded by Manager.mu.
	state    string
	err      error
	stopped  string
	prog     Progress
	frontier []Point
	start    time.Time
	wall     time.Duration
}

// NewManager creates a Manager.  Call Shutdown before discarding it.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Limit <= 0 {
		cfg.Limit = 2
	}
	return &Manager{cfg: cfg, jobs: make(map[string]*expJob)}
}

// Submit validates req, admits it against the concurrency limit and
// starts its search driver.  The returned status is the initial
// (running) snapshot.
func (m *Manager) Submit(req Request) (*Status, error) {
	req, err := req.WithDefaults()
	if err != nil {
		return nil, err
	}
	if m.cfg.Admit != nil {
		if aerr := m.cfg.Admit(); aerr != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnavailable, aerr)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if int(m.active.Load()) >= m.cfg.Limit {
		m.mu.Unlock()
		return nil, ErrLimit
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &expJob{
		id:     fmt.Sprintf("e%d", m.nextID),
		req:    req,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  StateRunning,
		start:  time.Now(),
	}
	j.prog.Budget = req.Budget
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.active.Add(1)
	m.started.Add(1)
	m.wg.Add(1)
	st := m.statusLocked(j, nil)
	m.mu.Unlock()

	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("explore started", "explore", j.id, "app", req.App,
			"scale", int(req.Scale), "seed", req.Seed, "budget", req.Budget)
	}
	m.publish(EventStarted, st)
	go m.drive(ctx, j)
	return st, nil
}

// drive runs one exploration to its terminal state.
func (m *Manager) drive(ctx context.Context, j *expJob) {
	defer m.wg.Done()
	rep, err := Run(ctx, j.req, m.cfg.Evaluator, func(p Progress) { m.onProgress(j, p) })

	m.mu.Lock()
	j.wall = time.Since(j.start)
	var event string
	switch {
	case err == nil:
		j.state = StateDone
		j.stopped = rep.Stopped
		j.frontier = rep.Frontier
		j.prog = Progress{
			Batches: rep.Batches, Evaluated: rep.Evaluated,
			SimsRun: rep.SimsRun, CachedHits: rep.CachedHits,
			Errors: rep.Errors, CostCycles: rep.CostCycles,
			SpentCycles: rep.SpentCycles, Budget: rep.Budget,
			FrontierSize: len(rep.Frontier),
		}
		if best := rep.Best(); best != nil {
			j.prog.BestSpeedup = best.Speedup
		}
		event = EventDone
		m.done.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
		event = EventCanceled
		m.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		event = EventFailed
		m.failed.Add(1)
	}
	st := m.statusLocked(j, nil)
	// Release the admission slot before unparking waiters, so a waiter
	// that immediately resubmits never sees a stale full limit.
	m.active.Add(-1)
	m.mu.Unlock()
	close(j.done)

	if m.cfg.Logger != nil {
		switch j.state {
		case StateDone:
			m.cfg.Logger.Info("explore done", "explore", j.id,
				"stopped", st.Stopped, "frontier", len(st.Frontier),
				"evaluated", st.Progress.Evaluated, "sims", st.Progress.SimsRun,
				"spentCycles", st.Progress.SpentCycles, "wallMs", st.WallMS)
		case StateCanceled:
			m.cfg.Logger.Info("explore canceled", "explore", j.id)
		default:
			m.cfg.Logger.Warn("explore failed", "explore", j.id, "err", err)
		}
	}
	m.publish(event, st)
}

// onProgress folds a per-batch snapshot into the job and publishes the
// progress (and, when the frontier advanced, frontier-update) events.
func (m *Manager) onProgress(j *expJob, p Progress) {
	m.mu.Lock()
	m.batches.Add(int64(p.Batches - j.prog.Batches))
	m.evals.Add(int64(p.Evaluated - j.prog.Evaluated))
	m.sims.Add(int64(p.SimsRun - j.prog.SimsRun))
	m.cachedHits.Add(int64(p.CachedHits - j.prog.CachedHits))
	m.frontier.Add(int64(len(p.NewPoints)))
	newPts := p.NewPoints
	p.NewPoints = nil
	j.prog = p
	j.frontier = append(j.frontier, newPts...)
	st := m.statusLocked(j, nil)
	var fst *Status
	if len(newPts) > 0 {
		fst = m.statusLocked(j, newPts)
	}
	m.mu.Unlock()

	m.publish(EventProgress, st)
	if fst != nil {
		m.publish(EventFrontier, fst)
	}
}

func (m *Manager) publish(eventType string, st *Status) {
	if m.cfg.Publish != nil {
		m.cfg.Publish(eventType, st)
	}
}

// statusLocked snapshots j.  Caller holds m.mu.
func (m *Manager) statusLocked(j *expJob, newPts []Point) *Status {
	st := &Status{
		ID:       j.id,
		State:    j.state,
		App:      j.req.App,
		Scale:    j.req.Scale,
		Seed:     j.req.Seed,
		Budget:   j.req.Budget,
		Stopped:  j.stopped,
		Progress: j.prog,
		Frontier: append([]Point{}, j.frontier...),
	}
	st.Progress.NewPoints = newPts
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.wall > 0 {
		st.WallMS = j.wall.Milliseconds()
	}
	return st
}

// Get returns an exploration's status snapshot.
func (m *Manager) Get(id string) (*Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return m.statusLocked(j, nil), nil
}

// List returns all explorations in submission order.
func (m *Manager) List() []*Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Status, 0, len(m.order))
	for _, j := range m.order {
		out = append(out, m.statusLocked(j, nil))
	}
	return out
}

// Wait blocks until the exploration reaches a terminal state or ctx is
// done, then returns its latest status.
func (m *Manager) Wait(ctx context.Context, id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return m.Get(id)
}

// Cancel requests cancellation of a running exploration (no-op on
// terminal ones) and returns its current status.  The driver observes
// the cancellation at the next batch boundary; in-flight simulations
// complete and stay cached.
func (m *Manager) Cancel(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.cancel()
	return m.Get(id)
}

// Shutdown cancels every running exploration and waits for the drivers
// to exit.  Further submissions fail with ErrClosed.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.closed = true
	jobs := append([]*expJob{}, m.order...)
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	m.wg.Wait()
}

// RegisterMetrics exposes the manager's lifetime counters on reg as the
// svmd_explore_* family; both the daemon and the cluster coordinator
// call it against their own registry.
func RegisterMetrics(reg *obs.Registry, m *Manager) {
	reg.GaugeFunc("svmd_explore_active", "Explorations currently running.", "",
		func() float64 { return float64(m.active.Load()) })
	reg.CounterFunc("svmd_explore_total", "Explorations by terminal state.",
		`state="done"`, func() float64 { return float64(m.done.Load()) })
	reg.CounterFunc("svmd_explore_total", "Explorations by terminal state.",
		`state="failed"`, func() float64 { return float64(m.failed.Load()) })
	reg.CounterFunc("svmd_explore_total", "Explorations by terminal state.",
		`state="canceled"`, func() float64 { return float64(m.canceled.Load()) })
	reg.CounterFunc("svmd_explore_batches_total", "Candidate batches evaluated.", "",
		func() float64 { return float64(m.batches.Load()) })
	reg.CounterFunc("svmd_explore_evaluations_total", "Point evaluations by cache outcome.",
		`outcome="sim"`, func() float64 { return float64(m.sims.Load()) })
	reg.CounterFunc("svmd_explore_evaluations_total", "Point evaluations by cache outcome.",
		`outcome="cached"`, func() float64 { return float64(m.cachedHits.Load()) })
	reg.CounterFunc("svmd_explore_frontier_points_total", "Pareto frontier points discovered.", "",
		func() float64 { return float64(m.frontier.Load()) })
}
