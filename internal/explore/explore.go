// Package explore is the closed-loop auto-tuner above the experiment
// harness: given an application and a simulation budget, it searches
// the configuration space (protocol, coherence granularity, processor
// count, layer/comm parameter sets, optional fault rates) for the
// Pareto frontier of speedup vs. simulated cost — the shoal-style
// auto-tuning interface built on ingredients that sketch lacked: the
// memoized parallel pool, the persistent content-addressed store, and
// the daemon/cluster execution tiers.
//
// The search core is seeded and deterministic end to end: a
// Latin-hypercube seed set drawn from a splitmix64 stream, successive
// halving that refines around the surviving top half's grid neighbors,
// then coordinate descent around the incumbent best until a fixed
// point.  Candidates are evaluated in proposal order through an
// Evaluator in batches of Width, so the same (seed, budget, space)
// replays the same trajectory whether points run serially, 8-wide, or
// out of a warm store.
//
// Cost accounting is deliberately two-ledgered:
//
//   - CostCycles — the frontier's cost axis — charges every evaluation
//     its simulated price (cycles x procs), cached or not.  It measures
//     how much simulated work the search *asked for*, so the frontier
//     is byte-identical between cold and warm runs.
//   - SpentCycles — the budget's ledger — charges only evaluations that
//     were not already cached (session memo or persistent store).  Warm
//     re-exploration is therefore nearly free, and a crash-safe resume
//     is simply re-submitting the same request: the replayed prefix
//     costs no new simulations.
package explore

import (
	"context"
	"fmt"
	"sort"

	"swsm/internal/apps"
	"swsm/internal/harness"
)

// Request describes one exploration.
type Request struct {
	// App is the application to tune (any registered app name).
	App string `json:"app"`
	// Scale is the problem scale (0 = tiny, 1 = base, 2 = large).
	Scale apps.Scale `json:"scale"`
	// Budget bounds the simulated cycles spent on *fresh* simulations
	// (cycles x procs per cache-miss evaluation); 0 means run the
	// search to convergence.  The budget is checked between batches, so
	// a batch in flight always completes.
	Budget int64 `json:"budget,omitempty"`
	// Seed seeds the deterministic search (Latin-hypercube draw).
	Seed uint64 `json:"seed"`
	// SeedPoints is the Latin-hypercube seed-set size (default 16,
	// capped at the space size).
	SeedPoints int `json:"seedPoints,omitempty"`
	// Width is the evaluation batch width — how many candidates each
	// Evaluator call receives (default 8).
	Width int `json:"width,omitempty"`
	// Space restricts the searched configuration grid; empty dimensions
	// take the defaults documented on Space.
	Space Space `json:"space,omitempty"`
}

// WithDefaults returns the request with defaults applied and validated.
func (r Request) WithDefaults() (Request, error) {
	if _, err := apps.Lookup(r.App); err != nil {
		return r, fmt.Errorf("explore: %v", err)
	}
	if r.Scale < apps.Tiny || r.Scale > apps.Large {
		return r, fmt.Errorf("explore: scale %d out of range", r.Scale)
	}
	if r.Budget < 0 {
		return r, fmt.Errorf("explore: negative budget %d", r.Budget)
	}
	r.Space = r.Space.withDefaults()
	if err := r.Space.validate(); err != nil {
		return r, err
	}
	if r.SeedPoints == 0 {
		r.SeedPoints = 16
	}
	if r.SeedPoints < 1 || r.SeedPoints > 4096 {
		return r, fmt.Errorf("explore: seedPoints %d out of range [1,4096]", r.SeedPoints)
	}
	if n := r.Space.size(); r.SeedPoints > n {
		r.SeedPoints = n
	}
	if r.Width == 0 {
		r.Width = 8
	}
	if r.Width < 1 || r.Width > 256 {
		return r, fmt.Errorf("explore: width %d out of range [1,256]", r.Width)
	}
	return r, nil
}

// Point is one frontier entry: the configuration that held the best
// speedup seen so far at the moment the search had spent CostCycles.
// Successive points strictly increase in both speedup and cost, so the
// frontier is the search's anytime curve — "the best configuration
// found per simulated cycles invested" — and no evaluated configuration
// dominates any point (equal-or-better speedup at lower cost is
// impossible by construction: every earlier evaluation had lower
// speedup, every later one higher cost).
type Point struct {
	// Key is the row's content key (RunSpec.Key): the point's full row
	// is resolvable from the persistent store by this key.
	Key string `json:"key"`
	// Label is the point's short human-readable configuration name.
	Label string `json:"label"`
	// Spec is the full configuration.
	Spec harness.RunSpec `json:"spec"`
	// Cycles is the configuration's simulated execution time.
	Cycles int64 `json:"cycles"`
	// Speedup is sequential-baseline cycles / Cycles.
	Speedup float64 `json:"speedup"`
	// CostCycles is the cumulative simulated cost (cycles x procs,
	// cached evaluations included) the search had charged when this
	// point was found.
	CostCycles int64 `json:"costCycles"`
	// Eval is the 1-based evaluation index at which the point was found
	// (the baseline is evaluation 1).
	Eval int `json:"eval"`
}

// Progress is a per-batch snapshot of a running exploration.
type Progress struct {
	// Phase is the search phase that produced the batch: "baseline",
	// "seed", "halving" or "descent".
	Phase string `json:"phase"`
	// Batches counts evaluator calls so far.
	Batches int `json:"batches"`
	// Evaluated counts evaluations so far (baseline included).
	Evaluated int `json:"evaluated"`
	// SimsRun counts evaluations that were fresh simulations (not
	// served by the session memo or the persistent store).
	SimsRun int `json:"simsRun"`
	// CachedHits counts evaluations served from a cache.
	CachedHits int `json:"cachedHits"`
	// Errors counts evaluations that failed (unrunnable geometry etc.);
	// failed points are dropped from the ranking and charge nothing.
	Errors int `json:"errors"`
	// CostCycles is the cumulative simulated cost charged (all
	// evaluations).
	CostCycles int64 `json:"costCycles"`
	// SpentCycles is the budget ledger (fresh simulations only).
	SpentCycles int64 `json:"spentCycles"`
	// Budget echoes the request's budget (0 = unbounded).
	Budget int64 `json:"budget"`
	// BestSpeedup is the best speedup found so far (0 until a point
	// lands).
	BestSpeedup float64 `json:"bestSpeedup"`
	// FrontierSize is the number of frontier points so far.
	FrontierSize int `json:"frontierSize"`
	// NewPoints carries the frontier points this batch added, if any
	// (only populated on frontier-update events).
	NewPoints []Point `json:"newPoints,omitempty"`
}

// Report is a finished exploration.  It contains no wall-clock data:
// two runs with the same request (and any store temperature) marshal to
// identical bytes.
type Report struct {
	App        string     `json:"app"`
	Scale      apps.Scale `json:"scale"`
	Seed       uint64     `json:"seed"`
	Budget     int64      `json:"budget"`
	// SeqCycles is the sequential-baseline cycle count every speedup
	// divides by.
	SeqCycles int64 `json:"seqCycles"`
	// Frontier is the Pareto frontier of speedup vs. cumulative
	// simulated cost, in discovery (= cost) order; the last point is
	// the best configuration found.
	Frontier []Point `json:"frontier"`
	// Stopped is why the search ended: "converged" (coordinate descent
	// reached a fixed point or the space was exhausted) or "budget".
	Stopped     string `json:"stopped"`
	Batches     int    `json:"batches"`
	Evaluated   int    `json:"evaluated"`
	SimsRun     int    `json:"simsRun"`
	CachedHits  int    `json:"cachedHits"`
	Errors      int    `json:"errors"`
	CostCycles  int64  `json:"costCycles"`
	SpentCycles int64  `json:"spentCycles"`
}

// Best returns the frontier's best point, or nil if nothing succeeded.
func (r *Report) Best() *Point {
	if len(r.Frontier) == 0 {
		return nil
	}
	return &r.Frontier[len(r.Frontier)-1]
}

// rng is the splitmix64 stream seeding the search (same generator the
// fault layer uses): state advances by the golden-ratio gamma, outputs
// are the finalized mix.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shuffle is a seeded Fisher-Yates over xs.
func (r *rng) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// candidate is one proposed point.
type candidate struct {
	vec      vec
	spec     harness.RunSpec
	label    string
	baseline bool
}

// scored is one successfully evaluated candidate.
type scored struct {
	cand    candidate
	key     string
	cycles  int64
	speedup float64
}

type engine struct {
	req        Request
	ev         Evaluator
	onProgress func(Progress)
	rng        rng
	dims       [numDims]int

	seen     map[vec]bool
	scored   []*scored
	frontier []Point
	seq      int64

	evaluated, sims, cachedHits, errs, batches int
	cost, spent                                int64
	stopped                                    string
}

// Run executes the exploration described by req through ev, invoking
// onProgress (if non-nil) after every evaluated batch.  The returned
// error is non-nil only for request/evaluator/context failures;
// individual unrunnable points are counted in Report.Errors instead.
func Run(ctx context.Context, req Request, ev Evaluator, onProgress func(Progress)) (*Report, error) {
	req, err := req.WithDefaults()
	if err != nil {
		return nil, err
	}
	e := &engine{
		req:        req,
		ev:         ev,
		onProgress: onProgress,
		// Decorrelate the stream from small consecutive seeds the way
		// splitmix itself would: jump the state by seed gammas.
		rng:  rng{state: req.Seed * 0x9e3779b97f4a7c15},
		dims: req.Space.dims(),
		seen: make(map[vec]bool),
	}

	// Phase 0: the sequential baseline — every speedup's denominator,
	// charged like any other evaluation (it is simulated work the search
	// needs).  harness.BaselineSpec keeps the memo/store key shared with
	// every other sweep front-end.
	base := candidate{
		spec:     harness.BaselineSpec(req.App, req.Scale, true),
		label:    "baseline",
		baseline: true,
	}
	if err := e.evaluateWave(ctx, []candidate{base}, "baseline"); err != nil {
		return nil, err
	}
	if e.seq <= 0 {
		return nil, fmt.Errorf("explore: sequential baseline for %s failed", req.App)
	}

	// Phase 1: Latin-hypercube seed set.
	if err := e.evaluateWave(ctx, e.lhsSeeds(), "seed"); err != nil {
		return nil, err
	}

	// Phase 2: successive halving — keep the top half of everything
	// scored, propose the unvisited grid neighbors of the survivors,
	// halve, repeat.
	for k := e.req.SeedPoints / 2; k >= 1 && e.stopped == ""; k /= 2 {
		survivors := e.topK(k)
		if len(survivors) == 0 {
			break
		}
		props := e.neighbors(survivors)
		if len(props) == 0 {
			continue
		}
		if err := e.evaluateWave(ctx, props, "halving"); err != nil {
			return nil, err
		}
	}

	// Phase 3: coordinate descent around the incumbent best — evaluate
	// every unvisited single-dimension variant of the best point; if the
	// best moved, repeat around the new incumbent, else a fixed point is
	// reached.  The space is finite and the incumbent's speedup strictly
	// improves between rounds, so this terminates.
	for e.stopped == "" {
		best := e.topK(1)
		if len(best) == 0 {
			break
		}
		props := e.axisSweep(best[0].cand.vec)
		if len(props) == 0 {
			break
		}
		if err := e.evaluateWave(ctx, props, "descent"); err != nil {
			return nil, err
		}
		if e.stopped != "" {
			break
		}
		if nb := e.topK(1); len(nb) > 0 && nb[0] == best[0] {
			break
		}
	}
	if e.stopped == "" {
		e.stopped = "converged"
	}

	return &Report{
		App:         req.App,
		Scale:       req.Scale,
		Seed:        req.Seed,
		Budget:      req.Budget,
		SeqCycles:   e.seq,
		Frontier:    append([]Point{}, e.frontier...),
		Stopped:     e.stopped,
		Batches:     e.batches,
		Evaluated:   e.evaluated,
		SimsRun:     e.sims,
		CachedHits:  e.cachedHits,
		Errors:      e.errs,
		CostCycles:  e.cost,
		SpentCycles: e.spent,
	}, nil
}

// evaluateWave runs cands through the evaluator in batches of Width,
// updating accounting and the frontier after each batch.  It stops
// early (without error) once the budget is exhausted.
func (e *engine) evaluateWave(ctx context.Context, cands []candidate, phase string) error {
	for start := 0; start < len(cands); start += e.req.Width {
		if e.stopped != "" {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		end := min(start+e.req.Width, len(cands))
		chunk := cands[start:end]
		specs := make([]harness.RunSpec, len(chunk))
		for i, c := range chunk {
			specs[i] = c.spec
		}
		evals, err := e.ev.Evaluate(ctx, specs)
		if err != nil {
			return err
		}
		if len(evals) != len(chunk) {
			return fmt.Errorf("explore: evaluator returned %d results for %d specs", len(evals), len(chunk))
		}
		var newPts []Point
		for i, ev := range evals {
			e.evaluated++
			c := chunk[i]
			if ev.Err != "" || ev.Row == nil {
				e.errs++
				continue
			}
			e.cost += ev.Row.Cycles * int64(c.spec.Procs)
			if ev.Cached {
				e.cachedHits++
			} else {
				e.spent += ev.Row.Cycles * int64(c.spec.Procs)
				e.sims++
			}
			if c.baseline {
				e.seq = ev.Row.Cycles
				continue
			}
			sp := float64(e.seq) / float64(ev.Row.Cycles)
			e.scored = append(e.scored, &scored{cand: c, key: ev.Row.Key, cycles: ev.Row.Cycles, speedup: sp})
			if sp > e.bestSpeedup() {
				pt := Point{
					Key: ev.Row.Key, Label: c.label, Spec: c.spec,
					Cycles: ev.Row.Cycles, Speedup: sp,
					CostCycles: e.cost, Eval: e.evaluated,
				}
				e.frontier = append(e.frontier, pt)
				newPts = append(newPts, pt)
			}
		}
		e.batches++
		if e.req.Budget > 0 && e.spent >= e.req.Budget {
			e.stopped = "budget"
		}
		e.progress(phase, newPts)
	}
	return nil
}

func (e *engine) bestSpeedup() float64 {
	if len(e.frontier) == 0 {
		return 0
	}
	return e.frontier[len(e.frontier)-1].Speedup
}

func (e *engine) progress(phase string, newPts []Point) {
	if e.onProgress == nil {
		return
	}
	e.onProgress(Progress{
		Phase:        phase,
		Batches:      e.batches,
		Evaluated:    e.evaluated,
		SimsRun:      e.sims,
		CachedHits:   e.cachedHits,
		Errors:       e.errs,
		CostCycles:   e.cost,
		SpentCycles:  e.spent,
		Budget:       e.req.Budget,
		BestSpeedup:  e.bestSpeedup(),
		FrontierSize: len(e.frontier),
		NewPoints:    newPts,
	})
}

// propose canonicalizes v and appends it to props unless already
// visited.  Marking at proposal time dedupes within a wave too.
func (e *engine) propose(v vec, props *[]candidate) {
	v = e.req.Space.canon(v)
	if e.seen[v] {
		return
	}
	e.seen[v] = true
	*props = append(*props, candidate{
		vec:   v,
		spec:  e.req.Space.spec(e.req.App, e.req.Scale, v),
		label: e.req.Space.label(v),
	})
}

// lhsSeeds draws the Latin-hypercube seed set: each dimension's value
// list is tiled to SeedPoints entries and independently shuffled, and
// sample i takes column i of every dimension — so every value of every
// dimension appears as evenly as the sample count allows.
func (e *engine) lhsSeeds() []candidate {
	n := e.req.SeedPoints
	var cols [numDims][]int
	for d := 0; d < numDims; d++ {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i % e.dims[d]
		}
		e.rng.shuffle(vals)
		cols[d] = vals
	}
	var props []candidate
	for i := 0; i < n; i++ {
		var v vec
		for d := 0; d < numDims; d++ {
			v[d] = cols[d][i]
		}
		e.propose(v, &props)
	}
	return props
}

// topK ranks all scored candidates by speedup (ties broken by content
// key for determinism) and returns the best k.
func (e *engine) topK(k int) []*scored {
	ranked := append([]*scored{}, e.scored...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].speedup != ranked[j].speedup {
			return ranked[i].speedup > ranked[j].speedup
		}
		return ranked[i].key < ranked[j].key
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// neighbors proposes the unvisited +-1 grid neighbors of each survivor,
// in survivor-rank then dimension order.
func (e *engine) neighbors(survivors []*scored) []candidate {
	var props []candidate
	for _, s := range survivors {
		for d := 0; d < numDims; d++ {
			for _, delta := range [2]int{-1, 1} {
				nv := s.cand.vec
				nv[d] += delta
				if nv[d] < 0 || nv[d] >= e.dims[d] {
					continue
				}
				e.propose(nv, &props)
			}
		}
	}
	return props
}

// axisSweep proposes every unvisited single-dimension variant of v.
func (e *engine) axisSweep(v vec) []candidate {
	var props []candidate
	for d := 0; d < numDims; d++ {
		for val := 0; val < e.dims[d]; val++ {
			nv := v
			nv[d] = val
			e.propose(nv, &props)
		}
	}
	return props
}
