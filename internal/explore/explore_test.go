package explore

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"swsm/internal/harness"
	"swsm/internal/hetero"
	"swsm/internal/store"

	// The search tests run real simulations of the fft kernel.
	_ "swsm/internal/apps/fft"
)

// smallReq is the compact search used by the determinism tests: 8
// canonical points (2 protocols x 2 comm sets x 1 cost set x 2 proc
// counts), so a full search touches the whole space quickly.
func smallReq(seed uint64, width int) Request {
	return Request{
		App:        "fft",
		Scale:      0,
		Seed:       seed,
		SeedPoints: 8,
		Width:      width,
		Space: Space{
			Protocols:      []harness.ProtocolKind{harness.HLRC, harness.SC},
			CommSets:       []string{"A", "B"},
			CostSets:       []string{"O"},
			Procs:          []int{2, 4},
			HLRCUnitShifts: []uint{0},
			SCBlocks:       []int{0},
			DropPPMs:       []int64{0},
		},
	}
}

func mustRun(t *testing.T, req Request, ev Evaluator) *Report {
	t.Helper()
	rep, err := Run(context.Background(), req, ev, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func frontierJSON(t *testing.T, f []Point) string {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal frontier: %v", err)
	}
	return string(b)
}

// Same seed and budget must yield a byte-identical frontier whether
// candidates are evaluated one at a time or 8-wide.
func TestRunDeterministicAcrossWidths(t *testing.T) {
	serial := mustRun(t, smallReq(7, 1), SessionEvaluator{Ses: harness.NewSession(1)})
	wide := mustRun(t, smallReq(7, 8), SessionEvaluator{Ses: harness.NewSession(8)})

	if got, want := frontierJSON(t, wide.Frontier), frontierJSON(t, serial.Frontier); got != want {
		t.Errorf("frontiers diverge across widths:\nserial: %s\n8-wide: %s", want, got)
	}
	if serial.Evaluated != wide.Evaluated || serial.SeqCycles != wide.SeqCycles {
		t.Errorf("trajectories diverge: serial evaluated %d (seq %d), wide evaluated %d (seq %d)",
			serial.Evaluated, serial.SeqCycles, wide.Evaluated, wide.SeqCycles)
	}
	if serial.Stopped != "converged" || wide.Stopped != "converged" {
		t.Errorf("stopped = %q / %q, want converged", serial.Stopped, wide.Stopped)
	}
	// Different seeds explore in a different order.
	other := mustRun(t, smallReq(8, 8), SessionEvaluator{Ses: harness.NewSession(8)})
	if len(other.Frontier) == 0 {
		t.Fatal("seed 8 found nothing")
	}
}

// A re-run over a warm persistent store must replay the identical
// trajectory with zero new simulations.
func TestRunWarmStoreRerun(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := mustRun(t, smallReq(3, 4), SessionEvaluator{Ses: harness.NewSession(4), St: st})
	if cold.SimsRun == 0 {
		t.Fatal("cold run simulated nothing")
	}

	// Fresh session, same store: everything is warm.
	warm := mustRun(t, smallReq(3, 4), SessionEvaluator{Ses: harness.NewSession(4), St: st})
	if warm.SimsRun != 0 {
		t.Errorf("warm re-run ran %d fresh simulations, want 0", warm.SimsRun)
	}
	if warm.SpentCycles != 0 {
		t.Errorf("warm re-run spent %d budget cycles, want 0", warm.SpentCycles)
	}
	if got, want := frontierJSON(t, warm.Frontier), frontierJSON(t, cold.Frontier); got != want {
		t.Errorf("warm frontier diverges from cold:\ncold: %s\nwarm: %s", want, got)
	}
	if warm.CostCycles != cold.CostCycles {
		t.Errorf("cost ledger diverges: cold %d, warm %d", cold.CostCycles, warm.CostCycles)
	}

	// Every frontier point's row must be resolvable from the store by
	// its content key, and must describe the point's exact spec.
	for _, p := range cold.Frontier {
		payload, ok := st.Get(p.Key)
		if !ok {
			t.Errorf("frontier point %s: key %s not in store", p.Label, p.Key)
			continue
		}
		var row harness.RunRow
		if err := json.Unmarshal(payload, &row); err != nil {
			t.Errorf("frontier point %s: undecodable row: %v", p.Label, err)
			continue
		}
		if row.Spec != p.Spec {
			t.Errorf("frontier point %s: stored spec differs from point spec", p.Label)
		}
		if row.Cycles != p.Cycles {
			t.Errorf("frontier point %s: stored cycles %d != point cycles %d", p.Label, row.Cycles, p.Cycles)
		}
	}
}

// The frontier is an anytime curve: strictly increasing in speedup,
// cost and evaluation index, and no evaluated configuration dominates
// any point.
func TestFrontierInvariants(t *testing.T) {
	rep := mustRun(t, smallReq(5, 8), SessionEvaluator{Ses: harness.NewSession(8)})
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range rep.Frontier {
		if p.Speedup <= 0 || p.Cycles <= 0 || p.CostCycles <= 0 || p.Eval < 2 {
			t.Errorf("point %d (%s): degenerate fields %+v", i, p.Label, p)
		}
		if p.Key == "" || !strings.HasPrefix(p.Key, "v") {
			t.Errorf("point %d: bad key %q", i, p.Key)
		}
		if i == 0 {
			continue
		}
		prev := rep.Frontier[i-1]
		if p.Speedup <= prev.Speedup {
			t.Errorf("point %d: speedup %v not above predecessor %v", i, p.Speedup, prev.Speedup)
		}
		if p.CostCycles <= prev.CostCycles {
			t.Errorf("point %d: cost %d not above predecessor %d", i, p.CostCycles, prev.CostCycles)
		}
		if p.Eval <= prev.Eval {
			t.Errorf("point %d: eval %d not above predecessor %d", i, p.Eval, prev.Eval)
		}
	}
	if best := rep.Best(); best == nil || best.Speedup != rep.Frontier[len(rep.Frontier)-1].Speedup {
		t.Error("Best is not the last frontier point")
	}
	if rep.Evaluated != rep.SimsRun+rep.CachedHits+rep.Errors+0 {
		// The baseline is included in Evaluated and in exactly one of
		// the outcome counters.
		t.Errorf("counters do not add up: evaluated %d, sims %d, cached %d, errors %d",
			rep.Evaluated, rep.SimsRun, rep.CachedHits, rep.Errors)
	}
}

// A budget of one cycle stops the search at the first batch boundary:
// the baseline is charged, then the search halts before proposing.
func TestBudgetStops(t *testing.T) {
	req := smallReq(1, 8)
	req.Budget = 1
	rep := mustRun(t, req, SessionEvaluator{Ses: harness.NewSession(2)})
	if rep.Stopped != "budget" {
		t.Errorf("stopped = %q, want budget", rep.Stopped)
	}
	if rep.Evaluated != 1 {
		t.Errorf("evaluated %d configurations under a 1-cycle budget, want 1 (baseline only)", rep.Evaluated)
	}
	if rep.SpentCycles < rep.Budget {
		t.Errorf("spent %d < budget %d at a budget stop", rep.SpentCycles, rep.Budget)
	}
}

// Cancellation surfaces as a context error, not a truncated report.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, smallReq(1, 8), SessionEvaluator{Ses: harness.NewSession(1)}, nil)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("canceled run returned %v, want context canceled", err)
	}
}

func TestRequestValidation(t *testing.T) {
	bad := []Request{
		{App: "no-such-app"},
		{App: "fft", Scale: 9},
		{App: "fft", Budget: -1},
		{App: "fft", SeedPoints: -2},
		{App: "fft", Width: 1000},
		{App: "fft", Space: Space{Protocols: []harness.ProtocolKind{"ideal"}}},
		{App: "fft", Space: Space{CommSets: []string{"Z"}}},
		{App: "fft", Space: Space{CostSets: []string{"Z"}}},
		{App: "fft", Space: Space{Procs: []int{0}}},
		{App: "fft", Space: Space{Procs: []int{128}}},
		{App: "fft", Space: Space{HLRCUnitShifts: []uint{13}}},
		{App: "fft", Space: Space{SCBlocks: []int{8192}}},
		{App: "fft", Space: Space{DropPPMs: []int64{-1}}},
		{App: "fft", Space: Space{Skews: []string{"warp9"}}},
		{App: "fft", Space: Space{Placements: []string{"clairvoyant"}}},
	}
	for i, r := range bad {
		if _, err := r.WithDefaults(); err == nil {
			t.Errorf("request %d accepted, want error", i)
		}
	}

	ok, err := Request{App: "fft"}.WithDefaults()
	if err != nil {
		t.Fatalf("default request rejected: %v", err)
	}
	if ok.SeedPoints != 16 || ok.Width != 8 {
		t.Errorf("defaults = points %d width %d, want 16/8", ok.SeedPoints, ok.Width)
	}
	// SeedPoints are capped at the space size.
	small, err := smallReq(1, 8).WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if small.SeedPoints != 8 {
		t.Errorf("seed points %d, want capped at space size 8", small.SeedPoints)
	}
}

// canon pins protocol-irrelevant dimensions, making vec<->spec a
// bijection; size counts canonical points only.
func TestSpaceCanonAndSize(t *testing.T) {
	s := Space{
		Protocols:      []harness.ProtocolKind{harness.HLRC, harness.SC},
		CommSets:       []string{"A"},
		CostSets:       []string{"O"},
		Procs:          []int{4},
		HLRCUnitShifts: []uint{0, 10},
		SCBlocks:       []int{0, 64},
		DropPPMs:       []int64{0},
	}.withDefaults()
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	// hlrc: 2 unit shifts; sc: 2 blocks -> 4 canonical points.
	if got := s.size(); got != 4 {
		t.Errorf("size = %d, want 4", got)
	}
	// An sc point's unit index collapses to 0, an hlrc point's block
	// index collapses to 0.
	sc := s.canon(vec{dimProto: 1, dimUnit: 1, dimBlock: 1})
	if sc[dimUnit] != 0 || sc[dimBlock] != 1 {
		t.Errorf("sc canon = %v, want unit pinned", sc)
	}
	hl := s.canon(vec{dimProto: 0, dimUnit: 1, dimBlock: 1})
	if hl[dimUnit] != 1 || hl[dimBlock] != 0 {
		t.Errorf("hlrc canon = %v, want block pinned", hl)
	}
	// Labels elide default-valued overrides.
	if got := s.label(vec{dimProto: 0, dimProcs: 0, dimUnit: 1}); got != "hlrc/AO/p4/u10" {
		t.Errorf("label = %q", got)
	}
	if got := s.label(vec{dimProto: 1, dimBlock: 1}); got != "sc/AO/p4/b64" {
		t.Errorf("label = %q", got)
	}
}

// The heterogeneity dimensions: placements are HLRC-only, adaptive
// grain collapses the unit dimension, and labels name non-default
// skew/placement.
func TestSpaceHeteroDims(t *testing.T) {
	s := Space{
		Protocols:      []harness.ProtocolKind{harness.HLRC, harness.SC},
		CommSets:       []string{"A"},
		CostSets:       []string{"O"},
		Procs:          []int{8},
		HLRCUnitShifts: []uint{0, 10},
		SCBlocks:       []int{0},
		DropPPMs:       []int64{0},
		Skews:          []string{"uniform", "cpu4"},
		Placements:     []string{"rr", "adaptive", "adaptive+grain"},
	}.withDefaults()
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	// hlrc: 2 skews x (2 units x 3 placements collapsing to 2x2+1 per the
	// adaptive+grain pin... size() counts the full product 2*3=6) = 12;
	// sc: 2 skews x 1 block = 2.
	if got := s.size(); got != 14 {
		t.Errorf("size = %d, want 14", got)
	}
	// SC pins both unit and placement.
	sc := s.canon(vec{dimProto: 1, dimUnit: 1, dimPlace: 2, dimSkew: 1})
	if sc[dimUnit] != 0 || sc[dimPlace] != 0 || sc[dimSkew] != 1 {
		t.Errorf("sc canon = %v, want unit+placement pinned, skew kept", sc)
	}
	// HLRC with adaptive grain pins the unit shift (the harness rejects
	// the combination); plain adaptive keeps it.
	ag := s.canon(vec{dimProto: 0, dimUnit: 1, dimPlace: 2})
	if ag[dimUnit] != 0 || ag[dimPlace] != 2 {
		t.Errorf("adaptive+grain canon = %v, want unit pinned", ag)
	}
	ad := s.canon(vec{dimProto: 0, dimUnit: 1, dimPlace: 1})
	if ad[dimUnit] != 1 || ad[dimPlace] != 1 {
		t.Errorf("adaptive canon = %v, want unit kept", ad)
	}
	// Materialized specs carry the composed hetero.Spec.
	spec := s.spec("fft", 0, vec{dimProto: 0, dimSkew: 1, dimPlace: 1})
	if spec.Hetero.Placement != hetero.PlaceAdaptive || spec.Hetero.SlowNum != 4 {
		t.Errorf("spec hetero = %+v, want cpu4/adaptive", spec.Hetero)
	}
	if err := spec.Hetero.Validate(); err != nil {
		t.Errorf("materialized hetero spec invalid: %v", err)
	}
	grain := s.spec("fft", 0, s.canon(vec{dimProto: 0, dimUnit: 1, dimPlace: 2}))
	if grain.HLRCUnitShift != 0 || grain.Hetero.Grain != hetero.GrainAdaptive {
		t.Errorf("adaptive+grain spec = shift %d grain %v, want shift pinned to 0", grain.HLRCUnitShift, grain.Hetero.Grain)
	}
	// Labels: default skew and first placement elided only when default.
	if got := s.label(vec{dimProto: 0, dimSkew: 1, dimPlace: 1}); got != "hlrc/AO/p8/cpu4/adaptive" {
		t.Errorf("label = %q", got)
	}
	if got := s.label(vec{dimProto: 0}); got != "hlrc/AO/p8/rr" {
		t.Errorf("label = %q", got)
	}
}

func TestWriteFrontierCSV(t *testing.T) {
	var b strings.Builder
	pts := []Point{{Key: "v1-abc", Label: "hlrc/BO/p4", Cycles: 100, Speedup: 2.5, CostCycles: 400, Eval: 3}}
	if err := WriteFrontierCSV(&b, pts); err != nil {
		t.Fatal(err)
	}
	want := "eval,cost_cycles,speedup,cycles,label,key\n3,400,2.5000,100,hlrc/BO/p4,v1-abc\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}
