package scfg_test

import (
	"math/rand"
	"testing"

	"swsm/internal/core"
	"swsm/internal/proto"
	"swsm/internal/proto/scfg"
	"swsm/internal/stats"
)

func machine(procs, blockSize int) *core.Machine {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 4 << 20
	p := scfg.New(scfg.Config{Costs: proto.OriginalCosts(), BlockSize: blockSize})
	return core.NewMachine(cfg, p)
}

func TestReadPropagation(t *testing.T) {
	m := machine(4, 64)
	a := m.AllocPage(4096)
	m.InitWord(a, 11)
	_, err := m.Run(func(th *core.Thread) {
		if got := th.Load32(a); got != 11 {
			t.Errorf("proc %d read %d, want 11", th.Proc(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteRecall(t *testing.T) {
	// Writer takes the block exclusive; readers then recall it through
	// the home.
	m := machine(4, 64)
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		if th.Proc() == 3 {
			th.Store32(a, 1234)
		}
		th.Barrier(0)
		if got := th.Load32(a); got != 1234 {
			t.Errorf("proc %d read %d, want 1234", th.Proc(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(a); got != 1234 {
		t.Fatalf("coherent read = %d", got)
	}
}

func TestCounterUnderLock(t *testing.T) {
	const procs = 8
	const iters = 10
	m := machine(procs, 64)
	ctr := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < iters; i++ {
			th.Acquire(0)
			v := th.Load32(ctr)
			th.Store32(ctr, v+1)
			th.Release(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(ctr); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
}

func TestSequentialConsistencyWithoutLocks(t *testing.T) {
	// SC keeps even racy word updates coherent when they hit disjoint
	// blocks: every processor writes its own block and everyone reads
	// all of them after a barrier.
	const procs = 8
	m := machine(procs, 64)
	a := m.AllocPage(64 * procs)
	_, err := m.Run(func(th *core.Thread) {
		th.Store32(a+int64(64*th.Proc()), uint32(th.Proc()+1))
		th.Barrier(0)
		var sum uint32
		for i := 0; i < procs; i++ {
			sum += th.Load32(a + int64(64*i))
		}
		if sum != procs*(procs+1)/2 {
			t.Errorf("proc %d sum = %d", th.Proc(), sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFalseSharingAtLargeGranularity(t *testing.T) {
	// Two procs ping-pong writes to different words of the same 4 KB
	// block; block fetches should far exceed the 64 B case.
	run := func(bs int) int64 {
		m := machine(2, bs)
		a := m.AllocPage(4096)
		_, err := m.Run(func(th *core.Thread) {
			off := int64(1024 * th.Proc())
			for i := 0; i < 20; i++ {
				th.Store32(a+off, uint32(i))
				th.Barrier(0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats.TotalCount(stats.BlockFetches)
	}
	small, large := run(64), run(4096)
	if large <= small {
		t.Fatalf("false sharing not visible: fetches %d (4KB) <= %d (64B)", large, small)
	}
}

func TestCoarseGrainAmortizesFetches(t *testing.T) {
	// One proc streams over a large read-only array: with 4 KB blocks
	// it needs 64x fewer fetches than with 64 B blocks.
	run := func(bs int) int64 {
		m := machine(2, bs)
		n := int64(64 << 10)
		a := m.AllocPage(n)
		for off := int64(0); off < n; off += 4 {
			m.InitWord(a+off, uint32(off))
		}
		_, err := m.Run(func(th *core.Thread) {
			if th.Proc() == 1 {
				for off := int64(0); off < n; off += 4 {
					th.Load32(a + off)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats.TotalCount(stats.BlockFetches)
	}
	small, large := run(64), run(4096)
	if small < 8*large {
		t.Fatalf("fetches: 64B=%d should be >> 4KB=%d", small, large)
	}
}

func TestRandomizedCoherence(t *testing.T) {
	// Randomized DRF program: each proc does a random walk over its own
	// exclusive slots plus reads of a shared read-mostly region guarded
	// by a lock; final state must match a sequential model.
	const procs = 4
	const slots = 32
	m := machine(procs, 64)
	own := m.AllocPage(4 * slots * procs)
	shared := m.AllocPage(4096)
	expect := make([]uint32, slots*procs)
	_, err := m.Run(func(th *core.Thread) {
		me := th.Proc()
		r := rand.New(rand.NewSource(int64(me) + 1))
		for i := 0; i < 200; i++ {
			s := r.Intn(slots)
			idx := me*slots + s
			addr := own + int64(4*idx)
			v := th.Load32(addr)
			th.Store32(addr, v+uint32(s)+1)
			if i%17 == 0 {
				th.Acquire(5)
				g := th.Load32(shared)
				th.Store32(shared, g+1)
				th.Release(5)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential model of the per-proc updates.
	for me := 0; me < procs; me++ {
		r := rand.New(rand.NewSource(int64(me) + 1))
		for i := 0; i < 200; i++ {
			s := r.Intn(slots)
			expect[me*slots+s] += uint32(s) + 1
		}
	}
	for idx, want := range expect {
		if got := m.ReadResultWord(own + int64(4*idx)); got != want {
			t.Fatalf("slot %d = %d, want %d", idx, got, want)
		}
	}
	wantShared := uint32(0)
	for me := 0; me < procs; me++ {
		for i := 0; i < 200; i++ {
			if i%17 == 0 {
				wantShared++
			}
		}
	}
	if got := m.ReadResultWord(shared); got != wantShared {
		t.Fatalf("shared counter = %d, want %d", got, wantShared)
	}
}

func TestHandlersDominateProtocolCost(t *testing.T) {
	// SC protocol activity is handler execution (no diffs/twins exist).
	m := machine(4, 64)
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < 10; i++ {
			th.Acquire(0)
			v := th.Load32(a)
			th.Store32(a, v+1)
			th.Release(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.TotalCount(stats.DiffsCreated) != 0 || m.Stats.TotalCount(stats.TwinsCreated) != 0 {
		t.Fatal("SC must not twin or diff")
	}
	_, diffPct, handlerPct := m.Stats.ProtocolPercent()
	if diffPct != 0 {
		t.Fatalf("diff%% = %f, want 0", diffPct)
	}
	if handlerPct <= 0 {
		t.Fatal("handler%% should be positive")
	}
}

// TestDirectoryInvariants drives a random DRF workload and verifies the
// directory's structural invariants afterwards: at most one exclusive
// owner per block, owner implies it is the sole sharer, and every
// node-side Shared/Exclusive state is consistent with the home copy.
func TestDirectoryInvariants(t *testing.T) {
	const procs = 4
	m := machine(procs, 64)
	p := m.Prot.(*scfg.Protocol)
	region := m.AllocPage(1 << 14)
	_, err := m.Run(func(th *core.Thread) {
		r := rand.New(rand.NewSource(int64(th.Proc()) * 77))
		for i := 0; i < 300; i++ {
			// Each proc owns a striped set of words (DRF by construction)
			// plus shared read-only sweeps.
			w := r.Intn(1 << 11)
			addr := region + int64(4*w)
			if w%procs == th.Proc() {
				th.Store32(addr, uint32(w))
			} else {
				th.Load32(addr)
			}
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := p.CheckInvariants()
	if bad != "" {
		t.Fatal(bad)
	}
}
