package scfg

import (
	"fmt"

	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/sim"
	"swsm/internal/stats"
)

// Synchronization for the SC protocol: plain distributed queue locks and
// a centralized barrier.  Unlike HLRC, no consistency actions attach to
// synchronization — coherence is maintained eagerly per block — so locks
// are cheap protocol-wise and the paper finds SC much less sensitive to
// lock frequency.

// Acquire requests the lock from its manager and waits for the grant.
func (p *Protocol) Acquire(th proto.Thread, lock int) {
	me := th.Proc()
	msg := &comm.Message{
		Src: me, Dst: p.lockManager(lock), Kind: msgLockReq, Size: 12,
		Payload: lockMsg{lock: lock, proc: me}, NeedsHandler: true,
	}
	th.Send(stats.LockWait, msg)
	th.BlockFor(stats.LockWait)
}

// Release passes the lock back to the manager.
func (p *Protocol) Release(th proto.Thread, lock int) {
	me := th.Proc()
	msg := &comm.Message{
		Src: me, Dst: p.lockManager(lock), Kind: msgLockRel, Size: 12,
		Payload: lockMsg{lock: lock, proc: me}, NeedsHandler: true,
	}
	th.Send(stats.LockWait, msg)
}

// Barrier gathers arrivals at the manager and releases everyone.
func (p *Protocol) Barrier(th proto.Thread, bar int, total int) {
	me := th.Proc()
	msg := &comm.Message{
		Src: me, Dst: p.barrierManager(bar), Kind: msgBarArr, Size: 12,
		Payload: barMsg{bar: bar, proc: me}, NeedsHandler: true,
	}
	th.Send(stats.BarrierWait, msg)
	th.BlockFor(stats.BarrierWait)
}

// Finalize has nothing to flush: SC propagates writes eagerly.
func (p *Protocol) Finalize(th proto.Thread) {}

func (p *Protocol) lockManager(lock int) int   { return lock % p.nprocs }
func (p *Protocol) barrierManager(bar int) int { return bar % p.nprocs }

func (p *Protocol) handleLockReq(h proto.HandlerCtx, lm lockMsg) int64 {
	ls := p.locks[lm.lock]
	if ls == nil {
		ls = &scLock{}
		p.locks[lm.lock] = ls
	}
	if ls.held {
		ls.queue = append(ls.queue, lm.proc)
		return p.cfg.Costs.HandlerBase
	}
	ls.held = true
	ls.holder = lm.proc
	p.sendWake(h, lm.proc, 8)
	return p.cfg.Costs.HandlerBase
}

func (p *Protocol) handleLockRel(h proto.HandlerCtx, lm lockMsg) int64 {
	ls := p.locks[lm.lock]
	if ls == nil || !ls.held || ls.holder != lm.proc {
		panic(fmt.Sprintf("scfg: bad release of lock %d by %d", lm.lock, lm.proc))
	}
	if len(ls.queue) == 0 {
		ls.held = false
		return p.cfg.Costs.HandlerBase
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next
	p.sendWake(h, next, 8)
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem
}

func (p *Protocol) handleBarArr(h proto.HandlerCtx, bm barMsg) int64 {
	bs := p.barriers[bm.bar]
	if bs == nil {
		bs = &scBarrier{}
		p.barriers[bm.bar] = bs
	}
	bs.arrived++
	bs.procs = append(bs.procs, bm.proc)
	if bs.arrived < p.nprocs {
		return p.cfg.Costs.HandlerBase
	}
	procs := bs.procs
	bs.arrived = 0
	bs.procs = nil
	for _, proc := range procs {
		p.sendWake(h, proc, 8)
	}
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(len(procs))
}

// sendWake ships a small data message that wakes the destination thread.
func (p *Protocol) sendWake(h proto.HandlerCtx, to int, size int64) {
	dst := to
	h.Send(&comm.Message{
		Src: h.Node(), Dst: dst, Size: size,
		OnDeliver: func(now sim.Time) { p.env.WakeThread(dst) },
	})
}

// ReadCoherent returns the current value of the word at addr: the
// exclusive owner's copy if one exists, else the home copy.
func (p *Protocol) ReadCoherent(addr int64) uint32 {
	b := p.blockOf(addr)
	if d := p.dir[b]; d != nil && d.owner >= 0 {
		return p.env.NodeMem(int(d.owner)).ReadWord(addr)
	}
	return p.env.NodeMem(p.home(b)).ReadWord(addr)
}

// InitWrite initializes the home copy before the parallel phase.
func (p *Protocol) InitWrite(addr int64, v uint32) {
	p.env.NodeMem(p.home(p.blockOf(addr))).WriteWord(addr, v)
}

var _ proto.Protocol = (*Protocol)(nil)
