// Package scfg implements the paper's fine-grained (variable-grained)
// software shared-memory protocol: a sequentially consistent,
// directory-based invalidation protocol in the style of Stache and the
// Typhoon-zero prototype.  Access control is assumed to be provided by
// hardware at a per-application power-of-two block granularity at zero
// cost (the paper's optimistic assumption, §2); all protocol processing
// runs in software handlers on the main processor, so the protocol's
// performance is dominated by the communication layer — the paper's key
// finding for SC.
//
// The directory at each block's home serializes transactions.  Dirty
// remote blocks are recalled through the home (4-hop), sharers are
// invalidated with explicit acks, and requests arriving while a block is
// busy queue at the directory.  Node memory acts as a cache for remote
// data with no capacity limit (as in Stache, which uses main memory for
// this purpose).
package scfg

import (
	"fmt"

	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/sim"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// Block states at each node.
// blockState is a plain uint8 (alias) so the per-node state array can
// be handed to the thread fast path as the proto.TableProtocol table.
type blockState = uint8

const (
	stInvalid blockState = iota
	stShared
	stExclusive
)

// Message kinds.
const (
	msgGetS = iota + 1
	msgGetX
	msgRecall  // home -> owner: give up exclusive copy
	msgInv     // home -> sharer: invalidate
	msgWBData  // owner -> home: recalled block contents
	msgInvAck  // sharer -> home
	msgLockReq // lock acquire request at manager
	msgLockRel // lock release at manager
	msgBarArr  // barrier arrival at manager
)

// Config holds SC-specific options.
type Config struct {
	Costs proto.Costs
	// BlockSize is the coherence granularity in bytes (a power of two).
	// The paper uses 64 B except for the regular applications: FFT 4 KB,
	// LU 2 KB (or 4 KB), Ocean 1 KB.
	BlockSize int
}

// dirEntry is the home directory state for one block.
type dirEntry struct {
	owner   int8   // exclusive holder, -1 if none
	sharers uint32 // bitmap (procs <= 32)
	busy    bool
	pending []request
	acksDue int
	// current is the transaction being serviced while busy.
	current request
}

type request struct {
	proc  int
	write bool
	block int64
}

// Protocol is the fine-grained SC protocol instance.
type Protocol struct {
	cfg Config
	env proto.Env
	// tr caches env.Tracer() at Attach; nil makes every hook a no-op.
	tr        *trace.Tracer
	nprocs    int
	nblocks   int64
	blockBits uint

	state [][]blockState // [node][block]
	homes []int8
	dir   map[int64]*dirEntry

	locks    map[int]*scLock
	barriers map[int]*scBarrier
}

type scLock struct {
	held   bool
	holder int
	queue  []int
}

type scBarrier struct {
	arrived int
	procs   []int
}

// New creates an SC protocol with the given costs and granularity.
func New(cfg Config) *Protocol {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic(fmt.Sprintf("scfg: block size %d not a power of two", cfg.BlockSize))
	}
	return &Protocol{cfg: cfg, dir: make(map[int64]*dirEntry),
		locks: make(map[int]*scLock), barriers: make(map[int]*scBarrier)}
}

// Name identifies the protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("sc-%d", p.cfg.BlockSize) }

// BlockSize reports the coherence granularity.
func (p *Protocol) BlockSize() int { return p.cfg.BlockSize }

// ConsistencyModel declares the contract the checker verifies: the
// fine-grained directory protocol provides sequential consistency —
// every load must return the globally most recent write.
func (p *Protocol) ConsistencyModel() proto.Model { return proto.ModelSC }

// Attach wires the environment and sizes per-node state.
func (p *Protocol) Attach(env proto.Env) {
	p.env = env
	p.tr = env.Tracer()
	p.nprocs = env.NumProcs()
	if p.nprocs > 32 {
		panic("scfg: sharer bitmap supports at most 32 processors")
	}
	for 1<<p.blockBits < p.cfg.BlockSize {
		p.blockBits++
	}
	limit := env.NodeMem(0).Limit()
	p.nblocks = (limit + int64(p.cfg.BlockSize) - 1) >> p.blockBits
	p.state = make([][]blockState, p.nprocs)
	for i := range p.state {
		p.state[i] = make([]blockState, p.nblocks)
	}
	p.homes = make([]int8, p.nblocks)
	for b := int64(0); b < p.nblocks; b++ {
		p.homes[b] = int8(b % int64(p.nprocs))
	}
	// Home nodes start with a shared copy of their own blocks.
	for b := int64(0); b < p.nblocks; b++ {
		p.state[p.home(b)][b] = stShared
	}
}

// AssignHome moves the directory home (and initial copy) of every block
// overlapping [addr, addr+size) to node — how applications model
// SPLASH-2 data placement.  Must be called before the parallel phase.
func (p *Protocol) AssignHome(addr, size int64, node int) {
	if p.env == nil {
		panic("scfg: AssignHome before Attach")
	}
	first := p.blockOf(addr)
	last := p.blockOf(addr + size - 1)
	buf := make([]byte, p.cfg.BlockSize)
	for b := first; b <= last; b++ {
		old := int(p.homes[b])
		if old == node {
			continue
		}
		// Migrate already-initialized contents to the new home.
		p.env.NodeMem(old).CopyOut(p.blockBase(b), buf)
		p.env.NodeMem(node).CopyIn(p.blockBase(b), buf)
		p.state[old][b] = stInvalid
		p.homes[b] = int8(node)
		p.state[node][b] = stShared
	}
}

// home maps a block to its directory node.
func (p *Protocol) home(b int64) int { return int(p.homes[b]) }

func (p *Protocol) blockOf(addr int64) int64 { return addr >> p.blockBits }

func (p *Protocol) blockBase(b int64) int64 { return b << p.blockBits }

func (p *Protocol) dirFor(b int64) *dirEntry {
	d := p.dir[b]
	if d == nil {
		d = &dirEntry{owner: -1, sharers: 1 << uint(p.home(b))}
		p.dir[b] = d
	}
	return d
}

// --- access side (thread context) ---

// Access implements the fine-grained access check; hardware access
// control is free, so only actual misses cost anything.
// AccessTable exposes the per-proc block-state array for the thread
// fast path (proto.TableProtocol): the state encoding already matches
// the uniform 0/1/2 convention.
func (p *Protocol) AccessTable(proc int) ([]uint8, uint) {
	return p.state[proc], p.blockBits
}

func (p *Protocol) Access(th proto.Thread, addr int64, size int, write bool) {
	first := p.blockOf(addr)
	last := p.blockOf(addr + int64(size) - 1)
	state := p.state[th.Proc()]
	for b := first; b <= last; b++ {
		st := state[b]
		if write {
			if st == stExclusive {
				continue
			}
		} else if st != stInvalid {
			continue
		}
		p.ensure(th, b, write)
	}
}

func (p *Protocol) ensure(th proto.Thread, b int64, write bool) {
	me := th.Proc()
	for {
		st := p.state[me][b]
		if write {
			if st == stExclusive {
				return
			}
		} else if st != stInvalid {
			return
		}
		kind := msgGetS
		if write {
			kind = msgGetX
		}
		p.env.Metrics().Inc(me, stats.BlockFetches, 1)
		// Coherence misses are the SC analogue of page faults; the fetch
		// span covers one request/grant round trip (retries span again).
		p.tr.PageFault(p.env.Now(), int32(me), b, write)
		req := &comm.Message{
			Src: me, Dst: p.home(b), Kind: kind, Size: 16,
			Payload: request{proc: me, write: write, block: b}, NeedsHandler: true,
		}
		fetchStart := p.env.Now()
		th.Send(stats.DataWait, req)
		// The grant installs both the data and the new state at delivery
		// time (before any same-cycle recall can run) and wakes us; a
		// recall or invalidation drained on the way out of BlockFor may
		// already have revoked the grant, so re-check and retry.
		th.BlockFor(stats.DataWait)
		p.tr.PageFetch(fetchStart, p.env.Now(), int32(me), b)
	}
}

// --- directory side (handler context) ---

// Handle dispatches protocol messages.
func (p *Protocol) Handle(h proto.HandlerCtx, m *comm.Message) int64 {
	switch m.Kind {
	case msgGetS, msgGetX:
		return p.handleGet(h, m.Payload.(request))
	case msgRecall:
		return p.handleRecall(h, m.Payload.(request))
	case msgInv:
		return p.handleInv(h, m.Payload.(request))
	case msgWBData:
		return p.handleWB(h, m.Payload.(wbData))
	case msgInvAck:
		return p.handleInvAck(h, m.Payload.(request))
	case msgLockReq:
		return p.handleLockReq(h, m.Payload.(lockMsg))
	case msgLockRel:
		return p.handleLockRel(h, m.Payload.(lockMsg))
	case msgBarArr:
		return p.handleBarArr(h, m.Payload.(barMsg))
	}
	panic(fmt.Sprintf("scfg: unknown message kind %d", m.Kind))
}

type wbData struct {
	block int64
	from  int
	data  []byte
}

type lockMsg struct {
	lock int
	proc int
}

type barMsg struct {
	bar  int
	proc int
}

// handleGet starts or queues a read/write transaction at the directory.
func (p *Protocol) handleGet(h proto.HandlerCtx, r request) int64 {
	d := p.dirFor(r.block)
	if d.busy {
		d.pending = append(d.pending, r)
		return p.cfg.Costs.HandlerBase
	}
	return p.cfg.Costs.HandlerBase + p.service(h, d, r)
}

// service runs one transaction as far as it can; returns extra handler
// item cost.  Called with d not busy.
func (p *Protocol) service(h proto.HandlerCtx, d *dirEntry, r request) int64 {
	homeNode := p.home(r.block)
	if d.owner >= 0 && int(d.owner) != r.proc {
		// Recall the dirty copy through the home.
		d.busy = true
		d.current = r
		h.Send(&comm.Message{
			Src: homeNode, Dst: int(d.owner), Kind: msgRecall, Size: 16,
			Payload:      request{proc: r.proc, write: r.write, block: r.block},
			NeedsHandler: true,
		})
		return p.cfg.Costs.HandlerPerItem
	}
	if r.write {
		// Invalidate all other sharers, then grant exclusive.  The home's
		// own copy is dropped inline (the handler is already running
		// there); remote sharers get invalidation messages and must ack.
		items := int64(0)
		d.acksDue = 0
		for s := 0; s < p.nprocs; s++ {
			if s == r.proc || d.sharers&(1<<uint(s)) == 0 {
				continue
			}
			if s == homeNode {
				p.state[homeNode][r.block] = stInvalid
				p.env.CacheInvalidate(homeNode, p.blockBase(r.block), p.cfg.BlockSize)
				d.sharers &^= 1 << uint(s)
				continue
			}
			d.acksDue++
			items++
			h.Send(&comm.Message{
				Src: homeNode, Dst: s, Kind: msgInv, Size: 16,
				Payload: request{proc: s, block: r.block}, NeedsHandler: true,
			})
		}
		if d.acksDue > 0 {
			d.busy = true
			d.current = r
			return p.cfg.Costs.HandlerPerItem * items
		}
		p.grant(h, d, r)
		return 0
	}
	// Read: serve from the home copy.
	p.grant(h, d, r)
	return 0
}

// grant ships the block to the requester and finalizes directory state.
func (p *Protocol) grant(h proto.HandlerCtx, d *dirEntry, r request) {
	homeNode := p.home(r.block)
	base := p.blockBase(r.block)
	data := make([]byte, p.cfg.BlockSize)
	p.env.NodeMem(homeNode).CopyOut(base, data)
	write := r.write
	if write {
		d.owner = int8(r.proc)
		d.sharers = 1 << uint(r.proc)
		// The home's own copy is stale once someone else owns the block.
		if r.proc != homeNode {
			p.state[homeNode][r.block] = stInvalid
			p.env.CacheInvalidate(homeNode, base, p.cfg.BlockSize)
		}
	} else {
		d.sharers |= 1 << uint(r.proc)
	}
	to := r.proc
	blk := r.block
	h.Send(&comm.Message{
		Src: homeNode, Dst: to, Size: int64(p.cfg.BlockSize) + 16,
		OnDeliver: func(now sim.Time) {
			tf := p.env.NodeMem(to)
			tf.CopyIn(p.blockBase(blk), data)
			if write {
				p.state[to][blk] = stExclusive
			} else {
				p.state[to][blk] = stShared
			}
			p.env.WakeThread(to)
		},
	})
}

// handleRecall runs at the exclusive owner: downgrade and write back
// through the home.
func (p *Protocol) handleRecall(h proto.HandlerCtx, r request) int64 {
	me := h.Node()
	base := p.blockBase(r.block)
	data := make([]byte, p.cfg.BlockSize)
	p.env.NodeMem(me).CopyOut(base, data)
	if r.write {
		p.state[me][r.block] = stInvalid
		p.env.CacheInvalidate(me, base, p.cfg.BlockSize)
	} else {
		p.state[me][r.block] = stShared
	}
	h.Send(&comm.Message{
		Src: me, Dst: p.home(r.block), Kind: msgWBData,
		Size:    int64(p.cfg.BlockSize) + 16,
		Payload: wbData{block: r.block, from: me, data: data}, NeedsHandler: true,
	})
	return p.cfg.Costs.HandlerBase
}

// handleWB applies the recalled data at the home and resumes the stalled
// transaction.
func (p *Protocol) handleWB(h proto.HandlerCtx, wb wbData) int64 {
	homeNode := h.Node()
	d := p.dirFor(wb.block)
	p.env.NodeMem(homeNode).CopyIn(p.blockBase(wb.block), wb.data)
	if !d.busy {
		panic("scfg: writeback with no pending transaction")
	}
	// Old owner keeps a shared copy on a read recall, loses it on write.
	if d.current.write {
		d.sharers &^= 1 << uint(wb.from)
	}
	d.owner = -1
	// The home regains a valid copy.
	p.state[homeNode][wb.block] = stShared
	d.sharers |= 1 << uint(homeNode)
	d.busy = false
	extra := p.service(h, d, d.current)
	p.drainPending(h, d)
	return p.cfg.Costs.HandlerBase + extra +
		p.env.CacheTouch(homeNode, p.blockBase(wb.block), p.cfg.BlockSize, true)
}

// handleInv runs at a sharer: drop the copy and ack the home.
func (p *Protocol) handleInv(h proto.HandlerCtx, r request) int64 {
	me := h.Node()
	base := p.blockBase(r.block)
	p.state[me][r.block] = stInvalid
	p.env.CacheInvalidate(me, base, p.cfg.BlockSize)
	p.env.Metrics().Inc(me, stats.Invalidations, 1)
	p.tr.Invalidate(p.env.Now(), int32(me), r.block)
	h.Send(&comm.Message{
		Src: me, Dst: p.home(r.block), Kind: msgInvAck, Size: 8,
		Payload: request{proc: me, block: r.block}, NeedsHandler: true,
	})
	return p.cfg.Costs.HandlerBase
}

// handleInvAck counts acks at the home; when all land, the write
// transaction completes.
func (p *Protocol) handleInvAck(h proto.HandlerCtx, r request) int64 {
	d := p.dirFor(r.block)
	d.sharers &^= 1 << uint(r.proc)
	d.acksDue--
	if d.acksDue > 0 {
		return p.cfg.Costs.HandlerBase
	}
	if !d.busy {
		panic("scfg: stray invalidation ack")
	}
	d.busy = false
	p.grant(h, d, d.current)
	p.drainPending(h, d)
	return p.cfg.Costs.HandlerBase
}

// drainPending services queued requests until one goes busy again.
func (p *Protocol) drainPending(h proto.HandlerCtx, d *dirEntry) {
	for !d.busy && len(d.pending) > 0 {
		r := d.pending[0]
		d.pending = d.pending[1:]
		p.service(h, d, r)
	}
}

// CheckInvariants validates the directory's structural invariants after
// a run (test support): every busy transaction drained, at most one
// exclusive owner per block, and an owner is its block's only sharer.
// Returns a description of the first violation, or "".
func (p *Protocol) CheckInvariants() string {
	for b, d := range p.dir {
		if d.busy || len(d.pending) != 0 {
			return fmt.Sprintf("block %d: transaction still in flight", b)
		}
		if d.owner >= 0 {
			if d.sharers != 1<<uint(d.owner) {
				return fmt.Sprintf("block %d: owner %d but sharers %b", b, d.owner, d.sharers)
			}
			for n := 0; n < p.nprocs; n++ {
				if n != int(d.owner) && p.state[n][b] != stInvalid {
					return fmt.Sprintf("block %d: node %d holds state %d despite owner %d",
						b, n, p.state[n][b], d.owner)
				}
			}
			if p.state[d.owner][b] != stExclusive {
				return fmt.Sprintf("block %d: owner %d not in Exclusive state", b, d.owner)
			}
			continue
		}
		for n := 0; n < p.nprocs; n++ {
			st := p.state[n][b]
			if st == stExclusive {
				return fmt.Sprintf("block %d: node %d Exclusive but directory has no owner", b, n)
			}
			if st == stShared && d.sharers&(1<<uint(n)) == 0 {
				return fmt.Sprintf("block %d: node %d Shared but not in sharer set", b, n)
			}
		}
	}
	return ""
}
