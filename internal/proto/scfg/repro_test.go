package scfg_test

import (
	"testing"

	"swsm/internal/core"
	"swsm/internal/proto"
	"swsm/internal/proto/scfg"
)

func TestConcurrentWritersSameBlock(t *testing.T) {
	const procs = 4
	const iters = 25
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 4 << 20
	p := scfg.New(scfg.Config{Costs: proto.OriginalCosts(), BlockSize: 4096})
	m := core.NewMachine(cfg, p)
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		addr := a + int64(4*th.Proc())
		for i := 0; i < iters; i++ {
			v := th.Load32(addr)
			th.Store32(addr, v+1)
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < procs; i++ {
		if got := m.ReadResultWord(a + int64(4*i)); got != iters {
			t.Fatalf("word %d = %d, want %d", i, got, iters)
		}
	}
}
