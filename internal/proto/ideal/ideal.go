// Package ideal implements the zero-cost coherence "protocol" of the
// paper's ideal machine: the configuration whose speedup bars represent
// the algorithmic speedup of each application.  All processors address
// one shared memory (the machine is configured with SharedMem), access
// checks are free, and synchronization costs nothing beyond the waiting
// that the algorithm itself requires.  Per-node caches remain simulated,
// so superlinear cache effects (Ocean, Volrend) appear just as in the
// paper.
package ideal

import (
	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/stats"
)

// Protocol is the ideal-machine coherence stub.
type Protocol struct {
	env proto.Env

	locks    map[int]*lockState
	barriers map[int]*barrierState
}

type lockState struct {
	held  bool
	queue []proto.Thread
}

type barrierState struct {
	arrived int
	waiting []proto.Thread
	epoch   int
}

// New creates the ideal protocol.
func New() *Protocol {
	return &Protocol{
		locks:    make(map[int]*lockState),
		barriers: make(map[int]*barrierState),
	}
}

// Name identifies the protocol.
func (p *Protocol) Name() string { return "ideal" }

// ConsistencyModel declares the contract the checker verifies: one
// hardware-coherent shared memory is trivially sequentially consistent.
func (p *Protocol) ConsistencyModel() proto.Model { return proto.ModelSC }

// Attach wires the environment.
func (p *Protocol) Attach(env proto.Env) { p.env = env }

// Access is free on the ideal machine.
func (p *Protocol) Access(th proto.Thread, addr int64, size int, write bool) {}

// AccessFree marks hardware-coherent access checks as free
// (proto.FreeAccessProtocol), letting threads skip Access entirely.
func (p *Protocol) AccessFree() {}

// Acquire takes the lock, waiting (at zero protocol cost) if held.
func (p *Protocol) Acquire(th proto.Thread, lock int) {
	l := p.locks[lock]
	if l == nil {
		l = &lockState{}
		p.locks[lock] = l
	}
	if !l.held {
		l.held = true
		return
	}
	l.queue = append(l.queue, th)
	th.BlockFor(stats.LockWait)
}

// Release hands the lock to the next waiter, if any.
func (p *Protocol) Release(th proto.Thread, lock int) {
	l := p.locks[lock]
	if l == nil || !l.held {
		panic("ideal: release of unheld lock")
	}
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	p.env.WakeThread(next.Proc())
}

// Barrier blocks until all total threads arrive.
func (p *Protocol) Barrier(th proto.Thread, bar int, total int) {
	b := p.barriers[bar]
	if b == nil {
		b = &barrierState{}
		p.barriers[bar] = b
	}
	b.arrived++
	if b.arrived == total {
		b.arrived = 0
		b.epoch++
		waiting := b.waiting
		b.waiting = nil
		for _, w := range waiting {
			p.env.WakeThread(w.Proc())
		}
		return
	}
	b.waiting = append(b.waiting, th)
	th.BlockFor(stats.BarrierWait)
}

// Handle never fires: the ideal machine sends no protocol messages.
func (p *Protocol) Handle(h proto.HandlerCtx, m *comm.Message) int64 {
	panic("ideal: unexpected protocol message")
}

// Finalize has nothing to flush.
func (p *Protocol) Finalize(th proto.Thread) {}

// ReadCoherent reads the single shared memory.
func (p *Protocol) ReadCoherent(addr int64) uint32 {
	return p.env.NodeMem(0).ReadWord(addr)
}

// InitWrite initializes the single shared memory.
func (p *Protocol) InitWrite(addr int64, v uint32) {
	p.env.NodeMem(0).WriteWord(addr, v)
}

var _ proto.Protocol = (*Protocol)(nil)
