package ideal_test

import (
	"testing"

	"swsm/internal/comm"
	"swsm/internal/core"
	"swsm/internal/proto"
	"swsm/internal/proto/ideal"
)

func machine(procs int) *core.Machine {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 2 << 20
	cfg.Comm = comm.Best()
	cfg.Costs = proto.BestCosts()
	cfg.SharedMem = true
	cfg.CacheEnabled = false
	return core.NewMachine(cfg, ideal.New())
}

func TestLockFIFOOrder(t *testing.T) {
	// Waiters are granted in arrival order.
	const procs = 4
	m := machine(procs)
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		th.Compute(int64(th.Proc()*10 + 1)) // staggered arrival
		th.Acquire(0)
		pos := th.Load32(a)
		th.Store32(a+4+int64(4*pos), uint32(th.Proc()))
		th.Store32(a, pos+1)
		th.Compute(1000) // hold the lock so everyone queues
		th.Release(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < procs; i++ {
		if got := m.ReadResultWord(a + 4 + int64(4*i)); got != uint32(i) {
			t.Fatalf("grant order[%d] = %d, want %d (FIFO)", i, got, i)
		}
	}
}

func TestReleaseUnheldFailsRun(t *testing.T) {
	m := machine(1)
	if _, err := m.Run(func(th *core.Thread) { th.Release(9) }); err == nil {
		t.Fatal("expected run error on unheld release")
	}
}

func TestBarrierReusable(t *testing.T) {
	m := machine(3)
	ctr := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		for e := 0; e < 5; e++ {
			if th.Proc() == e%3 {
				th.Store32(ctr, uint32(e+1))
			}
			th.Barrier(0) // same barrier id reused every epoch
			if got := th.Load32(ctr); got != uint32(e+1) {
				t.Errorf("epoch %d: read %d", e, got)
			}
			th.Barrier(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroProtocolTraffic(t *testing.T) {
	m := machine(4)
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *core.Thread) {
		th.Store32(a+int64(4*th.Proc()), 1)
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.MsgCount != 0 {
		t.Fatalf("ideal machine sent %d network messages", m.Net.MsgCount)
	}
}
