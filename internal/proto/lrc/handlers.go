package lrc

import (
	"fmt"

	"swsm/internal/comm"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/wdiff"
	"swsm/internal/sim"
)

// Handle processes protocol requests at their destination.
func (p *Protocol) Handle(h proto.HandlerCtx, m *comm.Message) int64 {
	switch m.Kind {
	case msgBaseReq:
		return p.handleBaseReq(h, m.Payload.(baseReq))
	case msgDiffReq:
		return p.handleDiffReq(h, m.Payload.(diffReq))
	case msgAcqReq:
		return p.handleAcqReq(h, m.Payload.(acqMsg))
	case msgRelease:
		return p.handleRelease(h, m.Payload.(acqMsg))
	case msgBarArrive:
		return p.handleBarArrive(h, m.Payload.(barMsg))
	}
	panic(fmt.Sprintf("lrc: unknown message kind %d", m.Kind))
}

// handleBaseReq serves a full base copy of the page from the manager.
func (p *Protocol) handleBaseReq(h proto.HandlerCtx, req baseReq) int64 {
	me := h.Node()
	frame := p.env.NodeMem(me).Frame(req.page)
	data := make([]byte, mem.PageSize)
	copy(data, frame[:])
	pg, dst := req.page, req.requester
	toNS := p.nodes[dst]
	h.Send(&comm.Message{
		Src: me, Dst: dst, Size: mem.PageSize + 16,
		OnDeliver: func(now sim.Time) {
			tf := p.env.NodeMem(dst).Frame(pg)
			copy(tf[:], data)
			toNS.faultWait--
			if toNS.faultWait == 0 {
				p.env.WakeThread(dst)
			}
		},
	})
	return p.cfg.Costs.HandlerBase
}

// handleDiffReq serves the retained diffs of intervals [from, to] of
// this writer that cover the page.
func (p *Protocol) handleDiffReq(h proto.HandlerCtx, req diffReq) int64 {
	me := h.Node()
	var ivs []*interval
	var bytes int64 = 16
	items := int64(0)
	for s := req.from; s <= req.to; s++ {
		iv := p.intervals[me][s-1]
		if d, ok := iv.diffs[req.page]; ok {
			ivs = append(ivs, iv)
			bytes += 16 + int64(len(d))*8
			items++
		}
	}
	dst := req.requester
	toNS := p.nodes[dst]
	deliver := req.deliver
	h.Send(&comm.Message{
		Src: me, Dst: dst, Size: bytes,
		OnDeliver: func(now sim.Time) {
			deliver(ivs)
			toNS.faultWait--
			if toNS.faultWait == 0 {
				p.env.WakeThread(dst)
			}
		},
	})
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*items
}

// handleAcqReq grants or queues a lock request at its manager.
func (p *Protocol) handleAcqReq(h proto.HandlerCtx, req acqMsg) int64 {
	ls := p.lockState(req.lock)
	if ls.held {
		ls.queue = append(ls.queue, acqWaiter{proc: req.proc, vc: req.vc})
		return p.cfg.Costs.HandlerBase
	}
	ls.held = true
	ls.holder = req.proc
	n := p.sendGrant(h, req.proc, req.vc, ls.releaseVC)
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(n)
}

// handleRelease records the release clock and passes the lock on.
func (p *Protocol) handleRelease(h proto.HandlerCtx, rel acqMsg) int64 {
	ls := p.lockState(rel.lock)
	if !ls.held || ls.holder != rel.proc {
		panic(fmt.Sprintf("lrc: release of lock %d by non-holder %d", rel.lock, rel.proc))
	}
	copy(ls.releaseVC, rel.vc) // same length; reuse instead of reallocating
	if len(ls.queue) == 0 {
		ls.held = false
		return p.cfg.Costs.HandlerBase
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next.proc
	n := p.sendGrant(h, next.proc, next.vc, ls.releaseVC)
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(n)
}

// sendGrant ships a lock grant with unseen write notices.
func (p *Protocol) sendGrant(h proto.HandlerCtx, to int, acqVC, relVC []int32) int {
	notices := p.noticesSince(acqVC, relVC)
	g := &grantPayload{vc: cloneVC(relVC), notices: notices}
	sz := int64(16 + 4*p.nprocs)
	for _, n := range notices {
		sz += 12 + 4*int64(len(n.pages))
	}
	toNS := p.nodes[to]
	h.Send(&comm.Message{
		Src: h.Node(), Dst: to, Size: sz,
		OnDeliver: func(now sim.Time) {
			toNS.grant = g
			p.env.WakeThread(to)
		},
	})
	return len(notices)
}

// handleBarArrive gathers barrier arrivals; the last releases everyone.
func (p *Protocol) handleBarArrive(h proto.HandlerCtx, ba barMsg) int64 {
	bs := p.barriers[ba.bar]
	if bs == nil {
		bs = &barrierState{}
		p.barriers[ba.bar] = bs
	}
	bs.arrived++
	bs.procs = append(bs.procs, ba.proc)
	bs.vcs = append(bs.vcs, ba.vc)
	if bs.arrived < p.nprocs {
		return p.cfg.Costs.HandlerBase
	}
	// The merged clock lives in the preallocated scratch; each grant
	// clones what it retains.
	merged := p.vcScratch
	for i := range merged {
		merged[i] = 0
	}
	for _, vc := range bs.vcs {
		maxVC(merged, vc)
	}
	items := 0
	for i, proc := range bs.procs {
		notices := p.noticesSince(bs.vcs[i], merged)
		items += len(notices)
		g := &grantPayload{vc: cloneVC(merged), notices: notices}
		sz := int64(16 + 4*p.nprocs)
		for _, n := range notices {
			sz += 12 + 4*int64(len(n.pages))
		}
		to := proc
		toNS := p.nodes[to]
		h.Send(&comm.Message{
			Src: h.Node(), Dst: to, Size: sz,
			OnDeliver: func(now sim.Time) {
				toNS.grant = g
				p.env.WakeThread(to)
			},
		})
	}
	bs.arrived = 0
	bs.procs = bs.procs[:0]
	bs.vcs = bs.vcs[:0]
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(items)
}

func (p *Protocol) lockState(lock int) *lockState {
	ls := p.locks[lock]
	if ls == nil {
		ls = &lockState{releaseVC: make([]int32, p.nprocs)}
		p.locks[lock] = ls
	}
	return ls
}

// ReadCoherent reconstructs the authoritative value: the manager's base
// copy with every interval's diffs applied in happened-before order.
func (p *Protocol) ReadCoherent(addr int64) uint32 {
	pg := mem.PageOf(addr)
	frame := p.env.NodeMem(p.manager(pg)).Frame(pg)
	var page [mem.PageSize]byte
	copy(page[:], frame[:])
	var ivs []*interval
	for o := 0; o < p.nprocs; o++ {
		for _, iv := range p.intervals[o] {
			if _, ok := iv.diffs[pg]; ok {
				ivs = append(ivs, iv)
			}
		}
	}
	sortIntervals(ivs)
	for _, iv := range ivs {
		wdiff.Apply(page[:], iv.diffs[pg])
	}
	off := addr & (mem.PageSize - 1)
	return uint32(page[off]) | uint32(page[off+1])<<8 |
		uint32(page[off+2])<<16 | uint32(page[off+3])<<24
}

// InitWrite seeds the manager's base copy.
func (p *Protocol) InitWrite(addr int64, v uint32) {
	p.env.NodeMem(p.manager(mem.PageOf(addr))).WriteWord(addr, v)
}

var _ proto.Protocol = (*Protocol)(nil)
