package lrc

import (
	"sort"

	"swsm/internal/comm"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/wdiff"
	"swsm/internal/stats"
)

// flush closes the open interval: create (and retain) diffs of the
// dirty pages and downgrade them.  Unlike HLRC there is nothing to send
// and nothing to wait for — the cheap release is classic LRC's selling
// point, paid back later at faults.
func (p *Protocol) flush(th proto.Thread) {
	me := th.Proc()
	ns := p.nodes[me]
	if len(ns.dirty) == 0 {
		return
	}
	pages := append([]int64(nil), ns.dirty...)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	uniq := pages[:0]
	for i, pg := range pages {
		if i == 0 || pg != pages[i-1] {
			uniq = append(uniq, pg)
		}
	}
	pages = uniq

	seq := ns.vc[me] + 1
	ns.vc[me] = seq
	iv := &interval{owner: me, seq: seq, pages: pages, diffs: make(map[int64][]wordDiff)}
	st := p.env.Metrics()

	for _, pg := range pages {
		if ns.mode[pg] == modeReadWrite {
			ns.mode[pg] = modeReadOnly
		}
		frame := p.env.NodeMem(me).Frame(pg)
		twin, ok := ns.twin[pg]
		if !ok {
			// The manager wrote its own never-twinned page: diff against
			// a zero snapshot is wrong, so manager pages are twinned too
			// in ensure(); reaching here is a protocol bug.
			panic("lrc: dirty page without twin")
		}
		// Diff into the protocol scratch (8-byte-wide compare), then
		// right-size into the retained interval diff.  Retained diffs are
		// never garbage collected (classic LRC without GC), so they get
		// exact-size allocations rather than append-grown capacity.
		p.diffScratch = wdiff.Append(p.diffScratch[:0], twin, frame[:])
		var d []wordDiff
		if len(p.diffScratch) > 0 {
			d = make([]wordDiff, len(p.diffScratch))
			copy(d, p.diffScratch)
		}
		iv.diffs[pg] = d
		p.dropTwin(ns, pg)
		cost := proto.WordCost(p.cfg.Costs.DiffCompareQ4, wordsPerPage) +
			proto.WordCost(p.cfg.Costs.DiffWriteQ4, int64(len(d)))
		cost += p.env.CacheTouch(me, mem.PageBase(pg), mem.PageSize, false)
		st.AddDiff(me, cost)
		th.Charge(stats.Protocol, cost)
		st.Inc(me, stats.DiffsCreated, 1)
		st.Inc(me, stats.DiffWordsCompared, wordsPerPage)
		st.Inc(me, stats.DiffWordsWritten, int64(len(d)))
		p.tr.DiffCreate(p.env.Now(), int32(me), pg, int64(len(d)))
		// Our own copy reflects our interval.
		ns.appliedFor(pg, p.nprocs)[me] = seq
		ns.markHeld(pg)
	}
	iv.vc = cloneVC(ns.vc)
	for _, v := range iv.vc {
		iv.vcSum += int64(v)
	}
	p.intervals[me] = append(p.intervals[me], iv)
	st.Inc(me, stats.WriteNotices, int64(len(pages)))
	th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(len(pages)))
	st.Inc(me, stats.PageProtects, int64(len(pages)))
	ns.dirty = ns.dirty[:0]
}

// Acquire requests the lock; the grant carries unseen write notices.
func (p *Protocol) Acquire(th proto.Thread, lock int) {
	me := th.Proc()
	ns := p.nodes[me]
	req := &comm.Message{
		Src: me, Dst: p.lockManager(lock), Kind: msgAcqReq,
		Size:    int64(16 + 4*p.nprocs),
		Payload: acqWaiter{proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	req.Kind = msgAcqReq
	req.Payload = acqMsg{lock: lock, proc: me, vc: cloneVC(ns.vc)}
	th.Send(stats.LockWait, req)
	th.BlockFor(stats.LockWait)
	g := ns.grant
	ns.grant = nil
	if g == nil {
		panic("lrc: woke from acquire without grant")
	}
	p.applyNotices(th, g)
}

// Release closes the interval locally and notifies the lock manager.
func (p *Protocol) Release(th proto.Thread, lock int) {
	me := th.Proc()
	ns := p.nodes[me]
	p.flush(th)
	msg := &comm.Message{
		Src: me, Dst: p.lockManager(lock), Kind: msgRelease,
		Size:    int64(16 + 4*p.nprocs),
		Payload: acqMsg{lock: lock, proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	th.Send(stats.LockWait, msg)
}

// Barrier flushes, gathers at the manager, and applies the notices of
// every other node on release.
func (p *Protocol) Barrier(th proto.Thread, bar int, total int) {
	me := th.Proc()
	ns := p.nodes[me]
	p.flush(th)
	msg := &comm.Message{
		Src: me, Dst: p.barrierManager(bar), Kind: msgBarArrive,
		Size:    int64(16 + 4*p.nprocs),
		Payload: barMsg{bar: bar, proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	th.Send(stats.BarrierWait, msg)
	th.BlockFor(stats.BarrierWait)
	g := ns.grant
	ns.grant = nil
	if g == nil {
		panic("lrc: woke from barrier without release payload")
	}
	p.applyNotices(th, g)
}

// Finalize closes the last interval.
func (p *Protocol) Finalize(th proto.Thread) { p.flush(th) }

func (p *Protocol) lockManager(lock int) int   { return lock % p.nprocs }
func (p *Protocol) barrierManager(bar int) int { return bar % p.nprocs }

type acqMsg struct {
	lock int
	proc int
	vc   []int32
}

type barMsg struct {
	bar  int
	proc int
	vc   []int32
}

// applyNotices merges the grant clock and invalidates pages with unseen
// write notices.  Invalidation also clears the page's applied vector and
// held marker, so the next fault rebuilds the copy from the base plus
// the full diff history (classic LRC without GC).
func (p *Protocol) applyNotices(th proto.Thread, g *grantPayload) {
	me := th.Proc()
	ns := p.nodes[me]
	invalidated := 0
	for _, n := range g.notices {
		if n.seq <= ns.vc[n.owner] || n.owner == me {
			if n.seq > ns.vc[n.owner] {
				ns.vc[n.owner] = n.seq
			}
			continue
		}
		for _, pg := range n.pages {
			if ns.mode[pg] == modeInvalid {
				continue
			}
			if ns.mode[pg] == modeReadWrite {
				// Concurrent writer: commit our modifications as a
				// singleton interval before dropping the copy.
				p.flushSinglePage(th, pg)
			}
			ns.mode[pg] = modeInvalid
			p.dropTwin(ns, pg)
			delete(ns.applied, pg)
			if ns.held != nil {
				delete(ns.held, pg)
			}
			p.env.CacheInvalidate(me, mem.PageBase(pg), mem.PageSize)
			p.tr.Invalidate(p.env.Now(), int32(me), pg)
			invalidated++
		}
		if n.seq > ns.vc[n.owner] {
			ns.vc[n.owner] = n.seq
		}
	}
	if g.vc != nil {
		for i, v := range g.vc {
			if v > ns.vc[i] {
				ns.vc[i] = v
			}
		}
	}
	if invalidated > 0 {
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(invalidated))
		st := p.env.Metrics()
		st.Inc(me, stats.Invalidations, int64(invalidated))
		st.Inc(me, stats.PageProtects, int64(invalidated))
	}
}

// flushSinglePage commits one dirty page as its own interval (used when
// an invalidation hits a page with local modifications).
func (p *Protocol) flushSinglePage(th proto.Thread, pg int64) {
	me := th.Proc()
	ns := p.nodes[me]
	kept := ns.dirty[:0]
	for _, d := range ns.dirty {
		if d != pg {
			kept = append(kept, d)
		}
	}
	saved := append([]int64(nil), kept...)
	ns.dirty = []int64{pg}
	p.flush(th)
	ns.dirty = saved
}

// noticesSince lists the write notices (without diffs) in (fromVC, toVC].
func (p *Protocol) noticesSince(fromVC, toVC []int32) []noticeRec {
	var out []noticeRec
	for o := 0; o < p.nprocs; o++ {
		for s := fromVC[o] + 1; s <= toVC[o]; s++ {
			iv := p.intervals[o][s-1]
			out = append(out, noticeRec{owner: o, seq: s, pages: iv.pages})
		}
	}
	return out
}

func cloneVC(vc []int32) []int32 {
	out := make([]int32, len(vc))
	copy(out, vc)
	return out
}

func maxVC(dst, src []int32) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}
