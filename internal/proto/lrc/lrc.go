// Package lrc implements classic (TreadMarks-style) lazy release
// consistency — the "traditional LRC" the paper contrasts HLRC with:
// writers keep their diffs DISTRIBUTED at the writing node, and a
// faulting processor must collect the diffs it has not seen from every
// relevant writer and merge them itself, instead of fetching one
// up-to-date page from a home.
//
// The protocol shares HLRC's machinery (twins, word-grain diffs, vector
// timestamps, write notices on lock grants and barrier releases) but
// differs in data movement:
//
//   - Release: diffs are created and RETAINED locally (no eager
//     propagation, no home, no acks to wait for — releases are cheap).
//   - Page fault: the faulting node fetches a base copy from the page's
//     manager if it has none, then requests, from every writer with
//     unseen intervals covering the page, the diffs of those intervals,
//     and applies them in a happened-before-compatible order.
//
// Diffs are created eagerly at release (original Munin/LRC style) rather
// than lazily on first request as TreadMarks optimizes; the distributed
// placement — the property under study — is identical.  Diff storage is
// never garbage collected (TreadMarks GCs at barriers), which is fine
// for the simulated runs and documented in DESIGN.md.
package lrc

import (
	"sort"

	"swsm/internal/comm"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/wdiff"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// pageMode is a plain uint8 (alias) so the per-node mode array can be
// handed to the thread fast path as the proto.TableProtocol table.
type pageMode = uint8

const (
	modeInvalid pageMode = iota
	modeReadOnly
	modeReadWrite
)

// Message kinds.
const (
	msgBaseReq = iota + 1
	msgDiffReq
	msgAcqReq
	msgRelease
	msgBarArrive
)

const wordsPerPage = mem.PageSize / mem.WordSize

// wordDiff is one modified word (shared kernel in internal/proto/wdiff).
type wordDiff = wdiff.Word

// interval is one closed writer interval, carrying its vector timestamp
// and the retained diffs of every page it wrote.
type interval struct {
	owner int
	seq   int32
	vc    []int32
	pages []int64
	diffs map[int64][]wordDiff
	// vcSum orders concurrent-safe application (any linear extension of
	// happened-before; componentwise-less implies strictly smaller sum).
	vcSum int64
}

// nodeState is one node's view.
type nodeState struct {
	mode  []pageMode
	twin  map[int64][]byte
	dirty []int64
	vc    []int32
	// applied[pg][w] is the highest interval of writer w merged into
	// this node's copy of pg.
	applied map[int64][]int32

	grant *grantPayload
	// held marks pages this node has ever had a copy of (cleared on
	// invalidation; absence forces a base-copy fetch at the next fault).
	held map[int64]struct{}
	// fault rendezvous: replies outstanding for the current page fault.
	faultWait int
}

type grantPayload struct {
	vc      []int32
	notices []noticeRec
}

// noticeRec is the wire form of a write notice (no diffs attached).
type noticeRec struct {
	owner int
	seq   int32
	pages []int64
}

type lockState struct {
	held      bool
	holder    int
	releaseVC []int32
	queue     []acqWaiter
}

type acqWaiter struct {
	proc int
	vc   []int32
}

type barrierState struct {
	arrived int
	vcs     [][]int32
	procs   []int
}

// Config holds LRC options.
type Config struct {
	Costs proto.Costs
}

// Protocol is the classic-LRC instance.
type Protocol struct {
	cfg Config
	env proto.Env
	// tr caches env.Tracer() at Attach; nil makes every hook a no-op.
	tr     *trace.Tracer
	nprocs int
	npages int64

	managers  []int32 // page -> manager (serves base copies)
	nodes     []*nodeState
	intervals [][]*interval // per owner, indexed seq-1
	locks     map[int]*lockState
	barriers  map[int]*barrierState

	// Hot-path scratch (single-threaded engine; nothing here survives a
	// yield point).  diffScratch collects a page's modified words before
	// they are right-sized into the retained interval diff; twinFree
	// recycles twin buffers freed at flush or invalidation; vcScratch
	// holds the merged barrier clock.
	diffScratch []wordDiff
	twinFree    [][]byte
	vcScratch   []int32
}

// New creates a classic-LRC protocol.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg,
		locks: make(map[int]*lockState), barriers: make(map[int]*barrierState)}
}

// Name identifies the protocol.
func (p *Protocol) Name() string { return "lrc" }

// ConsistencyModel declares the contract the checker verifies: classic
// LRC provides (lazy) release consistency.
func (p *Protocol) ConsistencyModel() proto.Model { return proto.ModelRC }

// Attach wires the environment and sizes per-node state.
func (p *Protocol) Attach(env proto.Env) {
	p.env = env
	p.tr = env.Tracer()
	p.nprocs = env.NumProcs()
	p.npages = (env.NodeMem(0).Limit() + mem.PageSize - 1) >> mem.PageShift
	p.managers = make([]int32, p.npages)
	for i := int64(0); i < p.npages; i++ {
		p.managers[i] = int32(i % int64(p.nprocs))
	}
	p.vcScratch = make([]int32, p.nprocs)
	p.nodes = make([]*nodeState, p.nprocs)
	p.intervals = make([][]*interval, p.nprocs)
	for i := range p.nodes {
		p.nodes[i] = &nodeState{
			mode:    make([]pageMode, p.npages),
			twin:    make(map[int64][]byte),
			vc:      make([]int32, p.nprocs),
			applied: make(map[int64][]int32),
		}
	}
	for pg := int64(0); pg < p.npages; pg++ {
		p.nodes[p.manager(pg)].mode[pg] = modeReadOnly
	}
}

// AssignHome moves the manager (base-copy server) of a range, migrating
// contents, so applications' Place calls work as with the other
// protocols.
func (p *Protocol) AssignHome(addr, size int64, node int) {
	first, last := mem.PageOf(addr), mem.PageOf(addr+size-1)
	for pg := first; pg <= last; pg++ {
		old := int(p.managers[pg])
		if old == node {
			continue
		}
		src := p.env.NodeMem(old).Frame(pg)
		dst := p.env.NodeMem(node).Frame(pg)
		copy(dst[:], src[:])
		p.nodes[old].mode[pg] = modeInvalid
		p.managers[pg] = int32(node)
		p.nodes[node].mode[pg] = modeReadOnly
	}
}

func (p *Protocol) manager(pg int64) int { return int(p.managers[pg]) }

// appliedFor returns (allocating) the applied-interval vector of pg.
func (ns *nodeState) appliedFor(pg int64, nprocs int) []int32 {
	a := ns.applied[pg]
	if a == nil {
		a = make([]int32, nprocs)
		ns.applied[pg] = a
	}
	return a
}

// --- access-fault side ---

// Access implements the page access check and the distributed-diff
// fault path.
// AccessTable exposes the per-proc page-mode array for the thread fast
// path (proto.TableProtocol): the mode encoding already matches the
// uniform 0/1/2 convention.
func (p *Protocol) AccessTable(proc int) ([]uint8, uint) {
	return p.nodes[proc].mode, mem.PageShift
}

func (p *Protocol) Access(th proto.Thread, addr int64, size int, write bool) {
	first := mem.PageOf(addr)
	last := mem.PageOf(addr + int64(size) - 1)
	mode := p.nodes[th.Proc()].mode
	for pg := first; pg <= last; pg++ {
		m := mode[pg]
		if write {
			if m == modeReadWrite {
				continue
			}
		} else if m != modeInvalid {
			continue
		}
		p.ensure(th, pg, write)
	}
}

func (p *Protocol) ensure(th proto.Thread, pg int64, write bool) {
	me := th.Proc()
	ns := p.nodes[me]
	m := ns.mode[pg]
	if write {
		if m == modeReadWrite {
			return
		}
	} else if m != modeInvalid {
		return
	}
	st := p.env.Metrics()
	p.tr.PageFault(p.env.Now(), int32(me), pg, write)

	if m == modeInvalid {
		th.Charge(stats.Protocol, p.cfg.Costs.FaultBase)
		st.Inc(me, stats.PageFetches, 1)
		p.fault(th, pg)
		ns.mode[pg] = modeReadOnly
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(1))
		st.Inc(me, stats.PageProtects, 1)
	}
	if write {
		p.makeTwin(th, pg)
		ns.dirty = append(ns.dirty, pg)
		ns.mode[pg] = modeReadWrite
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(1))
		st.Inc(me, stats.PageProtects, 1)
	}
}

// fault collects the base copy (if needed) and all unseen diffs for pg,
// in parallel, then applies them in happened-before order.
func (p *Protocol) fault(th proto.Thread, pg int64) {
	me := th.Proc()
	ns := p.nodes[me]
	applied := ns.appliedFor(pg, p.nprocs)

	// Which writers have intervals covering pg that we have seen notices
	// for (vc) but not yet merged (applied)?
	type want struct {
		writer   int
		from, to int32
	}
	var wants []want
	var ownIvs []*interval
	for w := 0; w < p.nprocs; w++ {
		var lo, hi int32 = 0, 0
		for s := applied[w] + 1; s <= ns.vc[w]; s++ {
			iv := p.intervals[w][s-1]
			if _, ok := iv.diffs[pg]; ok {
				if lo == 0 {
					lo = s
				}
				hi = s
				if w == me {
					// Our own retained diffs reapply locally for free.
					ownIvs = append(ownIvs, iv)
				}
			}
		}
		if hi > 0 && w != me {
			wants = append(wants, want{writer: w, from: lo, to: hi})
		}
	}

	base := !ns.everHeld(pg) && p.manager(pg) != me

	fetchStart := p.env.Now()
	ns.faultWait = 0
	if base {
		ns.faultWait++
		req := &comm.Message{
			Src: me, Dst: p.manager(pg), Kind: msgBaseReq, Size: 16,
			Payload: baseReq{page: pg, requester: me}, NeedsHandler: true,
		}
		th.Send(stats.DataWait, req)
	}

	// Collected diff replies, merged after all arrive.
	replies := make([][]*interval, 0, len(wants))
	for _, wn := range wants {
		ns.faultWait++
		wn := wn
		slot := len(replies)
		replies = append(replies, nil)
		req := &comm.Message{
			Src: me, Dst: wn.writer, Kind: msgDiffReq, Size: 24,
			Payload: diffReq{page: pg, requester: me, from: wn.from, to: wn.to,
				deliver: func(ivs []*interval) { replies[slot] = ivs }},
			NeedsHandler: true,
		}
		th.Send(stats.DataWait, req)
	}

	for ns.faultWait > 0 {
		th.BlockFor(stats.DataWait)
	}
	p.tr.PageFetch(fetchStart, p.env.Now(), int32(me), pg)
	ns.markHeld(pg)

	// Merge in a linear extension of happened-before (vc-sum order).
	ivs := ownIvs
	for _, r := range replies {
		ivs = append(ivs, r...)
	}
	sortIntervals(ivs)
	frame := p.env.NodeMem(me).Frame(pg)
	st := p.env.Metrics()
	var applyCost int64
	for _, iv := range ivs {
		d := iv.diffs[pg]
		wdiff.Apply(frame[:], d)
		applyCost += proto.WordCost(p.cfg.Costs.DiffApplyQ4, int64(len(d)))
		if iv.seq > applied[iv.owner] {
			applied[iv.owner] = iv.seq
		}
		st.Inc(me, stats.DiffsApplied, 1)
		p.tr.DiffApply(p.env.Now(), int32(me), pg, int64(len(d)))
	}
	applyCost += p.env.CacheTouch(me, mem.PageBase(pg), mem.PageSize, true)
	if applyCost > 0 {
		st.AddDiff(me, applyCost)
		th.Charge(stats.Protocol, applyCost)
	}
}

// newTwinBuf returns a page-sized twin buffer from the free list (or a
// fresh one); dropTwin recycles.  Contents are overwritten by the user.
func (p *Protocol) newTwinBuf() []byte {
	if n := len(p.twinFree); n > 0 {
		buf := p.twinFree[n-1]
		p.twinFree = p.twinFree[:n-1]
		return buf
	}
	return make([]byte, mem.PageSize)
}

// dropTwin removes pg's twin (if any) and recycles its buffer.
func (p *Protocol) dropTwin(ns *nodeState, pg int64) {
	if twin, ok := ns.twin[pg]; ok {
		delete(ns.twin, pg)
		p.twinFree = append(p.twinFree, twin)
	}
}

// everHeld / markHeld track whether this node ever had a copy of pg
// (whether a base fetch is needed).  Implemented with a sentinel entry
// in the applied map plus a held set.
func (ns *nodeState) everHeld(pg int64) bool {
	_, ok := ns.held[pg]
	return ok
}

func (ns *nodeState) markHeld(pg int64) {
	if ns.held == nil {
		ns.held = make(map[int64]struct{})
	}
	ns.held[pg] = struct{}{}
}

// makeTwin snapshots a page before its first write in an interval.
func (p *Protocol) makeTwin(th proto.Thread, pg int64) {
	me := th.Proc()
	ns := p.nodes[me]
	if _, ok := ns.twin[pg]; ok {
		return
	}
	frame := p.env.NodeMem(me).Frame(pg)
	twin := p.newTwinBuf()
	copy(twin, frame[:])
	ns.twin[pg] = twin
	cost := proto.WordCost(p.cfg.Costs.TwinQ4, wordsPerPage)
	cost += p.env.CacheTouch(me, mem.PageBase(pg), mem.PageSize, false)
	th.Charge(stats.Protocol, cost)
	st := p.env.Metrics()
	st.Inc(me, stats.TwinsCreated, 1)
	st.AddDiff(me, cost)
	p.tr.Twin(p.env.Now(), int32(me), pg)
}

// payloads

type baseReq struct {
	page      int64
	requester int
}

type diffReq struct {
	page      int64
	requester int
	from, to  int32
	deliver   func([]*interval)
}

// sortIntervals orders intervals in a linear extension of
// happened-before: componentwise-smaller vector clocks have strictly
// smaller sums, so vc-sum order respects causality; ties (concurrent
// intervals, which data-race-free programs keep word-disjoint) break
// deterministically by owner and sequence.
func sortIntervals(ivs []*interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].vcSum != ivs[j].vcSum {
			return ivs[i].vcSum < ivs[j].vcSum
		}
		if ivs[i].owner != ivs[j].owner {
			return ivs[i].owner < ivs[j].owner
		}
		return ivs[i].seq < ivs[j].seq
	})
}
