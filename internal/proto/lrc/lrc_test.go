package lrc_test

import (
	"testing"

	"swsm/internal/core"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/lrc"
	"swsm/internal/stats"
)

func machine(procs int) *core.Machine {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 4 << 20
	return core.NewMachine(cfg, lrc.New(lrc.Config{Costs: proto.OriginalCosts()}))
}

func TestDistributedDiffMerge(t *testing.T) {
	// Two concurrent writers touch disjoint words of one page; a third
	// node faulting after the barrier must merge diffs from BOTH writers
	// (there is no home that does it).
	m := machine(4)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		switch th.Proc() {
		case 1:
			th.Store32(a, 111)
		case 2:
			th.Store32(a+4, 222)
		}
		th.Barrier(0)
		if got := th.Load32(a); got != 111 {
			t.Errorf("proc %d word0 = %d", th.Proc(), got)
		}
		if got := th.Load32(a + 4); got != 222 {
			t.Errorf("proc %d word1 = %d", th.Proc(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.TotalCount(stats.DiffsCreated); got != 2 {
		t.Fatalf("diffs created = %d, want 2", got)
	}
	// Diffs are applied at the faulting nodes, not at a home.
	if m.Stats.TotalCount(stats.DiffsApplied) == 0 {
		t.Fatal("no distributed diff application happened")
	}
}

func TestOrderedIntervalsLastWriteWins(t *testing.T) {
	// A migratory counter ordered by a lock: faulting nodes must apply
	// the chain of intervals in happened-before order or the counter
	// regresses.
	const procs = 8
	const iters = 6
	m := machine(procs)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < iters; i++ {
			th.Acquire(3)
			v := th.Load32(a)
			th.Store32(a, v+1)
			th.Release(3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(a); got != procs*iters {
		t.Fatalf("counter = %d, want %d (interval ordering broken)", got, procs*iters)
	}
}

func TestCheapRelease(t *testing.T) {
	// Classic LRC releases send no diffs; HLRC's eager flush does.  A
	// writer that releases but is never read from should produce no diff
	// traffic at all beyond notices.
	m := machine(2)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		if th.Proc() == 1 {
			th.Acquire(0)
			th.Store32(a, 5)
			th.Release(0)
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The diff exists (created at release) but was never transferred.
	if got := m.Stats.TotalCount(stats.DiffsCreated); got != 1 {
		t.Fatalf("diffs created = %d, want 1", got)
	}
	if got := m.Stats.TotalCount(stats.DiffsApplied); got != 0 {
		t.Fatalf("diffs applied = %d, want 0 (nobody read the page)", got)
	}
	if got := m.ReadResultWord(a); got != 5 {
		t.Fatalf("coherent read = %d, want 5", got)
	}
}

func TestRefetchAfterInvalidationKeepsOwnWrites(t *testing.T) {
	// A writer whose page is invalidated by a concurrent writer's notice
	// must recover its own committed writes from its retained diffs.
	m := machine(2)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		me := th.Proc()
		th.Acquire(0)
		th.Store32(a+int64(4*me), uint32(me+10))
		th.Release(0)
		th.Barrier(0)
		for i := 0; i < 2; i++ {
			if got := th.Load32(a + int64(4*i)); got != uint32(i+10) {
				t.Errorf("proc %d: word %d = %d, want %d", me, i, got, i+10)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
