package proto_test

import (
	"testing"

	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/proto/ideal"
	"swsm/internal/proto/lrc"
	"swsm/internal/proto/scfg"
)

// TestConsistencyModelTable pins the ordering-contract table the
// conformance checker keys its per-protocol mode selection on: the lazy
// release-consistency protocols declare RC, the fine-grained directory
// protocol and the ideal machine declare SC.  A protocol silently
// changing its declaration would silently weaken (or vacuously
// strengthen) what the checker verifies.
func TestConsistencyModelTable(t *testing.T) {
	table := []struct {
		name string
		prot proto.Protocol
		want proto.Model
	}{
		{"hlrc", hlrc.New(hlrc.Config{Costs: proto.OriginalCosts()}), proto.ModelRC},
		{"lrc", lrc.New(lrc.Config{Costs: proto.OriginalCosts()}), proto.ModelRC},
		{"scfg", scfg.New(scfg.Config{Costs: proto.OriginalCosts(), BlockSize: 64}), proto.ModelSC},
		{"ideal", ideal.New(), proto.ModelSC},
	}
	for _, tc := range table {
		md, ok := tc.prot.(proto.ModelDeclarer)
		if !ok {
			t.Errorf("%s does not declare a consistency model", tc.name)
			continue
		}
		if got := md.ConsistencyModel(); got != tc.want {
			t.Errorf("%s declares %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestModelStrings keeps the model names stable for reports and CSVs.
func TestModelStrings(t *testing.T) {
	if proto.ModelRC.String() != "RC" || proto.ModelSC.String() != "SC" {
		t.Fatalf("model names changed: %v %v", proto.ModelRC, proto.ModelSC)
	}
}
