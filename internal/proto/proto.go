// Package proto defines the contract between the core simulated machine
// and the software shared-memory protocols that run on it (page-based
// HLRC and fine-grained SC), plus the protocol-layer cost parameters the
// paper varies in Table 3.
//
// Protocols are event-driven state machines: the thread side (Access,
// Acquire, Release, Barrier) runs in the faulting thread's coroutine and
// may block it; the handler side (Handle) runs in engine context when a
// request message is dispatched on a node, and reports its body cost in
// cycles so the core can model processor occupancy and polling.
package proto

import (
	"swsm/internal/comm"
	"swsm/internal/mem"
	"swsm/internal/sim"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// Env is the machine environment a protocol operates in.  It is
// implemented by the core machine.
type Env interface {
	NumProcs() int
	Now() sim.Time
	// NodeMem returns node i's physical memory.
	NodeMem(i int) *mem.NodeMem
	Metrics() *stats.Machine
	// Send injects a message into the network (no host overhead charged;
	// use Thread.Send or HandlerCtx.Send in those contexts).
	Send(m *comm.Message)
	// CacheTouch runs protocol data movement through node i's cache to
	// model pollution, returning stall cycles (zero if caches are off).
	CacheTouch(node int, addr int64, size int, write bool) int64
	// CacheInvalidate drops [addr,addr+size) from node i's cache.
	CacheInvalidate(node int, addr int64, size int)
	// WakeThread unblocks node i's application thread.
	WakeThread(node int)
	// Schedule runs fn after d cycles (engine context).
	Schedule(d sim.Time, fn func())
	// Tracer returns the observability tracer, nil when tracing is off.
	// Protocols cache it at Attach; all hooks are no-ops on nil.
	Tracer() *trace.Tracer
}

// Thread is the per-thread interface protocols use from fault context.
type Thread interface {
	Proc() int
	Env() Env
	// Charge advances this thread's virtual time by `cycles`, attributed
	// to the given breakdown category.
	Charge(cat stats.Category, cycles int64)
	// Send charges the host overhead to cat and injects m.
	Send(cat stats.Category, m *comm.Message)
	// BlockFor suspends the thread until WakeThread, attributing the
	// elapsed wait (including any handler occupancy on this node's CPU)
	// to cat.
	BlockFor(cat stats.Category)
}

// HandlerCtx is passed to Handle.  Sends made through it are buffered and
// injected when the handler completes; each send adds the host overhead
// to the handler's cost.
type HandlerCtx interface {
	Node() int
	Env() Env
	Send(m *comm.Message)
}

// Protocol is a software shared-memory protocol.
type Protocol interface {
	Name() string
	// Attach wires the protocol to its environment.  Called once before
	// any thread runs.
	Attach(env Env)
	// Access ensures th's node may legally read (write=false) or write
	// (write=true) [addr, addr+size); blocks th on faults.
	Access(th Thread, addr int64, size int, write bool)
	Acquire(th Thread, lock int)
	Release(th Thread, lock int)
	// Barrier blocks th until all `total` threads arrive, performing the
	// protocol's consistency actions.
	Barrier(th Thread, bar int, total int)
	// Handle processes a protocol request on the destination node,
	// returning the handler body cost in cycles.
	Handle(h HandlerCtx, m *comm.Message) int64
	// Finalize runs end-of-program protocol actions on th's node (final
	// flush), after which ReadCoherent sees all writes.
	Finalize(th Thread)
	// ReadCoherent returns the authoritative value of the word at addr
	// (for result verification after the run).
	ReadCoherent(addr int64) uint32
	// InitWrite stores a word to the authoritative location before the
	// parallel phase begins (data initialization).
	InitWrite(addr int64, v uint32)
}

// TableProtocol is an optional fast path a protocol may implement: a
// per-processor access-permission table the thread hot path consults
// before paying the full Access call.  table[addr>>shift] holds the
// coherence-unit mode under a uniform encoding — 0 denies everything
// (invalid), 1 allows reads (read-only / shared), 2 allows reads and
// writes (read-write / exclusive).  The protocol mutates the table in
// place as units change state; a granted check must be exactly
// equivalent to Access returning without side effects.
type TableProtocol interface {
	AccessTable(proc int) (table []uint8, shift uint)
}

// Table entry values for TableProtocol (shared 0/1/2 encoding).
const (
	TableInvalid uint8 = iota // no access
	TableRead                 // read-only / shared
	TableWrite                // read-write / exclusive
)

// FreeAccessProtocol marks a protocol whose Access is a no-op (hardware
// coherence): the thread hot path skips the call entirely.
type FreeAccessProtocol interface {
	AccessFree()
}

// Model names the memory-consistency contract a protocol implements.
// The conformance checker (internal/consistency) selects its verification
// rule from this declaration, so the table is load-bearing and pinned by
// test:
//
//	hlrc  → ModelRC  (home-based lazy release consistency)
//	lrc   → ModelRC  (classic distributed lazy release consistency)
//	scfg  → ModelSC  (fine-grained directory-based sequential consistency)
//	ideal → ModelSC  (hardware-coherent shared memory, trivially SC)
type Model uint8

const (
	// ModelRC is (lazy) release consistency: a load may return any write
	// not yet covered by a later write that happens-before the load;
	// ordinary accesses with no intervening synchronization are
	// unordered.
	ModelRC Model = iota
	// ModelSC is sequential consistency: every load returns the value of
	// the most recent write in the single execution order.
	ModelSC
)

func (m Model) String() string {
	switch m {
	case ModelRC:
		return "RC"
	case ModelSC:
		return "SC"
	}
	return "unknown-model"
}

// ModelDeclarer is implemented by protocols that declare their
// consistency contract.  Protocols that do not declare one are checked
// against the weakest supported model (RC).
type ModelDeclarer interface {
	ConsistencyModel() Model
}

// Costs are the protocol-layer cost parameters (Table 3), in cycles.
type Costs struct {
	// PageProtect is the per-page cost of an mprotect call; a call over a
	// contiguous range pays PageProtectStartup once plus PageProtect per
	// page.
	PageProtect        int64
	PageProtectStartup int64
	// Per-word costs are in quarter-cycles (Q4 fixed point: 4 == one
	// cycle per word) so that the Halfway set can halve them exactly.
	//
	// DiffCompareQ4 is charged for every word examined while creating a
	// diff; DiffWriteQ4 additionally for every word that differs and
	// enters the diff.
	DiffCompareQ4 int64
	DiffWriteQ4   int64
	// DiffApplyQ4 is charged per word when a diff is applied.
	DiffApplyQ4 int64
	// TwinQ4 is charged per word when a twin (page copy) is made.
	TwinQ4 int64
	// HandlerBase is the fixed cost of running a protocol handler;
	// HandlerPerItem is added per list element traversed (write notices,
	// sharers, queued waiters).
	HandlerBase    int64
	HandlerPerItem int64
	// FaultBase is the cost of entering the access-fault path (SEGV
	// delivery and decode for SVM; negligible for hardware access
	// control).
	FaultBase int64
}

// OriginalCosts returns the paper's base (O) protocol cost set.  The OCR
// of Table 3 drops digits; values are reconstructed from the surviving
// text (see DESIGN.md §2) and match the real HLRC implementation's
// measured costs closely.
func OriginalCosts() Costs {
	return Costs{
		PageProtect:        200,
		PageProtectStartup: 300,
		DiffCompareQ4:      4, // 1 cycle per word compared
		DiffWriteQ4:        4, // +1 cycle per word written to the diff
		DiffApplyQ4:        4,
		TwinQ4:             4,
		HandlerBase:        500,
		HandlerPerItem:     20,
		FaultBase:          100,
	}
}

// BestCosts returns the idealized (B) set: all protocol costs zero.
func BestCosts() Costs { return Costs{} }

// HalfwayCosts returns the (H) set: all costs halved.
func HalfwayCosts() Costs {
	o := OriginalCosts()
	return Costs{
		PageProtect:        o.PageProtect / 2,
		PageProtectStartup: o.PageProtectStartup / 2,
		DiffCompareQ4:      o.DiffCompareQ4 / 2,
		DiffWriteQ4:        o.DiffWriteQ4 / 2,
		DiffApplyQ4:        o.DiffApplyQ4 / 2,
		TwinQ4:             o.TwinQ4 / 2,
		HandlerBase:        o.HandlerBase / 2,
		HandlerPerItem:     o.HandlerPerItem / 2,
		FaultBase:          o.FaultBase / 2,
	}
}

// WordCost converts a Q4 per-word rate into cycles for n words,
// rounding up.
func WordCost(q4 int64, words int64) int64 {
	if q4 <= 0 || words <= 0 {
		return 0
	}
	return (q4*words + 3) / 4
}

// CostsByName resolves the harness names "O", "B", "H".
func CostsByName(name string) (Costs, bool) {
	switch name {
	case "O":
		return OriginalCosts(), true
	case "B":
		return BestCosts(), true
	case "H":
		return HalfwayCosts(), true
	}
	return Costs{}, false
}

// MprotectCost reports the cost of one protection change covering nPages
// contiguous pages.
func (c Costs) MprotectCost(nPages int) int64 {
	if nPages <= 0 {
		return 0
	}
	return c.PageProtectStartup + c.PageProtect*int64(nPages)
}
