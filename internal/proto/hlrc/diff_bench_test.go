package hlrc

import "testing"

// benchPage builds a 4 KB page and a twin differing in every nth word.
func benchPage(nth int) (twin, cur []byte) {
	twin = make([]byte, 4096)
	cur = make([]byte, 4096)
	for i := range twin {
		twin[i] = byte(i * 7)
	}
	copy(cur, twin)
	for w := 0; w < 1024; w += nth {
		cur[w*4] ^= 0xff
	}
	return
}

// BenchmarkDiffPage measures the host cost of diffing a full page
// against its twin (the protocol hot path at every flush).  The
// scratch-buffer variant should be allocation-free in steady state.
func BenchmarkDiffPage(b *testing.B) {
	for _, tc := range []struct {
		name string
		nth  int
	}{{"sparse64", 64}, {"every8th", 8}, {"dense", 1}} {
		b.Run(tc.name, func(b *testing.B) {
			twin, cur := benchPage(tc.nth)
			var scratch []wordDiff
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = diffPageInto(scratch[:0], twin, cur)
			}
			if len(scratch) == 0 {
				b.Fatal("no diff produced")
			}
		})
	}
}

// BenchmarkApplyDiff measures patching a page with a diff.
func BenchmarkApplyDiff(b *testing.B) {
	twin, cur := benchPage(8)
	d := diffPage(twin, cur)
	page := make([]byte, 4096)
	copy(page, twin)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		applyDiff(page, d)
	}
}
