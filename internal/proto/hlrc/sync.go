package hlrc

import (
	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/stats"
)

// Per-node grant mailbox: the OnDeliver of a lock grant or barrier
// release stores the payload here and wakes the thread, which applies
// the notices in its own context (so invalidation costs are charged to
// the right processor).
func (ns *nodeState) takeGrant() *grantPayload {
	g := ns.grant
	ns.grant = nil
	return g
}

// Acquire implements lock acquisition with lazy-release-consistency
// semantics: the grant carries the write notices this node has not seen,
// and the node invalidates the named pages before entering the critical
// section.
func (p *Protocol) Acquire(th proto.Thread, lock int) {
	me := th.Proc()
	ns := p.nodes[me]
	mgr := p.lockManager(lock)
	req := &comm.Message{
		Src: me, Dst: mgr, Kind: msgAcqReq,
		Size:    int64(16 + 4*p.nprocs),
		Payload: acqReq{lock: lock, proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	th.Send(stats.LockWait, req)
	th.BlockFor(stats.LockWait)
	g := ns.takeGrant()
	if g == nil {
		panic("hlrc: woke from acquire without grant")
	}
	p.applyNotices(th, g)
}

// Release implements release: close the interval (flush diffs to homes
// and wait for acks), then notify the lock manager, which passes the
// lock to the next waiter.
func (p *Protocol) Release(th proto.Thread, lock int) {
	me := th.Proc()
	ns := p.nodes[me]
	p.flush(th, stats.LockWait)
	msg := &comm.Message{
		Src: me, Dst: p.lockManager(lock), Kind: msgRelease,
		Size:    int64(16 + 4*p.nprocs),
		Payload: relMsg{lock: lock, proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	th.Send(stats.LockWait, msg)
}

// Barrier implements the all-to-all consistency point: flush, notify the
// barrier manager, and on release apply the write notices of every other
// node's intervals.
func (p *Protocol) Barrier(th proto.Thread, bar int, total int) {
	me := th.Proc()
	ns := p.nodes[me]
	p.flush(th, stats.BarrierWait)
	msg := &comm.Message{
		Src: me, Dst: p.barrierManager(bar), Kind: msgBarArrive,
		Size:    int64(16 + 4*p.nprocs),
		Payload: barArrive{bar: bar, proc: me, vc: cloneVC(ns.vc)}, NeedsHandler: true,
	}
	th.Send(stats.BarrierWait, msg)
	th.BlockFor(stats.BarrierWait)
	g := ns.takeGrant()
	if g == nil {
		panic("hlrc: woke from barrier without release payload")
	}
	p.applyNotices(th, g)
}

// Finalize flushes the node's last interval so home copies are final.
func (p *Protocol) Finalize(th proto.Thread) {
	p.flush(th, stats.BarrierWait)
}

func (p *Protocol) lockManager(lock int) int   { return lock % p.nprocs }
func (p *Protocol) barrierManager(bar int) int { return bar % p.nprocs }

// applyNotices processes a grant: merges the vector clock and
// invalidates pages named by unseen write notices (one mprotect batch).
func (p *Protocol) applyNotices(th proto.Thread, g *grantPayload) {
	me := th.Proc()
	ns := p.nodes[me]
	invalidated := 0
	for _, iv := range g.notices {
		if iv.seq <= ns.vc[iv.owner] {
			continue // already seen
		}
		if iv.owner != me {
			for _, pg := range iv.pages {
				// Notices name coherence-unit starts; with adaptive grain
				// classes only change at barriers when pre-change notices
				// are VC-dead, so resolving the span here is safe.
				cs, span := p.cu(pg)
				if p.home(cs) == me {
					continue // the home copy is always current
				}
				if ns.mode[cs] == modeInvalid {
					continue
				}
				p.invSeen++
				if p.invSeen == p.cfg.DropNthInvalidation {
					// Deliberately-broken oracle mode: leave the stale copy
					// mapped.  The vector clock still merges below, so the
					// notice is never reapplied — silent staleness.
					continue
				}
				if ns.mode[cs] == modeReadWrite {
					// Concurrent writers: save our modifications first.
					p.flushPageFromInvalidation(th, cs)
				}
				setModes(ns.mode, cs, span, modeInvalid)
				p.dropTwin(ns, cs)
				p.env.CacheInvalidate(me, p.unitBase(cs), int(span*p.unitBytes))
				p.tr.Invalidate(p.env.Now(), int32(me), cs)
				invalidated++
			}
		}
		if iv.seq > ns.vc[iv.owner] {
			ns.vc[iv.owner] = iv.seq
		}
	}
	if g.vc != nil {
		for i, v := range g.vc {
			if v > ns.vc[i] {
				ns.vc[i] = v
			}
		}
	}
	if invalidated > 0 {
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(invalidated))
		st := p.env.Metrics()
		st.Inc(me, stats.Invalidations, int64(invalidated))
		st.Inc(me, stats.PageProtects, int64(invalidated))
	}
}

// noticesSince collects all intervals with owner-sequence numbers in
// (fromVC, toVC], the write notices a grant must carry.
func (p *Protocol) noticesSince(fromVC, toVC []int32) []interval {
	var out []interval
	for o := 0; o < p.nprocs; o++ {
		lo, hi := fromVC[o], toVC[o]
		for s := lo + 1; s <= hi; s++ {
			out = append(out, p.intervals[o][s-1])
		}
	}
	return out
}

func cloneVC(vc []int32) []int32 {
	out := make([]int32, len(vc))
	copy(out, vc)
	return out
}

func maxVC(dst, src []int32) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}
