package hlrc

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"swsm/internal/mem"
)

func TestDiffEmpty(t *testing.T) {
	twin := make([]byte, mem.PageSize)
	cur := make([]byte, mem.PageSize)
	if d := diffPage(twin, cur); len(d) != 0 {
		t.Fatalf("identical pages produced %d diff words", len(d))
	}
}

func TestDiffSingleWord(t *testing.T) {
	twin := make([]byte, mem.PageSize)
	cur := make([]byte, mem.PageSize)
	binary.LittleEndian.PutUint32(cur[100*4:], 0xdeadbeef)
	d := diffPage(twin, cur)
	if len(d) != 1 || d[0].Off != 100 || d[0].Val != 0xdeadbeef {
		t.Fatalf("diff = %+v", d)
	}
}

// Property: applying diff(twin, cur) to a copy of twin reconstructs cur.
const wordsPerPage = mem.PageSize / mem.WordSize

func TestDiffApplyIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64, nWrites uint8) bool {
		r.Seed(seed)
		twin := make([]byte, mem.PageSize)
		r.Read(twin)
		cur := make([]byte, mem.PageSize)
		copy(cur, twin)
		for i := 0; i < int(nWrites); i++ {
			w := r.Intn(wordsPerPage)
			binary.LittleEndian.PutUint32(cur[w*4:], r.Uint32())
		}
		d := diffPage(twin, cur)
		frame := make([]byte, mem.PageSize)
		copy(frame, twin)
		applyDiff(frame, d)
		for i := range cur {
			if frame[i] != cur[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent diffs touching disjoint words commute (the
// multiple-writer guarantee for data-race-free programs).
func TestDisjointDiffsCommute(t *testing.T) {
	base := make([]byte, mem.PageSize)
	curA := make([]byte, mem.PageSize)
	curB := make([]byte, mem.PageSize)
	for w := 0; w < wordsPerPage; w++ {
		v := uint32(w * 3)
		binary.LittleEndian.PutUint32(base[w*4:], v)
		binary.LittleEndian.PutUint32(curA[w*4:], v)
		binary.LittleEndian.PutUint32(curB[w*4:], v)
	}
	// A writes even words, B writes odd words.
	for w := 0; w < wordsPerPage; w++ {
		if w%2 == 0 {
			binary.LittleEndian.PutUint32(curA[w*4:], uint32(1000+w))
		} else {
			binary.LittleEndian.PutUint32(curB[w*4:], uint32(2000+w))
		}
	}
	dA := diffPage(base, curA)
	dB := diffPage(base, curB)

	ab := make([]byte, mem.PageSize)
	ba := make([]byte, mem.PageSize)
	copy(ab, base)
	copy(ba, base)
	applyDiff(ab, dA)
	applyDiff(ab, dB)
	applyDiff(ba, dB)
	applyDiff(ba, dA)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("diff application order matters at byte %d", i)
		}
	}
	// And both writers' updates survive.
	for w := 0; w < wordsPerPage; w++ {
		got := binary.LittleEndian.Uint32(ab[w*4:])
		want := uint32(1000 + w)
		if w%2 == 1 {
			want = uint32(2000 + w)
		}
		if got != want {
			t.Fatalf("word %d = %d, want %d", w, got, want)
		}
	}
}

// Property: vector clock merge is a lattice join (idempotent,
// commutative, monotone).
func TestVCMergeLattice(t *testing.T) {
	f := func(a, b [4]int32) bool {
		av, bv := a[:], b[:]
		m1 := cloneVC(av)
		maxVC(m1, bv)
		m2 := cloneVC(bv)
		maxVC(m2, av)
		for i := range m1 {
			if m1[i] != m2[i] { // commutative
				return false
			}
			if m1[i] < av[i] || m1[i] < bv[i] { // upper bound
				return false
			}
		}
		m3 := cloneVC(m1)
		maxVC(m3, bv) // idempotent
		for i := range m3 {
			if m3[i] != m1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrantSize(t *testing.T) {
	n := []interval{
		{owner: 1, seq: 1, pages: []int64{1, 2, 3}},
		{owner: 2, seq: 1, pages: []int64{9}},
	}
	// 16 + 4*4 (vc) + (12+12) + (12+4) = 72
	if got := grantSize(4, n); got != 72 {
		t.Fatalf("grantSize = %d, want 72", got)
	}
}
