package hlrc

import (
	"fmt"

	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/sim"
	"swsm/internal/stats"
)

// Handle processes protocol request messages on their destination node,
// returning the handler body cost (the core adds the message-handling
// dispatch cost and per-send host overheads).
func (p *Protocol) Handle(h proto.HandlerCtx, m *comm.Message) int64 {
	switch m.Kind {
	case msgPageReq:
		return p.handlePageReq(h, m.Payload.(pageReq))
	case msgDiff:
		return p.handleDiff(h, m.Payload.(diffMsg))
	case msgAcqReq:
		return p.handleAcqReq(h, m.Payload.(acqReq))
	case msgRelease:
		return p.handleRelease(h, m.Payload.(relMsg))
	case msgBarArrive:
		return p.handleBarArrive(h, m.Payload.(barArrive))
	}
	panic(fmt.Sprintf("hlrc: unknown message kind %d", m.Kind))
}

// handlePageReq serves a whole coherence-unit fetch from the home copy.
func (p *Protocol) handlePageReq(h proto.HandlerCtx, req pageReq) int64 {
	homeNode := h.Node()
	if p.home(req.page) != homeNode {
		panic("hlrc: page request arrived at non-home")
	}
	pg := req.page
	_, span := p.cu(pg)
	data := p.copyRange(homeNode, pg, span)
	dst := req.requester
	if p.pstats != nil {
		p.noteFetch(pg, dst)
	}
	h.Send(&comm.Message{
		Src: homeNode, Dst: dst, Size: int64(len(data)) + 16,
		OnDeliver: func(now sim.Time) {
			// The NI deposits the unit directly into the requester's
			// memory; the faulting thread finishes the mapping when it
			// wakes.  The staging buffer's lifetime ends here, so it
			// goes back on the free list.
			p.env.NodeMem(dst).CopyIn(p.unitBase(pg), data)
			p.freeBuf(data)
			p.env.WakeThread(dst)
		},
	})
	return p.cfg.Costs.HandlerBase
}

// handleDiff applies an incoming diff to the home copy and acks the
// writer.
func (p *Protocol) handleDiff(h proto.HandlerCtx, d diffMsg) int64 {
	homeNode := h.Node()
	if p.home(d.page) != homeNode {
		panic("hlrc: diff arrived at non-home")
	}
	// Patch the home copy through the protocol scratch buffer (the
	// handler runs to completion without yielding, so the scratch is
	// exclusively ours), then recycle the message's diff words.
	_, span := p.cu(d.page)
	unit := p.unitScratch[:span*p.unitBytes]
	p.env.NodeMem(homeNode).CopyOut(p.unitBase(d.page), unit)
	applyDiff(unit, d.words)
	p.env.NodeMem(homeNode).CopyIn(p.unitBase(d.page), unit)
	if p.pstats != nil {
		p.noteDiff(d.page, d.from, int64(len(d.words)))
	}
	st := p.env.Metrics()
	st.Inc(homeNode, stats.DiffsApplied, 1)
	body := p.cfg.Costs.HandlerBase +
		proto.WordCost(p.cfg.Costs.DiffApplyQ4, int64(len(d.words)))
	body += p.env.CacheTouch(homeNode, p.unitBase(d.page), int(span*p.unitBytes), true)
	st.AddDiff(homeNode, body-p.cfg.Costs.HandlerBase)
	p.tr.DiffApply(p.env.Now(), int32(homeNode), d.page, int64(len(d.words)))
	p.freeDiffBuf(d.words)
	from := d.from
	fromNS := p.nodes[from]
	h.Send(&comm.Message{
		Src: homeNode, Dst: from, Size: 8,
		OnDeliver: func(now sim.Time) {
			fromNS.pendingAcks--
			if fromNS.pendingAcks < 0 {
				panic("hlrc: ack underflow")
			}
			if fromNS.waitingAcks && fromNS.pendingAcks == 0 {
				p.env.WakeThread(from)
			}
		},
	})
	return body
}

// handleAcqReq runs at the lock manager: grant immediately if free, else
// queue the acquirer.
func (p *Protocol) handleAcqReq(h proto.HandlerCtx, req acqReq) int64 {
	ls := p.lockState(req.lock)
	if ls.held {
		ls.queue = append(ls.queue, acqWaiter{proc: req.proc, vc: req.vc})
		return p.cfg.Costs.HandlerBase
	}
	ls.held = true
	ls.holder = req.proc
	n := p.sendGrant(h, req.proc, req.vc, ls.releaseVC)
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(n)
}

// handleRelease runs at the lock manager: record the release timestamp
// and pass the lock to the next waiter if any.
func (p *Protocol) handleRelease(h proto.HandlerCtx, rel relMsg) int64 {
	ls := p.lockState(rel.lock)
	if !ls.held || ls.holder != rel.proc {
		panic(fmt.Sprintf("hlrc: release of lock %d by non-holder %d", rel.lock, rel.proc))
	}
	copy(ls.releaseVC, rel.vc) // same length; reuse instead of reallocating
	if len(ls.queue) == 0 {
		ls.held = false
		return p.cfg.Costs.HandlerBase
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next.proc
	n := p.sendGrant(h, next.proc, next.vc, ls.releaseVC)
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(n)
}

// sendGrant ships a lock grant carrying unseen write notices; returns
// the notice count (for handler cost accounting).
func (p *Protocol) sendGrant(h proto.HandlerCtx, to int, acqVC, relVC []int32) int {
	notices := p.noticesSince(acqVC, relVC)
	g := &grantPayload{vc: cloneVC(relVC), notices: notices}
	toNS := p.nodes[to]
	h.Send(&comm.Message{
		Src: h.Node(), Dst: to, Size: grantSize(p.nprocs, notices),
		OnDeliver: func(now sim.Time) {
			toNS.grant = g
			p.env.WakeThread(to)
		},
	})
	return len(notices)
}

// handleBarArrive runs at the barrier manager: collect arrivals; when
// the last one lands, merge the clocks and release everyone with their
// missing notices.
func (p *Protocol) handleBarArrive(h proto.HandlerCtx, ba barArrive) int64 {
	bs := p.barriers[ba.bar]
	if bs == nil {
		bs = &barrierState{}
		p.barriers[ba.bar] = bs
	}
	bs.arrived++
	bs.procs = append(bs.procs, ba.proc)
	bs.vcs = append(bs.vcs, ba.vc)
	if bs.arrived < p.nprocs {
		return p.cfg.Costs.HandlerBase
	}
	// Last arrival: release all participants.  The merged clock lives in
	// the preallocated scratch; each grant clones what it retains.
	merged := p.vcScratch
	for i := range merged {
		merged[i] = 0
	}
	for _, vc := range bs.vcs {
		maxVC(merged, vc)
	}
	items := 0
	for i, proc := range bs.procs {
		notices := p.noticesSince(bs.vcs[i], merged)
		items += len(notices)
		g := &grantPayload{vc: cloneVC(merged), notices: notices}
		to := proc
		toNS := p.nodes[to]
		h.Send(&comm.Message{
			Src: h.Node(), Dst: to, Size: grantSize(p.nprocs, notices),
			OnDeliver: func(now sim.Time) {
				toNS.grant = g
				p.env.WakeThread(to)
			},
		})
	}
	bs.arrived = 0
	bs.procs = bs.procs[:0]
	bs.vcs = bs.vcs[:0]
	// Barrier release is the adaptation point: every node is quiescent
	// (intervals flushed, twins dropped, acks received), so home
	// migrations and grain demotions commit here without racing any
	// in-flight protocol traffic.
	var adapt int64
	if p.pstats != nil {
		adapt = p.adaptAtBarrier(h)
	}
	return p.cfg.Costs.HandlerBase + p.cfg.Costs.HandlerPerItem*int64(items) + adapt
}

func (p *Protocol) lockState(lock int) *lockState {
	ls := p.locks[lock]
	if ls == nil {
		ls = &lockState{releaseVC: make([]int32, p.nprocs)}
		p.locks[lock] = ls
	}
	return ls
}

// ReadCoherent reads the home copy (valid after Finalize on all nodes).
func (p *Protocol) ReadCoherent(addr int64) uint32 {
	return p.env.NodeMem(p.home(p.unitOf(addr))).ReadWord(addr)
}

// InitWrite initializes the home copy before the parallel phase.
func (p *Protocol) InitWrite(addr int64, v uint32) {
	p.env.NodeMem(p.home(p.unitOf(addr))).WriteWord(addr, v)
}

var _ proto.Protocol = (*Protocol)(nil)
