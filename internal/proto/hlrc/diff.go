package hlrc

import (
	"encoding/binary"

	"swsm/internal/mem"
)

// wordDiff is one modified word in a diff: the word index within the
// page and its new value.
type wordDiff struct {
	off uint16
	val uint32
}

// diffPage compares a coherence unit against its twin word by word and
// returns the modified words.
func diffPage(twin, cur []byte) []wordDiff {
	var out []wordDiff
	n := len(twin) / mem.WordSize
	for w := 0; w < n; w++ {
		o := w * mem.WordSize
		a := binary.LittleEndian.Uint32(twin[o : o+4])
		b := binary.LittleEndian.Uint32(cur[o : o+4])
		if a != b {
			out = append(out, wordDiff{off: uint16(w), val: b})
		}
	}
	return out
}

// applyDiff merges a diff into a coherence unit's bytes.
func applyDiff(unit []byte, words []wordDiff) {
	for _, wd := range words {
		o := int(wd.off) * mem.WordSize
		binary.LittleEndian.PutUint32(unit[o:o+4], wd.val)
	}
}

// Message payloads.

type pageReq struct {
	page      int64
	requester int
}

type diffMsg struct {
	page  int64
	from  int
	words []wordDiff
}

type acqReq struct {
	lock int
	proc int
	vc   []int32
}

type relMsg struct {
	lock int
	proc int
	vc   []int32
}

type barArrive struct {
	bar  int
	proc int
	vc   []int32
}

// grantPayload is delivered (as data) on lock grants and barrier
// releases: the grantor's vector clock plus the write notices the
// receiver has not yet seen.
type grantPayload struct {
	vc      []int32
	notices []interval
}

// grantSize computes the wire size of a grant message.
func grantSize(nprocs int, notices []interval) int64 {
	sz := int64(16 + 4*nprocs)
	for _, iv := range notices {
		sz += 12 + 4*int64(len(iv.pages))
	}
	return sz
}
