package hlrc

import (
	"swsm/internal/proto/wdiff"
)

// wordDiff is one modified word in a diff: the word index within the
// page and its new value (shared kernel in internal/proto/wdiff).
type wordDiff = wdiff.Word

// diffPage compares a coherence unit against its twin word by word and
// returns the modified words (allocating; the flush hot path uses
// diffPageInto with the protocol's scratch buffer instead).
func diffPage(twin, cur []byte) []wordDiff {
	return wdiff.Append(nil, twin, cur)
}

// diffPageInto appends the modified words to dst (pass scratch[:0] to
// reuse a buffer; the result aliases dst's array).
func diffPageInto(dst []wordDiff, twin, cur []byte) []wordDiff {
	return wdiff.Append(dst, twin, cur)
}

// applyDiff merges a diff into a coherence unit's bytes.
func applyDiff(unit []byte, words []wordDiff) {
	wdiff.Apply(unit, words)
}

// Message payloads.

type pageReq struct {
	page      int64
	requester int
}

type diffMsg struct {
	page  int64
	from  int
	words []wordDiff
}

type acqReq struct {
	lock int
	proc int
	vc   []int32
}

type relMsg struct {
	lock int
	proc int
	vc   []int32
}

type barArrive struct {
	bar  int
	proc int
	vc   []int32
}

// grantPayload is delivered (as data) on lock grants and barrier
// releases: the grantor's vector clock plus the write notices the
// receiver has not yet seen.
type grantPayload struct {
	vc      []int32
	notices []interval
}

// grantSize computes the wire size of a grant message.
func grantSize(nprocs int, notices []interval) int64 {
	sz := int64(16 + 4*nprocs)
	for _, iv := range notices {
		sz += 12 + 4*int64(len(iv.pages))
	}
	return sz
}
