package hlrc_test

import (
	"testing"

	"swsm/internal/comm"
	"swsm/internal/core"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/stats"
)

func machine(procs int) (*core.Machine, *hlrc.Protocol) {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 4 << 20
	p := hlrc.New(hlrc.Config{Costs: proto.OriginalCosts()})
	return core.NewMachine(cfg, p), p
}

func TestBarrierPropagatesWrites(t *testing.T) {
	m, _ := machine(4)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		if th.Proc() == 2 {
			th.Store32(a+40, 777)
		}
		th.Barrier(0)
		if got := th.Load32(a + 40); got != 777 {
			t.Errorf("proc %d read %d, want 777", th.Proc(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(a + 40); got != 777 {
		t.Fatalf("home copy = %d, want 777", got)
	}
}

func TestMultipleWritersSamePage(t *testing.T) {
	const procs = 8
	m, _ := machine(procs)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		// Each proc writes its own word of one falsely shared page.
		th.Store32(a+int64(4*th.Proc()), uint32(100+th.Proc()))
		th.Barrier(0)
		// Everyone must see everyone's word (diffs merged at home).
		for i := 0; i < procs; i++ {
			if got := th.Load32(a + int64(4*i)); got != uint32(100+i) {
				t.Errorf("proc %d: word %d = %d, want %d", th.Proc(), i, got, 100+i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.TotalCount(stats.DiffsCreated) == 0 {
		t.Fatal("expected diffs from non-home writers")
	}
	if m.Stats.TotalCount(stats.TwinsCreated) == 0 {
		t.Fatal("expected twins")
	}
}

func TestLockCarriesNotices(t *testing.T) {
	const procs = 8
	const iters = 5
	m, _ := machine(procs)
	ctr := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < iters; i++ {
			th.Acquire(1)
			v := th.Load32(ctr)
			th.Compute(20)
			th.Store32(ctr, v+1)
			th.Release(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(ctr); got != procs*iters {
		t.Fatalf("counter = %d, want %d (LRC invalidation broken)", got, procs*iters)
	}
	if m.Stats.TotalCount(stats.Invalidations) == 0 {
		t.Fatal("expected write-notice invalidations")
	}
}

func TestMigratoryData(t *testing.T) {
	// A token migrates around the ring under a lock; each holder
	// increments several words of the token page.
	const procs = 4
	m, _ := machine(procs)
	tok := m.AllocPage(mem.PageSize)
	turn := m.AllocPage(mem.PageSize)
	rounds := 3
	_, err := m.Run(func(th *core.Thread) {
		me := th.Proc()
		for r := 0; r < rounds*procs; r++ {
			th.Acquire(0)
			cur := int(th.Load32(turn))
			if cur%procs == me {
				for w := 0; w < 16; w++ {
					v := th.Load32(tok + int64(4*w))
					th.Store32(tok+int64(4*w), v+1)
				}
				th.Store32(turn, uint32(cur+1))
			}
			th.Release(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The token page words were incremented exactly `turn` times.
	turns := m.ReadResultWord(turn)
	if turns == 0 {
		t.Fatal("no turns taken")
	}
	for w := 0; w < 16; w++ {
		if got := m.ReadResultWord(tok + int64(4*w)); got != turns {
			t.Fatalf("token word %d = %d, want %d", w, got, turns)
		}
	}
}

func TestReadOnlySharingNoDiffs(t *testing.T) {
	m, _ := machine(4)
	a := m.AllocPage(mem.PageSize)
	m.InitWord(a, 5)
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < 10; i++ {
			if got := th.Load32(a); got != 5 {
				t.Errorf("read %d, want 5", got)
			}
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.TotalCount(stats.DiffsCreated) != 0 {
		t.Fatal("read-only sharing should create no diffs")
	}
	// Only the 3 non-home nodes fetch; each once.
	if got := m.Stats.TotalCount(stats.PageFetches); got != 3 {
		t.Fatalf("page fetches = %d, want 3", got)
	}
}

func TestRepeatedEpochsRefetch(t *testing.T) {
	// Producer writes a page each epoch; consumers must refetch each
	// epoch (write notices invalidate their copies).
	const procs = 4
	const epochs = 3
	m, _ := machine(procs)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		for e := 1; e <= epochs; e++ {
			if th.Proc() == 1 {
				th.Store32(a, uint32(e))
			}
			th.Barrier(0)
			if got := th.Load32(a); got != uint32(e) {
				t.Errorf("epoch %d: proc %d read %d", e, th.Proc(), got)
			}
			th.Barrier(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssignHome(t *testing.T) {
	m, p := machine(4)
	a := m.AllocPage(4 * mem.PageSize)
	p.AssignHome(a, 4*mem.PageSize, 3)
	m.InitWord(a, 42)
	// The value must live in node 3's memory.
	if got := m.NodeMem(3).ReadWord(a); got != 42 {
		t.Fatalf("home copy on node 3 = %d", got)
	}
	_, err := m.Run(func(th *core.Thread) {
		if th.Proc() == 3 {
			// Home reads need no fetch.
			if got := th.Load32(a); got != 42 {
				t.Errorf("home read %d", got)
			}
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Procs[3].Count[stats.PageFetches]; got != 0 {
		t.Fatalf("home node fetched its own page %d times", got)
	}
}

func TestConcurrentWriterInvalidationPreservesWrites(t *testing.T) {
	// Proc A writes word 0 under lock and proc B writes word 1 under the
	// same lock, back to back, while both also keep dirty state; the
	// flush-on-invalidate path must not lose writes.
	const procs = 2
	m, _ := machine(procs)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		me := th.Proc()
		// Both write their own word WITHOUT synchronization first
		// (disjoint words: race-free at word granularity).
		th.Store32(a+int64(4*me), uint32(me+1))
		// Then serialize through a lock, which delivers notices.
		th.Acquire(0)
		th.Store32(a+int64(4*(me+4)), uint32(me+10))
		th.Release(0)
		th.Barrier(0)
		for i := 0; i < procs; i++ {
			if got := th.Load32(a + int64(4*i)); got != uint32(i+1) {
				t.Errorf("proc %d: unsync word %d = %d, want %d", me, i, got, i+1)
			}
			if got := th.Load32(a + int64(4*(i+4))); got != uint32(i+10) {
				t.Errorf("proc %d: locked word %d = %d, want %d", me, i, got, i+10)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBestCommConfigStillCorrect(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.MemLimit = 4 << 20
	cfg.Comm = comm.BetterThanBest()
	cfg.Costs = proto.BestCosts()
	p := hlrc.New(hlrc.Config{Costs: proto.BestCosts()})
	m := core.NewMachine(cfg, p)
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		th.Acquire(0)
		v := th.Load32(a)
		th.Store32(a, v+1)
		th.Release(0)
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(a); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
}
