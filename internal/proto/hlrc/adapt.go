package hlrc

import (
	"sort"

	"swsm/internal/proto"
	"swsm/internal/stats"
)

// Adaptive placement: online statistics and the barrier-time commit
// step.  Everything here is driven only by protocol events, so the
// decisions are a pure function of the run's inputs — the property that
// keeps serial and parallel sweeps byte-identical.
//
// Statistics are kept per migratable page (the 4 KB page; identical to
// the table unit when adaptive grain is off).  They are maintained at
// each page's home from the traffic it already sees: remote fetches,
// incoming diffs, and the home's own write faults — the same signals
// the hot-page profiler reports offline, consumed online.  The policy
// predicates run inline when a page's counters change (a handful of
// ALU operations folded into handler work that already costs hundreds
// of cycles), queueing candidates; the barrier manager only re-checks
// and commits the queued few, keeping the scan off the barrier-release
// critical path.

// pageStat is one page's observed sharing profile since its last reset.
type pageStat struct {
	counts    []int64 // accesses per node (fetches, diffs, home writes)
	writers   uint64  // nodes that wrote (bit i%64)
	diffs     int64   // diffs applied at the home
	diffWords int64   // total words across those diffs
	coolUntil int64   // epoch before which the page may not migrate
	pending   bool    // already queued for the next barrier commit
}

// pstat returns (creating if needed) the stat record for migratable
// page pn.
func (p *Protocol) pstat(pn int64) *pageStat {
	ps := p.pstats[pn]
	if ps == nil {
		ps = &pageStat{counts: make([]int64, p.nprocs)}
		p.pstats[pn] = ps
	}
	return ps
}

func resetStat(ps *pageStat) {
	for i := range ps.counts {
		ps.counts[i] = 0
	}
	ps.writers = 0
	ps.diffs = 0
	ps.diffWords = 0
}

// maybeQueue runs the pure policy predicates against pn's fresh
// statistics and queues it for the next barrier commit when one fires.
func (p *Protocol) maybeQueue(pn int64, ps *pageStat) {
	if ps.pending {
		return
	}
	if p.adaptGrain && !p.fine[pn] && p.grains.Candidate(ps.writers, ps.diffs, ps.diffWords) {
		ps.pending = true
		p.pending = append(p.pending, pn)
		return
	}
	if p.adaptHomes && p.epoch >= ps.coolUntil {
		if p.rehomer.Candidate(p.home(pn<<p.pageSpanShift), ps.counts) >= 0 {
			ps.pending = true
			p.pending = append(p.pending, pn)
		}
	}
}

// noteFetch records a remote fetch of the unit starting at cs.
func (p *Protocol) noteFetch(cs int64, requester int) {
	pn := p.ppageOf(cs)
	ps := p.pstat(pn)
	ps.counts[requester]++
	p.maybeQueue(pn, ps)
}

// noteDiff records a diff applied at the home for the unit at cs.
func (p *Protocol) noteDiff(cs int64, from int, words int64) {
	pn := p.ppageOf(cs)
	ps := p.pstat(pn)
	ps.counts[from]++
	ps.writers |= 1 << (uint(from) % 64)
	ps.diffs++
	ps.diffWords += words
	p.maybeQueue(pn, ps)
}

// noteHomeWrite records a write fault by the home node itself.
func (p *Protocol) noteHomeWrite(cs int64, me int) {
	pn := p.ppageOf(cs)
	ps := p.pstat(pn)
	ps.counts[me]++
	ps.writers |= 1 << (uint(me) % 64)
	p.maybeQueue(pn, ps)
}

// adaptAtBarrier commits the queued placement decisions.  Called from
// the barrier manager's last-arrival handler, when all nodes are
// quiescent; returns the handler cycles the commits cost.  The policy
// state is protocol-global, so which node manages the barrier does not
// affect the decisions.
func (p *Protocol) adaptAtBarrier(h proto.HandlerCtx) int64 {
	p.epoch++
	if len(p.pending) == 0 {
		return 0
	}
	// Events queue in simulation order; commits must run in a canonical
	// page order.
	sort.Slice(p.pending, func(i, j int) bool { return p.pending[i] < p.pending[j] })
	mgr := h.Node()
	st := p.env.Metrics()
	var extra int64
	for _, pn := range p.pending {
		ps := p.pstats[pn]
		ps.pending = false
		extra += p.cfg.Costs.HandlerPerItem // re-check, per queued page
		if p.adaptGrain && !p.fine[pn] && p.grains.Demote(ps.writers, ps.diffs, ps.diffWords) {
			extra += p.demotePage(pn)
			st.Inc(mgr, stats.PagesDemoted, 1)
			resetStat(ps)
			continue
		}
		if p.adaptHomes && p.epoch >= ps.coolUntil {
			home := p.home(pn << p.pageSpanShift)
			if to := p.rehomer.Decide(home, ps.counts); to >= 0 {
				extra += p.migratePage(pn, home, to)
				st.Inc(mgr, stats.PagesRehomed, 1)
				resetStat(ps)
				ps.coolUntil = p.epoch + p.rehomer.CooldownEpochs
			}
		}
	}
	p.pending = p.pending[:0]
	return extra
}

// pageRange resolves migratable page pn to its table-unit range.
func (p *Protocol) pageRange(pn int64) (int64, int64) {
	cs := pn << p.pageSpanShift
	span := p.pageSpan
	if cs+span > p.npages {
		span = p.npages - cs
	}
	return cs, span
}

// demotePage switches page pn from one page-spanning coherence unit to
// per-table-unit (fine) coherence.  Non-home copies are forcibly
// invalidated first: write notices already issued for the page name its
// coarse start and would resolve to a single fine unit after the flip,
// under-invalidating any node that kept a coarse copy.  All nodes are
// quiescent at the barrier, so only clean read-only copies are dropped.
func (p *Protocol) demotePage(pn int64) int64 {
	cs, span := p.pageRange(pn)
	home := p.home(cs)
	p.fine[pn] = true
	st := p.env.Metrics()
	forced := 0
	for ni, ns := range p.nodes {
		if ni == home || ns.mode[cs] == modeInvalid {
			continue
		}
		setModes(ns.mode, cs, span, modeInvalid)
		p.dropTwin(ns, cs)
		p.env.CacheInvalidate(ni, p.unitBase(cs), int(span*p.unitBytes))
		st.Inc(ni, stats.Invalidations, 1)
		forced++
	}
	if forced == 0 {
		return 0
	}
	return p.cfg.Costs.MprotectCost(forced)
}

// migratePage moves page pn's home from node `from` to node `to`: the
// authoritative bytes are copied into the new home's frame (overwriting
// any stale copy there, which keeps the home==me fast path in
// applyNotices sound) and every table unit's home pointer is updated.
// The old home keeps its copy read-only; it is current at this instant
// and future write notices invalidate it like any other sharer's.
func (p *Protocol) migratePage(pn int64, from, to int) int64 {
	cs, span := p.pageRange(pn)
	bytes := span * p.unitBytes
	buf := p.unitScratch[:bytes]
	p.env.NodeMem(from).CopyOut(p.unitBase(cs), buf)
	p.env.NodeMem(to).CopyIn(p.unitBase(cs), buf)
	for u := cs; u < cs+span; u++ {
		p.homes[u] = int32(to)
	}
	setModes(p.nodes[to].mode, cs, span, modeReadOnly)
	// Two page-sized copies plus remapping at both ends.
	return 2*proto.WordCost(p.cfg.Costs.TwinQ4, span*p.unitWords) +
		p.cfg.Costs.MprotectCost(2)
}
