package hlrc_test

import (
	"testing"

	"swsm/internal/core"
	"swsm/internal/hetero"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/stats"
)

func adaptiveMachine(procs int, hs hetero.Spec) (*core.Machine, *hlrc.Protocol) {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 4 << 20
	p := hlrc.New(hlrc.Config{Costs: proto.OriginalCosts(), Hetero: hs})
	return core.NewMachine(cfg, p), p
}

// TestAdaptiveRehomesMigratoryPage drives a page that only proc 1 ever
// writes while its home is proc 0: the dominance policy must migrate the
// home to the writer at a barrier, after which the writer's stores are
// home-local (no twin, no diff).
func TestAdaptiveRehomesMigratoryPage(t *testing.T) {
	const procs, epochs = 4, 12
	m, _ := adaptiveMachine(procs, hetero.Spec{Placement: hetero.PlaceAdaptive})
	// procs consecutive pages: homes are round-robin, so wherever the
	// arena starts, exactly procs-1 of them are remote to the writer.
	a := m.AllocPage(int64(procs) * mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		for e := 0; e < epochs; e++ {
			if th.Proc() == 1 {
				for pg := 0; pg < procs; pg++ {
					for w := 0; w < 8; w++ {
						th.Store32(a+int64(pg)*mem.PageSize+int64(4*w), uint32(100*e+w))
					}
				}
			}
			th.Barrier(0)
		}
		// The final read-back (after the last epoch's barrier) must see
		// the writer's values wherever the homes ended up.
		if got := th.Load32(a); got != uint32(100*(epochs-1)) {
			t.Errorf("proc %d read %d, want %d", th.Proc(), got, 100*(epochs-1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every remote page of the writer's working set must follow it home.
	if got := m.Stats.TotalCount(stats.PagesRehomed); got != procs-1 {
		t.Fatalf("rehomed %d pages, want %d", got, procs-1)
	}
	for pg := 0; pg < procs; pg++ {
		for w := 0; w < 8; w++ {
			if got := m.ReadResultWord(a + int64(pg)*mem.PageSize + int64(4*w)); got != uint32(100*(epochs-1)+w) {
				t.Fatalf("page %d word %d = %d after migration, want %d", pg, w, got, 100*(epochs-1)+w)
			}
		}
	}
}

// TestAdaptiveGrainDemotesFalseSharing drives the classic false-sharing
// shape — every proc repeatedly writes its own word of one page — and
// requires the grain policy to demote the page to fine units while every
// write survives.
func TestAdaptiveGrainDemotesFalseSharing(t *testing.T) {
	const procs, epochs = 8, 8
	m, _ := adaptiveMachine(procs, hetero.Spec{
		Placement: hetero.PlaceAdaptive,
		Grain:     hetero.GrainAdaptive,
	})
	a := m.AllocPage(mem.PageSize)
	_, err := m.Run(func(th *core.Thread) {
		for e := 0; e < epochs; e++ {
			th.Store32(a+int64(4*th.Proc()), uint32(1000*e+th.Proc()))
			th.Barrier(0)
			// Everyone must observe every writer's latest word, across the
			// demotion epoch included.
			for i := 0; i < procs; i++ {
				if got := th.Load32(a + int64(4*i)); got != uint32(1000*e+i) {
					t.Errorf("epoch %d proc %d: word %d = %d, want %d", e, th.Proc(), i, got, 1000*e+i)
				}
			}
			th.Barrier(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.TotalCount(stats.PagesDemoted); got == 0 {
		t.Fatal("falsely shared page never demoted to fine units")
	}
	for i := 0; i < procs; i++ {
		if got := m.ReadResultWord(a + int64(4*i)); got != uint32(1000*(epochs-1)+i) {
			t.Fatalf("word %d = %d, want %d", i, got, 1000*(epochs-1)+i)
		}
	}
}

// TestAdaptiveQuietIsFreeOfCharge pins the cost model: with thresholds
// no workload reaches, adaptive home placement is cycle-identical to the
// static protocol — the statistics ride existing handler costs and a
// barrier with nothing queued charges nothing.
func TestAdaptiveQuietIsFreeOfCharge(t *testing.T) {
	workload := func(m *core.Machine) int64 {
		a := m.AllocPage(mem.PageSize)
		cycles, err := m.Run(func(th *core.Thread) {
			for e := 0; e < 4; e++ {
				if th.Proc() == 0 {
					th.Store32(a+int64(8*e), uint32(e))
				}
				th.Barrier(0)
				_ = th.Load32(a)
				th.Barrier(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	mStatic, _ := machine(4)
	static := workload(mStatic)
	// RehomeMin higher than the total traffic: no page ever queues.
	mAdaptive, _ := adaptiveMachine(4, hetero.Spec{
		Placement: hetero.PlaceAdaptive,
		RehomeMin: 1 << 30,
	})
	adaptive := workload(mAdaptive)
	if static != adaptive {
		t.Fatalf("quiet adaptive run cost %d cycles, static %d — profiling is not free", adaptive, static)
	}
	if got := mAdaptive.Stats.TotalCount(stats.PagesRehomed); got != 0 {
		t.Fatalf("rehomed %d pages below the threshold", got)
	}
}
