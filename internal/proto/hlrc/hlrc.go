// Package hlrc implements Home-based Lazy Release Consistency, the
// page-grained shared virtual memory protocol the paper studies (Zhou,
// Iftode & Li's HLRC, built on Keleher's LRC model).
//
// Protocol structure, as in the paper:
//
//   - Virtual-memory page granularity (4 KB) with mprotect-style access
//     control, whose cost is a Table-3 parameter.
//   - Multiple-writer support through twinning and word-grain diffing.
//   - Eager diff propagation: at every release point a writer closes its
//     interval, diffs its dirty pages against their twins, and sends the
//     diffs to each page's designated home, which applies them so the
//     home copy is always up to date according to the consistency model.
//   - On a page fault the whole page is fetched from the home (no diff
//     collection from previous writers, unlike classic LRC).
//   - Lazy invalidation through write notices carried by vector-clock
//     timestamps on lock grants and barrier releases.
//
// A releaser waits for its diffs to be acknowledged by the homes before
// the release becomes visible, which orders diff application before any
// causally later page fetch — the property that makes application
// results correct.
package hlrc

import (
	"fmt"
	"sort"

	"swsm/internal/comm"
	"swsm/internal/hetero"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// Page access modes.
// pageMode is a plain uint8 (alias) so the per-node mode array can be
// handed to the thread fast path as the proto.TableProtocol table.
type pageMode = uint8

const (
	modeInvalid pageMode = iota
	modeReadOnly
	modeReadWrite
)

// Message kinds.
const (
	msgPageReq = iota + 1
	msgDiff
	msgAcqReq
	msgRelease
	msgBarArrive
)

// DefaultUnitShift is the classic SVM coherence unit: the 4 KB page.
const DefaultUnitShift = mem.PageShift

// Config holds HLRC-specific options.
type Config struct {
	Costs proto.Costs
	// UnitShift sets the coherence unit to 2^UnitShift bytes (default:
	// the 4 KB page).  Sub-page units turn HLRC into the fine-grained
	// delayed-consistency multiple-writer protocol the paper mentions as
	// "a little better than SC for most granularities smaller than a
	// page" — access control is then assumed to be hardware (free), as
	// for SC.
	UnitShift uint
	// DropNthInvalidation, when n > 0, deliberately skips the n-th page
	// invalidation a grant would perform while still merging the grant's
	// vector clock — silent staleness that end-to-end verification can
	// miss but the consistency checker must catch.  A known-bad shim for
	// the checker's oracle tests; never set it outside tests.
	DropNthInvalidation int
	// Hetero carries the heterogeneity plane's adaptive-placement policy
	// knobs (Placement and Grain; the machine-model fields are consumed
	// by core/comm).  The zero value keeps the classic static protocol.
	Hetero hetero.Spec
}

// nodeState is one node's view of the shared address space.
type nodeState struct {
	mode  []pageMode
	twin  map[int64][]byte
	dirty []int64 // pages written in the open interval, in fault order
	vc    []int32 // highest interval seen, per owner

	pendingAcks int
	waitingAcks bool

	// grant is the mailbox for lock grants and barrier releases.
	grant *grantPayload
}

// interval records one closed writer interval for write-notice delivery.
type interval struct {
	owner int
	seq   int32
	pages []int64
}

// lockState lives at the lock's manager node.
type lockState struct {
	held      bool
	holder    int
	releaseVC []int32 // vector clock of the last release
	queue     []acqWaiter
}

type acqWaiter struct {
	proc int
	vc   []int32
}

// barrierState lives at the barrier's manager node.
type barrierState struct {
	arrived int
	vcs     [][]int32
	procs   []int
}

// Protocol is the HLRC protocol instance for one machine.
type Protocol struct {
	cfg Config
	env proto.Env
	// tr caches env.Tracer() at Attach; nil (tracing off) makes every
	// hook call a no-op.
	tr        *trace.Tracer
	nprocs    int
	npages    int64
	unitShift uint
	unitBytes int64
	unitWords int64

	homes     []int32
	nodes     []*nodeState
	intervals [][]interval // indexed by owner, then seq-1
	locks     map[int]*lockState
	barriers  map[int]*barrierState

	// Hot-path scratch.  The simulation engine is single-threaded, and
	// none of these survive across a coroutine yield point, so one set
	// per protocol instance is safe.
	//
	// unitScratch holds the current copy of a unit while it is diffed or
	// patched; diffScratch collects modified words before they are copied
	// (right-sized) into the outgoing message; vcScratch holds the merged
	// barrier clock; unitFree recycles twin/page buffers whose lifetime
	// ends at a flush, invalidation or page-fetch delivery; diffFree
	// recycles diff-message word slices after the home applies them.
	unitScratch []byte
	diffScratch []wordDiff
	vcScratch   []int32
	unitFree    [][]byte
	diffFree    [][]wordDiff

	// invSeen counts invalidations considered by applyNotices, driving
	// the Config.DropNthInvalidation oracle hook.
	invSeen int

	// Adaptive-placement state (heterogeneity plane).  With both policies
	// off, pageSpan is 1 and everything below is nil, collapsing cu() and
	// the policy hooks to the classic static protocol.
	adaptHomes    bool // migrate page homes toward dominant sharers
	adaptGrain    bool // demote falsely-shared pages to fine-grain units
	pageSpanShift uint // log2 table units per migratable page
	pageSpan      int64
	fine          []bool   // per migratable page: demoted to fine units
	pageFree      [][]byte // recycled page-sized (pageSpan-unit) buffers

	pstats  map[int64]*pageStat
	pending []int64 // candidate pages queued for the next barrier commit
	rehomer *hetero.Rehomer
	grains  *hetero.GrainSelector
	epoch   int64 // barrier-release count, the adaptation clock
}

// New creates an HLRC protocol with the given cost set and defaults.
func New(cfg Config) *Protocol {
	if cfg.Hetero.Grain == hetero.GrainAdaptive {
		if cfg.UnitShift != 0 && cfg.UnitShift != cfg.Hetero.FineShiftOrDefault() {
			panic("hlrc: explicit UnitShift conflicts with adaptive grain")
		}
		// The table runs at the fine unit; coarse pages span several
		// table units (see cu).
		cfg.UnitShift = cfg.Hetero.FineShiftOrDefault()
	}
	if cfg.UnitShift == 0 {
		cfg.UnitShift = DefaultUnitShift
	}
	if cfg.UnitShift > mem.PageShift+4 {
		panic("hlrc: coherence unit too large")
	}
	p := &Protocol{cfg: cfg,
		unitShift: cfg.UnitShift, unitBytes: 1 << cfg.UnitShift,
		unitWords: (1 << cfg.UnitShift) / mem.WordSize,
		locks:     make(map[int]*lockState), barriers: make(map[int]*barrierState)}
	p.pageSpan = 1
	if cfg.Hetero.Grain == hetero.GrainAdaptive {
		p.adaptGrain = true
		p.pageSpanShift = mem.PageShift - p.unitShift
		p.pageSpan = 1 << p.pageSpanShift
		p.grains = hetero.NewGrainSelector(cfg.Hetero)
	}
	if cfg.Hetero.Placement == hetero.PlaceAdaptive {
		p.adaptHomes = true
	}
	return p
}

// Name identifies the protocol.
func (p *Protocol) Name() string {
	if p.adaptGrain {
		return fmt.Sprintf("hlrc-a%d", p.unitBytes)
	}
	if p.unitShift != DefaultUnitShift {
		return fmt.Sprintf("hlrc-%d", p.unitBytes)
	}
	return "hlrc"
}

// ConsistencyModel declares the contract the checker verifies: HLRC
// provides (home-based lazy) release consistency.
func (p *Protocol) ConsistencyModel() proto.Model { return proto.ModelRC }

// unitOf maps an address to its coherence-unit number.
func (p *Protocol) unitOf(a int64) int64 { return a >> p.unitShift }

// unitBase is the first address of unit u.
func (p *Protocol) unitBase(u int64) int64 { return u << p.unitShift }

// cu resolves the coherence unit containing table unit u: its first
// unit and its span in table units.  Without adaptive grain the span is
// always 1 and the coherence unit is the table unit — exactly the
// static protocol.  With adaptive grain a page still at coarse grain is
// one coherence unit spanning the whole page; a demoted page's units
// stand alone.
func (p *Protocol) cu(u int64) (int64, int64) {
	if p.pageSpan == 1 || p.fine[u>>p.pageSpanShift] {
		return u, 1
	}
	cs := u &^ (p.pageSpan - 1)
	span := p.pageSpan
	if cs+span > p.npages {
		span = p.npages - cs
	}
	return cs, span
}

// ppageOf maps a table unit to its migratable page (the granularity of
// home migration and grain demotion).
func (p *Protocol) ppageOf(u int64) int64 { return u >> p.pageSpanShift }

// setModes sets the access mode of a whole coherence unit.  All mode
// transitions are unit-wide, so a coarse page's table units always
// agree — the invariant that lets cu() treat mode[cs] as authoritative.
func setModes(mode []pageMode, cs, span int64, m pageMode) {
	for u := cs; u < cs+span; u++ {
		mode[u] = m
	}
}

// copyRange extracts the coherence unit [cs, cs+span) from a node's
// memory into a recycled buffer (return it with freeBuf when its
// lifetime ends).
func (p *Protocol) copyRange(node int, cs, span int64) []byte {
	buf := p.newBuf(span)
	p.env.NodeMem(node).CopyOut(p.unitBase(cs), buf)
	return buf
}

// newBuf returns a span-sized buffer from the matching free list (or a
// fresh one).  Contents are undefined; every user overwrites the whole
// range.  Odd spans (a coarse page clamped at the end of memory) are
// allocated fresh and not recycled.
func (p *Protocol) newBuf(span int64) []byte {
	var free *[][]byte
	switch span {
	case 1:
		free = &p.unitFree
	case p.pageSpan:
		free = &p.pageFree
	default:
		return make([]byte, span*p.unitBytes)
	}
	if n := len(*free); n > 0 {
		buf := (*free)[n-1]
		*free = (*free)[:n-1]
		return buf
	}
	return make([]byte, span*p.unitBytes)
}

// freeBuf recycles a twin or page buffer onto the free list matching
// its size.
func (p *Protocol) freeBuf(buf []byte) {
	switch int64(len(buf)) {
	case p.unitBytes:
		p.unitFree = append(p.unitFree, buf)
	case p.pageSpan * p.unitBytes:
		if p.pageSpan > 1 {
			p.pageFree = append(p.pageFree, buf)
		} else {
			p.unitFree = append(p.unitFree, buf)
		}
	}
}

// dropTwin removes pg's twin (if any) and recycles its buffer.
func (p *Protocol) dropTwin(ns *nodeState, pg int64) {
	if twin, ok := ns.twin[pg]; ok {
		delete(ns.twin, pg)
		p.freeBuf(twin)
	}
}

// newDiffBuf returns a word-diff slice (len 0) from the free list.
func (p *Protocol) newDiffBuf() []wordDiff {
	if n := len(p.diffFree); n > 0 {
		d := p.diffFree[n-1]
		p.diffFree = p.diffFree[:n-1]
		return d[:0]
	}
	return nil
}

// freeDiffBuf recycles a diff-message slice after the home applied it.
func (p *Protocol) freeDiffBuf(d []wordDiff) {
	if cap(d) > 0 {
		p.diffFree = append(p.diffFree, d)
	}
}

// Attach wires the environment and sizes the per-node state.
func (p *Protocol) Attach(env proto.Env) {
	p.env = env
	p.tr = env.Tracer()
	p.nprocs = env.NumProcs()
	p.npages = (env.NodeMem(0).Limit() + p.unitBytes - 1) >> p.unitShift
	p.homes = make([]int32, p.npages)
	for i := int64(0); i < p.npages; i++ {
		// Homes are assigned per migratable page (pageSpanShift is 0
		// without adaptive grain), so coarse pages match page-HLRC's
		// round-robin distribution and stay uniform across their units.
		p.homes[i] = int32((i >> p.pageSpanShift) % int64(p.nprocs))
	}
	if p.adaptGrain {
		p.fine = make([]bool, (p.npages+p.pageSpan-1)>>p.pageSpanShift)
	}
	if p.adaptHomes {
		p.rehomer = hetero.NewRehomer(p.cfg.Hetero, p.nprocs)
	}
	if p.adaptHomes || p.adaptGrain {
		p.pstats = make(map[int64]*pageStat)
	}
	p.unitScratch = make([]byte, p.pageSpan*p.unitBytes)
	p.vcScratch = make([]int32, p.nprocs)
	p.nodes = make([]*nodeState, p.nprocs)
	p.intervals = make([][]interval, p.nprocs)
	for i := range p.nodes {
		ns := &nodeState{
			mode: make([]pageMode, p.npages),
			twin: make(map[int64][]byte),
			vc:   make([]int32, p.nprocs),
		}
		p.nodes[i] = ns
	}
	// Home nodes start with their pages mapped read-only (current copy).
	for pg := int64(0); pg < p.npages; pg++ {
		p.nodes[p.homes[pg]].mode[pg] = modeReadOnly
	}
}

// AssignHome overrides the home of every page overlapping [addr,
// addr+size) — the way applications model first-touch/decomposed
// placement.  Must be called before the parallel phase.
func (p *Protocol) AssignHome(addr, size int64, node int) {
	if p.env == nil {
		panic("hlrc: AssignHome before Attach")
	}
	first, last := p.unitOf(addr), p.unitOf(addr+size-1)
	if p.pageSpan > 1 {
		// Keep homes uniform across each migratable page by rounding the
		// range out to page boundaries.
		first &^= p.pageSpan - 1
		last |= p.pageSpan - 1
		if last >= p.npages {
			last = p.npages - 1
		}
	}
	buf := make([]byte, p.unitBytes)
	for pg := first; pg <= last; pg++ {
		old := int(p.homes[pg])
		if old == node {
			continue
		}
		// Migrate already-initialized contents to the new home.
		p.env.NodeMem(old).CopyOut(p.unitBase(pg), buf)
		p.env.NodeMem(node).CopyIn(p.unitBase(pg), buf)
		p.nodes[old].mode[pg] = modeInvalid
		p.homes[pg] = int32(node)
		p.nodes[node].mode[pg] = modeReadOnly
	}
}

// home reports the home node of page pg.
func (p *Protocol) home(pg int64) int { return int(p.homes[pg]) }

// --- access-fault side (thread context) ---

// Access implements the page access check and fault path.  The mode
// check is open-coded here so the granted-access common case never
// leaves this frame; ensure re-checks under its own fault handling.
// AccessTable exposes the per-proc page-mode array for the thread fast
// path (proto.TableProtocol): the mode encoding already matches the
// uniform 0/1/2 convention.
func (p *Protocol) AccessTable(proc int) ([]uint8, uint) {
	return p.nodes[proc].mode, p.unitShift
}

func (p *Protocol) Access(th proto.Thread, addr int64, size int, write bool) {
	first := p.unitOf(addr)
	last := p.unitOf(addr + int64(size) - 1)
	mode := p.nodes[th.Proc()].mode
	for pg := first; pg <= last; pg++ {
		m := mode[pg]
		if write {
			if m == modeReadWrite {
				continue
			}
		} else if m != modeInvalid {
			continue
		}
		p.ensure(th, pg, write)
	}
}

func (p *Protocol) ensure(th proto.Thread, pg int64, write bool) {
	cs, span := p.cu(pg)
	ns := p.nodes[th.Proc()]
	m := ns.mode[cs]
	if write {
		if m == modeReadWrite {
			return
		}
	} else if m != modeInvalid {
		return
	}
	st := p.env.Metrics()
	me := th.Proc()
	p.tr.PageFault(p.env.Now(), int32(me), cs, write)

	if m == modeInvalid {
		// Read or write fault on an invalid unit: fetch from home.
		th.Charge(stats.Protocol, p.cfg.Costs.FaultBase)
		st.Inc(me, stats.PageFetches, 1)
		req := &comm.Message{
			Src: me, Dst: p.home(cs), Kind: msgPageReq, Size: 16,
			Payload: pageReq{page: cs, requester: me}, NeedsHandler: true,
		}
		fetchStart := p.env.Now()
		th.Send(stats.DataWait, req)
		th.BlockFor(stats.DataWait)
		p.tr.PageFetch(fetchStart, p.env.Now(), int32(me), cs)
		// The reply's OnDeliver copied the unit into our frame and woke us.
		setModes(ns.mode, cs, span, modeReadOnly)
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(1))
		st.Inc(me, stats.PageProtects, 1)
	}

	if write {
		// Write fault on a read-only unit: twin (unless we are home) and
		// upgrade protection.
		if p.home(cs) != me {
			p.makeTwin(th, cs, span)
		} else if p.pstats != nil {
			p.noteHomeWrite(cs, me)
		}
		ns.dirty = append(ns.dirty, cs)
		setModes(ns.mode, cs, span, modeReadWrite)
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(1))
		st.Inc(me, stats.PageProtects, 1)
	}
}

// makeTwin snapshots the coherence unit before the first write of an
// interval.
func (p *Protocol) makeTwin(th proto.Thread, cs, span int64) {
	me := th.Proc()
	ns := p.nodes[me]
	if _, ok := ns.twin[cs]; ok {
		return
	}
	ns.twin[cs] = p.copyRange(me, cs, span)
	cost := proto.WordCost(p.cfg.Costs.TwinQ4, span*p.unitWords)
	cost += p.env.CacheTouch(me, p.unitBase(cs), int(span*p.unitBytes), false)
	th.Charge(stats.Protocol, cost)
	st := p.env.Metrics()
	st.Inc(me, stats.TwinsCreated, 1)
	st.AddDiff(me, cost)
	p.tr.Twin(p.env.Now(), int32(me), cs)
}

// --- flush (interval close) ---

// flush closes the current interval: creates and sends diffs for all
// dirty pages, downgrades them to read-only, and waits for home acks.
// waitCat attributes the ack wait (LockWait at releases, BarrierWait at
// barriers).
func (p *Protocol) flush(th proto.Thread, waitCat stats.Category) {
	me := th.Proc()
	ns := p.nodes[me]
	if len(ns.dirty) > 0 {
		// Deterministic page order.
		pages := append([]int64(nil), ns.dirty...)
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		// Dedup (a page can fault read-only->write twice across nested
		// invalidation flushes).
		uniq := pages[:0]
		for i, pg := range pages {
			if i == 0 || pg != pages[i-1] {
				uniq = append(uniq, pg)
			}
		}
		pages = uniq

		for _, pg := range pages {
			p.flushPage(th, pg, stats.Protocol)
		}
		// Close the interval and record the write notices.
		seq := ns.vc[me] + 1
		ns.vc[me] = seq
		p.intervals[me] = append(p.intervals[me], interval{owner: me, seq: seq, pages: pages})
		p.env.Metrics().Inc(me, stats.WriteNotices, int64(len(pages)))
		// One mprotect call downgrades the written pages.
		th.Charge(stats.Protocol, p.cfg.Costs.MprotectCost(len(pages)))
		p.env.Metrics().Inc(me, stats.PageProtects, int64(len(pages)))
		ns.dirty = ns.dirty[:0]
	}
	// Wait for all outstanding diff acks before the release is visible.
	ns.waitingAcks = true
	for ns.pendingAcks > 0 {
		th.BlockFor(waitCat)
	}
	ns.waitingAcks = false
}

// flushPage diffs one dirty coherence unit against its twin and sends
// the diff to the home (or just downgrades, if this node is the home).
func (p *Protocol) flushPage(th proto.Thread, pg int64, cat stats.Category) {
	me := th.Proc()
	ns := p.nodes[me]
	cs, span := p.cu(pg)
	if ns.mode[cs] == modeReadWrite {
		setModes(ns.mode, cs, span, modeReadOnly)
	}
	if p.home(cs) == me {
		// Home writes update the home copy in place; no diff needed.
		return
	}
	twin, ok := ns.twin[cs]
	if !ok {
		panic(fmt.Sprintf("hlrc: dirty unit %d has no twin on node %d", cs, me))
	}
	// Diff into the protocol scratch, then right-size into a recycled
	// message buffer (the message retains it until the home applies it
	// and hands it back via freeDiffBuf).
	cur := p.unitScratch[:span*p.unitBytes]
	p.env.NodeMem(me).CopyOut(p.unitBase(cs), cur)
	p.diffScratch = diffPageInto(p.diffScratch[:0], twin, cur)
	d := append(p.newDiffBuf(), p.diffScratch...)
	p.dropTwin(ns, cs)

	st := p.env.Metrics()
	cost := proto.WordCost(p.cfg.Costs.DiffCompareQ4, span*p.unitWords) +
		proto.WordCost(p.cfg.Costs.DiffWriteQ4, int64(len(d)))
	cost += p.env.CacheTouch(me, p.unitBase(cs), int(span*p.unitBytes), false)
	st.AddDiff(me, cost)
	th.Charge(cat, cost)
	st.Inc(me, stats.DiffsCreated, 1)
	st.Inc(me, stats.DiffWordsCompared, span*p.unitWords)
	st.Inc(me, stats.DiffWordsWritten, int64(len(d)))
	p.tr.DiffCreate(p.env.Now(), int32(me), cs, int64(len(d)))

	ns.pendingAcks++
	msg := &comm.Message{
		Src: me, Dst: p.home(cs), Kind: msgDiff,
		Size:    16 + int64(len(d))*8,
		Payload: diffMsg{page: cs, from: me, words: d}, NeedsHandler: true,
	}
	th.Send(cat, msg)
}

// flushPageFromInvalidation flushes a dirty page that is being
// invalidated by an incoming write notice (concurrent writers).  Runs in
// thread context during notice application.
func (p *Protocol) flushPageFromInvalidation(th proto.Thread, pg int64) {
	me := th.Proc()
	ns := p.nodes[me]
	// Remove from the dirty list; its notice joins the next interval —
	// conservatively we issue it as a singleton interval now so other
	// nodes learn of the write.
	kept := ns.dirty[:0]
	for _, d := range ns.dirty {
		if d != pg {
			kept = append(kept, d)
		}
	}
	ns.dirty = kept
	p.flushPage(th, pg, stats.Protocol)
	seq := ns.vc[me] + 1
	ns.vc[me] = seq
	p.intervals[me] = append(p.intervals[me], interval{owner: me, seq: seq, pages: []int64{pg}})
}
