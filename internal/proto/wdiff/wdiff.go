// Package wdiff implements word-grain page diffing, the hot kernel both
// lazy-release-consistency protocols (HLRC's home-based eager diffs and
// classic LRC's distributed retained diffs) run at every interval close.
//
// The comparison walks the twin and the current copy eight bytes at a
// time: for the common all-clean stretches of a page one 64-bit compare
// replaces two 32-bit word compares, and only a mismatching pair is
// re-examined at word grain.  Append writes into a caller-provided
// buffer so steady-state diff creation allocates nothing.
package wdiff

import "encoding/binary"

// WordSize is the diff granularity in bytes (32-bit words, matching the
// paper's cycles-per-word protocol cost parameters).
const WordSize = 4

// Word is one modified word in a diff: the word index within the
// coherence unit and its new value.
type Word struct {
	Off uint16
	Val uint32
}

// Append compares cur against twin word by word and appends the
// modified words to dst, returning the extended slice.  Pass dst[:0] to
// reuse a scratch buffer across calls; the result aliases dst's array
// (copy it out if it must outlive the next reuse).  len(twin) and
// len(cur) must be equal; coherence units are power-of-two sized, so
// the bulk of the scan runs on 8-byte chunks with a word-grain tail.
func Append(dst []Word, twin, cur []byte) []Word {
	n := len(twin)
	o := 0
	for {
		// The skip scan is a separate tight loop: keeping the append
		// machinery out of its body is worth ~4x on clean stretches.
		for o+8 <= n && binary.LittleEndian.Uint64(twin[o:]) == binary.LittleEndian.Uint64(cur[o:]) {
			o += 8
		}
		if o+8 > n {
			break
		}
		if a, b := binary.LittleEndian.Uint32(twin[o:]), binary.LittleEndian.Uint32(cur[o:]); a != b {
			dst = append(dst, Word{Off: uint16(o / WordSize), Val: b})
		}
		if a, b := binary.LittleEndian.Uint32(twin[o+4:]), binary.LittleEndian.Uint32(cur[o+4:]); a != b {
			dst = append(dst, Word{Off: uint16(o/WordSize + 1), Val: b})
		}
		o += 8
	}
	for ; o+WordSize <= n; o += WordSize {
		if a, b := binary.LittleEndian.Uint32(twin[o:]), binary.LittleEndian.Uint32(cur[o:]); a != b {
			dst = append(dst, Word{Off: uint16(o / WordSize), Val: b})
		}
	}
	return dst
}

// Apply merges a diff into a coherence unit's bytes.
func Apply(unit []byte, words []Word) {
	for _, wd := range words {
		o := int(wd.Off) * WordSize
		binary.LittleEndian.PutUint32(unit[o:o+4], wd.Val)
	}
}
