package wdiff

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
)

// naive is the reference word-by-word implementation.
func naive(twin, cur []byte) []Word {
	var out []Word
	for w := 0; w < len(twin)/WordSize; w++ {
		o := w * WordSize
		a := binary.LittleEndian.Uint32(twin[o:])
		b := binary.LittleEndian.Uint32(cur[o:])
		if a != b {
			out = append(out, Word{Off: uint16(w), Val: b})
		}
	}
	return out
}

// TestAppendMatchesNaive checks the 8-byte-wide scan against the word
// loop across unit sizes, including the word-grain tail (non-multiple
// of 8) and dense/sparse modification patterns.
func TestAppendMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, size := range []int{4, 8, 12, 64, 128, 4096} {
		for trial := 0; trial < 20; trial++ {
			twin := make([]byte, size)
			r.Read(twin)
			cur := make([]byte, size)
			copy(cur, twin)
			nw := r.Intn(size/WordSize + 1)
			for i := 0; i < nw; i++ {
				w := r.Intn(size / WordSize)
				binary.LittleEndian.PutUint32(cur[w*WordSize:], r.Uint32())
			}
			want := naive(twin, cur)
			got := Append(nil, twin, cur)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("size=%d trial=%d: got %v, want %v", size, trial, got, want)
			}
		}
	}
}

// TestAppendReusesScratch checks that reusing a scratch buffer produces
// correct results without growing allocations once warm.
func TestAppendReusesScratch(t *testing.T) {
	twin := make([]byte, 4096)
	cur := make([]byte, 4096)
	for w := 0; w < 1024; w += 3 {
		binary.LittleEndian.PutUint32(cur[w*WordSize:], uint32(w+1))
	}
	scratch := Append(nil, twin, cur)
	first := append([]Word(nil), scratch...)
	scratch = Append(scratch[:0], twin, cur)
	if !reflect.DeepEqual(scratch, first) {
		t.Fatal("scratch reuse changed the diff")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = Append(scratch[:0], twin, cur)
	})
	if allocs != 0 {
		t.Fatalf("warm Append allocates %v times per run", allocs)
	}
}

// TestApplyReconstructs checks Apply(twin, Append(twin, cur)) == cur.
func TestApplyReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	twin := make([]byte, 4096)
	r.Read(twin)
	cur := make([]byte, 4096)
	r.Read(cur)
	d := Append(nil, twin, cur)
	frame := make([]byte, 4096)
	copy(frame, twin)
	Apply(frame, d)
	for i := range cur {
		if frame[i] != cur[i] {
			t.Fatalf("byte %d: got %d, want %d", i, frame[i], cur[i])
		}
	}
}
