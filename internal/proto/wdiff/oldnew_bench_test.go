package wdiff

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// naiveAppend is the pre-optimization diff kernel: 4-byte word compare,
// allocating append (kept here as the benchmark baseline).
func naiveAppend(twin, cur []byte) []Word {
	var out []Word
	for off := 0; off+WordSize <= len(cur); off += WordSize {
		a := binary.LittleEndian.Uint32(twin[off:])
		b := binary.LittleEndian.Uint32(cur[off:])
		if a != b {
			out = append(out, Word{Off: uint16(off / WordSize), Val: b})
		}
	}
	return out
}

func benchInput(nth int) (twin, cur []byte) {
	twin = make([]byte, 4096)
	cur = make([]byte, 4096)
	for i := range twin {
		twin[i] = byte(i * 7)
	}
	copy(cur, twin)
	for w := 0; w < 1024; w += nth {
		cur[w*4] ^= 0xff
	}
	return
}

func BenchmarkAppendNaive(b *testing.B) {
	for _, nth := range []int{1024, 64, 8, 1} {
		b.Run(fmt.Sprint(nth), func(b *testing.B) {
			twin, cur := benchInput(nth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = naiveAppend(twin, cur)
			}
		})
	}
}

func BenchmarkAppendWide(b *testing.B) {
	for _, nth := range []int{1024, 64, 8, 1} {
		b.Run(fmt.Sprint(nth), func(b *testing.B) {
			twin, cur := benchInput(nth)
			var scratch []Word
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = Append(scratch[:0], twin, cur)
			}
		})
	}
}
