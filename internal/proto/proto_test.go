package proto

import (
	"testing"
	"testing/quick"
)

func TestCostSets(t *testing.T) {
	o, h, b := OriginalCosts(), HalfwayCosts(), BestCosts()
	if b != (Costs{}) {
		t.Fatal("best costs must be all zero")
	}
	if h.PageProtect*2 != o.PageProtect || h.HandlerBase*2 != o.HandlerBase {
		t.Fatalf("halfway not half: %+v", h)
	}
	if h.DiffCompareQ4*2 != o.DiffCompareQ4 {
		t.Fatal("Q4 fixed point must halve exactly")
	}
	for _, name := range []string{"O", "H", "B"} {
		if _, ok := CostsByName(name); !ok {
			t.Fatalf("CostsByName(%s) failed", name)
		}
	}
	if _, ok := CostsByName("X"); ok {
		t.Fatal("unknown cost set accepted")
	}
}

func TestWordCost(t *testing.T) {
	// 4 Q4 = 1 cycle/word.
	if WordCost(4, 1024) != 1024 {
		t.Fatalf("WordCost(4,1024) = %d", WordCost(4, 1024))
	}
	// 2 Q4 = 0.5 cycles/word, rounds up.
	if WordCost(2, 3) != 2 {
		t.Fatalf("WordCost(2,3) = %d", WordCost(2, 3))
	}
	if WordCost(0, 100) != 0 || WordCost(4, 0) != 0 {
		t.Fatal("zero cases wrong")
	}
}

// Property: WordCost is monotone in both arguments and exact for whole
// cycles.
func TestWordCostMonotone(t *testing.T) {
	f := func(q8, w8 uint8) bool {
		q, w := int64(q8%16), int64(w8)
		if WordCost(q, w) > WordCost(q+1, w) {
			return false
		}
		if WordCost(q, w) > WordCost(q, w+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMprotectCost(t *testing.T) {
	c := OriginalCosts()
	if got := c.MprotectCost(0); got != 0 {
		t.Fatalf("zero pages cost %d", got)
	}
	if got := c.MprotectCost(1); got != c.PageProtectStartup+c.PageProtect {
		t.Fatalf("one page cost %d", got)
	}
	// Batching: one startup amortized over the range.
	if got := c.MprotectCost(10); got != c.PageProtectStartup+10*c.PageProtect {
		t.Fatalf("ten pages cost %d", got)
	}
}
