package consistency

import (
	"strings"
	"testing"

	"swsm/internal/proto"
)

// rcHistory is a little DSL for hand-built histories: each call records
// at an auto-incrementing cycle so reports stay readable.
type history struct {
	r  *Recorder
	cy int64
}

func newHistory(model proto.Model, procs int) *history {
	return &history{r: NewRecorder(model, procs)}
}

func (h *history) tick() int64 { h.cy += 10; return h.cy }

func (h *history) store(p int32, a int64, v uint32) { h.r.Access(p, a, 4, true, uint64(v), h.tick()) }
func (h *history) load(p int32, a int64, v uint32)  { h.r.Access(p, a, 4, false, uint64(v), h.tick()) }
func (h *history) acq(p int32, l int)               { h.r.Acquire(p, l, h.tick()) }
func (h *history) rel(p int32, l int)               { h.r.Release(p, l, h.tick()) }
func (h *history) barrier(ps ...int32) {
	for _, p := range ps {
		h.r.BarrierArrive(p, 0, h.tick())
	}
	for _, p := range ps {
		h.r.BarrierDepart(p, 0, h.tick())
	}
}

func TestRCStaleReadThroughLockCaught(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.r.Init(0x1000, 4, 0)
	h.store(0, 0x1000, 7)
	h.rel(0, 3)
	h.acq(1, 3)
	h.load(1, 0x1000, 0) // stale init value after a release→acquire edge
	v := h.r.Check()
	if v == nil {
		t.Fatal("stale read through a lock edge not caught")
	}
	if v.Proc != 1 || v.Addr != 0x1000 || v.Got != 0 {
		t.Fatalf("violation misattributed: %+v", v)
	}
	msg := v.Error()
	for _, want := range []string{"proc 1", "0x1000", "release(lock 3)", "acquire(lock 3)", "store 0x7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
}

func TestRCConcurrentReadsPermitted(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.store(0, 0x1000, 7)
	h.load(1, 0x1000, 0) // no sync: old value fine
	h.load(1, 0x1000, 7) // new value also fine
	h.load(1, 0x1000, 0) // even going "backwards": unordered
	if v := h.r.Check(); v != nil {
		t.Fatalf("concurrent reads flagged: %v", v)
	}
}

func TestRCCoveredWriteCaught(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.store(0, 0x40, 1)
	h.store(0, 0x40, 2) // covers the first in program order
	h.rel(0, 0)
	h.acq(1, 0)
	h.load(1, 0x40, 1) // the covered value: stale
	v := h.r.Check()
	if v == nil {
		t.Fatal("covered-write read not caught")
	}
	if !strings.Contains(v.Error(), "stale") {
		t.Errorf("want a staleness diagnosis, got: %v", v)
	}
	// The fresh value is fine.
	h2 := newHistory(proto.ModelRC, 2)
	h2.store(0, 0x40, 1)
	h2.store(0, 0x40, 2)
	h2.rel(0, 0)
	h2.acq(1, 0)
	h2.load(1, 0x40, 2)
	if v := h2.r.Check(); v != nil {
		t.Fatalf("frontier read flagged: %v", v)
	}
}

func TestRCBarrierOrders(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.r.Init(0x80, 4, 5)
	h.store(0, 0x80, 9)
	h.barrier(0, 1)
	h.load(1, 0x80, 5) // init value is dead after the barrier
	v := h.r.Check()
	if v == nil {
		t.Fatal("stale read across a barrier not caught")
	}
	if !strings.Contains(v.Error(), "barrier") {
		t.Errorf("report should cite the barrier path:\n%v", v)
	}
	// Reading the fresh value is fine.
	h2 := newHistory(proto.ModelRC, 2)
	h2.r.Init(0x80, 4, 5)
	h2.store(0, 0x80, 9)
	h2.barrier(0, 1)
	h2.load(1, 0x80, 9)
	if v := h2.r.Check(); v != nil {
		t.Fatalf("fresh read flagged: %v", v)
	}
}

func TestRCThinAirCaught(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.store(0, 0x20, 1)
	h.load(1, 0x20, 42) // nobody ever wrote 42
	v := h.r.Check()
	if v == nil {
		t.Fatal("thin-air value not caught")
	}
	if !strings.Contains(v.Error(), "never written") {
		t.Errorf("want thin-air diagnosis, got: %v", v)
	}
}

func TestRCTransitiveLockChain(t *testing.T) {
	// P0 st → rel(0); P1 acq(0) rel(1); P2 acq(1) ld — order is carried
	// transitively, so the stale read must be caught and the path must
	// traverse both locks.
	h := newHistory(proto.ModelRC, 3)
	h.store(0, 0x10, 3)
	h.rel(0, 0)
	h.acq(1, 0)
	h.rel(1, 1)
	h.acq(2, 1)
	h.load(2, 0x10, 0)
	v := h.r.Check()
	if v == nil {
		t.Fatal("transitively ordered stale read not caught")
	}
	msg := v.Error()
	if !strings.Contains(msg, "lock 0") || !strings.Contains(msg, "lock 1") {
		t.Errorf("path should traverse both locks:\n%s", msg)
	}
}

func TestSCLastWriteRule(t *testing.T) {
	h := newHistory(proto.ModelSC, 2)
	h.r.Init(0x10, 4, 1)
	h.load(1, 0x10, 1) // init before any write
	h.store(0, 0x10, 2)
	h.load(1, 0x10, 2)
	if v := h.r.Check(); v != nil {
		t.Fatalf("conforming SC history flagged: %v", v)
	}
	h2 := newHistory(proto.ModelSC, 2)
	h2.store(0, 0x10, 2)
	h2.load(1, 0x10, 0) // SC forbids the old value with no sync at all
	v := h2.r.Check()
	if v == nil {
		t.Fatal("SC stale read not caught")
	}
	if v.Model != proto.ModelSC {
		t.Fatalf("violation model = %v", v.Model)
	}
}

func TestEightByteAccessesSplit(t *testing.T) {
	h := newHistory(proto.ModelSC, 2)
	h.r.Access(0, 0x100, 8, true, 0x11111111_22222222, h.tick())
	h.r.Access(1, 0x100, 4, false, 0x22222222, h.tick()) // low half
	h.r.Access(1, 0x104, 4, false, 0x11111111, h.tick()) // high half
	if v := h.r.Check(); v != nil {
		t.Fatalf("split 8-byte access flagged: %v", v)
	}
	h2 := newHistory(proto.ModelSC, 2)
	h2.r.Access(0, 0x100, 8, true, 0x11111111_22222222, h2.tick())
	h2.r.Access(1, 0x100, 8, false, 0x11111111_33333333, h2.tick()) // bad low half
	v := h2.r.Check()
	if v == nil {
		t.Fatal("bad half of an 8-byte load not caught")
	}
	if v.Addr != 0x100 {
		t.Fatalf("violation should name the stale half's word address, got 0x%x", v.Addr)
	}
}

func TestInitF64SplitsWords(t *testing.T) {
	h := newHistory(proto.ModelRC, 1)
	h.r.Init(0x200, 8, 0xAAAAAAAA_BBBBBBBB)
	h.load(0, 0x200, 0xBBBBBBBB)
	h.load(0, 0x204, 0xAAAAAAAA)
	if v := h.r.Check(); v != nil {
		t.Fatalf("split init flagged: %v", v)
	}
}

func TestCompactionKeepsChecking(t *testing.T) {
	// Push one word far past compactLimit with synchronized handoffs and
	// confirm the checker still accepts the live value and still rejects
	// a long-dead one.
	h := newHistory(proto.ModelRC, 2)
	var last uint32
	for i := 0; i < 3*compactLimit; i++ {
		last = uint32(i + 1)
		h.store(0, 0x10, last)
		h.rel(0, 0)
		h.acq(1, 0)
		h.load(1, 0x10, last)
		h.rel(1, 0)
		h.acq(0, 0)
	}
	if v := h.r.Check(); v != nil {
		t.Fatalf("synchronized ping-pong flagged: %v", v)
	}
	h2 := newHistory(proto.ModelRC, 2)
	for i := 0; i < 3*compactLimit; i++ {
		h2.store(0, 0x10, uint32(i+1))
		h2.rel(0, 0)
		h2.acq(1, 0)
		h2.load(1, 0x10, uint32(i+1))
		h2.rel(1, 0)
		h2.acq(0, 0)
	}
	h2.load(1, 0x10, 1) // value from thousands of handoffs ago
	if v := h2.r.Check(); v == nil {
		t.Fatal("ancient value accepted after compaction")
	}
}

func TestBarrierEpisodesDistinct(t *testing.T) {
	// Two barrier episodes on the same id: a store before episode 1 must
	// be visible after it; a store between episodes must be visible
	// after episode 2 but may be missed after episode 1.
	h := newHistory(proto.ModelRC, 2)
	h.store(0, 0x30, 1)
	h.barrier(0, 1)
	h.load(1, 0x30, 1)
	h.store(1, 0x30, 2)
	h.barrier(0, 1)
	h.load(0, 0x30, 2)
	if v := h.r.Check(); v != nil {
		t.Fatalf("well-ordered two-episode history flagged: %v", v)
	}
	h2 := newHistory(proto.ModelRC, 2)
	h2.store(0, 0x30, 1)
	h2.barrier(0, 1)
	h2.store(1, 0x30, 2)
	h2.barrier(0, 1)
	h2.load(0, 0x30, 1) // covered by episode-2-ordered store of 2
	if v := h2.r.Check(); v == nil {
		t.Fatal("stale read after second barrier episode not caught")
	}
}

func TestNilRecorderIsFreeAndSafe(t *testing.T) {
	var r *Recorder
	r.Init(0, 4, 0)
	r.Access(0, 0, 4, false, 0, 0)
	r.Acquire(0, 0, 0)
	r.Release(0, 0, 0)
	r.BarrierArrive(0, 0, 0)
	r.BarrierDepart(0, 0, 0)
	if v := r.Check(); v != nil {
		t.Fatal("nil recorder produced a violation")
	}
	if s := r.CheckSummary(); s != (Summary{}) {
		t.Fatalf("nil recorder summary = %+v", s)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Access(0, 0x1000, 4, true, 7, 100)
		r.Acquire(0, 1, 100)
		r.Release(0, 1, 100)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder hooks allocate: %v allocs/op", allocs)
	}
}

func TestSummaryCounts(t *testing.T) {
	h := newHistory(proto.ModelRC, 2)
	h.r.Access(0, 0x100, 8, true, 0, h.tick()) // 2 word stores
	h.store(0, 0x10, 1)
	h.load(1, 0x10, 1)
	h.rel(0, 0)
	h.acq(1, 0)
	if v := h.r.Check(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	s := h.r.CheckSummary()
	if s.Stores != 3 || s.Loads != 1 || s.SyncOps != 2 || s.Locations != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if h.r.Events() != 5 {
		t.Fatalf("events = %d, want 5", h.r.Events())
	}
}

// BenchmarkNilRecorderAccess pins the engine-hot-path criterion: the
// disabled recorder must cost one branch, no allocations.
func BenchmarkNilRecorderAccess(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Access(0, int64(i), 4, i&1 == 0, uint64(i), int64(i))
	}
}

// BenchmarkRecorderAccess measures the enabled recorder's per-event cost.
func BenchmarkRecorderAccess(b *testing.B) {
	r := NewRecorder(proto.ModelRC, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Access(int32(i&3), int64(i&1023)*4, 4, i&1 == 0, uint64(i), int64(i))
	}
}
