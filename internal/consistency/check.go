package consistency

import (
	"fmt"
	"math"

	"swsm/internal/proto"
)

// compactLimit bounds the retained write history per word: when a word
// accumulates more writes, every write that is already covered below the
// machine-wide vector-clock floor (and therefore can never again be a
// legal read source or an uncovered frontier write) is discarded.
const compactLimit = 192

// Check replays the recorded history and verifies every load against
// the declared model.  It returns the first violation in execution
// order, or nil if the run conforms.  Check is idempotent; the first
// call does the work.
func (r *Recorder) Check() *Violation {
	if r == nil {
		return nil
	}
	if !r.done {
		r.done = true
		r.sum = Summary{Model: r.model}
		switch r.model {
		case proto.ModelSC:
			r.viol = r.checkSC()
		default:
			r.viol = r.checkRC()
		}
	}
	return r.viol
}

// CheckSummary reports what Check covered (valid after Check).
func (r *Recorder) CheckSummary() Summary {
	if r == nil {
		return Summary{}
	}
	return r.sum
}

// --- release-consistency checking ---

// writeRec is one word write with the writer's vector clock at the
// instant of the store.
type writeRec struct {
	vc    []int32
	time  int64
	val   uint32
	proc  int32
	opIdx int32
}

type locState struct {
	writes []writeRec
	// compacted notes that covered writes were discarded, so a thin-air
	// diagnosis may actually be a (hopelessly stale) dropped write.
	compacted bool
}

// syncRec is one synchronization event kept for happens-before path
// reconstruction.  seq (its index in the slice) is the global record
// order.
type syncRec struct {
	obj     int64
	time    int64
	opIdx   int32
	proc    int32
	episode int32
	kind    opKind
}

type barEpisode struct {
	vc        []int32
	remaining int
}

type barState struct {
	forming  []int32
	arrived  int
	queue    []barEpisode
	arriveEp int32
	departEp int32
}

type checker struct {
	procs  int
	vcs    [][]int32
	lockVC map[int64][]int32
	bars   map[int64]*barState
	locs   map[int64]*locState
	syncs  []syncRec
	inits  map[int64]uint32
	sum    *Summary
}

func (r *Recorder) checkRC() *Violation {
	c := &checker{
		procs:  r.procs,
		vcs:    make([][]int32, r.procs),
		lockVC: make(map[int64][]int32),
		bars:   make(map[int64]*barState),
		locs:   make(map[int64]*locState),
		inits:  r.inits,
		sum:    &r.sum,
	}
	for i := range c.vcs {
		c.vcs[i] = make([]int32, r.procs)
	}
	for i := range r.events {
		e := &r.events[i]
		p := int(e.proc)
		// Every operation occupies its own position in its processor's
		// clock; this is what makes "no sync in between" visible as
		// vector-clock concurrency.
		c.vcs[p][p]++
		switch e.kind {
		case opStore:
			vc := append([]int32(nil), c.vcs[p]...)
			c.addWrite(e.addr, uint32(e.val), e, vc)
			if e.size == 8 {
				c.addWrite(e.addr+4, uint32(e.val>>32), e, vc)
			}
		case opLoad:
			if v := c.checkLoad(e.addr, uint32(e.val), e); v != nil {
				return v
			}
			if e.size == 8 {
				if v := c.checkLoad(e.addr+4, uint32(e.val>>32), e); v != nil {
					return v
				}
			}
		case opAcquire:
			if lvc, ok := c.lockVC[e.addr]; ok {
				joinInto(c.vcs[p], lvc)
			}
			c.recordSync(e, 0)
		case opRelease:
			lvc := c.lockVC[e.addr]
			if lvc == nil {
				lvc = make([]int32, c.procs)
				c.lockVC[e.addr] = lvc
			}
			joinInto(lvc, c.vcs[p])
			c.recordSync(e, 0)
		case opBarArrive:
			b := c.bar(e.addr)
			if b.forming == nil {
				b.forming = make([]int32, c.procs)
			}
			joinInto(b.forming, c.vcs[p])
			c.recordSync(e, b.arriveEp)
			b.arrived++
			if b.arrived == c.procs {
				b.queue = append(b.queue, barEpisode{vc: b.forming, remaining: c.procs})
				b.forming = nil
				b.arrived = 0
				b.arriveEp++
			}
		case opBarDepart:
			b := c.bar(e.addr)
			if len(b.queue) == 0 {
				// A depart with no completed episode means the recorder
				// and protocol disagree about barrier structure — that is
				// itself a violation of the contract.
				return &Violation{
					Model: proto.ModelRC, Proc: e.proc, Addr: e.addr, Cycle: e.time,
					Want: fmt.Sprintf("proc %d departed barrier %d before all %d processors arrived",
						e.proc, e.addr, c.procs),
				}
			}
			ep := &b.queue[0]
			joinInto(c.vcs[p], ep.vc)
			c.recordSync(e, b.departEp)
			ep.remaining--
			if ep.remaining == 0 {
				b.queue = b.queue[1:]
				b.departEp++
			}
		}
	}
	c.sum.Locations = int64(len(c.locs))
	return nil
}

func (c *checker) bar(id int64) *barState {
	b := c.bars[id]
	if b == nil {
		b = &barState{}
		c.bars[id] = b
	}
	return b
}

func (c *checker) recordSync(e *event, episode int32) {
	c.sum.SyncOps++
	c.syncs = append(c.syncs, syncRec{
		obj: e.addr, time: e.time, opIdx: c.vcs[e.proc][e.proc],
		proc: e.proc, episode: episode, kind: e.kind,
	})
}

func (c *checker) addWrite(wa int64, v uint32, e *event, vc []int32) {
	c.sum.Stores++
	loc := c.locs[wa]
	if loc == nil {
		loc = &locState{}
		c.locs[wa] = loc
	}
	loc.writes = append(loc.writes, writeRec{
		vc: vc, time: e.time, val: v, proc: e.proc, opIdx: vc[e.proc],
	})
	if len(loc.writes) > compactLimit {
		c.compact(loc)
	}
}

// compact drops writes that can never matter again: a write covered by a
// later write whose clock is below the floor (the componentwise minimum
// of all processors' clocks) is covered for every future load.
func (c *checker) compact(loc *locState) {
	floor := make([]int32, c.procs)
	for i := range floor {
		floor[i] = math.MaxInt32
	}
	for _, vc := range c.vcs {
		for i, x := range vc {
			if x < floor[i] {
				floor[i] = x
			}
		}
	}
	ws := loc.writes
	kept := ws[:0]
	for i := range ws {
		drop := false
		for j := i + 1; j < len(ws); j++ {
			if leq(ws[i].vc, ws[j].vc) && leq(ws[j].vc, floor) {
				drop = true
				break
			}
		}
		if drop {
			loc.compacted = true
		} else {
			kept = append(kept, ws[i])
		}
	}
	loc.writes = kept
}

// checkLoad verifies one word load under release consistency: the value
// must come from a write concurrent with the load, from a happens-before
// write not covered by a later happens-before write, or be the
// initialization value when no write happens-before the load.
func (c *checker) checkLoad(wa int64, v uint32, e *event) *Violation {
	c.sum.Loads++
	vcL := c.vcs[e.proc]
	initVal := c.inits[wa]
	loc := c.locs[wa]
	if loc == nil || len(loc.writes) == 0 {
		if v == initVal {
			return nil
		}
		return c.thinAir(wa, v, e, initVal, nil)
	}
	ws := loc.writes
	// The most recently recorded write is always a legal source: it is
	// either concurrent with the load or the happens-before frontier.
	if ws[len(ws)-1].val == v {
		return nil
	}
	var stale, cover *writeRec
	for i := range ws {
		w := &ws[i]
		if w.val != v {
			continue
		}
		if !leq(w.vc, vcL) {
			return nil // concurrent write: RC permits observing it
		}
		covered := false
		for j := i + 1; j < len(ws); j++ {
			w2 := &ws[j]
			if leq(w.vc, w2.vc) && leq(w2.vc, vcL) {
				covered = true
				if stale == nil {
					stale, cover = w, w2
				}
				break
			}
		}
		if !covered {
			return nil // uncovered happens-before write: frontier member
		}
	}
	if v == initVal {
		// The init value survives only while no write happens-before the
		// load.
		var hb *writeRec
		for i := range ws {
			if leq(ws[i].vc, vcL) {
				hb = &ws[i]
			}
		}
		if hb == nil && !loc.compacted {
			return nil
		}
		viol := &Violation{
			Model: proto.ModelRC, Proc: e.proc, Addr: wa, Cycle: e.time, Got: v,
			Want: fmt.Sprintf("returned the initialization value 0x%x, but it was overwritten in happens-before before this load", initVal),
		}
		if hb != nil {
			viol.Want += fmt.Sprintf(" (by the store of 0x%x by proc %d at cycle %d)", hb.val, hb.proc, hb.time)
			viol.Path = c.hbPath(hb, wa, v, e)
		}
		return viol
	}
	if stale != nil {
		return &Violation{
			Model: proto.ModelRC, Proc: e.proc, Addr: wa, Cycle: e.time, Got: v,
			Want: fmt.Sprintf("0x%x is stale: it matches the store by proc %d at cycle %d, which is covered by the store of 0x%x by proc %d at cycle %d that happens-before this load",
				v, stale.proc, stale.time, cover.val, cover.proc, cover.time),
			Path: c.hbPath(cover, wa, v, e),
		}
	}
	return c.thinAir(wa, v, e, initVal, loc)
}

func (c *checker) thinAir(wa int64, v uint32, e *event, initVal uint32, loc *locState) *Violation {
	want := fmt.Sprintf("0x%x was never written to this word (init 0x%x", v, initVal)
	if loc != nil {
		want += fmt.Sprintf(", %d retained stores", len(loc.writes))
		if loc.compacted {
			want += "; history compacted, value may be a long-dead store"
		}
	}
	want += ")"
	return &Violation{
		Model: proto.ModelRC, Proc: e.proc, Addr: wa, Cycle: e.time, Got: v, Want: want,
	}
}

// hbPath reconstructs the happens-before chain from write w to load e:
// the store, the sync operations that order it before the load, and the
// load itself.
func (c *checker) hbPath(w *writeRec, wa int64, got uint32, e *event) []string {
	path := []string{fmt.Sprintf("store 0x%x to 0x%x by proc %d @ cycle %d", w.val, wa, w.proc, w.time)}
	if w.proc != e.proc {
		loadIdx := c.vcs[e.proc][e.proc]
		for _, i := range c.syncChain(w.proc, w.opIdx, e.proc, loadIdx) {
			path = append(path, c.formatSync(&c.syncs[i]))
		}
	}
	path = append(path, fmt.Sprintf("load of 0x%x by proc %d @ cycle %d returned 0x%x", wa, e.proc, e.time, got))
	return path
}

// syncChain finds (by BFS, so fewest hops) a chain of sync events
// carrying order from (srcProc, after srcIdx) to (dstProc, before
// dstIdx).  Edges are program order, release→acquire on the same lock
// (cumulative, in record order), and arrive→depart of the same barrier
// episode.
func (c *checker) syncChain(srcProc int32, srcIdx int32, dstProc int32, dstIdx int32) []int {
	n := len(c.syncs)
	parent := make([]int, n)
	visited := make([]bool, n)
	var queue []int
	for i := range c.syncs {
		s := &c.syncs[i]
		if s.proc == srcProc && s.opIdx > srcIdx {
			visited[i] = true
			parent[i] = -1
			queue = append(queue, i)
		}
	}
	edge := func(a, b *syncRec, ai, bi int) bool {
		if a.proc == b.proc {
			return b.opIdx > a.opIdx
		}
		if a.kind == opRelease && b.kind == opAcquire {
			return a.obj == b.obj && bi > ai
		}
		if a.kind == opBarArrive && b.kind == opBarDepart {
			return a.obj == b.obj && a.episode == b.episode
		}
		return false
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		s := &c.syncs[i]
		if s.proc == dstProc && s.opIdx < dstIdx {
			var rev []int
			for j := i; j != -1; j = parent[j] {
				rev = append(rev, j)
			}
			chain := make([]int, 0, len(rev))
			for k := len(rev) - 1; k >= 0; k-- {
				chain = append(chain, rev[k])
			}
			return chain
		}
		for j := range c.syncs {
			if !visited[j] && edge(s, &c.syncs[j], i, j) {
				visited[j] = true
				parent[j] = i
				queue = append(queue, j)
			}
		}
	}
	return nil
}

func (c *checker) formatSync(s *syncRec) string {
	switch s.kind {
	case opAcquire:
		return fmt.Sprintf("acquire(lock %d) by proc %d @ cycle %d", s.obj, s.proc, s.time)
	case opRelease:
		return fmt.Sprintf("release(lock %d) by proc %d @ cycle %d", s.obj, s.proc, s.time)
	case opBarArrive:
		return fmt.Sprintf("barrier %d arrive (episode %d) by proc %d @ cycle %d", s.obj, s.episode, s.proc, s.time)
	case opBarDepart:
		return fmt.Sprintf("barrier %d depart (episode %d) by proc %d @ cycle %d", s.obj, s.episode, s.proc, s.time)
	}
	return fmt.Sprintf("sync op by proc %d @ cycle %d", s.proc, s.time)
}

// --- sequential-consistency checking ---

// checkSC verifies the linearizable contract: every load returns exactly
// the most recent write to its word in execution order (or the
// initialization value before any write).
func (r *Recorder) checkSC() *Violation {
	type scLoc struct {
		time    int64
		val     uint32
		proc    int32
		written bool
	}
	locs := map[int64]*scLoc{}
	check := func(wa int64, v uint32, e *event) *Violation {
		r.sum.Loads++
		want := r.inits[wa]
		src := "the initialization value"
		var path []string
		if l := locs[wa]; l != nil && l.written {
			want = l.val
			src = fmt.Sprintf("the most recent store, by proc %d at cycle %d", l.proc, l.time)
			path = []string{
				fmt.Sprintf("store 0x%x to 0x%x by proc %d @ cycle %d", l.val, wa, l.proc, l.time),
				fmt.Sprintf("load of 0x%x by proc %d @ cycle %d returned 0x%x", wa, e.proc, e.time, v),
			}
		}
		if v == want {
			return nil
		}
		return &Violation{
			Model: proto.ModelSC, Proc: e.proc, Addr: wa, Cycle: e.time, Got: v,
			Want: fmt.Sprintf("SC permits only 0x%x here (%s)", want, src),
			Path: path,
		}
	}
	store := func(wa int64, v uint32, e *event) {
		r.sum.Stores++
		l := locs[wa]
		if l == nil {
			l = &scLoc{}
			locs[wa] = l
		}
		l.val, l.proc, l.time, l.written = v, e.proc, e.time, true
	}
	for i := range r.events {
		e := &r.events[i]
		switch e.kind {
		case opStore:
			store(e.addr, uint32(e.val), e)
			if e.size == 8 {
				store(e.addr+4, uint32(e.val>>32), e)
			}
		case opLoad:
			if v := check(e.addr, uint32(e.val), e); v != nil {
				return v
			}
			if e.size == 8 {
				if v := check(e.addr+4, uint32(e.val>>32), e); v != nil {
					return v
				}
			}
		default:
			r.sum.SyncOps++
		}
	}
	r.sum.Locations = int64(len(locs))
	return nil
}

// --- vector-clock helpers ---

func leq(a, b []int32) bool {
	for i, x := range a {
		if x > b[i] {
			return false
		}
	}
	return true
}

func joinInto(dst, src []int32) {
	for i, x := range src {
		if x > dst[i] {
			dst[i] = x
		}
	}
}
