// Package consistency is the machine-checkable side of the protocol
// contracts: a recorder that captures the per-location access history of
// a run (loads with the values they observed, stores, lock
// acquire/release, barrier episodes) and a checker that rebuilds the
// happens-before order those sync operations induce and verifies every
// load against the set of writes the protocol's declared consistency
// model permits it to return.
//
// The recorder follows the trace.Tracer idiom: every hook is a method on
// a *Recorder with a nil-receiver fast path, so an unchecked run (the
// default) pays exactly one predictable branch and zero allocations per
// shared reference.  Events are recorded in engine execution order,
// which is the order simulated memory state actually evolves in, so the
// checker replays them without re-sorting.
//
// Accesses are checked at word (32-bit) granularity: an 8-byte access is
// split into two word events.  This matches the protocols' atomicity
// unit — HLRC/LRC diff at word grain, scfg copies word arrays — so a
// "torn" double assembled from two permitted word values is, correctly,
// not a violation.
package consistency

import (
	"fmt"
	"strings"

	"swsm/internal/proto"
)

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opAcquire
	opRelease
	opBarArrive
	opBarDepart
)

// event is one recorded access or synchronization operation.  For data
// accesses addr/size/val describe the reference; for sync operations
// addr carries the lock or barrier id.
type event struct {
	time int64
	addr int64
	val  uint64
	proc int32
	size uint8
	kind opKind
}

// Recorder captures a run's access history.  All hook methods are safe
// on a nil receiver (no-ops), so the core machine calls them
// unconditionally.  The recorder itself is not goroutine-safe; the
// simulator is single-threaded, which is what makes the recorded order
// meaningful.
type Recorder struct {
	model  proto.Model
	procs  int
	events []event
	inits  map[int64]uint32
	done   bool
	viol   *Violation
	sum    Summary
}

// NewRecorder builds a recorder for a machine of `procs` processors
// whose protocol declares `model`.
func NewRecorder(model proto.Model, procs int) *Recorder {
	return &Recorder{
		model:  model,
		procs:  procs,
		events: make([]event, 0, 4096),
		inits:  make(map[int64]uint32),
	}
}

// Model reports the consistency model this recorder checks against.
func (r *Recorder) Model() proto.Model { return r.model }

// Init records a pre-run initialization write (Machine.InitWord /
// InitF64).  Init values are the base every location's permitted-value
// set starts from.
func (r *Recorder) Init(addr int64, size int, val uint64) {
	if r == nil {
		return
	}
	r.inits[addr] = uint32(val)
	if size == 8 {
		r.inits[addr+4] = uint32(val >> 32)
	}
}

// Access records one shared data reference and the raw value it stored
// or observed.  Called from the thread's post path, immediately after
// the data operation.
func (r *Recorder) Access(proc int32, addr int64, size int, write bool, val uint64, now int64) {
	if r == nil {
		return
	}
	k := opLoad
	if write {
		k = opStore
	}
	r.events = append(r.events, event{
		time: now, addr: addr, val: val, proc: proc, size: uint8(size), kind: k,
	})
}

// Acquire records that proc completed an acquire of lock l (recorded
// after the protocol-level acquire returns, so every release whose
// interval the grant carried is already in the history).
func (r *Recorder) Acquire(proc int32, lock int, now int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{time: now, addr: int64(lock), proc: proc, kind: opAcquire})
}

// Release records that proc is about to release lock l (recorded before
// the protocol-level release, so it precedes any acquire it enables).
func (r *Recorder) Release(proc int32, lock int, now int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{time: now, addr: int64(lock), proc: proc, kind: opRelease})
}

// BarrierArrive records that proc reached barrier b (before the
// protocol-level barrier).
func (r *Recorder) BarrierArrive(proc int32, bar int, now int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{time: now, addr: int64(bar), proc: proc, kind: opBarArrive})
}

// BarrierDepart records that proc left barrier b (after the
// protocol-level barrier released it).
func (r *Recorder) BarrierDepart(proc int32, bar int, now int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{time: now, addr: int64(bar), proc: proc, kind: opBarDepart})
}

// Events reports how many operations were recorded.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Summary aggregates what a finished Check covered.
type Summary struct {
	Model proto.Model
	// Loads and Stores count checked word-granularity accesses.
	Loads, Stores int64
	// Locations is the number of distinct word addresses written.
	Locations int64
	// SyncOps counts recorded acquire/release/barrier operations.
	SyncOps int64
}

func (s Summary) String() string {
	return fmt.Sprintf("%s: %d loads, %d stores over %d locations, %d sync ops",
		s.Model, s.Loads, s.Stores, s.Locations, s.SyncOps)
}

// Violation describes the first load the checker could not justify.  It
// implements error so harness runs surface it through the normal error
// path, and callers detect it with errors.As to distinguish a
// consistency violation from an application verification failure.
type Violation struct {
	Model proto.Model
	// Proc/Addr/Cycle locate the offending load; Addr is the word
	// address actually checked (for split 8-byte accesses, the stale
	// half).
	Proc  int32
	Addr  int64
	Cycle int64
	// Got is the value the load returned; Want describes the permitted
	// set.
	Got  uint32
	Want string
	// Path is the happens-before chain (store → sync hops → load) that
	// forbids Got, outermost first.  Empty for thin-air values, which no
	// chain explains.
	Path []string
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "consistency violation (%s): proc %d load of addr 0x%x at cycle %d returned 0x%x; %s",
		v.Model, v.Proc, v.Addr, v.Cycle, v.Got, v.Want)
	if len(v.Path) > 0 {
		b.WriteString("\n  happens-before path:\n")
		for _, hop := range v.Path {
			b.WriteString("    ")
			b.WriteString(hop)
			b.WriteString("\n")
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
