package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"swsm/internal/apps"
)

// TestRunRowRoundTrip pins the wire format's fidelity: a row survives a
// JSON round trip with its spec intact (so a service request rebuilt
// from a stored row hits the same content key), and serialization is
// byte-deterministic (so store payloads for one spec are identical).
func TestRunRowRoundTrip(t *testing.T) {
	spec := DefaultSpec("fft", HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 4
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	row := NewRunRow(res).WithSpeedup(3 * res.Cycles)

	var buf1, buf2 bytes.Buffer
	if err := WriteRunRowJSON(&buf1, row); err != nil {
		t.Fatal(err)
	}
	if err := WriteRunRowJSON(&buf2, row); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("RunRow serialization is not deterministic")
	}

	var back RunRow
	if err := json.Unmarshal(buf1.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != spec {
		t.Fatalf("spec did not round-trip: got %+v, want %+v", back.Spec, spec)
	}
	if back.Spec.Key() != row.Key {
		t.Fatalf("round-tripped spec key %s != recorded key %s", back.Spec.Key(), row.Key)
	}
	if back.Cycles != res.Cycles || back.SeqCycles != 3*res.Cycles {
		t.Fatalf("cycles did not round-trip: %+v", back)
	}
	if back.Speedup != 3.0 {
		t.Fatalf("speedup = %v, want 3.0", back.Speedup)
	}
	if back.Breakdown["busy"] <= 0 {
		t.Fatalf("breakdown lost busy cycles: %v", back.Breakdown)
	}
	if back.Counters["msgsSent"] <= 0 {
		t.Fatalf("counters lost msgsSent: %v", back.Counters)
	}
}
