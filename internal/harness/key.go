package harness

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// KeyVersion is the version of the RunSpec content-key encoding.  It
// participates in every key, so bumping it invalidates every entry of
// the persistent result store at once.  Bump it whenever the meaning of
// an existing RunSpec changes — a field is added/removed/renamed, a
// default shifts, or the simulation itself changes in a way that makes
// previously stored results stale (cost-model fixes, protocol changes
// that alter cycle counts, application restructurings).  The golden
// values in key_test.go catch accidental encoding drift; the field-count
// guard there forces this file to be revisited whenever RunSpec grows.
const KeyVersion = 2

// Key returns the stable, versioned content key of the spec: a
// canonical byte encoding of every RunSpec field, hashed with SHA-256.
// Two specs have equal keys iff they are equal as values (the same
// property that makes RunSpec a sound memo key in-process), and the key
// is stable across processes, platforms and daemon restarts — it is the
// address of the spec's result in the persistent store.
//
// The encoding is deliberately explicit rather than reflective: each
// field is written by name in a fixed order, so the compiler cannot
// silently include a new field (changing old keys) or a refactor
// silently drop one (aliasing distinct specs).
func (s RunSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "swsm/runspec v%d\n", KeyVersion)
	fmt.Fprintf(&b, "app=%s\n", s.App)
	fmt.Fprintf(&b, "scale=%d\n", int(s.Scale))
	fmt.Fprintf(&b, "protocol=%s\n", string(s.Protocol))
	fmt.Fprintf(&b, "procs=%d\n", s.Procs)
	c := s.Comm
	fmt.Fprintf(&b, "comm=%d,%d,%d,%d,%d/%d,%d\n",
		c.HostOverhead, c.NIOccupancy, c.MsgHandling, c.LinkLatency,
		c.IOBusBytesNum, c.IOBusBytesDen, c.MaxPacket)
	k := s.Costs
	fmt.Fprintf(&b, "costs=%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		k.PageProtect, k.PageProtectStartup, k.DiffCompareQ4, k.DiffWriteQ4,
		k.DiffApplyQ4, k.TwinQ4, k.HandlerBase, k.HandlerPerItem, k.FaultBase)
	fmt.Fprintf(&b, "scblock=%d\n", s.SCBlockOverride)
	fmt.Fprintf(&b, "cache=%t\n", s.CacheEnabled)
	fmt.Fprintf(&b, "pollq=%d\n", s.PollQuantum)
	fmt.Fprintf(&b, "noplace=%t\n", s.DisablePlacement)
	fmt.Fprintf(&b, "nopollute=%t\n", s.NoProtocolPollution)
	fmt.Fprintf(&b, "swac=%t\n", s.SoftwareAccessControl)
	fmt.Fprintf(&b, "hlrcshift=%d\n", s.HLRCUnitShift)
	fmt.Fprintf(&b, "trace=%t,%d\n", s.Trace, s.TraceSample)
	f := s.Fault
	fmt.Fprintf(&b, "fault=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%t\n",
		f.Seed, f.DropPPM, f.DupPPM, f.DelayPPM, f.DelayMax,
		f.PauseEvery, f.PauseFor, f.PauseMask, f.StallEvery, f.StallFor,
		f.Reliable)
	h := s.Hetero
	fmt.Fprintf(&b, "hetero=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%s,%d,%d,%d,%d\n",
		h.SlowMask, h.SlowNum, h.SlowDen,
		h.AccelMask, h.AccelCompNum, h.AccelCompDen, h.AccelProtoNum, h.AccelProtoDen,
		h.SlowLinkMask, h.LinkNum, h.LinkDen,
		string(h.Placement), h.RehomeMin, h.RehomeFactor, h.RehomeCap,
		string(h.Grain), h.FineShift, h.FineWriters, h.FineMaxWords, h.FineCap)
	fmt.Fprintf(&b, "check=%t\n", s.Check)
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("v%d-%x", KeyVersion, sum)
}
