package harness

import (
	"reflect"
	"testing"

	"swsm/internal/apps"
)

// TestParallelFigure3Deterministic proves the runner's central claim:
// running the full Figure-3 ladder through a parallel session produces
// results identical to a serial session — cycle counts and complete
// per-processor breakdowns — because each simulation is internally
// single-threaded and cross-run parallelism cannot perturb it.
func TestParallelFigure3Deterministic(t *testing.T) {
	const app, procs = "fft", 8
	serial, err := NewSession(1).Figure3(app, apps.Tiny, procs, Figure3Configs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSession(8).Figure3(app, apps.Tiny, procs, Figure3Configs)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Ideal != par.Ideal {
		t.Fatalf("ideal speedup diverged: serial %v, parallel %v", serial.Ideal, par.Ideal)
	}
	if !reflect.DeepEqual(serial.HLRC, par.HLRC) || !reflect.DeepEqual(serial.SC, par.SC) {
		t.Fatalf("speedups diverged:\nserial HLRC %v SC %v\nparallel HLRC %v SC %v",
			serial.HLRC, serial.SC, par.HLRC, par.SC)
	}
	if len(serial.Results) != len(par.Results) {
		t.Fatalf("result sets differ: %d vs %d", len(serial.Results), len(par.Results))
	}
	for key, sr := range serial.Results {
		pr, ok := par.Results[key]
		if !ok {
			t.Fatalf("parallel session missing result %q", key)
		}
		if sr.Cycles != pr.Cycles {
			t.Fatalf("%s: cycles diverged: serial %d, parallel %d", key, sr.Cycles, pr.Cycles)
		}
		// Full per-processor breakdowns and counters, not just totals.
		if !reflect.DeepEqual(sr.Stats.Procs, pr.Stats.Procs) {
			t.Fatalf("%s: per-processor stats diverged", key)
		}
	}
}

// TestSessionMemoizesBaseline checks the satellite requirement: the
// sequential baseline runs once per (app, scale) within a session, no
// matter how many speedups divide by it.
func TestSessionMemoizesBaseline(t *testing.T) {
	s := NewSession(2)
	seq1, err := s.SequentialBaseline("fft", apps.Tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Speedup(func() RunSpec {
		spec := DefaultSpec("fft", HLRC)
		spec.Scale = apps.Tiny
		spec.Procs = 4
		return spec
	}()); err != nil {
		t.Fatal(err)
	}
	seq2, err := s.SequentialBaseline("fft", apps.Tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != seq2 {
		t.Fatalf("baseline changed between calls: %d vs %d", seq1, seq2)
	}
	st := s.Stats()
	// Three requests touched the baseline key (direct, Speedup, direct);
	// exactly one executed.
	if st.Runs != 2 { // baseline + the HLRC run
		t.Fatalf("runs = %d, want 2 (baseline memoized)", st.Runs)
	}
	if st.Hits+st.Waits < 2 {
		t.Fatalf("cache hits+waits = %d, want >= 2", st.Hits+st.Waits)
	}
}
