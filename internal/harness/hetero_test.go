package harness_test

import (
	"bytes"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/fault"
	"swsm/internal/harness"
	"swsm/internal/hetero"
)

// TestHeteroSpecComposition pins the skew x placement naming surface.
func TestHeteroSpecComposition(t *testing.T) {
	hs, err := harness.HeteroSpec("uniform", "app")
	if err != nil {
		t.Fatal(err)
	}
	if hs != (hetero.Spec{}) {
		t.Fatalf("uniform/app is not the zero spec: %+v", hs)
	}
	hs, err = harness.HeteroSpec("cpu4", "adaptive+grain")
	if err != nil {
		t.Fatal(err)
	}
	if hs.Placement != hetero.PlaceAdaptive || hs.Grain != hetero.GrainAdaptive {
		t.Fatalf("adaptive+grain not composed: %+v", hs)
	}
	if hs.SlowNum != 4 || hs.SlowDen != 1 {
		t.Fatalf("cpu4 preset not composed: %+v", hs)
	}
	if _, err := harness.HeteroSpec("warp9", "app"); err == nil {
		t.Fatal("unknown skew accepted")
	}
	if _, err := harness.HeteroSpec("uniform", "clairvoyant"); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// TestHeteroUniformIsBaseline pins that the uniform preset changes
// nothing: same memo key, same cycles as a spec that never touched the
// hetero plane.
func TestHeteroUniformIsBaseline(t *testing.T) {
	plain := harness.DefaultSpec("fft", harness.HLRC)
	plain.Scale = apps.Tiny
	plain.Procs = 4
	uni := plain
	hs, err := harness.HeteroSpec("uniform", "app")
	if err != nil {
		t.Fatal(err)
	}
	uni.Hetero = hs
	if plain.Key() != uni.Key() {
		t.Fatalf("uniform hetero spec changed the memo key: %s vs %s", plain.Key(), uni.Key())
	}
	a, err := harness.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := harness.Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("uniform hetero spec perturbed the run: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// heteroSweepCSV runs the reference sweep through a session of the given
// width and renders its CSV.
func heteroSweepCSV(t *testing.T, parallel int) ([]harness.HeteroPoint, []byte, *harness.Session) {
	t.Helper()
	s := harness.NewSession(parallel)
	points, err := s.HeterogeneitySweep(
		[]string{"fft", "lu"},
		[]harness.ProtocolKind{harness.HLRC, harness.SC},
		apps.Tiny, 8,
		[]string{"uniform", "cpu4"},
		[]string{"rr", "adaptive"},
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteHeterogeneityCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	return points, buf.Bytes(), s
}

// TestHeteroSweepDeterministicAndWarm pins two sweep properties at once:
// the rendered CSV is byte-identical whether the sweep runs serially or
// 8-wide, and replaying the sweep against a warm session re-assembles it
// entirely from cache — zero fresh simulations.
func TestHeteroSweepDeterministicAndWarm(t *testing.T) {
	_, csv1, s := heteroSweepCSV(t, 1)
	_, csv8, _ := heteroSweepCSV(t, 8)
	if !bytes.Equal(csv1, csv8) {
		t.Fatalf("sweep CSV differs between serial and 8-wide execution:\n%s\nvs\n%s", csv1, csv8)
	}
	before := s.Stats()
	points, err := s.HeterogeneitySweep(
		[]string{"fft", "lu"},
		[]harness.ProtocolKind{harness.HLRC, harness.SC},
		apps.Tiny, 8,
		[]string{"uniform", "cpu4"},
		[]string{"rr", "adaptive"},
	)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if fresh := after.Runs - before.Runs; fresh != 0 {
		t.Fatalf("warm replay simulated %d fresh runs, want 0", fresh)
	}
	var buf bytes.Buffer
	if err := harness.WriteHeterogeneityCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), csv1) {
		t.Fatal("warm replay rendered a different CSV")
	}
}

// TestAdaptiveBeatsStaticUnderSkew pins the subsystem's headline
// measurement: on a protocol-skewed cluster, adaptive home migration
// strictly beats static round-robin homes for a communication-heavy
// application (it pulls hot pages off the slow nodes), while on the
// uniform machine it stays within noise of static.
func TestAdaptiveBeatsStaticUnderSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("Base-scale simulations")
	}
	s := harness.NewSession(0)
	run := func(skew, placement string) int64 {
		hs, err := harness.HeteroSpec(skew, placement)
		if err != nil {
			t.Fatal(err)
		}
		spec := harness.DefaultSpec("ocean-rowwise", harness.HLRC)
		spec.Scale = apps.Base
		spec.Procs = 8
		spec.Hetero = hs
		res, err := s.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	for _, skew := range []string{"cpu4", "accel4", "mixed"} {
		rr, adaptive := run(skew, "rr"), run(skew, "adaptive")
		if adaptive >= rr {
			t.Errorf("%s: adaptive %d cycles >= static rr %d", skew, adaptive, rr)
		}
	}
}

// TestPerNodeModelDeterminismAcrossParallelism runs specs that combine
// per-node speed multipliers with per-node fault pause windows — the two
// per-node planes together — serially and 8-wide, and requires
// byte-identical cycle counts.
func TestPerNodeModelDeterminismAcrossParallelism(t *testing.T) {
	specs := func() []harness.RunSpec {
		var out []harness.RunSpec
		for _, skew := range []string{"cpu2", "accel2", "mixed"} {
			for _, placement := range []string{"rr", "adaptive"} {
				hs, err := harness.HeteroSpec(skew, placement)
				if err != nil {
					t.Fatal(err)
				}
				spec := harness.DefaultSpec("fft", harness.HLRC)
				spec.Scale = apps.Tiny
				spec.Procs = 8
				spec.Hetero = hs
				// Pause odd nodes periodically: the per-node fault plane
				// layered over the per-node machine models.
				spec.Fault = fault.Spec{
					Seed: 3, PauseEvery: 50_000, PauseFor: 2_000, PauseMask: 0xAA,
				}
				out = append(out, spec)
			}
		}
		return out
	}
	serial, err := harness.NewSession(1).RunAll(specs())
	if err != nil {
		t.Fatal(err)
	}
	wide, err := harness.NewSession(8).RunAll(specs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cycles != wide[i].Cycles {
			t.Errorf("spec %d: serial %d cycles, 8-wide %d", i, serial[i].Cycles, wide[i].Cycles)
		}
	}
}

// TestHeteroVerdicts pins the flip-detection table on synthetic points.
func TestHeteroVerdicts(t *testing.T) {
	points := []harness.HeteroPoint{
		{App: "a", Skew: "uniform", Placement: "rr", Proto: harness.HLRC, Cycles: 100},
		{App: "a", Skew: "uniform", Placement: "rr", Proto: harness.SC, Cycles: 120},
		{App: "a", Skew: "link8", Placement: "rr", Proto: harness.HLRC, Cycles: 900},
		{App: "a", Skew: "link8", Placement: "rr", Proto: harness.SC, Cycles: 700},
		{App: "b", Skew: "uniform", Placement: "rr", Proto: harness.HLRC, Cycles: 50},
		{App: "b", Skew: "uniform", Placement: "rr", Proto: harness.SC, Cycles: 80},
		{App: "b", Skew: "link8", Placement: "rr", Proto: harness.HLRC, Cycles: 500},
		{App: "b", Skew: "link8", Placement: "rr", Proto: harness.SC, Cycles: 600},
	}
	flips := harness.HeteroVerdicts(points)
	if len(flips) != 2 {
		t.Fatalf("got %d verdict rows, want 2: %+v", len(flips), flips)
	}
	if !flips[0].Flipped || flips[0].App != "a" || flips[0].UniformBest != harness.HLRC || flips[0].SkewBest != harness.SC {
		t.Fatalf("app a verdict wrong: %+v", flips[0])
	}
	if flips[1].Flipped || flips[1].App != "b" {
		t.Fatalf("app b verdict wrong: %+v", flips[1])
	}
}
