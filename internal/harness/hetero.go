package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/hetero"
	"swsm/internal/stats"
)

// The heterogeneity sweep is the hetero layer's headline experiment:
// sweep machine skew x placement policy x protocol for every app and
// find where the paper's uniform-cluster conclusions flip — the skews
// under which the protocol that wins on identical nodes loses, and
// whether adaptive home placement buys the difference back.

// PlacementNames lists the placement policies the sweep and the
// explorer enumerate, in canonical order.  "app" honors application
// data placement (the paper's decomposed placement); "rr" is the static
// round-robin baseline; "adaptive" migrates page homes online;
// "adaptive+grain" additionally demotes falsely-shared pages to
// fine-grain coherence units.  The adaptive policies are HLRC-only:
// under other protocols they degrade to "rr".
func PlacementNames() []string {
	return []string{"app", "rr", "adaptive", "adaptive+grain"}
}

// HeteroSpec composes a named skew preset with a named placement
// policy into the hetero.Spec a RunSpec carries.
func HeteroSpec(skew, placement string) (hetero.Spec, error) {
	hs, err := hetero.PresetByName(skew)
	if err != nil {
		return hetero.Spec{}, err
	}
	switch placement {
	case "", "app":
	case "rr":
		hs.Placement = hetero.PlaceRR
	case "adaptive":
		hs.Placement = hetero.PlaceAdaptive
	case "adaptive+grain":
		hs.Placement = hetero.PlaceAdaptive
		hs.Grain = hetero.GrainAdaptive
	default:
		return hetero.Spec{}, fmt.Errorf("harness: unknown placement %q (want %s)",
			placement, strings.Join(PlacementNames(), ", "))
	}
	return hs, nil
}

// HeteroPoint is one measurement of the heterogeneity sweep.
type HeteroPoint struct {
	App       string
	Skew      string // hetero.PresetNames entry
	Placement string // PlacementNames entry
	Proto     ProtocolKind
	Cycles    int64
	// Speedup is sequential-baseline cycles / Cycles (same denominator
	// as every speedup in the paper).
	Speedup float64
	// Adaptive-policy activity (zero under static placements).
	Rehomed int64
	Demoted int64
}

// HeterogeneitySweep measures every app x skew x placement x protocol
// cell through the session's worker pool.  Points come back in
// app-major, then skew, then placement, then protocol order —
// deterministic regardless of execution parallelism.
func (s *Session) HeterogeneitySweep(appNames []string, protos []ProtocolKind, scale apps.Scale, procs int, skews, placements []string) ([]HeteroPoint, error) {
	type slot struct {
		app, skew, placement string
		prot                 ProtocolKind
	}
	var specs []RunSpec
	var slots []slot
	for _, app := range appNames {
		for _, skew := range skews {
			for _, pl := range placements {
				hs, err := HeteroSpec(skew, pl)
				if err != nil {
					return nil, err
				}
				for _, prot := range protos {
					spec := DefaultSpec(app, prot)
					spec.Scale = scale
					spec.Procs = procs
					spec.Hetero = hs
					specs = append(specs, spec)
					slots = append(slots, slot{app, skew, pl, prot})
				}
			}
		}
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("heterogeneity sweep: %w", err)
	}
	out := make([]HeteroPoint, len(slots))
	for i, sl := range slots {
		res := results[i]
		seq, err := s.SequentialBaseline(sl.app, scale, specs[i].CacheEnabled)
		if err != nil {
			return nil, fmt.Errorf("heterogeneity sweep: baseline %s: %w", sl.app, err)
		}
		out[i] = HeteroPoint{
			App: sl.app, Skew: sl.skew, Placement: sl.placement, Proto: sl.prot,
			Cycles:  res.Cycles,
			Speedup: float64(seq) / float64(res.Cycles),
			Rehomed: res.Stats.TotalCount(stats.PagesRehomed),
			Demoted: res.Stats.TotalCount(stats.PagesDemoted),
		}
	}
	return out, nil
}

// HeteroFlip is one (app, placement) row of the verdict table: the
// winning protocol on the uniform machine vs under one skew.  Flipped
// marks the configurations where the paper's uniform-cluster conclusion
// no longer holds.
type HeteroFlip struct {
	App         string
	Placement   string
	Skew        string
	UniformBest ProtocolKind
	SkewBest    ProtocolKind
	Flipped     bool
}

// HeteroVerdicts derives the protocol-verdict table from sweep points:
// for every (app, placement) it compares the best protocol under each
// non-uniform skew against the best on the uniform machine.  Requires
// the sweep to have included the "uniform" skew; cells missing from the
// sweep are skipped.
func HeteroVerdicts(points []HeteroPoint) []HeteroFlip {
	type cell struct{ app, skew, pl string }
	best := make(map[cell]HeteroPoint)
	var order []cell
	for _, p := range points {
		c := cell{p.App, p.Skew, p.Placement}
		b, ok := best[c]
		if !ok {
			order = append(order, c)
		}
		if !ok || p.Cycles < b.Cycles {
			best[c] = p
		}
	}
	var out []HeteroFlip
	for _, c := range order {
		if c.skew == "uniform" {
			continue
		}
		uni, ok := best[cell{c.app, "uniform", c.pl}]
		if !ok {
			continue
		}
		sk := best[c]
		out = append(out, HeteroFlip{
			App: c.app, Placement: c.pl, Skew: c.skew,
			UniformBest: uni.Proto, SkewBest: sk.Proto,
			Flipped: uni.Proto != sk.Proto,
		})
	}
	return out
}

// FormatHeterogeneity renders sweep points grouped per (app, skew) row,
// one column per placement/protocol, followed by the verdict table.
func FormatHeterogeneity(points []HeteroPoint) string {
	var sb strings.Builder
	var curKey string
	for _, p := range points {
		key := p.App + "/" + p.Skew
		if key != curKey {
			if curKey != "" {
				sb.WriteByte('\n')
			}
			curKey = key
			fmt.Fprintf(&sb, "  %-20s", key)
		}
		fmt.Fprintf(&sb, "  %s/%s:%.2fx", p.Placement, p.Proto, p.Speedup)
		if p.Rehomed > 0 || p.Demoted > 0 {
			fmt.Fprintf(&sb, " (rehomed %d, demoted %d)", p.Rehomed, p.Demoted)
		}
	}
	if curKey != "" {
		sb.WriteByte('\n')
	}
	for _, f := range HeteroVerdicts(points) {
		if !f.Flipped {
			continue
		}
		fmt.Fprintf(&sb, "  FLIP %s placement=%s: %s wins uniform, %s wins under %s\n",
			f.App, f.Placement, f.UniformBest, f.SkewBest, f.Skew)
	}
	return sb.String()
}

// WriteHeterogeneityCSV emits one row per sweep point:
// app,skew,placement,protocol,cycles,speedup,pages_rehomed,pages_demoted,
// uniform_best,flipped.  The last two columns carry the verdict of the
// point's (app, placement, skew) cell so a flip is visible on the row
// itself.
func WriteHeterogeneityCSV(w io.Writer, points []HeteroPoint) error {
	verdicts := make(map[[3]string]HeteroFlip)
	for _, f := range HeteroVerdicts(points) {
		verdicts[[3]string{f.App, f.Skew, f.Placement}] = f
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "skew", "placement", "protocol", "cycles", "speedup",
		"pages_rehomed", "pages_demoted", "uniform_best", "flipped",
	}); err != nil {
		return err
	}
	n := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		uniBest, flipped := "", ""
		if f, ok := verdicts[[3]string{p.App, p.Skew, p.Placement}]; ok {
			uniBest = string(f.UniformBest)
			flipped = strconv.FormatBool(f.Flipped)
		}
		if err := cw.Write([]string{
			p.App, p.Skew, p.Placement, string(p.Proto), n(p.Cycles),
			strconv.FormatFloat(p.Speedup, 'f', 4, 64),
			n(p.Rehomed), n(p.Demoted), uniBest, flipped,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
