package harness

import (
	"fmt"
	"strings"

	"swsm/internal/stats"
)

// ASCII renderings of the figures, so `svmbench` output reads like the
// paper's bar charts.

const chartWidth = 48

// bar renders a horizontal bar of value v against a full-scale max.
func bar(v, max float64) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * chartWidth)
	if n < 0 {
		n = 0
	}
	if n > chartWidth {
		n = chartWidth
	}
	return strings.Repeat("#", n)
}

// RenderFigure3 draws one application's speedup bars (both protocols,
// all configurations) against the ideal machine's bar, mirroring the
// paper's Figure 3 layout.
func RenderFigure3(b *AppBar, configs []LayerConfig) string {
	var sb strings.Builder
	max := b.Ideal
	for _, lc := range configs {
		if v := b.HLRC[lc.Label()]; v > max {
			max = v
		}
		if v := b.SC[lc.Label()]; v > max {
			max = v
		}
	}
	fmt.Fprintf(&sb, "%s\n", b.App)
	fmt.Fprintf(&sb, "  %-5s %-6s %6.2f |%s\n", "ideal", "", b.Ideal, bar(b.Ideal, max))
	for _, proto := range []struct {
		name string
		vals map[string]float64
	}{{"hlrc", b.HLRC}, {"sc", b.SC}} {
		for _, lc := range configs {
			v := proto.vals[lc.Label()]
			mark := ""
			if lc.Label() == "AO" {
				mark = "<- base"
			}
			fmt.Fprintf(&sb, "  %-5s %-6s %6.2f |%-*s %s\n",
				proto.name, lc.Label(), v, chartWidth, bar(v, max), mark)
		}
	}
	return sb.String()
}

// RenderFigure4 draws stacked-percentage breakdown bars, one per
// configuration, like the paper's normalized execution-time breakdowns.
func RenderFigure4(rows []Figure4Row) string {
	var sb strings.Builder
	glyphs := [stats.NumCategories]byte{'B', 'c', 'D', 'L', 'R', 'P', 'H'}
	fmt.Fprintf(&sb, "  key: B=busy c=cache D=data L=lock R=barrier P=protocol H=handler\n")
	for _, r := range rows {
		var total float64
		for _, v := range r.Breakdown {
			total += v
		}
		if total == 0 {
			continue
		}
		var barBuf []byte
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			n := int(r.Breakdown[c] / total * chartWidth)
			for i := 0; i < n; i++ {
				barBuf = append(barBuf, glyphs[c])
			}
		}
		for len(barBuf) < chartWidth {
			barBuf = append(barBuf, ' ')
		}
		fmt.Fprintf(&sb, "  %-5s %-5s |%s| %d cycles\n", r.Proto, r.Config, barBuf[:chartWidth], r.Cycles)
	}
	return sb.String()
}
