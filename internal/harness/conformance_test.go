package harness_test

import (
	"testing"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/harness"
	"swsm/internal/proto"

	// Register the application suite.
	_ "swsm/internal/apps/barnes"
	_ "swsm/internal/apps/fft"
	_ "swsm/internal/apps/lu"
	_ "swsm/internal/apps/ocean"
	_ "swsm/internal/apps/radix"
	_ "swsm/internal/apps/raytrace"
	_ "swsm/internal/apps/volrend"
	_ "swsm/internal/apps/water"
)

// TestConformance runs every registered application at Tiny scale on all
// three protocols and several processor counts; Verify inside Run checks
// the computed result against the golden model, so this is the
// protocol-correctness integration suite.
func TestConformance(t *testing.T) {
	for _, app := range apps.Names() {
		for _, prot := range []harness.ProtocolKind{harness.Ideal, harness.HLRC, harness.SC, harness.LRC} {
			for _, procs := range []int{1, 4, 8} {
				app, prot, procs := app, prot, procs
				t.Run(app+"/"+string(prot)+"/"+itoa(procs), func(t *testing.T) {
					t.Parallel()
					spec := harness.DefaultSpec(app, prot)
					spec.Scale = apps.Tiny
					spec.Procs = procs
					if _, err := harness.Run(spec); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestConformanceBestConfig reruns the suite in the BB configuration
// (zero-cost layers), where latiencies collapse and event orderings
// differ — a distinct stress of the protocols.
func TestConformanceBestConfig(t *testing.T) {
	for _, app := range apps.Names() {
		for _, prot := range []harness.ProtocolKind{harness.HLRC, harness.SC, harness.LRC} {
			app, prot := app, prot
			t.Run(app+"/"+string(prot), func(t *testing.T) {
				t.Parallel()
				spec := harness.DefaultSpec(app, prot)
				spec.Scale = apps.Tiny
				spec.Procs = 8
				spec.Comm = comm.BetterThanBest()
				spec.Costs = proto.BestCosts()
				if _, err := harness.Run(spec); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConformanceFineGrainHLRC reruns the suite with HLRC at a 256 B
// coherence unit — the delayed-consistency fine-grained multiple-writer
// protocol of the paper's referee note.
func TestConformanceFineGrainHLRC(t *testing.T) {
	for _, app := range apps.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			spec := harness.DefaultSpec(app, harness.HLRC)
			spec.Scale = apps.Tiny
			spec.Procs = 8
			spec.HLRCUnitShift = 8
			if _, err := harness.Run(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterminism: identical specs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	for _, prot := range []harness.ProtocolKind{harness.HLRC, harness.SC} {
		spec := harness.DefaultSpec("fft", prot)
		spec.Scale = apps.Tiny
		spec.Procs = 4
		a, err := harness.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := harness.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles {
			t.Fatalf("%s: replay diverged: %d vs %d", prot, a.Cycles, b.Cycles)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
