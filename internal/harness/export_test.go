package harness

import (
	"strings"
	"testing"

	"swsm/internal/stats"
)

func TestWriteFigure3CSV(t *testing.T) {
	bars := []*AppBar{{
		App: "toy", Ideal: 8,
		HLRC: map[string]float64{"AO": 2.5},
		SC:   map[string]float64{"AO": 3},
	}}
	var sb strings.Builder
	if err := WriteFigure3CSV(&sb, bars, []LayerConfig{{"A", "O"}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"app,protocol,config,speedup", "toy,ideal,ideal,8.0000",
		"toy,hlrc,AO,2.5000", "toy,sc,AO,3.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	row := Figure4Row{App: "toy", Proto: HLRC, Config: "AO", Cycles: 42}
	row.Breakdown[stats.Busy] = 40
	var sb strings.Builder
	if err := WriteFigure4CSV(&sb, []Figure4Row{row}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "toy,hlrc,AO,42,40") {
		t.Fatalf("bad csv:\n%s", sb.String())
	}
}

func TestWriteFigure5CSV(t *testing.T) {
	var sb strings.Builder
	pts := []Figure5Point{{Param: "bandwidth", Factor: "0", Proto: SC, Speedup: 1.5}}
	if err := WriteFigure5CSV(&sb, "toy", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "toy,sc,bandwidth,0,1.5000") {
		t.Fatalf("bad csv:\n%s", sb.String())
	}
}

func TestWriteTable4CSV(t *testing.T) {
	var sb strings.Builder
	rows := []Table4Row{{App: "toy", TotalPct: 12.345, HandlerPct: 5, DiffPct: 7.3}}
	if err := WriteTable4CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "toy,12.35,5.00,7.30") {
		t.Fatalf("bad csv:\n%s", sb.String())
	}
}
