package harness_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/harness"
	"swsm/internal/trace"
)

// renderTraces runs the traced FFT ladder through a session with the
// given parallelism and serializes both trace formats.
func renderTraces(t *testing.T, parallel int) (chrome, jsonl []byte) {
	t.Helper()
	specs, labels, err := harness.TracedConfigSpecs(
		"fft", apps.Tiny, 4, []harness.LayerConfig{{"A", "O"}, {"B", "B"}}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	s := harness.NewSession(parallel)
	results, err := s.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	runs := harness.TraceRuns(labels, results)
	if len(runs) != len(specs) {
		t.Fatalf("traced %d of %d runs", len(runs), len(specs))
	}
	var cb, jb bytes.Buffer
	if err := trace.WriteChromeMulti(&cb, runs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&jb, runs); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestTraceDeterminism pins the load-bearing property of the trace
// layer: the same RunSpecs produce byte-identical trace files whether
// the runs execute serially or 8-wide through the parallel runner.
func TestTraceDeterminism(t *testing.T) {
	chromeSerial, jsonlSerial := renderTraces(t, 1)
	chromeWide, jsonlWide := renderTraces(t, 8)
	if !bytes.Equal(chromeSerial, chromeWide) {
		t.Fatal("chrome trace differs between serial and 8-wide execution")
	}
	if !bytes.Equal(jsonlSerial, jsonlWide) {
		t.Fatal("jsonl trace differs between serial and 8-wide execution")
	}

	// The chrome output must also be loadable JSON with real events.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeSerial, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("suspiciously few trace events: %d", len(doc.TraceEvents))
	}
}

// TestTracedRunCarriesProfileAndTimeline checks that a traced run's
// Result exposes all three observability products.
func TestTracedRunCarriesProfileAndTimeline(t *testing.T) {
	spec := harness.DefaultSpec("fft", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 4
	spec.Trace = true
	spec.TraceSample = 5000
	res, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Trace
	if d == nil || len(d.Events) == 0 {
		t.Fatal("traced run captured no events")
	}
	if d.Procs != 4 {
		t.Fatalf("trace procs = %d, want 4", d.Procs)
	}
	if d.Hot == nil || len(d.Hot.Pages) == 0 {
		t.Fatal("traced run has no hot-page profile")
	}
	if len(d.Samples) == 0 {
		t.Fatal("traced run has no breakdown timeline")
	}
	// Timeline deltas must sum to the end-of-run breakdown.
	var fromSamples, fromStats int64
	for _, s := range d.Samples {
		for _, v := range s.Delta {
			fromSamples += v
		}
	}
	fromStats = res.Stats.GrandTotal()
	if fromSamples != fromStats {
		t.Fatalf("timeline sums to %d cycles, breakdown has %d", fromSamples, fromStats)
	}

	// An untraced run of the same spec must not carry trace data (and
	// memoization must keep the two separate).
	spec.Trace = false
	spec.TraceSample = 0
	plain, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced run carries trace data")
	}
	if plain.Cycles != res.Cycles {
		t.Fatalf("tracing perturbed the simulation: %d vs %d cycles", plain.Cycles, res.Cycles)
	}
}
