// Package harness assembles machines, protocols and applications into
// the paper's experiments: the layer-cost configuration grid (A/H/B/W/B+
// communication x O/H/B protocol), the speedup and breakdown figures,
// and the tables.
package harness

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/consistency"
	"swsm/internal/core"
	"swsm/internal/fault"
	"swsm/internal/hetero"
	"swsm/internal/obs"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/proto/ideal"
	"swsm/internal/proto/lrc"
	"swsm/internal/proto/scfg"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// ProtocolKind names a protocol family.
type ProtocolKind string

// The protocol families of the study, plus the classic-LRC baseline
// extension (distributed diffs fetched on fault, TreadMarks style).
const (
	HLRC  ProtocolKind = "hlrc"
	SC    ProtocolKind = "sc"
	LRC   ProtocolKind = "lrc"
	Ideal ProtocolKind = "ideal"
)

// RunSpec describes one simulation run.
type RunSpec struct {
	App      string
	Scale    apps.Scale
	Protocol ProtocolKind
	Procs    int
	Comm     comm.Params
	Costs    proto.Costs
	// SCBlockOverride, if nonzero, replaces the application's preferred
	// SC granularity (used by the granularity ablation).
	SCBlockOverride int
	// CacheEnabled toggles the node memory hierarchy (on by default via
	// DefaultSpec).
	CacheEnabled bool
	// PollQuantum overrides the back-edge polling granularity (0 =
	// default).
	PollQuantum int64
	// DisablePlacement leaves every page/block home round-robin instead
	// of honoring application data placement (ablation).
	DisablePlacement bool
	// NoProtocolPollution removes protocol-induced cache pollution
	// (ablation).
	NoProtocolPollution bool
	// SoftwareAccessControl charges Shasta-style instrumentation on every
	// shared access (the paper's Table-1 costs, which it reports but does
	// not simulate) — used to explore the all-software SC comparison the
	// paper leaves to "further research".
	SoftwareAccessControl bool
	// HLRCUnitShift overrides HLRC's coherence unit to 2^shift bytes
	// (0 = the 4 KB page).  Sub-page units give the fine-grained
	// delayed-consistency multiple-writer protocol of the paper's
	// referee note.
	HLRCUnitShift uint
	// Trace enables the observability layer for this run: the Result
	// carries a captured event trace, hot-object profile and (if
	// TraceSample > 0) breakdown timeline.  Part of the memo key, so
	// traced and untraced runs of the same point cache separately.
	Trace bool
	// TraceSample snapshots the Figure-4 breakdown every N cycles (0 =
	// no timeline).  Implies nothing unless Trace is set.
	TraceSample int64
	// Fault configures deterministic fault injection (drops, duplicates,
	// delays, node pauses, NI stalls) plus the reliable transport that
	// absorbs it.  The zero value is the paper's perfectly reliable
	// fabric.  Part of the memo key: faulted and clean runs of the same
	// point cache separately.
	Fault fault.Spec
	// Hetero configures the heterogeneity plane: per-node machine models
	// (slow CPUs, accelerator nodes, asymmetric links) and the adaptive
	// home/grain placement policies.  The zero value is the paper's
	// uniform machine.  Part of the memo key: heterogeneous and uniform
	// runs of the same point cache separately.  A non-empty Placement
	// implies DisablePlacement (both the static round-robin baseline and
	// the adaptive policy start from round-robin homes, so adaptive gains
	// are attributable to migration, not to ignoring app placement).
	Hetero hetero.Spec
	// Check runs the consistency conformance checker over the run: every
	// load is verified against the writes the protocol's declared model
	// (RC or SC) permits, and a violation fails the run with a
	// *consistency.Violation error.  Part of the memo key: checked and
	// unchecked runs cache separately (checking records the full access
	// history).
	Check bool
}

// DefaultSpec is the paper's base system (AO) for an application.
func DefaultSpec(app string, prot ProtocolKind) RunSpec {
	return RunSpec{
		App: app, Scale: apps.Base, Protocol: prot, Procs: 16,
		Comm: comm.Achievable(), Costs: proto.OriginalCosts(),
		CacheEnabled: true,
	}
}

// Result is one run's outcome.
type Result struct {
	Spec    RunSpec
	Cycles  int64
	Stats   *stats.Machine
	Machine *core.Machine
	// Trace holds the captured observability data when Spec.Trace was
	// set: events, breakdown timeline samples, hot-object profile.
	Trace *trace.Data
	// Consistency summarizes what the conformance checker covered when
	// Spec.Check was set (a violation fails the run instead).
	Consistency *consistency.Summary
}

// Run executes a spec: build machine + protocol, set up the app, run all
// threads, verify the result.
func Run(spec RunSpec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with an observability context: if ctx carries a
// logger (obs.WithLogger) the run logs its start and outcome at debug
// level, tagged with the job ID the service attached at enqueue
// (obs.WithJob) — the leg of the per-job log trail that crosses from
// the scheduler into the simulation.  The simulation itself never
// consults ctx: results stay byte-identical with or without
// instrumentation, and an unannotated context costs two nil checks.
func RunContext(ctx context.Context, spec RunSpec) (*Result, error) {
	l := obs.Log(ctx)
	var start time.Time
	if l != nil {
		start = time.Now()
		l.LogAttrs(ctx, slog.LevelDebug, "simulate",
			slog.String("app", spec.App),
			slog.String("protocol", string(spec.Protocol)),
			slog.Int("procs", spec.Procs))
	}
	inst, err := apps.New(spec.App, spec.Scale)
	var res *Result
	if err == nil {
		res, err = RunInstance(spec, inst, nil)
	}
	if l != nil {
		if err != nil {
			l.LogAttrs(ctx, slog.LevelWarn, "simulate failed",
				slog.String("app", spec.App),
				slog.String("protocol", string(spec.Protocol)),
				slog.Duration("wall", time.Since(start)),
				slog.String("error", err.Error()))
		} else {
			l.LogAttrs(ctx, slog.LevelDebug, "simulate done",
				slog.String("app", spec.App),
				slog.String("protocol", string(spec.Protocol)),
				slog.Int64("cycles", res.Cycles),
				slog.Duration("wall", time.Since(start)))
		}
	}
	return res, err
}

// RunInstance executes a spec against an explicit application instance,
// optionally substituting the protocol (newProt non-nil) — the entry
// point the litmus shrinker and the known-bad-protocol oracle tests
// need, since neither the shrunken program nor a deliberately broken
// protocol lives in a registry.  Run(spec) is RunInstance with the
// registry app and the spec's protocol.
func RunInstance(spec RunSpec, inst apps.Instance, newProt func() proto.Protocol) (*Result, error) {
	cfg := core.DefaultConfig()
	cfg.Procs = spec.Procs
	cfg.Comm = spec.Comm
	cfg.Costs = spec.Costs
	cfg.CacheEnabled = spec.CacheEnabled
	cfg.MemLimit = inst.MemBytes()
	if spec.PollQuantum > 0 {
		cfg.PollQuantum = spec.PollQuantum
	}
	cfg.DisablePlacement = spec.DisablePlacement
	cfg.NoProtocolPollution = spec.NoProtocolPollution
	if err := spec.Fault.Validate(); err != nil {
		return nil, err
	}
	cfg.Fault = spec.Fault
	if err := spec.Hetero.Validate(); err != nil {
		return nil, err
	}
	cfg.Hetero = spec.Hetero
	if spec.Hetero.Placement != hetero.PlaceApp {
		// rr and adaptive both start from round-robin homes; adaptive must
		// earn its keep by migrating, not by ignoring app placement.
		cfg.DisablePlacement = true
	}
	if spec.SoftwareAccessControl {
		// ~2 extra instructions per shared reference approximates the
		// Table-1 instrumentation percentages at the 1-IPC model.
		cfg.AccessInstrCycles = 2
	}

	var p proto.Protocol
	if newProt != nil {
		p = newProt()
		if spec.Protocol == Ideal {
			cfg.SharedMem = true
		}
	} else {
		switch spec.Protocol {
		case HLRC:
			if spec.HLRCUnitShift != 0 && spec.Hetero.Grain == hetero.GrainAdaptive {
				return nil, fmt.Errorf("harness: HLRCUnitShift and adaptive grain are mutually exclusive")
			}
			p = hlrc.New(hlrc.Config{Costs: spec.Costs, UnitShift: spec.HLRCUnitShift,
				Hetero: spec.Hetero})
		case LRC:
			p = lrc.New(lrc.Config{Costs: spec.Costs})
		case SC:
			bs := inst.SCBlock()
			if spec.SCBlockOverride > 0 {
				bs = spec.SCBlockOverride
			}
			p = scfg.New(scfg.Config{Costs: spec.Costs, BlockSize: bs})
		case Ideal:
			p = ideal.New()
			cfg.SharedMem = true
		default:
			return nil, fmt.Errorf("harness: unknown protocol %q", spec.Protocol)
		}
	}

	var rec *consistency.Recorder
	if spec.Check {
		// Check against the model the protocol declares; an undeclared
		// protocol is held to the weakest supported contract.
		model := proto.ModelRC
		if md, ok := p.(proto.ModelDeclarer); ok {
			model = md.ConsistencyModel()
		}
		rec = consistency.NewRecorder(model, cfg.Procs)
		cfg.Check = rec
	}

	var tr *trace.Tracer
	if spec.Trace {
		// Capture mode: events are retained in memory and serialized by
		// the caller after the run, so concurrently executing runs (the
		// parallel sweep runner) cannot interleave output.
		tr = trace.NewCapture(trace.Options{
			Profile:     true,
			SampleEvery: spec.TraceSample,
		})
		cfg.Tracer = tr
	}

	m := core.NewMachine(cfg, p)
	inst.Setup(m)
	cycles, err := m.Run(inst.Run)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", spec.App, spec.Protocol, err)
	}
	if err := inst.Verify(m); err != nil {
		return nil, fmt.Errorf("harness: %s on %s failed verification: %w", spec.App, spec.Protocol, err)
	}
	res := &Result{Spec: spec, Cycles: cycles, Stats: m.Stats, Machine: m}
	if rec != nil {
		if v := rec.Check(); v != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", spec.App, spec.Protocol, v)
		}
		sum := rec.CheckSummary()
		res.Consistency = &sum
	}
	if tr != nil {
		res.Trace = tr.Data()
		res.Trace.Procs = spec.Procs
	}
	return res, nil
}

// SequentialBaseline runs the app single-threaded on the ideal machine,
// the denominator of every speedup in the paper ("the same best
// sequential version").  Sweeps should prefer Session.SequentialBaseline,
// which memoizes the run per (app, scale).
func SequentialBaseline(app string, scale apps.Scale, cacheEnabled bool) (int64, error) {
	res, err := Run(baselineSpec(app, scale, cacheEnabled))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// Speedup runs spec and reports cycles(seq)/cycles(parallel), using a
// one-off parallel session (spec and baseline run concurrently).
func Speedup(spec RunSpec) (float64, *Result, error) {
	return NewSession(0).Speedup(spec)
}
