package harness

import (
	"fmt"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/proto"
)

// Table1 renders the applications table: name, problem size (ours and
// the paper's), and the Shasta software-instrumentation cost from the
// paper's Table 1 (which we report but — like the paper — do not charge,
// since SC assumes free hardware access control).
func Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-28s %-20s %s\n", "Application", "Problem size (scaled)", "Paper size", "Instrum. cost")
	for _, name := range apps.Names() {
		info, _ := apps.Lookup(name)
		if info.RestructuredOf != "" {
			continue // Table 1 lists originals; restructured share sizes
		}
		fmt.Fprintf(&sb, "%-16s %-28s %-20s %d%%\n",
			info.Name, info.BaseSize, info.PaperSize, info.InstrumentationPct)
	}
	return sb.String()
}

// Table2 renders the communication parameter sets.
func Table2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %12s %12s %12s %12s %12s\n",
		"Parameter", "Achievable", "Best", "Halfway", "Worse", "B+")
	sets := []comm.Params{comm.Achievable(), comm.Best(), comm.Halfway(), comm.Worse(), comm.BetterThanBest()}
	row := func(name string, get func(comm.Params) string) {
		fmt.Fprintf(&sb, "%-22s", name)
		for _, p := range sets {
			fmt.Fprintf(&sb, " %12s", get(p))
		}
		sb.WriteByte('\n')
	}
	row("Host overhead (cy)", func(p comm.Params) string { return fmt.Sprint(p.HostOverhead) })
	row("NI occupancy (cy/pkt)", func(p comm.Params) string { return fmt.Sprint(p.NIOccupancy) })
	row("Msg handling (cy)", func(p comm.Params) string { return fmt.Sprint(p.MsgHandling) })
	row("Link latency (cy)", func(p comm.Params) string { return fmt.Sprint(p.LinkLatency) })
	row("I/O bus (MB/s@200MHz)", func(p comm.Params) string {
		mb := p.BandwidthMBs()
		if mb < 0 {
			return "inf"
		}
		return fmt.Sprintf("%.0f", mb)
	})
	return sb.String()
}

// Table3 renders the protocol cost sets.
func Table3() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-26s %10s %10s %10s   %s\n", "Parameter", "Original", "Halfway", "Best", "Units")
	sets := []proto.Costs{proto.OriginalCosts(), proto.HalfwayCosts(), proto.BestCosts()}
	row := func(name, units string, get func(proto.Costs) string) {
		fmt.Fprintf(&sb, "%-26s", name)
		for _, c := range sets {
			fmt.Fprintf(&sb, " %10s", get(c))
		}
		fmt.Fprintf(&sb, "   %s\n", units)
	}
	q4 := func(v int64) string { return fmt.Sprintf("%.2f", float64(v)/4) }
	row("Page protection", "cycles/page", func(c proto.Costs) string { return fmt.Sprint(c.PageProtect) })
	row("  (call startup)", "cycles/call", func(c proto.Costs) string { return fmt.Sprint(c.PageProtectStartup) })
	row("Diff creation (compare)", "cycles/word", func(c proto.Costs) string { return q4(c.DiffCompareQ4) })
	row("Diff creation (write)", "cycles/word", func(c proto.Costs) string { return q4(c.DiffWriteQ4) })
	row("Diff application", "cycles/word", func(c proto.Costs) string { return q4(c.DiffApplyQ4) })
	row("Twin creation", "cycles/word", func(c proto.Costs) string { return q4(c.TwinQ4) })
	row("Handler cost", "cycles + x", func(c proto.Costs) string { return fmt.Sprint(c.HandlerBase) })
	row("  (per list element)", "cycles/item", func(c proto.Costs) string { return fmt.Sprint(c.HandlerPerItem) })
	row("Fault entry", "cycles", func(c proto.Costs) string { return fmt.Sprint(c.FaultBase) })
	return sb.String()
}

// Table4Row is one application's protocol-activity split under HLRC at
// the base (AO) configuration.
type Table4Row struct {
	App        string
	TotalPct   float64
	HandlerPct float64
	DiffPct    float64
}

// Table4 measures the percentage of processor time spent in protocol
// activity and its split into diff computation and handler execution
// (HLRC, base configuration), for every application (one-off session).
func Table4(scale apps.Scale, procs int) ([]Table4Row, error) {
	return NewSession(0).Table4(scale, procs)
}

// Table4 runs every application's base-configuration HLRC run through
// the session's worker pool; rows come back in apps.Names() order.
func (s *Session) Table4(scale apps.Scale, procs int) ([]Table4Row, error) {
	names := apps.Names()
	specs := make([]RunSpec, len(names))
	for i, name := range names {
		spec := DefaultSpec(name, HLRC)
		spec.Scale = scale
		spec.Procs = procs
		specs[i] = spec
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	rows := make([]Table4Row, 0, len(names))
	for i, name := range names {
		total, diff, handler := results[i].Stats.ProtocolPercent()
		rows = append(rows, Table4Row{App: name, TotalPct: total, DiffPct: diff, HandlerPct: handler})
	}
	return rows, nil
}

// FormatTable4 renders the protocol-activity table.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %10s %10s\n", "Application", "Total%", "Handler%", "DiffComp%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %8.1f %10.1f %10.1f\n", r.App, r.TotalPct, r.HandlerPct, r.DiffPct)
	}
	return sb.String()
}

// Table5Row summarizes, for one application under HLRC, which system
// layer matters more from the base system, whether halfway-comm beats
// best-protocol, and the cheapest Figure-3 configuration reaching half
// the ideal speedup (the paper's "what does it take" column).
type Table5Row struct {
	App string
	// CommFirst: improving communication alone (BO) gains more than
	// improving protocol alone (AB).
	CommFirst bool
	// HBBeatsBO: halfway communication with best protocol beats best
	// communication with original protocol.
	HBBeatsBO bool
	// Needed is the first configuration on the ladder AO, AB, BO, BB, B+B
	// achieving at least half the ideal speedup ("-" if none).
	Needed string
	// Speedups for reference.
	AO, AB, BO, HB, BB, BPlusB, Ideal float64
}

// Table5 computes the per-application summary for HLRC (one-off
// session).
func Table5(scale apps.Scale, procs int) ([]Table5Row, error) {
	return NewSession(0).Table5(scale, procs)
}

// Table5 schedules every application's full run set — sequential
// baseline, ideal machine, and the six-configuration HLRC ladder — in
// one batch over the session's worker pool, then assembles the rows
// from the index-ordered results.
func (s *Session) Table5(scale apps.Scale, procs int) ([]Table5Row, error) {
	ladder := []LayerConfig{{"A", "O"}, {"A", "B"}, {"B", "O"}, {"H", "B"}, {"B", "B"}, {"B+", "B"}}
	names := apps.Names()
	stride := 2 + len(ladder) // baseline, ideal, ladder per app
	specs := make([]RunSpec, 0, len(names)*stride)
	for _, name := range names {
		specs = append(specs, baselineSpec(name, scale, true), idealSpec(name, scale, procs))
		for _, lc := range ladder {
			spec := DefaultSpec(name, HLRC)
			spec.Scale = scale
			spec.Procs = procs
			if err := lc.Apply(&spec); err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("table 5: %w", err)
	}
	rows := make([]Table5Row, 0, len(names))
	for ai, name := range names {
		base := results[ai*stride : (ai+1)*stride]
		seq := base[0].Cycles
		sp := map[string]float64{}
		for li, lc := range ladder {
			sp[lc.Label()] = float64(seq) / float64(base[2+li].Cycles)
		}
		row := Table5Row{
			App:       name,
			CommFirst: sp["BO"] >= sp["AB"],
			HBBeatsBO: sp["HB"] > sp["BO"],
			AO:        sp["AO"], AB: sp["AB"], BO: sp["BO"], HB: sp["HB"],
			BB: sp["BB"], BPlusB: sp["B+B"],
			Ideal: float64(seq) / float64(base[1].Cycles),
		}
		row.Needed = "-"
		for _, label := range []string{"AO", "AB", "BO", "BB", "B+B"} {
			if sp[label] >= row.Ideal/2 {
				row.Needed = label
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders the summary table.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %10s %8s %6s %6s %6s %6s %6s %6s %6s\n",
		"Application", "comm-first", "HB>BO", "needs", "AO", "AB", "BO", "HB", "BB", "B+B", "Ideal")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10v %10v %8s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			r.App, r.CommFirst, r.HBBeatsBO, r.Needed, r.AO, r.AB, r.BO, r.HB, r.BB, r.BPlusB, r.Ideal)
	}
	return sb.String()
}
