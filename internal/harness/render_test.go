package harness

import (
	"strings"
	"testing"

	"swsm/internal/stats"
)

func TestRenderFigure3(t *testing.T) {
	b := &AppBar{
		App:   "toy",
		Ideal: 16,
		HLRC:  map[string]float64{"AO": 4, "BB": 8},
		SC:    map[string]float64{"AO": 2, "BB": 12},
	}
	cfgs := []LayerConfig{{"B", "B"}, {"A", "O"}}
	out := RenderFigure3(b, cfgs)
	if !strings.Contains(out, "<- base") {
		t.Fatal("base marker missing")
	}
	if !strings.Contains(out, "ideal") {
		t.Fatal("ideal bar missing")
	}
	// The 16x ideal bar must be the longest.
	lines := strings.Split(out, "\n")
	maxHashes, idealHashes := 0, 0
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes = n
		}
		if strings.Contains(l, "ideal") {
			idealHashes = n
		}
	}
	if idealHashes != maxHashes {
		t.Fatalf("ideal bar (%d) not the longest (%d)", idealHashes, maxHashes)
	}
}

func TestRenderFigure4StacksTo100(t *testing.T) {
	row := Figure4Row{App: "toy", Proto: HLRC, Config: "AO", Cycles: 100}
	row.Breakdown[stats.Busy] = 50
	row.Breakdown[stats.DataWait] = 25
	row.Breakdown[stats.LockWait] = 25
	out := RenderFigure4([]Figure4Row{row})
	if !strings.Contains(out, "B") || !strings.Contains(out, "D") || !strings.Contains(out, "L") {
		t.Fatalf("missing category glyphs:\n%s", out)
	}
	// Busy occupies half the bar.
	line := strings.Split(out, "\n")[1]
	if got := strings.Count(line, "B"); got < 22 || got > 26 {
		t.Fatalf("busy glyph count %d, want ~24 of 48", got)
	}
}

func TestBarClamps(t *testing.T) {
	if len(bar(100, 10)) != chartWidth {
		t.Fatal("overlong bar not clamped")
	}
	if len(bar(-5, 10)) != 0 {
		t.Fatal("negative bar not clamped")
	}
	if len(bar(5, 0)) == 0 {
		t.Fatal("zero max should not blank the bar")
	}
}
