package harness_test

import (
	"strings"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/harness"
)

func TestTable4ShapeHolds(t *testing.T) {
	rows, err := harness.Table4(apps.Tiny, 8)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]harness.Table4Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.TotalPct < 0 || r.TotalPct > 100 {
			t.Fatalf("%s: protocol%% out of range: %f", r.App, r.TotalPct)
		}
	}
	// The migratory/multi-writer apps must show diff time (at Tiny scale
	// even the regular apps diff a little at partition boundaries, so
	// compare against them rather than asserting zero).
	for _, app := range []string{"water-nsquared", "radix"} {
		if byApp[app].DiffPct <= 0 {
			t.Fatalf("%s: diff%% = %f, want > 0", app, byApp[app].DiffPct)
		}
		if byApp[app].DiffPct <= byApp["lu"].DiffPct {
			t.Fatalf("%s diff%% (%f) should exceed lu's (%f)",
				app, byApp[app].DiffPct, byApp["lu"].DiffPct)
		}
	}
	out := harness.FormatTable4(rows)
	if !strings.Contains(out, "water-nsquared") {
		t.Fatal("format lost rows")
	}
}

func TestTable5Consistency(t *testing.T) {
	rows, err := harness.Table5(apps.Tiny, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ideal <= 0 {
			t.Fatalf("%s: nonpositive ideal", r.App)
		}
		// The ladder must not be inverted end to end.
		if r.BPlusB < r.AO*0.8 {
			t.Fatalf("%s: B+B (%f) worse than AO (%f)", r.App, r.BPlusB, r.AO)
		}
		// commFirst is defined as BO >= AB.
		if r.CommFirst != (r.BO >= r.AB) {
			t.Fatalf("%s: commFirst flag inconsistent with data", r.App)
		}
	}
	out := harness.FormatTable5(rows)
	if !strings.Contains(out, "needs") {
		t.Fatal("format header missing")
	}
}

func TestPerProcBreakdownPartitions(t *testing.T) {
	spec := harness.DefaultSpec("lu", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 4
	res, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Each processor's categories sum to its own finish time: no more
	// than the parallel execution time, and within a sliver of it (the
	// run ends at a barrier; only release-message skew remains).
	for i := range res.Stats.Procs {
		got := res.Stats.Procs[i].Total()
		if got > res.Stats.ExecCycles || got < res.Stats.ExecCycles*95/100 {
			t.Fatalf("proc %d breakdown %d vs exec %d", i, got, res.Stats.ExecCycles)
		}
	}
	out := harness.PerProcBreakdown(res)
	if !strings.Contains(out, "total") || len(strings.Split(out, "\n")) < 5 {
		t.Fatalf("per-proc table malformed:\n%s", out)
	}
}
