package harness

import (
	"fmt"

	"swsm/internal/comm"
	"swsm/internal/core"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/proto/scfg"
	"swsm/internal/sim"
)

// Validation microbenchmarks, the analogue of the paper's Appendix
// ("we performed extensive validation of the simulator against real
// systems"): each drives one primitive operation of the machine and
// reports the measured simulated cost, which the tests compare against
// analytically computed expectations from the parameter sets.

// MicroResult is one validation measurement.
type MicroResult struct {
	Name   string
	Cycles int64 // measured simulated cycles per operation
}

// commOnlyParams builds a machine config with protocol costs zeroed so
// communication costs can be measured in isolation.
func commOnlyParams(p comm.Params, procs int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 32 << 20
	cfg.Comm = p
	cfg.Costs = proto.BestCosts()
	cfg.CacheEnabled = false
	return cfg
}

// MeasurePageFetch measures one cold HLRC page fetch (fault to resume)
// under the given communication parameters, with protocol costs zeroed.
func MeasurePageFetch(p comm.Params) (int64, error) {
	cfg := commOnlyParams(p, 2)
	m := core.NewMachine(cfg, hlrc.New(hlrc.Config{Costs: proto.BestCosts()}))
	addr := m.AllocPage(4096) // page 1: home is node 1
	var got sim.Time
	_, err := m.Run(func(t *core.Thread) {
		if t.Proc() == 0 {
			start := t.Now()
			t.Load32(addr) // page home may be node 0 or 1; pick a remote one below
			got = t.Now() - start
		}
	})
	if err != nil {
		return 0, err
	}
	// If page 1's home was node 0 the load was free; detect and re-run
	// against an explicitly remote page.
	if got <= 2 {
		cfg2 := commOnlyParams(p, 2)
		m2 := core.NewMachine(cfg2, hlrc.New(hlrc.Config{Costs: proto.BestCosts()}))
		a2 := m2.AllocPage(2 * 4096)
		var g2 sim.Time
		_, err := m2.Run(func(t *core.Thread) {
			if t.Proc() == 0 {
				// Page with odd page number lives on node 1.
				start := t.Now()
				t.Load32(a2 + 4096)
				g2 = t.Now() - start
			}
		})
		if err != nil {
			return 0, err
		}
		return int64(g2), nil
	}
	return int64(got), nil
}

// MeasureBlockFetch measures one cold SC block read miss.
func MeasureBlockFetch(p comm.Params, blockSize int) (int64, error) {
	cfg := commOnlyParams(p, 2)
	m := core.NewMachine(cfg, scfg.New(scfg.Config{Costs: proto.BestCosts(), BlockSize: blockSize}))
	region := m.AllocPage(int64(4*blockSize) + 4096)
	// Pick a block homed on node 1 (round robin by block number), so the
	// access from node 0 is remote.
	addr := region
	if (region/int64(blockSize))%2 == 0 {
		addr += int64(blockSize)
	}
	var got sim.Time
	_, err := m.Run(func(t *core.Thread) {
		if t.Proc() == 0 {
			start := t.Now()
			t.Load32(addr)
			got = t.Now() - start
		}
	})
	if err != nil {
		return 0, err
	}
	return int64(got), nil
}

// MeasureBarrier measures one barrier crossing (all threads arriving
// together) for the given processor count.
func MeasureBarrier(p comm.Params, procs int) (int64, error) {
	cfg := commOnlyParams(p, procs)
	m := core.NewMachine(cfg, hlrc.New(hlrc.Config{Costs: proto.BestCosts()}))
	cycles, err := m.Run(func(t *core.Thread) {
		t.Barrier(0)
	})
	if err != nil {
		return 0, err
	}
	return cycles, nil
}

// MeasureLockRoundTrip measures an uncontended remote lock acquire +
// release pair.
func MeasureLockRoundTrip(p comm.Params) (int64, error) {
	cfg := commOnlyParams(p, 2)
	m := core.NewMachine(cfg, hlrc.New(hlrc.Config{Costs: proto.BestCosts()}))
	var got sim.Time
	_, err := m.Run(func(t *core.Thread) {
		if t.Proc() == 0 {
			start := t.Now()
			t.Acquire(1) // lock 1's manager is node 1: remote round trip
			t.Release(1)
			got = t.Now() - start
		}
	})
	if err != nil {
		return 0, err
	}
	return int64(got), nil
}

// ExpectedOneWay computes the analytic one-way small-message latency for
// a payload of n bytes (sender I/O bus + NI + link + NI + receiver I/O
// bus), excluding host overhead and handling cost.
func ExpectedOneWay(p comm.Params, payload int64) int64 {
	bus := sim.NewBandwidth("x", p.IOBusBytesNum, p.IOBusBytesDen)
	wire := payload + comm.HeaderBytes
	return bus.TransferCycles(wire)*2 + 2*p.NIOccupancy + p.LinkLatency
}

// ValidateAll runs the microbenchmark set at the achievable parameters
// and returns the results (used by cmd/svmbench -validate and tests).
func ValidateAll() ([]MicroResult, error) {
	p := comm.Achievable()
	var out []MicroResult
	pf, err := MeasurePageFetch(p)
	if err != nil {
		return nil, err
	}
	out = append(out, MicroResult{"hlrc-page-fetch", pf})
	bf, err := MeasureBlockFetch(p, 64)
	if err != nil {
		return nil, err
	}
	out = append(out, MicroResult{"sc-block-fetch-64B", bf})
	lk, err := MeasureLockRoundTrip(p)
	if err != nil {
		return nil, err
	}
	out = append(out, MicroResult{"lock-acquire-release", lk})
	for _, procs := range []int{2, 4, 8, 16} {
		bar, err := MeasureBarrier(p, procs)
		if err != nil {
			return nil, err
		}
		out = append(out, MicroResult{fmt.Sprintf("barrier-%dp", procs), bar})
	}
	return out, nil
}
