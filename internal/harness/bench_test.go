package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchReport(benches ...BenchResult) BenchReport {
	return BenchReport{Rev: "test", GoOS: "linux", GoArch: "amd64", Benches: benches}
}

func TestCompareBenchGate(t *testing.T) {
	base := benchReport(
		BenchResult{Name: "engine/chain-events", CyclesPerSec: 100e6, AllocsPerOp: 0},
		BenchResult{Name: "fig3/fft-tiny-4p", CyclesPerSec: 200e6, AllocsPerOp: 870},
		BenchResult{Name: "retired/old-bench", CyclesPerSec: 1e6, AllocsPerOp: 0},
	)

	cases := []struct {
		name     string
		cur      BenchReport
		wantFail []string // substrings that must each appear in some failure
	}{
		{
			name: "identical passes",
			cur: benchReport(
				BenchResult{Name: "engine/chain-events", CyclesPerSec: 100e6, AllocsPerOp: 0},
				BenchResult{Name: "fig3/fft-tiny-4p", CyclesPerSec: 200e6, AllocsPerOp: 870},
			),
		},
		{
			name: "9 percent slowdown within tolerance",
			cur: benchReport(
				BenchResult{Name: "engine/chain-events", CyclesPerSec: 91e6, AllocsPerOp: 0}),
		},
		{
			name: "11 percent slowdown fails",
			cur: benchReport(
				BenchResult{Name: "engine/chain-events", CyclesPerSec: 89e6, AllocsPerOp: 0}),
			wantFail: []string{"engine/chain-events", "cycles/sec regressed"},
		},
		{
			name: "speedup passes",
			cur: benchReport(
				BenchResult{Name: "engine/chain-events", CyclesPerSec: 300e6, AllocsPerOp: 0}),
		},
		{
			name: "single allocation on zero baseline fails",
			cur: benchReport(
				BenchResult{Name: "engine/chain-events", CyclesPerSec: 100e6, AllocsPerOp: 1}),
			wantFail: []string{"engine/chain-events", "allocs/op grew"},
		},
		{
			name: "one alloc of jitter on whole-run bench passes",
			cur: benchReport(
				BenchResult{Name: "fig3/fft-tiny-4p", CyclesPerSec: 200e6, AllocsPerOp: 871}),
		},
		{
			name: "real alloc regression on whole-run bench fails",
			cur: benchReport(
				BenchResult{Name: "fig3/fft-tiny-4p", CyclesPerSec: 200e6, AllocsPerOp: 1200}),
			wantFail: []string{"fig3/fft-tiny-4p", "allocs/op grew"},
		},
		{
			name: "bench absent from baseline never fails",
			cur: benchReport(
				BenchResult{Name: "engine/brand-new", CyclesPerSec: 1, AllocsPerOp: 9999}),
		},
		{
			name: "bench absent from current never fails",
			cur:  benchReport(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures := CompareBench(base, tc.cur)
			if len(tc.wantFail) == 0 {
				if len(failures) != 0 {
					t.Fatalf("unexpected failures: %v", failures)
				}
				return
			}
			joined := strings.Join(failures, "\n")
			for _, want := range tc.wantFail {
				if !strings.Contains(joined, want) {
					t.Fatalf("failures %q missing %q", joined, want)
				}
			}
		})
	}
}

func TestLoadBenchReportRoundTrip(t *testing.T) {
	want := benchReport(
		BenchResult{Name: "engine/chain-events", Iters: 1000, NsPerOp: 5.5,
			OpsPerSec: 2e8, SimCycles: 1000, CyclesPerSec: 2e8,
			AllocsPerOp: 0.25, WallSeconds: 0.01})
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != want.Rev || len(got.Benches) != 1 || got.Benches[0] != want.Benches[0] {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}
