package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"swsm/internal/stats"
)

// CSV exporters so the regenerated figures can be re-plotted with any
// external tool.

// WriteFigure3CSV emits one row per (protocol, configuration) bar:
// app,protocol,config,speedup.
func WriteFigure3CSV(w io.Writer, bars []*AppBar, configs []LayerConfig) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "protocol", "config", "speedup"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, b := range bars {
		if err := cw.Write([]string{b.App, "ideal", "ideal", f(b.Ideal)}); err != nil {
			return err
		}
		for _, lc := range configs {
			if err := cw.Write([]string{b.App, "hlrc", lc.Label(), f(b.HLRC[lc.Label()])}); err != nil {
				return err
			}
			if err := cw.Write([]string{b.App, "sc", lc.Label(), f(b.SC[lc.Label()])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits one row per breakdown bar with a column per
// category (average cycles per processor).
func WriteFigure4CSV(w io.Writer, rows []Figure4Row) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "protocol", "config", "cycles"}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		header = append(header, c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.App, string(r.Proto), r.Config, strconv.FormatInt(r.Cycles, 10)}
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			rec = append(rec, strconv.FormatFloat(r.Breakdown[c], 'f', 0, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits one row per sweep point:
// app,protocol,parameter,factor,speedup.
func WriteFigure5CSV(w io.Writer, app string, points []Figure5Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "protocol", "parameter", "factor", "speedup"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{app, string(p.Proto), p.Param, p.Factor,
			strconv.FormatFloat(p.Speedup, 'f', 4, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV emits the protocol-activity split.
func WriteTable4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "total_pct", "handler_pct", "diff_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.App,
			fmt.Sprintf("%.2f", r.TotalPct),
			fmt.Sprintf("%.2f", r.HandlerPct),
			fmt.Sprintf("%.2f", r.DiffPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
