package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"swsm/internal/stats"
	"swsm/internal/trace"
)

// CSV exporters so the regenerated figures can be re-plotted with any
// external tool.

// WriteFigure3CSV emits one row per (protocol, configuration) bar:
// app,protocol,config,speedup.
func WriteFigure3CSV(w io.Writer, bars []*AppBar, configs []LayerConfig) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "protocol", "config", "speedup"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, b := range bars {
		if err := cw.Write([]string{b.App, "ideal", "ideal", f(b.Ideal)}); err != nil {
			return err
		}
		for _, lc := range configs {
			if err := cw.Write([]string{b.App, "hlrc", lc.Label(), f(b.HLRC[lc.Label()])}); err != nil {
				return err
			}
			if err := cw.Write([]string{b.App, "sc", lc.Label(), f(b.SC[lc.Label()])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits one row per breakdown bar with a column per
// category (average cycles per processor).
func WriteFigure4CSV(w io.Writer, rows []Figure4Row) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "protocol", "config", "cycles"}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		header = append(header, c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.App, string(r.Proto), r.Config, strconv.FormatInt(r.Cycles, 10)}
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			rec = append(rec, strconv.FormatFloat(r.Breakdown[c], 'f', 0, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits one row per sweep point:
// app,protocol,parameter,factor,speedup.
func WriteFigure5CSV(w io.Writer, app string, points []Figure5Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "protocol", "parameter", "factor", "speedup"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{app, string(p.Proto), p.Param, p.Factor,
			strconv.FormatFloat(p.Speedup, 'f', 4, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBreakdownTimelineCSV emits a traced run's breakdown time series:
// one row per sample with the cycles each Figure-4 category accrued
// (machine-wide) since the previous sample.  Column order matches the
// figure's category order; summing a column over all rows reproduces the
// end-of-run breakdown total for that category.
func WriteBreakdownTimelineCSV(w io.Writer, samples []trace.Sample) error {
	cw := csv.NewWriter(w)
	header := []string{"cycle"}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		header = append(header, c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{strconv.FormatInt(s.Cycle, 10)}
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			rec = append(rec, strconv.FormatInt(s.Delta[c], 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHotObjectsCSV emits a traced run's hot-object ranking: the top k
// pages (coherence units), locks and barriers, hottest first (all if
// k <= 0).  Sync objects leave the page-only columns zero.
func WriteHotObjectsCSV(w io.Writer, p *trace.Profile, k int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "id", "events", "wait_cycles", "fetches", "diff_bytes", "twins", "invalidations",
	}); err != nil {
		return err
	}
	n := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, ps := range p.TopPages(k) {
		if err := cw.Write([]string{
			"page", n(ps.ID), n(ps.Faults), n(ps.FetchWait), n(ps.Fetches),
			n(ps.DiffBytes), n(ps.Twins), n(ps.Invals),
		}); err != nil {
			return err
		}
	}
	writeSync := func(kind string, rows []trace.SyncStats) error {
		for _, ss := range rows {
			if err := cw.Write([]string{
				kind, n(ss.ID), n(ss.Count), n(ss.Wait), "0", "0", "0", "0",
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeSync("lock", p.TopLocks(k)); err != nil {
		return err
	}
	if err := writeSync("barrier", p.TopBarriers(k)); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV emits the protocol-activity split.
func WriteTable4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "total_pct", "handler_pct", "diff_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.App,
			fmt.Sprintf("%.2f", r.TotalPct),
			fmt.Sprintf("%.2f", r.HandlerPct),
			fmt.Sprintf("%.2f", r.DiffPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
