package harness

import (
	"fmt"
	"sort"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/stats"
)

// LayerConfig names one point of the paper's layer-cost grid: a
// communication parameter set (A, H, B, W, B+) paired with a protocol
// cost set (O, H, B).  The paper's bar labels compose them: "AO" is the
// base system, "BB" both layers idealized, "B+B" the limit
// configuration.
type LayerConfig struct {
	Comm  string // "A", "H", "B", "W", "B+"
	Costs string // "O", "H", "B"
}

// Label formats the configuration the way the paper labels its bars.
func (lc LayerConfig) Label() string { return lc.Comm + lc.Costs }

// Apply fills a RunSpec's layer parameters.
func (lc LayerConfig) Apply(spec *RunSpec) error {
	cp, err := comm.ParamsByName(lc.Comm)
	if err != nil {
		return err
	}
	costs, ok := proto.CostsByName(lc.Costs)
	if !ok {
		return fmt.Errorf("harness: unknown protocol cost set %q", lc.Costs)
	}
	spec.Comm = cp
	spec.Costs = costs
	return nil
}

// Figure3Configs is the configuration ladder of the paper's Figure 3
// speedup bars, best to worst: B+B, BB, AB, BO, AO (base), WO.
var Figure3Configs = []LayerConfig{
	{"B+", "B"}, {"B", "B"}, {"A", "B"}, {"B", "O"}, {"A", "O"}, {"W", "O"},
}

// SynergyConfigs adds the halfway points used in the synergy analysis.
var SynergyConfigs = []LayerConfig{
	{"H", "O"}, {"A", "H"}, {"H", "B"}, {"B", "H"}, {"H", "H"},
}

// AppBar is one application's full Figure-3 bar group.
type AppBar struct {
	App     string
	Ideal   float64 // algorithmic speedup on the ideal machine
	HLRC    map[string]float64
	SC      map[string]float64
	Results map[string]*Result // keyed "hlrc/AO", "sc/BB", ...
}

// Figure3 runs the speedup ladder for one application at the given
// scale and processor count.
func Figure3(app string, scale apps.Scale, procs int, configs []LayerConfig) (*AppBar, error) {
	bar := &AppBar{
		App:  app,
		HLRC: map[string]float64{}, SC: map[string]float64{},
		Results: map[string]*Result{},
	}
	seq, err := SequentialBaseline(app, scale, true)
	if err != nil {
		return nil, err
	}
	// Ideal machine speedup.
	idealSpec := RunSpec{App: app, Scale: scale, Protocol: Ideal, Procs: procs,
		Comm: comm.Best(), Costs: proto.BestCosts(), CacheEnabled: true}
	idealRes, err := Run(idealSpec)
	if err != nil {
		return nil, err
	}
	bar.Ideal = float64(seq) / float64(idealRes.Cycles)
	bar.Results["ideal"] = idealRes

	for _, prot := range []ProtocolKind{HLRC, SC} {
		for _, lc := range configs {
			spec := DefaultSpec(app, prot)
			spec.Scale = scale
			spec.Procs = procs
			if err := lc.Apply(&spec); err != nil {
				return nil, err
			}
			res, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s %s: %w", app, prot, lc.Label(), err)
			}
			sp := float64(seq) / float64(res.Cycles)
			key := string(prot) + "/" + lc.Label()
			bar.Results[key] = res
			if prot == HLRC {
				bar.HLRC[lc.Label()] = sp
			} else {
				bar.SC[lc.Label()] = sp
			}
		}
	}
	return bar, nil
}

// FormatFigure3 renders one app's bars as the paper's figure row.
func FormatFigure3(bar *AppBar, configs []LayerConfig) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (Ideal %.2f)\n", bar.App, bar.Ideal)
	fmt.Fprintf(&sb, "  %-6s", "cfg")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8s", lc.Label())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-6s", "HLRC")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8.2f", bar.HLRC[lc.Label()])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-6s", "SC")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8.2f", bar.SC[lc.Label()])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Figure4Row is one execution-time breakdown bar (averaged over procs,
// normalized to the AO configuration's total, as the paper presents).
type Figure4Row struct {
	App    string
	Proto  ProtocolKind
	Config string
	// Fractions of per-processor time by category.
	Breakdown [stats.NumCategories]float64
	Cycles    int64
}

// Figure4 computes breakdowns for an application across configurations.
func Figure4(app string, scale apps.Scale, procs int, configs []LayerConfig) ([]Figure4Row, error) {
	var out []Figure4Row
	for _, prot := range []ProtocolKind{HLRC, SC} {
		for _, lc := range configs {
			spec := DefaultSpec(app, prot)
			spec.Scale = scale
			spec.Procs = procs
			if err := lc.Apply(&spec); err != nil {
				return nil, err
			}
			res, err := Run(spec)
			if err != nil {
				return nil, err
			}
			row := Figure4Row{App: app, Proto: prot, Config: lc.Label(), Cycles: res.Cycles}
			avg := res.Stats.AverageBreakdown()
			for c := stats.Category(0); c < stats.NumCategories; c++ {
				row.Breakdown[c] = avg[c]
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// PerProcBreakdown captures what the paper's analysis relies on ("to
// analyze the results we always refer to per-processor breakdowns"):
// each processor's time by category for one run.
func PerProcBreakdown(res *Result) string {
	var sb strings.Builder
	st := res.Stats
	fmt.Fprintf(&sb, "  %-5s", "proc")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&sb, "%10s", c.String())
	}
	fmt.Fprintf(&sb, "%10s\n", "total")
	for i := range st.Procs {
		fmt.Fprintf(&sb, "  %-5d", i)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			fmt.Fprintf(&sb, "%10d", st.Procs[i].Time[c])
		}
		fmt.Fprintf(&sb, "%10d\n", st.Procs[i].Total())
	}
	return sb.String()
}

// FormatFigure4 renders breakdown rows.
func FormatFigure4(rows []Figure4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-6s %-5s %10s", "proto", "cfg", "cycles")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&sb, "%9s", c.String())
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-6s %-5s %10d", r.Proto, r.Config, r.Cycles)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			fmt.Fprintf(&sb, "%9.0f", r.Breakdown[c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure5Point is one single-parameter sweep measurement.
type Figure5Point struct {
	Param   string
	Factor  string // "0", "1/2", "1" (base), "2"
	Proto   ProtocolKind
	Speedup float64
}

// Figure5Params are the individually varied communication parameters.
var Figure5Params = []string{"overhead", "occupancy", "bandwidth", "handling"}

// vary builds a Params with only one communication parameter changed by
// scale num/den (0/1 = idealized).
func vary(base comm.Params, param string, num, den int64) comm.Params {
	p := base
	switch param {
	case "overhead":
		p.HostOverhead = base.HostOverhead * num / den
	case "occupancy":
		p.NIOccupancy = base.NIOccupancy * num / den
	case "handling":
		p.MsgHandling = base.MsgHandling * num / den
	case "bandwidth":
		if num == 0 {
			p.IOBusBytesNum = 0 // infinite
		} else {
			// Cost per byte scales by num/den.
			p.IOBusBytesNum = base.IOBusBytesNum * den
			p.IOBusBytesDen = base.IOBusBytesDen * num
		}
	default:
		panic("harness: unknown comm parameter " + param)
	}
	return p
}

// Figure5 sweeps one communication parameter at a time (others at
// achievable values), for both protocols.
func Figure5(app string, scale apps.Scale, procs int) ([]Figure5Point, error) {
	seq, err := SequentialBaseline(app, scale, true)
	if err != nil {
		return nil, err
	}
	factors := []struct {
		label    string
		num, den int64
	}{{"0", 0, 1}, {"1/2", 1, 2}, {"1", 1, 1}, {"2", 2, 1}}
	var out []Figure5Point
	for _, prot := range []ProtocolKind{HLRC, SC} {
		for _, param := range Figure5Params {
			for _, f := range factors {
				spec := DefaultSpec(app, prot)
				spec.Scale = scale
				spec.Procs = procs
				spec.Comm = vary(comm.Achievable(), param, f.num, f.den)
				res, err := Run(spec)
				if err != nil {
					return nil, err
				}
				out = append(out, Figure5Point{
					Param: param, Factor: f.label, Proto: prot,
					Speedup: float64(seq) / float64(res.Cycles),
				})
			}
		}
	}
	return out, nil
}

// FormatFigure5 renders sweep results grouped by parameter.
func FormatFigure5(points []Figure5Point) string {
	var sb strings.Builder
	byKey := map[string][]Figure5Point{}
	var keys []string
	for _, p := range points {
		k := p.Param + "/" + string(p.Proto)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], p)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-20s", k)
		for _, p := range byKey[k] {
			fmt.Fprintf(&sb, "  x%s=%5.2f", p.Factor, p.Speedup)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// OriginalApps lists the original (non-restructured) applications in
// Table 1 order.
func OriginalApps() []string {
	var out []string
	for _, name := range apps.Names() {
		info, _ := apps.Lookup(name)
		if info.RestructuredOf == "" {
			out = append(out, name)
		}
	}
	return out
}

// RestructuredPairs maps original -> restructured app names.
func RestructuredPairs() map[string]string {
	out := map[string]string{}
	for _, name := range apps.Names() {
		info, _ := apps.Lookup(name)
		if info.RestructuredOf != "" {
			out[info.RestructuredOf] = name
		}
	}
	return out
}
