package harness

import (
	"fmt"
	"sort"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// LayerConfig names one point of the paper's layer-cost grid: a
// communication parameter set (A, H, B, W, B+) paired with a protocol
// cost set (O, H, B).  The paper's bar labels compose them: "AO" is the
// base system, "BB" both layers idealized, "B+B" the limit
// configuration.
type LayerConfig struct {
	Comm  string // "A", "H", "B", "W", "B+"
	Costs string // "O", "H", "B"
}

// Label formats the configuration the way the paper labels its bars.
func (lc LayerConfig) Label() string { return lc.Comm + lc.Costs }

// Apply fills a RunSpec's layer parameters.
func (lc LayerConfig) Apply(spec *RunSpec) error {
	cp, err := comm.ParamsByName(lc.Comm)
	if err != nil {
		return err
	}
	costs, ok := proto.CostsByName(lc.Costs)
	if !ok {
		return fmt.Errorf("harness: unknown protocol cost set %q", lc.Costs)
	}
	spec.Comm = cp
	spec.Costs = costs
	return nil
}

// Figure3Configs is the configuration ladder of the paper's Figure 3
// speedup bars, best to worst: B+B, BB, AB, BO, AO (base), WO.
var Figure3Configs = []LayerConfig{
	{"B+", "B"}, {"B", "B"}, {"A", "B"}, {"B", "O"}, {"A", "O"}, {"W", "O"},
}

// SynergyConfigs adds the halfway points used in the synergy analysis.
var SynergyConfigs = []LayerConfig{
	{"H", "O"}, {"A", "H"}, {"H", "B"}, {"B", "H"}, {"H", "H"},
}

// AppBar is one application's full Figure-3 bar group.
type AppBar struct {
	App     string
	Ideal   float64 // algorithmic speedup on the ideal machine
	HLRC    map[string]float64
	SC      map[string]float64
	Results map[string]*Result // keyed "hlrc/AO", "sc/BB", ...
}

// configSlot names one (protocol, layer-config) cell of a sweep, used
// to map index-ordered runner results back to their labels.
type configSlot struct {
	prot  ProtocolKind
	label string
}

// configSpecs expands the protocol x config grid into specs plus the
// slot bookkeeping that labels each index-aligned result.
func configSpecs(app string, scale apps.Scale, procs int, configs []LayerConfig) ([]RunSpec, []configSlot, error) {
	var specs []RunSpec
	var slots []configSlot
	for _, prot := range []ProtocolKind{HLRC, SC} {
		for _, lc := range configs {
			spec := DefaultSpec(app, prot)
			spec.Scale = scale
			spec.Procs = procs
			if err := lc.Apply(&spec); err != nil {
				return nil, nil, err
			}
			specs = append(specs, spec)
			slots = append(slots, configSlot{prot, lc.Label()})
		}
	}
	return specs, slots, nil
}

// TracedConfigSpecs expands the protocol x config grid into specs with
// tracing enabled, returning parallel label slices ("hlrc/AO", ...).
// The specs are deterministic and index-ordered, so serializing the
// runner's results in slice order yields byte-identical trace files
// regardless of execution parallelism.
func TracedConfigSpecs(app string, scale apps.Scale, procs int, configs []LayerConfig, sample int64) ([]RunSpec, []string, error) {
	specs, slots, err := configSpecs(app, scale, procs, configs)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(specs))
	for i := range specs {
		specs[i].Trace = true
		specs[i].TraceSample = sample
		labels[i] = string(slots[i].prot) + "/" + slots[i].label
	}
	return specs, labels, nil
}

// TraceRuns pairs index-aligned labels and results into the trace
// package's serialization input (skipping untraced results).
func TraceRuns(labels []string, results []*Result) []trace.Run {
	runs := make([]trace.Run, 0, len(results))
	for i, res := range results {
		if res == nil || res.Trace == nil {
			continue
		}
		runs = append(runs, trace.Run{Label: labels[i], Data: res.Trace})
	}
	return runs
}

// Figure3Specs expands one application's Figure-3 grid — the parallel
// ideal machine plus the protocol x configuration ladder — into
// index-aligned specs and labels ("ideal", "hlrc/AO", "sc/B+B", ...).
// This is the unit both svmbench -json renders locally and svmbench
// -server submits to the experiment service; keeping one expansion
// guarantees remote sweeps hit the same content keys as local runs.
func Figure3Specs(app string, scale apps.Scale, procs int, configs []LayerConfig) ([]RunSpec, []string, error) {
	gridSpecs, slots, err := configSpecs(app, scale, procs, configs)
	if err != nil {
		return nil, nil, err
	}
	specs := append([]RunSpec{idealSpec(app, scale, procs)}, gridSpecs...)
	labels := make([]string, 0, len(specs))
	labels = append(labels, "ideal")
	for _, sl := range slots {
		labels = append(labels, string(sl.prot)+"/"+sl.label)
	}
	return specs, labels, nil
}

// Figure3 runs the speedup ladder for one application at the given
// scale and processor count (one-off session; sweeps over several
// figures should share a Session to reuse cached runs).
func Figure3(app string, scale apps.Scale, procs int, configs []LayerConfig) (*AppBar, error) {
	return NewSession(0).Figure3(app, scale, procs, configs)
}

// Figure3 runs the speedup ladder through the session's worker pool.
// All runs — sequential baseline, ideal machine, and the protocol x
// config grid — are scheduled at once; results are collected by index,
// so the output is identical to the serial path.
func (s *Session) Figure3(app string, scale apps.Scale, procs int, configs []LayerConfig) (*AppBar, error) {
	gridSpecs, slots, err := configSpecs(app, scale, procs, configs)
	if err != nil {
		return nil, err
	}
	specs := append([]RunSpec{baselineSpec(app, scale, true), idealSpec(app, scale, procs)}, gridSpecs...)
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("figure 3 (%s): %w", app, err)
	}
	seq := results[0].Cycles
	bar := &AppBar{
		App:  app,
		HLRC: map[string]float64{}, SC: map[string]float64{},
		Results: map[string]*Result{},
	}
	bar.Ideal = float64(seq) / float64(results[1].Cycles)
	bar.Results["ideal"] = results[1]
	for i, sl := range slots {
		res := results[2+i]
		sp := float64(seq) / float64(res.Cycles)
		bar.Results[string(sl.prot)+"/"+sl.label] = res
		if sl.prot == HLRC {
			bar.HLRC[sl.label] = sp
		} else {
			bar.SC[sl.label] = sp
		}
	}
	return bar, nil
}

// FormatFigure3 renders one app's bars as the paper's figure row.
func FormatFigure3(bar *AppBar, configs []LayerConfig) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (Ideal %.2f)\n", bar.App, bar.Ideal)
	fmt.Fprintf(&sb, "  %-6s", "cfg")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8s", lc.Label())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-6s", "HLRC")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8.2f", bar.HLRC[lc.Label()])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-6s", "SC")
	for _, lc := range configs {
		fmt.Fprintf(&sb, "%8.2f", bar.SC[lc.Label()])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Figure4Row is one execution-time breakdown bar (averaged over procs,
// normalized to the AO configuration's total, as the paper presents).
type Figure4Row struct {
	App    string
	Proto  ProtocolKind
	Config string
	// Fractions of per-processor time by category.
	Breakdown [stats.NumCategories]float64
	Cycles    int64
}

// Figure4 computes breakdowns for an application across configurations
// (one-off session).
func Figure4(app string, scale apps.Scale, procs int, configs []LayerConfig) ([]Figure4Row, error) {
	return NewSession(0).Figure4(app, scale, procs, configs)
}

// Figure4 computes breakdowns through the session's worker pool; rows
// come back in the same protocol x config order as the serial path.
func (s *Session) Figure4(app string, scale apps.Scale, procs int, configs []LayerConfig) ([]Figure4Row, error) {
	specs, slots, err := configSpecs(app, scale, procs, configs)
	if err != nil {
		return nil, err
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("figure 4 (%s): %w", app, err)
	}
	out := make([]Figure4Row, 0, len(results))
	for i, sl := range slots {
		res := results[i]
		row := Figure4Row{App: app, Proto: sl.prot, Config: sl.label, Cycles: res.Cycles}
		avg := res.Stats.AverageBreakdown()
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			row.Breakdown[c] = avg[c]
		}
		out = append(out, row)
	}
	return out, nil
}

// PerProcBreakdown captures what the paper's analysis relies on ("to
// analyze the results we always refer to per-processor breakdowns"):
// each processor's time by category for one run.
func PerProcBreakdown(res *Result) string {
	var sb strings.Builder
	st := res.Stats
	fmt.Fprintf(&sb, "  %-5s", "proc")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&sb, "%10s", c.String())
	}
	fmt.Fprintf(&sb, "%10s\n", "total")
	for i := range st.Procs {
		fmt.Fprintf(&sb, "  %-5d", i)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			fmt.Fprintf(&sb, "%10d", st.Procs[i].Time[c])
		}
		fmt.Fprintf(&sb, "%10d\n", st.Procs[i].Total())
	}
	return sb.String()
}

// FormatFigure4 renders breakdown rows.
func FormatFigure4(rows []Figure4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-6s %-5s %10s", "proto", "cfg", "cycles")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&sb, "%9s", c.String())
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-6s %-5s %10d", r.Proto, r.Config, r.Cycles)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			fmt.Fprintf(&sb, "%9.0f", r.Breakdown[c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure5Point is one single-parameter sweep measurement.
type Figure5Point struct {
	Param   string
	Factor  string // "0", "1/2", "1" (base), "2"
	Proto   ProtocolKind
	Speedup float64
}

// Figure5Params are the individually varied communication parameters.
var Figure5Params = []string{"overhead", "occupancy", "bandwidth", "handling"}

// vary builds a Params with only one communication parameter changed by
// scale num/den (0/1 = idealized).
func vary(base comm.Params, param string, num, den int64) comm.Params {
	p := base
	switch param {
	case "overhead":
		p.HostOverhead = base.HostOverhead * num / den
	case "occupancy":
		p.NIOccupancy = base.NIOccupancy * num / den
	case "handling":
		p.MsgHandling = base.MsgHandling * num / den
	case "bandwidth":
		if num == 0 {
			p.IOBusBytesNum = 0 // infinite
		} else {
			// Cost per byte scales by num/den.
			p.IOBusBytesNum = base.IOBusBytesNum * den
			p.IOBusBytesDen = base.IOBusBytesDen * num
		}
	default:
		panic("harness: unknown comm parameter " + param)
	}
	return p
}

// Figure5 sweeps one communication parameter at a time (others at
// achievable values), for both protocols (one-off session).
func Figure5(app string, scale apps.Scale, procs int) ([]Figure5Point, error) {
	return NewSession(0).Figure5(app, scale, procs)
}

// Figure5 runs the single-parameter sweeps through the session's worker
// pool.  The baseline and every (protocol, parameter, factor) run are
// scheduled together; the x1 point of each parameter is the same memo
// key (the unmodified achievable Params), so the cache collapses those
// duplicates to one run per protocol.
func (s *Session) Figure5(app string, scale apps.Scale, procs int) ([]Figure5Point, error) {
	factors := []struct {
		label    string
		num, den int64
	}{{"0", 0, 1}, {"1/2", 1, 2}, {"1", 1, 1}, {"2", 2, 1}}
	type slot struct {
		param, factor string
		prot          ProtocolKind
	}
	specs := []RunSpec{baselineSpec(app, scale, true)}
	var slots []slot
	for _, prot := range []ProtocolKind{HLRC, SC} {
		for _, param := range Figure5Params {
			for _, f := range factors {
				spec := DefaultSpec(app, prot)
				spec.Scale = scale
				spec.Procs = procs
				spec.Comm = vary(comm.Achievable(), param, f.num, f.den)
				specs = append(specs, spec)
				slots = append(slots, slot{param, f.label, prot})
			}
		}
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("figure 5 (%s): %w", app, err)
	}
	seq := results[0].Cycles
	out := make([]Figure5Point, 0, len(slots))
	for i, sl := range slots {
		out = append(out, Figure5Point{
			Param: sl.param, Factor: sl.factor, Proto: sl.prot,
			Speedup: float64(seq) / float64(results[1+i].Cycles),
		})
	}
	return out, nil
}

// FormatFigure5 renders sweep results grouped by parameter.
func FormatFigure5(points []Figure5Point) string {
	var sb strings.Builder
	byKey := map[string][]Figure5Point{}
	var keys []string
	for _, p := range points {
		k := p.Param + "/" + string(p.Proto)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], p)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-20s", k)
		for _, p := range byKey[k] {
			fmt.Fprintf(&sb, "  x%s=%5.2f", p.Factor, p.Speedup)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// OriginalApps lists the original (non-restructured) applications in
// Table 1 order.
func OriginalApps() []string {
	var out []string
	for _, name := range apps.Names() {
		info, _ := apps.Lookup(name)
		if info.RestructuredOf == "" {
			out = append(out, name)
		}
	}
	return out
}

// RestructuredPairs maps original -> restructured app names.
func RestructuredPairs() map[string]string {
	out := map[string]string{}
	for _, name := range apps.Names() {
		info, _ := apps.Lookup(name)
		if info.RestructuredOf != "" {
			out[info.RestructuredOf] = name
		}
	}
	return out
}
