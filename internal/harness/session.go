package harness

import (
	"context"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/harness/runner"
	"swsm/internal/proto"
)

// Session is a sweep session: it schedules independent RunSpecs over a
// bounded worker pool and memoizes every run by its spec, so any
// configuration — including the sequential baseline every speedup
// divides by — executes at most once per session no matter how many
// figures and tables request it.
//
// Cross-run parallelism cannot perturb results: each sim.Engine is
// single-threaded and deterministic, every run gets a fresh machine,
// and a run's outcome depends only on its RunSpec.  RunSpec is a flat
// comparable struct, so it serves directly as the memo key (every field
// participates).  Memoized *Results are shared between callers and must
// be treated as read-only.
type Session struct {
	pool *runner.Pool[RunSpec, *Result]
}

// NewSession creates a session running at most parallel simulations
// concurrently (parallel <= 0 means runtime.GOMAXPROCS(0)).
func NewSession(parallel int) *Session {
	return &Session{pool: runner.New(parallel, RunContext)}
}

// Parallelism reports the session's worker bound.
func (s *Session) Parallelism() int { return s.pool.Parallelism() }

// InFlight reports how many simulations currently occupy a pool slot —
// the load signal the cluster worker agent subtracts from Parallelism
// to size its lease requests.
func (s *Session) InFlight() int { return s.pool.InFlight() }

// SetObserver installs wall-clock scheduling telemetry on the session's
// pool (slot queue wait and run duration per executed simulation); see
// runner.Observer.  Call before the session starts running.
func (s *Session) SetObserver(o runner.Observer) { s.pool.SetObserver(o) }

// Stats reports the session's cache counters (runs executed, cache
// hits, single-flight waits).
func (s *Session) Stats() runner.Stats { return s.pool.Stats() }

// Cached reports whether spec already has a completed memoized result
// in this session (see runner.Pool.Cached) — the probe the explore
// optimizer's budget accounting uses to charge only fresh simulations.
func (s *Session) Cached(spec RunSpec) bool { return s.pool.Cached(spec) }

// Run executes spec through the session cache.
func (s *Session) Run(spec RunSpec) (*Result, error) { return s.pool.Do(spec) }

// RunCtx is Run with cancellation: a context cancelled while the spec
// is queued behind the worker bound aborts it without executing (and
// without memoizing the cancellation), which is how the experiment
// service sheds work for disconnected requests and on shutdown.  A
// simulation that already started runs to completion and is cached.
func (s *Session) RunCtx(ctx context.Context, spec RunSpec) (*Result, error) {
	return s.pool.DoCtx(ctx, spec)
}

// RunAll executes all specs over the worker pool and returns results in
// spec order (index i corresponds to specs[i], regardless of completion
// order — the property that keeps sweep output deterministic).
func (s *Session) RunAll(specs []RunSpec) ([]*Result, error) { return s.pool.DoAll(specs) }

// RunAllCtx is RunAll with cancellation (see RunCtx for the semantics).
func (s *Session) RunAllCtx(ctx context.Context, specs []RunSpec) ([]*Result, error) {
	return s.pool.DoAllCtx(ctx, specs)
}

// baselineSpec is the canonical sequential-baseline spec: the app
// single-threaded on the ideal machine ("the same best sequential
// version" of the paper).  Centralizing the spec construction guarantees
// every caller hits the same memo key.
func baselineSpec(app string, scale apps.Scale, cacheEnabled bool) RunSpec {
	return RunSpec{
		App: app, Scale: scale, Protocol: Ideal, Procs: 1,
		Comm: comm.Best(), Costs: proto.BestCosts(), CacheEnabled: cacheEnabled,
	}
}

// BaselineSpec exposes the canonical sequential-baseline spec so remote
// callers (the experiment service and its clients) hit the same memo
// key — and therefore the same persistent-store entry — as local sweeps.
func BaselineSpec(app string, scale apps.Scale, cacheEnabled bool) RunSpec {
	return baselineSpec(app, scale, cacheEnabled)
}

// idealSpec is the parallel ideal-machine spec used for algorithmic
// speedups (Figure 3's "Ideal" bars, Table 5's denominator).
func idealSpec(app string, scale apps.Scale, procs int) RunSpec {
	return RunSpec{
		App: app, Scale: scale, Protocol: Ideal, Procs: procs,
		Comm: comm.Best(), Costs: proto.BestCosts(), CacheEnabled: true,
	}
}

// SequentialBaseline returns the memoized 1-proc ideal-machine cycle
// count for (app, scale) — the denominator of every speedup.
func (s *Session) SequentialBaseline(app string, scale apps.Scale, cacheEnabled bool) (int64, error) {
	res, err := s.Run(baselineSpec(app, scale, cacheEnabled))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// Speedup runs spec (and its sequential baseline, concurrently if not
// already cached) and reports cycles(seq)/cycles(parallel).
func (s *Session) Speedup(spec RunSpec) (float64, *Result, error) {
	results, err := s.RunAll([]RunSpec{
		baselineSpec(spec.App, spec.Scale, spec.CacheEnabled),
		spec,
	})
	if err != nil {
		return 0, nil, err
	}
	return float64(results[0].Cycles) / float64(results[1].Cycles), results[1], nil
}
