package harness

import (
	"reflect"
	"strings"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/fault"
	"swsm/internal/proto"
)

// TestSpecKeyGolden pins the content key of three representative specs.
// These values are the on-disk addresses of stored results: if any of
// them changes, every warm store in the fleet silently goes cold.  A
// failure here means the canonical encoding drifted — either revert the
// drift, or (for a deliberate incompatible change) bump KeyVersion and
// re-pin these values in the same commit.
func TestSpecKeyGolden(t *testing.T) {
	golden := []struct {
		name string
		spec RunSpec
		want string
	}{
		{
			name: "default-fft-hlrc",
			spec: DefaultSpec("fft", HLRC),
			want: "v1-1433e0ef3d5cfbcdfeb4aa63958af9f48e15894c497b7fc435e13da6260e86a8",
		},
		{
			name: "faulted-barnes-sc",
			spec: func() RunSpec {
				s := DefaultSpec("barnes", SC)
				s.Procs = 8
				s.Scale = apps.Large
				s.Fault.DropPPM = 10000
				s.Fault.Seed = 7
				s.Check = true
				return s
			}(),
			want: "v1-f8f5eb2fa95b04aa0eb2e8f63ea178daed84fb588972dc0bd3413671b244a854",
		},
		{
			name: "baseline-lu-tiny",
			spec: BaselineSpec("lu", apps.Tiny, true),
			want: "v1-66683cb70eeb5c5c741ed166702dcd1c7e2428dc95f360c8516e081899a6b954",
		},
	}
	for _, g := range golden {
		if got := g.spec.Key(); got != g.want {
			t.Errorf("%s: key = %s, want %s (encoding drift — see KeyVersion doc)", g.name, got, g.want)
		}
	}
}

// TestSpecKeyShape pins the key format and the equality property: equal
// specs agree, any single-field perturbation disagrees.
func TestSpecKeyShape(t *testing.T) {
	base := DefaultSpec("fft", HLRC)
	if !strings.HasPrefix(base.Key(), "v1-") || len(base.Key()) != len("v1-")+64 {
		t.Fatalf("key %q is not v1-<64 hex>", base.Key())
	}
	if base.Key() != DefaultSpec("fft", HLRC).Key() {
		t.Fatal("equal specs produced different keys")
	}
	seen := map[string]string{base.Key(): "base"}
	perturb := map[string]func(*RunSpec){
		"App":                   func(s *RunSpec) { s.App = "lu" },
		"Scale":                 func(s *RunSpec) { s.Scale = apps.Tiny },
		"Protocol":              func(s *RunSpec) { s.Protocol = SC },
		"Procs":                 func(s *RunSpec) { s.Procs = 8 },
		"Comm":                  func(s *RunSpec) { s.Comm.MaxPacket++ },
		"Costs":                 func(s *RunSpec) { s.Costs.HandlerBase++ },
		"SCBlockOverride":       func(s *RunSpec) { s.SCBlockOverride = 256 },
		"CacheEnabled":          func(s *RunSpec) { s.CacheEnabled = false },
		"PollQuantum":           func(s *RunSpec) { s.PollQuantum = 500 },
		"DisablePlacement":      func(s *RunSpec) { s.DisablePlacement = true },
		"NoProtocolPollution":   func(s *RunSpec) { s.NoProtocolPollution = true },
		"SoftwareAccessControl": func(s *RunSpec) { s.SoftwareAccessControl = true },
		"HLRCUnitShift":         func(s *RunSpec) { s.HLRCUnitShift = 7 },
		"Trace":                 func(s *RunSpec) { s.Trace = true },
		"TraceSample":           func(s *RunSpec) { s.Trace = true; s.TraceSample = 1000 },
		"Fault":                 func(s *RunSpec) { s.Fault.DropPPM = 1 },
		"Check":                 func(s *RunSpec) { s.Check = true },
	}
	if want := reflect.TypeOf(RunSpec{}).NumField(); len(perturb) != want {
		t.Fatalf("perturbation table covers %d fields, RunSpec has %d", len(perturb), want)
	}
	for name, f := range perturb {
		s := base
		f(&s)
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collided with %s (field not encoded?)", name, prev)
		}
		seen[k] = name
	}
}

// TestSpecKeyFieldGuard fails when RunSpec or one of its embedded
// parameter structs grows or shrinks, forcing whoever changes them to
// update the canonical encoding in key.go, bump KeyVersion, and re-pin
// the golden keys — the mechanism that turns silent cache-invalidation
// regressions into compile-adjacent test failures.
func TestSpecKeyFieldGuard(t *testing.T) {
	for _, g := range []struct {
		typ    reflect.Type
		fields int
	}{
		{reflect.TypeOf(RunSpec{}), 17},
		{reflect.TypeOf(comm.Params{}), 7},
		{reflect.TypeOf(proto.Costs{}), 9},
		{reflect.TypeOf(fault.Spec{}), 11},
	} {
		if got := g.typ.NumField(); got != g.fields {
			t.Errorf("%s has %d fields, the key encoding covers %d — update RunSpec.Key, bump KeyVersion, re-pin goldens",
				g.typ, got, g.fields)
		}
	}
}
