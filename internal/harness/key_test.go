package harness

import (
	"reflect"
	"strings"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/fault"
	"swsm/internal/hetero"
	"swsm/internal/proto"
)

// TestSpecKeyGolden pins the content key of three representative specs.
// These values are the on-disk addresses of stored results: if any of
// them changes, every warm store in the fleet silently goes cold.  A
// failure here means the canonical encoding drifted — either revert the
// drift, or (for a deliberate incompatible change) bump KeyVersion and
// re-pin these values in the same commit.
func TestSpecKeyGolden(t *testing.T) {
	golden := []struct {
		name string
		spec RunSpec
		want string
	}{
		{
			name: "default-fft-hlrc",
			spec: DefaultSpec("fft", HLRC),
			want: "v2-099ea7828ce91d9fa362820e80b0cff990a7a252045abc929bf05b6b7fc344a8",
		},
		{
			name: "faulted-barnes-sc",
			spec: func() RunSpec {
				s := DefaultSpec("barnes", SC)
				s.Procs = 8
				s.Scale = apps.Large
				s.Fault.DropPPM = 10000
				s.Fault.Seed = 7
				s.Check = true
				return s
			}(),
			want: "v2-f0d17e412a29d59d98bffe114933158d02f037c093eee306d664234e0314999b",
		},
		{
			name: "baseline-lu-tiny",
			spec: BaselineSpec("lu", apps.Tiny, true),
			want: "v2-46ddc4bf70b9dc1548a6e2647a7c235c96d7ae45f8d9cd9c5742404ae78fc7c2",
		},
	}
	for _, g := range golden {
		if got := g.spec.Key(); got != g.want {
			t.Errorf("%s: key = %s, want %s (encoding drift — see KeyVersion doc)", g.name, got, g.want)
		}
	}
}

// TestSpecKeyShape pins the key format and the equality property: equal
// specs agree, any single-field perturbation disagrees.
func TestSpecKeyShape(t *testing.T) {
	base := DefaultSpec("fft", HLRC)
	if !strings.HasPrefix(base.Key(), "v2-") || len(base.Key()) != len("v2-")+64 {
		t.Fatalf("key %q is not v2-<64 hex>", base.Key())
	}
	if base.Key() != DefaultSpec("fft", HLRC).Key() {
		t.Fatal("equal specs produced different keys")
	}
	seen := map[string]string{base.Key(): "base"}
	perturb := map[string]func(*RunSpec){
		"App":                   func(s *RunSpec) { s.App = "lu" },
		"Scale":                 func(s *RunSpec) { s.Scale = apps.Tiny },
		"Protocol":              func(s *RunSpec) { s.Protocol = SC },
		"Procs":                 func(s *RunSpec) { s.Procs = 8 },
		"Comm":                  func(s *RunSpec) { s.Comm.MaxPacket++ },
		"Costs":                 func(s *RunSpec) { s.Costs.HandlerBase++ },
		"SCBlockOverride":       func(s *RunSpec) { s.SCBlockOverride = 256 },
		"CacheEnabled":          func(s *RunSpec) { s.CacheEnabled = false },
		"PollQuantum":           func(s *RunSpec) { s.PollQuantum = 500 },
		"DisablePlacement":      func(s *RunSpec) { s.DisablePlacement = true },
		"NoProtocolPollution":   func(s *RunSpec) { s.NoProtocolPollution = true },
		"SoftwareAccessControl": func(s *RunSpec) { s.SoftwareAccessControl = true },
		"HLRCUnitShift":         func(s *RunSpec) { s.HLRCUnitShift = 7 },
		"Trace":                 func(s *RunSpec) { s.Trace = true },
		"TraceSample":           func(s *RunSpec) { s.Trace = true; s.TraceSample = 1000 },
		"Fault":                 func(s *RunSpec) { s.Fault.DropPPM = 1 },
		"Hetero":                func(s *RunSpec) { s.Hetero.SlowMask = 2; s.Hetero.SlowNum = 2; s.Hetero.SlowDen = 1 },
		"Check":                 func(s *RunSpec) { s.Check = true },
	}
	if want := reflect.TypeOf(RunSpec{}).NumField(); len(perturb) != want {
		t.Fatalf("perturbation table covers %d fields, RunSpec has %d", len(perturb), want)
	}
	for name, f := range perturb {
		s := base
		f(&s)
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collided with %s (field not encoded?)", name, prev)
		}
		seen[k] = name
	}
}

// TestSpecKeyFieldGuard fails when RunSpec or one of its embedded
// parameter structs grows or shrinks, forcing whoever changes them to
// update the canonical encoding in key.go, bump KeyVersion, and re-pin
// the golden keys — the mechanism that turns silent cache-invalidation
// regressions into compile-adjacent test failures.
func TestSpecKeyFieldGuard(t *testing.T) {
	for _, g := range []struct {
		typ    reflect.Type
		fields int
	}{
		{reflect.TypeOf(RunSpec{}), 18},
		{reflect.TypeOf(comm.Params{}), 7},
		{reflect.TypeOf(proto.Costs{}), 9},
		{reflect.TypeOf(fault.Spec{}), 11},
		{reflect.TypeOf(hetero.Spec{}), 20},
	} {
		if got := g.typ.NumField(); got != g.fields {
			t.Errorf("%s has %d fields, the key encoding covers %d — update RunSpec.Key, bump KeyVersion, re-pin goldens",
				g.typ, got, g.fields)
		}
	}
}
