package harness_test

import (
	"os"
	"testing"
	"time"

	"swsm/internal/apps"
	"swsm/internal/harness"
)

func TestFigure3One(t *testing.T) {
	app := os.Getenv("FIG3_APP")
	if app == "" {
		app = "fft"
	}
	start := time.Now()
	bar, err := harness.Figure3(app, apps.Base, 16, harness.Figure3Configs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wall %v\n%s", time.Since(start), harness.FormatFigure3(bar, harness.Figure3Configs))
}
