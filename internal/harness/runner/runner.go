// Package runner provides the concurrency-safe experiment scheduler
// underneath the harness's sweeps: a bounded worker pool that fans
// independent runs out over goroutines, a key-addressed memoization
// cache so any run executes at most once per sweep session, and
// single-flight deduplication of concurrently requested identical keys.
//
// The pool is generic over a comparable key type and a result type; the
// harness instantiates it with K = RunSpec (a flat, comparable struct —
// every field participates in the memo key) and V = *Result.  Because
// each simulation is internally single-threaded and deterministic,
// cross-run parallelism cannot perturb results: a run's output depends
// only on its key, never on scheduling order, which is precisely what
// makes memoization sound.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts cache traffic in a pool.  The JSON tags are the
// /metrics wire names of the svmd experiment service.
type Stats struct {
	// Runs is the number of function executions actually performed
	// (cache misses).
	Runs int64 `json:"runs"`
	// Hits is the number of calls served from the completed-run cache.
	Hits int64 `json:"hits"`
	// Waits is the number of calls that found an identical key already
	// in flight and waited for it (single-flight deduplication).
	Waits int64 `json:"waits"`
}

// call is one memoized execution.  done is closed exactly once, after
// val/err are final.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Observer receives wall-clock scheduling telemetry from a pool: how
// long each executed call waited for a worker slot and how long it ran.
// Callbacks fire only for actual executions (cache hits and
// single-flight waits are invisible — they cost no slot) and may be
// invoked concurrently.  A nil observer is the disabled path: the pool
// then takes no clock readings at all.
type Observer interface {
	// RunStart fires when a call acquires a worker slot, with the time it
	// spent queued behind the slot semaphore.
	RunStart(queueWait time.Duration)
	// RunEnd fires when the call's function returns.
	RunEnd(run time.Duration, err error)
}

// Pool memoizes and schedules executions of fn over a bounded number of
// concurrent workers.  The executing call receives the context of the
// first caller that requested its key (observability annotations such
// as the job ID ride along; cancellation of a queued call is handled by
// DoCtx itself).  All methods are safe for concurrent use.
type Pool[K comparable, V any] struct {
	fn  func(context.Context, K) (V, error)
	sem chan struct{}

	mu    sync.Mutex
	calls map[K]*call[V]

	obs Observer

	runs, hits, waits atomic.Int64
	inFlight          atomic.Int64
}

// New creates a pool running fn on at most parallel workers
// (parallel <= 0 means runtime.GOMAXPROCS(0)).
func New[K comparable, V any](parallel int, fn func(context.Context, K) (V, error)) *Pool[K, V] {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Pool[K, V]{
		fn:    fn,
		sem:   make(chan struct{}, parallel),
		calls: make(map[K]*call[V]),
	}
}

// SetObserver installs the pool's telemetry observer.  Call before the
// pool starts executing; the observer is read without synchronization
// afterwards.
func (p *Pool[K, V]) SetObserver(o Observer) { p.obs = o }

// Parallelism reports the worker bound.
func (p *Pool[K, V]) Parallelism() int { return cap(p.sem) }

// InFlight reports how many executions currently occupy a worker slot.
// Cache hits and single-flight waits never count — they hold no slot.
// The cluster worker agent leases remote jobs against exactly the
// slots this leaves free (Parallelism - InFlight), so remote work
// fills idle capacity without overcommitting a node that is already
// busy with local requests.
func (p *Pool[K, V]) InFlight() int { return int(p.inFlight.Load()) }

// Do returns fn(k), executing it at most once per pool lifetime: the
// first caller runs it (bounded by the worker semaphore), concurrent
// callers with the same key wait for that execution, and later callers
// get the cached result.  Errors are memoized like values.
func (p *Pool[K, V]) Do(k K) (V, error) {
	return p.DoCtx(context.Background(), k)
}

// DoCtx is Do with cancellation.  A context cancelled while the call is
// queued behind the worker semaphore withdraws it before execution —
// the cancellation error is NOT memoized, so a later caller re-executes
// the key.  A context cancelled while waiting on another caller's
// in-flight execution abandons only the wait (the execution itself
// continues and is memoized normally).  A simulation that has already
// started always runs to completion: each run is short relative to a
// sweep, and an aborted engine would leave no reusable result.
func (p *Pool[K, V]) DoCtx(ctx context.Context, k K) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	p.mu.Lock()
	if c, ok := p.calls[k]; ok {
		p.mu.Unlock()
		select {
		case <-c.done:
			p.hits.Add(1)
			return c.val, c.err
		default:
		}
		p.waits.Add(1)
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	p.calls[k] = c
	p.mu.Unlock()

	var queuedAt time.Time
	if p.obs != nil {
		queuedAt = time.Now()
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		// Withdraw the queued call so the key can be retried; waiters
		// already parked on c.done observe the cancellation error (the
		// canonical execution they were waiting for never happened).
		p.mu.Lock()
		delete(p.calls, k)
		p.mu.Unlock()
		c.err = ctx.Err()
		close(c.done)
		return zero, c.err
	}
	p.runs.Add(1)
	p.inFlight.Add(1)
	var startedAt time.Time
	if p.obs != nil {
		startedAt = time.Now()
		p.obs.RunStart(startedAt.Sub(queuedAt))
	}
	defer func() {
		p.inFlight.Add(-1)
		<-p.sem
		// Close only after val/err are final so waiters never observe a
		// half-written call.
		close(c.done)
	}()
	func() {
		// A panicking fn (apps reject impossible geometry that way) is
		// memoized as an error like any other failure: long-lived callers
		// such as the experiment service must not die — or hand waiters a
		// nil result — because one key was unrunnable.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("runner: panic executing key %v: %v", k, r)
			}
		}()
		c.val, c.err = p.fn(ctx, k)
	}()
	if p.obs != nil {
		p.obs.RunEnd(time.Since(startedAt), c.err)
	}
	return c.val, c.err
}

// DoAll runs Do for every key concurrently and returns the results in
// key order (index i of the result corresponds to keys[i], regardless
// of completion order).  The first error encountered in key order is
// returned alongside the partial results.
func (p *Pool[K, V]) DoAll(keys []K) ([]V, error) {
	return p.DoAllCtx(context.Background(), keys)
}

// DoAllCtx is DoAll with cancellation: queued keys abort with the
// context's error once it is cancelled, in-flight executions finish and
// are memoized (see DoCtx).
func (p *Pool[K, V]) DoAllCtx(ctx context.Context, keys []K) ([]V, error) {
	out := make([]V, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k K) {
			defer wg.Done()
			out[i], errs[i] = p.DoCtx(ctx, k)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Cached reports whether k already has a completed memoized result —
// value or error — so a Do for it would return without executing.  An
// in-flight execution reports false: a caller asking "would this key
// cost a fresh run?" should treat it as one, because the answer is not
// available yet.  The explore optimizer uses this probe for its budget
// accounting: only keys that are not cached anywhere are charged.
func (p *Pool[K, V]) Cached(k K) bool {
	p.mu.Lock()
	c, ok := p.calls[k]
	p.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Stats returns a snapshot of the pool's cache counters.
func (p *Pool[K, V]) Stats() Stats {
	return Stats{
		Runs:  p.runs.Load(),
		Hits:  p.hits.Load(),
		Waits: p.waits.Load(),
	}
}
