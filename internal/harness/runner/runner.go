// Package runner provides the concurrency-safe experiment scheduler
// underneath the harness's sweeps: a bounded worker pool that fans
// independent runs out over goroutines, a key-addressed memoization
// cache so any run executes at most once per sweep session, and
// single-flight deduplication of concurrently requested identical keys.
//
// The pool is generic over a comparable key type and a result type; the
// harness instantiates it with K = RunSpec (a flat, comparable struct —
// every field participates in the memo key) and V = *Result.  Because
// each simulation is internally single-threaded and deterministic,
// cross-run parallelism cannot perturb results: a run's output depends
// only on its key, never on scheduling order, which is precisely what
// makes memoization sound.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats counts cache traffic in a pool.
type Stats struct {
	// Runs is the number of function executions actually performed
	// (cache misses).
	Runs int64
	// Hits is the number of calls served from the completed-run cache.
	Hits int64
	// Waits is the number of calls that found an identical key already
	// in flight and waited for it (single-flight deduplication).
	Waits int64
}

// call is one memoized execution.  done is closed exactly once, after
// val/err are final.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Pool memoizes and schedules executions of fn over a bounded number of
// concurrent workers.  All methods are safe for concurrent use.
type Pool[K comparable, V any] struct {
	fn  func(K) (V, error)
	sem chan struct{}

	mu    sync.Mutex
	calls map[K]*call[V]

	runs, hits, waits atomic.Int64
}

// New creates a pool running fn on at most parallel workers
// (parallel <= 0 means runtime.GOMAXPROCS(0)).
func New[K comparable, V any](parallel int, fn func(K) (V, error)) *Pool[K, V] {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Pool[K, V]{
		fn:    fn,
		sem:   make(chan struct{}, parallel),
		calls: make(map[K]*call[V]),
	}
}

// Parallelism reports the worker bound.
func (p *Pool[K, V]) Parallelism() int { return cap(p.sem) }

// Do returns fn(k), executing it at most once per pool lifetime: the
// first caller runs it (bounded by the worker semaphore), concurrent
// callers with the same key wait for that execution, and later callers
// get the cached result.  Errors are memoized like values.
func (p *Pool[K, V]) Do(k K) (V, error) {
	p.mu.Lock()
	if c, ok := p.calls[k]; ok {
		p.mu.Unlock()
		select {
		case <-c.done:
			p.hits.Add(1)
		default:
			p.waits.Add(1)
			<-c.done
		}
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	p.calls[k] = c
	p.mu.Unlock()

	p.runs.Add(1)
	p.sem <- struct{}{}
	defer func() {
		<-p.sem
		// Close after val/err are written (and even if fn panicked, so
		// waiters are not stranded; the panic itself propagates).
		close(c.done)
	}()
	c.val, c.err = p.fn(k)
	return c.val, c.err
}

// DoAll runs Do for every key concurrently and returns the results in
// key order (index i of the result corresponds to keys[i], regardless
// of completion order).  The first error encountered in key order is
// returned alongside the partial results.
func (p *Pool[K, V]) DoAll(keys []K) ([]V, error) {
	out := make([]V, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k K) {
			defer wg.Done()
			out[i], errs[i] = p.Do(k)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Stats returns a snapshot of the pool's cache counters.
func (p *Pool[K, V]) Stats() Stats {
	return Stats{
		Runs:  p.runs.Load(),
		Hits:  p.hits.Load(),
		Waits: p.waits.Load(),
	}
}
