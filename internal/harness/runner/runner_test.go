package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoHitMiss(t *testing.T) {
	var execs atomic.Int64
	p := New(2, func(k int) (int, error) {
		execs.Add(1)
		return k * 10, nil
	})
	for i := 0; i < 3; i++ {
		v, err := p.Do(7)
		if err != nil || v != 70 {
			t.Fatalf("Do(7) = %d, %v", v, err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	st := p.Stats()
	if st.Runs != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want Runs=1 Hits=2", st)
	}
}

func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	p := New(4, func(k string) (string, error) {
		execs.Add(1)
		<-release
		return k + "!", nil
	})
	const waiters = 4
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = p.Do("x")
		}(i)
	}
	// Let the goroutines reach Do before releasing the single execution.
	for p.Stats().Runs+p.Stats().Waits < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", got)
	}
	for i, r := range results {
		if r != "x!" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	st := p.Stats()
	if st.Runs != 1 || st.Waits != waiters-1 {
		t.Fatalf("stats = %+v, want Runs=1 Waits=%d", st, waiters-1)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const bound = 2
	var cur, peak atomic.Int64
	p := New(bound, func(k int) (int, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		// Hold the slot long enough for contention to be observable.
		for i := 0; i < 1000; i++ {
			_ = i
		}
		cur.Add(-1)
		return k, nil
	})
	keys := make([]int, 16)
	for i := range keys {
		keys[i] = i
	}
	if _, err := p.DoAll(keys); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > bound {
		t.Fatalf("observed %d concurrent executions, bound is %d", got, bound)
	}
}

func TestDoAllOrder(t *testing.T) {
	p := New(4, func(k int) (int, error) { return k * k, nil })
	keys := []int{5, 3, 9, 1, 3, 5}
	out, err := p.DoAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if out[i] != k*k {
			t.Fatalf("out[%d] = %d, want %d (results must align with key order)", i, out[i], k*k)
		}
	}
	st := p.Stats()
	if st.Runs != 4 { // 5, 3, 9, 1 — duplicates deduplicated
		t.Fatalf("runs = %d, want 4", st.Runs)
	}
}

func TestErrorMemoized(t *testing.T) {
	boom := errors.New("boom")
	var execs atomic.Int64
	p := New(1, func(k int) (int, error) {
		execs.Add(1)
		return 0, boom
	})
	if _, err := p.Do(1); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	if _, err := p.Do(1); !errors.Is(err, boom) {
		t.Fatalf("second Do err = %v", err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("failing fn executed %d times, want 1 (errors memoize)", got)
	}
}

func TestDefaultParallelism(t *testing.T) {
	p := New(0, func(k int) (int, error) { return k, nil })
	if p.Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1", p.Parallelism())
	}
}
