package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoHitMiss(t *testing.T) {
	var execs atomic.Int64
	p := New(2, func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		return k * 10, nil
	})
	for i := 0; i < 3; i++ {
		v, err := p.Do(7)
		if err != nil || v != 70 {
			t.Fatalf("Do(7) = %d, %v", v, err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	st := p.Stats()
	if st.Runs != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want Runs=1 Hits=2", st)
	}
}

func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	p := New(4, func(_ context.Context, k string) (string, error) {
		execs.Add(1)
		<-release
		return k + "!", nil
	})
	const waiters = 4
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = p.Do("x")
		}(i)
	}
	// Let the goroutines reach Do before releasing the single execution.
	for p.Stats().Runs+p.Stats().Waits < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", got)
	}
	for i, r := range results {
		if r != "x!" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	st := p.Stats()
	if st.Runs != 1 || st.Waits != waiters-1 {
		t.Fatalf("stats = %+v, want Runs=1 Waits=%d", st, waiters-1)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const bound = 2
	var cur, peak atomic.Int64
	p := New(bound, func(_ context.Context, k int) (int, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		// Hold the slot long enough for contention to be observable.
		for i := 0; i < 1000; i++ {
			_ = i
		}
		cur.Add(-1)
		return k, nil
	})
	keys := make([]int, 16)
	for i := range keys {
		keys[i] = i
	}
	if _, err := p.DoAll(keys); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > bound {
		t.Fatalf("observed %d concurrent executions, bound is %d", got, bound)
	}
}

func TestDoAllOrder(t *testing.T) {
	p := New(4, func(_ context.Context, k int) (int, error) { return k * k, nil })
	keys := []int{5, 3, 9, 1, 3, 5}
	out, err := p.DoAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if out[i] != k*k {
			t.Fatalf("out[%d] = %d, want %d (results must align with key order)", i, out[i], k*k)
		}
	}
	st := p.Stats()
	if st.Runs != 4 { // 5, 3, 9, 1 — duplicates deduplicated
		t.Fatalf("runs = %d, want 4", st.Runs)
	}
}

func TestErrorMemoized(t *testing.T) {
	boom := errors.New("boom")
	var execs atomic.Int64
	p := New(1, func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		return 0, boom
	})
	if _, err := p.Do(1); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	if _, err := p.Do(1); !errors.Is(err, boom) {
		t.Fatalf("second Do err = %v", err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("failing fn executed %d times, want 1 (errors memoize)", got)
	}
}

func TestDefaultParallelism(t *testing.T) {
	p := New(0, func(_ context.Context, k int) (int, error) { return k, nil })
	if p.Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1", p.Parallelism())
	}
}

func TestDoCtxPreCancelled(t *testing.T) {
	var execs atomic.Int64
	p := New(1, func(_ context.Context, k int) (int, error) { execs.Add(1); return k, nil })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.DoCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx on cancelled ctx err = %v, want Canceled", err)
	}
	if execs.Load() != 0 {
		t.Fatal("fn executed despite pre-cancelled context")
	}
}

// TestDoCtxCancelQueued pins the withdraw semantics: a call cancelled
// while waiting for a worker slot never executes, its error is not
// memoized, and a later un-cancelled caller re-executes the key.
func TestDoCtxCancelQueued(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	p := New(1, func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		if k == 0 {
			<-release
		}
		return k * 10, nil
	})
	// Occupy the single worker slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Do(0) }()
	for p.Stats().Runs < 1 {
		runtime.Gosched()
	}

	// Queue key 7 behind the occupied slot, then cancel it.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.DoCtx(ctx, 7)
		errc <- err
	}()
	// Wait until the call is registered (in the calls map but not running).
	for {
		p.mu.Lock()
		_, registered := p.calls[7]
		p.mu.Unlock()
		if registered {
			break
		}
		runtime.Gosched()
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued DoCtx err = %v, want Canceled", err)
	}
	close(release)
	wg.Wait()

	// Cancellation must not be memoized: a fresh caller re-executes.
	v, err := p.Do(7)
	if err != nil || v != 70 {
		t.Fatalf("Do(7) after cancelled attempt = %d, %v; want 70, nil", v, err)
	}
	if got := execs.Load(); got != 2 { // key 0 + key 7 retry; the cancelled attempt never ran
		t.Fatalf("fn executed %d times, want 2", got)
	}
}

// TestDoCtxCancelWait pins that abandoning a wait on another caller's
// in-flight execution does not disturb the execution: it completes and
// memoizes normally.
func TestDoCtxCancelWait(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	p := New(2, func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		<-release
		return k + 1, nil
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Do(5) }()
	for p.Stats().Runs < 1 {
		runtime.Gosched()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.DoCtx(ctx, 5)
		errc <- err
	}()
	for p.Stats().Waits < 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting DoCtx err = %v, want Canceled", err)
	}

	close(release)
	wg.Wait()
	v, err := p.Do(5)
	if err != nil || v != 6 {
		t.Fatalf("Do(5) = %d, %v; want 6, nil", v, err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1 (abandoned wait must not re-execute)", got)
	}
}

func TestDoAllCtxCancelled(t *testing.T) {
	release := make(chan struct{})
	// Every key blocks until release, so with one worker exactly one key
	// runs and the rest stay queued on the semaphore until cancelled.
	p := New(1, func(_ context.Context, k int) (int, error) {
		<-release
		return k, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.DoAllCtx(ctx, []int{0, 1, 2, 3})
		done <- err
	}()
	for p.Stats().Runs < 1 {
		runtime.Gosched()
	}
	cancel()
	// Wait for keys 1..3 to withdraw (only the running key 0 remains in
	// the calls map) before releasing key 0, so no cancelled key can race
	// onto the freed worker slot.
	for {
		p.mu.Lock()
		n := len(p.calls)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("DoAllCtx err = %v, want Canceled (queued keys abort)", err)
	}
}

// TestPanicMemoizedAsError pins that a panicking fn becomes a memoized
// error — waiters and later callers see the error, nobody sees a nil
// result, and the process survives (long-lived daemons depend on this).
func TestPanicMemoizedAsError(t *testing.T) {
	var execs atomic.Int64
	p := New(2, func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		panic("impossible geometry")
	})
	for i := 0; i < 2; i++ {
		v, err := p.Do(7)
		if err == nil || !strings.Contains(err.Error(), "impossible geometry") {
			t.Fatalf("call %d: v=%d err=%v, want panic converted to error", i, v, err)
		}
	}
	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1 (panic memoized)", execs.Load())
	}
	if s := p.Stats(); s.Runs != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want Runs=1 Hits=1", s)
	}
}

func TestCached(t *testing.T) {
	release := make(chan struct{})
	p := New(2, func(_ context.Context, k int) (int, error) {
		if k == 1 {
			<-release
		}
		return k, nil
	})
	if p.Cached(0) {
		t.Fatal("unseen key reported cached")
	}
	if _, err := p.Do(0); err != nil {
		t.Fatal(err)
	}
	if !p.Cached(0) {
		t.Fatal("completed key not reported cached")
	}

	// An in-flight key is not cached: Cached answers "would this cost
	// nothing", and a caller would still wait for the result.
	started := make(chan struct{})
	go func() {
		close(started)
		p.Do(1)
	}()
	<-started
	for p.InFlight() == 0 {
		runtime.Gosched()
	}
	if p.Cached(1) {
		t.Error("in-flight key reported cached")
	}
	close(release)
	if _, err := p.Do(1); err != nil {
		t.Fatal(err)
	}
	if !p.Cached(1) {
		t.Error("finished key not reported cached")
	}
}
