package harness_test

import (
	"bytes"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/fault"
	"swsm/internal/harness"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// faultedSpecs is the determinism fixture: two apps x two protocols,
// traced, under a mixed fault plan aggressive enough to exercise drops,
// duplicates, delays and pause windows.
func faultedSpecs() []harness.RunSpec {
	fs := fault.Spec{
		Seed: 99, DropPPM: 20_000, DupPPM: 10_000,
		DelayPPM: 20_000, DelayMax: 5_000,
		PauseEvery: 100_000, PauseFor: 5_000,
	}
	var specs []harness.RunSpec
	for _, app := range []string{"fft", "lu"} {
		for _, prot := range []harness.ProtocolKind{harness.HLRC, harness.SC} {
			s := harness.DefaultSpec(app, prot)
			s.Scale = apps.Tiny
			s.Procs = 4
			s.Trace = true
			s.Fault = fs
			specs = append(specs, s)
		}
	}
	return specs
}

// runFaulted executes the fixture at the given session width and
// serializes cycles, counters and the full event traces.
func runFaulted(t *testing.T, parallel int) (cycles []int64, rx []int64, traces []byte) {
	t.Helper()
	specs := faultedSpecs()
	s := harness.NewSession(parallel)
	results, err := s.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	var runs []trace.Run
	for i, res := range results {
		cycles = append(cycles, res.Cycles)
		rx = append(rx, res.Stats.TotalCount(stats.Retransmits))
		runs = append(runs, trace.Run{
			Label: specs[i].App + "/" + string(specs[i].Protocol),
			Data:  res.Trace,
		})
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, runs); err != nil {
		t.Fatal(err)
	}
	return cycles, rx, buf.Bytes()
}

// TestFaultDeterminismAcrossParallelism pins the fault plane's
// load-bearing property: the same FaultSpec produces byte-identical
// runs — cycles, retransmit counts and full event traces — whether the
// sweep executes serially or 8-wide.
func TestFaultDeterminismAcrossParallelism(t *testing.T) {
	c1, rx1, tr1 := runFaulted(t, 1)
	c8, rx8, tr8 := runFaulted(t, 8)
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Errorf("run %d: %d cycles serial vs %d cycles 8-wide", i, c1[i], c8[i])
		}
		if rx1[i] != rx8[i] {
			t.Errorf("run %d: %d retransmits serial vs %d 8-wide", i, rx1[i], rx8[i])
		}
	}
	if !bytes.Equal(tr1, tr8) {
		t.Fatal("faulted event traces differ between serial and 8-wide execution")
	}
	// The plan must actually have bitten somewhere, or the test proves
	// nothing.
	var total int64
	for _, v := range rx1 {
		total += v
	}
	if total == 0 {
		t.Fatal("fault fixture induced no retransmissions")
	}
}

// TestZeroFaultReliablePin pins the wrapper's pass-through: forcing the
// reliable transport with nothing injected must be cycle-identical to
// the plain network and produce zero transport traffic.
func TestZeroFaultReliablePin(t *testing.T) {
	spec := harness.DefaultSpec("fft", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 4
	plain, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Fault = fault.Spec{Reliable: true}
	pinned, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Cycles != plain.Cycles {
		t.Fatalf("reliable wrapper perturbed the zero-fault run: %d vs %d cycles",
			pinned.Cycles, plain.Cycles)
	}
	for _, c := range []stats.Counter{stats.Retransmits, stats.MsgsDropped, stats.AcksSent, stats.DupsSuppressed} {
		if v := pinned.Stats.TotalCount(c); v != 0 {
			t.Fatalf("zero-fault pinned run shows transport counter %v = %d", c, v)
		}
	}
	if pinned.Stats.TotalCount(stats.MsgsSent) != plain.Stats.TotalCount(stats.MsgsSent) {
		t.Fatal("pinned run sent a different number of protocol messages")
	}
}

// TestFaultedRunsStillVerify is the correctness oracle across the
// protocol matrix: with drops and node pauses injected, every protocol
// must still compute the application's reference answers (Run verifies
// them) while showing real retransmission work.
func TestFaultedRunsStillVerify(t *testing.T) {
	fs := fault.Spec{Seed: 7, DropPPM: 15_000, PauseEvery: 200_000, PauseFor: 10_000}
	for _, app := range []string{"fft", "lu"} {
		for _, prot := range []harness.ProtocolKind{harness.HLRC, harness.SC, harness.LRC} {
			spec := harness.DefaultSpec(app, prot)
			spec.Scale = apps.Tiny
			spec.Procs = 4
			spec.Fault = fs
			res, err := harness.Run(spec)
			if err != nil {
				t.Fatalf("%s on %s under faults: %v", app, prot, err)
			}
			if res.Stats.TotalCount(stats.Retransmits) == 0 {
				t.Errorf("%s on %s: no retransmissions under 1.5%% drops", app, prot)
			}
			if res.Stats.TotalCount(stats.AcksSent) == 0 {
				t.Errorf("%s on %s: no acks under active injection", app, prot)
			}
		}
	}
}

// TestDegradationSweep runs the headline experiment at tiny scale and
// checks its structure: one point per (app, proto, rate) in
// deterministic order, baselines attached, retransmits present at the
// higher rates.
func TestDegradationSweep(t *testing.T) {
	s := harness.NewSession(0)
	points, err := s.DegradationSweep(
		[]string{"fft"}, []harness.ProtocolKind{harness.HLRC}, apps.Tiny, 4,
		1, []int64{5_000, 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for i, p := range points {
		if p.App != "fft" || p.Proto != harness.HLRC {
			t.Fatalf("point %d labeled %s/%s", i, p.App, p.Proto)
		}
		if p.BaseCycles <= 0 || p.Cycles <= 0 {
			t.Fatalf("point %d missing cycle data: %+v", i, p)
		}
	}
	if points[0].DropPPM != 5_000 || points[1].DropPPM != 20_000 {
		t.Fatalf("points out of rate order: %+v", points)
	}
	if points[1].Retransmits == 0 {
		t.Fatal("2% drops induced no retransmissions")
	}
	var buf bytes.Buffer
	if err := harness.WriteDegradationCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 points", got)
	}
}
