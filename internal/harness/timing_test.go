package harness_test

import (
	"testing"
	"time"

	"swsm/internal/apps"
	"swsm/internal/harness"
)

func TestTimingBaseScale(t *testing.T) {
	for _, app := range apps.Names() {
		for _, prot := range []harness.ProtocolKind{harness.HLRC, harness.SC} {
			spec := harness.DefaultSpec(app, prot)
			start := time.Now()
			res, err := harness.Run(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", app, prot, err)
			}
			t.Logf("%-16s %-5s wall=%8v simCycles=%12d", app, prot, time.Since(start).Round(time.Millisecond), res.Cycles)
		}
	}
}
