package harness_test

import (
	"testing"

	"swsm/internal/comm"
	"swsm/internal/harness"
)

// The simulator-validation suite (the paper's Appendix analogue): each
// primitive's simulated cost must match the analytic expectation from
// the parameter sets within tight bounds.

func TestPageFetchCostMatchesModel(t *testing.T) {
	p := comm.Achievable()
	got, err := harness.MeasurePageFetch(p)
	if err != nil {
		t.Fatal(err)
	}
	// Request: host overhead + one-way(16B); home: handling cost (zeroed
	// protocol handler); reply: one-way(4 KB page, two packets at most).
	min := p.HostOverhead + harness.ExpectedOneWay(p, 16) + p.MsgHandling +
		harness.ExpectedOneWay(p, 4096+16)
	max := min + 3000 // pipelining slack, wake scheduling, second packet
	if got < min || got > max {
		t.Fatalf("page fetch = %d cycles, want in [%d, %d]", got, min, max)
	}
}

func TestBlockFetchCostMatchesModel(t *testing.T) {
	p := comm.Achievable()
	got, err := harness.MeasureBlockFetch(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	min := p.HostOverhead + harness.ExpectedOneWay(p, 16) + p.MsgHandling +
		harness.ExpectedOneWay(p, 64+16)
	max := min + 1000
	if got < min || got > max {
		t.Fatalf("block fetch = %d cycles, want in [%d, %d]", got, min, max)
	}
}

func TestBlockFetchScalesWithGranularity(t *testing.T) {
	p := comm.Achievable()
	small, err := harness.MeasureBlockFetch(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	large, err := harness.MeasureBlockFetch(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// A 4 KB block moves 4032 more bytes over two bus crossings at 0.67
	// B/cy: about 12k cycles more.
	if large-small < 8000 || large-small > 16000 {
		t.Fatalf("64B=%d 4KB=%d: delta %d out of expected band", small, large, large-small)
	}
}

func TestLockRoundTrip(t *testing.T) {
	p := comm.Achievable()
	got, err := harness.MeasureLockRoundTrip(p)
	if err != nil {
		t.Fatal(err)
	}
	// Acquire: overhead + one-way + handling + grant one-way.  Release is
	// asynchronous (fire and forget) but charges the host overhead.
	min := 2*p.HostOverhead + 2*harness.ExpectedOneWay(p, 20) + p.MsgHandling
	max := min + 2000
	if got < min || got > max {
		t.Fatalf("lock round trip = %d, want in [%d, %d]", got, min, max)
	}
}

func TestBarrierGrowsWithProcs(t *testing.T) {
	p := comm.Achievable()
	var prev int64
	for _, procs := range []int{2, 4, 8, 16} {
		got, err := harness.MeasureBarrier(p, procs)
		if err != nil {
			t.Fatal(err)
		}
		if got <= 0 {
			t.Fatalf("barrier-%d nonpositive", procs)
		}
		if got < prev {
			t.Fatalf("barrier cost decreased with procs: %d procs -> %d cycles (prev %d)", procs, got, prev)
		}
		prev = got
	}
	// Centralized barrier with serialized handlers: 16 procs must pay
	// several times the 2-proc cost.
	two, _ := harness.MeasureBarrier(p, 2)
	sixteen, _ := harness.MeasureBarrier(p, 16)
	if sixteen < 2*two {
		t.Fatalf("16-proc barrier (%d) suspiciously close to 2-proc (%d)", sixteen, two)
	}
}

func TestValidateAllRuns(t *testing.T) {
	res, err := harness.ValidateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 6 {
		t.Fatalf("validation suite produced %d results", len(res))
	}
	for _, r := range res {
		if r.Cycles <= 0 {
			t.Fatalf("%s: nonpositive cost", r.Name)
		}
	}
}

// Zeroing a single communication parameter must never slow a primitive
// down (monotonicity of the cost model).
func TestCostModelMonotonicity(t *testing.T) {
	base := comm.Achievable()
	fetchBase, err := harness.MeasurePageFetch(base)
	if err != nil {
		t.Fatal(err)
	}
	mods := []struct {
		name string
		p    comm.Params
	}{
		{"no-overhead", func() comm.Params { p := base; p.HostOverhead = 0; return p }()},
		{"no-occupancy", func() comm.Params { p := base; p.NIOccupancy = 0; return p }()},
		{"no-handling", func() comm.Params { p := base; p.MsgHandling = 0; return p }()},
		{"infinite-bus", func() comm.Params { p := base; p.IOBusBytesNum = 0; return p }()},
	}
	for _, m := range mods {
		got, err := harness.MeasurePageFetch(m.p)
		if err != nil {
			t.Fatal(err)
		}
		if got > fetchBase {
			t.Fatalf("%s: page fetch rose from %d to %d", m.name, fetchBase, got)
		}
	}
}
