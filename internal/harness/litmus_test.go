package harness_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/apps/litmus"
	"swsm/internal/consistency"
	"swsm/internal/harness"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
)

var checkedProtos = []harness.ProtocolKind{harness.HLRC, harness.SC, harness.LRC}

// TestCheckedConformance is the acceptance matrix: every registered
// application on every real protocol with the conformance checker on.
// A pass certifies not just the right final answer but that every load
// of the run returned a value its protocol's consistency model permits.
func TestCheckedConformance(t *testing.T) {
	for _, app := range apps.Names() {
		if strings.HasPrefix(app, "litmus-") {
			continue // seeds registered by other tests; covered by the ladder
		}
		for _, prot := range checkedProtos {
			app, prot := app, prot
			t.Run(app+"/"+string(prot), func(t *testing.T) {
				t.Parallel()
				spec := harness.DefaultSpec(app, prot)
				spec.Scale = apps.Tiny
				spec.Procs = 4
				spec.Check = true
				res, err := harness.Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				c := res.Consistency
				if c == nil || c.Loads == 0 {
					t.Fatal("checked run carries no checker coverage")
				}
			})
		}
	}
}

// TestCheckPerturbsNothing pins the observer property: turning the
// checker on must not change a single simulated cycle.
func TestCheckPerturbsNothing(t *testing.T) {
	spec := harness.DefaultSpec("fft", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = 4
	plain, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Check = true
	checked, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != checked.Cycles {
		t.Fatalf("checker perturbed the run: %d vs %d cycles", plain.Cycles, checked.Cycles)
	}
}

func runLadder(t *testing.T, parallel int) []byte {
	t.Helper()
	s := harness.NewSession(parallel)
	points, err := s.LitmusSweep(1, 32, checkedProtos, apps.Tiny, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !p.Conforms() {
			t.Fatalf("seed %d on %s: %s", p.Seed, p.Proto, p.Violation)
		}
	}
	var buf bytes.Buffer
	if err := harness.WriteLitmusCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLitmusLadder32Seeds is the acceptance ladder: 32 seeds across all
// three protocols, serial and 8-wide byte-identical.
func TestLitmusLadder32Seeds(t *testing.T) {
	serial := runLadder(t, 1)
	wide := runLadder(t, 8)
	if !bytes.Equal(serial, wide) {
		t.Fatal("litmus ladder differs between serial and 8-wide execution")
	}
	if lines := bytes.Count(serial, []byte("\n")); lines != 1+32*3 {
		t.Fatalf("CSV has %d lines, want header + 96 points", lines)
	}
}

// TestLitmusSweepFaulted drives the ladder through the fault plane: the
// reliable transport must keep every protocol conforming under 2% drops.
func TestLitmusSweepFaulted(t *testing.T) {
	s := harness.NewSession(0)
	points, err := s.LitmusSweep(40, 4, checkedProtos, apps.Tiny, 4, []int64{0, 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4*3*2 {
		t.Fatalf("got %d points, want 24", len(points))
	}
	for _, p := range points {
		if !p.Conforms() {
			t.Fatalf("seed %d on %s at %d ppm: %s", p.Seed, p.Proto, p.DropPPM, p.Violation)
		}
		if p.Loads == 0 && p.Stores == 0 {
			t.Fatalf("seed %d on %s: empty coverage", p.Seed, p.Proto)
		}
	}
}

// brokenHLRC builds the known-bad shim: an HLRC that silently skips its
// n-th page invalidation while still merging vector clocks.
func brokenHLRC(n int) func() proto.Protocol {
	return func() proto.Protocol {
		return hlrc.New(hlrc.Config{Costs: proto.OriginalCosts(), DropNthInvalidation: n})
	}
}

// findBrokenSeed locates a (seed, drop-n) pair where the broken shim
// produces a checker violation on a litmus program.
func findBrokenSeed(t *testing.T) (uint64, int, *litmus.Program, harness.RunSpec) {
	t.Helper()
	for seed := uint64(1); seed <= 60; seed++ {
		spec := harness.LitmusSpec(seed, harness.HLRC, apps.Base, 4)
		prog := litmus.Generate(seed, 4, apps.Base)
		for n := 1; n <= 3; n++ {
			_, err := harness.RunInstance(spec, prog.Clone(), brokenHLRC(n))
			var v *consistency.Violation
			if errors.As(err, &v) {
				return seed, n, prog, spec
			}
		}
	}
	t.Fatal("no litmus seed exposed the dropped invalidation — checker or generator too weak")
	return 0, 0, nil, harness.RunSpec{}
}

// TestBrokenProtocolCaughtAndShrunk is the anti-vacuity oracle: a
// protocol that skips one invalidation must be caught by the checker on
// a litmus program, the same program must pass on the intact protocol,
// and the shrinker must emit a smaller, still-failing reproducer.
func TestBrokenProtocolCaughtAndShrunk(t *testing.T) {
	seed, n, prog, spec := findBrokenSeed(t)
	t.Logf("broken shim (drop invalidation #%d) caught on seed %d", n, seed)

	// Anti-vacuity: the intact protocol must pass the very same program.
	if _, err := harness.RunInstance(spec, prog.Clone(), nil); err != nil {
		t.Fatalf("intact protocol fails seed %d: %v", seed, err)
	}

	min := harness.ShrinkLitmus(spec, prog, brokenHLRC(n))
	if min == nil {
		t.Fatal("shrinker claims the original does not fail")
	}
	if min.Ops() > prog.Ops() {
		t.Fatalf("shrunk program grew: %d -> %d ops", prog.Ops(), min.Ops())
	}
	// The minimal reproducer still fails the broken shim...
	_, err := harness.RunInstance(spec, min.Clone(), brokenHLRC(n))
	var v *consistency.Violation
	if !errors.As(err, &v) {
		t.Fatalf("shrunk reproducer no longer fails: %v", err)
	}
	// ...and prints an actionable report.
	if !strings.Contains(min.String(), "P0:") {
		t.Fatalf("reproducer does not render:\n%s", min)
	}
	t.Logf("minimal reproducer (%d of %d ops):\n%s\nviolation: %v", min.Ops(), prog.Ops(), min, v)
}

// TestLitmusSweepGridOrder pins the deterministic point ordering.
func TestLitmusSweepGridOrder(t *testing.T) {
	s := harness.NewSession(0)
	points, err := s.LitmusSweep(100, 2, []harness.ProtocolKind{harness.HLRC, harness.SC}, apps.Tiny, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		seed uint64
		prot harness.ProtocolKind
	}{{100, harness.HLRC}, {100, harness.SC}, {101, harness.HLRC}, {101, harness.SC}}
	if len(points) != len(want) {
		t.Fatalf("got %d points, want %d", len(points), len(want))
	}
	for i, w := range want {
		if points[i].Seed != w.seed || points[i].Proto != w.prot {
			t.Fatalf("point %d = seed %d/%s, want %d/%s",
				i, points[i].Seed, points[i].Proto, w.seed, w.prot)
		}
		if points[i].Cycles <= 0 {
			t.Fatalf("point %d missing cycles", i)
		}
	}
	if harness.FormatLitmus(points) == "" {
		t.Fatal("empty formatted output")
	}
}
