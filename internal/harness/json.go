package harness

import (
	"encoding/json"
	"io"

	"swsm/internal/consistency"
	"swsm/internal/stats"
)

// RunRow is the machine-readable form of a Result: the one JSON shape
// shared by the svmsim/svmbench -json output, the experiment service's
// responses, the persistent result store's payloads, and the CI smoke
// checks.  It carries everything a remote consumer can use — the spec,
// its content key, the cycle count, the Figure-4 breakdown, the
// machine-wide counters and the Table-4 protocol percentages — and
// deliberately omits in-process-only artifacts (the live *core.Machine,
// captured traces).
//
// Serialized bytes are deterministic for a given Result: maps are the
// only unordered parts and encoding/json sorts map keys.
type RunRow struct {
	Key    string  `json:"key"`
	Spec   RunSpec `json:"spec"`
	Cycles int64   `json:"cycles"`
	// Breakdown is the average per-processor cycle split by category
	// (busy, cache, data, lock, barrier, protocol, handler).
	Breakdown map[string]float64 `json:"breakdown"`
	// Counters holds the non-zero machine-wide event counters.
	Counters map[string]int64 `json:"counters"`
	// ProtocolPct are the Table-4 numbers: percent of total processor
	// time in protocol activity and its diff/handler split.
	ProtocolPct struct {
		Total   float64 `json:"total"`
		Diff    float64 `json:"diff"`
		Handler float64 `json:"handler"`
	} `json:"protocolPct"`
	// Imbalance is max/mean across processors for the wait categories.
	Imbalance map[string]float64 `json:"imbalance"`
	// Consistency is the conformance checker's coverage summary when the
	// spec requested checking.
	Consistency *consistency.Summary `json:"consistency,omitempty"`
	// SeqCycles/Speedup are filled only when the producer also resolved
	// the sequential baseline (svmsim output, service speedup requests).
	SeqCycles int64   `json:"seqCycles,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

// NewRunRow flattens a Result into its machine-readable row.
func NewRunRow(res *Result) RunRow {
	row := RunRow{
		Key:       res.Spec.Key(),
		Spec:      res.Spec,
		Cycles:    res.Cycles,
		Breakdown: make(map[string]float64, stats.NumCategories),
		Counters:  make(map[string]int64),
		Imbalance: map[string]float64{
			stats.DataWait.String():    res.Stats.Imbalance(stats.DataWait),
			stats.LockWait.String():    res.Stats.Imbalance(stats.LockWait),
			stats.BarrierWait.String(): res.Stats.Imbalance(stats.BarrierWait),
		},
		Consistency: res.Consistency,
	}
	avg := res.Stats.AverageBreakdown()
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		row.Breakdown[c.String()] = avg[c]
	}
	for c := stats.Counter(0); c < stats.NumCounters; c++ {
		if v := res.Stats.TotalCount(c); v != 0 {
			row.Counters[c.String()] = v
		}
	}
	row.ProtocolPct.Total, row.ProtocolPct.Diff, row.ProtocolPct.Handler =
		res.Stats.ProtocolPercent()
	return row
}

// WithSpeedup returns a copy of the row annotated with the sequential
// baseline's cycle count and the resulting speedup.
func (r RunRow) WithSpeedup(seqCycles int64) RunRow {
	r.SeqCycles = seqCycles
	if r.Cycles > 0 {
		r.Speedup = float64(seqCycles) / float64(r.Cycles)
	}
	return r
}

// WriteRunRowJSON writes the row as indented JSON followed by a newline
// (the svmsim -json output format).
func WriteRunRowJSON(w io.Writer, row RunRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(row)
}
