package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/fault"
	"swsm/internal/stats"
)

// The degradation sweep is the fault layer's headline experiment: sweep
// the wire drop rate for every (app, protocol) cell, verify that each
// faulted run still computes the fault-free answers (Run's built-in
// verification enforces this), and report how much the retransmit/ack
// machinery slows the system down — the measurable price of reliability
// the paper's zero-fault fabric never pays.

// DegradationPoint is one measurement of the drop-rate sweep.
type DegradationPoint struct {
	App     string
	Proto   ProtocolKind
	DropPPM int64
	// Cycles is the faulted run's parallel execution time; BaseCycles
	// the zero-fault run of the same spec.
	Cycles     int64
	BaseCycles int64
	// SlowdownPct is (Cycles-BaseCycles)/BaseCycles in percent.
	SlowdownPct float64
	// Transport activity the faults induced.
	Retransmits int64
	Drops       int64
	Acks        int64
	Dups        int64
}

// FaultedSpec returns spec with a drop-rate fault plan attached: seeded
// deterministic drops at dropPPM parts per million, routed through the
// reliable transport.
func FaultedSpec(spec RunSpec, seed uint64, dropPPM int64) RunSpec {
	spec.Fault = fault.Spec{Seed: seed, DropPPM: dropPPM, Reliable: true}
	return spec
}

// DegradationSweep measures slowdown vs drop rate over app x protocol x
// dropPPMs through the session's worker pool.  Every faulted run is
// verified against the application's reference answer, so a point coming
// back at all certifies the reliability machinery preserved correctness
// at that fault rate.  Points are ordered app-major, then protocol, then
// drop rate — deterministic regardless of execution parallelism.
func (s *Session) DegradationSweep(appNames []string, protos []ProtocolKind, scale apps.Scale, procs int, seed uint64, dropPPMs []int64) ([]DegradationPoint, error) {
	type slot struct {
		app     string
		prot    ProtocolKind
		dropPPM int64
	}
	var specs []RunSpec
	var slots []slot
	for _, app := range appNames {
		for _, prot := range protos {
			base := DefaultSpec(app, prot)
			base.Scale = scale
			base.Procs = procs
			specs = append(specs, base)
			slots = append(slots, slot{app, prot, -1}) // clean baseline
			for _, ppm := range dropPPMs {
				specs = append(specs, FaultedSpec(base, seed, ppm))
				slots = append(slots, slot{app, prot, ppm})
			}
		}
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, fmt.Errorf("degradation sweep: %w", err)
	}
	var out []DegradationPoint
	var base int64
	for i, sl := range slots {
		res := results[i]
		if sl.dropPPM < 0 {
			base = res.Cycles
			continue
		}
		st := res.Stats
		p := DegradationPoint{
			App: sl.app, Proto: sl.prot, DropPPM: sl.dropPPM,
			Cycles: res.Cycles, BaseCycles: base,
			Retransmits: st.TotalCount(stats.Retransmits),
			Drops:       st.TotalCount(stats.MsgsDropped),
			Acks:        st.TotalCount(stats.AcksSent),
			Dups:        st.TotalCount(stats.DupsSuppressed),
		}
		if base > 0 {
			p.SlowdownPct = float64(res.Cycles-base) / float64(base) * 100
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatDegradation renders sweep points grouped per (app, protocol)
// row, one column per drop rate.
func FormatDegradation(points []DegradationPoint) string {
	var sb strings.Builder
	var curKey string
	for _, p := range points {
		key := p.App + "/" + string(p.Proto)
		if key != curKey {
			if curKey != "" {
				sb.WriteByte('\n')
			}
			curKey = key
			fmt.Fprintf(&sb, "  %-24s", key)
		}
		fmt.Fprintf(&sb, "  %s%%:%+.1f%% (rx %d)",
			strconv.FormatFloat(float64(p.DropPPM)/1e4, 'f', -1, 64),
			p.SlowdownPct, p.Retransmits)
	}
	if curKey != "" {
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteDegradationCSV emits one row per sweep point:
// app,protocol,drop_ppm,cycles,base_cycles,slowdown_pct,retransmits,drops,acks,dups.
func WriteDegradationCSV(w io.Writer, points []DegradationPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "protocol", "drop_ppm", "cycles", "base_cycles",
		"slowdown_pct", "retransmits", "drops", "acks", "dups",
	}); err != nil {
		return err
	}
	n := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		if err := cw.Write([]string{
			p.App, string(p.Proto), n(p.DropPPM), n(p.Cycles), n(p.BaseCycles),
			strconv.FormatFloat(p.SlowdownPct, 'f', 4, 64),
			n(p.Retransmits), n(p.Drops), n(p.Acks), n(p.Dups),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
