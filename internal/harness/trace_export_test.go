package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"swsm/internal/stats"
	"swsm/internal/trace"
)

func checkGolden(t *testing.T, got []byte, name string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestWriteBreakdownTimelineCSVGolden(t *testing.T) {
	m := stats.New(2)
	s := &trace.Sampler{Every: 100}
	m.Add(0, stats.Busy, 50)
	m.Add(1, stats.LockWait, 20)
	s.Snapshot(100, m)
	m.Add(0, stats.Busy, 10)
	s.Snapshot(200, m)

	var buf bytes.Buffer
	if err := WriteBreakdownTimelineCSV(&buf, s.Rows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "breakdown_timeline.golden.csv")
}

func TestWriteHotObjectsCSVGolden(t *testing.T) {
	tr := trace.NewCapture(trace.Options{Profile: true})
	tr.PageFetch(0, 100, 0, 5)
	tr.PageFetch(0, 300, 1, 9)
	tr.DiffCreate(10, 0, 5, 4) // 4 words = 32 bytes
	tr.PageFault(5, 0, 5, true)
	tr.Twin(6, 0, 5)
	tr.Invalidate(7, 2, 5)
	tr.LockWait(0, 50, 0, 1)
	tr.LockWait(0, 70, 1, 4)
	tr.BarrierWait(0, 500, 0, 0)

	var buf bytes.Buffer
	if err := WriteHotObjectsCSV(&buf, tr.Data().Hot, 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "hot_objects.golden.csv")
}

func TestWriteHotObjectsCSVTopK(t *testing.T) {
	tr := trace.NewCapture(trace.Options{Profile: true})
	for u := int64(0); u < 5; u++ {
		tr.PageFetch(0, (u+1)*10, 0, u)
	}
	var buf bytes.Buffer
	if err := WriteHotObjectsCSV(&buf, tr.Data().Hot, 2); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != 3 { // header + 2 page rows
		t.Fatalf("top-2 emitted %d lines:\n%s", lines, buf.String())
	}
}
