// Simulator self-benchmarks: fixed-iteration measurements of the engine
// hot paths and of end-to-end Figure-3 points, reported as the
// BENCH_<rev>.json trajectory artifact that CI gates on.
//
// Unlike testing.Benchmark, iteration counts are fixed constants: the
// numbers are compared across commits, so run-to-run variance must come
// only from the machine, never from the harness choosing a different N.
// Every measurement is best-of-Reps wall time (the minimum is the run
// least disturbed by the host), with allocations per op from the same
// rep.
package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"swsm/internal/apps"
	"swsm/internal/sim"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name  string `json:"name"`
	Iters int64  `json:"iters"`
	// NsPerOp is wall nanoseconds per operation (event, sleep, or run).
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is operations per wall second.
	OpsPerSec float64 `json:"ops_per_sec"`
	// SimCycles is the virtual time the measured work advanced.
	SimCycles int64 `json:"sim_cycles"`
	// CyclesPerSec is simulated cycles per wall second — the headline
	// throughput metric the CI gate compares.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// WallSeconds is the best rep's wall time.
	WallSeconds float64 `json:"wall_seconds"`
}

// BenchReport is the BENCH_<rev>.json document.
type BenchReport struct {
	Rev     string        `json:"rev"`
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	Benches []BenchResult `json:"benches"`
}

// benchReps is the best-of repetition count for every benchmark.
const benchReps = 5

// runTimed measures f best-of-benchReps.  f performs the full fixed
// workload and returns how many operations it executed and how much
// virtual time it advanced.
func runTimed(name string, f func() (ops, simCycles int64)) BenchResult {
	f() // warm-up: pools, buckets, code paths
	var best BenchResult
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < benchReps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		ops, simCycles := f()
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&ms1)
		if rep == 0 || wall < best.WallSeconds {
			best = BenchResult{
				Name:         name,
				Iters:        ops,
				NsPerOp:      wall * 1e9 / float64(ops),
				OpsPerSec:    float64(ops) / wall,
				SimCycles:    simCycles,
				CyclesPerSec: float64(simCycles) / wall,
				AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
				WallSeconds:  wall,
			}
		}
	}
	return best
}

// benchChainEvents is the event core's tightest loop: one self-
// rescheduling callback, exercising the register fast path.
func benchChainEvents() BenchResult {
	const n = 2_000_000
	return runTimed("engine/chain-events", func() (int64, int64) {
		e := sim.NewEngine()
		start := e.Now()
		remaining := n
		var chain func()
		chain = func() {
			if remaining > 0 {
				remaining--
				e.After(1, chain)
			}
		}
		e.At(start, chain)
		if _, err := e.Run(); err != nil {
			panic(err)
		}
		return n, e.Now() - start
	})
}

// benchFanoutEvents schedules bursts of 64 simultaneous events across 8
// timestamps, exercising calendar buckets rather than the register.
func benchFanoutEvents() BenchResult {
	const n = 2_000_000
	return runTimed("engine/fanout-events", func() (int64, int64) {
		e := sim.NewEngine()
		start := e.Now()
		fn := func() {}
		for i := 0; i < n; i += 64 {
			base := e.Now()
			for j := 0; j < 64; j++ {
				e.At(base+sim.Time(j%8), fn)
			}
			if _, err := e.Run(); err != nil {
				panic(err)
			}
		}
		return n, e.Now() - start
	})
}

// benchSleepFastpath measures the batched time-quantum fast path: a lone
// coroutine sleeping with nothing else queued advances the clock in
// place, with no event, no yield and no context switch.
func benchSleepFastpath() BenchResult {
	const n = 2_000_000
	const quantum = 100
	return runTimed("engine/sleep-fastpath", func() (int64, int64) {
		e := sim.NewEngine()
		start := e.Now()
		e.Spawn("worker", start, func(c *sim.Coro) {
			for i := 0; i < n; i++ {
				c.Sleep(quantum)
			}
		})
		if _, err := e.Run(); err != nil {
			panic(err)
		}
		return n, e.Now() - start
	})
}

// benchCoroHandoff forces the slow path: two coroutines with interleaved
// wake-ups must really suspend, so every sleep is one direct stack
// handoff through the scheduler.
func benchCoroHandoff() BenchResult {
	const n = 1_000_000 // total sleeps across both coroutines
	return runTimed("engine/coro-handoff", func() (int64, int64) {
		e := sim.NewEngine()
		start := e.Now()
		body := func(c *sim.Coro) {
			for i := 0; i < n/2; i++ {
				c.Sleep(1)
			}
		}
		e.Spawn("a", start, body)
		e.Spawn("b", start, body)
		if _, err := e.Run(); err != nil {
			panic(err)
		}
		return n, e.Now() - start
	})
}

// benchFig3 runs one end-to-end Figure-3 point (tiny scale so CI stays
// fast) and reports simulated cycles per wall second.
func benchFig3(app string, procs int) BenchResult {
	name := fmt.Sprintf("fig3/%s-tiny-%dp", app, procs)
	return runTimed(name, func() (int64, int64) {
		spec := DefaultSpec(app, HLRC)
		spec.Scale = apps.Tiny
		spec.Procs = procs
		res, err := Run(spec)
		if err != nil {
			panic(err)
		}
		return 1, res.Cycles
	})
}

// RunBench executes the full self-benchmark suite.
func RunBench(rev string) BenchReport {
	return BenchReport{
		Rev:    rev,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		Benches: []BenchResult{
			benchChainEvents(),
			benchFanoutEvents(),
			benchSleepFastpath(),
			benchCoroHandoff(),
			benchFig3("fft", 4),
			benchFig3("lu", 4),
		},
	}
}

// CompareBench gates the current report against a committed baseline:
// any bench present in both fails on a >10% cycles/sec regression, and
// allocations per op may grow by at most 1% + 0.01 absolute regardless
// of speed — effectively zero for the steady-state engine benches
// (baseline ~0 allocs/op), while the whole-run fig3 benches tolerate the
// ±1 allocation of runtime-internal jitter (sudog refills, map growth
// timing) without letting a real per-access allocation through.  Benches
// only present on one side are reported but never fail, so the suite can
// grow without invalidating old baselines.
func CompareBench(baseline, current BenchReport) []string {
	const tolerance = 0.10
	base := make(map[string]BenchResult, len(baseline.Benches))
	for _, b := range baseline.Benches {
		base[b.Name] = b
	}
	var failures []string
	for _, cur := range current.Benches {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if b.CyclesPerSec > 0 && cur.CyclesPerSec < b.CyclesPerSec*(1-tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: cycles/sec regressed %.1f%% (baseline %.3g, current %.3g)",
				cur.Name, 100*(1-cur.CyclesPerSec/b.CyclesPerSec),
				b.CyclesPerSec, cur.CyclesPerSec))
		}
		if cur.AllocsPerOp > b.AllocsPerOp*1.01+0.01 {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op grew from %.3f to %.3f",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	return failures
}

// LoadBenchReport reads a BENCH_*.json file.
func LoadBenchReport(path string) (BenchReport, error) {
	var r BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
