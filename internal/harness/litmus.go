package harness

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"swsm/internal/apps"
	"swsm/internal/apps/litmus"
	"swsm/internal/consistency"
	"swsm/internal/proto"
)

// The litmus sweep is the correctness layer's headline experiment: run a
// ladder of seeded random load/store/lock/barrier programs across the
// protocol grid (optionally under injected faults) with the conformance
// checker on, so every load of every run is verified against its
// protocol's declared consistency model — not just the end-to-end
// answer.

// LitmusPoint is one (seed, protocol, fault-rate) cell of the sweep.
type LitmusPoint struct {
	Seed    uint64
	Proto   ProtocolKind
	DropPPM int64
	Cycles  int64
	// Checker coverage: word-granularity loads/stores verified and sync
	// operations ordered.
	Loads   int64
	Stores  int64
	SyncOps int64
	// Violation is empty when the run conforms; otherwise the checker's
	// full report.  Application-level failures (lost writes under
	// faults) abort the sweep instead — those are transport bugs, not
	// consistency results.
	Violation string
}

// Conforms reports whether the point passed the checker.
func (p LitmusPoint) Conforms() bool { return p.Violation == "" }

// LitmusSpec builds the checked RunSpec for one litmus seed, registering
// the seed's app if needed.
func LitmusSpec(seed uint64, prot ProtocolKind, scale apps.Scale, procs int) RunSpec {
	spec := DefaultSpec(litmus.Ensure(seed), prot)
	spec.Scale = scale
	spec.Procs = procs
	spec.Check = true
	return spec
}

// LitmusSweep runs seeds baseSeed..baseSeed+n-1 against every protocol
// and drop rate (PPM; 0 = the clean fabric), all checked, through the
// session's worker pool.  Points come back in grid order — seed-major,
// then protocol, then rate — regardless of execution parallelism.
// Consistency violations are reported in the point; any other failure
// aborts the sweep.
func (s *Session) LitmusSweep(baseSeed uint64, n int, protos []ProtocolKind, scale apps.Scale, procs int, dropPPMs []int64) ([]LitmusPoint, error) {
	if len(dropPPMs) == 0 {
		dropPPMs = []int64{0}
	}
	var specs []RunSpec
	var pts []LitmusPoint
	for i := 0; i < n; i++ {
		seed := baseSeed + uint64(i)
		for _, prot := range protos {
			for _, ppm := range dropPPMs {
				spec := LitmusSpec(seed, prot, scale, procs)
				if ppm > 0 {
					spec = FaultedSpec(spec, seed, ppm)
				}
				specs = append(specs, spec)
				pts = append(pts, LitmusPoint{Seed: seed, Proto: prot, DropPPM: ppm})
			}
		}
	}
	// Fan out through the memoizing pool but keep per-point errors:
	// unlike RunAll, a violation in one cell must not hide the rest of
	// the ladder.
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(specs[i])
		}(i)
	}
	wg.Wait()
	for i := range pts {
		if errs[i] != nil {
			var v *consistency.Violation
			if errors.As(errs[i], &v) {
				pts[i].Violation = v.Error()
				continue
			}
			return nil, fmt.Errorf("litmus sweep seed %d on %s (drop %d ppm): %w",
				pts[i].Seed, pts[i].Proto, pts[i].DropPPM, errs[i])
		}
		res := results[i]
		pts[i].Cycles = res.Cycles
		if c := res.Consistency; c != nil {
			pts[i].Loads, pts[i].Stores, pts[i].SyncOps = c.Loads, c.Stores, c.SyncOps
		}
	}
	return pts, nil
}

// ShrinkLitmus minimizes a litmus program that fails the checker under
// spec: each shrink candidate re-runs through RunInstance (bypassing the
// registry and memoization — candidates are one-offs) and a removal is
// kept only while the checker still reports a violation.  newProt
// substitutes the protocol under test (the known-bad oracle); nil uses
// spec.Protocol.  Returns the minimal program, or nil if the original
// does not actually fail.
func ShrinkLitmus(spec RunSpec, prog *litmus.Program, newProt func() proto.Protocol) *litmus.Program {
	spec.Check = true
	fails := func(cand *litmus.Program) bool {
		_, err := RunInstance(spec, cand, newProt)
		var v *consistency.Violation
		return errors.As(err, &v)
	}
	if !fails(prog) {
		return nil
	}
	return litmus.Shrink(prog, fails)
}

// FormatLitmus renders sweep points one line per cell.
func FormatLitmus(points []LitmusPoint) string {
	var sb strings.Builder
	for _, p := range points {
		status := "ok"
		if !p.Conforms() {
			status = "VIOLATION"
		}
		fmt.Fprintf(&sb, "  seed %-6d %-6s drop %-6d  %12d cycles  %6d loads %6d stores %4d syncs  %s\n",
			p.Seed, p.Proto, p.DropPPM, p.Cycles, p.Loads, p.Stores, p.SyncOps, status)
		if !p.Conforms() {
			fmt.Fprintf(&sb, "    %s\n", strings.ReplaceAll(p.Violation, "\n", "\n    "))
		}
	}
	return sb.String()
}

// WriteLitmusCSV emits one row per point:
// seed,protocol,drop_ppm,cycles,loads,stores,sync_ops,conforms.
func WriteLitmusCSV(w io.Writer, points []LitmusPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seed", "protocol", "drop_ppm", "cycles", "loads", "stores", "sync_ops", "conforms",
	}); err != nil {
		return err
	}
	n := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		if err := cw.Write([]string{
			strconv.FormatUint(p.Seed, 10), string(p.Proto), n(p.DropPPM), n(p.Cycles),
			n(p.Loads), n(p.Stores), n(p.SyncOps), strconv.FormatBool(p.Conforms()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
