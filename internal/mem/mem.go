// Package mem provides the per-node physical memories of the simulated
// cluster.  Every node owns an independent copy of the shared address
// space, allocated lazily page by page; coherence protocols move real
// bytes between these copies, so applications compute correct results
// only when the protocol is correct.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Page geometry of the simulated virtual memory system.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB, the SVM coherence unit
	WordSize  = 4              // diffs compare at word granularity
)

// Addr is a simulated shared-address-space address.
type Addr = int64

// PageOf returns the page number containing addr.
func PageOf(a Addr) int64 { return a >> PageShift }

// PageBase returns the first address of page pn.
func PageBase(pn int64) Addr { return pn << PageShift }

// NodeMem is one node's physical memory: a lazily allocated array of page
// frames covering the shared address space.
type NodeMem struct {
	frames []*[PageSize]byte
	limit  Addr
}

// NewNodeMem creates a memory covering addresses [0, limit).
func NewNodeMem(limit Addr) *NodeMem {
	nPages := (limit + PageSize - 1) >> PageShift
	return &NodeMem{frames: make([]*[PageSize]byte, nPages), limit: limit}
}

// Limit reports the address-space size.
func (m *NodeMem) Limit() Addr { return m.limit }

// Frame returns the page frame for page pn, allocating it zeroed on first
// use.
func (m *NodeMem) Frame(pn int64) *[PageSize]byte {
	// The slice index carries the range check (an out-of-range or
	// negative page is an internal protocol bug and panics either way);
	// first-touch allocation is outlined.  Both keep Frame inlinable,
	// and every simulated load and store funnels through here.
	f := m.frames[pn]
	if f == nil {
		f = m.newFrame(pn)
	}
	return f
}

//go:noinline
func (m *NodeMem) newFrame(pn int64) *[PageSize]byte {
	f := new([PageSize]byte)
	m.frames[pn] = f
	return f
}

// Allocated reports whether page pn has a frame (for tests).
func (m *NodeMem) Allocated(pn int64) bool {
	return pn >= 0 && pn < int64(len(m.frames)) && m.frames[pn] != nil
}

// The word and double accessors below are the data plane of every
// simulated load and store.  Each keeps a minimal hot body — one frame
// pointer load, one offset mask, one fixed-width move — and outlines
// the rare cases (first touch of a page, a double straddling a page
// boundary) so the hot body stays small.

// ReadWord loads the 32-bit word at a (must be word-aligned within one page).
func (m *NodeMem) ReadWord(a Addr) uint32 {
	f := m.frames[a>>PageShift]
	if f == nil {
		f = m.newFrame(a >> PageShift)
	}
	off := a & (PageSize - 1)
	return binary.LittleEndian.Uint32(f[off : off+4])
}

// WriteWord stores a 32-bit word at a.
func (m *NodeMem) WriteWord(a Addr, v uint32) {
	f := m.frames[a>>PageShift]
	if f == nil {
		f = m.newFrame(a >> PageShift)
	}
	off := a & (PageSize - 1)
	binary.LittleEndian.PutUint32(f[off:off+4], v)
}

// ReadU64 loads a 64-bit value; straddling a page boundary is allowed
// but slow.
func (m *NodeMem) ReadU64(a Addr) uint64 {
	f := m.frames[a>>PageShift]
	off := a & (PageSize - 1)
	if f == nil || off > PageSize-8 {
		return m.readU64Slow(a)
	}
	return binary.LittleEndian.Uint64(f[off : off+8])
}

//go:noinline
func (m *NodeMem) readU64Slow(a Addr) uint64 {
	off := a & (PageSize - 1)
	if off+8 > PageSize {
		// Assemble across the boundary.
		lo := uint64(m.ReadWord(a))
		hi := uint64(m.ReadWord(a + 4))
		return lo | hi<<32
	}
	f := m.Frame(PageOf(a))
	return binary.LittleEndian.Uint64(f[off : off+8])
}

// WriteU64 stores a 64-bit value.
func (m *NodeMem) WriteU64(a Addr, v uint64) {
	f := m.frames[a>>PageShift]
	off := a & (PageSize - 1)
	if f == nil || off > PageSize-8 {
		m.writeU64Slow(a, v)
		return
	}
	binary.LittleEndian.PutUint64(f[off:off+8], v)
}

//go:noinline
func (m *NodeMem) writeU64Slow(a Addr, v uint64) {
	off := a & (PageSize - 1)
	if off+8 > PageSize {
		m.WriteWord(a, uint32(v))
		m.WriteWord(a+4, uint32(v>>32))
		return
	}
	f := m.Frame(PageOf(a))
	binary.LittleEndian.PutUint64(f[off:off+8], v)
}

// ReadF64 loads a float64.
func (m *NodeMem) ReadF64(a Addr) float64 { return math.Float64frombits(m.ReadU64(a)) }

// WriteF64 stores a float64.
func (m *NodeMem) WriteF64(a Addr, v float64) { m.WriteU64(a, math.Float64bits(v)) }

// CopyOut copies size bytes starting at a into dst, which may span pages.
func (m *NodeMem) CopyOut(a Addr, dst []byte) {
	for len(dst) > 0 {
		pn := PageOf(a)
		off := a & (PageSize - 1)
		n := PageSize - off
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		copy(dst[:n], m.Frame(pn)[off:off+n])
		dst = dst[n:]
		a += n
	}
}

// CopyIn copies src into memory starting at a, possibly spanning pages.
func (m *NodeMem) CopyIn(a Addr, src []byte) {
	for len(src) > 0 {
		pn := PageOf(a)
		off := a & (PageSize - 1)
		n := PageSize - off
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		copy(m.Frame(pn)[off:off+n], src[:n])
		src = src[n:]
		a += n
	}
}

// Arena is a simple bump allocator carving the shared address space into
// application data structures, with alignment support so allocations can
// be page- or block-aligned to control sharing granularity.
type Arena struct {
	next  Addr
	limit Addr
}

// NewArena allocates from [start, limit).
func NewArena(start, limit Addr) *Arena {
	return &Arena{next: start, limit: limit}
}

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1
// means word alignment).
func (ar *Arena) Alloc(size int64, align int64) Addr {
	if align < WordSize {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	a := (ar.next + align - 1) &^ (align - 1)
	if a+size > ar.limit {
		panic(fmt.Sprintf("mem: arena exhausted: want %d bytes at %d, limit %d", size, a, ar.limit))
	}
	ar.next = a + size
	return a
}

// AllocPage reserves size bytes starting on a fresh page.
func (ar *Arena) AllocPage(size int64) Addr { return ar.Alloc(size, PageSize) }

// Used reports the high-water mark of allocation.
func (ar *Arena) Used() Addr { return ar.next }
