package mem

import (
	"testing"
	"testing/quick"
)

func TestLazyAllocation(t *testing.T) {
	m := NewNodeMem(1 << 20)
	if m.Allocated(5) {
		t.Fatal("page allocated before first touch")
	}
	m.WriteWord(5*PageSize+16, 42)
	if !m.Allocated(5) {
		t.Fatal("page not allocated after write")
	}
	if m.Allocated(6) {
		t.Fatal("neighbour page allocated spuriously")
	}
	if got := m.ReadWord(5*PageSize + 16); got != 42 {
		t.Fatalf("read back %d, want 42", got)
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := NewNodeMem(1 << 16)
	f := func(off uint16, v uint32) bool {
		a := Addr(off) &^ 3
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF64RoundTrip(t *testing.T) {
	m := NewNodeMem(1 << 16)
	f := func(off uint16, v float64) bool {
		a := Addr(off) &^ 7
		m.WriteF64(a, v)
		return m.ReadF64(a) == v || v != v // NaN compares false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64AcrossPageBoundary(t *testing.T) {
	m := NewNodeMem(1 << 20)
	a := Addr(PageSize - 4)
	m.WriteU64(a, 0x1122334455667788)
	if got := m.ReadU64(a); got != 0x1122334455667788 {
		t.Fatalf("cross-page u64 = %x", got)
	}
}

func TestCopySpansPages(t *testing.T) {
	m := NewNodeMem(1 << 20)
	src := make([]byte, 3*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	base := Addr(PageSize - 100)
	m.CopyIn(base, src)
	dst := make([]byte, len(src))
	m.CopyOut(base, dst)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %d != %d", i, src[i], dst[i])
		}
	}
}

func TestNodesIndependent(t *testing.T) {
	a := NewNodeMem(1 << 16)
	b := NewNodeMem(1 << 16)
	a.WriteWord(0, 1)
	if b.ReadWord(0) != 0 {
		t.Fatal("node memories share state")
	}
}

func TestArenaAlignment(t *testing.T) {
	ar := NewArena(100, 1<<20)
	a := ar.Alloc(10, 0)
	if a%WordSize != 0 {
		t.Fatalf("default alloc not word aligned: %d", a)
	}
	p := ar.AllocPage(10)
	if p%PageSize != 0 {
		t.Fatalf("page alloc not page aligned: %d", p)
	}
	q := ar.Alloc(8, 64)
	if q%64 != 0 {
		t.Fatalf("64B alloc not aligned: %d", q)
	}
	if q < p+10 {
		t.Fatal("allocations overlap")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ar := NewArena(0, 128)
	ar.Alloc(256, 0)
}

func TestPageOfBase(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf wrong")
	}
	if PageBase(3) != 3*PageSize {
		t.Fatal("PageBase wrong")
	}
}
