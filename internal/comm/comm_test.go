package comm

import (
	"testing"

	"swsm/internal/sim"
)

func TestParamSets(t *testing.T) {
	a := Achievable()
	if a.HostOverhead != 600 || a.NIOccupancy != 400 || a.MsgHandling != 200 {
		t.Fatalf("achievable set wrong: %+v", a)
	}
	b := Best()
	if b.HostOverhead != 0 || b.NIOccupancy != 0 || b.MsgHandling != 0 {
		t.Fatalf("best set wrong: %+v", b)
	}
	if b.IOBusBytesNum != a.IOBusBytesNum || b.IOBusBytesDen != a.IOBusBytesDen {
		t.Fatalf("best set must keep achievable bandwidth: %+v", b)
	}
	h := Halfway()
	if h.HostOverhead*2 != a.HostOverhead || h.NIOccupancy*2 != a.NIOccupancy {
		t.Fatalf("halfway not half of achievable: %+v", h)
	}
	if h.IOBusBytesNum != a.IOBusBytesNum || h.IOBusBytesDen != a.IOBusBytesDen {
		t.Fatalf("halfway must keep achievable bandwidth (as Best does): %+v", h)
	}
	w := Worse()
	if w.HostOverhead != 2*a.HostOverhead {
		t.Fatalf("worse not double: %+v", w)
	}
	bp := BetterThanBest()
	if bp.LinkLatency != 0 || bp.IOBusBytesNum != 4 {
		t.Fatalf("B+ wrong: %+v", bp)
	}
	for _, name := range []string{"A", "B", "H", "W", "B+"} {
		if _, err := ParamsByName(name); err != nil {
			t.Fatalf("ParamsByName(%s): %v", name, err)
		}
	}
	if _, err := ParamsByName("Z"); err == nil {
		t.Fatal("expected error for unknown set")
	}
}

func TestBandwidthMBs(t *testing.T) {
	if got := Achievable().BandwidthMBs(); got < 130 || got > 140 {
		t.Fatalf("achievable bandwidth = %.1f MB/s, want ~133", got)
	}
	inf := Params{IOBusBytesNum: 0, IOBusBytesDen: 1}
	if inf.BandwidthMBs() != -1 {
		t.Fatal("infinite bandwidth should report -1")
	}
}

func TestScale(t *testing.T) {
	a := Achievable()
	half := a.Scale(1, 2)
	if half.HostOverhead != 300 {
		t.Fatalf("scaled overhead = %d", half.HostOverhead)
	}
	// Bandwidth cost per byte halves => TransferCycles halves.
	full := sim.NewBandwidth("f", a.IOBusBytesNum, a.IOBusBytesDen)
	halfbw := sim.NewBandwidth("h", half.IOBusBytesNum, half.IOBusBytesDen)
	if halfbw.TransferCycles(3000) >= full.TransferCycles(3000) {
		t.Fatal("halved cost should transfer faster")
	}
}

func deliverAt(t *testing.T, p Params, size int64) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 4, p)
	var at sim.Time = -1
	eng.At(0, func() {
		nw.Send(&Message{Src: 0, Dst: 1, Size: size,
			OnDeliver: func(now sim.Time) { at = now }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		t.Fatal("message never delivered")
	}
	return at
}

func TestSmallMessageLatency(t *testing.T) {
	// Achievable, 32B payload + 32B header = 64B: srcIO ceil(64*3/2)=96,
	// NI 400, link 2, NI 400, dstIO 96 => 994.
	got := deliverAt(t, Achievable(), 32)
	if got != 994 {
		t.Fatalf("small message latency = %d, want 994", got)
	}
}

func TestBestLatencyIsLinkPlusBus(t *testing.T) {
	// Best zeroes overhead/occupancy/handling; bus transfer (96+96) and
	// the 2-cycle link remain.
	if got := deliverAt(t, Best(), 32); got != 194 {
		t.Fatalf("best latency = %d, want 194", got)
	}
	// B+ removes the link and widens the bus: 16+16 cycles.
	if got := deliverAt(t, BetterThanBest(), 32); got != 32 {
		t.Fatalf("B+ latency = %d, want 32", got)
	}
}

func TestPacketization(t *testing.T) {
	eng := sim.NewEngine()
	p := Achievable()
	nw := NewNetwork(eng, 2, p)
	eng.At(0, func() {
		nw.Send(&Message{Src: 0, Dst: 1, Size: 10000, OnDeliver: func(sim.Time) {}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 10000+32 = 10032 bytes => 3 packets (4096+4096+1840).
	if nw.PktCount != 3 {
		t.Fatalf("packets = %d, want 3", nw.PktCount)
	}
	if nw.NIUses(0) != 3 {
		t.Fatalf("sender NI uses = %d, want 3", nw.NIUses(0))
	}
}

func TestFIFOOrderingPerPair(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, Achievable())
	var order []int
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			i := i
			nw.Send(&Message{Src: 0, Dst: 1, Size: int64(100 * (5 - i)),
				OnDeliver: func(sim.Time) { order = append(order, i) }})
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("delivery order %v not FIFO", order)
		}
	}
}

func TestHandlerDispatch(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, Best())
	var got *Message
	nw.Dispatch = func(m *Message, now sim.Time) { got = m }
	eng.At(0, func() {
		nw.Send(&Message{Src: 0, Dst: 1, Kind: 7, Size: 16, NeedsHandler: true})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Kind != 7 {
		t.Fatalf("handler dispatch failed: %+v", got)
	}
}

func TestContentionSerializesAtDestination(t *testing.T) {
	eng := sim.NewEngine()
	p := Achievable()
	nw := NewNetwork(eng, 3, p)
	var times []sim.Time
	eng.At(0, func() {
		// Two senders hit node 2 simultaneously with 4KB data.
		for s := 0; s < 2; s++ {
			nw.Send(&Message{Src: s, Dst: 2, Size: 4000,
				OnDeliver: func(now sim.Time) { times = append(times, now) }})
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatal("expected two deliveries")
	}
	gap := times[1] - times[0]
	// Destination NI occupancy + I/O bus must separate the deliveries by
	// at least the packet service time at the bottleneck.
	minGap := sim.NewBandwidth("x", p.IOBusBytesNum, p.IOBusBytesDen).TransferCycles(4000)
	if gap < minGap {
		t.Fatalf("deliveries %v separated by %d, want >= %d (contention not modeled?)", times, gap, minGap)
	}
}

func TestLoopbackDelivers(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, Achievable())
	done := false
	eng.At(0, func() {
		nw.Send(&Message{Src: 1, Dst: 1, Size: 64, OnDeliver: func(sim.Time) { done = true }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("loopback message lost")
	}
	if nw.MsgCount != 0 {
		t.Fatal("loopback should not count as network traffic")
	}
}
