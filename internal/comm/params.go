// Package comm implements the communication layer of the layered model:
// a VMMC-like user-level fast-message library over a Myrinet-like
// system-area network, parameterized by exactly the four costs the paper
// varies (Table 2) — host overhead, NI occupancy per packet, I/O bus
// bandwidth, and message handling cost — with contention modeled at every
// end-point (host I/O bus, NI processors) but not in links and switches,
// matching the paper's methodology.
package comm

import (
	"fmt"
	"strings"

	"swsm/internal/sim"
)

// Params are the communication-layer cost parameters, normalized to
// processor cycles of the 1-IPC, 200 MHz processor the paper assumes.
type Params struct {
	// HostOverhead is the time the host processor is busy sending a
	// message (asynchronous send: the processor continues afterwards).
	HostOverhead sim.Time
	// NIOccupancy is the time the NI processor spends preparing each
	// packet (charged on both the sending and receiving NI).
	NIOccupancy sim.Time
	// MsgHandling is the time from a message reaching the head of the
	// polled NI queue to its handler's first instruction.  Incurred once
	// per handled message; data messages are deposited directly and incur
	// no handling cost.
	MsgHandling sim.Time
	// LinkLatency is the fixed wire latency; the paper keeps it at 2
	// cycles except in the "better than best" configuration.
	LinkLatency sim.Time
	// IOBusBytesNum/IOBusBytesDen express the host-to-NI I/O bus
	// bandwidth as bytesNum bytes per bytesDen cycles.  Num==0 means
	// infinite bandwidth.
	IOBusBytesNum int64
	IOBusBytesDen int64
	// MaxPacket is the largest packet the NI transfers at once (4 KB on
	// the modeled Myrinet).
	MaxPacket int64
}

// The named parameter sets of the study.  Table 2's OCR drops digits; the
// defaults are reconstructed from the companion communication-parameters
// study and the surviving units in the text (3 us host overhead, ~133
// MB/s I/O bus, slow NI processor, small polling dispatch cost, all at
// 200 MHz / 1 IPC).  See DESIGN.md §2.
//
// Achievable (A) is the base system; Best (B) zeroes every cost; Halfway
// (H) halves every per-unit cost; Worse (W) doubles them; BetterThanBest
// (B+) additionally zeroes the link latency and raises the I/O bus to
// 4 bytes/cycle (twice the memory-bus bandwidth), the limit configuration
// the paper uses when even B is not enough (FFT, Radix, Barnes locks).

// Achievable returns the base (A) communication parameter set.
func Achievable() Params {
	return Params{
		HostOverhead:  600, // 3 us
		NIOccupancy:   400, // 2 us per packet: slow LANai-class NI processor
		MsgHandling:   200, // 1 us polling dispatch
		LinkLatency:   2,
		IOBusBytesNum: 2, IOBusBytesDen: 3, // 0.67 B/cy ~ 133 MB/s
		MaxPacket: 4096,
	}
}

// Best returns the idealized (B) set: host overhead, NI occupancy and
// message handling cost all zero.  The I/O bus BANDWIDTH stays at the
// achievable value and the link latency at 2 cycles — that is why the
// paper needs the B+ configuration, where bandwidth rises to 4 B/cycle
// and the link cost vanishes ("for FFT, communication bandwidth is
// still a problem, so the better-than-best configuration improves
// performance still").
func Best() Params {
	return Params{
		HostOverhead: 0, NIOccupancy: 0, MsgHandling: 0,
		LinkLatency:   2,
		IOBusBytesNum: 2, IOBusBytesDen: 3, // same 0.67 B/cy as Achievable
		MaxPacket: 4096,
	}
}

// Halfway returns the (H) set: every cost halfway between Achievable
// and Best.  Since Best keeps the achievable I/O bus bandwidth, so does
// Halfway.
func Halfway() Params {
	return Params{
		HostOverhead: 300, NIOccupancy: 200, MsgHandling: 100,
		LinkLatency:   2,
		IOBusBytesNum: 2, IOBusBytesDen: 3, // unchanged 0.67 B/cy
		MaxPacket: 4096,
	}
}

// Worse returns the (W) set: every per-unit cost doubled relative to
// Achievable, modeling communication failing to track processor speed.
func Worse() Params {
	return Params{
		HostOverhead: 1200, NIOccupancy: 800, MsgHandling: 400,
		LinkLatency:   2,
		IOBusBytesNum: 1, IOBusBytesDen: 3, // 0.33 B/cy
		MaxPacket: 4096,
	}
}

// BetterThanBest returns the (B+) limit set: Best plus zero link latency
// and a 4 B/cycle I/O bus (twice the memory-bus bandwidth).
func BetterThanBest() Params {
	return Params{
		HostOverhead: 0, NIOccupancy: 0, MsgHandling: 0,
		LinkLatency:   0,
		IOBusBytesNum: 4, IOBusBytesDen: 1,
		MaxPacket: 4096,
	}
}

// Validate rejects parameter sets the simulator cannot run: packetization
// needs a positive MaxPacket, and the bandwidth rational needs a positive
// denominator (a zero numerator is the documented "infinite" sentinel).
func (p Params) Validate() error {
	if p.MaxPacket <= 0 {
		return fmt.Errorf("comm: MaxPacket %d must be > 0", p.MaxPacket)
	}
	if p.IOBusBytesDen <= 0 {
		return fmt.Errorf("comm: IOBusBytesDen %d must be > 0", p.IOBusBytesDen)
	}
	if p.HostOverhead < 0 || p.NIOccupancy < 0 || p.MsgHandling < 0 || p.LinkLatency < 0 {
		return fmt.Errorf("comm: negative cost in %+v", p)
	}
	return nil
}

// namedSets maps set names to constructors, in Names() order.
var namedSets = []struct {
	name string
	fn   func() Params
}{
	{"A", Achievable},
	{"H", Halfway},
	{"B", Best},
	{"W", Worse},
	{"B+", BetterThanBest},
}

// Names lists the known parameter-set names in canonical order.
func Names() []string {
	out := make([]string, len(namedSets))
	for i, s := range namedSets {
		out[i] = s.name
	}
	return out
}

// ParamsByName resolves a set name used by the harness (see Names).
// Every returned set is validated, so a future edit to a named set that
// breaks an invariant fails here with a clear error instead of
// panicking deep in the packetization loop.
func ParamsByName(name string) (Params, error) {
	for _, s := range namedSets {
		if s.name != name {
			continue
		}
		p := s.fn()
		if err := p.Validate(); err != nil {
			return Params{}, err
		}
		return p, nil
	}
	return Params{}, fmt.Errorf("comm: unknown parameter set %q (known sets: %s)",
		name, strings.Join(Names(), ", "))
}

// BandwidthMBs reports the I/O bus bandwidth in MB/s assuming a 200 MHz
// clock, for Table 2 presentation.  Returns +Inf-like -1 for infinite.
func (p Params) BandwidthMBs() float64 {
	if p.IOBusBytesNum == 0 {
		return -1
	}
	const hz = 200e6
	return float64(p.IOBusBytesNum) / float64(p.IOBusBytesDen) * hz / 1e6
}

// Scale returns a copy of p with every per-unit cost multiplied by
// num/den (bandwidth divided by it), used for the Figure 5 single
// parameter sweeps' cost axes.
func (p Params) Scale(num, den int64) Params {
	q := p
	q.HostOverhead = p.HostOverhead * num / den
	q.NIOccupancy = p.NIOccupancy * num / den
	q.MsgHandling = p.MsgHandling * num / den
	if p.IOBusBytesNum != 0 {
		q.IOBusBytesNum = p.IOBusBytesNum * den
		q.IOBusBytesDen = p.IOBusBytesDen * num
	}
	return q
}
