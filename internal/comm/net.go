package comm

import (
	"fmt"

	"swsm/internal/sim"
)

// Message is one network message.  Request messages (NeedsHandler) are
// dispatched to the destination node's protocol handler, paying the
// message-handling cost on that node's processor; data messages are
// deposited directly into host memory by the NI without involving the
// processor, exactly as in the paper's VMMC-style communication model.
type Message struct {
	Src, Dst int
	Kind     int   // protocol-defined tag
	Size     int64 // total bytes on the wire, including protocol header
	Payload  interface{}

	// NeedsHandler selects handler dispatch (requests) over direct
	// deposit (data/replies).
	NeedsHandler bool
	// OnDeliver fires when the message is fully deposited at the
	// destination (data messages only; ignored for handler messages).
	OnDeliver func(now sim.Time)

	// SendTime records when the message entered the network (set by Send).
	SendTime sim.Time

	// DropOnWire marks a transmission the fault plane has condemned: it
	// consumes source-side resources (I/O bus, NI, link) like any other
	// message but is never deposited at the destination.  Only the
	// reliable transport sets this; application-visible messages are
	// delivered exactly once or not at all.
	DropOnWire bool

	// nw is set by Send so the message itself can serve as the receiver
	// for its packet-arrival and delivery events (see HandleEvent),
	// keeping the per-packet hot path closure-free.
	nw *Network
}

// HandleEvent arg encodings for the closure-free packet pipeline: a
// non-negative arg is a packet arrival carrying pktBytes<<1 | last; a
// negative arg is final delivery.
const argDeliver = -1

// HeaderBytes is the fixed per-message header charged on the wire.
const HeaderBytes = 32

// endpoint carries one node's network-side resources.
type endpoint struct {
	ioBus *sim.Bandwidth // host <-> NI transfers, shared both directions
	niOut *sim.FIFO      // NI processor, outbound packet preparation
	niIn  *sim.FIFO      // NI processor, inbound packet handling
}

// Network is the cluster interconnect plus per-node network interfaces.
type Network struct {
	eng *sim.Engine
	p   Params
	// np, when non-nil, holds per-node parameter overrides (asymmetric
	// links in a heterogeneous cluster).  Nil keeps the uniform fast
	// path byte-for-byte.
	np  []Params
	eps []*endpoint

	// Dispatch receives handler messages once fully arrived; the core
	// machine installs it and models CPU occupancy and polling there.
	Dispatch func(m *Message, now sim.Time)

	// Statistics.
	MsgCount  int64
	ByteCount int64
	PktCount  int64
}

// NewNetwork builds the interconnect for n nodes.
func NewNetwork(eng *sim.Engine, n int, p Params) *Network {
	if p.MaxPacket <= 0 {
		p.MaxPacket = 4096
	}
	nw := &Network{eng: eng, p: p, eps: make([]*endpoint, n)}
	for i := range nw.eps {
		nw.eps[i] = newEndpoint(i, p)
	}
	return nw
}

// NewNetworkPerNode builds an interconnect whose node i uses perNode[i]
// instead of the base parameters — fast and slow links coexisting in
// one network.  A node's own parameters govern its side of a transfer:
// outbound packets pay the source's NI occupancy and I/O bus, inbound
// packets the destination's, and the wire latency is the slower end's
// LinkLatency.  Packetization uses the base MaxPacket throughout (one
// fabric, one MTU).  len(perNode) must be n; a nil perNode degrades to
// NewNetwork.
func NewNetworkPerNode(eng *sim.Engine, n int, p Params, perNode []Params) *Network {
	if perNode == nil {
		return NewNetwork(eng, n, p)
	}
	if len(perNode) != n {
		panic(fmt.Sprintf("comm: %d per-node params for %d nodes", len(perNode), n))
	}
	if p.MaxPacket <= 0 {
		p.MaxPacket = 4096
	}
	nw := &Network{eng: eng, p: p, np: append([]Params(nil), perNode...), eps: make([]*endpoint, n)}
	for i := range nw.eps {
		nw.eps[i] = newEndpoint(i, nw.np[i])
	}
	return nw
}

func newEndpoint(i int, p Params) *endpoint {
	return &endpoint{
		ioBus: sim.NewBandwidth(fmt.Sprintf("iobus%d", i), p.IOBusBytesNum, p.IOBusBytesDen),
		niOut: sim.NewFIFO(fmt.Sprintf("niout%d", i)),
		niIn:  sim.NewFIFO(fmt.Sprintf("niin%d", i)),
	}
}

// Params reports the configured (base) communication parameters.
func (nw *Network) Params() Params { return nw.p }

// ParamsAt reports the communication parameters governing node i's
// endpoint (the base parameters unless per-node overrides are set).
func (nw *Network) ParamsAt(i int) Params {
	if nw.np != nil {
		return nw.np[i]
	}
	return nw.p
}

// Send injects m into the network at the current engine time.  The host
// overhead is NOT charged here: the sender charges it in its own context
// (thread or handler), since sends are asynchronous and the paper defines
// host overhead as processor busy time.
func (nw *Network) Send(m *Message) {
	nw.checkEndpoints(m)
	now := nw.eng.Now()
	m.SendTime = now
	m.nw = nw
	if m.Src == m.Dst {
		// Loopback: no network resources; deliver after a fixed small
		// local cost (protocols mostly avoid this path).
		nw.eng.AtHandler(now+1, m, argDeliver)
		return
	}
	nw.MsgCount++
	size := m.Size + HeaderBytes
	nw.ByteCount += size
	src := nw.eps[m.Src]
	niOcc, latency := nw.p.NIOccupancy, nw.p.LinkLatency
	if nw.np != nil {
		// The source's NI prepares outbound packets; the wire runs at the
		// slower end's latency.
		niOcc = nw.np[m.Src].NIOccupancy
		latency = nw.np[m.Src].LinkLatency
		if l := nw.np[m.Dst].LinkLatency; l > latency {
			latency = l
		}
	}

	// Split into packets; pipeline each through source I/O bus and NI.
	remaining := size
	pending := 0
	for remaining > 0 {
		pkt := remaining
		if pkt > nw.p.MaxPacket {
			pkt = nw.p.MaxPacket
		}
		remaining -= pkt
		pending++
		nw.PktCount++

		_, ioEnd := src.ioBus.Reserve(now, pkt)
		_, niEnd := src.niOut.Reserve(ioEnd, niOcc)
		arrive := niEnd + latency
		var lastBit int64
		if remaining == 0 {
			lastBit = 1
		}
		if m.DropOnWire {
			// Lost in the fabric: source-side resources were consumed,
			// nothing reaches the destination.
			continue
		}
		// Receiver-side resources are reserved at arrival time (in an
		// event) so that packets from different senders contend in true
		// arrival order.  The message itself is the event receiver; the
		// arg packs the packet size and last-packet flag, so the hot
		// per-packet path schedules no closures.
		nw.eng.AtHandler(arrive, m, pkt<<1|lastBit)
	}
}

// HandleEvent is the closure-free event entry for this message's wire
// lifecycle: packet arrival at the destination NI (arg >= 0, carrying
// pktBytes<<1 | last) and final delivery (argDeliver).
func (m *Message) HandleEvent(now sim.Time, arg int64) {
	nw := m.nw
	if arg < 0 {
		nw.deliver(m)
		return
	}
	dst := nw.eps[m.Dst]
	niOcc := nw.p.NIOccupancy
	if nw.np != nil {
		niOcc = nw.np[m.Dst].NIOccupancy
	}
	_, inEnd := dst.niIn.Reserve(now, niOcc)
	_, depEnd := dst.ioBus.Reserve(inEnd, arg>>1)
	if arg&1 != 0 {
		nw.eng.AtHandler(depEnd, m, argDeliver)
	}
}

// checkEndpoints panics with a self-explanatory message when Src or Dst
// is outside the machine; without it an out-of-range Dst surfaces as an
// index panic deep in endpoint bookkeeping.
func (nw *Network) checkEndpoints(m *Message) {
	if m.Src < 0 || m.Src >= len(nw.eps) {
		panic(fmt.Sprintf("comm: Send from out-of-range Src %d (nodes 0..%d)", m.Src, len(nw.eps)-1))
	}
	if m.Dst < 0 || m.Dst >= len(nw.eps) {
		panic(fmt.Sprintf("comm: Send to out-of-range Dst %d (nodes 0..%d)", m.Dst, len(nw.eps)-1))
	}
}

// NumNodes reports the machine size the network was built for.
func (nw *Network) NumNodes() int { return len(nw.eps) }

func (nw *Network) deliver(m *Message) {
	now := nw.eng.Now()
	if m.NeedsHandler {
		if nw.Dispatch == nil {
			panic("comm: no dispatch function installed")
		}
		nw.Dispatch(m, now)
		return
	}
	if m.OnDeliver != nil {
		m.OnDeliver(now)
	}
}

// IOBusBusy reports cumulative I/O bus busy cycles on node i (for tests
// and contention analysis).
func (nw *Network) IOBusBusy(i int) sim.Time { return nw.eps[i].ioBus.BusyCycles() }

// NIUses reports how many packets node i's NI processed outbound.
func (nw *Network) NIUses(i int) int64 { return nw.eps[i].niOut.Uses() }
