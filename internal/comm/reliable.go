package comm

import (
	"fmt"

	"swsm/internal/fault"
	"swsm/internal/sim"
)

// ReliableNetwork wraps a Network with the transport machinery that lets
// the protocols survive an unreliable fabric: per-pair sequence numbers,
// cumulative acks, timeout-driven retransmission with capped exponential
// backoff, duplicate suppression and an in-order reorder buffer at the
// receiver.  The fault plane (internal/fault) decides which wire
// transmissions are dropped, duplicated or delayed; this layer turns
// those decisions into retransmit/ack traffic that consumes real
// simulated network resources, so reliability has a measurable
// performance price.
//
// Guarantees toward the protocol layer (which is what lets the three
// protocols run unmodified): every logical message is delivered exactly
// once, and messages on the same directed (src, dst) pair are delivered
// in send order — the same contract the plain Network provides — only
// with added, bounded delivery jitter.
//
// With no active fault injection, Send delegates straight to the wrapped
// Network: the zero-fault fast path is byte-for-byte the plain path and
// produces cycle-identical simulations.
type ReliableNetwork struct {
	nw  *Network
	eng *sim.Engine
	inj *fault.Injector
	p   ReliableParams
	n   int
	bw  *sim.Bandwidth // rate-only copy of the I/O bus, for RTO estimation

	active bool
	send   []sendChan
	recv   []recvChan

	// Per-node counters (indexed by the node that performed the action).
	retransmits []int64 // retransmissions sent by node i
	acks        []int64 // acks sent by node i
	drops       []int64 // transmissions from node i lost on the wire
	dups        []int64 // duplicate frames suppressed at node i
}

// ReliableParams tune the reliable transport.
type ReliableParams struct {
	// RTOMin floors the first retransmission timeout (cycles).
	RTOMin sim.Time
	// RTOCap ceils the exponential backoff.
	RTOCap sim.Time
	// MaxAttempts bounds transmissions per logical message; exhausting
	// it fails the simulation (an unreachable node).
	MaxAttempts int
	// AckBytes is the ack payload size on the wire (plus HeaderBytes).
	AckBytes int64
	// SeqBytes is the per-frame sequencing overhead added to every
	// reliable data frame on the wire.
	SeqBytes int64
}

// DefaultReliableParams returns the transport defaults: an 8-byte
// sequence header, 8-byte acks, a 4000-cycle (20 us at 200 MHz) RTO
// floor and a 1 M-cycle backoff cap over at most 30 attempts.
func DefaultReliableParams() ReliableParams {
	return ReliableParams{
		RTOMin:      4000,
		RTOCap:      1 << 20,
		MaxAttempts: 30,
		AckBytes:    8,
		SeqBytes:    8,
	}
}

// sendChan is the sender half of one directed (src, dst) pair.
type sendChan struct {
	nextSeq  int64
	ackedTo  int64 // every seq < ackedTo is acknowledged
	inflight map[int64]*pendingMsg
}

// recvChan is the receiver half: next expected sequence number plus the
// reorder buffer holding out-of-order arrivals.
type recvChan struct {
	next int64
	buf  map[int64]*Message
}

// pendingMsg tracks one unacknowledged logical message.
type pendingMsg struct {
	m        *Message
	seq      int64
	attempts int
	rto      sim.Time
	timer    *sim.Timer
}

// NewReliableNetwork wraps nw in the reliable transport driven by spec.
func NewReliableNetwork(nw *Network, spec fault.Spec, p ReliableParams) *ReliableNetwork {
	n := nw.NumNodes()
	if p.MaxAttempts <= 0 || p.RTOMin <= 0 {
		panic(fmt.Sprintf("comm: invalid reliable params %+v", p))
	}
	rn := &ReliableNetwork{
		nw:          nw,
		eng:         nw.eng,
		inj:         fault.NewInjector(spec, n),
		p:           p,
		n:           n,
		bw:          sim.NewBandwidth("rto-est", nw.p.IOBusBytesNum, nw.p.IOBusBytesDen),
		active:      spec.Active(),
		send:        make([]sendChan, n*n),
		recv:        make([]recvChan, n*n),
		retransmits: make([]int64, n),
		acks:        make([]int64, n),
		drops:       make([]int64, n),
		dups:        make([]int64, n),
	}
	return rn
}

// Inner returns the wrapped Network (stats, parameters).
func (rn *ReliableNetwork) Inner() *Network { return rn.nw }

// Spec returns the driving fault specification.
func (rn *ReliableNetwork) Spec() fault.Spec { return rn.inj.Spec() }

// Send injects a logical message.  The zero-injection fast path is the
// plain network, byte-for-byte; otherwise the message gets a sequence
// number and enters the retransmission state machine.
func (rn *ReliableNetwork) Send(m *Message) {
	if !rn.active || m.Src == m.Dst {
		rn.nw.Send(m)
		return
	}
	rn.nw.checkEndpoints(m)
	sc := &rn.send[m.Src*rn.n+m.Dst]
	if sc.inflight == nil {
		sc.inflight = make(map[int64]*pendingMsg)
	}
	m.SendTime = rn.eng.Now()
	pm := &pendingMsg{m: m, seq: sc.nextSeq, rto: rn.initialRTO(m.Size)}
	sc.nextSeq++
	sc.inflight[pm.seq] = pm
	rn.transmit(sc, pm)
}

// initialRTO estimates a first retransmission timeout from the message
// size and the communication parameters: roughly four times the
// uncontended round trip, floored at RTOMin.  Too-short timeouts only
// cost duplicate traffic (suppressed at the receiver), never
// correctness.
func (rn *ReliableNetwork) initialRTO(size int64) sim.Time {
	p := rn.nw.p
	oneWay := rn.bw.TransferCycles(size+HeaderBytes+rn.p.SeqBytes)*2 +
		2*p.NIOccupancy + p.LinkLatency + p.MsgHandling
	rto := 4 * oneWay
	if rto < rn.p.RTOMin {
		rto = rn.p.RTOMin
	}
	return rto
}

// transmit puts one wire transmission of pm on the (possibly faulty)
// network and arms the retransmission timer.  Transmissions initiated
// inside the source node's pause window or its NI's stall window wait
// for the window to end.
func (rn *ReliableNetwork) transmit(sc *sendChan, pm *pendingMsg) {
	if cur, ok := sc.inflight[pm.seq]; !ok || cur != pm {
		return // acked while this transmission was deferred
	}
	now := rn.eng.Now()
	src, dst := pm.m.Src, pm.m.Dst
	defer1 := rn.inj.PauseUntil(src, now)
	if t := rn.inj.StallUntil(src, now); t > defer1 {
		defer1 = t
	}
	if defer1 > now {
		rn.eng.At(defer1, func() { rn.transmit(sc, pm) })
		return
	}
	if pm.attempts >= rn.p.MaxAttempts {
		logTransportFailure(src, dst, pm.m.Kind, pm.seq, pm.attempts)
		rn.eng.Fail(fmt.Errorf(
			"comm: message %d->%d kind %d seq %d undeliverable after %d attempts",
			src, dst, pm.m.Kind, pm.seq, pm.attempts))
		return
	}
	pm.attempts++
	d := rn.inj.Decide(src, dst)
	rn.putFrame(pm, d)
	if d.Dup {
		// The duplicate is its own wire transmission but reuses the
		// original's fate (delivered); the receiver suppresses it.
		rn.putFrame(pm, fault.Decision{Delay: d.Delay})
	}
	rto := pm.rto
	pm.timer = rn.eng.NewTimer(rto, func() { rn.timeout(sc, pm) })
}

// putFrame sends one data frame through the inner network.
func (rn *ReliableNetwork) putFrame(pm *pendingMsg, d fault.Decision) {
	src, dst, seq := pm.m.Src, pm.m.Dst, pm.seq
	m, delay := pm.m, d.Delay
	if d.Drop {
		rn.drops[src]++
		rn.eng.Tracer().MsgDrop(rn.eng.Now(), int32(src), int64(m.Kind), seq)
	}
	rn.nw.Send(&Message{
		Src: src, Dst: dst, Kind: m.Kind,
		Size:       m.Size + rn.p.SeqBytes,
		DropOnWire: d.Drop,
		OnDeliver:  func(sim.Time) { rn.arrive(src, dst, seq, m, delay) },
	})
}

// timeout fires when pm's ack did not arrive in time: back off and
// retransmit.
func (rn *ReliableNetwork) timeout(sc *sendChan, pm *pendingMsg) {
	if cur, ok := sc.inflight[pm.seq]; !ok || cur != pm {
		return // acked after the timer was already committed to fire
	}
	src := pm.m.Src
	pm.rto *= 2
	if pm.rto > rn.p.RTOCap {
		pm.rto = rn.p.RTOCap
	}
	rn.retransmits[src]++
	rn.eng.Tracer().MsgRetransmit(rn.eng.Now(), int32(src), int64(pm.m.Kind), int64(pm.attempts))
	rn.transmit(sc, pm)
}

// arrive processes one data frame deposited at the destination NI:
// apply injected delay, wait out the destination's pause window, then
// run duplicate suppression and in-order delivery, and ack.
func (rn *ReliableNetwork) arrive(src, dst int, seq int64, m *Message, delay int64) {
	now := rn.eng.Now()
	if delay > 0 {
		rn.eng.After(delay, func() { rn.arrive(src, dst, seq, m, 0) })
		return
	}
	if t := rn.inj.PauseUntil(dst, now); t > now {
		rn.eng.At(t, func() { rn.arrive(src, dst, seq, m, 0) })
		return
	}
	rc := &rn.recv[src*rn.n+dst]
	switch {
	case seq < rc.next:
		// Already delivered: a retransmission of an acked message (the
		// ack was lost or late).  Re-ack so the sender can stop.
		rn.dups[dst]++
	case seq == rc.next:
		rc.next++
		rn.nw.deliver(m)
		// Drain any buffered successors that are now in order.
		for rc.buf != nil {
			b, ok := rc.buf[rc.next]
			if !ok {
				break
			}
			delete(rc.buf, rc.next)
			rc.next++
			rn.nw.deliver(b)
		}
	default: // out of order: buffer, suppressing duplicates
		if rc.buf == nil {
			rc.buf = make(map[int64]*Message)
		}
		if _, dup := rc.buf[seq]; dup {
			rn.dups[dst]++
		} else {
			rc.buf[seq] = m
		}
	}
	rn.sendAck(src, dst, rc.next-1)
}

// sendAck sends a cumulative ack for the (src, dst) data pair from dst
// back to src: every seq <= ackSeq has been received in order.  Acks
// ride the same faulty fabric (they can be dropped, duplicated or
// delayed); a lost ack just means a retransmission the receiver will
// suppress.
func (rn *ReliableNetwork) sendAck(src, dst int, ackSeq int64) {
	if ackSeq < 0 {
		return // nothing received in order yet
	}
	rn.acks[dst]++
	rn.eng.Tracer().MsgAck(rn.eng.Now(), int32(dst), int64(src), ackSeq)
	d := rn.inj.Decide(dst, src)
	if d.Drop {
		rn.drops[dst]++
		rn.eng.Tracer().MsgDrop(rn.eng.Now(), int32(dst), -1, ackSeq)
	}
	delay := d.Delay
	rn.nw.Send(&Message{
		Src: dst, Dst: src, Kind: -1,
		Size:       rn.p.AckBytes,
		DropOnWire: d.Drop,
		OnDeliver:  func(sim.Time) { rn.ackArrive(src, dst, ackSeq, delay) },
	})
	if d.Dup {
		rn.nw.Send(&Message{
			Src: dst, Dst: src, Kind: -1,
			Size:      rn.p.AckBytes,
			OnDeliver: func(sim.Time) { rn.ackArrive(src, dst, ackSeq, delay) },
		})
	}
}

// ackArrive retires every in-flight message of the (src, dst) pair with
// seq <= ackSeq.  Cumulative acks make loss of any individual ack
// harmless.
func (rn *ReliableNetwork) ackArrive(src, dst int, ackSeq int64, delay int64) {
	now := rn.eng.Now()
	if delay > 0 {
		rn.eng.After(delay, func() { rn.ackArrive(src, dst, ackSeq, 0) })
		return
	}
	if t := rn.inj.PauseUntil(src, now); t > now {
		rn.eng.At(t, func() { rn.ackArrive(src, dst, ackSeq, 0) })
		return
	}
	sc := &rn.send[src*rn.n+dst]
	// Walk sequence numbers, not the map, so retirement order is
	// deterministic.
	for s := sc.ackedTo; s <= ackSeq; s++ {
		if pm, ok := sc.inflight[s]; ok {
			if pm.timer != nil {
				pm.timer.Stop()
			}
			delete(sc.inflight, s)
		}
	}
	if ackSeq+1 > sc.ackedTo {
		sc.ackedTo = ackSeq + 1
	}
}

// --- counters (per node and total) ---

// RetransmitsFrom reports retransmissions sent by node i.
func (rn *ReliableNetwork) RetransmitsFrom(i int) int64 { return rn.retransmits[i] }

// AcksFrom reports acks sent by node i.
func (rn *ReliableNetwork) AcksFrom(i int) int64 { return rn.acks[i] }

// DropsFrom reports wire transmissions from node i that were lost.
func (rn *ReliableNetwork) DropsFrom(i int) int64 { return rn.drops[i] }

// DupsSuppressedAt reports duplicate frames suppressed at node i.
func (rn *ReliableNetwork) DupsSuppressedAt(i int) int64 { return rn.dups[i] }

func sumInt64(v []int64) int64 {
	var t int64
	for _, x := range v {
		t += x
	}
	return t
}

// TotalRetransmits reports machine-wide retransmissions.
func (rn *ReliableNetwork) TotalRetransmits() int64 { return sumInt64(rn.retransmits) }

// TotalAcks reports machine-wide acks sent.
func (rn *ReliableNetwork) TotalAcks() int64 { return sumInt64(rn.acks) }

// TotalDrops reports machine-wide transmissions lost on the wire.
func (rn *ReliableNetwork) TotalDrops() int64 { return sumInt64(rn.drops) }

// TotalDupsSuppressed reports machine-wide suppressed duplicates.
func (rn *ReliableNetwork) TotalDupsSuppressed() int64 { return sumInt64(rn.dups) }
