package comm

import (
	"strings"
	"testing"

	"swsm/internal/sim"
)

// deliverAtPerNode measures one message's delivery time on a per-node
// network (node params given explicitly).
func deliverAtPerNode(t *testing.T, perNode []Params, base Params, src, dst int, size int64) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	nw := NewNetworkPerNode(eng, len(perNode), base, perNode)
	var at sim.Time = -1
	eng.At(0, func() {
		nw.Send(&Message{Src: src, Dst: dst, Size: size,
			OnDeliver: func(now sim.Time) { at = now }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		t.Fatal("message not delivered")
	}
	return at
}

func TestPerNodeUniformMatchesScalar(t *testing.T) {
	// A per-node network whose every node uses the base params must be
	// cycle-identical to the scalar network.
	base := Achievable()
	perNode := []Params{base, base}
	for _, size := range []int64{32, 4000, 10000} {
		want := deliverAt(t, base, size)
		got := deliverAtPerNode(t, perNode, base, 0, 1, size)
		if got != want {
			t.Fatalf("size %d: per-node %d != scalar %d", size, got, want)
		}
	}
}

func TestPerNodeAsymmetricLink(t *testing.T) {
	base := Achievable()
	slow := base.Scale(4, 1) // 4x per-unit costs, 1/4 bandwidth
	perNode := []Params{base, base, slow}

	fastPath := deliverAtPerNode(t, perNode, base, 0, 1, 32)
	if want := deliverAt(t, base, 32); fastPath != want {
		t.Fatalf("fast-fast path perturbed: %d != %d", fastPath, want)
	}
	// Into the slow node: source side at base cost, destination NI and
	// bus at 4x.  64B: srcIO 96 + srcNI 400 + link 2 + dstNI 1600 +
	// dstIO 384 = 2482.
	if got := deliverAtPerNode(t, perNode, base, 0, 2, 32); got != 2482 {
		t.Fatalf("fast->slow latency = %d, want 2482", got)
	}
	// Out of the slow node: source side pays the 4x costs.
	if got := deliverAtPerNode(t, perNode, base, 2, 0, 32); got != 2482 {
		t.Fatalf("slow->fast latency = %d, want 2482", got)
	}
}

func TestPerNodeLinkLatencyIsSlowerEnd(t *testing.T) {
	base := Best() // zero overheads isolate the wire
	lag := base
	lag.LinkLatency = 100
	perNode := []Params{base, lag}
	// Either direction pays the slower end's latency: 96+96 bus + 100.
	if got := deliverAtPerNode(t, perNode, base, 0, 1, 32); got != 292 {
		t.Fatalf("fast->lag latency = %d, want 292", got)
	}
	if got := deliverAtPerNode(t, perNode, base, 1, 0, 32); got != 292 {
		t.Fatalf("lag->fast latency = %d, want 292", got)
	}
}

func TestParamsAt(t *testing.T) {
	base := Achievable()
	slow := base.Scale(2, 1)
	eng := sim.NewEngine()
	nw := NewNetworkPerNode(eng, 2, base, []Params{base, slow})
	if nw.ParamsAt(1).NIOccupancy != slow.NIOccupancy {
		t.Fatalf("ParamsAt(1) = %+v, want slow", nw.ParamsAt(1))
	}
	uniform := NewNetwork(eng, 2, base)
	if uniform.ParamsAt(1) != base {
		t.Fatalf("uniform ParamsAt(1) = %+v", uniform.ParamsAt(1))
	}
}

func TestParamsByNameErrorListsKnownSets(t *testing.T) {
	_, err := ParamsByName("Z")
	if err == nil {
		t.Fatal("unknown set accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list set %q", err, name)
		}
	}
	// Names must enumerate exactly the resolvable sets.
	for _, name := range Names() {
		if _, err := ParamsByName(name); err != nil {
			t.Fatalf("listed set %q does not resolve: %v", name, err)
		}
	}
}
