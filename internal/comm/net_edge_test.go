package comm

import (
	"strings"
	"testing"

	"swsm/internal/sim"
)

// sendSized pushes one message of the given payload size through a fresh
// network and reports the packet count and delivery time.
func sendSized(t *testing.T, p Params, size int64) (pkts int64, at sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, p)
	at = -1
	eng.At(0, func() {
		nw.Send(&Message{Src: 0, Dst: 1, Size: size,
			OnDeliver: func(now sim.Time) { at = now }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		t.Fatalf("message of size %d never delivered", size)
	}
	return nw.PktCount, at
}

// TestPacketizationEdges pins the packet-count boundaries, including the
// header accounting: the wire carries Size + HeaderBytes, so payloads
// within HeaderBytes of the packet limit spill into a second packet.
func TestPacketizationEdges(t *testing.T) {
	p := Achievable() // MaxPacket 4096
	cases := []struct {
		size int64
		pkts int64
	}{
		{0, 1},                             // header-only message still moves one packet
		{1, 1},                             //
		{p.MaxPacket - HeaderBytes, 1},     // 4064+32 = exactly one full packet
		{p.MaxPacket - HeaderBytes + 1, 2}, // one byte over: spills
		{p.MaxPacket, 2},                   // 4096+32 = 4128: full packet + 32-byte runt
		{p.MaxPacket + 1, 2},               //
		{2*p.MaxPacket - HeaderBytes, 2},
		{2*p.MaxPacket - HeaderBytes + 1, 3},
	}
	for _, c := range cases {
		pkts, _ := sendSized(t, p, c.size)
		if pkts != c.pkts {
			t.Errorf("size %d: %d packets, want %d", c.size, pkts, c.pkts)
		}
	}
}

// TestZeroSizeLatency pins the zero-payload delivery time end to end:
// 32 header bytes cost ceil(32*3/2) = 48 cycles per bus crossing, plus
// NI occupancy both sides and the link.
func TestZeroSizeLatency(t *testing.T) {
	p := Achievable()
	_, at := sendSized(t, p, 0)
	want := sim.Time(48 + 400 + 2 + 400 + 48)
	if at != want {
		t.Fatalf("zero-size delivery at %d, want %d", at, want)
	}
}

// TestPacketSpillCost checks that crossing the packet boundary costs a
// second NI occupancy on each side: the one-byte spill must be strictly
// slower than the exactly-full message by at least the NI service time.
func TestPacketSpillCost(t *testing.T) {
	p := Achievable()
	full := p.MaxPacket - HeaderBytes
	_, atFull := sendSized(t, p, full)
	_, atSpill := sendSized(t, p, full+1)
	if atSpill <= atFull {
		t.Fatalf("spilled message (%d) not slower than full packet (%d)", atSpill, atFull)
	}
}

func TestSendBoundsChecked(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 4, Achievable())
	expectPanic := func(m *Message, frag string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("Send(%+v) did not panic", m)
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, frag) {
				t.Fatalf("Send(%+v) panicked with %v, want message containing %q", m, r, frag)
			}
		}()
		nw.Send(m)
	}
	expectPanic(&Message{Src: -1, Dst: 1}, "out-of-range Src")
	expectPanic(&Message{Src: 4, Dst: 1}, "out-of-range Src")
	expectPanic(&Message{Src: 0, Dst: -2}, "out-of-range Dst")
	expectPanic(&Message{Src: 0, Dst: 4}, "out-of-range Dst")
}

func TestParamsValidate(t *testing.T) {
	for _, name := range []string{"A", "B", "H", "W", "B+"} {
		p, err := ParamsByName(name)
		if err != nil {
			t.Fatalf("ParamsByName(%s): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("named set %s fails its own validation: %v", name, err)
		}
	}
	bad := []Params{
		{MaxPacket: 0, IOBusBytesDen: 1},
		{MaxPacket: -1, IOBusBytesDen: 1},
		{MaxPacket: 4096, IOBusBytesDen: 0},
		{MaxPacket: 4096, IOBusBytesDen: 3, HostOverhead: -1},
		{MaxPacket: 4096, IOBusBytesDen: 3, LinkLatency: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	// Infinite bandwidth (Num 0) is a documented sentinel, not an error.
	inf := Params{MaxPacket: 4096, IOBusBytesNum: 0, IOBusBytesDen: 1}
	if err := inf.Validate(); err != nil {
		t.Errorf("infinite-bandwidth params rejected: %v", err)
	}
}
