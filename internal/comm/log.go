package comm

import (
	"log/slog"
	"sync/atomic"
)

// transportLog is the package's service-level logger.  The simulated
// network must stay deterministic and allocation-free on its hot paths,
// so logging is confined to terminal transport failures — the one
// comm-layer event a service operator must see (a job is about to fail
// with an "undeliverable" error).  The logger is process-global because
// a daemon hosts many concurrent simulations and the failure log is a
// service concern, not a per-run artifact.
var transportLog atomic.Pointer[slog.Logger]

// SetLogger installs (or, with nil, removes) the structured logger that
// receives transport-exhaustion failures from every ReliableNetwork in
// the process.  Simulated results are unaffected: the log call sits on
// the already-failing cold path.
func SetLogger(l *slog.Logger) {
	transportLog.Store(l)
}

// logTransportFailure reports a message that exhausted its retransmit
// budget (immediately before the engine fails the run).
func logTransportFailure(src, dst int, kind int, seq int64, attempts int) {
	l := transportLog.Load()
	if l == nil {
		return
	}
	l.Error("comm: message undeliverable, failing run",
		"src", src, "dst", dst, "kind", kind, "seq", seq, "attempts", attempts)
}
