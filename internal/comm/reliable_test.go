package comm

import (
	"strings"
	"testing"

	"swsm/internal/fault"
	"swsm/internal/sim"
)

// reliableDeliveries sends n sized messages 0->1 through a
// ReliableNetwork driven by spec and returns per-message delivery counts
// and the delivery order, plus the transport for counter inspection.
func reliableDeliveries(t *testing.T, spec fault.Spec, n int, size int64) (counts []int, order []int, rn *ReliableNetwork) {
	t.Helper()
	eng := sim.NewEngine()
	rn = NewReliableNetwork(NewNetwork(eng, 2, Achievable()), spec, DefaultReliableParams())
	counts = make([]int, n)
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			i := i
			rn.Send(&Message{Src: 0, Dst: 1, Kind: i, Size: size,
				OnDeliver: func(sim.Time) {
					counts[i]++
					order = append(order, i)
				}})
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return counts, order, rn
}

// assertExactlyOnceFIFO is the transport's contract toward the
// protocols: every message delivered exactly once, in send order.
func assertExactlyOnceFIFO(t *testing.T, counts []int, order []int) {
	t.Helper()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("message %d delivered %d times, want exactly once", i, c)
		}
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("delivery order %v is not FIFO", order)
		}
	}
}

func TestReliableZeroFaultPassthrough(t *testing.T) {
	// With Reliable set but nothing injected, delivery must be
	// cycle-identical to the plain network (the fast path IS the plain
	// path).
	plain := deliverAt(t, Achievable(), 32)

	eng := sim.NewEngine()
	nw := NewNetwork(eng, 4, Achievable())
	rn := NewReliableNetwork(nw, fault.Spec{Reliable: true}, DefaultReliableParams())
	var at sim.Time = -1
	eng.At(0, func() {
		rn.Send(&Message{Src: 0, Dst: 1, Size: 32,
			OnDeliver: func(now sim.Time) { at = now }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != plain {
		t.Fatalf("zero-fault reliable delivery at %d, plain network at %d", at, plain)
	}
	if rn.TotalAcks() != 0 || rn.TotalRetransmits() != 0 {
		t.Fatal("zero-fault fast path generated transport traffic")
	}
	if nw.MsgCount != 1 {
		t.Fatalf("zero-fault fast path sent %d wire messages, want 1", nw.MsgCount)
	}
}

func TestReliableSurvivesDrops(t *testing.T) {
	spec := fault.Spec{Seed: 11, DropPPM: 300_000} // 30%: plenty of loss
	counts, order, rn := reliableDeliveries(t, spec, 40, 256)
	assertExactlyOnceFIFO(t, counts, order)
	if rn.TotalDrops() == 0 {
		t.Fatal("30% drop rate lost nothing")
	}
	if rn.TotalRetransmits() == 0 {
		t.Fatal("drops recovered without any retransmission")
	}
	if rn.TotalAcks() == 0 {
		t.Fatal("no acks sent")
	}
}

func TestReliableSuppressesDuplicates(t *testing.T) {
	spec := fault.Spec{Seed: 5, DupPPM: fault.PPM} // duplicate every frame
	counts, order, rn := reliableDeliveries(t, spec, 20, 64)
	assertExactlyOnceFIFO(t, counts, order)
	if rn.TotalDupsSuppressed() == 0 {
		t.Fatal("100% duplication suppressed nothing")
	}
}

func TestReliableReordersBackIntoFIFO(t *testing.T) {
	// Heavy injected delay reorders frames on the wire; the receiver's
	// reorder buffer must still deliver in send order.
	spec := fault.Spec{Seed: 23, DelayPPM: 600_000, DelayMax: 40_000}
	counts, order, _ := reliableDeliveries(t, spec, 30, 128)
	assertExactlyOnceFIFO(t, counts, order)
}

func TestReliableMixedFaults(t *testing.T) {
	spec := fault.Spec{Seed: 3, DropPPM: 100_000, DupPPM: 100_000,
		DelayPPM: 200_000, DelayMax: 20_000,
		PauseEvery: 50_000, PauseFor: 5_000}
	counts, order, rn := reliableDeliveries(t, spec, 40, 512)
	assertExactlyOnceFIFO(t, counts, order)
	if rn.TotalRetransmits() == 0 && rn.TotalDrops() == 0 && rn.TotalDupsSuppressed() == 0 {
		t.Fatal("mixed fault plan induced no transport activity at all")
	}
}

func TestReliableDeterministic(t *testing.T) {
	spec := fault.Spec{Seed: 77, DropPPM: 150_000, DupPPM: 50_000, DelayPPM: 100_000}
	run := func() (sim.Time, int64, int64) {
		eng := sim.NewEngine()
		rn := NewReliableNetwork(NewNetwork(eng, 2, Achievable()), spec, DefaultReliableParams())
		var last sim.Time
		eng.At(0, func() {
			for i := 0; i < 25; i++ {
				rn.Send(&Message{Src: 0, Dst: 1, Size: 200,
					OnDeliver: func(now sim.Time) { last = now }})
			}
		})
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last, rn.TotalRetransmits(), rn.TotalDrops()
	}
	t1, rx1, dr1 := run()
	t2, rx2, dr2 := run()
	if t1 != t2 || rx1 != rx2 || dr1 != dr2 {
		t.Fatalf("identical specs diverged: (%d, %d, %d) vs (%d, %d, %d)",
			t1, rx1, dr1, t2, rx2, dr2)
	}
	if rx1 == 0 {
		t.Fatal("15% drops caused no retransmission")
	}
}

func TestReliableGivesUpOnDeadFabric(t *testing.T) {
	// Dropping every transmission (data, retransmits and acks) must
	// exhaust MaxAttempts and fail the run instead of spinning forever.
	spec := fault.Spec{Seed: 1, DropPPM: fault.PPM}
	eng := sim.NewEngine()
	p := DefaultReliableParams()
	p.MaxAttempts = 5
	rn := NewReliableNetwork(NewNetwork(eng, 2, Achievable()), spec, p)
	eng.At(0, func() {
		rn.Send(&Message{Src: 0, Dst: 1, Size: 64, OnDeliver: func(sim.Time) {
			t.Error("message delivered through a 100%-loss fabric")
		}})
	})
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "undeliverable") {
		t.Fatalf("Run() = %v, want an undeliverable-message failure", err)
	}
}

func TestReliableLoopbackBypassesTransport(t *testing.T) {
	spec := fault.Spec{Seed: 1, DropPPM: fault.PPM}
	eng := sim.NewEngine()
	rn := NewReliableNetwork(NewNetwork(eng, 2, Achievable()), spec, DefaultReliableParams())
	delivered := false
	eng.At(0, func() {
		rn.Send(&Message{Src: 1, Dst: 1, Size: 64,
			OnDeliver: func(sim.Time) { delivered = true }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("loopback message lost; local delivery must bypass the faulty wire")
	}
}
