package fault

import "testing"

// decisions rolls the injector n times on one pair and returns the
// outcomes.
func decisions(spec Spec, src, dst, n int) []Decision {
	in := NewInjector(spec, 4)
	out := make([]Decision, n)
	for i := range out {
		out[i] = in.Decide(src, dst)
	}
	return out
}

func TestDecideDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, DropPPM: 100_000, DupPPM: 50_000, DelayPPM: 50_000, DelayMax: 500}
	a := decisions(spec, 0, 1, 2000)
	b := decisions(spec, 0, 1, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDecideIndependentAcrossPairsAndSeeds(t *testing.T) {
	spec := Spec{Seed: 42, DropPPM: 500_000}
	a := decisions(spec, 0, 1, 512)
	b := decisions(spec, 1, 0, 512)
	spec2 := spec
	spec2.Seed = 43
	c := decisions(spec2, 0, 1, 512)
	same := func(x, y []Decision) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Fatal("pairs (0,1) and (1,0) saw identical fault sequences")
	}
	if same(a, c) {
		t.Fatal("seeds 42 and 43 saw identical fault sequences")
	}
}

func TestDecideRates(t *testing.T) {
	const n = 100_000
	spec := Spec{Seed: 7, DropPPM: 10_000, DupPPM: 20_000, DelayPPM: 30_000, DelayMax: 100}
	var drops, dups, delays int
	for _, d := range decisions(spec, 2, 3, n) {
		if d.Drop {
			drops++
			if d.Dup || d.Delay != 0 {
				t.Fatal("a dropped transmission cannot also duplicate or delay")
			}
		}
		if d.Dup {
			dups++
		}
		if d.Delay != 0 {
			delays++
			if d.Delay < 1 || d.Delay > 100 {
				t.Fatalf("delay %d outside [1, DelayMax=100]", d.Delay)
			}
		}
	}
	// Expected counts: 1%, 2%, 3% of n, within a generous ±40% band.
	check := func(name string, got, want int) {
		if got < want*6/10 || got > want*14/10 {
			t.Errorf("%s rate off: got %d of %d, want ~%d", name, got, n, want)
		}
	}
	check("drop", drops, n/100)
	check("dup", dups, n*2/100)
	check("delay", delays, n*3/100)
}

func TestZeroSpecInjectsNothing(t *testing.T) {
	var spec Spec
	if spec.Active() || spec.Enabled() {
		t.Fatal("zero spec must be inactive")
	}
	for i, d := range decisions(spec, 0, 1, 1000) {
		if d.Drop || d.Dup || d.Delay != 0 {
			t.Fatalf("zero spec injected a fault at roll %d: %+v", i, d)
		}
	}
	if !(Spec{Reliable: true}).Enabled() {
		t.Fatal("Reliable must force Enabled")
	}
	if (Spec{Reliable: true}).Active() {
		t.Fatal("Reliable alone must not be Active")
	}
}

func TestPauseWindows(t *testing.T) {
	spec := Spec{Seed: 9, PauseEvery: 1000, PauseFor: 100}
	in := NewInjector(spec, 4)
	// Scanning one full period must find exactly PauseFor paused cycles,
	// all contiguous mod the period.
	paused := 0
	for now := int64(0); now < 1000; now++ {
		end := in.PauseUntil(0, now)
		if end < now {
			t.Fatalf("PauseUntil went backwards: now %d -> %d", now, end)
		}
		if end > now {
			paused++
			if end-now > 100 {
				t.Fatalf("pause window longer than PauseFor: %d cycles left at %d", end-now, now)
			}
		}
	}
	if paused != 100 {
		t.Fatalf("node paused for %d of 1000 cycles, want 100", paused)
	}
	// The phase is per node: with 4 nodes at a 10% duty cycle, all four
	// sharing one phase would be a (9/10)^3 ~ 27% coincidence per node
	// pair; require at least one differing phase.
	first := func(node int) int64 {
		for now := int64(0); now < 1000; now++ {
			if in.PauseUntil(node, now) > now {
				return now
			}
		}
		return -1
	}
	p0 := first(0)
	if first(1) != p0 || first(2) != p0 || first(3) != p0 {
		return // desynchronized, as intended
	}
	t.Fatal("all nodes pause in lockstep; phases are not per-node")
}

func TestPauseMask(t *testing.T) {
	spec := Spec{Seed: 9, PauseEvery: 1000, PauseFor: 100, PauseMask: 1 << 2}
	in := NewInjector(spec, 4)
	for now := int64(0); now < 2000; now++ {
		if in.PauseUntil(0, now) != now {
			t.Fatalf("unmasked node 0 paused at %d", now)
		}
	}
	pausedSomewhere := false
	for now := int64(0); now < 2000; now++ {
		if in.PauseUntil(2, now) > now {
			pausedSomewhere = true
			break
		}
	}
	if !pausedSomewhere {
		t.Fatal("masked node 2 never paused")
	}
}

func TestStallWindows(t *testing.T) {
	spec := Spec{Seed: 3, StallEvery: 500, StallFor: 50}
	in := NewInjector(spec, 2)
	stalled := 0
	for now := int64(0); now < 500; now++ {
		if in.StallUntil(1, now) > now {
			stalled++
		}
	}
	if stalled != 50 {
		t.Fatalf("NI stalled for %d of 500 cycles, want 50", stalled)
	}
}

func TestValidate(t *testing.T) {
	good := []Spec{
		{},
		{Seed: 1, DropPPM: PPM},
		{DupPPM: 1, DelayPPM: PPM, DelayMax: 10},
		{PauseEvery: 100, PauseFor: 99},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{DropPPM: -1},
		{DropPPM: PPM + 1},
		{DupPPM: PPM + 1},
		{DelayPPM: -5},
		{DelayMax: -1},
		{PauseEvery: -1},
		{PauseEvery: 100, PauseFor: 100}, // window must be shorter than period
		{StallEvery: 10, StallFor: 20},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid spec")
		}
	}()
	NewInjector(Spec{DropPPM: -1}, 2)
}
