// Package fault is the deterministic fault-injection plane of the
// simulated cluster.  It decides, per wire transmission, whether a
// message is dropped, duplicated or delayed, and it defines periodic
// per-node pause windows (a stalled OS, a GC'ing runtime) and NI stall
// windows (a wedged network interface) during which traffic is deferred.
//
// Every decision is a pure function of (Spec.Seed, src, dst, wire index)
// through a splitmix64 hash, so fault outcomes are bit-reproducible: the
// same Spec produces the same faults no matter how wide the surrounding
// sweep runs, and two runs differing only in Seed see independent fault
// patterns.  The plane itself never advances time — the reliable
// transport in internal/comm turns its decisions into retransmissions,
// duplicate suppression and deferred deliveries, all charged to the
// simulated clock.
package fault

import "fmt"

// PPM is the fixed-point probability base: rates are expressed in parts
// per million, so integer Specs stay comparable (RunSpec memo keys) and
// no float rounding can perturb determinism.
const PPM = 1_000_000

// Spec configures the fault plane.  The zero value injects nothing.
// All fields are scalars so Spec is comparable and can participate in
// flat memoization keys.
type Spec struct {
	// Seed keys every pseudo-random decision.  Two Specs that differ
	// only in Seed produce independent fault patterns.
	Seed uint64

	// DropPPM is the per-transmission probability (parts per million)
	// that a message is lost on the wire after consuming source-side
	// resources.  Applies to retransmissions and acks too.
	DropPPM int64
	// DupPPM is the probability that a transmission is duplicated (the
	// copy delivers too and must be suppressed by the receiver).
	DupPPM int64
	// DelayPPM is the probability that a delivered transmission is held
	// at the destination NI for an extra 1..DelayMax cycles, which can
	// reorder it behind later traffic on the same pair.
	DelayPPM int64
	// DelayMax bounds the extra delay in cycles (default 10000 when a
	// DelayPPM is set but DelayMax is not).
	DelayMax int64

	// PauseEvery opens a pause window on each masked node once per
	// period: the node neither transmits nor accepts deliveries during
	// [start, start+PauseFor).  Window phase is seeded per node so nodes
	// do not pause in lockstep.
	PauseEvery int64
	// PauseFor is the pause window length in cycles.
	PauseFor int64
	// PauseMask selects pausing nodes (bit i = node i mod 64); zero
	// means every node when PauseEvery is set.
	PauseMask uint64

	// StallEvery/StallFor define periodic NI stall windows on every
	// node: outbound transmissions initiated inside a window wait for
	// its end (inbound deposits are unaffected — the NI buffers them).
	StallEvery int64
	StallFor   int64

	// Reliable routes traffic through the reliable transport even when
	// no injection is active, pinning the wrapper's zero-fault
	// pass-through (it must be cycle-identical to the plain network).
	Reliable bool
}

// Active reports whether the spec injects any fault at all.  The
// reliable transport falls back to the plain network path when false.
func (s Spec) Active() bool {
	return s.DropPPM > 0 || s.DupPPM > 0 || s.DelayPPM > 0 ||
		(s.PauseEvery > 0 && s.PauseFor > 0) ||
		(s.StallEvery > 0 && s.StallFor > 0)
}

// Enabled reports whether the machine should wrap its network in the
// reliable transport (any active injection, or Reliable forced on).
func (s Spec) Enabled() bool { return s.Active() || s.Reliable }

// Validate rejects rates outside [0, PPM] and negative windows.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    int64
	}{{"DropPPM", s.DropPPM}, {"DupPPM", s.DupPPM}, {"DelayPPM", s.DelayPPM}} {
		if r.v < 0 || r.v > PPM {
			return fmt.Errorf("fault: %s = %d outside [0, %d]", r.name, r.v, int64(PPM))
		}
	}
	for _, r := range []struct {
		name string
		v    int64
	}{{"DelayMax", s.DelayMax}, {"PauseEvery", s.PauseEvery}, {"PauseFor", s.PauseFor},
		{"StallEvery", s.StallEvery}, {"StallFor", s.StallFor}} {
		if r.v < 0 {
			return fmt.Errorf("fault: negative %s = %d", r.name, r.v)
		}
	}
	if s.PauseEvery > 0 && s.PauseFor >= s.PauseEvery {
		return fmt.Errorf("fault: PauseFor %d must be shorter than PauseEvery %d", s.PauseFor, s.PauseEvery)
	}
	if s.StallEvery > 0 && s.StallFor >= s.StallEvery {
		return fmt.Errorf("fault: StallFor %d must be shorter than StallEvery %d", s.StallFor, s.StallEvery)
	}
	return nil
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a bijective
// avalanche hash, so distinct (seed, src, dst, index) tuples map to
// effectively independent 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decision is the fault plane's verdict for one wire transmission.
type Decision struct {
	// Drop loses the transmission after source-side resources.
	Drop bool
	// Dup delivers a second identical copy.
	Dup bool
	// Delay holds the delivered copy this many extra cycles at the
	// destination (0 = none).
	Delay int64
}

// Injector evaluates a Spec for one simulated machine.  It keeps one
// monotone wire-transmission counter per directed (src, dst) pair, so a
// transmission's fate depends only on (seed, src, dst, index) — never on
// wall-clock state or map iteration order.
type Injector struct {
	spec Spec
	n    int
	idx  []uint64 // per-pair wire counters, indexed src*n+dst
}

// NewInjector builds the fault plane for an n-node machine.
func NewInjector(spec Spec, n int) *Injector {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Injector{spec: spec, n: n, idx: make([]uint64, n*n)}
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Decide consumes the next wire index of the (src, dst) pair and returns
// that transmission's fate.
func (in *Injector) Decide(src, dst int) Decision {
	i := src*in.n + dst
	idx := in.idx[i]
	in.idx[i]++
	h := splitmix64(in.spec.Seed ^ 0xd6e8feb86659fd93)
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(dst))
	h = splitmix64(h ^ idx)
	var d Decision
	if in.spec.DropPPM > 0 && int64(h%PPM) < in.spec.DropPPM {
		d.Drop = true
		return d // a lost transmission cannot also duplicate or delay
	}
	h = splitmix64(h)
	if in.spec.DupPPM > 0 && int64(h%PPM) < in.spec.DupPPM {
		d.Dup = true
	}
	h = splitmix64(h)
	if in.spec.DelayPPM > 0 && int64(h%PPM) < in.spec.DelayPPM {
		max := in.spec.DelayMax
		if max <= 0 {
			max = 10000
		}
		d.Delay = 1 + int64(splitmix64(h)%uint64(max))
	}
	return d
}

// windowEnd returns the end of the periodic window covering now, or now
// itself when outside every window.  Window starts are at
// phase + k*every; phase is seeded per (salt, node) so nodes desynchronize.
func (in *Injector) windowEnd(node int, now, every, dur int64, salt uint64) int64 {
	if every <= 0 || dur <= 0 {
		return now
	}
	phase := int64(splitmix64(in.spec.Seed^salt^uint64(node)) % uint64(every))
	pos := (now - phase) % every
	if pos < 0 {
		pos += every
	}
	if pos < dur {
		return now + (dur - pos)
	}
	return now
}

// PauseUntil reports when node may next transmit or accept a delivery:
// now if it is not paused, otherwise the end of its pause window.
func (in *Injector) PauseUntil(node int, now int64) int64 {
	if in.spec.PauseMask != 0 && in.spec.PauseMask&(1<<uint(node%64)) == 0 {
		return now
	}
	return in.windowEnd(node, now, in.spec.PauseEvery, in.spec.PauseFor, 0x8e2f_19a3_0b5c_d671)
}

// StallUntil reports when node's NI may next begin an outbound
// transmission: now outside stall windows, else the window end.
func (in *Injector) StallUntil(node int, now int64) int64 {
	return in.windowEnd(node, now, in.spec.StallEvery, in.spec.StallFor, 0x51ab_7ce9_93d4_f205)
}
