// Package hetero is the heterogeneity plane of the simulated cluster:
// per-node machine models (slow CPUs, accelerator-style nodes,
// asymmetric links) and the adaptive placement policies the protocol
// layer runs against them (migratory page homes, per-page coherence
// granularity).
//
// The paper assumes 16 identical uniprocessor nodes; a Spec perturbs
// that assumption one axis at a time.  Every field is a scalar so Spec
// is comparable and participates directly in flat memoization keys,
// exactly like fault.Spec: a run's outcome is a pure function of its
// RunSpec, heterogeneity included, which is what keeps serial and
// 8-wide sweeps byte-identical.
//
// Multipliers are integer rationals (num/den), never floats, so scaled
// cycle counts are bit-reproducible across platforms.  A num/den pair
// of 0/0 means identity (the zero Spec models the paper's uniform
// machine and changes nothing).
package hetero

import (
	"fmt"
	"math/bits"
	"strings"
)

// Placement names a page-home placement policy.
type Placement string

const (
	// PlaceApp (the zero value) honors the application's explicit
	// Place() calls — the paper's decomposed placement.
	PlaceApp Placement = ""
	// PlaceRR ignores application placement and leaves every home
	// round-robin (the static-home baseline adaptive placement is
	// measured against).
	PlaceRR Placement = "rr"
	// PlaceAdaptive starts from round-robin homes and migrates a page's
	// home online when one remote node dominates its accesses (HLRC
	// only; other protocols degrade to PlaceRR).
	PlaceAdaptive Placement = "adaptive"
)

// Grain names a per-page coherence-granularity policy.
type Grain string

const (
	// GrainPage (the zero value) keeps the protocol's configured
	// coherence unit everywhere.
	GrainPage Grain = ""
	// GrainAdaptive starts every page at the 4 KB page unit and demotes
	// pages whose profiled sharing pattern shows write-write false
	// sharing to fine-grained (2^FineShift byte) units — per-page
	// protocol selection between page HLRC and the fine-grained
	// delayed-consistency variant (HLRC only).
	GrainAdaptive Grain = "adaptive"
)

// DefaultFineShift is the sub-page coherence unit adaptive grain demotes
// to: 2^10 = 1 KB, the sweet spot of the paper's granularity ablation.
const DefaultFineShift = 10

// Spec configures the heterogeneity plane.  The zero value is the
// paper's uniform machine and changes nothing.  Node masks select nodes
// by bit i%64, like fault.Spec.PauseMask.
type Spec struct {
	// SlowMask selects slow-CPU nodes: both compute cycles and protocol
	// software cycles scale by SlowNum/SlowDen (a 2/1 ratio is a CPU at
	// half the clock of the paper's 200 MHz processor).
	SlowMask uint64
	SlowNum  int64
	SlowDen  int64

	// AccelMask selects accelerator-style nodes: compute scales by
	// AccelCompNum/AccelCompDen (typically < 1 — the device computes
	// faster) while protocol software — page faults, handlers,
	// diff/twin work, the interrupt-cost-heavy part of SVM — scales by
	// AccelProtoNum/AccelProtoDen (typically > 1: host round-trips).
	AccelMask     uint64
	AccelCompNum  int64
	AccelCompDen  int64
	AccelProtoNum int64
	AccelProtoDen int64

	// SlowLinkMask selects nodes whose network endpoint is slow: their
	// comm.Params per-unit costs (host overhead, NI occupancy, message
	// handling) scale by LinkNum/LinkDen and their I/O bus bandwidth
	// divides by it, so fast and slow links coexist in one network.
	SlowLinkMask uint64
	LinkNum      int64
	LinkDen      int64

	// Placement selects the page-home policy (see Placement).  Any
	// non-zero value implies round-robin initial homes (application
	// Place() calls are ignored).
	Placement Placement
	// RehomeMin is the minimum access count the dominant remote node
	// must reach before a page may migrate (default 8).
	RehomeMin int64
	// RehomeFactor is the dominance ratio: the dominant node's accesses
	// must be >= RehomeFactor x everyone else's combined (default 2).
	RehomeFactor int64
	// RehomeCap bounds total migrations per run (default 4096).
	RehomeCap int64

	// Grain selects the per-page coherence-granularity policy.
	Grain Grain
	// FineShift is the demoted coherence unit as log2(bytes), in
	// [6, 12) (default DefaultFineShift).
	FineShift uint
	// FineWriters is the minimum number of distinct writers a page must
	// have seen before it is considered falsely shared (default 2).
	FineWriters int64
	// FineMaxWords is the largest mean diff size (in 4-byte words) that
	// still counts as false sharing — big diffs mean the whole page is
	// really written and fine units would only add protocol operations
	// (default 64).
	FineMaxWords int64
	// FineCap bounds total demotions per run (default 4096).
	FineCap int64
}

// NodeSpec is the resolved machine model of one node: the integer
// rational multipliers the core applies to that node's cycle charges.
type NodeSpec struct {
	CompNum, CompDen   int64 // compute (Busy) cycles
	ProtoNum, ProtoDen int64 // protocol software + handler cycles
	LinkNum, LinkDen   int64 // comm.Params per-unit costs
}

// Uniform reports whether the node runs at the paper's baseline speed.
func (n NodeSpec) Uniform() bool {
	return n.CompNum == n.CompDen && n.ProtoNum == n.ProtoDen && n.LinkNum == n.LinkDen
}

// ratio normalizes a num/den pair: 0/0 means identity.
func ratio(num, den int64) (int64, int64) {
	if num == 0 && den == 0 {
		return 1, 1
	}
	return num, den
}

func maskHas(mask uint64, node int) bool { return mask&(1<<(uint(node)%64)) != 0 }

// Node resolves the machine model of node i by composing the masks the
// node belongs to.
func (s Spec) Node(i int) NodeSpec {
	n := NodeSpec{1, 1, 1, 1, 1, 1}
	if maskHas(s.SlowMask, i) {
		num, den := ratio(s.SlowNum, s.SlowDen)
		n.CompNum, n.CompDen = n.CompNum*num, n.CompDen*den
		n.ProtoNum, n.ProtoDen = n.ProtoNum*num, n.ProtoDen*den
	}
	if maskHas(s.AccelMask, i) {
		cn, cd := ratio(s.AccelCompNum, s.AccelCompDen)
		pn, pd := ratio(s.AccelProtoNum, s.AccelProtoDen)
		n.CompNum, n.CompDen = n.CompNum*cn, n.CompDen*cd
		n.ProtoNum, n.ProtoDen = n.ProtoNum*pn, n.ProtoDen*pd
	}
	if maskHas(s.SlowLinkMask, i) {
		n.LinkNum, n.LinkDen = ratio(s.LinkNum, s.LinkDen)
	}
	return n
}

// ModelActive reports whether any per-node machine model deviates from
// the uniform baseline (the signal for the core to build per-node
// multiplier tables and per-node network endpoints).
func (s Spec) ModelActive() bool {
	identity := func(mask uint64, num, den int64) bool {
		if mask == 0 {
			return true
		}
		n, d := ratio(num, den)
		return n == d
	}
	return !identity(s.SlowMask, s.SlowNum, s.SlowDen) ||
		!(identity(s.AccelMask, s.AccelCompNum, s.AccelCompDen) &&
			identity(s.AccelMask, s.AccelProtoNum, s.AccelProtoDen)) ||
		!identity(s.SlowLinkMask, s.LinkNum, s.LinkDen)
}

// Enabled reports whether the spec changes anything at all.
func (s Spec) Enabled() bool {
	return s.ModelActive() || s.Placement != PlaceApp || s.Grain != GrainPage
}

// Validate rejects specs the simulator cannot run deterministically.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name     string
		num, den int64
	}{
		{"Slow", s.SlowNum, s.SlowDen},
		{"AccelComp", s.AccelCompNum, s.AccelCompDen},
		{"AccelProto", s.AccelProtoNum, s.AccelProtoDen},
		{"Link", s.LinkNum, s.LinkDen},
	} {
		if (r.num == 0) != (r.den == 0) {
			return fmt.Errorf("hetero: %sNum/%sDen = %d/%d: both must be set or both zero",
				r.name, r.name, r.num, r.den)
		}
		if r.num < 0 || r.den < 0 {
			return fmt.Errorf("hetero: negative %s ratio %d/%d", r.name, r.num, r.den)
		}
		if r.den != 0 && r.num == 0 {
			return fmt.Errorf("hetero: %s ratio %d/%d would zero every charge", r.name, r.num, r.den)
		}
	}
	switch s.Placement {
	case PlaceApp, PlaceRR, PlaceAdaptive:
	default:
		return fmt.Errorf("hetero: unknown placement %q (want \"\", %q or %q)",
			s.Placement, PlaceRR, PlaceAdaptive)
	}
	switch s.Grain {
	case GrainPage, GrainAdaptive:
	default:
		return fmt.Errorf("hetero: unknown grain %q (want \"\" or %q)", s.Grain, GrainAdaptive)
	}
	if s.FineShift != 0 && (s.FineShift < 6 || s.FineShift >= 12) {
		return fmt.Errorf("hetero: FineShift %d outside [6,12)", s.FineShift)
	}
	for _, r := range []struct {
		name string
		v    int64
	}{
		{"RehomeMin", s.RehomeMin}, {"RehomeFactor", s.RehomeFactor},
		{"RehomeCap", s.RehomeCap}, {"FineWriters", s.FineWriters},
		{"FineMaxWords", s.FineMaxWords}, {"FineCap", s.FineCap},
	} {
		if r.v < 0 {
			return fmt.Errorf("hetero: negative %s = %d", r.name, r.v)
		}
	}
	return nil
}

// FineShiftOrDefault resolves the demotion unit.
func (s Spec) FineShiftOrDefault() uint {
	if s.FineShift == 0 {
		return DefaultFineShift
	}
	return s.FineShift
}

func orDefault(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}

// --- policies ---
//
// Both policies run at barrier-release time inside the protocol (all
// nodes quiescent: intervals flushed, twins dropped, acks received), so
// a decision is a pure function of the protocol's deterministic state
// and serial-vs-parallel byte-identity holds for free.

// Rehomer decides page-home migrations from per-page, per-node access
// counts (the same fetch/diff statistics the hot-page profiler reports,
// maintained online at each page's home).
type Rehomer struct {
	min, factor, cap_ int64
	migrated          int64
	// pnum/pden hold each node's protocol-cycle multiplier: serving a
	// remote access from home h costs pnum[h]/pden[h] of the baseline.
	// Nil (or all-identity) on uniform machines.
	pnum, pden []int64
	// CooldownEpochs is how many decision epochs a freshly migrated page
	// sits out before it may migrate again (ping-pong hysteresis).
	CooldownEpochs int64
}

// NewRehomer builds the migration policy for a spec on nprocs nodes.
func NewRehomer(s Spec, nprocs int) *Rehomer {
	r := &Rehomer{
		min:            orDefault(s.RehomeMin, 8),
		factor:         orDefault(s.RehomeFactor, 2),
		cap_:           orDefault(s.RehomeCap, 4096),
		CooldownEpochs: 2,
	}
	skewed := false
	pnum := make([]int64, nprocs)
	pden := make([]int64, nprocs)
	for i := range pnum {
		n := s.Node(i)
		pnum[i], pden[i] = n.ProtoNum, n.ProtoDen
		if pnum[i] != pden[i] {
			skewed = true
		}
	}
	if skewed {
		r.pnum, r.pden = pnum, pden
	}
	return r
}

// Migrated reports how many migrations the policy has granted.
func (r *Rehomer) Migrated() int64 { return r.migrated }

// Candidate returns the node a page should migrate to, or -1 to stay,
// without committing anything — the pure policy test the protocol runs
// inline when a page's statistics change.  counts[i] is node i's
// observed access count (remote fetches and diffs; the home's own
// write faults).
//
// On a uniform machine the rule is pure dominance: the busiest node
// must not be the current home, must clear the minimum, and must
// dominate all other observers combined by the configured factor.
//
// When nodes' protocol multipliers differ, the rule is weighted service
// cost instead: keeping the home at h makes every remote access pay
// h's handler multiplier, so cost(h) = (total - counts[h]) x mult(h).
// The page moves to the sharer minimizing that cost when the move wins
// by the same hysteresis factor — which both pulls pages toward their
// dominant accessor and pushes them off slow nodes.
//
// Ties break to the lowest node id, so the decision is deterministic.
func (r *Rehomer) Candidate(home int, counts []int64) int {
	dom, total := 0, int64(0)
	for i, c := range counts {
		total += c
		if c > counts[dom] {
			dom = i
		}
	}
	if r.pnum == nil {
		c := counts[dom]
		if dom == home || c < r.min || c < r.factor*(total-c) {
			return -1
		}
		return dom
	}
	if total < r.min {
		return -1
	}
	// Weighted costs compare exactly by cross-multiplication; candidates
	// are restricted to nodes that share the page (counts > 0), so the
	// home set cannot collapse onto an uninvolved fast node.
	best := home
	for i, c := range counts {
		if i == home || c == 0 {
			continue
		}
		// cost(i) < cost(best) ?
		if (total-c)*r.pnum[i]*r.pden[best] < (total-counts[best])*r.pnum[best]*r.pden[i] {
			best = i
		}
	}
	if best == home ||
		r.factor*(total-counts[best])*r.pnum[best]*r.pden[home] > (total-counts[home])*r.pnum[home]*r.pden[best] {
		return -1
	}
	return best
}

// Decide is Candidate plus commitment: it spends one unit of the
// migration cap.  Call it only when actually migrating.
func (r *Rehomer) Decide(home int, counts []int64) int {
	if r.migrated >= r.cap_ {
		return -1
	}
	dom := r.Candidate(home, counts)
	if dom >= 0 {
		r.migrated++
	}
	return dom
}

// GrainSelector decides page demotions to fine-grained coherence units
// from profiled sharing patterns.
type GrainSelector struct {
	writers, maxWords, cap_ int64
	demoted                 int64
}

// NewGrainSelector builds the granularity policy for a spec.
func NewGrainSelector(s Spec) *GrainSelector {
	return &GrainSelector{
		writers:  orDefault(s.FineWriters, 2),
		maxWords: orDefault(s.FineMaxWords, 64),
		cap_:     orDefault(s.FineCap, 4096),
	}
}

// Demoted reports how many pages the policy has demoted.
func (g *GrainSelector) Demoted() int64 { return g.demoted }

// Candidate reports whether a page with the given profile should
// switch to fine-grained units, without committing anything: several
// distinct writers, each diff touching only a small fraction of the
// page — the write-write false-sharing shape where page units
// ping-pong but fine units would not.
func (g *GrainSelector) Candidate(writers uint64, diffs, diffWords int64) bool {
	if int64(bits.OnesCount64(writers)) < g.writers || diffs < 4 {
		return false
	}
	return diffWords <= g.maxWords*diffs
}

// Demote is Candidate plus commitment: it spends one unit of the
// demotion cap.  Call it only when actually demoting.
func (g *GrainSelector) Demote(writers uint64, diffs, diffWords int64) bool {
	if g.demoted >= g.cap_ {
		return false
	}
	if !g.Candidate(writers, diffs, diffWords) {
		return false
	}
	g.demoted++
	return true
}

// --- named presets ---

// presetOrder lists the named skew presets in definition order.
var presetOrder = []string{
	"uniform", "cpu2", "cpu4", "cpu8", "accel2", "accel4", "accel8",
	"link4", "link8", "mixed",
}

// oddNodes masks nodes 1, 3, 5, ... — node 0 stays at baseline speed so
// manager-heavy protocol state (lock 0, barrier 0) keeps a fast host.
const oddNodes uint64 = 0xAAAAAAAAAAAAAAAA

// PresetNames lists the named heterogeneity presets the sweeps and the
// explorer enumerate, in canonical order.
func PresetNames() []string { return append([]string(nil), presetOrder...) }

// PresetByName resolves a named skew preset:
//
//	uniform      the paper's identical nodes (zero Spec)
//	cpuK         odd nodes run K times slower (CPU and protocol software)
//	accelK       odd nodes compute 2x faster but pay K x protocol cycles
//	             (accelerator-style: fast device, expensive fault path)
//	linkK        odd nodes' network endpoints are K times slower
//	mixed        odd nodes 2x slower CPUs on 4x slower links
//
// Placement and grain policies are orthogonal and left zero; callers
// layer them on top.
func PresetByName(name string) (Spec, error) {
	switch name {
	case "uniform":
		return Spec{}, nil
	case "cpu2", "cpu4", "cpu8":
		k := int64(name[3] - '0')
		return Spec{SlowMask: oddNodes, SlowNum: k, SlowDen: 1}, nil
	case "accel2", "accel4", "accel8":
		k := int64(name[5] - '0')
		return Spec{
			AccelMask:    oddNodes,
			AccelCompNum: 1, AccelCompDen: 2,
			AccelProtoNum: k, AccelProtoDen: 1,
		}, nil
	case "link4", "link8":
		k := int64(name[4] - '0')
		return Spec{SlowLinkMask: oddNodes, LinkNum: k, LinkDen: 1}, nil
	case "mixed":
		return Spec{
			SlowMask: oddNodes, SlowNum: 2, SlowDen: 1,
			SlowLinkMask: oddNodes, LinkNum: 4, LinkDen: 1,
		}, nil
	}
	return Spec{}, fmt.Errorf("hetero: unknown preset %q (want %s)",
		name, strings.Join(presetOrder, ", "))
}
