package hetero

import (
	"strings"
	"testing"
)

func TestZeroSpecIsUniform(t *testing.T) {
	var s Spec
	if s.Enabled() || s.ModelActive() {
		t.Fatalf("zero spec must be disabled: Enabled=%t ModelActive=%t", s.Enabled(), s.ModelActive())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	for i := 0; i < 64; i++ {
		if n := s.Node(i); !n.Uniform() {
			t.Fatalf("node %d not uniform: %+v", i, n)
		}
	}
}

func TestIdentityRatiosAreUniform(t *testing.T) {
	// A mask with a 1/1 ratio is explicitly heterogeneity-free: the core
	// must keep its zero-hetero fast paths.
	s := Spec{SlowMask: ^uint64(0), SlowNum: 3, SlowDen: 3}
	if s.ModelActive() {
		t.Fatalf("1:1 ratio reported as active model")
	}
	if !s.Node(1).Uniform() {
		t.Fatalf("1:1 node not uniform: %+v", s.Node(1))
	}
}

func TestNodeComposition(t *testing.T) {
	s := Spec{
		SlowMask: 1 << 3, SlowNum: 4, SlowDen: 1,
		AccelMask: 1<<3 | 1<<5, AccelCompNum: 1, AccelCompDen: 2, AccelProtoNum: 8, AccelProtoDen: 1,
		SlowLinkMask: 1 << 5, LinkNum: 4, LinkDen: 1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node 3: slow x4 composed with accel (1/2 comp, 8x proto).
	n3 := s.Node(3)
	if n3.CompNum*2 != n3.CompDen*4 { // 4/1 * 1/2 = 2
		t.Fatalf("node 3 comp = %d/%d, want 2/1", n3.CompNum, n3.CompDen)
	}
	if n3.ProtoNum != 32 || n3.ProtoDen != 1 {
		t.Fatalf("node 3 proto = %d/%d, want 32/1", n3.ProtoNum, n3.ProtoDen)
	}
	// Node 5: accel + slow link.
	n5 := s.Node(5)
	if n5.LinkNum != 4 || n5.LinkDen != 1 || n5.CompNum != 1 || n5.CompDen != 2 {
		t.Fatalf("node 5 = %+v", n5)
	}
	// Node 0 untouched.
	if !s.Node(0).Uniform() {
		t.Fatalf("node 0 not uniform: %+v", s.Node(0))
	}
	// Masks wrap at 64 like fault.Spec.PauseMask.
	if s.Node(67).ProtoNum != 32 {
		t.Fatalf("mask must select node i%%64: node 67 = %+v", s.Node(67))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{SlowNum: 2},                        // half a ratio
		{SlowNum: -1, SlowDen: 1},           // negative
		{LinkNum: 0, LinkDen: 2},            // zeroing ratio
		{Placement: "first-touch"},          // unknown policy
		{Grain: "blocks"},                   // unknown grain
		{FineShift: 4},                      // below word-addressable floor
		{FineShift: 12},                     // not sub-page
		{RehomeMin: -3},                     // negative knob
		{Grain: GrainAdaptive, FineCap: -1}, // negative cap
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, s)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := PresetByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		if name == "uniform" {
			if s.Enabled() {
				t.Fatalf("uniform preset not zero")
			}
			continue
		}
		if !s.ModelActive() {
			t.Fatalf("%s models nothing", name)
		}
		if !s.Node(0).Uniform() {
			t.Fatalf("%s touches node 0: %+v", name, s.Node(0))
		}
		if s.Node(1).Uniform() {
			t.Fatalf("%s leaves node 1 uniform", name)
		}
	}
	// cpu4: odd nodes 4x slower on compute and protocol.
	s, _ := PresetByName("cpu4")
	if n := s.Node(1); n.CompNum != 4 || n.CompDen != 1 || n.ProtoNum != 4 {
		t.Fatalf("cpu4 node 1 = %+v", n)
	}
	// accel4: compute halves, protocol quadruples.
	s, _ = PresetByName("accel4")
	if n := s.Node(1); n.CompNum != 1 || n.CompDen != 2 || n.ProtoNum != 4 || n.ProtoDen != 1 {
		t.Fatalf("accel4 node 1 = %+v", n)
	}
}

func TestPresetErrorListsNames(t *testing.T) {
	_, err := PresetByName("warp9")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, name := range PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list preset %q", err, name)
		}
	}
}

func TestRehomerDominance(t *testing.T) {
	r := NewRehomer(Spec{}, 4)
	// Below the minimum: stay.
	if to := r.Decide(0, []int64{0, 7, 0, 0}); to != -1 {
		t.Fatalf("migrated below min: %d", to)
	}
	// Dominant remote node: migrate.
	if to := r.Decide(0, []int64{0, 20, 3, 2}); to != 1 {
		t.Fatalf("want migrate to 1, got %d", to)
	}
	// Dominant node already home: stay.
	if to := r.Decide(1, []int64{0, 20, 3, 2}); to != -1 {
		t.Fatalf("re-homed to current home: %d", to)
	}
	// No dominance (factor 2): stay.
	if to := r.Decide(0, []int64{0, 10, 9, 0}); to != -1 {
		t.Fatalf("migrated without dominance: %d", to)
	}
	// Ties break low.
	if to := r.Decide(0, []int64{0, 30, 30, 0}); to != -1 {
		t.Fatalf("30 vs 30 is not dominance: %d", to)
	}
	if r.Migrated() != 1 {
		t.Fatalf("migrated = %d, want 1", r.Migrated())
	}
}

func TestRehomerSkewAware(t *testing.T) {
	// Odd nodes pay 4x protocol cycles (the cpu4 preset).
	spec := Spec{SlowMask: oddNodes, SlowNum: 4, SlowDen: 1}
	r := NewRehomer(spec, 4)
	// Home on slow node 1; node 0 and node 2 split the remote traffic
	// evenly.  No single node dominates, but moving to fast node 0 cuts
	// the weighted service cost 4x: cost(1)=20x4 vs cost(0)=10x1.
	if to := r.Candidate(1, []int64{10, 4, 10, 0}); to != 0 {
		t.Fatalf("want migrate off slow home to node 0, got %d", to)
	}
	// Home already fast and balanced sharing: the move cannot clear the
	// hysteresis factor.
	if to := r.Candidate(0, []int64{4, 0, 10, 10}); to != -1 {
		t.Fatalf("migrated off a fast home without a 2x win: %d", to)
	}
	// A slow node never wins the page even if it dominates mildly:
	// cost(3)=14x4 > cost(0)=20x1... the fast sharer keeps it.
	if to := r.Candidate(0, []int64{6, 0, 8, 10}); to != -1 {
		t.Fatalf("migrated to a slow node: %d", to)
	}
	// Below the minimum total: stay.
	if to := r.Candidate(1, []int64{3, 1, 3, 0}); to != -1 {
		t.Fatalf("migrated below min: %d", to)
	}
	// Uniform machines keep the nil fast path.
	if u := NewRehomer(Spec{}, 4); u.pnum != nil {
		t.Fatal("uniform rehomer built per-node multiplier tables")
	}
}

func TestRehomerCap(t *testing.T) {
	r := NewRehomer(Spec{RehomeCap: 2}, 2)
	counts := []int64{0, 100}
	for i := 0; i < 2; i++ {
		if r.Decide(0, counts) != 1 {
			t.Fatalf("migration %d refused under cap", i)
		}
	}
	if r.Decide(0, counts) != -1 {
		t.Fatal("cap not enforced")
	}
}

func TestGrainSelector(t *testing.T) {
	g := NewGrainSelector(Spec{})
	// Two writers, tiny diffs: false sharing, demote.
	if !g.Demote(0b110, 10, 40) {
		t.Fatal("false-sharing page not demoted")
	}
	// Single writer: keep the page unit.
	if g.Demote(0b010, 10, 40) {
		t.Fatal("single-writer page demoted")
	}
	// Big diffs: page really is written wholesale; keep.
	if g.Demote(0b110, 10, 10*1024) {
		t.Fatal("bulk-write page demoted")
	}
	// Too few samples.
	if g.Demote(0b110, 2, 4) {
		t.Fatal("demoted on 2 samples")
	}
	if g.Demoted() != 1 {
		t.Fatalf("demoted = %d", g.Demoted())
	}
}

func TestGrainSelectorCap(t *testing.T) {
	g := NewGrainSelector(Spec{FineCap: 1})
	if !g.Demote(0b11, 10, 10) {
		t.Fatal("first demotion refused")
	}
	if g.Demote(0b11, 10, 10) {
		t.Fatal("cap not enforced")
	}
}
