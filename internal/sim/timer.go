package sim

import "fmt"

// Timer is a cancellable one-shot timer, the primitive the reliable
// transport's retransmission timeouts are built on.  The event queue has
// no removal operation, so a stopped timer leaves its event record in
// place and dispatch checks the stopped flag when it fires — O(1)
// cancellation, no queue surgery.  The callback lives on the Timer
// itself (an evTimer event carries only the *Timer), so scheduling one
// allocates the Timer and nothing else.
type Timer struct {
	fn      func()
	stopped bool
	fired   bool
}

// NewTimer schedules fn to run d cycles from now unless Stop is called
// first.
func (e *Engine) NewTimer(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	t := &Timer{fn: fn}
	e.schedule(e.now+d, evTimer, t, 0)
	return t
}

// Stop cancels the timer.  It reports whether the timer was stopped
// before firing (false when fn already ran or Stop was already called).
func (t *Timer) Stop() bool {
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

// Fail aborts the run: Run drains no further events and returns err.
// The reliable transport uses it when a message exhausts its retransmit
// budget (a partitioned or dead node), which no protocol can survive.
func (e *Engine) Fail(err error) { e.fail(err) }
