package sim

// Timer is a cancellable one-shot timer, the primitive the reliable
// transport's retransmission timeouts are built on.  The engine's event
// heap has no removal operation (events are pooled and recycled), so a
// stopped timer leaves its event in place and the event's thunk checks
// the stopped flag when it fires — O(1) cancellation, no heap surgery.
type Timer struct {
	stopped bool
	fired   bool
}

// NewTimer schedules fn to run d cycles from now unless Stop is called
// first.
func (e *Engine) NewTimer(d Time, fn func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Stop cancels the timer.  It reports whether the timer was stopped
// before firing (false when fn already ran or Stop was already called).
func (t *Timer) Stop() bool {
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

// Fail aborts the run: Run drains no further events and returns err.
// The reliable transport uses it when a message exhausts its retransmit
// budget (a partitioned or dead node), which no protocol can survive.
func (e *Engine) Fail(err error) { e.fail(err) }
