package sim

import (
	"fmt"

	"swsm/internal/trace"
)

// Coro is a simulated thread of control.  Its body runs on a real
// goroutine, but exactly one coroutine (or the engine itself) executes
// at any instant: control moves between stacks by direct handoff — the
// current holder of control pops the next step event and resumes that
// coroutine with a single channel send — so the simulation is sequential
// and deterministic despite using goroutines for stack management.  The
// coroutine's mutable scheduling state (started/done/blocked/pending
// wakes) lives in the engine's struct-of-arrays, indexed by tid.
type Coro struct {
	eng  *Engine
	name string
	// tid is the coroutine's spawn index: the index into the engine's
	// bookkeeping arrays and the track id the tracer uses for
	// thread-state transitions.
	tid int32

	// resume carries control to this coroutine: at most one sender
	// (whichever stack pops its step event) and one receiver (the
	// coroutine itself, parked).
	resume chan struct{}
}

// Spawn creates a coroutine and schedules its body to start at virtual
// time `start`.  The body receives the coroutine for Sleep/Block calls.
func (e *Engine) Spawn(name string, start Time, body func(*Coro)) *Coro {
	c := &Coro{
		eng:    e,
		name:   name,
		tid:    int32(len(e.coros)),
		resume: make(chan struct{}),
	}
	e.coros = append(e.coros, c)
	e.coroStarted = append(e.coroStarted, false)
	e.coroDone = append(e.coroDone, false)
	e.coroBlocked = append(e.coroBlocked, false)
	e.coroWakes = append(e.coroWakes, 0)
	go func() {
		<-c.resume
		defer func() {
			// A panic in simulated code surfaces as an engine error
			// instead of killing the host process.
			if r := recover(); r != nil {
				e.fail(fmt.Errorf("sim: coroutine %s panicked: %v", name, r))
			}
			e.coroDone[c.tid] = true
			e.tracer.ThreadState(e.now, c.tid, trace.StateDone)
			// The body returned while this goroutine held control; keep
			// the event loop going on this stack until control is handed
			// to the next coroutine or back to Run.
			e.exitPump()
		}()
		body(c)
	}()
	e.atStep(start, c)
	return c
}

// Name reports the coroutine's name (used in deadlock reports).
func (c *Coro) Name() string { return c.name }

// Engine returns the owning engine.
func (c *Coro) Engine() *Engine { return c.eng }

// Now reports current virtual time.
func (c *Coro) Now() Time { return c.eng.now }

// Sleep advances virtual time by d cycles for this coroutine.  Other
// events and coroutines run in the interim.
//
// Fast path: when every queued event lies strictly after the wake-up
// time, nothing in the simulation can observe the interim, so the clock
// advances in place — no event, no yield, no context switch.  The
// boundary case (an event at exactly the wake-up time) must take the
// slow path: that event carries a smaller seq, so it runs first under
// the (at, seq) order, and skipping the queue would reorder same-cycle
// FIFO reservations.
func (c *Coro) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: coroutine %s sleeping negative %d", c.name, d))
	}
	if d == 0 {
		return
	}
	e := c.eng
	t := e.now + d
	if !e.stopped {
		if at, ok := e.peekTime(); !ok || at > t {
			e.now = t
			return
		}
	}
	e.atStep(t, c)
	e.pump(c, false)
}

// SleepUntil advances this coroutine's virtual time to absolute time t.
// If t is in the past it is a no-op.
func (c *Coro) SleepUntil(t Time) {
	if t > c.eng.now {
		c.Sleep(t - c.eng.now)
	}
}

// Block suspends the coroutine until Wake is called.  If a Wake already
// arrived since the last Block, it is consumed and Block returns
// immediately (no time passes).
func (c *Coro) Block() {
	e := c.eng
	if e.coroWakes[c.tid] > 0 {
		e.coroWakes[c.tid]--
		return
	}
	e.coroBlocked[c.tid] = true
	e.tracer.ThreadState(e.now, c.tid, trace.StateBlocked)
	e.pump(c, false)
	e.coroBlocked[c.tid] = false
	e.tracer.ThreadState(e.now, c.tid, trace.StateRunning)
}

// Wake resumes a blocked coroutine at the current virtual time.  If the
// coroutine is not currently blocked the wake is remembered and consumed
// by its next Block.  Wake must be called from engine/event context or
// from another (currently running) coroutine.
func (c *Coro) Wake() {
	e := c.eng
	if e.coroBlocked[c.tid] {
		e.coroBlocked[c.tid] = false
		e.atStep(e.now, c)
		return
	}
	e.coroWakes[c.tid]++
}

// Done reports whether the coroutine body has returned.
func (c *Coro) Done() bool { return c.eng.coroDone[c.tid] }
