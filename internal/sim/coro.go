package sim

import (
	"fmt"

	"swsm/internal/trace"
)

// Coro is a simulated thread of control.  Its body runs on a real
// goroutine, but exactly one coroutine (or the engine itself) executes at
// any instant: the engine and the coroutine hand control back and forth
// through a pair of unbuffered channels, so the simulation is sequential
// and deterministic despite using goroutines for stack management.
type Coro struct {
	eng  *Engine
	name string
	// tid is the coroutine's spawn index; the tracer uses it as the track
	// id for thread-state transitions.
	tid int32

	resume chan struct{}
	yield  chan struct{}

	// stepFn is the method value c.step, bound once at spawn so that
	// every Sleep/Wake schedules the same closure instead of allocating
	// a fresh one per event.
	stepFn func()

	started bool
	done    bool
	blocked bool
	// pendingWakes counts Wake calls that arrived while the coroutine was
	// not blocked; Block consumes one instead of yielding, so wakeups are
	// never lost.
	pendingWakes int
}

// Spawn creates a coroutine and schedules its body to start at virtual
// time `start`.  The body receives the coroutine for Sleep/Block calls.
func (e *Engine) Spawn(name string, start Time, body func(*Coro)) *Coro {
	c := &Coro{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	c.stepFn = c.step
	c.tid = int32(len(e.coros))
	e.coros = append(e.coros, c)
	e.At(start, func() {
		c.started = true
		e.tracer.ThreadState(e.now, c.tid, trace.StateStarted)
		go func() {
			<-c.resume
			defer func() {
				// A panic in simulated code surfaces as an engine error
				// instead of killing the host process.
				if r := recover(); r != nil {
					e.fail(fmt.Errorf("sim: coroutine %s panicked: %v", name, r))
				}
				c.done = true
				c.eng.tracer.ThreadState(c.eng.now, c.tid, trace.StateDone)
				c.yield <- struct{}{}
			}()
			body(c)
		}()
		c.step()
	})
	return c
}

// step transfers control to the coroutine and waits for it to yield or
// finish.  Must only be called from engine (event) context.
func (c *Coro) step() {
	c.resume <- struct{}{}
	<-c.yield
}

// yieldToEngine suspends the coroutine; control returns to the engine's
// event loop.  The coroutine resumes when some event calls step.
func (c *Coro) yieldToEngine() {
	c.yield <- struct{}{}
	<-c.resume
}

// Name reports the coroutine's name (used in deadlock reports).
func (c *Coro) Name() string { return c.name }

// Engine returns the owning engine.
func (c *Coro) Engine() *Engine { return c.eng }

// Now reports current virtual time.
func (c *Coro) Now() Time { return c.eng.now }

// Sleep advances virtual time by d cycles for this coroutine.  Other
// events and coroutines run in the interim.
func (c *Coro) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: coroutine %s sleeping negative %d", c.name, d))
	}
	if d == 0 {
		return
	}
	c.eng.After(d, c.stepFn)
	c.yieldToEngine()
}

// SleepUntil advances this coroutine's virtual time to absolute time t.
// If t is in the past it is a no-op.
func (c *Coro) SleepUntil(t Time) {
	if t > c.eng.now {
		c.Sleep(t - c.eng.now)
	}
}

// Block suspends the coroutine until Wake is called.  If a Wake already
// arrived since the last Block, it is consumed and Block returns
// immediately (no time passes).
func (c *Coro) Block() {
	if c.pendingWakes > 0 {
		c.pendingWakes--
		return
	}
	c.blocked = true
	c.eng.tracer.ThreadState(c.eng.now, c.tid, trace.StateBlocked)
	c.yieldToEngine()
	c.blocked = false
	c.eng.tracer.ThreadState(c.eng.now, c.tid, trace.StateRunning)
}

// Wake resumes a blocked coroutine at the current virtual time.  If the
// coroutine is not currently blocked the wake is remembered and consumed
// by its next Block.  Wake must be called from engine/event context or
// from another (currently running) coroutine.
func (c *Coro) Wake() {
	if c.blocked {
		c.blocked = false
		c.eng.At(c.eng.now, c.stepFn)
		return
	}
	c.pendingWakes++
}

// Done reports whether the coroutine body has returned.
func (c *Coro) Done() bool { return c.done }
