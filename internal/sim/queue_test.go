package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestEqualTimestampSeqOrder pins the determinism contract at the queue
// level: events sharing a timestamp fire in scheduling order, no matter
// how they are interleaved with other timestamps, how wide the burst is,
// or whether they pass through the register, a calendar bucket, or the
// overflow tier.
func TestEqualTimestampSeqOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		want := make([]rec, len(raw))
		for i, r := range raw {
			// Cluster timestamps hard so most share a bucket, and push a
			// slice of them beyond the calendar horizon.
			at := Time(r % 7)
			if r%11 == 0 {
				at += calBuckets * 3
			}
			i := i
			e.At(at, func() { fired = append(fired, rec{e.Now(), i}) })
			want[i] = rec{at, i}
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFarFutureOverflowTier drives events through the overflow heap and
// its migration into the calendar: timestamps far beyond the window must
// still fire in (at, seq) order, including ties that straddle a rebase.
func TestFarFutureOverflowTier(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(42))
	var fired []Time
	n := 500
	ats := make([]Time, n)
	for i := 0; i < n; i++ {
		// Spread across ~40 calendar windows with heavy duplication.
		ats[i] = Time(rng.Intn(40)) * calBuckets * Time(rng.Intn(3)+1)
		e.At(ats[i], func() { fired = append(fired, e.Now()) })
	}
	if got := e.PendingEvents(); got != n {
		t.Fatalf("PendingEvents() = %d, want %d", got, n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ats, func(a, b int) bool { return ats[a] < ats[b] })
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := range ats {
		if fired[i] != ats[i] {
			t.Fatalf("firing %d at cycle %d, want %d", i, fired[i], ats[i])
		}
	}
}

// TestOverflowRebaseDuringRun schedules from inside callbacks so the
// calendar window has to slide repeatedly mid-run, with near and far
// events mixed at every step.
func TestOverflowRebaseDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []Time
	hops := 0
	var chain func()
	chain = func() {
		fired = append(fired, e.Now())
		hops++
		if hops < 50 {
			e.After(3, func() { fired = append(fired, e.Now()) })      // near
			e.After(calBuckets+7, chain)                               // beyond horizon
			e.After(calBuckets*5, func() { fired = append(fired, e.Now()) }) // deep overflow
		}
	}
	e.At(0, chain)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(fired, func(a, b int) bool { return fired[a] < fired[b] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 1+49*3 {
		t.Fatalf("fired %d events, want %d", len(fired), 1+49*3)
	}
}

// TestSameTimeSchedulingFromCallback pins the subtle recycling-era
// ordering case: a callback that schedules more events at the current
// timestamp must see them fire after everything already queued at that
// timestamp, in scheduling order.
func TestSameTimeSchedulingFromCallback(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func() {
		order = append(order, 0)
		e.At(5, func() { order = append(order, 2) })
		e.After(0, func() { order = append(order, 3) })
	})
	e.At(5, func() { order = append(order, 1) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (same-time events fire in scheduling order)", order, want)
		}
	}
}

// TestRunTwice checks that a drained engine accepts a second batch of
// events and a second Run: the register, calendar, and overflow tiers
// must all survive a drain.
func TestRunTwice(t *testing.T) {
	e := NewEngine()
	const n = 64
	count := 0
	for i := 0; i < n; i++ {
		e.At(Time(i%7), func() { count++ })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("fired %d events, want %d", count, n)
	}
	if got := e.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents() = %d after drain, want 0", got)
	}
	for i := 0; i < n; i++ {
		e.At(e.Now()+Time(i), func() { count++ })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("fired %d events total, want %d", count, 2*n)
	}
}

// TestCalQueueRandomizedOrder hammers the raw queue with random
// insert/pop interleavings and checks the popped sequence is exactly the
// (at, seq) sort of what went in.
func TestCalQueueRandomizedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q calQueue
		q.init()
		now := Time(0)
		var seq uint64
		var expect []event
		var got []event
		for op := 0; op < 400; op++ {
			if rng.Intn(3) > 0 || q.len() == 0 {
				// Insert at now + skewed offset: mostly near, sometimes
				// far beyond the horizon.
				var d Time
				switch rng.Intn(10) {
				case 0:
					d = Time(rng.Intn(20)) * calBuckets
				case 1, 2:
					d = Time(rng.Intn(calBuckets * 2))
				default:
					d = Time(rng.Intn(16))
				}
				seq++
				ev := event{at: now + d, seq: seq}
				expect = append(expect, ev)
				q.insert(ev, now)
			} else {
				ev, ok := q.popNext()
				if !ok {
					t.Fatalf("trial %d: popNext empty with len %d", trial, q.len())
				}
				if ev.at < now {
					t.Fatalf("trial %d: time went backwards: %d < %d", trial, ev.at, now)
				}
				now = ev.at
				got = append(got, *ev)
			}
		}
		for {
			ev, ok := q.popNext()
			if !ok {
				break
			}
			now = ev.at
			got = append(got, *ev)
		}
		sort.Slice(expect, func(a, b int) bool { return expect[a].before(&expect[b]) })
		if len(got) != len(expect) {
			t.Fatalf("trial %d: popped %d events, inserted %d", trial, len(got), len(expect))
		}
		for i := range expect {
			if got[i].at != expect[i].at || got[i].seq != expect[i].seq {
				t.Fatalf("trial %d: pop %d = (%d,%d), want (%d,%d)",
					trial, i, got[i].at, got[i].seq, expect[i].at, expect[i].seq)
			}
		}
	}
}
