package sim

import (
	"testing"

	"swsm/internal/trace"
)

// TestDisabledTracerEventPathNoAllocs pins the zero-overhead-when-off
// contract: with no tracer installed, the schedule+dispatch+coroutine
// block path must not allocate.
func TestDisabledTracerEventPathNoAllocs(t *testing.T) {
	e := NewEngine()
	if e.Tracer() != nil {
		t.Fatal("fresh engine must have no tracer")
	}
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.After(1, fn)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("event path with disabled tracer allocated %.1f/op, want 0", allocs)
	}
}

// TestCoroThreadStateTrace checks that coroutine lifecycle and
// block/resume transitions reach the tracer with the spawn-order tid.
func TestCoroThreadStateTrace(t *testing.T) {
	e := NewEngine()
	tr := trace.NewCapture(trace.Options{})
	e.SetTracer(tr)

	var c0 *Coro
	c0 = e.Spawn("a", 0, func(c *Coro) {
		c.Block() // woken at t=5
	})
	e.Spawn("b", 0, func(c *Coro) {
		c.Sleep(5)
		c0.Wake()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	type tev struct {
		at    int64
		tid   int32
		state int64
	}
	var got []tev
	for _, ev := range tr.Data().Events {
		if ev.Kind == trace.KThreadState {
			got = append(got, tev{ev.At, ev.Proc, ev.Arg})
		}
	}
	// Exact expected sequence: a starts and runs until it blocks at 0
	// (the start event runs the body synchronously), then b starts; b
	// wakes a at 5 and finishes, a resumes (running) at 5 and finishes.
	exp := []tev{
		{0, 0, trace.StateStarted},
		{0, 0, trace.StateBlocked},
		{0, 1, trace.StateStarted},
		{5, 1, trace.StateDone},
		{5, 0, trace.StateRunning},
		{5, 0, trace.StateDone},
	}
	if len(got) != len(exp) {
		t.Fatalf("thread-state events = %+v, want %+v", got, exp)
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("event %d = %+v, want %+v (full: %+v)", i, got[i], exp[i], got)
		}
	}
}
