package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"swsm/internal/trace"
)

// sleepHorizon bounds the forcing ticker in the identity tests: far past
// the last cycle any workload coroutine can reach (200 sleeps of at most
// 8 cycles each, plus staggered starts).
const sleepHorizon = Time(5000)

// runSleepWorkload runs `width` coroutines through a deterministic
// pseudo-random mix of sleeps (durations 1..8, so same-cycle wake-ups
// are frequent) and returns the observed (tid, now) schedule.  With
// forceSlow a self-rescheduling no-op event fires every cycle, so every
// Sleep sees a queued event at or before its wake-up time and must take
// the slow path through the queue; the ticker dispatches nothing
// observable, so the schedule must be byte-identical either way.
func runSleepWorkload(t *testing.T, width int, forceSlow, traced bool) ([][2]int64, []trace.Event) {
	t.Helper()
	e := NewEngine()
	var tr *trace.Tracer
	if traced {
		tr = trace.NewCapture(trace.Options{})
		e.SetTracer(tr)
	}
	if forceSlow {
		var tick func()
		tick = func() {
			if e.Now() < sleepHorizon {
				e.After(1, tick)
			}
		}
		e.At(0, tick)
	}
	var log [][2]int64
	for w := 0; w < width; w++ {
		w := w
		e.Spawn(fmt.Sprintf("w%d", w), Time(w), func(c *Coro) {
			r := uint64(w)*2654435761 + 12345
			for i := 0; i < 200; i++ {
				r = r*6364136223846793005 + 1442695040888963407
				c.Sleep(Time(r>>33%8) + 1)
				log = append(log, [2]int64{int64(c.tid), c.Now()})
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	if traced {
		for _, ev := range tr.Data().Events {
			if ev.Kind == trace.KThreadState {
				evs = append(evs, ev)
			}
		}
	}
	return log, evs
}

// TestSleepFastSlowPathIdentity pins the contract behind the Sleep fast
// path: skipping the queue when every pending event lies strictly after
// the wake-up time must be invisible.  The same workload runs with the
// fast path available and with it forced off (a 1-cycle ticker keeps the
// queue non-empty), serial and 8-wide, traced and untraced; every
// configuration must produce the identical schedule, and the traced runs
// the identical thread-state event stream.
func TestSleepFastSlowPathIdentity(t *testing.T) {
	for _, width := range []int{1, 8} {
		for _, traced := range []bool{false, true} {
			name := fmt.Sprintf("width=%d/traced=%v", width, traced)
			t.Run(name, func(t *testing.T) {
				fastLog, fastEvs := runSleepWorkload(t, width, false, traced)
				slowLog, slowEvs := runSleepWorkload(t, width, true, traced)
				if len(fastLog) != width*200 {
					t.Fatalf("fast-path run logged %d entries, want %d", len(fastLog), width*200)
				}
				if len(fastLog) != len(slowLog) {
					t.Fatalf("schedule lengths differ: fast %d, slow %d", len(fastLog), len(slowLog))
				}
				for i := range fastLog {
					if fastLog[i] != slowLog[i] {
						t.Fatalf("schedules diverge at step %d: fast (tid %d, t %d), slow (tid %d, t %d)",
							i, fastLog[i][0], fastLog[i][1], slowLog[i][0], slowLog[i][1])
					}
				}
				if !traced {
					return
				}
				if len(fastEvs) != len(slowEvs) {
					t.Fatalf("thread-state streams differ in length: fast %d, slow %d", len(fastEvs), len(slowEvs))
				}
				for i := range fastEvs {
					if fastEvs[i] != slowEvs[i] {
						t.Fatalf("thread-state streams diverge at %d: fast %+v, slow %+v", i, fastEvs[i], slowEvs[i])
					}
				}
			})
		}
	}
}

// TestSleepUntracedMatchesTraced pins that installing a tracer never
// perturbs timing: the untraced and traced schedules must be identical.
func TestSleepUntracedMatchesTraced(t *testing.T) {
	plain, _ := runSleepWorkload(t, 8, false, false)
	traced, _ := runSleepWorkload(t, 8, false, true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("tracer perturbed the schedule at step %d: %v vs %v", i, plain[i], traced[i])
		}
	}
}

// TestSleepSteadyStateNoAllocs asserts the coroutine sleep paths are
// allocation-free in steady state with tracing off: the in-place
// fast path (lone sleeper) and the slow path through the queue with a
// direct coroutine handoff (two sleepers ping-ponging every cycle).
// Allocations are counted from inside the coroutine, after a warm-up
// that pays one-time costs (bucket arrays, stack growth).
func TestSleepSteadyStateNoAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Min over several windows: the runtime occasionally allocates once
	// or twice on its own behalf (sudog pool refills on channel parks,
	// stack growth) — steady state is the window where none of that
	// happens, and per-sleep allocation would show up in every window.
	measure := func(c *Coro, d Time) uint64 {
		for i := 0; i < 100; i++ {
			c.Sleep(d)
		}
		best := ^uint64(0)
		for w := 0; w < 4; w++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < 5000; i++ {
				c.Sleep(d)
			}
			runtime.ReadMemStats(&m1)
			if n := m1.Mallocs - m0.Mallocs; n < best {
				best = n
			}
		}
		return best
	}

	t.Run("fast-path", func(t *testing.T) {
		e := NewEngine()
		var got uint64
		e.Spawn("lone", 0, func(c *Coro) { got = measure(c, 3) })
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("fast-path sleep loop allocated %d times in 5000 sleeps, want 0", got)
		}
	})

	t.Run("slow-path-handoff", func(t *testing.T) {
		e := NewEngine()
		var got uint64
		e.Spawn("a", 0, func(c *Coro) { got = measure(c, 1) })
		e.Spawn("b", 0, func(c *Coro) {
			// Outlast every measurement window of a, so a's sleeps stay
			// on the slow path (queue never empty) throughout.
			for i := 0; i < 21000; i++ {
				c.Sleep(1)
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("slow-path sleep loop allocated %d times in 5000 sleeps, want 0", got)
		}
	})
}
