package sim

import (
	"errors"
	"testing"
)

func TestTimerFires(t *testing.T) {
	eng := NewEngine()
	var firedAt Time = -1
	var tm *Timer
	eng.At(0, func() {
		tm = eng.NewTimer(100, func() { firedAt = eng.Now() })
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != 100 {
		t.Fatalf("timer fired at %d, want 100", firedAt)
	}
	if !tm.Fired() {
		t.Fatal("Fired() false after the callback ran")
	}
	if tm.Stop() {
		t.Fatal("Stop() after firing must report false")
	}
}

func TestTimerStop(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(0, func() {
		tm := eng.NewTimer(100, func() { fired = true })
		eng.At(50, func() {
			if !tm.Stop() {
				t.Error("first Stop() must report true")
			}
			if tm.Stop() {
				t.Error("second Stop() must report false")
			}
		})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired anyway")
	}
}

func TestFailAbortsRun(t *testing.T) {
	eng := NewEngine()
	boom := errors.New("boom")
	late := false
	eng.At(10, func() { eng.Fail(boom) })
	eng.At(20, func() { late = true })
	at, err := eng.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the injected failure", err)
	}
	if at != 10 {
		t.Fatalf("failure reported at %d, want 10", at)
	}
	if late {
		t.Fatal("events after Fail still ran")
	}
}
