// Package sim implements a deterministic discrete-event simulation engine
// with cooperatively scheduled coroutines, modeled on execution-driven
// architecture simulators such as augmint: application code runs for real,
// and the engine advances a virtual clock measured in processor cycles.
//
// The engine is strictly single-threaded from the simulation's point of
// view.  Coroutines execute one at a time, handing control back to the
// engine whenever they need virtual time to pass, so every run with the
// same inputs produces bit-identical timing.
//
// The event loop is built for raw speed.  Events are value-typed records
// in a calendar/bucket queue (see queue.go) instead of heap-allocated
// closures; the dominant kinds — coroutine steps, timers, network
// packets — are closure-free.  The loop itself ("the pump") is
// re-entrant: whichever stack currently holds control (Run, a coroutine
// inside Sleep/Block, or a finished coroutine on its way out) pops and
// dispatches events in place, handing off directly to the next coroutine
// with a single channel operation instead of bouncing every event
// through a central scheduler goroutine.  Coroutine sleeps whose wake-up
// precedes every queued event skip the queue entirely and advance the
// clock in place, so compute bursts between synchronization points cost
// a compare, not a context switch.
package sim

import (
	"fmt"

	"swsm/internal/trace"
)

// Time is a point in virtual time, measured in processor cycles.
type Time = int64

// EventHandler receives closure-free scheduled callbacks.  Hot
// subsystems (the network's packet pipeline) implement it so that
// scheduling an event stores a receiver pointer and one integer argument
// instead of allocating a closure per event.
type EventHandler interface {
	HandleEvent(now Time, arg int64)
}

// Engine is the discrete-event core.  It owns the virtual clock and the
// event queue, and it is the only entity that resumes coroutines.
type Engine struct {
	now Time
	seq uint64

	// reg is a single-event register in front of the calendar: when the
	// queue is otherwise empty the next event parks here, so the
	// ubiquitous pop-one-schedule-one chain (a lone coroutine sleeping,
	// a self-rescheduling sampler) never touches a bucket.  regSet
	// implies reg is the only queued event: a second schedule flushes
	// reg into the calendar first, so ordering is preserved.
	reg    event
	regSet bool

	q calQueue

	// Coroutine bookkeeping lives here as struct-of-arrays indexed by
	// tid rather than as fields on Coro: the pump and Sleep/Block/Wake
	// touch these flags constantly, and flat slices keep them on a few
	// shared cache lines instead of scattered across per-coroutine
	// allocations.
	coros       []*Coro
	coroStarted []bool
	coroDone    []bool
	coroBlocked []bool
	coroWakes   []int32

	// mainCh parks Run while a coroutine holds control.  A coroutine
	// that drains the queue (or observes Stop) signals it so Run can
	// finish the run-level bookkeeping.
	mainCh chan struct{}

	// stopped is set by Stop; the pump drains no further events once set.
	stopped bool
	// failure records a coroutine panic or Fail call; Run returns it.
	failure error

	// tracer is nil unless observability is enabled; every hook method on
	// a nil *trace.Tracer is a no-op, so the event loop stays allocation-
	// free when tracing is off.
	tracer *trace.Tracer
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{mainCh: make(chan struct{})}
	e.q.init()
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs (or, with nil, removes) the engine's tracer.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Tracer returns the installed tracer; nil means tracing is disabled.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// schedule files an event record at absolute time at.  The body is a
// thin inlinable shell: the common chain case (queue otherwise empty)
// stores field-wise into the register — no struct copy, no bucket — and
// everything else defers to scheduleSlow.
func (e *Engine) schedule(at Time, kind uint8, obj any, arg int64) {
	e.seq++
	if !e.regSet && e.q.count == 0 && len(e.q.overflow) == 0 {
		e.reg.at = at
		e.reg.seq = e.seq
		e.reg.arg = arg
		e.reg.obj = obj
		e.reg.kind = kind
		e.regSet = true
		return
	}
	e.scheduleSlow(at, kind, obj, arg)
}

// scheduleSlow files into the calendar, first flushing the register so
// the queue's (at, seq) order covers every pending event.
func (e *Engine) scheduleSlow(at Time, kind uint8, obj any, arg int64) {
	if e.regSet {
		e.regSet = false
		e.q.insert(e.reg, e.now)
	}
	e.q.insert(event{at: at, seq: e.seq, arg: arg, obj: obj, kind: kind}, e.now)
}

// popEvent removes the earliest queued event and returns a pointer to
// it.  The pointed-to record (the register, a bucket slot, or the
// queue's overflow scratch) is only guaranteed until the next schedule
// or pop: callers must read every field they need before dispatching.
func (e *Engine) popEvent() (*event, bool) {
	if e.regSet {
		e.regSet = false
		return &e.reg, true
	}
	return e.q.popNext()
}

// peekTime reports the earliest queued timestamp, if any.
func (e *Engine) peekTime() (Time, bool) {
	if e.regSet {
		return e.reg.at, true
	}
	return e.q.peekAt()
}

// At schedules fn to run at absolute virtual time t.  Scheduling in the
// past is an error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.schedule(t, evFunc, fn, 0)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.schedule(e.now+d, evFunc, fn, 0)
}

// AtHandler schedules h.HandleEvent(t, arg) at absolute virtual time t
// without allocating a closure.  Scheduling in the past panics.
func (e *Engine) AtHandler(t Time, h EventHandler, arg int64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.schedule(t, evHandler, h, arg)
}

// atStep schedules coroutine c to resume at absolute time t.
func (e *Engine) atStep(t Time, c *Coro) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.schedule(t, evStep, c, 0)
}

// Stop terminates Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// fail records a fatal simulation error and stops the engine.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// pump is the event loop, re-entrant on any stack.  Exactly one pump
// frame is live at a time across all goroutines; it pops and dispatches
// events until one of:
//
//   - it pops the step event for its own coroutine (self): it simply
//     returns, resuming self with zero channel operations;
//   - it pops a step event for another coroutine: it transfers control
//     directly (one channel send) and parks — or, when dying, returns so
//     the finished coroutine's goroutine can exit;
//   - the queue drains or Stop/Fail is observed: a coroutine-held pump
//     hands control back to Run via mainCh; Run's own pump just returns.
//
// self is the coroutine whose stack this pump runs on (nil for Run and
// for exiting coroutines); dying marks the pump run by a coroutine whose
// body has returned.
func (e *Engine) pump(self *Coro, dying bool) {
	for !e.stopped {
		var ev *event
		if e.regSet {
			e.regSet = false
			ev = &e.reg
		} else {
			var ok bool
			ev, ok = e.q.popNext()
			if !ok {
				break
			}
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		switch ev.kind {
		case evFunc:
			ev.obj.(func())()
		case evStep:
			c := ev.obj.(*Coro)
			if !e.coroStarted[c.tid] {
				e.coroStarted[c.tid] = true
				e.tracer.ThreadState(e.now, c.tid, trace.StateStarted)
			}
			if c == self {
				return
			}
			c.resume <- struct{}{}
			if dying {
				return
			}
			if self != nil {
				<-self.resume
				return
			}
			<-e.mainCh
		case evTimer:
			t := ev.obj.(*Timer)
			if !t.stopped {
				t.fired = true
				t.fn()
			}
		case evHandler:
			ev.obj.(EventHandler).HandleEvent(e.now, ev.arg)
		}
	}
	if self == nil && !dying {
		return // Run's own pump: Run finishes the bookkeeping
	}
	// A coroutine drained the queue or observed Stop/Fail while holding
	// control: hand it back to Run, which is parked on mainCh.
	e.mainCh <- struct{}{}
	if !dying {
		// The run is over but this coroutine is suspended mid-Sleep or
		// mid-Block.  Park; a later Run that pops its step event will
		// resume it, and otherwise the goroutine is reclaimed when the
		// process exits (same leak discipline as the deadlock case has
		// always had).
		<-self.resume
	}
}

// exitPump continues the event loop on the stack of a coroutine whose
// body has returned.  Its recover wrapper exists because the spawn
// wrapper's own recover has already fired by this point: a panic out of
// a dispatched event here would otherwise kill the process instead of
// failing the run.
func (e *Engine) exitPump() {
	defer func() {
		if r := recover(); r != nil {
			e.fail(fmt.Errorf("sim: event dispatch panicked during coroutine exit: %v", r))
			e.mainCh <- struct{}{}
		}
	}()
	e.pump(nil, true)
}

// Run processes events until the queue drains, Stop is called, or a
// deadlock is detected (live coroutines but no scheduled events).  It
// returns the final virtual time.
func (e *Engine) Run() (Time, error) {
	e.pump(nil, false)
	if e.failure != nil {
		return e.now, e.failure
	}
	if !e.stopped {
		if desc := e.blockedCoros(); desc != "" {
			return e.now, fmt.Errorf("sim: deadlock at cycle %d; %s", e.now, desc)
		}
	}
	return e.now, nil
}

// blockedCoros describes every unfinished coroutine for the deadlock
// report.  It separates coroutines genuinely parked in Block — waiting
// for a Wake that never came, an application-level deadlock — from
// coroutines that are runnable but starved: not blocked, yet never
// stepped again.  The latter indicates a scheduler bug (a runnable
// coroutine always has a step event queued), so the report says so.
// Tids are included so entries line up with trace track ids.
func (e *Engine) blockedCoros() string {
	var blocked, starved []string
	for _, c := range e.coros {
		if e.coroDone[c.tid] || !e.coroStarted[c.tid] {
			continue
		}
		desc := fmt.Sprintf("%s(tid %d)", c.name, c.tid)
		if e.coroBlocked[c.tid] {
			blocked = append(blocked, desc)
		} else {
			starved = append(starved, desc)
		}
	}
	switch {
	case len(blocked) > 0 && len(starved) > 0:
		return fmt.Sprintf("blocked coroutines: %v; runnable-but-starved coroutines (scheduler bug): %v", blocked, starved)
	case len(starved) > 0:
		return fmt.Sprintf("runnable-but-starved coroutines (scheduler bug): %v", starved)
	case len(blocked) > 0:
		return fmt.Sprintf("blocked coroutines: %v", blocked)
	}
	return ""
}

// PendingEvents reports how many events are queued (for tests).
func (e *Engine) PendingEvents() int {
	n := e.q.len()
	if e.regSet {
		n++
	}
	return n
}
