// Package sim implements a deterministic discrete-event simulation engine
// with cooperatively scheduled coroutines, modeled on execution-driven
// architecture simulators such as augmint: application code runs for real,
// and the engine advances a virtual clock measured in processor cycles.
//
// The engine is strictly single-threaded from the simulation's point of
// view.  Coroutines execute one at a time, handing control back to the
// engine whenever they need virtual time to pass, so every run with the
// same inputs produces bit-identical timing.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in processor cycles.
type Time = int64

// event is a scheduled callback.  Events with equal timestamps fire in
// scheduling order (seq), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core.  It owns the virtual clock and the
// event queue, and it is the only entity that resumes coroutines.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	coros  []*Coro

	// Stopped is set by Stop; Run drains no further events once set.
	stopped bool
	// failure records a coroutine panic; Run returns it.
	failure error
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t.  Scheduling in the
// past is an error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop terminates Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// fail records a fatal simulation error and stops the engine.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Run processes events until the queue drains, Stop is called, or a
// deadlock is detected (live coroutines but no scheduled events).  It
// returns the final virtual time.
func (e *Engine) Run() (Time, error) {
	for !e.stopped && len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if e.failure != nil {
		return e.now, e.failure
	}
	if !e.stopped {
		if blocked := e.blockedCoros(); len(blocked) > 0 {
			return e.now, fmt.Errorf("sim: deadlock at cycle %d; blocked coroutines: %v", e.now, blocked)
		}
	}
	return e.now, nil
}

func (e *Engine) blockedCoros() []string {
	var names []string
	for _, c := range e.coros {
		if !c.done && c.started {
			names = append(names, c.name)
		}
	}
	return names
}

// PendingEvents reports how many events are queued (for tests).
func (e *Engine) PendingEvents() int { return len(e.events) }
