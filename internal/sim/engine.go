// Package sim implements a deterministic discrete-event simulation engine
// with cooperatively scheduled coroutines, modeled on execution-driven
// architecture simulators such as augmint: application code runs for real,
// and the engine advances a virtual clock measured in processor cycles.
//
// The engine is strictly single-threaded from the simulation's point of
// view.  Coroutines execute one at a time, handing control back to the
// engine whenever they need virtual time to pass, so every run with the
// same inputs produces bit-identical timing.
package sim

import (
	"fmt"

	"swsm/internal/trace"
)

// Time is a point in virtual time, measured in processor cycles.
type Time = int64

// event is a scheduled callback.  Events with equal timestamps fire in
// scheduling order (seq), which keeps runs deterministic.  Event objects
// are recycled through the engine's free list: simulations schedule one
// event per message hop and per thread sleep, so the steady-state event
// rate is the engine's hottest allocation site.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Engine is the discrete-event core.  It owns the virtual clock and the
// event queue, and it is the only entity that resumes coroutines.
type Engine struct {
	now    Time
	events []*event // binary min-heap ordered by (at, seq)
	seq    uint64
	coros  []*Coro
	free   []*event // recycled event objects

	// Stopped is set by Stop; Run drains no further events once set.
	stopped bool
	// failure records a coroutine panic; Run returns it.
	failure error

	// tracer is nil unless observability is enabled; every hook method on
	// a nil *trace.Tracer is a no-op, so the event loop stays allocation-
	// free when tracing is off.
	tracer *trace.Tracer
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs (or, with nil, removes) the engine's tracer.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Tracer returns the installed tracer; nil means tracing is disabled.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// less orders heap entries by (at, seq).
func (e *Engine) less(i, j int) bool {
	a, b := e.events[i], e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from leaf i upward.
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// siftDown restores the heap property from root i downward.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.less(l, min) {
			min = l
		}
		if r < n && e.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = nil
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return top
}

// At schedules fn to run at absolute virtual time t.  Scheduling in the
// past is an error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop terminates Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// fail records a fatal simulation error and stops the engine.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Run processes events until the queue drains, Stop is called, or a
// deadlock is detected (live coroutines but no scheduled events).  It
// returns the final virtual time.
func (e *Engine) Run() (Time, error) {
	for !e.stopped && len(e.events) > 0 {
		ev := e.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		// Recycle before dispatch: ev is off the heap and nothing else
		// references it, so the callback may schedule into its slot.
		fn := ev.fn
		ev.fn = nil
		e.free = append(e.free, ev)
		fn()
	}
	if e.failure != nil {
		return e.now, e.failure
	}
	if !e.stopped {
		if blocked := e.blockedCoros(); len(blocked) > 0 {
			return e.now, fmt.Errorf("sim: deadlock at cycle %d; blocked coroutines: %v", e.now, blocked)
		}
	}
	return e.now, nil
}

func (e *Engine) blockedCoros() []string {
	var names []string
	for _, c := range e.coros {
		if !c.done && c.started {
			names = append(names, c.name)
		}
	}
	return names
}

// PendingEvents reports how many events are queued (for tests).
func (e *Engine) PendingEvents() int { return len(e.events) }

// FreeEvents reports how many event objects are pooled for reuse (for
// tests).
func (e *Engine) FreeEvents() int { return len(e.free) }
