package sim

import "math/bits"

// Event kinds.  The queue stores value-typed records instead of heap
// closures; the kind selects how (obj, arg) are interpreted at dispatch,
// so the dominant step/timer/message events carry a receiver pointer and
// an integer instead of a fresh closure per event.
const (
	evFunc    uint8 = iota // obj = func()
	evStep    uint8 = iota // obj = *Coro to resume
	evTimer   uint8 = iota // obj = *Timer whose fn runs unless stopped
	evHandler uint8 = iota // obj = EventHandler, receives arg
)

// event is one scheduled record.  Events with equal timestamps fire in
// scheduling order (seq), which keeps runs deterministic.  obj holds a
// pointer-shaped value (func, *Coro, *Timer, or an interface backed by a
// pointer), so storing it in the `any` never allocates.
type event struct {
	at   Time
	seq  uint64
	arg  int64
	obj  any
	kind uint8
}

// before orders events by (at, seq) — the engine's total order.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

const (
	// calBuckets is the calendar window width in cycles.  Simulated
	// latencies (cache misses, packet hops, poll quanta) are a few cycles
	// to a few thousand, so nearly every insert lands inside the window;
	// only far-future timers (retransmission timeouts) hit the overflow
	// heap.  Must be a multiple of 64 for the occupancy bitmap.
	calBuckets = 4096
	calWords   = calBuckets / 64
)

// calQueue is a calendar/bucket priority queue specialised for a
// discrete-event clock.  Width-1 buckets cover the window
// [base, base+calBuckets); each bucket holds the events for exactly one
// timestamp in append order, which IS seq order, so insert and
// pop-earliest are O(1) plus a bitmap scan.  Events at or beyond the
// window horizon go to a conventional (at, seq) min-heap and migrate
// into the calendar when it drains and rebases.
//
// Invariants:
//   - every queued event has at >= the engine clock, and base <= the
//     engine clock whenever an insert can occur (rebase targets the
//     current clock on the insert path; the pop path may rebase ahead of
//     the clock, but the caller advances the clock to the popped event's
//     timestamp before any new insert).
//   - overflow only holds events with at >= base+calBuckets.
//   - no occupied bucket lies below offset hint.
type calQueue struct {
	base  Time
	hint  int // scan floor: no occupied bucket below this offset
	count int // events currently in buckets

	buckets [][]event
	heads   []int32 // per-bucket consumed prefix (events already popped)
	occ     [calWords]uint64

	// pool recycles drained bucket slices so the steady-state event loop
	// allocates nothing even as the window slides across fresh offsets.
	pool [][]event

	overflow []event // min-heap by (at, seq): the far-future tier
}

func (q *calQueue) init() {
	q.buckets = make([][]event, calBuckets)
	q.heads = make([]int32, calBuckets)
	q.hint = calBuckets
}

func (q *calQueue) len() int { return q.count + len(q.overflow) }

// insert files ev.  now is the engine clock, used as the rebase target
// when the calendar is empty and ev lies beyond the stale window.
func (q *calQueue) insert(ev event, now Time) {
	d := ev.at - q.base
	if d >= calBuckets {
		if q.count == 0 {
			// Window is empty and stale; slide it up to the clock so the
			// common near-future insert stays in the calendar.
			q.rebase(now)
			d = ev.at - q.base
		}
		if d >= calBuckets {
			q.pushOverflow(ev)
			return
		}
	}
	q.put(int(d), ev)
}

// put appends ev to bucket i and marks it occupied.
func (q *calQueue) put(i int, ev event) {
	b := q.buckets[i]
	if b == nil {
		if n := len(q.pool); n > 0 {
			b = q.pool[n-1]
			q.pool = q.pool[:n-1]
		} else {
			b = make([]event, 0, 4)
		}
	}
	q.buckets[i] = append(b, ev)
	q.occ[i>>6] |= 1 << uint(i&63)
	q.count++
	if i < q.hint {
		q.hint = i
	}
}

// scan returns the offset of the earliest occupied bucket.  Requires
// count > 0.
func (q *calQueue) scan() int {
	i := q.hint
	w := i >> 6
	word := q.occ[w] &^ (1<<uint(i&63) - 1)
	for word == 0 {
		w++
		word = q.occ[w]
	}
	i = w<<6 | bits.TrailingZeros64(word)
	q.hint = i
	return i
}

// popNext removes the earliest event and returns a pointer to it,
// migrating from the overflow tier when the calendar is empty.  The
// pointed-to slot (a bucket element or the scratch register) stays
// intact until the next insert or pop: callers must consume the fields
// before mutating the queue.
func (q *calQueue) popNext() (*event, bool) {
	for {
		if q.count > 0 {
			i := q.scan()
			b := q.buckets[i]
			h := q.heads[i]
			ev := &b[h]
			h++
			if int(h) == len(b) {
				// Bucket drained: recycle its storage and clear the bit.
				// The popped slot's memory stays readable until a later
				// insert reuses the pooled slice.
				q.buckets[i] = nil
				q.heads[i] = 0
				q.pool = append(q.pool, b[:0])
				q.occ[i>>6] &^= 1 << uint(i&63)
			} else {
				q.heads[i] = h
			}
			q.count--
			return ev, true
		}
		if len(q.overflow) == 0 {
			return nil, false
		}
		// Calendar empty, overflow not: slide the window to the overflow
		// minimum.  Safe even though this may move base past the engine
		// clock — the caller advances the clock to the returned event's
		// timestamp before the next insert.
		q.rebase(q.overflow[0].at)
	}
}

// peekAt reports the earliest queued timestamp without removing anything.
func (q *calQueue) peekAt() (Time, bool) {
	if q.count > 0 {
		return q.base + Time(q.scan()), true
	}
	if len(q.overflow) > 0 {
		return q.overflow[0].at, true
	}
	return 0, false
}

// rebase slides the empty calendar window to start at newBase and pulls
// every overflow event that now fits into its bucket.  Requires
// count == 0.
func (q *calQueue) rebase(newBase Time) {
	q.base = newBase
	q.hint = calBuckets
	horizon := newBase + calBuckets
	for len(q.overflow) > 0 && q.overflow[0].at < horizon {
		ev := q.popOverflow()
		q.put(int(ev.at-q.base), ev)
	}
}

func (q *calQueue) pushOverflow(ev event) {
	q.overflow = append(q.overflow, ev)
	i := len(q.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.overflow[i].before(&q.overflow[parent]) {
			break
		}
		q.overflow[i], q.overflow[parent] = q.overflow[parent], q.overflow[i]
		i = parent
	}
}

func (q *calQueue) popOverflow() event {
	top := q.overflow[0]
	n := len(q.overflow) - 1
	q.overflow[0] = q.overflow[n]
	q.overflow[n] = event{}
	q.overflow = q.overflow[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.overflow[l].before(&q.overflow[min]) {
			min = l
		}
		if r < n && q.overflow[r].before(&q.overflow[min]) {
			min = r
		}
		if min == i {
			return top
		}
		q.overflow[i], q.overflow[min] = q.overflow[min], q.overflow[i]
		i = min
	}
}
