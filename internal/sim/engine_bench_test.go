package sim

import "testing"

// BenchmarkEngineEvents measures the schedule+dispatch cycle of the
// event core — the simulator's hottest path (one event per message hop
// and per thread sleep).  With the free list and the prebound step
// closure it should run allocation-free in steady state.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var chain func()
	chain = func() {
		if remaining > 0 {
			remaining--
			e.After(1, chain)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.At(0, chain)
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSleepFast measures the in-place Sleep fast path: a lone
// coroutine advancing the clock with no queued events, the common shape
// of a compute burst between synchronization points.  One compare and an
// add — no event, no context switch, no allocation.
func BenchmarkEngineSleepFast(b *testing.B) {
	e := NewEngine()
	n := b.N
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("s", 0, func(c *Coro) {
		for i := 0; i < n; i++ {
			c.Sleep(100)
		}
	})
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoroSwitch measures the slow sleep path with a direct
// coroutine handoff: two coroutines ping-ponging 1-cycle sleeps, so every
// sleep files a step event and transfers control with one channel send.
func BenchmarkCoroSwitch(b *testing.B) {
	e := NewEngine()
	n := b.N/2 + 1
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < 2; w++ {
		e.Spawn("p", 0, func(c *Coro) {
			for i := 0; i < n; i++ {
				c.Sleep(1)
			}
		})
	}
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineEventsFanout schedules bursts of 64 simultaneous
// events, exercising heap sift costs alongside pooling.
func BenchmarkEngineEventsFanout(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		base := e.Now()
		for j := 0; j < 64; j++ {
			e.At(base+Time(j%8), func() {})
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
