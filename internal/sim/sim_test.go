package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: scheduling order
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 {
		t.Fatalf("end time = %d, want 10", end)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(3, func() {
		times = append(times, e.Now())
		e.After(4, func() { times = append(times, e.Now()) })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 3 || times[1] != 7 {
		t.Fatalf("times = %v, want [3 7]", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestCoroSleep(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Spawn("a", 0, func(c *Coro) {
		trace = append(trace, c.Now())
		c.Sleep(10)
		trace = append(trace, c.Now())
		c.Sleep(0) // no-op
		trace = append(trace, c.Now())
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if trace[0] != 0 || trace[1] != 10 || trace[2] != 10 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestCoroInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", 0, func(c *Coro) {
		order = append(order, "a0")
		c.Sleep(5)
		order = append(order, "a5")
		c.Sleep(10)
		order = append(order, "a15")
	})
	e.Spawn("b", 0, func(c *Coro) {
		order = append(order, "b0")
		c.Sleep(7)
		order = append(order, "b7")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a5", "b7", "a15"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var a *Coro
	var wokeAt Time
	a = e.Spawn("blocked", 0, func(c *Coro) {
		c.Block()
		wokeAt = c.Now()
	})
	e.Spawn("waker", 0, func(c *Coro) {
		c.Sleep(42)
		a.Wake()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 42 {
		t.Fatalf("wokeAt = %d, want 42", wokeAt)
	}
}

func TestWakeBeforeBlockIsNotLost(t *testing.T) {
	e := NewEngine()
	var a *Coro
	finished := false
	a = e.Spawn("late-blocker", 0, func(c *Coro) {
		c.Sleep(100) // wake arrives during this sleep
		c.Block()    // must consume the pending wake, not deadlock
		finished = true
	})
	e.Spawn("early-waker", 0, func(c *Coro) {
		c.Sleep(10)
		a.Wake()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("coroutine never finished")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", 0, func(c *Coro) { c.Block() })
	if _, err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestFIFOContention(t *testing.T) {
	r := NewFIFO("bus")
	s, f := r.Reserve(0, 10)
	if s != 0 || f != 10 {
		t.Fatalf("first = [%d,%d], want [0,10]", s, f)
	}
	s, f = r.Reserve(4, 5) // must queue behind the first
	if s != 10 || f != 15 {
		t.Fatalf("second = [%d,%d], want [10,15]", s, f)
	}
	s, f = r.Reserve(100, 1) // idle by then
	if s != 100 || f != 101 {
		t.Fatalf("third = [%d,%d], want [100,101]", s, f)
	}
	if r.BusyCycles() != 16 {
		t.Fatalf("busy = %d, want 16", r.BusyCycles())
	}
	if r.WaitCycles() != 6 {
		t.Fatalf("wait = %d, want 6", r.WaitCycles())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
}

func TestBandwidthRates(t *testing.T) {
	// 2 bytes per 3 cycles: 10 bytes -> ceil(30/2)=15 cycles.
	b := NewBandwidth("io", 2, 3)
	if got := b.TransferCycles(10); got != 15 {
		t.Fatalf("10B = %d cycles, want 15", got)
	}
	// Infinite bandwidth.
	inf := NewBandwidth("inf", 0, 1)
	if got := inf.TransferCycles(1 << 20); got != 0 {
		t.Fatalf("infinite pipe charged %d cycles", got)
	}
	// 4 bytes/cycle.
	fast := NewBandwidth("fast", 4, 1)
	if got := fast.TransferCycles(4096); got != 1024 {
		t.Fatalf("4KB at 4B/cy = %d, want 1024", got)
	}
	if got := fast.TransferCycles(5); got != 2 { // rounds up
		t.Fatalf("5B at 4B/cy = %d, want 2", got)
	}
}

// Property: FIFO reservations never overlap and never start before request.
func TestFIFOInvariants(t *testing.T) {
	f := func(durs []uint16, gaps []uint16) bool {
		r := NewFIFO("p")
		now := Time(0)
		prevEnd := Time(0)
		n := len(durs)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			now += Time(gaps[i] % 64)
			s, e := r.Reserve(now, Time(durs[i]%128))
			if s < now || s < prevEnd || e < s {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bandwidth.TransferCycles is monotonic in byte count and exact
// for multiples of the rate.
func TestBandwidthMonotonic(t *testing.T) {
	f := func(num, den uint8, a, b uint16) bool {
		bw := NewBandwidth("p", int64(num%16)+1, int64(den%16)+1)
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bw.TransferCycles(x) <= bw.TransferCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var log []Time
		bus := NewFIFO("bus")
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("w", Time(i), func(c *Coro) {
				for j := 0; j < 4; j++ {
					_, end := bus.Reserve(c.Now(), Time(3+i))
					c.SleepUntil(end)
					log = append(log, c.Now())
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt)", ran)
	}
}
