package sim

import "testing"

// TestEventPoolRecycles checks that event objects return to the free
// list as they fire and that reuse never corrupts ordering: each
// callback schedules a successor, so every firing reuses the object
// that was just recycled.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var chain func()
	chain = func() {
		fired = append(fired, e.Now())
		if len(fired) < 100 {
			e.After(3, chain)
		}
	}
	e.At(0, chain)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, at := range fired {
		if at != Time(i*3) {
			t.Fatalf("firing %d at cycle %d, want %d", i, at, i*3)
		}
	}
	// The chain keeps at most one event live, so the pool should hold
	// very few objects — reuse, not growth.
	if got := e.FreeEvents(); got < 1 || got > 2 {
		t.Fatalf("FreeEvents() = %d, want 1-2 (chain must reuse, not allocate)", got)
	}
}

// TestEventPoolReuseWhileScheduled pins down the subtle recycling bug:
// an event is recycled the moment it is popped, before its callback
// runs, so a callback that schedules new events may be handed the very
// object that carried it.  The original (at, seq, fn) must have been
// fully consumed by then.
func TestEventPoolReuseWhileScheduled(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func() {
		order = append(order, 0)
		// These reuse the just-recycled event object for the first one.
		e.At(5, func() { order = append(order, 2) })
		e.After(0, func() { order = append(order, 3) })
	})
	e.At(5, func() { order = append(order, 1) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (same-time events fire in scheduling order)", order, want)
		}
	}
}

// TestEventPoolBurst drains a wide burst and checks the pool retains
// every object for the next burst, which then allocates nothing.
func TestEventPoolBurst(t *testing.T) {
	e := NewEngine()
	const n = 64
	count := 0
	for i := 0; i < n; i++ {
		e.At(Time(i%7), func() { count++ })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("fired %d events, want %d", count, n)
	}
	if got := e.FreeEvents(); got != n {
		t.Fatalf("FreeEvents() = %d, want %d after drain", got, n)
	}
	// Second burst: every event comes from the pool.
	for i := 0; i < n; i++ {
		e.At(e.Now()+Time(i), func() { count++ })
	}
	if got := e.FreeEvents(); got != 0 {
		t.Fatalf("FreeEvents() = %d, want 0 with %d events in flight", got, n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("fired %d events total, want %d", count, 2*n)
	}
}
