package sim

// FIFO models a single-server resource (an I/O bus, an NI processor, a
// memory bus) with first-come-first-served occupancy.  A reservation made
// at time `now` for `dur` cycles begins when the resource frees up and
// occupies it for the duration; the caller learns both the start and end
// times so it can charge queueing (contention) separately from service.
type FIFO struct {
	name   string
	freeAt Time

	// Accumulated statistics.
	busyCycles Time
	waitCycles Time
	uses       int64
}

// NewFIFO returns an idle FIFO resource.
func NewFIFO(name string) *FIFO {
	return &FIFO{name: name}
}

// Reserve books the resource for dur cycles starting no earlier than now.
// It returns the service start and end times.  dur may be zero.
func (r *FIFO) Reserve(now Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic("sim: negative reservation")
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busyCycles += dur
	r.waitCycles += start - now
	r.uses++
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *FIFO) FreeAt() Time { return r.freeAt }

// Name reports the resource name.
func (r *FIFO) Name() string { return r.name }

// BusyCycles reports total service time charged so far.
func (r *FIFO) BusyCycles() Time { return r.busyCycles }

// WaitCycles reports total queueing delay experienced by reservations.
func (r *FIFO) WaitCycles() Time { return r.waitCycles }

// Uses reports the number of reservations.
func (r *FIFO) Uses() int64 { return r.uses }

// Bandwidth models a pipe with a fixed transfer rate in bytes per cycle,
// expressed as a rational (bytesNum/bytesDen bytes per cycle) so that
// fractional rates like 0.66 B/cy are exact.  Transfers occupy the pipe
// FIFO, modeling contention among concurrent transfers.
type Bandwidth struct {
	fifo     FIFO
	bytesNum int64 // rate numerator: bytes
	bytesDen int64 // rate denominator: cycles
}

// NewBandwidth creates a pipe transferring bytesNum bytes every bytesDen
// cycles.  A zero bytesNum means infinite bandwidth (transfers are free).
func NewBandwidth(name string, bytesNum, bytesDen int64) *Bandwidth {
	if bytesDen <= 0 {
		bytesDen = 1
	}
	return &Bandwidth{fifo: FIFO{name: name}, bytesNum: bytesNum, bytesDen: bytesDen}
}

// TransferCycles reports how long moving n bytes takes at this rate,
// rounding up to whole cycles.  Infinite-bandwidth pipes report zero.
func (b *Bandwidth) TransferCycles(n int64) Time {
	if n <= 0 || b.bytesNum <= 0 {
		return 0
	}
	// ceil(n * den / num)
	return (n*b.bytesDen + b.bytesNum - 1) / b.bytesNum
}

// Reserve books the pipe for an n-byte transfer starting no earlier than
// now, returning service start and end.
func (b *Bandwidth) Reserve(now Time, n int64) (start, end Time) {
	return b.fifo.Reserve(now, b.TransferCycles(n))
}

// FreeAt reports when the pipe next becomes idle.
func (b *Bandwidth) FreeAt() Time { return b.fifo.FreeAt() }

// BusyCycles reports total service time charged so far.
func (b *Bandwidth) BusyCycles() Time { return b.fifo.BusyCycles() }

// Uses reports the number of transfers.
func (b *Bandwidth) Uses() int64 { return b.fifo.Uses() }
