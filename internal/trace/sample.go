package trace

import "swsm/internal/stats"

// Sample is one interval snapshot of the machine-wide breakdown: the
// cycles charged to each Figure-4 category (summed over processors)
// since the previous sample.  A run's samples turn the end-of-run
// breakdown bar into a time series — which phase of the execution
// accrued the lock wait, when the diff traffic burst happened.
type Sample struct {
	// Cycle is the virtual time at which the snapshot was taken.
	Cycle int64
	// Delta holds per-category cycles accrued in (prevCycle, Cycle].
	Delta [stats.NumCategories]int64
}

// Sampler accumulates interval snapshots.  The core machine drives it
// from a self-rescheduling simulation event every Every cycles, plus a
// final snapshot when the run ends.
//
// Time attribution quantizes at the simulator's polling model: threads
// materialize pending cycles at sync points and at the poll quantum, so
// a sample boundary can shift up to one quantum of a category's time
// into the next sample.  Deltas are exact in aggregate — the sum of all
// samples equals the end-of-run breakdown.
type Sampler struct {
	// Every is the sampling interval in cycles.
	Every int64

	rows []Sample
	last [stats.NumCategories]int64
}

// Snapshot records the per-category deltas since the previous snapshot.
// Consecutive same-cycle snapshots collapse (the final end-of-run
// snapshot may coincide with a periodic one).
func (s *Sampler) Snapshot(cycle int64, m *stats.Machine) {
	if n := len(s.rows); n > 0 && s.rows[n-1].Cycle == cycle {
		return
	}
	row := Sample{Cycle: cycle}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		tot := m.TotalTime(c)
		row.Delta[c] = tot - s.last[c]
		s.last[c] = tot
	}
	s.rows = append(s.rows, row)
}

// Rows returns the recorded samples in time order.
func (s *Sampler) Rows() []Sample {
	if s == nil {
		return nil
	}
	return s.rows
}
