package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"swsm/internal/stats"
)

func TestNilTracerHooksAreNoOps(t *testing.T) {
	var tr *Tracer
	// Every hook must be callable on the disabled (nil) tracer.
	tr.ThreadState(1, 0, StateRunning)
	tr.MsgSend(1, 0, 1, 64)
	tr.MsgRecv(1, 0, 1, 2)
	tr.PageFault(1, 0, 7, true)
	tr.PageFetch(1, 2, 0, 7)
	tr.DiffCreate(1, 0, 7, 3)
	tr.DiffApply(1, 0, 7, 3)
	tr.Twin(1, 0, 7)
	tr.Invalidate(1, 0, 7)
	tr.LockWait(1, 2, 0, 3)
	tr.LockRelease(2, 0, 3)
	tr.BarrierWait(1, 2, 0, 0)
	tr.Handler(1, 2, 0, 1)
	tr.SampleNow(10, stats.New(1))
	tr.Flush()
	if tr.Data() != nil || tr.Profiler() != nil || tr.Sampler() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
}

func TestNilTracerHooksDoNotAllocate(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.PageFault(1, 0, 7, true)
		tr.LockWait(1, 2, 0, 3)
		tr.ThreadState(1, 0, StateBlocked)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer hooks allocated %.1f/op, want 0", allocs)
	}
}

func TestRingFlushesToSinkInOrder(t *testing.T) {
	tr := NewCapture(Options{RingEvents: 4})
	for i := int64(0); i < 10; i++ {
		tr.MsgSend(i, 0, i, 8)
	}
	d := tr.Data()
	if len(d.Events) != 10 {
		t.Fatalf("captured %d events, want 10", len(d.Events))
	}
	for i, ev := range d.Events {
		if ev.At != int64(i) || ev.Arg != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	tr := New(Options{RingEvents: 4}) // no sink
	for i := int64(0); i < 10; i++ {
		tr.MsgSend(i, 0, i, 8)
	}
	if tr.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8 (two wraps of 4)", tr.Dropped())
	}
	pend := tr.Pending()
	if len(pend) != 4 {
		t.Fatalf("pending %d events, want 4", len(pend))
	}
	if pend[0].At != 6 || pend[3].At != 9 {
		t.Fatalf("flight recorder window wrong: %+v", pend)
	}
}

func TestSamplerDeltas(t *testing.T) {
	m := stats.New(2)
	s := &Sampler{Every: 100}
	m.Add(0, stats.Busy, 50)
	m.Add(1, stats.LockWait, 20)
	s.Snapshot(100, m)
	m.Add(0, stats.Busy, 10)
	s.Snapshot(200, m)
	s.Snapshot(200, m) // same-cycle collapse
	rows := s.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Delta[stats.Busy] != 50 || rows[0].Delta[stats.LockWait] != 20 {
		t.Fatalf("first sample wrong: %+v", rows[0])
	}
	if rows[1].Delta[stats.Busy] != 10 || rows[1].Delta[stats.LockWait] != 0 {
		t.Fatalf("second sample must hold deltas, not totals: %+v", rows[1])
	}
}

func TestProfilerRanksDeterministically(t *testing.T) {
	tr := NewCapture(Options{Profile: true})
	tr.PageFetch(0, 100, 0, 5) // unit 5: wait 100
	tr.PageFetch(0, 300, 1, 9) // unit 9: wait 300
	tr.PageFetch(0, 100, 2, 2) // unit 2: wait 100 (ties unit 5; lower id first)
	tr.DiffCreate(10, 0, 5, 4) // 32 diff bytes on unit 5
	tr.LockWait(0, 50, 0, 1)
	tr.LockWait(0, 70, 1, 4)
	tr.BarrierWait(0, 500, 0, 0)
	hot := tr.Data().Hot
	if got := []int64{hot.Pages[0].ID, hot.Pages[1].ID, hot.Pages[2].ID}; got[0] != 9 || got[1] != 5 || got[2] != 2 {
		t.Fatalf("page ranking wrong: %v (want 9, 5, 2)", got)
	}
	if hot.Pages[1].DiffBytes != 32 {
		t.Fatalf("diff bytes = %d, want 32", hot.Pages[1].DiffBytes)
	}
	if hot.Locks[0].ID != 4 || hot.Locks[1].ID != 1 {
		t.Fatalf("lock ranking wrong: %+v", hot.Locks)
	}
	if len(hot.Barriers) != 1 || hot.Barriers[0].Wait != 500 {
		t.Fatalf("barrier profile wrong: %+v", hot.Barriers)
	}
	if top := hot.TopPages(2); len(top) != 2 || top[0].ID != 9 {
		t.Fatalf("TopPages(2) wrong: %+v", top)
	}
}

func TestChromeSinkEmitsValidLoadableJSON(t *testing.T) {
	tr := NewCapture(Options{})
	tr.ThreadState(0, 0, StateStarted)
	tr.LockWait(10, 60, 0, 3)
	tr.PageFault(70, 1, 12, true)
	tr.BarrierWait(80, 200, 1, 0)
	d := tr.Data()
	d.Procs = 2

	var buf bytes.Buffer
	if err := WriteChrome(&buf, "unit test", d); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2 thread_name metas + 4 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("traceEvents = %d, want 7", len(doc.TraceEvents))
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	want := []string{"M", "M", "M", "i", "X", "i", "X"}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestJSONLSinkOneValidObjectPerLine(t *testing.T) {
	tr := NewCapture(Options{})
	tr.MsgSend(5, 2, 1, 64)
	tr.PageFetch(10, 40, 0, 7)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Run{{Label: "r", Data: tr.Data()}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var obj map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["kind"] != "pageFetch" || obj["dur"].(float64) != 30 {
		t.Fatalf("jsonl line wrong: %v", obj)
	}
}

func TestSerializationIsByteIdentical(t *testing.T) {
	mk := func() *Data {
		tr := NewCapture(Options{Profile: true, SampleEvery: 100})
		tr.LockWait(10, 60, 0, 3)
		tr.PageFault(70, 1, 12, false)
		tr.DiffCreate(90, 1, 12, 8)
		d := tr.Data()
		d.Procs = 2
		return d
	}
	var a, b bytes.Buffer
	if err := WriteChromeMulti(&a, []Run{{"x", mk()}, {"y", mk()}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeMulti(&b, []Run{{"x", mk()}, {"y", mk()}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event sequences serialized to different bytes")
	}
}
