// Package trace is the simulator's deterministic observability layer:
// a typed event tracer, an interval sampler that turns the Figure-4
// breakdown categories into time series, and a hot-object profiler that
// ranks pages, locks and barriers by the traffic and wait time they
// generate (the Table-4/5-style drill-down).
//
// Design constraints, in priority order:
//
//   - Zero overhead when disabled.  Every hook is a method on *Tracer
//     with a nil-receiver fast path, so instrumented code calls
//     tr.PageFault(...) unconditionally and a nil tracer costs one
//     predictable branch — no allocation, no interface dispatch.
//   - Determinism.  Events carry only virtual time and integer object
//     ids, never wall-clock readings or map-iteration artifacts, so the
//     same RunSpec produces a byte-identical serialized trace no matter
//     how (or how parallel) the surrounding sweep runs.
//   - Bounded memory on the hot path.  Events accumulate in a
//     preallocated ring and are handed to a pluggable Sink in batches
//     when the ring fills; with no sink the ring wraps, keeping the most
//     recent window (flight-recorder mode).
package trace

import "swsm/internal/stats"

// Kind enumerates the traced event types.
type Kind uint8

// Event kinds.  Span kinds carry a nonzero Dur; instant kinds have
// Dur == 0 by construction.
const (
	// KThreadState marks a simulated-thread scheduling transition
	// (Arg: 1 = running, 0 = blocked, 2 = started, 3 = finished).
	KThreadState Kind = iota
	// KMsgSend is a message injection (Arg = protocol kind, Arg2 = wire
	// bytes including header).
	KMsgSend
	// KMsgRecv is a handler-message arrival at its destination
	// (Arg = protocol kind, Arg2 = source node).
	KMsgRecv
	// KPageFault is an access fault on an invalid coherence unit
	// (Arg = unit id, Arg2 = 1 for a write access).
	KPageFault
	// KPageFetch spans a remote fetch: request send to data arrival
	// (Arg = unit id).
	KPageFetch
	// KDiffCreate records a diff creation (Arg = unit, Arg2 = words
	// written into the diff).
	KDiffCreate
	// KDiffApply records a diff application (Arg = unit, Arg2 = words).
	KDiffApply
	// KTwin records a twin (pristine copy) creation (Arg = unit).
	KTwin
	// KInvalidate records a coherence-unit invalidation (Arg = unit).
	KInvalidate
	// KLockWait spans a lock acquisition including the wait (Arg = lock).
	KLockWait
	// KLockRelease marks a release-side consistency action (Arg = lock).
	KLockRelease
	// KBarrierWait spans a barrier episode: flush, arrival and wait for
	// the release (Arg = barrier).
	KBarrierWait
	// KHandler spans a protocol handler execution (Arg = message kind).
	KHandler
	// KMsgDrop marks a wire transmission the fault plane lost
	// (Arg = protocol kind, -1 for an ack; Arg2 = sequence number).
	KMsgDrop
	// KMsgRetransmit marks a timeout-driven retransmission
	// (Arg = protocol kind, Arg2 = attempt count so far).
	KMsgRetransmit
	// KMsgAck marks a cumulative transport ack leaving a node
	// (Arg = destination node, Arg2 = acknowledged sequence number).
	KMsgAck
	numKinds
)

var kindNames = [numKinds]string{
	"threadState", "msgSend", "msgRecv", "pageFault", "pageFetch",
	"diffCreate", "diffApply", "twin", "invalidate",
	"lockWait", "lockRelease", "barrierWait", "handler",
	"msgDrop", "msgRetransmit", "msgAck",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Thread-state values for KThreadState events.
const (
	StateBlocked int64 = 0
	StateRunning int64 = 1
	StateStarted int64 = 2
	StateDone    int64 = 3
)

// Event is one trace record.  It is a fixed-size value type: emitting
// one never allocates, and serialization order is exactly emission
// order, which the single-threaded simulation engine already makes
// deterministic.
type Event struct {
	// At is the event's virtual start time in cycles; Dur is the span
	// length (0 for instant events).
	At  int64
	Dur int64
	// Arg and Arg2 are kind-specific (object id, byte count, ...).
	Arg  int64
	Arg2 int64
	// Proc is the processor (track) the event belongs to.
	Proc int32
	Kind Kind
}

// DefaultRingEvents is the default ring capacity (events).
const DefaultRingEvents = 8192

// Options configures a Tracer.
type Options struct {
	// RingEvents is the ring capacity; DefaultRingEvents if zero.
	RingEvents int
	// Sink receives full ring batches and the final Flush.  With a nil
	// sink the ring wraps and only the most recent window survives.
	Sink Sink
	// Profile attaches a hot-object profiler.
	Profile bool
	// SampleEvery attaches an interval sampler snapshotting the
	// breakdown categories every N cycles (0 = no sampling).
	SampleEvery int64
}

// Tracer collects events.  All hook methods are nil-safe: a nil
// *Tracer is the disabled tracer and every hook returns immediately.
type Tracer struct {
	ring    []Event
	n       int   // valid events in ring (<= cap before first wrap)
	next    int   // ring write index
	dropped int64 // events overwritten in flight-recorder mode
	sink    Sink

	prof *Profiler
	samp *Sampler
}

// New creates an enabled tracer.
func New(opts Options) *Tracer {
	size := opts.RingEvents
	if size <= 0 {
		size = DefaultRingEvents
	}
	t := &Tracer{ring: make([]Event, size), sink: opts.Sink}
	if opts.Profile {
		t.prof = newProfiler()
	}
	if opts.SampleEvery > 0 {
		t.samp = &Sampler{Every: opts.SampleEvery}
	}
	return t
}

// NewCapture creates a tracer whose sink retains every event in memory
// (the harness's per-run capture mode; see Data).
func NewCapture(opts Options) *Tracer {
	opts.Sink = &captureSink{}
	return New(opts)
}

// Profiler returns the attached hot-object profiler, or nil.
func (t *Tracer) Profiler() *Profiler {
	if t == nil {
		return nil
	}
	return t.prof
}

// Sampler returns the attached interval sampler, or nil.
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.samp
}

// Dropped reports how many events the ring overwrote (only nonzero in
// flight-recorder mode, i.e. with no sink).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// emit appends one event to the ring, flushing to the sink when full.
func (t *Tracer) emit(ev Event) {
	if t.next == len(t.ring) {
		if t.sink != nil {
			t.sink.Events(t.ring)
			t.next, t.n = 0, 0
		} else {
			// Flight recorder: wrap, overwriting the oldest window.
			t.next = 0
			t.dropped += int64(len(t.ring))
		}
	}
	t.ring[t.next] = ev
	t.next++
	if t.n < t.next {
		t.n = t.next
	}
}

// Flush hands any buffered events to the sink.  Call once at end of
// run; in flight-recorder mode it is a no-op.
func (t *Tracer) Flush() {
	if t == nil || t.sink == nil || t.next == 0 {
		return
	}
	t.sink.Events(t.ring[:t.next])
	t.next, t.n = 0, 0
}

// Pending returns the events currently buffered in the ring, oldest
// first (test and flight-recorder support).
func (t *Tracer) Pending() []Event {
	if t == nil {
		return nil
	}
	if t.dropped > 0 && t.n == len(t.ring) {
		// Wrapped: oldest surviving event is at next.
		out := make([]Event, 0, t.n)
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	return t.ring[:t.next]
}

// Data snapshots everything the tracer collected: the captured events
// (NewCapture mode), the sampled breakdown time series and the
// hot-object profile.  The returned value is immutable by convention —
// memoized sweep results share it.
type Data struct {
	// Procs is the processor count of the run (track count for sinks).
	Procs int
	// Events is the full event log in emission order.
	Events []Event
	// Samples is the breakdown time series (nil without sampling).
	Samples []Sample
	// Hot is the hot-object profile (nil without profiling).
	Hot *Profile
}

// Data flushes and snapshots the tracer's collected state.
func (t *Tracer) Data() *Data {
	if t == nil {
		return nil
	}
	t.Flush()
	d := &Data{}
	if cs, ok := t.sink.(*captureSink); ok {
		d.Events = cs.events
	} else {
		d.Events = append([]Event(nil), t.Pending()...)
	}
	if t.samp != nil {
		d.Samples = t.samp.Rows()
	}
	if t.prof != nil {
		d.Hot = t.prof.Profile()
	}
	return d
}

// --- hook methods (all nil-safe) ---

// ThreadState records a scheduling transition for processor proc.
func (t *Tracer) ThreadState(at int64, proc int32, state int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KThreadState, Arg: state})
}

// MsgSend records a message injection on the source processor.
func (t *Tracer) MsgSend(at int64, proc int32, kind, bytes int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KMsgSend, Arg: kind, Arg2: bytes})
}

// MsgRecv records a handler-message arrival on the destination.
func (t *Tracer) MsgRecv(at int64, proc int32, kind, src int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KMsgRecv, Arg: kind, Arg2: src})
}

// PageFault records an access fault on a coherence unit.
func (t *Tracer) PageFault(at int64, proc int32, unit int64, write bool) {
	if t == nil {
		return
	}
	var w int64
	if write {
		w = 1
	}
	t.emit(Event{At: at, Proc: proc, Kind: KPageFault, Arg: unit, Arg2: w})
	if t.prof != nil {
		t.prof.pageFault(unit)
	}
}

// PageFetch spans a remote unit fetch from request to data arrival.
func (t *Tracer) PageFetch(start, end int64, proc int32, unit int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: start, Dur: end - start, Proc: proc, Kind: KPageFetch, Arg: unit})
	if t.prof != nil {
		t.prof.pageFetch(unit, end-start)
	}
}

// DiffCreate records a diff creation of `words` modified words.
func (t *Tracer) DiffCreate(at int64, proc int32, unit, words int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KDiffCreate, Arg: unit, Arg2: words})
	if t.prof != nil {
		t.prof.diff(unit, words*8)
	}
}

// DiffApply records a diff application at the unit's home.
func (t *Tracer) DiffApply(at int64, proc int32, unit, words int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KDiffApply, Arg: unit, Arg2: words})
}

// Twin records a twin creation.
func (t *Tracer) Twin(at int64, proc int32, unit int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KTwin, Arg: unit})
	if t.prof != nil {
		t.prof.twin(unit)
	}
}

// Invalidate records a coherence-unit invalidation.
func (t *Tracer) Invalidate(at int64, proc int32, unit int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KInvalidate, Arg: unit})
	if t.prof != nil {
		t.prof.invalidate(unit)
	}
}

// LockWait spans a lock acquisition, including the wait for the grant.
func (t *Tracer) LockWait(start, end int64, proc int32, lock int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: start, Dur: end - start, Proc: proc, Kind: KLockWait, Arg: lock})
	if t.prof != nil {
		t.prof.lock(lock, end-start)
	}
}

// LockRelease records the release-side action of a lock.
func (t *Tracer) LockRelease(at int64, proc int32, lock int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KLockRelease, Arg: lock})
}

// BarrierWait spans one barrier episode on a processor.
func (t *Tracer) BarrierWait(start, end int64, proc int32, bar int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: start, Dur: end - start, Proc: proc, Kind: KBarrierWait, Arg: bar})
	if t.prof != nil {
		t.prof.barrier(bar, end-start)
	}
}

// Handler spans a protocol handler execution on a processor.
func (t *Tracer) Handler(start, end int64, proc int32, kind int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: start, Dur: end - start, Proc: proc, Kind: KHandler, Arg: kind})
}

// MsgDrop records a wire transmission lost by the fault plane (kind -1
// marks a transport ack).
func (t *Tracer) MsgDrop(at int64, proc int32, kind, seq int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KMsgDrop, Arg: kind, Arg2: seq})
}

// MsgRetransmit records a timeout-driven retransmission on the sender.
func (t *Tracer) MsgRetransmit(at int64, proc int32, kind, attempt int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KMsgRetransmit, Arg: kind, Arg2: attempt})
}

// MsgAck records a cumulative transport ack leaving proc toward peer.
func (t *Tracer) MsgAck(at int64, proc int32, peer, seq int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: at, Proc: proc, Kind: KMsgAck, Arg: peer, Arg2: seq})
}

// SampleNow snapshots the breakdown categories into the sampler, if one
// is attached (called by the core's sampling event).
func (t *Tracer) SampleNow(cycle int64, m *stats.Machine) {
	if t == nil || t.samp == nil {
		return
	}
	t.samp.Snapshot(cycle, m)
}
