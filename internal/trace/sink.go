package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Sink receives event batches from a Tracer's ring.  The batch slice is
// reused by the tracer after the call returns, so sinks must copy or
// serialize before returning.  Sinks are invoked only from the
// simulation engine's single thread.
type Sink interface {
	Events(batch []Event)
}

// captureSink retains every event in memory (the harness's per-run
// capture mode).
type captureSink struct {
	events []Event
}

func (c *captureSink) Events(batch []Event) {
	c.events = append(c.events, batch...)
}

// --- Chrome trace_event sink ---

// Chrome trace-event phase and track conventions: every simulated
// processor is one tid, spans are complete ("X") events, instants are
// thread-scoped ("i"/"t") events, and virtual cycles map 1:1 to the
// format's microsecond timestamps (so Perfetto's "1 us" reads as "1
// cycle").  Serialization uses only fmt over integers — no maps, no
// floats — so identical event sequences produce identical bytes.

// ChromeSink streams events as Chrome trace_event JSON: open with
// NewChromeSink, feed it batches (or let a Tracer do so), then Close to
// emit the footer.  The output loads in Perfetto / chrome://tracing.
type ChromeSink struct {
	w      *bufio.Writer
	pid    int
	offset int64
	first  bool
	err    error
}

// NewChromeSink starts a trace_event JSON document on w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true}
	s.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	return s
}

func (s *ChromeSink) printf(format string, args ...interface{}) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

func (s *ChromeSink) sep() {
	if s.first {
		s.first = false
		s.printf("\n")
	} else {
		s.printf(",\n")
	}
}

// Meta emits a metadata record (process_name / thread_name).
func (s *ChromeSink) Meta(kind string, tid int, name string) {
	s.sep()
	s.printf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}",
		s.pid, tid, kind, name)
}

// BeginProcess starts a new pid group (one per run when several runs
// share a file) and names it.
func (s *ChromeSink) BeginProcess(pid int, name string, procs int) {
	s.pid = pid
	s.Meta("process_name", 0, name)
	for tid := 0; tid < procs; tid++ {
		s.Meta("thread_name", tid, fmt.Sprintf("proc%d", tid))
	}
}

// SetOffset shifts the timestamps of subsequently serialized events by
// dus microseconds.  The stitched service-span export uses it to anchor
// a run's virtual cycle 0 at the wall-clock start of its simulate span;
// the default 0 keeps ordinary traces byte-identical to before.
func (s *ChromeSink) SetOffset(dus int64) { s.offset = dus }

// Complete emits an explicit complete ("X") span on a track of the
// current process group — the entry point the service layer uses to
// stitch wall-clock lifecycle spans above the simulator's event tracks.
func (s *ChromeSink) Complete(tid int, ts, dur int64, name, cat string) {
	s.sep()
	s.printf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q,\"cat\":%q}",
		s.pid, tid, ts, dur, name, cat)
}

// Events serializes one batch (implements Sink).
func (s *ChromeSink) Events(batch []Event) {
	for i := range batch {
		s.event(&batch[i])
	}
}

func (s *ChromeSink) event(ev *Event) {
	s.sep()
	name, cat := chromeName(ev)
	if ev.Dur > 0 {
		s.printf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q,\"cat\":%q,\"args\":{\"arg\":%d,\"arg2\":%d}}",
			s.pid, ev.Proc, s.offset+ev.At, ev.Dur, name, cat, ev.Arg, ev.Arg2)
		return
	}
	s.printf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"name\":%q,\"cat\":%q,\"args\":{\"arg\":%d,\"arg2\":%d}}",
		s.pid, ev.Proc, s.offset+ev.At, name, cat, ev.Arg, ev.Arg2)
}

// chromeName renders a human-readable event name plus category.
func chromeName(ev *Event) (name, cat string) {
	switch ev.Kind {
	case KThreadState:
		switch ev.Arg {
		case StateBlocked:
			return "blocked", "thread"
		case StateRunning:
			return "running", "thread"
		case StateStarted:
			return "started", "thread"
		default:
			return "done", "thread"
		}
	case KMsgSend:
		return fmt.Sprintf("send k%d %dB", ev.Arg, ev.Arg2), "msg"
	case KMsgRecv:
		return fmt.Sprintf("recv k%d from %d", ev.Arg, ev.Arg2), "msg"
	case KPageFault:
		if ev.Arg2 != 0 {
			return fmt.Sprintf("wfault u%d", ev.Arg), "page"
		}
		return fmt.Sprintf("rfault u%d", ev.Arg), "page"
	case KPageFetch:
		return fmt.Sprintf("fetch u%d", ev.Arg), "page"
	case KDiffCreate:
		return fmt.Sprintf("diff u%d %dw", ev.Arg, ev.Arg2), "diff"
	case KDiffApply:
		return fmt.Sprintf("apply u%d %dw", ev.Arg, ev.Arg2), "diff"
	case KTwin:
		return fmt.Sprintf("twin u%d", ev.Arg), "diff"
	case KInvalidate:
		return fmt.Sprintf("inval u%d", ev.Arg), "page"
	case KLockWait:
		return fmt.Sprintf("lock %d", ev.Arg), "lock"
	case KLockRelease:
		return fmt.Sprintf("unlock %d", ev.Arg), "lock"
	case KBarrierWait:
		return fmt.Sprintf("barrier %d", ev.Arg), "barrier"
	case KHandler:
		return fmt.Sprintf("handler k%d", ev.Arg), "handler"
	case KMsgDrop:
		if ev.Arg < 0 {
			return fmt.Sprintf("drop ack s%d", ev.Arg2), "fault"
		}
		return fmt.Sprintf("drop k%d s%d", ev.Arg, ev.Arg2), "fault"
	case KMsgRetransmit:
		return fmt.Sprintf("rexmit k%d try%d", ev.Arg, ev.Arg2), "fault"
	case KMsgAck:
		return fmt.Sprintf("ack to %d s%d", ev.Arg, ev.Arg2), "msg"
	}
	return "unknown", "unknown"
}

// Close terminates the JSON document and flushes.
func (s *ChromeSink) Close() error {
	s.printf("\n]}\n")
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// --- compact JSONL sink ---

// JSONLSink streams events as one compact JSON object per line — the
// machine-readable counterpart of the Chrome sink (grep/jq-friendly,
// byte-identical across identical runs).
type JSONLSink struct {
	w   *bufio.Writer
	pid int
	err error
}

// NewJSONLSink starts a JSONL stream on w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// SetRun tags subsequent events with a run index (multi-run files).
func (s *JSONLSink) SetRun(pid int) { s.pid = pid }

// Events serializes one batch (implements Sink).
func (s *JSONLSink) Events(batch []Event) {
	for i := range batch {
		ev := &batch[i]
		if s.err != nil {
			return
		}
		_, s.err = fmt.Fprintf(s.w,
			"{\"run\":%d,\"at\":%d,\"dur\":%d,\"proc\":%d,\"kind\":%q,\"arg\":%d,\"arg2\":%d}\n",
			s.pid, ev.At, ev.Dur, ev.Proc, ev.Kind.String(), ev.Arg, ev.Arg2)
	}
}

// Close flushes the stream.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// --- whole-Data writers (post-run serialization of captured traces) ---

// Run labels one captured run for multi-run trace files.
type Run struct {
	Label string
	Data  *Data
}

// WriteChrome serializes one captured run as Chrome trace_event JSON.
func WriteChrome(w io.Writer, label string, d *Data) error {
	return WriteChromeMulti(w, []Run{{Label: label, Data: d}})
}

// WriteChromeMulti serializes several captured runs into one Chrome
// trace file, one process group (pid) per run in slice order.  Output
// bytes depend only on the runs' contents — sweeps that assemble the
// same runs in the same order produce identical files.
func WriteChromeMulti(w io.Writer, runs []Run) error {
	s := NewChromeSink(w)
	for pid, r := range runs {
		if r.Data == nil {
			continue
		}
		s.BeginProcess(pid, r.Label, r.Data.Procs)
		s.Events(r.Data.Events)
	}
	return s.Close()
}

// WriteJSONL serializes captured runs as JSON lines, tagging each event
// with its run index.
func WriteJSONL(w io.Writer, runs []Run) error {
	s := NewJSONLSink(w)
	for pid, r := range runs {
		if r.Data == nil {
			continue
		}
		s.SetRun(pid)
		s.Events(r.Data.Events)
	}
	return s.Close()
}
