package trace

import "sort"

// Profiler accumulates per-object protocol activity so the costliest
// pages (coherence units), locks and barriers of a run can be ranked —
// the drill-down behind the paper's Table-4/5 aggregate numbers.  It is
// fed by the Tracer's hook methods; map updates happen only while
// tracing is enabled, so the disabled path never touches it.
type Profiler struct {
	pages map[int64]*PageStats
	locks map[int64]*SyncStats
	bars  map[int64]*SyncStats
}

func newProfiler() *Profiler {
	return &Profiler{
		pages: make(map[int64]*PageStats),
		locks: make(map[int64]*SyncStats),
		bars:  make(map[int64]*SyncStats),
	}
}

// PageStats is one coherence unit's accumulated activity.
type PageStats struct {
	ID        int64
	Faults    int64 // access faults (read or write)
	Fetches   int64 // remote fetches
	FetchWait int64 // cycles spent waiting for fetches
	DiffBytes int64 // bytes of diffs created for this unit
	Diffs     int64 // diffs created
	Twins     int64
	Invals    int64
}

// SyncStats is one lock's or barrier's accumulated activity.
type SyncStats struct {
	ID    int64
	Count int64 // acquires (locks) or per-processor episodes (barriers)
	Wait  int64 // cycles spent in the acquire/barrier span
}

func (p *Profiler) pageFor(id int64) *PageStats {
	ps := p.pages[id]
	if ps == nil {
		ps = &PageStats{ID: id}
		p.pages[id] = ps
	}
	return ps
}

func (p *Profiler) syncFor(m map[int64]*SyncStats, id int64) *SyncStats {
	ss := m[id]
	if ss == nil {
		ss = &SyncStats{ID: id}
		m[id] = ss
	}
	return ss
}

func (p *Profiler) pageFault(unit int64) { p.pageFor(unit).Faults++ }

func (p *Profiler) pageFetch(unit, wait int64) {
	ps := p.pageFor(unit)
	ps.Fetches++
	ps.FetchWait += wait
}

func (p *Profiler) diff(unit, bytes int64) {
	ps := p.pageFor(unit)
	ps.Diffs++
	ps.DiffBytes += bytes
}

func (p *Profiler) twin(unit int64)       { p.pageFor(unit).Twins++ }
func (p *Profiler) invalidate(unit int64) { p.pageFor(unit).Invals++ }

func (p *Profiler) lock(id, wait int64) {
	ss := p.syncFor(p.locks, id)
	ss.Count++
	ss.Wait += wait
}

func (p *Profiler) barrier(id, wait int64) {
	ss := p.syncFor(p.bars, id)
	ss.Count++
	ss.Wait += wait
}

// Profile is the immutable, deterministically ordered result of a
// Profiler: every object sorted hottest-first with stable tie-breaks,
// so two identical runs produce identical profiles (and identical CSV
// bytes) despite the map-based accumulation.
type Profile struct {
	// Pages is sorted by FetchWait desc, then DiffBytes desc, then ID.
	Pages []PageStats
	// Locks and Barriers are sorted by Wait desc, then ID.
	Locks    []SyncStats
	Barriers []SyncStats
}

// Profile freezes the profiler into sorted rankings.
func (p *Profiler) Profile() *Profile {
	out := &Profile{}
	for _, ps := range p.pages {
		out.Pages = append(out.Pages, *ps)
	}
	sort.Slice(out.Pages, func(i, j int) bool {
		a, b := &out.Pages[i], &out.Pages[j]
		if a.FetchWait != b.FetchWait {
			return a.FetchWait > b.FetchWait
		}
		if a.DiffBytes != b.DiffBytes {
			return a.DiffBytes > b.DiffBytes
		}
		return a.ID < b.ID
	})
	out.Locks = sortSync(p.locks)
	out.Barriers = sortSync(p.bars)
	return out
}

func sortSync(m map[int64]*SyncStats) []SyncStats {
	out := make([]SyncStats, 0, len(m))
	for _, ss := range m {
		out = append(out, *ss)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TopPages returns the k hottest coherence units (all if k <= 0).
func (p *Profile) TopPages(k int) []PageStats { return p.Pages[:clampTop(k, len(p.Pages))] }

// TopLocks returns the k most contended locks.
func (p *Profile) TopLocks(k int) []SyncStats { return p.Locks[:clampTop(k, len(p.Locks))] }

// TopBarriers returns the k costliest barriers.
func (p *Profile) TopBarriers(k int) []SyncStats { return p.Barriers[:clampTop(k, len(p.Barriers))] }

func clampTop(k, n int) int {
	if k <= 0 || k > n {
		return n
	}
	return k
}
