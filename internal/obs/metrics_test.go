package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text exposition rendered for one
// of every instrument kind: a scraper (and the CI smoke test) parses
// this format, so its shape is a compatibility surface.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("jobs_total", "Jobs by state.", `state="done"`)
	failed := r.Counter("jobs_total", "Jobs by state.", `state="failed"`)
	depth := r.Gauge("queue_depth", "Queued jobs.", "")
	r.GaugeFunc("workers", "Worker count.", "", func() float64 { return 4 })
	h := r.Histogram("wait_seconds", "Queue wait.", "", []float64{0.01, 0.1, 1})

	done.Add(3)
	failed.Inc()
	depth.Set(2.5)
	h.Observe(0.005) // le 0.01
	h.Observe(0.05)  // le 0.1
	h.Observe(0.5)   // le 1
	h.Observe(7)     // +Inf only

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs by state.
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="failed"} 1
# HELP queue_depth Queued jobs.
# TYPE queue_depth gauge
queue_depth 2.5
# HELP wait_seconds Queue wait.
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.01"} 1
wait_seconds_bucket{le="0.1"} 2
wait_seconds_bucket{le="1"} 3
wait_seconds_bucket{le="+Inf"} 4
wait_seconds_sum 7.555
wait_seconds_count 4
# HELP workers Worker count.
# TYPE workers gauge
workers 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionVecGolden pins the labeled-family exposition the
// cluster metrics rely on: per-worker series materialize on first With,
// a family registered before any series still exposes its HELP/TYPE
// header, and runtime label values (worker IDs) are escaped.
func TestExpositionVecGolden(t *testing.T) {
	r := NewRegistry()
	stolen := r.CounterVec("jobs_stolen_total", "Jobs stolen, by thief.", "worker")
	depth := r.GaugeVec("worker_queue_depth", "Dispatch queue depth.", "worker")
	r.CounterVec("failovers_total", "Failovers.", "node") // pinned, zero series

	stolen.With("w1").Add(2)
	stolen.With(`odd"w\`).Inc() // hostile worker ID: quote and backslash
	depth.With("w1").Set(3)
	depth.With("w2").Set(0)
	// With is memoized: the same label value is one series, not two.
	stolen.With("w1").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP failovers_total Failovers.
# TYPE failovers_total counter
# HELP jobs_stolen_total Jobs stolen, by thief.
# TYPE jobs_stolen_total counter
jobs_stolen_total{worker="w1"} 3
jobs_stolen_total{worker="odd\"w\\"} 1
# HELP worker_queue_depth Dispatch queue depth.
# TYPE worker_queue_depth gauge
worker_queue_depth{worker="w1"} 3
worker_queue_depth{worker="w2"} 0
`
	if got := sb.String(); got != want {
		t.Errorf("vec exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Nil vecs follow the disabled-observability contract end to end.
	var nc *CounterVec
	var ng *GaugeVec
	nc.With("x").Inc()
	ng.With("x").Set(1)
	if nc.With("x").Value() != 0 || ng.With("x").Value() != 0 {
		t.Error("nil vec instruments reported nonzero values")
	}
}

// TestExpositionDeterministic verifies two scrapes of the same state
// are byte-identical (families sort by name, series keep registration
// order).
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta_total", "alpha_total", "mid_total"} {
		r.Counter(name, "c", "").Add(7)
	}
	var a, b strings.Builder
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatalf("scrapes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), "# HELP alpha_total") {
		t.Errorf("families not sorted by name:\n%s", a.String())
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// the shape of concurrent jobs finishing at once — and verifies no
// observation is lost or misbucketed and the sum converges exactly
// (the values are chosen binary-representable, so float addition is
// associative here).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", "", []float64{0.25, 0.5, 1})
	const workers = 8
	const perWorker = 10000
	vals := []float64{0.125, 0.375, 0.75, 2} // one per bucket incl. +Inf
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(vals[i%len(vals)])
			}
		}()
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if h.Count() != total {
		t.Errorf("count = %d, want %d", h.Count(), total)
	}
	per := total / int64(len(vals))
	for i, want := range []int64{per, per, per, per} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	wantSum := float64(per) * (0.125 + 0.375 + 0.75 + 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramBucketEdges verifies le (inclusive upper bound)
// semantics at exact bucket boundaries.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", "", []float64{1, 2})
	h.Observe(1)                    // le="1"
	h.Observe(2)                    // le="2"
	h.Observe(math.Nextafter(2, 3)) // +Inf
	for i, want := range []int64{1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

// TestTypeConflictPanics pins the registration-time guard: one name,
// one type.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as both counter and gauge did not panic")
		}
	}()
	r.Gauge("x", "x", "")
}

// TestNilInstruments verifies every instrument is a usable no-op when
// nil — the disabled-observability contract.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
}

// Zero-allocation guarantees for the disabled paths: nil instruments
// must cost a branch, not a heap object, because they sit on paths the
// simulator hits millions of times.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var sp *Spans
	var f *Flight
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Histogram.Observe", func() { h.Observe(1) }},
		{"Spans.Add", func() { sp.Add("x", zeroTime, zeroTime) }},
		{"Flight.Record", func() { f.Record("j", "s", "") }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("nil %s allocates %v times per call", tc.name, n)
		}
	}
}

// Enabled hot-path instruments must also be allocation-free — Observe
// runs on every job and every pool slot.
func TestEnabledInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c", "")
	h := r.Histogram("h", "h", "", DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v times per call", n)
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "h", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkDisabledFlightRecord(b *testing.B) {
	var f *Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record("j1", "running", "")
	}
}
