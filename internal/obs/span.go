package obs

import (
	"io"
	"sync"
	"time"

	"swsm/internal/trace"
)

// Canonical span names for the job lifecycle.  Anything may be
// recorded, but the stitched export anchors the simulator's virtual
// timeline at the start of the SpanSim span.
const (
	// SpanQueue covers enqueue to dequeue (admission queue wait).
	SpanQueue = "queue"
	// SpanStoreGet / SpanStorePut cover persistent-store lookups and
	// write-backs.
	SpanStoreGet = "store.get"
	SpanStorePut = "store.put"
	// SpanSim covers the simulation itself (memoized-session resolve).
	SpanSim = "sim"
	// SpanRespond covers result finalization and watcher wake-up.
	SpanRespond = "respond"
)

// Span is one wall-clock interval of a job's service-side lifecycle.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
}

// Spans accumulates the spans of one job.  All methods are nil-safe —
// a nil *Spans is the disabled recorder — and safe for concurrent use.
type Spans struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpans creates an empty recorder.
func NewSpans() *Spans { return &Spans{} }

// Add records a completed interval.
func (s *Spans) Add(name string, start, end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans = append(s.spans, Span{Name: name, Start: start, End: end})
	s.mu.Unlock()
}

// Time runs fn inside a span.
func (s *Spans) Time(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	s.Add(name, start, time.Now())
}

// Snapshot returns a copy of the recorded spans in recording order.
func (s *Spans) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// WriteStitchedChrome exports one job as a single Chrome
// trace_event/Perfetto timeline: the service-side lifecycle spans as
// process 0 ("track" above), the simulator's deterministic event trace
// as process 1, with the sim's cycle 0 anchored at the wall-clock start
// of the SpanSim span.  Wall and virtual time therefore share an origin
// but not a scale — one simulated cycle renders as one microsecond (the
// sim sink's existing convention), while service spans are true
// wall-clock microseconds.
func WriteStitchedChrome(w io.Writer, serviceLabel string, spans []Span, simLabel string, sim *trace.Data) error {
	s := trace.NewChromeSink(w)
	var t0 time.Time
	for _, sp := range spans {
		if t0.IsZero() || sp.Start.Before(t0) {
			t0 = sp.Start
		}
	}
	s.BeginProcess(0, "svmd "+serviceLabel, 0)
	s.Meta("thread_name", 0, "job lifecycle")
	var anchor int64
	for _, sp := range spans {
		ts := sp.Start.Sub(t0).Microseconds()
		dur := sp.End.Sub(sp.Start).Microseconds()
		if dur < 1 {
			dur = 1 // Perfetto hides zero-width slices
		}
		if sp.Name == SpanSim && anchor == 0 {
			anchor = ts
		}
		s.Complete(0, ts, dur, sp.Name, "service")
	}
	if sim != nil {
		s.BeginProcess(1, simLabel, sim.Procs)
		s.SetOffset(anchor)
		s.Events(sim.Events)
		s.SetOffset(0)
	}
	return s.Close()
}
