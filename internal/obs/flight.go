package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecord is one service lifecycle record in the flight ring.
type FlightRecord struct {
	T     time.Time `json:"t"`
	Job   string    `json:"job,omitempty"`
	State string    `json:"state"`
	Msg   string    `json:"msg,omitempty"`
}

// Flight is the service flight recorder: a bounded ring of the most
// recent lifecycle records, dumped to disk — together with a short CPU
// profile — when something goes wrong (a job fails or breaches its
// latency SLO).  The ring records continuously and cheaply; the
// expensive part (serialization, profiling) happens only at dump time.
//
// All methods are nil-safe: a nil *Flight is the disabled recorder and
// Record costs one branch.
type Flight struct {
	mu   sync.Mutex
	ring []FlightRecord
	next int
	n    int

	dir     string
	cpuDur  time.Duration
	dumping atomic.Bool
	dumps   atomic.Int64
}

// DefaultFlightRecords is the default ring capacity.
const DefaultFlightRecords = 512

// NewFlight creates a recorder of up to n records (DefaultFlightRecords
// if n <= 0) dumping into dir.  cpuDur bounds the CPU profile captured
// alongside a dump (0 disables profiling).
func NewFlight(n int, dir string, cpuDur time.Duration) *Flight {
	if n <= 0 {
		n = DefaultFlightRecords
	}
	return &Flight{ring: make([]FlightRecord, n), dir: dir, cpuDur: cpuDur}
}

// Record appends one lifecycle record, overwriting the oldest once the
// ring is full.
func (f *Flight) Record(job, state, msg string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = FlightRecord{T: time.Now(), Job: job, State: state, Msg: msg}
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// Snapshot returns the retained records, oldest first.
func (f *Flight) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, f.n)
	if f.n == len(f.ring) {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

// Dumps reports how many dumps completed (test support).
func (f *Flight) Dumps() int64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// Dump writes the current ring as JSON to
// <dir>/svmd-flight-<job>-<stamp>.json and, if profiling is enabled,
// captures a cpuDur CPU profile next to it.  Only one dump runs at a
// time — a trigger arriving mid-dump is dropped (the ring it would have
// written is substantially the same).  Returns the dump path ("" when
// skipped).
func (f *Flight) Dump(reason, job string) (string, error) {
	if f == nil || f.dir == "" {
		return "", nil
	}
	if !f.dumping.CompareAndSwap(false, true) {
		return "", nil
	}
	defer f.dumping.Store(false)
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	stamp := time.Now().UTC().Format("20060102T150405.000")
	base := filepath.Join(f.dir, fmt.Sprintf("svmd-flight-%s-%s", sanitize(job), stamp))
	doc := struct {
		Reason  string         `json:"reason"`
		Job     string         `json:"job"`
		Records []FlightRecord `json:"records"`
	}{Reason: reason, Job: job, Records: f.Snapshot()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(base+".json", append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if f.cpuDur > 0 {
		// Best effort: pprof refuses if another profile (e.g. an operator's
		// /debug/pprof/profile) is already running — the dump is still
		// useful without it.
		if pf, err := os.Create(base + ".pprof"); err == nil {
			if pprof.StartCPUProfile(pf) == nil {
				time.Sleep(f.cpuDur)
				pprof.StopCPUProfile()
				pf.Close()
			} else {
				pf.Close()
				os.Remove(pf.Name())
			}
		}
	}
	f.dumps.Add(1)
	return base + ".json", nil
}

// sanitize keeps dump file names path-safe.
func sanitize(s string) string {
	if s == "" {
		return "none"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
