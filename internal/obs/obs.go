// Package obs is the service-level observability plane: the wall-clock
// counterpart of the simulator's deterministic trace layer
// (internal/trace).  Where trace answers "where did the simulated
// cycles go", obs answers "where did the daemon's wall-clock time go"
// — and it does so with the same discipline the sim layer established:
//
//   - Zero cost when disabled.  Every hook is nil-receiver safe, the
//     context accessors allocate nothing, and nothing here is ever
//     consulted from inside a simulation's deterministic hot path.
//   - No dependencies.  The Prometheus text exposition, the slog
//     plumbing and the flight recorder use only the standard library.
//   - Determinism preserved.  obs instruments the service *around* the
//     simulator; instrumented and uninstrumented runs produce
//     byte-identical result rows (pinned by test in internal/server).
//
// The package provides four tools:
//
//   - metrics.go: a Prometheus text-exposition registry — counters,
//     gauges and latency histograms rendered in stable order.
//   - obs.go (this file): structured leveled logging via log/slog with
//     a per-job ID carried through context from enqueue to store write.
//   - span.go: a wall-clock span model for the job lifecycle whose
//     spans export into the existing Chrome/Perfetto sink, stitched
//     above the sim-level trace of the same job.
//   - flight.go: a service flight recorder — a bounded ring of recent
//     lifecycle records dumped (with a CPU profile) when a job fails or
//     breaches its latency SLO.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// ctxKey namespaces the package's context values.
type ctxKey int

const (
	jobKey ctxKey = iota
	loggerKey
)

// WithJob returns ctx annotated with a job ID.  The ID is generated at
// enqueue by the scheduler and rides the context through pool slot,
// simulation and store write, so every log record on that path carries
// the job it serves.
func WithJob(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobKey, id)
}

// Job returns the job ID carried by ctx ("" when none).  Safe and
// allocation-free on an unannotated context.
func Job(ctx context.Context) string {
	if id, ok := ctx.Value(jobKey).(string); ok {
		return id
	}
	return ""
}

// WithLogger returns ctx carrying a logger for the layers below the
// scheduler (pool, harness, store) to log through.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the logger carried by ctx, or nil.  Callers must
// nil-check: a nil result is the disabled path and costs only the
// context lookup.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return nil
}

// ParseLevel parses a -log-level flag value (debug, info, warn, error;
// case-insensitive, slog's offset syntax like "info+2" also works).
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	err := l.UnmarshalText([]byte(s))
	return l, err
}

// NewLogger builds the service logger: human-readable text or
// machine-ingestible JSON, leveled, with the context job ID
// automatically attached to every record logged through a
// job-annotated context.
func NewLogger(w io.Writer, level slog.Leveler, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(jobHandler{h})
}

// jobHandler decorates records with the job ID carried by the logging
// context, so call sites never thread the ID by hand.
type jobHandler struct {
	slog.Handler
}

func (h jobHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := Job(ctx); id != "" {
		r.AddAttrs(slog.String("job", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h jobHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return jobHandler{h.Handler.WithAttrs(attrs)}
}

func (h jobHandler) WithGroup(name string) slog.Handler {
	return jobHandler{h.Handler.WithGroup(name)}
}
