package obs

import (
	"runtime"
	"time"
)

// ProcessStats is the process-level snapshot embedded in the service's
// JSON /metrics body — the backward-compatible counterpart of the
// go_*/process_* Prometheus gauges.
type ProcessStats struct {
	UptimeSec       float64 `json:"uptimeSec"`
	Goroutines      int     `json:"goroutines"`
	HeapAllocBytes  uint64  `json:"heapAllocBytes"`
	HeapSysBytes    uint64  `json:"heapSysBytes"`
	GCPauseTotalSec float64 `json:"gcPauseTotalSec"`
	GCCycles        uint32  `json:"gcCycles"`
	CPUs            int     `json:"cpus"`
}

// ReadProcess snapshots the current process state.
func ReadProcess(start time.Time) ProcessStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ProcessStats{
		UptimeSec:       time.Since(start).Seconds(),
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		GCPauseTotalSec: float64(ms.PauseTotalNs) / 1e9,
		GCCycles:        ms.NumGC,
		CPUs:            runtime.NumCPU(),
	}
}

// RegisterProcess adds the standard process/runtime gauges to a
// registry, sampled at scrape time.  One ReadMemStats serves one
// scrape; the stats are read per-series but ReadMemStats is cheap
// relative to a scrape interval.
func RegisterProcess(r *Registry, start time.Time) {
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since the process started.", "",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.", "",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.", "",
		func() float64 { return float64(readMem().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_sys_bytes",
		"Bytes of heap obtained from the OS.", "",
		func() float64 { return float64(readMem().HeapSys) })
	r.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", "",
		func() float64 { return float64(readMem().PauseTotalNs) / 1e9 })
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.", "",
		func() float64 { return float64(readMem().NumGC) })
}

func readMem() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}
