package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is a dependency-free Prometheus client: just enough of the
// text exposition format (version 0.0.4) for a scraper to consume the
// daemon's counters, gauges and latency histograms.  Deliberate
// restrictions keep it small and deterministic:
//
//   - Label sets are preformatted strings (`state="done"`), fixed at
//     registration — there is no dynamic label cardinality to leak.
//   - Families render in sorted name order and series in registration
//     order, so two scrapes of the same state are byte-identical.
//   - Instruments are lock-free atomics; scraping never contends with
//     the hot path that increments them.

// DefBuckets are the default latency buckets (seconds), spanning the
// sub-millisecond store hits to the multi-second large-scale runs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// CountBuckets suit small nonnegative counts (retransmits per job,
// fan-out sizes).
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250}

// Counter is a monotonically increasing metric.
type Counter struct {
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w *bufio.Writer, name string) {
	writeSeries(w, name, "", c.labels, strconv.FormatInt(c.v.Load(), 10))
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w *bufio.Writer, name string) {
	writeSeries(w, name, "", g.labels, formatFloat(g.Value()))
}

// funcMetric samples a callback at scrape time — the bridge to state
// that already has its own synchronized source of truth (queue depth,
// store counters, runtime.MemStats).
type funcMetric struct {
	labels string
	fn     func() float64
}

func (f *funcMetric) write(w *bufio.Writer, name string) {
	writeSeries(w, name, "", f.labels, formatFloat(f.fn()))
}

// Histogram is a fixed-bucket latency/size distribution.  Observe is
// lock-free and allocation-free; rendering reports cumulative buckets,
// sum and count per the exposition format.
type Histogram struct {
	labels string
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) write(w *bufio.Writer, name string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSeries(w, name+"_bucket", `le="`+formatFloat(b)+`"`, h.labels,
			strconv.FormatInt(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSeries(w, name+"_bucket", `le="+Inf"`, h.labels, strconv.FormatInt(cum, 10))
	writeSeries(w, name+"_sum", "", h.labels, formatFloat(h.Sum()))
	writeSeries(w, name+"_count", "", h.labels, strconv.FormatInt(h.count.Load(), 10))
}

// metric is one registered series.
type metric interface {
	write(w *bufio.Writer, name string)
}

// family groups every series registered under one metric name.
type family struct {
	name, help, typ string
	series          []metric
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format.  Registration is expected at construction
// time; instruments themselves are lock-free afterwards.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register attaches a series to its (possibly new) family, enforcing
// one type and help string per name.
func (r *Registry) register(name, help, typ string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, m)
}

// Counter registers a counter series.  labels is a preformatted label
// block without braces (`state="done"`), or "".
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{labels: labels}
	r.register(name, help, "counter", c)
	return c
}

// Gauge registers a settable gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{labels: labels}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "gauge", &funcMetric{labels: labels, fn: fn})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for sources that already maintain monotone counts (store
// stats, runner stats, GC totals).
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.register(name, help, "counter", &funcMetric{labels: labels, fn: fn})
}

// Histogram registers a histogram series over the given bucket upper
// bounds (ascending; +Inf appended implicitly).  bounds must not be
// empty; DefBuckets serves latencies in seconds.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		labels: labels,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(name, help, "histogram", h)
	return h
}

// CounterVec is a family of counters distinguished by one variable
// label whose values appear at runtime — per-worker series of the
// cluster coordinator, where worker IDs are not known at registration.
// Cardinality is expected to stay small and bounded (cluster
// membership, not request attributes); each distinct value registers a
// series that lives for the registry's lifetime.
type CounterVec struct {
	reg        *Registry
	name, help string
	label      string
	mu         sync.Mutex
	byValue    map[string]*Counter
}

// CounterVec registers a counter family whose series are materialized
// per label value by With.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{reg: r, name: name, help: help, label: label,
		byValue: make(map[string]*Counter)}
	// Pin the family's name/help/type now so the exposition shows it
	// (with zero series) before the first With.
	r.mu.Lock()
	if _, ok := r.fams[name]; !ok {
		r.fams[name] = &family{name: name, help: help, typ: "counter"}
	}
	r.mu.Unlock()
	return v
}

// With returns the counter for one label value, registering it on first
// use.  Safe for concurrent use; nil-safe like the instruments.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.byValue[value]; ok {
		return c
	}
	c := v.reg.Counter(v.name, v.help, v.label+`="`+escapeLabel(value)+`"`)
	v.byValue[value] = c
	return c
}

// GaugeVec is CounterVec for gauges (per-worker queue depth, in-flight
// leases).
type GaugeVec struct {
	reg        *Registry
	name, help string
	label      string
	mu         sync.Mutex
	byValue    map[string]*Gauge
}

// GaugeVec registers a gauge family whose series are materialized per
// label value by With.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{reg: r, name: name, help: help, label: label,
		byValue: make(map[string]*Gauge)}
	r.mu.Lock()
	if _, ok := r.fams[name]; !ok {
		r.fams[name] = &family{name: name, help: help, typ: "gauge"}
	}
	r.mu.Unlock()
	return v
}

// With returns the gauge for one label value, registering it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.byValue[value]; ok {
		return g
	}
	g := v.reg.Gauge(v.name, v.help, v.label+`="`+escapeLabel(value)+`"`)
	v.byValue[value] = g
	return g
}

// escapeLabel makes a runtime string safe inside a label value per the
// exposition format (backslash, quote and newline escapes).
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders every registered family in sorted name order
// (series within a family in registration order), in the text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, m := range f.series {
			m.write(bw, f.name)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeSeries emits one sample line, merging the series' fixed labels
// with an extra label (the histogram's le), either of which may be
// empty.
func writeSeries(w *bufio.Writer, name, extra, labels, value string) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// formatFloat renders a float the shortest way that round-trips ("0.005",
// "1", "2.5e+06").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
