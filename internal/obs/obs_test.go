package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swsm/internal/trace"
)

var zeroTime time.Time

func TestContextJobAndLogger(t *testing.T) {
	ctx := context.Background()
	if Job(ctx) != "" || Log(ctx) != nil {
		t.Fatal("bare context reported a job or logger")
	}
	l := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx = WithLogger(WithJob(ctx, "j42"), l)
	if Job(ctx) != "j42" {
		t.Errorf("Job = %q, want j42", Job(ctx))
	}
	if Log(ctx) != l {
		t.Error("Log did not round-trip the logger")
	}
}

func TestContextAccessAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() { Job(ctx); Log(ctx) }); n != 0 {
		t.Errorf("Job/Log on a bare context allocate %v times per call", n)
	}
}

// TestLoggerJobInjection verifies the slog handler stamps every record
// produced under a job context with the job ID — the property that
// makes one grep reconstruct a job's full trail across scheduler,
// harness, store and transport.
func TestLoggerJobInjection(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelDebug, true)
	ctx := WithJob(context.Background(), "j7")
	l.InfoContext(ctx, "hello", "k", "v")
	l.Info("no job")

	dec := json.NewDecoder(&buf)
	var first, second map[string]any
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if first["job"] != "j7" || first["k"] != "v" {
		t.Errorf("job line missing injected attrs: %v", first)
	}
	if _, ok := second["job"]; ok {
		t.Errorf("jobless line gained a job attr: %v", second)
	}
}

func TestLoggerLevelsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, false)
	l.Debug("suppressed")
	l.WithGroup("g").With("a", 1).InfoContext(WithJob(context.Background(), "j1"), "msg")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Error("debug line not filtered at info level")
	}
	if !strings.Contains(out, "job=j1") {
		t.Errorf("derived (WithGroup/WithAttrs) handler lost job injection: %s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("chatty"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestSpansSnapshot(t *testing.T) {
	sp := NewSpans()
	t0 := time.Unix(0, 0)
	sp.Add(SpanQueue, t0, t0.Add(time.Millisecond))
	sp.Time(SpanSim, func() {})
	got := sp.Snapshot()
	if len(got) != 2 || got[0].Name != SpanQueue || got[1].Name != SpanSim {
		t.Fatalf("snapshot = %+v", got)
	}
	// Snapshot is a copy: mutating it must not affect the recorder.
	got[0].Name = "clobbered"
	if sp.Snapshot()[0].Name != SpanQueue {
		t.Error("Snapshot aliased internal storage")
	}
}

// TestWriteStitchedChrome checks the stitched export end to end: valid
// Chrome trace JSON, service spans on process 0, sim events on process
// 1, and the sim's cycle 0 anchored at the wall-clock start of the
// service's sim span.
func TestWriteStitchedChrome(t *testing.T) {
	base := time.Unix(100, 0)
	spans := []Span{
		{Name: SpanQueue, Start: base, End: base.Add(2 * time.Millisecond)},
		{Name: SpanSim, Start: base.Add(2 * time.Millisecond), End: base.Add(10 * time.Millisecond)},
		{Name: SpanRespond, Start: base.Add(10 * time.Millisecond), End: base.Add(11 * time.Millisecond)},
	}
	sim := &trace.Data{
		Procs: 2,
		Events: []trace.Event{
			{At: 0, Dur: 50, Proc: 0, Kind: trace.KBarrierWait, Arg: 1}, // "barrier 1"
			{At: 60, Proc: 1, Kind: trace.KInvalidate, Arg: 3},          // instant "inval u3"
		},
	}
	var buf bytes.Buffer
	if err := WriteStitchedChrome(&buf, "j9", spans, "sim fft", sim); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Ts   int64  `json:"ts"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stitched output is not valid JSON: %v\n%s", err, buf.String())
	}

	find := func(name string, pid int) (int64, bool) {
		for _, e := range doc.TraceEvents {
			if e.Name == name && e.Pid == pid && e.Ph == "X" {
				return e.Ts, true
			}
		}
		return 0, false
	}
	simSpanTs, ok := find(SpanSim, 0)
	if !ok {
		t.Fatalf("no service sim span in %s", buf.String())
	}
	if simSpanTs != 2000 { // 2 ms after the earliest span start, in µs
		t.Errorf("sim span ts = %d µs, want 2000", simSpanTs)
	}
	barrierTs, ok := find("barrier 1", 1)
	if !ok {
		t.Fatalf("no sim barrier event in %s", buf.String())
	}
	// Cycle 0 anchors at the sim span's wall start: the stitched virtual
	// timeline begins exactly where the service says simulation began.
	if barrierTs != simSpanTs {
		t.Errorf("sim cycle 0 at ts %d, want anchored at %d", barrierTs, simSpanTs)
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4, "", 0)
	for i := 0; i < 7; i++ {
		f.Record("j", string(rune('a'+i)), "")
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot kept %d records, want 4", len(got))
	}
	for i, want := range []string{"d", "e", "f", "g"} {
		if got[i].State != want {
			t.Errorf("record %d = %q, want %q (oldest first)", i, got[i].State, want)
		}
	}
}

func TestFlightDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlight(8, dir, 0) // no CPU profile: keep the test fast
	f.Record("j1", "queued", "fft/hlrc")
	f.Record("j1", "failed", "boom")
	path, err := f.Dump("job failed", "j1")
	if err != nil || path == "" {
		t.Fatalf("Dump = %q, %v", path, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason  string         `json:"reason"`
		Job     string         `json:"job"`
		Records []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Reason != "job failed" || doc.Job != "j1" || len(doc.Records) != 2 {
		t.Errorf("dump doc = %+v", doc)
	}
	if doc.Records[1].Msg != "boom" {
		t.Errorf("dump lost the failure message: %+v", doc.Records[1])
	}
	if f.Dumps() != 1 {
		t.Errorf("Dumps = %d, want 1", f.Dumps())
	}
	if filepath.Dir(path) != dir {
		t.Errorf("dump landed in %s, want %s", filepath.Dir(path), dir)
	}
}

func TestFlightDumpDisabled(t *testing.T) {
	var nilF *Flight
	if path, err := nilF.Dump("x", "j"); path != "" || err != nil {
		t.Errorf("nil Flight Dump = %q, %v", path, err)
	}
	f := NewFlight(4, "", 0) // no dir: ring-only mode
	if path, err := f.Dump("x", "j"); path != "" || err != nil {
		t.Errorf("dir-less Flight Dump = %q, %v", path, err)
	}
}

func TestReadProcess(t *testing.T) {
	start := time.Now().Add(-2 * time.Second)
	ps := ReadProcess(start)
	if ps.UptimeSec < 1.5 || ps.UptimeSec > 60 {
		t.Errorf("UptimeSec = %v, want ~2", ps.UptimeSec)
	}
	if ps.Goroutines < 1 || ps.HeapSysBytes == 0 || ps.CPUs < 1 {
		t.Errorf("implausible process stats: %+v", ps)
	}
}

func TestRegisterProcessExposition(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r, time.Now())
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"process_uptime_seconds", "go_goroutines",
		"go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total",
	} {
		if !strings.Contains(sb.String(), "\n"+name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, sb.String())
		}
	}
}
