// Package stats accumulates per-processor execution-time breakdowns and
// event counters, mirroring the categories the paper reports in its
// Figure 4 breakdowns and Table 4 protocol-activity analysis.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels one component of a processor's execution time.
type Category int

// The breakdown categories, in presentation order.  They partition a
// processor's wall-clock execution: every simulated cycle of a processor
// is attributed to exactly one category.
const (
	Busy        Category = iota // application instructions (1 IPC)
	CacheStall                  // local memory-hierarchy stalls
	DataWait                    // waiting for remote data (page/block fetch)
	LockWait                    // waiting to acquire locks
	BarrierWait                 // waiting at barriers
	Protocol                    // protocol actions on this processor: diffs, twins, mprotect, handler bodies
	Handler                     // asynchronous message-handling dispatch cost
	NumCategories
)

var categoryNames = [NumCategories]string{
	"busy", "cache", "data", "lock", "barrier", "protocol", "handler",
}

// String returns the short category label.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Counter labels an event counter.
type Counter int

// Event counters used for Table 4-style analysis and the validation of
// communication behaviour.
const (
	MsgsSent Counter = iota
	MsgsHandled
	BytesSent
	PageFetches
	BlockFetches
	DiffsCreated
	DiffWordsCompared
	DiffWordsWritten
	DiffsApplied
	TwinsCreated
	WriteNotices
	Invalidations
	LockAcquires
	BarriersCrossed
	PageProtects
	Loads
	Stores
	L1Misses
	L2Misses
	TaskSteals
	// Reliable-transport counters (nonzero only under fault injection):
	// retransmissions sent, wire transmissions lost, transport acks sent
	// and duplicate frames suppressed, attributed to the node that
	// performed the action.
	Retransmits
	MsgsDropped
	AcksSent
	DupsSuppressed
	// Adaptive-placement counters (nonzero only when the heterogeneity
	// plane's placement/grain policies are on): page homes migrated and
	// pages demoted to fine-grain coherence units, attributed to the
	// barrier manager that committed the decision.
	PagesRehomed
	PagesDemoted
	NumCounters
)

var counterNames = [NumCounters]string{
	"msgsSent", "msgsHandled", "bytesSent", "pageFetches", "blockFetches",
	"diffsCreated", "diffWordsCompared", "diffWordsWritten", "diffsApplied",
	"twinsCreated", "writeNotices", "invalidations", "lockAcquires",
	"barriersCrossed", "pageProtects", "loads", "stores", "l1Misses",
	"l2Misses", "taskSteals",
	"retransmits", "msgsDropped", "acksSent", "dupsSuppressed",
	"pagesRehomed", "pagesDemoted",
}

// String returns the counter label.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("Counter(%d)", int(c))
	}
	return counterNames[c]
}

// Proc accumulates one processor's breakdown.
type Proc struct {
	Time  [NumCategories]int64
	Count [NumCounters]int64
	// DiffCycles and HandlerCycles are the Table-4 split of Protocol time:
	// diff-related computation vs. protocol handler execution.
	DiffCycles    int64
	HandlerCycles int64
}

// Total reports the sum of all time categories for this processor.
func (p *Proc) Total() int64 {
	var t int64
	for _, v := range p.Time {
		t += v
	}
	return t
}

// Machine aggregates the per-processor records for one run.
type Machine struct {
	Procs []Proc
	// ExecCycles is the parallel execution time: the wall-clock cycle at
	// which the last processor finished.
	ExecCycles int64
}

// New creates a Machine record for n processors.
func New(n int) *Machine {
	return &Machine{Procs: make([]Proc, n)}
}

// Add charges cycles to a category on processor p.  Negative charges
// and out-of-range categories are accounting bugs and panic loudly.
func (m *Machine) Add(p int, c Category, cycles int64) {
	if c < 0 || c >= NumCategories {
		panic(fmt.Sprintf("stats: charge to invalid category %d", int(c)))
	}
	if cycles < 0 {
		panic(fmt.Sprintf("stats: negative charge %d to %v", cycles, c))
	}
	m.Procs[p].Time[c] += cycles
}

// Inc bumps a counter on processor p.  Like Add, negative deltas and
// out-of-range counters panic: counters are monotonic event tallies, so
// a negative increment always means a caller bug.
func (m *Machine) Inc(p int, c Counter, n int64) {
	if c < 0 || c >= NumCounters {
		panic(fmt.Sprintf("stats: increment of invalid counter %d", int(c)))
	}
	if n < 0 {
		panic(fmt.Sprintf("stats: negative increment %d of %v", n, c))
	}
	m.Procs[p].Count[c] += n
}

// AddDiff records diff-related protocol computation in the Table-4 book.
// This book may overlap wait categories (a handler can run while the local
// thread waits), so it is kept separate from the partitioned Time array;
// callers charge Time explicitly when the work delays the thread.
func (m *Machine) AddDiff(p int, cycles int64) {
	m.Procs[p].DiffCycles += cycles
}

// AddHandlerBody records protocol-handler execution in the Table-4 book
// (see AddDiff for the accounting discipline).
func (m *Machine) AddHandlerBody(p int, cycles int64) {
	m.Procs[p].HandlerCycles += cycles
}

// TotalTime sums a category across processors.  Out-of-range categories
// panic rather than corrupting a report silently.
func (m *Machine) TotalTime(c Category) int64 {
	if c < 0 || c >= NumCategories {
		panic(fmt.Sprintf("stats: total of invalid category %d", int(c)))
	}
	var t int64
	for i := range m.Procs {
		t += m.Procs[i].Time[c]
	}
	return t
}

// TotalCount sums a counter across processors.  Out-of-range counters
// panic rather than corrupting a report silently.
func (m *Machine) TotalCount(c Counter) int64 {
	if c < 0 || c >= NumCounters {
		panic(fmt.Sprintf("stats: total of invalid counter %d", int(c)))
	}
	var t int64
	for i := range m.Procs {
		t += m.Procs[i].Count[c]
	}
	return t
}

// GrandTotal sums every category on every processor.
func (m *Machine) GrandTotal() int64 {
	var t int64
	for c := Category(0); c < NumCategories; c++ {
		t += m.TotalTime(c)
	}
	return t
}

// ProtocolPercent reports the Table-4 numbers: the percentage of total
// processor time (ExecCycles x P) spent in protocol activity, and its
// split into diff computation and handler execution.  The diff/handler
// books include handlers that overlapped waits, as the paper's
// instrumentation does.
//
// Accounting discipline — max of two books.  Thread-context protocol
// work is recorded twice, in books with different coverage: the Time
// array's Protocol category (partitioned wall-clock time: mprotect,
// fault plumbing, diffs that delayed the thread) and the DiffCycles
// overlap book (all diff computation, whether or not it delayed the
// thread).  Neither book is a superset cycle-for-cycle, but diff work
// dominates both, so summing them would double-count it.  The total
// therefore takes max(ΣTime[Protocol], ΣDiffCycles) as the thread-side
// share and adds ΣHandlerCycles on top.  Consequences callers must not
// "fix": total ≠ diff + handler in general (the max may exceed the diff
// book), and the diff and handler columns always report their own books
// unchanged, so they remain comparable across runs even when the max
// switches sides.
func (m *Machine) ProtocolPercent() (total, diff, handler float64) {
	denom := float64(m.ExecCycles) * float64(len(m.Procs))
	if denom == 0 {
		return 0, 0, 0
	}
	var d, h, other int64
	for i := range m.Procs {
		d += m.Procs[i].DiffCycles
		h += m.Procs[i].HandlerCycles
		other += m.Procs[i].Time[Protocol]
	}
	// Protocol category time counts thread-context protocol work that the
	// diff book does not already cover (mprotect, fault plumbing); the
	// diff book covers the dominant share of it, so avoid double counting
	// by taking the max of the two views of thread-side protocol work.
	threadSide := d
	if other > threadSide {
		threadSide = other
	}
	return float64(threadSide+h) / denom * 100, float64(d) / denom * 100, float64(h) / denom * 100
}

// AverageBreakdown reports each category's mean cycles per processor.
func (m *Machine) AverageBreakdown() [NumCategories]float64 {
	var out [NumCategories]float64
	n := float64(len(m.Procs))
	if n == 0 {
		return out
	}
	for c := Category(0); c < NumCategories; c++ {
		out[c] = float64(m.TotalTime(c)) / n
	}
	return out
}

// Imbalance reports max/mean of a category across processors; 1.0 means
// perfectly balanced.  Used for the paper's per-processor imbalance
// observations (e.g. Radix data-wait imbalance under contention).
func (m *Machine) Imbalance(c Category) float64 {
	if len(m.Procs) == 0 {
		return 1
	}
	var max, sum int64
	for i := range m.Procs {
		v := m.Procs[i].Time[c]
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(m.Procs))
	return float64(max) / mean
}

// BreakdownString formats the average per-processor breakdown as a
// single-line report, categories ordered as in the paper's Figure 4.
func (m *Machine) BreakdownString() string {
	avg := m.AverageBreakdown()
	parts := make([]string, 0, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		parts = append(parts, fmt.Sprintf("%s=%.0f", c, avg[c]))
	}
	return strings.Join(parts, " ")
}

// CounterString formats the non-zero machine-wide counters sorted by name.
func (m *Machine) CounterString() string {
	type kv struct {
		name string
		v    int64
	}
	var items []kv
	for c := Counter(0); c < NumCounters; c++ {
		if v := m.TotalCount(c); v != 0 {
			items = append(items, kv{c.String(), v})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s=%d", it.name, it.v)
	}
	return strings.Join(parts, " ")
}
