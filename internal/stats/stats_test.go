package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndTotals(t *testing.T) {
	m := New(4)
	m.Add(0, Busy, 100)
	m.Add(1, Busy, 50)
	m.Add(0, LockWait, 25)
	if got := m.TotalTime(Busy); got != 150 {
		t.Fatalf("busy total = %d", got)
	}
	if got := m.GrandTotal(); got != 175 {
		t.Fatalf("grand total = %d", got)
	}
	if got := m.Procs[0].Total(); got != 125 {
		t.Fatalf("proc 0 total = %d", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Add(0, Busy, -1)
}

func TestCounters(t *testing.T) {
	m := New(2)
	m.Inc(0, DiffsCreated, 3)
	m.Inc(1, DiffsCreated, 4)
	if got := m.TotalCount(DiffsCreated); got != 7 {
		t.Fatalf("counter total = %d", got)
	}
	s := m.CounterString()
	if !strings.Contains(s, "diffsCreated=7") {
		t.Fatalf("counter string %q", s)
	}
}

func TestProtocolPercent(t *testing.T) {
	m := New(2)
	m.ExecCycles = 1000
	m.AddDiff(0, 100)
	m.AddHandlerBody(1, 300)
	total, diff, handler := m.ProtocolPercent()
	// Denominator 2*1000; diff 100 -> 5%, handler 300 -> 15%, total 20%.
	if diff != 5 || handler != 15 || total != 20 {
		t.Fatalf("percent = %.1f/%.1f/%.1f", total, diff, handler)
	}
}

func TestProtocolPercentZeroExec(t *testing.T) {
	m := New(2)
	if a, b, c := m.ProtocolPercent(); a != 0 || b != 0 || c != 0 {
		t.Fatal("zero exec should report zeros")
	}
}

func TestImbalance(t *testing.T) {
	m := New(4)
	m.Add(0, DataWait, 400)
	for i := 1; i < 4; i++ {
		m.Add(i, DataWait, 200)
	}
	// mean 250, max 400 -> 1.6
	if got := m.Imbalance(DataWait); got != 1.6 {
		t.Fatalf("imbalance = %f", got)
	}
	if got := m.Imbalance(LockWait); got != 1 {
		t.Fatalf("empty category imbalance = %f, want 1", got)
	}
}

func TestAverageBreakdown(t *testing.T) {
	m := New(2)
	m.Add(0, Busy, 100)
	m.Add(1, Busy, 300)
	avg := m.AverageBreakdown()
	if avg[Busy] != 200 {
		t.Fatalf("avg busy = %f", avg[Busy])
	}
}

func TestCategoryNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		name := c.String()
		if name == "" || seen[name] {
			t.Fatalf("bad/duplicate category name %q", name)
		}
		seen[name] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" {
			t.Fatalf("empty counter name for %d", c)
		}
	}
}

// Property: Add is associative with totals (sum of parts == total).
func TestAddAccumulates(t *testing.T) {
	f := func(parts []uint16) bool {
		m := New(1)
		var want int64
		for _, p := range parts {
			m.Add(0, Protocol, int64(p))
			want += int64(p)
		}
		return m.TotalTime(Protocol) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownString(t *testing.T) {
	m := New(1)
	m.Add(0, Busy, 42)
	if s := m.BreakdownString(); !strings.Contains(s, "busy=42") {
		t.Fatalf("breakdown string %q", s)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestNegativeIncrementPanics(t *testing.T) {
	mustPanic(t, "Inc negative", func() { New(1).Inc(0, MsgsSent, -1) })
}

func TestOutOfRangeIndexPanics(t *testing.T) {
	m := New(1)
	mustPanic(t, "Add high", func() { m.Add(0, NumCategories, 1) })
	mustPanic(t, "Add low", func() { m.Add(0, Category(-1), 1) })
	mustPanic(t, "Inc high", func() { m.Inc(0, NumCounters, 1) })
	mustPanic(t, "Inc low", func() { m.Inc(0, Counter(-1), 1) })
	mustPanic(t, "TotalTime high", func() { m.TotalTime(NumCategories) })
	mustPanic(t, "TotalCount high", func() { m.TotalCount(NumCounters) })
}

// TestProtocolPercentMaxOfBooks pins the max-of-two-books discipline on
// a synthetic machine where the partitioned Protocol category exceeds
// the diff overlap book: the total must use the larger book while the
// diff and handler columns keep reporting their own books unchanged —
// so total != diff + handler here by design.
func TestProtocolPercentMaxOfBooks(t *testing.T) {
	m := New(2)
	m.ExecCycles = 1000      // denominator: 2000 processor-cycles
	m.AddDiff(0, 100)        // diff book: 100
	m.Add(0, Protocol, 240)  // partitioned book: 240 > diff book
	m.AddHandlerBody(1, 300) // handler book: 300
	total, diff, handler := m.ProtocolPercent()
	// threadSide = max(240, 100) = 240; total = (240+300)/2000 = 27%.
	if total != 27 || diff != 5 || handler != 15 {
		t.Fatalf("percent = %.1f/%.1f/%.1f, want 27/5/15", total, diff, handler)
	}
	if total == diff+handler {
		t.Fatal("synthetic machine must exercise the total != diff+handler case")
	}
}
