package core

import (
	"testing"

	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/proto/ideal"
	"swsm/internal/stats"
)

func idealConfig(procs int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.Comm = comm.Best()
	cfg.Costs = proto.BestCosts()
	cfg.SharedMem = true
	cfg.CacheEnabled = false
	return cfg
}

func TestIdealSingleThreadStoreLoad(t *testing.T) {
	m := NewMachine(idealConfig(1), ideal.New())
	a := m.AllocPage(4096)
	cycles, err := m.Run(func(th *Thread) {
		th.Store32(a, 7)
		th.StoreF64(a+8, 3.5)
		if th.Load32(a) != 7 {
			t.Error("load32 wrong")
		}
		if th.LoadF64(a+8) != 3.5 {
			t.Error("loadf64 wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 4 { // four accesses, one busy cycle each
		t.Fatalf("cycles = %d, want 4", cycles)
	}
}

func TestIdealSharedMemoryVisible(t *testing.T) {
	m := NewMachine(idealConfig(2), ideal.New())
	a := m.AllocPage(4096)
	_, err := m.Run(func(th *Thread) {
		if th.Proc() == 0 {
			th.Store32(a, 99)
		}
		th.Barrier(0)
		if got := th.Load32(a); got != 99 {
			t.Errorf("proc %d read %d, want 99", th.Proc(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdealLockMutualExclusion(t *testing.T) {
	const procs = 8
	m := NewMachine(idealConfig(procs), ideal.New())
	ctr := m.AllocPage(4096)
	_, err := m.Run(func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Acquire(3)
			v := th.Load32(ctr)
			th.Compute(50) // dilate the critical section
			th.Store32(ctr, v+1)
			th.Release(3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadResultWord(ctr); got != procs*10 {
		t.Fatalf("counter = %d, want %d (lost updates => broken mutual exclusion)", got, procs*10)
	}
}

func TestIdealBarrierSeparatesPhases(t *testing.T) {
	const procs = 4
	m := NewMachine(idealConfig(procs), ideal.New())
	arr := m.AllocPage(4 * procs)
	_, err := m.Run(func(th *Thread) {
		id := th.Proc()
		th.Store32(arr+int64(4*id), uint32(id+1))
		th.Barrier(0)
		// Every thread must see every other thread's phase-one write.
		var sum uint32
		for i := 0; i < procs; i++ {
			sum += th.Load32(arr + int64(4*i))
		}
		if sum != procs*(procs+1)/2 {
			t.Errorf("proc %d saw sum %d", id, sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeChargesBusy(t *testing.T) {
	m := NewMachine(idealConfig(1), ideal.New())
	cycles, err := m.Run(func(th *Thread) {
		th.Compute(12345)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 12345 {
		t.Fatalf("cycles = %d, want 12345", cycles)
	}
	if got := m.Stats.TotalTime(stats.Busy); got != 12345 {
		t.Fatalf("busy = %d, want 12345", got)
	}
}

func TestBreakdownPartitionsTime(t *testing.T) {
	const procs = 4
	m := NewMachine(idealConfig(procs), ideal.New())
	_, err := m.Run(func(th *Thread) {
		th.Compute(int64(1000 * (th.Proc() + 1)))
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each processor's categories must sum to the parallel exec time
	// (everyone leaves the final barrier together).
	for i := range m.Stats.Procs {
		if got := m.Stats.Procs[i].Total(); got != m.Stats.ExecCycles {
			t.Fatalf("proc %d breakdown %d != exec %d", i, got, m.Stats.ExecCycles)
		}
	}
	if m.Stats.TotalTime(stats.BarrierWait) == 0 {
		t.Fatal("expected barrier wait from imbalance")
	}
}

func TestCacheStallsCharged(t *testing.T) {
	cfg := idealConfig(1)
	cfg.CacheEnabled = true
	m := NewMachine(cfg, ideal.New())
	a := m.AllocPage(1 << 16)
	cycles, err := m.Run(func(th *Thread) {
		// 64KB of cold reads: every line misses to memory.
		for off := int64(0); off < 1<<16; off += 32 {
			th.Load32(a + off)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	loads := int64(1 << 16 / 32)
	if cycles <= loads {
		t.Fatalf("cycles = %d, want > %d (no cache stalls charged?)", cycles, loads)
	}
	if got := m.Stats.TotalTime(stats.CacheStall); got == 0 {
		t.Fatal("no cache stall time recorded")
	}
}

func TestIdealSpeedupScales(t *testing.T) {
	run := func(procs int) int64 {
		m := NewMachine(idealConfig(procs), ideal.New())
		work := int64(1 << 16)
		cycles, err := m.Run(func(th *Thread) {
			th.Compute(work / int64(procs))
			th.Barrier(0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	t1, t16 := run(1), run(16)
	speedup := float64(t1) / float64(t16)
	if speedup < 15.5 || speedup > 16.5 {
		t.Fatalf("ideal speedup = %.2f, want ~16", speedup)
	}
}
