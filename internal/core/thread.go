package core

import (
	"math"

	"swsm/internal/comm"
	"swsm/internal/consistency"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/sim"
	"swsm/internal/stats"
)

// Thread is one application thread, pinned to its node's processor
// (uniprocessor nodes).  It exposes the shared-address-space programming
// model: loads and stores against simulated shared memory, explicit
// compute-cycle charging, and acquire/release/barrier synchronization.
//
// Time accounting uses the paper's polling model: busy and local-stall
// cycles accumulate in a pending ledger and are materialized (yielding to
// the simulation engine, then draining any queued protocol handlers — a
// back-edge poll) at synchronization operations, remote operations, and
// at least every PollQuantum cycles.
type Thread struct {
	m    *Machine
	node *Node
	co   *sim.Coro

	// Hot-path state, flattened.  The pending ledger is this thread's
	// window into the machine-owned backing array (struct-of-arrays
	// across threads: one contiguous block instead of a counter array
	// inside every Thread), and the per-access constants are resolved
	// once at construction so tick/pre never chase Cfg pointers.
	pending      []int64 // len stats.NumCategories, machine-owned backing
	pendingTotal int64
	mem          *mem.NodeMem // data target: node-local, or node 0 when SharedMem
	quantum      int64        // Cfg.PollQuantum
	accessInstr  int64        // 1 + Cfg.AccessInstrCycles
	memLimit     int64        // Cfg.MemLimit

	// Load/store counts accumulate thread-locally and flush to the
	// stats machine at sync points, like the pending time ledger (the
	// counters are only read after the run, so lazy flushing is
	// invisible).
	loads, stores int64

	// chk caches Cfg.Check so the per-access path can skip the recorder
	// call entirely when conformance checking is off (the common case).
	chk *consistency.Recorder

	// Access-check fast path (proto.TableProtocol): acc[addr>>accShift]
	// holds the coherence-unit mode in the uniform 0/1/2 encoding, and a
	// granted check skips the protocol Access call entirely.  accFree
	// marks hardware-coherent protocols whose Access is a no-op.
	acc      []uint8
	accShift uint
	accFree  bool

	// Per-node heterogeneity, resolved at construction: compute and
	// protocol cycle multipliers (1/1 on the uniform machine) and this
	// node's send overhead (the base value unless links are asymmetric),
	// replacing the former direct Cfg.Comm read so a slow endpoint's
	// software costs follow its NI.
	compNum, compDen   int64
	protoNum, protoDen int64
	hostOverhead       int64
}

func newThread(m *Machine, n *Node, ledger []int64) *Thread {
	t := &Thread{
		m:           m,
		node:        n,
		pending:     ledger,
		mem:         n.Mem,
		quantum:     m.Cfg.PollQuantum,
		accessInstr: 1 + m.Cfg.AccessInstrCycles,
		memLimit:    m.Cfg.MemLimit,
		chk:         m.Cfg.Check,

		compNum: 1, compDen: 1, protoNum: 1, protoDen: 1,
		hostOverhead: m.Cfg.Comm.HostOverhead,
	}
	if m.nodeSpecs != nil {
		ns := m.nodeSpecs[n.ID]
		t.compNum, t.compDen = ns.CompNum, ns.CompDen
		t.protoNum, t.protoDen = ns.ProtoNum, ns.ProtoDen
	}
	if m.nodeComm != nil {
		t.hostOverhead = m.nodeComm[n.ID].HostOverhead
	}
	if m.Cfg.SharedMem {
		t.mem = m.Nodes[0].Mem
	}
	if tp, ok := m.Prot.(proto.TableProtocol); ok {
		t.acc, t.accShift = tp.AccessTable(n.ID)
	}
	if _, ok := m.Prot.(proto.FreeAccessProtocol); ok {
		t.accFree = true
	}
	return t
}

// Proc reports this thread's processor id.
func (t *Thread) Proc() int { return t.node.ID }

// NumProcs reports the machine size.
func (t *Thread) NumProcs() int { return t.m.Cfg.Procs }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Env returns the protocol environment (the machine).
func (t *Thread) Env() proto.Env { return t.m }

// Now reports the thread's current virtual time, including pending
// unmaterialized cycles.
func (t *Thread) Now() sim.Time { return t.co.Now() + t.pendingTotal }

// tick accrues cycles in the pending ledger, materializing at the poll
// quantum or whenever handlers are waiting.
func (t *Thread) tick(cat stats.Category, cycles int64) {
	if cycles <= 0 {
		return
	}
	t.pending[cat] += cycles
	t.pendingTotal += cycles
	if t.pendingTotal >= t.quantum || len(t.node.pendingH) > 0 {
		t.sync()
	}
}

// sync materializes pending time and polls for queued protocol handlers,
// running them inline on this processor (charged to the Handler
// category), exactly as instrumentation-based back-edge polling would.
func (t *Thread) sync() {
	if t.loads != 0 {
		t.m.Stats.Inc(t.node.ID, stats.Loads, t.loads)
		t.loads = 0
	}
	if t.stores != 0 {
		t.m.Stats.Inc(t.node.ID, stats.Stores, t.stores)
		t.stores = 0
	}
	if t.pendingTotal > 0 {
		total := t.pendingTotal
		for c, v := range t.pending {
			if v != 0 {
				t.m.Stats.Add(t.node.ID, stats.Category(c), v)
				t.pending[c] = 0
			}
		}
		t.pendingTotal = 0
		t.co.Sleep(total)
	}
	t.drainHandlers()
}

// drainHandlers runs queued handler messages inline (a successful poll).
func (t *Thread) drainHandlers() {
	n := t.node
	for len(n.pendingH) > 0 {
		msg := n.pendingH[0]
		n.pendingH = n.pendingH[1:]
		h := &handlerCtx{m: t.m, node: n.ID}
		body := t.m.Prot.Handle(h, msg)
		cost := t.m.handlerCost(n.ID, body, len(h.sends))
		t.m.Stats.Inc(n.ID, stats.MsgsHandled, 1)
		t.m.Stats.AddHandlerBody(n.ID, cost)
		t.m.Stats.Add(n.ID, stats.Handler, cost)
		start := t.co.Now()
		if cost > 0 {
			t.co.Sleep(cost)
		}
		t.m.Cfg.Tracer.Handler(start, start+cost, int32(n.ID), int64(msg.Kind))
		for _, s := range h.sends {
			t.m.Send(s)
		}
	}
}

// Charge advances this thread's time by `cycles` attributed to cat
// (protocol fault paths use this; it materializes immediately).  On a
// heterogeneous node, protocol-software cycles scale by the node's
// protocol multiplier — an accelerator-style node computes fast but
// pays dearly for every fault, diff and twin.
func (t *Thread) Charge(cat stats.Category, cycles int64) {
	if cat == stats.Protocol && t.protoNum != t.protoDen {
		cycles = cycles * t.protoNum / t.protoDen
	}
	if cycles <= 0 {
		return
	}
	t.sync()
	t.m.Stats.Add(t.node.ID, cat, cycles)
	t.co.Sleep(cycles)
	t.drainHandlers()
}

// Send charges the host overhead to cat and injects m into the network.
func (t *Thread) Send(cat stats.Category, m *comm.Message) {
	t.sync()
	if o := t.hostOverhead; o > 0 {
		t.m.Stats.Add(t.node.ID, cat, o)
		t.co.Sleep(o)
	}
	t.m.Send(m)
}

// BlockFor suspends the thread until the protocol wakes it, attributing
// the elapsed wait to cat.  Handlers arriving while blocked run
// immediately (the processor is idle); the thread resumes only when the
// processor frees up.
func (t *Thread) BlockFor(cat stats.Category) {
	t.sync()
	n := t.node
	start := t.co.Now()
	n.idle = true
	t.co.Block()
	n.idle = false
	if n.cpuFreeAt > t.co.Now() {
		t.co.SleepUntil(n.cpuFreeAt)
	}
	t.m.Stats.Add(n.ID, cat, t.co.Now()-start)
	t.drainHandlers()
}

var _ proto.Thread = (*Thread)(nil)

// Compute charges busy cycles of pure computation (the 1-IPC model's
// instruction time for work between shared-memory references).  A
// heterogeneous node's CPU speed multiplier applies here, in the
// time-quantum batching: cycles are the uniform 200 MHz processor's,
// scaled once on entry so a 2x-slower node takes twice as long.  (The
// fixed per-reference instruction slot in pre() stays at one cycle —
// shared references are dominated by the protocol/memory system, whose
// costs scale through their own multipliers.)
func (t *Thread) Compute(cycles int64) {
	if t.compNum != t.compDen {
		cycles = cycles * t.compNum / t.compDen
	}
	q := t.quantum
	for cycles > 0 {
		step := cycles
		if step > q {
			step = q
		}
		t.tick(stats.Busy, step)
		cycles -= step
	}
}

// pre performs the timing work that must precede the data operation of
// one shared reference: one busy cycle (a poll point) and the protocol
// access check, which may fault and block.  The caller must perform the
// data operation immediately after pre returns — before post — because
// protocol handlers (a recall, an invalidation) may run at the next poll
// point and the granted access right is only guaranteed at this instant.
func (t *Thread) pre(addr int64, size int, write bool) {
	if addr < 0 || addr+int64(size) > t.memLimit {
		panic(&AccessError{
			Proc: t.node.ID, Addr: addr, Size: size, Cycle: t.Now(), Write: write,
		})
	}
	if write {
		t.stores++
	} else {
		t.loads++
	}
	// tick(stats.Busy, t.accessInstr), open-coded: this is the hottest
	// line in the simulator (once per shared reference).
	t.pending[stats.Busy] += t.accessInstr
	t.pendingTotal += t.accessInstr
	if t.pendingTotal >= t.quantum || len(t.node.pendingH) > 0 {
		t.sync()
	}
	if t.acc != nil {
		if t.accGranted(addr, size, write) {
			return
		}
	} else if t.accFree {
		return
	}
	t.m.Prot.Access(t, addr, size, write)
}

// accGranted consults the protocol's exported access table; a granted
// check is exactly equivalent to Prot.Access returning without protocol
// activity.  Any denial falls back to the full (fault) path.
func (t *Thread) accGranted(addr int64, size int, write bool) bool {
	first := addr >> t.accShift
	last := (addr + int64(size) - 1) >> t.accShift
	for u := first; u <= last; u++ {
		m := t.acc[u]
		if write {
			if m != proto.TableWrite {
				return false
			}
		} else if m == proto.TableInvalid {
			return false
		}
	}
	return true
}

// post records the reference for the conformance checker and charges the
// node cache model.  val is the raw value stored or observed, recorded
// before cache stall time accrues so the checker sees the data
// operation's own instant.
func (t *Thread) post(addr int64, size int, write bool, val uint64) {
	if t.chk != nil {
		t.chk.Access(int32(t.node.ID), addr, size, write, val, t.Now())
	}
	if c := t.node.Cache; c != nil {
		stall, _, _ := c.Access(addr, size, write)
		if stall > 0 {
			// tick(stats.CacheStall, stall), open-coded.
			t.pending[stats.CacheStall] += stall
			t.pendingTotal += stall
			if t.pendingTotal >= t.quantum || len(t.node.pendingH) > 0 {
				t.sync()
			}
		}
	}
}

// Load32 loads a shared 32-bit word.
func (t *Thread) Load32(a int64) uint32 {
	t.pre(a, 4, false)
	v := t.mem.ReadWord(a)
	t.post(a, 4, false, uint64(v))
	return v
}

// Store32 stores a shared 32-bit word.
func (t *Thread) Store32(a int64, v uint32) {
	t.pre(a, 4, true)
	t.mem.WriteWord(a, v)
	t.post(a, 4, true, uint64(v))
}

// LoadI32 loads a shared int32.
func (t *Thread) LoadI32(a int64) int32 { return int32(t.Load32(a)) }

// StoreI32 stores a shared int32.
func (t *Thread) StoreI32(a int64, v int32) { t.Store32(a, uint32(v)) }

// LoadF64 loads a shared float64.
func (t *Thread) LoadF64(a int64) float64 {
	t.pre(a, 8, false)
	v := t.mem.ReadF64(a)
	t.post(a, 8, false, math.Float64bits(v))
	return v
}

// StoreF64 stores a shared float64.
func (t *Thread) StoreF64(a int64, v float64) {
	t.pre(a, 8, true)
	t.mem.WriteF64(a, v)
	t.post(a, 8, true, math.Float64bits(v))
}

// LoadF32 loads a shared float32 (stored as one word).
func (t *Thread) LoadF32(a int64) float32 {
	return math.Float32frombits(t.Load32(a))
}

// StoreF32 stores a shared float32.
func (t *Thread) StoreF32(a int64, v float32) {
	t.Store32(a, math.Float32bits(v))
}

// Acquire obtains lock l with acquire semantics.  The traced span covers
// the whole protocol-level acquire (request, transfer wait, notice
// application), protocol-agnostically.
func (t *Thread) Acquire(l int) {
	t.sync()
	t.m.Stats.Inc(t.node.ID, stats.LockAcquires, 1)
	start := t.co.Now()
	t.m.Prot.Acquire(t, l)
	// Recorded after the protocol-level acquire: every release whose
	// interval this grant carries is already in the checker's history.
	t.m.Cfg.Check.Acquire(int32(t.node.ID), l, t.co.Now())
	t.m.Cfg.Tracer.LockWait(start, t.co.Now(), int32(t.node.ID), int64(l))
}

// Release releases lock l with release semantics.
func (t *Thread) Release(l int) {
	t.sync()
	// Recorded before the protocol-level release: it precedes any
	// acquire it enables.
	t.m.Cfg.Check.Release(int32(t.node.ID), l, t.co.Now())
	t.m.Prot.Release(t, l)
	t.m.Cfg.Tracer.LockRelease(t.co.Now(), int32(t.node.ID), int64(l))
}

// Barrier waits until all threads reach barrier b.
func (t *Thread) Barrier(b int) {
	t.sync()
	t.m.Stats.Inc(t.node.ID, stats.BarriersCrossed, 1)
	start := t.co.Now()
	t.m.Cfg.Check.BarrierArrive(int32(t.node.ID), b, start)
	t.m.Prot.Barrier(t, b, t.m.Cfg.Procs)
	t.m.Cfg.Check.BarrierDepart(int32(t.node.ID), b, t.co.Now())
	t.m.Cfg.Tracer.BarrierWait(start, t.co.Now(), int32(t.node.ID), int64(b))
}
