package core

import (
	"strings"
	"testing"

	"swsm/internal/proto/ideal"
)

// TestOutOfRangeAccessError pins the typed panic: a shared reference
// outside [0, MemLimit) must surface as an *AccessError naming proc,
// addr, size and cycle — not as a raw slice panic from internal/mem —
// so litmus/shrinker output stays actionable.
func TestOutOfRangeAccessError(t *testing.T) {
	cases := []struct {
		name  string
		addr  func(limit int64) int64
		write bool
	}{
		{"store-past-limit", func(l int64) int64 { return l + 4096 }, true},
		{"load-negative", func(l int64) int64 { return -8 }, false},
		{"straddles-limit", func(l int64) int64 { return l - 2 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(idealConfig(1), ideal.New())
			var got *AccessError
			_, err := m.Run(func(th *Thread) {
				defer func() {
					r := recover()
					if r == nil {
						t.Error("out-of-range access did not panic")
						return
					}
					ae, ok := r.(*AccessError)
					if !ok {
						t.Errorf("panic payload %T, want *AccessError: %v", r, r)
						return
					}
					got = ae
				}()
				th.Compute(5)
				a := tc.addr(m.Cfg.MemLimit)
				if tc.write {
					th.Store32(a, 1)
				} else {
					th.Load32(a)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				return
			}
			if got.Proc != 0 || got.Size != 4 || got.Write != tc.write {
				t.Errorf("AccessError fields wrong: %+v", got)
			}
			if got.Addr != tc.addr(m.Cfg.MemLimit) {
				t.Errorf("addr = 0x%x, want 0x%x", got.Addr, tc.addr(m.Cfg.MemLimit))
			}
			if got.Cycle < 5 {
				t.Errorf("cycle = %d, want the compute time included", got.Cycle)
			}
			msg := got.Error()
			for _, want := range []string{"proc 0", "cycle"} {
				if !strings.Contains(msg, want) {
					t.Errorf("message missing %q: %s", want, msg)
				}
			}
		})
	}
}
