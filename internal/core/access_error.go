package core

import "fmt"

// AccessError is the panic payload for an out-of-range shared reference.
// The raw slice panic from internal/mem carries no context; wrapping the
// range check here, before the protocol sees the access, attributes the
// bad reference to a processor and cycle so litmus/shrinker output is
// actionable.
type AccessError struct {
	Proc  int
	Addr  int64
	Size  int
	Cycle int64
	Write bool
}

func (e *AccessError) Error() string {
	op := "load"
	if e.Write {
		op = "store"
	}
	return fmt.Sprintf("core: proc %d out-of-range %s of %d bytes at addr 0x%x, cycle %d",
		e.Proc, op, e.Size, e.Addr, e.Cycle)
}
