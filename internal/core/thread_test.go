package core

import (
	"testing"

	"swsm/internal/comm"
	"swsm/internal/proto"
	"swsm/internal/stats"
)

// pollProbe is a minimal protocol that lets tests observe handler
// dispatch and thread-side blocking.
type pollProbe struct {
	env       proto.Env
	handlerAt []int64 // engine time at each Handle call
	bodyCost  int64
}

func (p *pollProbe) Name() string                                             { return "probe" }
func (p *pollProbe) Attach(env proto.Env)                                     { p.env = env }
func (p *pollProbe) Access(th proto.Thread, addr int64, size int, write bool) {}
func (p *pollProbe) Acquire(th proto.Thread, lock int)                        {}
func (p *pollProbe) Release(th proto.Thread, lock int)                        {}
func (p *pollProbe) Barrier(th proto.Thread, bar, total int)                  {}
func (p *pollProbe) Finalize(th proto.Thread)                                 {}
func (p *pollProbe) ReadCoherent(addr int64) uint32                           { return 0 }
func (p *pollProbe) InitWrite(addr int64, v uint32)                           {}
func (p *pollProbe) Handle(h proto.HandlerCtx, m *comm.Message) int64 {
	p.handlerAt = append(p.handlerAt, p.env.Now())
	return p.bodyCost
}

func probeConfig(procs int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 1 << 20
	cfg.CacheEnabled = false
	cfg.Comm = comm.Best()
	return cfg
}

func TestHandlerWaitsForPollWhileComputing(t *testing.T) {
	// A request arriving while the destination thread is busy computing
	// must wait for the next poll point (<= PollQuantum away).
	probe := &pollProbe{}
	cfg := probeConfig(2)
	cfg.PollQuantum = 500
	m := NewMachine(cfg, probe)
	_, err := m.Run(func(th *Thread) {
		if th.Proc() == 0 {
			th.Send(stats.Busy, &comm.Message{
				Src: 0, Dst: 1, Kind: 1, Size: 8, NeedsHandler: true})
			return
		}
		th.Compute(100000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.handlerAt) != 1 {
		t.Fatalf("handlers ran %d times, want 1", len(probe.handlerAt))
	}
	// Delivery is ~2 cycles (Best comm); the handler must not run before
	// that nor later than one quantum after.
	at := probe.handlerAt[0]
	if at < 2 || at > 2+cfg.PollQuantum+1 {
		t.Fatalf("handler ran at %d, want within one poll quantum of delivery", at)
	}
}

func TestHandlerRunsImmediatelyWhenIdle(t *testing.T) {
	probe := &pollProbe{}
	cfg := probeConfig(2)
	m := NewMachine(cfg, probe)
	_, err := m.Run(func(th *Thread) {
		if th.Proc() == 0 {
			th.Compute(5000) // let proc 1 finish (become idle) first
			th.Send(stats.Busy, &comm.Message{
				Src: 0, Dst: 1, Kind: 1, Size: 8, NeedsHandler: true})
		}
		// proc 1 returns immediately and sits idle.
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.handlerAt) != 1 {
		t.Fatalf("handlers ran %d times", len(probe.handlerAt))
	}
	// Sent at 5000; Best comm still pays the I/O bus (40 wire bytes at
	// 0.67 B/cy = 60 cycles per side) plus the 2-cycle link: delivery at
	// 5122.  The handler must run AT delivery (idle node), not at a poll.
	if at := probe.handlerAt[0]; at != 5122 {
		t.Fatalf("idle-node handler ran at %d, want 5122", at)
	}
}

func TestHandlerCostChargedToNode(t *testing.T) {
	probe := &pollProbe{bodyCost: 700}
	cfg := probeConfig(2)
	cfg.Comm = comm.Achievable()
	m := NewMachine(cfg, probe)
	_, err := m.Run(func(th *Thread) {
		if th.Proc() == 0 {
			th.Send(stats.Busy, &comm.Message{
				Src: 0, Dst: 1, Kind: 1, Size: 8, NeedsHandler: true})
		} else {
			th.Compute(20000)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 polled the handler inline: message handling (200) + body
	// (700) charged to its Handler category.
	if got := m.Stats.Procs[1].Time[stats.Handler]; got != 900 {
		t.Fatalf("handler time = %d, want 900", got)
	}
	if got := m.Stats.Procs[1].HandlerCycles; got != 900 {
		t.Fatalf("handler book = %d, want 900", got)
	}
	if got := m.Stats.TotalCount(stats.MsgsHandled); got != 1 {
		t.Fatalf("msgsHandled = %d", got)
	}
}

func TestPendingTimeMaterializesOnCharge(t *testing.T) {
	cfg := probeConfig(1)
	m := NewMachine(cfg, &pollProbe{})
	_, err := m.Run(func(th *Thread) {
		th.Compute(123)                // pending busy
		th.Charge(stats.Protocol, 777) // must flush pending first
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.TotalTime(stats.Busy); got != 123 {
		t.Fatalf("busy = %d, want 123", got)
	}
	if got := m.Stats.TotalTime(stats.Protocol); got != 777 {
		t.Fatalf("protocol = %d, want 777", got)
	}
	if m.Stats.ExecCycles != 900 {
		t.Fatalf("exec = %d, want 900", m.Stats.ExecCycles)
	}
}

func TestSendChargesHostOverhead(t *testing.T) {
	cfg := probeConfig(2)
	cfg.Comm = comm.Achievable() // overhead 600
	m := NewMachine(cfg, &pollProbe{})
	_, err := m.Run(func(th *Thread) {
		if th.Proc() == 0 {
			th.Send(stats.DataWait, &comm.Message{
				Src: 0, Dst: 1, Kind: 1, Size: 8, NeedsHandler: true})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Procs[0].Time[stats.DataWait]; got != 600 {
		t.Fatalf("send overhead charged %d, want 600", got)
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := NewMachine(probeConfig(1), &pollProbe{})
	if _, err := m.Run(func(th *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(th *Thread) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestThreadNowIncludesPending(t *testing.T) {
	m := NewMachine(probeConfig(1), &pollProbe{})
	_, err := m.Run(func(th *Thread) {
		th.Compute(10)
		if th.Now() != 10 {
			t.Errorf("Now = %d, want 10 (pending included)", th.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
