// Package core implements the simulated cluster machine: uniprocessor
// nodes with P6-like memory hierarchies connected by the parameterized
// communication layer, running a software shared-memory protocol and an
// application written against the Thread API.  It is the paper's
// execution-driven simulator: application code really executes, and the
// machine attributes every simulated cycle of every processor to a
// breakdown category.
package core

import (
	"fmt"
	"math"

	"swsm/internal/cache"
	"swsm/internal/comm"
	"swsm/internal/consistency"
	"swsm/internal/fault"
	"swsm/internal/hetero"
	"swsm/internal/mem"
	"swsm/internal/proto"
	"swsm/internal/sim"
	"swsm/internal/stats"
	"swsm/internal/trace"
)

// Config assembles one machine configuration: the communication-layer
// and protocol-layer cost parameters plus structural choices.
type Config struct {
	// Procs is the number of uniprocessor nodes (the paper studies 16).
	Procs int
	// MemLimit bounds the shared address space in bytes.
	MemLimit int64
	// Comm is the communication parameter set (Table 2).
	Comm comm.Params
	// Costs is the protocol cost set (Table 3).
	Costs proto.Costs
	// Cache configures the node memory hierarchy; CacheEnabled false
	// removes cache-stall modeling entirely.
	Cache        cache.Config
	CacheEnabled bool
	// PollQuantum is the back-edge polling granularity: the longest run
	// of busy cycles a thread executes before materializing time and
	// draining pending message handlers.
	PollQuantum int64
	// SharedMem makes all nodes address node 0's memory (the ideal,
	// hardware-coherent machine used for algorithmic speedups and the
	// sequential baseline).
	SharedMem bool
	// DisablePlacement ignores Machine.Place calls, leaving all homes
	// round-robin (the home-placement ablation).
	DisablePlacement bool
	// NoProtocolPollution stops protocol data movement from touching the
	// caches (the cache-pollution ablation).
	NoProtocolPollution bool
	// AccessInstrCycles charges extra busy cycles on every shared
	// load/store, modeling Shasta-style software access-control
	// instrumentation (zero = the paper's free-hardware assumption).
	AccessInstrCycles int64
	// Fault configures deterministic fault injection.  When enabled the
	// machine routes every protocol message through the reliable
	// transport (sequence numbers, acks, retransmission); the zero value
	// keeps the paper's perfectly reliable fabric and the plain network
	// path, untouched.
	Fault fault.Spec
	// Hetero configures the per-node machine models: CPU speed
	// multipliers on compute cycles, accelerator-style protocol-cost
	// multipliers, and per-node asymmetric communication parameters.
	// The zero value is the paper's uniform machine and keeps every
	// fast path untouched.  (The adaptive placement policies in the
	// same spec are consumed by the protocol layer, not here.)
	Hetero hetero.Spec
	// Tracer enables the observability layer when non-nil: typed event
	// tracing, interval breakdown sampling, and hot-object profiling.
	// Nil (the default) keeps every hook a no-op on the hot paths.
	Tracer *trace.Tracer
	// Check enables the consistency conformance recorder when non-nil:
	// every shared reference and sync operation is recorded for a
	// post-run happens-before check.  Nil (the default) keeps the hooks
	// free on the hot paths, like Tracer.
	Check *consistency.Recorder
}

// DefaultConfig is the paper's base system: 16 processors, achievable
// communication parameters, original protocol costs, P6-like caches.
func DefaultConfig() Config {
	return Config{
		Procs:        16,
		MemLimit:     64 << 20,
		Comm:         comm.Achievable(),
		Costs:        proto.OriginalCosts(),
		Cache:        cache.DefaultConfig(),
		CacheEnabled: true,
		PollQuantum:  1000,
	}
}

// Node is one uniprocessor cluster node.
type Node struct {
	ID    int
	Mem   *mem.NodeMem
	Cache *cache.Cache

	thread *Thread
	// cpuFreeAt tracks processor occupancy by asynchronous handlers that
	// ran while the application thread was idle (blocked waiting).
	cpuFreeAt sim.Time
	// idle is true while the thread is blocked or finished, allowing
	// handlers to run immediately instead of waiting for a poll.
	idle bool
	// pendingH queues handler messages that arrived while the thread was
	// executing; they run at its next poll point.
	pendingH []*comm.Message
}

// Machine is the simulated cluster.
type Machine struct {
	Cfg Config
	Eng *sim.Engine
	Net *comm.Network
	// RNet is the reliable transport wrapping Net; nil unless
	// Cfg.Fault.Enabled().  When present, all machine sends route
	// through it (its zero-injection path delegates straight to Net).
	RNet  *comm.ReliableNetwork
	Stats *stats.Machine
	Prot  proto.Protocol
	Nodes []*Node

	arena  *mem.Arena
	finish []sim.Time
	ran    bool
	// pendBuf is the struct-of-arrays backing for every thread's pending
	// ledger: Procs contiguous windows of stats.NumCategories counters,
	// so the hottest per-reference state lives in one block instead of
	// scattered across Thread allocations.
	pendBuf []int64
	// live counts application threads that have not finished; the
	// breakdown sampler keeps rescheduling itself only while live > 0 so
	// the event queue can drain and Run can terminate.
	live int

	// nodeSpecs holds the resolved per-node machine models; nil on the
	// uniform machine, so every heterogeneity check is one nil test.
	nodeSpecs []hetero.NodeSpec
	// nodeComm holds per-node communication parameters when any link is
	// asymmetric (mirrors the network's endpoint build); nil otherwise.
	nodeComm []comm.Params
}

// NewMachine builds a cluster running the given protocol.  The protocol
// is attached to the machine's environment before return.
func NewMachine(cfg Config, p proto.Protocol) *Machine {
	if cfg.Procs <= 0 {
		panic("core: config needs at least one processor")
	}
	if cfg.MemLimit <= 0 {
		cfg.MemLimit = 64 << 20
	}
	if cfg.PollQuantum <= 0 {
		cfg.PollQuantum = 1000
	}
	eng := sim.NewEngine()
	m := &Machine{
		Cfg:    cfg,
		Eng:    eng,
		Stats:  stats.New(cfg.Procs),
		Prot:   p,
		Nodes:  make([]*Node, cfg.Procs),
		finish: make([]sim.Time, cfg.Procs),
	}
	if cfg.Hetero.ModelActive() {
		if err := cfg.Hetero.Validate(); err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		m.nodeSpecs = make([]hetero.NodeSpec, cfg.Procs)
		asymLinks := false
		for i := range m.nodeSpecs {
			ns := cfg.Hetero.Node(i)
			m.nodeSpecs[i] = ns
			if ns.LinkNum != ns.LinkDen {
				asymLinks = true
			}
		}
		if asymLinks {
			m.nodeComm = make([]comm.Params, cfg.Procs)
			for i, ns := range m.nodeSpecs {
				m.nodeComm[i] = cfg.Comm.Scale(ns.LinkNum, ns.LinkDen)
			}
		}
	}
	m.Net = comm.NewNetworkPerNode(eng, cfg.Procs, cfg.Comm, m.nodeComm)
	for i := range m.Nodes {
		n := &Node{ID: i, Mem: mem.NewNodeMem(cfg.MemLimit)}
		if cfg.CacheEnabled {
			n.Cache = cache.New(cfg.Cache)
		}
		m.Nodes[i] = n
	}
	m.arena = mem.NewArena(mem.PageSize, cfg.MemLimit) // keep page 0 unused
	m.Net.Dispatch = m.dispatch
	if cfg.Fault.Enabled() {
		m.RNet = comm.NewReliableNetwork(m.Net, cfg.Fault, comm.DefaultReliableParams())
	}
	eng.SetTracer(cfg.Tracer)
	p.Attach(m)
	return m
}

// netSend routes a message through the reliable transport when fault
// injection is on, and straight to the plain network otherwise.
func (m *Machine) netSend(msg *comm.Message) {
	if m.RNet != nil {
		m.RNet.Send(msg)
		return
	}
	m.Net.Send(msg)
}

// Alloc reserves shared address space (see mem.Arena.Alloc).
func (m *Machine) Alloc(size, align int64) int64 { return m.arena.Alloc(size, align) }

// AllocPage reserves page-aligned shared address space.
func (m *Machine) AllocPage(size int64) int64 { return m.arena.AllocPage(size) }

// InitF64 initializes a shared double before the parallel phase.
func (m *Machine) InitF64(a int64, v float64) {
	u := math.Float64bits(v)
	m.Prot.InitWrite(a, uint32(u))
	m.Prot.InitWrite(a+4, uint32(u>>32))
	m.Cfg.Check.Init(a, 8, u)
}

// InitWord initializes a shared 32-bit word before the parallel phase.
func (m *Machine) InitWord(a int64, v uint32) {
	m.Prot.InitWrite(a, v)
	m.Cfg.Check.Init(a, 4, uint64(v))
}

// ReadResultF64 reads the authoritative value of a shared double after
// Run (for verification).
func (m *Machine) ReadResultF64(a int64) float64 {
	lo := uint64(m.Prot.ReadCoherent(a))
	hi := uint64(m.Prot.ReadCoherent(a + 4))
	return math.Float64frombits(lo | hi<<32)
}

// ReadResultWord reads the authoritative value of a shared word after Run.
func (m *Machine) ReadResultWord(a int64) uint32 { return m.Prot.ReadCoherent(a) }

// Run executes body on every processor (SPMD style) and returns the
// parallel execution time in cycles.  It may be called once per machine.
func (m *Machine) Run(body func(t *Thread)) (sim.Time, error) {
	if m.ran {
		return 0, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	m.live = len(m.Nodes)
	nc := int(stats.NumCategories)
	m.pendBuf = make([]int64, len(m.Nodes)*nc)
	for i := range m.Nodes {
		n := m.Nodes[i]
		t := newThread(m, n, m.pendBuf[i*nc:(i+1)*nc:(i+1)*nc])
		n.thread = t
		m.Eng.Spawn(fmt.Sprintf("proc%d", i), 0, func(co *sim.Coro) {
			t.co = co
			body(t)
			m.Prot.Finalize(t)
			t.sync()
			m.finish[n.ID] = co.Now()
			n.idle = true
			m.live--
		})
	}
	m.startSampler()
	if _, err := m.Eng.Run(); err != nil {
		return 0, err
	}
	var end sim.Time
	for _, f := range m.finish {
		if f > end {
			end = f
		}
	}
	m.Stats.ExecCycles = end
	// Final snapshot so the last partial interval is not lost; collapses
	// with a periodic snapshot that landed on the same cycle.
	m.Cfg.Tracer.SampleNow(end, m.Stats)
	if m.Cfg.CacheEnabled {
		for i, n := range m.Nodes {
			m.Stats.Inc(i, stats.L1Misses, n.Cache.L1Misses)
			m.Stats.Inc(i, stats.L2Misses, n.Cache.L2Misses)
		}
	}
	if m.RNet != nil {
		for i := range m.Nodes {
			m.Stats.Inc(i, stats.Retransmits, m.RNet.RetransmitsFrom(i))
			m.Stats.Inc(i, stats.MsgsDropped, m.RNet.DropsFrom(i))
			m.Stats.Inc(i, stats.AcksSent, m.RNet.AcksFrom(i))
			m.Stats.Inc(i, stats.DupsSuppressed, m.RNet.DupsSuppressedAt(i))
		}
	}
	return end, nil
}

// startSampler arms the interval breakdown sampler: a self-rescheduling
// simulation event that snapshots per-category cycle deltas every
// SampleEvery cycles.  It stops rescheduling once every application
// thread has finished, so the engine's event queue can drain.
func (m *Machine) startSampler() {
	s := m.Cfg.Tracer.Sampler()
	if s == nil || s.Every <= 0 {
		return
	}
	var tick func()
	tick = func() {
		s.Snapshot(m.Eng.Now(), m.Stats)
		if m.live > 0 {
			m.Eng.After(s.Every, tick)
		}
	}
	m.Eng.After(s.Every, tick)
}

// dispatch receives protocol request messages from the network.
func (m *Machine) dispatch(msg *comm.Message, now sim.Time) {
	n := m.Nodes[msg.Dst]
	m.Cfg.Tracer.MsgRecv(now, int32(msg.Dst), int64(msg.Kind), int64(msg.Src))
	if n.idle {
		m.runHandler(n, msg)
		return
	}
	n.pendingH = append(n.pendingH, msg)
}

// runHandler executes a protocol handler in engine context while the
// node's thread is idle, occupying the node CPU.
func (m *Machine) runHandler(n *Node, msg *comm.Message) {
	now := m.Eng.Now()
	start := now
	if n.cpuFreeAt > start {
		start = n.cpuFreeAt
	}
	h := &handlerCtx{m: m, node: n.ID}
	body := m.Prot.Handle(h, msg)
	cost := m.handlerCost(n.ID, body, len(h.sends))
	end := start + cost
	n.cpuFreeAt = end
	m.Stats.Inc(n.ID, stats.MsgsHandled, 1)
	m.Stats.AddHandlerBody(n.ID, cost)
	m.Cfg.Tracer.Handler(start, end, int32(n.ID), int64(msg.Kind))
	sends := h.sends
	if len(sends) > 0 {
		m.Eng.At(end, func() {
			for _, s := range sends {
				m.netSend(s)
			}
		})
	}
}

// handlerCost prices one handled protocol message on a node: dispatch
// (message handling) plus handler body, both run by the node's
// processor — so a heterogeneous node's protocol-cycle multiplier
// scales them — plus the per-send host overhead at that node's
// communication parameters.
func (m *Machine) handlerCost(node int, body int64, sends int) int64 {
	mh, ho := m.Cfg.Comm.MsgHandling, m.Cfg.Comm.HostOverhead
	if m.nodeComm != nil {
		p := m.nodeComm[node]
		mh, ho = p.MsgHandling, p.HostOverhead
	}
	cost := mh + body
	if m.nodeSpecs != nil {
		ns := m.nodeSpecs[node]
		if ns.ProtoNum != ns.ProtoDen {
			cost = cost * ns.ProtoNum / ns.ProtoDen
		}
	}
	return cost + ho*int64(sends)
}

// handlerCtx implements proto.HandlerCtx.
type handlerCtx struct {
	m     *Machine
	node  int
	sends []*comm.Message
}

func (h *handlerCtx) Node() int            { return h.node }
func (h *handlerCtx) Env() proto.Env       { return h.m }
func (h *handlerCtx) Send(m *comm.Message) { h.sends = append(h.sends, m) }

// --- proto.Env implementation ---

// NumProcs reports the processor count.
func (m *Machine) NumProcs() int { return m.Cfg.Procs }

// Now reports current virtual time.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// NodeMem returns node i's memory.
func (m *Machine) NodeMem(i int) *mem.NodeMem { return m.Nodes[i].Mem }

// Metrics returns the statistics record (proto.Env).
func (m *Machine) Metrics() *stats.Machine { return m.Stats }

// Send injects a message into the network.
func (m *Machine) Send(msg *comm.Message) {
	m.Stats.Inc(msg.Src, stats.MsgsSent, 1)
	m.Stats.Inc(msg.Src, stats.BytesSent, msg.Size+comm.HeaderBytes)
	m.Cfg.Tracer.MsgSend(m.Eng.Now(), int32(msg.Src), int64(msg.Kind), msg.Size+comm.HeaderBytes)
	m.netSend(msg)
}

// CacheTouch models protocol-induced cache pollution on node i.
func (m *Machine) CacheTouch(node int, addr int64, size int, write bool) int64 {
	n := m.Nodes[node]
	if n.Cache == nil || m.Cfg.NoProtocolPollution {
		return 0
	}
	return n.Cache.Touch(addr, size, write)
}

// CacheInvalidate drops a range from node i's cache.
func (m *Machine) CacheInvalidate(node int, addr int64, size int) {
	n := m.Nodes[node]
	if n.Cache != nil {
		n.Cache.InvalidateRange(addr, size)
	}
}

// WakeThread unblocks node i's thread.  The node stops being idle at
// the instant of the wake: a protocol message delivered at the same
// cycle must queue for the thread's next poll rather than run while the
// thread is conceptually already resuming (otherwise a same-cycle recall
// could slip between an access grant and the data operation it granted).
func (m *Machine) WakeThread(node int) {
	n := m.Nodes[node]
	t := n.thread
	if t == nil || t.co == nil {
		panic(fmt.Sprintf("core: waking node %d with no thread", node))
	}
	n.idle = false
	t.co.Wake()
}

// Schedule runs fn after d cycles.
func (m *Machine) Schedule(d sim.Time, fn func()) { m.Eng.After(d, fn) }

// Tracer returns the observability tracer (proto.Env); nil when off.
func (m *Machine) Tracer() *trace.Tracer { return m.Cfg.Tracer }

var _ proto.Env = (*Machine)(nil)

// HomePlacer is implemented by protocols that support explicit data
// placement (HLRC and SC); the ideal machine has no notion of homes.
type HomePlacer interface {
	AssignHome(addr, size int64, node int)
}

// Place assigns the authoritative home of [addr, addr+size) to node, if
// the protocol supports placement.  Applications use it to express the
// SPLASH-2 data distribution; on the ideal machine it is a no-op.
func (m *Machine) Place(addr, size int64, node int) {
	if m.Cfg.DisablePlacement {
		return
	}
	if hp, ok := m.Prot.(HomePlacer); ok {
		hp.AssignHome(addr, size, node%m.Cfg.Procs)
	}
}
