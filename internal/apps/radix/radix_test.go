package radix

import (
	"sort"
	"testing"

	"swsm/internal/apps"
)

func TestScalesSizes(t *testing.T) {
	for _, s := range []apps.Scale{apps.Tiny, apps.Base, apps.Large} {
		r := New(s).(*Radix)
		if r.n%radixSize != 0 {
			t.Fatalf("n=%d not a multiple of the radix", r.n)
		}
	}
}

func TestVariantsShareSizes(t *testing.T) {
	a := New(apps.Base).(*Radix)
	b := NewLocal(apps.Base).(*Radix)
	if a.n != b.n {
		t.Fatalf("variants differ in size: %d vs %d", a.n, b.n)
	}
	if !b.Restructured() || a.Restructured() {
		t.Fatal("restructured flags wrong")
	}
}

func TestKeyBitsCoverKeys(t *testing.T) {
	r := New(apps.Tiny).(*Radix)
	_ = r
	if keyBits%digitBits != 0 {
		t.Fatalf("keyBits %d not a multiple of digitBits %d", keyBits, digitBits)
	}
}

// The golden model: LSD radix sort is a stable sort; verify the final
// expectation used in Verify is simply the sorted input.
func TestGoldenModelIsSorted(t *testing.T) {
	r := New(apps.Tiny).(*Radix)
	r.input = []uint32{5, 3, 3, 1, 65535, 0}
	want := append([]uint32(nil), r.input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if want[0] != 0 || want[len(want)-1] != 65535 {
		t.Fatal("sort sanity failed")
	}
}
