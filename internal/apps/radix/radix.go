// Package radix implements the SPLASH-2 integer radix sort (Table 1: 1M
// keys in the paper; scaled).  The permutation phase writes every key to
// its globally ranked position — an all-to-all scatter whose page-grain
// false sharing makes Radix the paper's worst HLRC application (speedup
// 0.x at the base configuration, bandwidth-bound even at B).
//
// The restructured variant ("radix-local") first groups keys into local
// per-digit buckets and then writes each bucket as one contiguous run —
// the paper's "write to a local buffer first" restructuring, which makes
// remote access granularity large.
package radix

import (
	"fmt"
	"math/rand"
	"sort"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const (
	digitBits = 8
	radixSize = 1 << digitBits
	keyBits   = 16 // two passes
)

// Radix is one instance of the sort.
type Radix struct {
	name  string
	local bool
	n     int

	from, to apps.U32
	hist     apps.U32 // hist[p*R + d]
	rank     apps.U32 // rank[p*R + d]: global start offset for proc p, digit d
	scratch  apps.U32 // per-proc local buckets region (radix-local only)
	input    []uint32
	procs    int
}

// New builds the original scattered-permutation variant.
func New(s apps.Scale) apps.Instance { return build(s, false) }

// NewLocal builds the restructured local-buffer variant.
func NewLocal(s apps.Scale) apps.Instance { return build(s, true) }

func build(s apps.Scale, local bool) *Radix {
	n := 65536
	switch s {
	case apps.Tiny:
		n = 4096
	case apps.Large:
		n = 262144
	}
	name := "radix"
	if local {
		name = "radix-local"
	}
	return &Radix{name: name, local: local, n: n}
}

// Name implements apps.Instance.
func (r *Radix) Name() string { return r.name }

// MemBytes implements apps.Instance.
func (r *Radix) MemBytes() int64 {
	return int64(r.n)*8 + 64*radixSize*4*2 + int64(r.n)*4 + 4<<20
}

// SCBlock implements apps.Instance.
func (r *Radix) SCBlock() int { return 64 }

// Restructured implements apps.Instance.
func (r *Radix) Restructured() bool { return r.local }

// Setup allocates key arrays and histograms and fills random keys.
func (r *Radix) Setup(m *core.Machine) {
	p := m.Cfg.Procs
	r.procs = p
	keyBytes := int64(r.n) * 4
	r.from = apps.U32{Base: m.AllocPage(keyBytes)}
	r.to = apps.U32{Base: m.AllocPage(keyBytes)}
	r.hist = apps.U32{Base: m.AllocPage(int64(p) * radixSize * 4)}
	r.rank = apps.U32{Base: m.AllocPage(int64(p) * radixSize * 4)}
	if r.local {
		r.scratch = apps.U32{Base: m.AllocPage(keyBytes)}
	}
	for id := 0; id < p; id++ {
		lo, hi := apps.BlockRange(r.n, p, id)
		m.Place(r.from.Base+int64(lo)*4, int64(hi-lo)*4, id)
		m.Place(r.to.Base+int64(lo)*4, int64(hi-lo)*4, id)
		m.Place(r.hist.Base+int64(id)*radixSize*4, radixSize*4, id)
		m.Place(r.rank.Base+int64(id)*radixSize*4, radixSize*4, id)
		if r.local {
			m.Place(r.scratch.Base+int64(lo)*4, int64(hi-lo)*4, id)
		}
	}
	rng := rand.New(rand.NewSource(5))
	r.input = make([]uint32, r.n)
	for i := range r.input {
		r.input[i] = uint32(rng.Intn(1 << keyBits))
		r.from.Init(m, i, r.input[i])
	}
}

// Run sorts by successive digits.
func (r *Radix) Run(t *core.Thread) {
	p := t.NumProcs()
	me := t.Proc()
	lo, hi := apps.BlockRange(r.n, p, me)
	src, dst := r.from, r.to
	bar := 0
	for shift := 0; shift < keyBits; shift += digitBits {
		// Phase 1: local histogram.
		var local [radixSize]uint32
		for i := lo; i < hi; i++ {
			k := src.Get(t, i)
			local[(k>>uint(shift))&(radixSize-1)]++
		}
		t.Compute(int64(hi-lo) * 4)
		for d := 0; d < radixSize; d++ {
			r.hist.Set(t, me*radixSize+d, local[d])
		}
		t.Barrier(bar)
		bar ^= 1

		// Phase 2: processor 0 computes global ranks.
		if me == 0 {
			off := uint32(0)
			for d := 0; d < radixSize; d++ {
				for q := 0; q < p; q++ {
					r.rank.Set(t, q*radixSize+d, off)
					off += r.hist.Get(t, q*radixSize+d)
				}
			}
			t.Compute(int64(p * radixSize * 2))
		}
		t.Barrier(bar)
		bar ^= 1

		// Phase 3: permutation.
		var next [radixSize]uint32
		for d := 0; d < radixSize; d++ {
			next[d] = r.rank.Get(t, me*radixSize+d)
		}
		if r.local {
			r.permuteLocal(t, src, dst, lo, hi, shift, &next)
		} else {
			r.permuteScattered(t, src, dst, lo, hi, shift, &next)
		}
		t.Barrier(bar)
		bar ^= 1
		src, dst = dst, src
	}
}

// permuteScattered writes each key straight to its global slot (the
// original fine-grained scatter).
func (r *Radix) permuteScattered(t *core.Thread, src, dst apps.U32, lo, hi, shift int, next *[radixSize]uint32) {
	for i := lo; i < hi; i++ {
		k := src.Get(t, i)
		d := (k >> uint(shift)) & (radixSize - 1)
		dst.Set(t, int(next[d]), k)
		next[d]++
	}
	t.Compute(int64(hi-lo) * 6)
}

// permuteLocal first buckets keys into a processor-local scratch region,
// then copies each bucket contiguously to its global range.
func (r *Radix) permuteLocal(t *core.Thread, src, dst apps.U32, lo, hi, shift int, next *[radixSize]uint32) {
	// Bucket into scratch (local writes).
	var count [radixSize]uint32
	for i := lo; i < hi; i++ {
		k := src.Get(t, i)
		count[(k>>uint(shift))&(radixSize-1)]++
	}
	var start [radixSize]uint32
	acc := uint32(lo)
	for d := 0; d < radixSize; d++ {
		start[d] = acc
		acc += count[d]
	}
	fill := start
	for i := lo; i < hi; i++ {
		k := src.Get(t, i)
		d := (k >> uint(shift)) & (radixSize - 1)
		r.scratch.Set(t, int(fill[d]), k)
		fill[d]++
	}
	t.Compute(int64(hi-lo) * 8)
	// Copy buckets contiguously to their global destinations.
	for d := 0; d < radixSize; d++ {
		base := next[d]
		for j := uint32(0); j < count[d]; j++ {
			dst.Set(t, int(base+j), r.scratch.Get(t, int(start[d]+j)))
		}
	}
	t.Compute(int64(hi-lo) * 2)
}

// Verify checks the final array is the sorted input.
func (r *Radix) Verify(m *core.Machine) error {
	want := append([]uint32(nil), r.input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	// Two passes: result back in `from`.
	final := r.from
	for i := 0; i < r.n; i++ {
		if got := final.Result(m, i); got != want[i] {
			return fmt.Errorf("%s: key[%d] = %d, want %d", r.name, i, got, want[i])
		}
	}
	return nil
}

var _ apps.Instance = (*Radix)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "radix", BaseSize: "64K keys", PaperSize: "1M keys",
		InstrumentationPct: 33, Factory: New,
	})
	apps.Register(apps.Info{
		Name: "radix-local", BaseSize: "64K keys", PaperSize: "1M keys",
		InstrumentationPct: 33, RestructuredOf: "radix", Factory: NewLocal,
	})
}
