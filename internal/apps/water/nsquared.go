// Package water implements the two SPLASH-2 Water molecular-dynamics
// applications (Table 1: 512 molecules in the paper; scaled):
//
//   - Water-Nsquared: O(n^2) pairwise forces; each processor owns a block
//     of molecules and accumulates force contributions into OTHER
//     processors' molecules under per-molecule locks — the migratory,
//     diff-heavy pattern the paper calls out ("computes many diffs for a
//     lot of migratory data when it is updating forces").
//   - Water-Spatial: a cell decomposition where each molecule's owner
//     computes its full force by reading neighbour cells (no locks in the
//     force phase), trading redundant computation for locality.
package water

import (
	"fmt"
	"math"
	"math/rand"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const (
	flopCycles = 2
	dt         = 0.002
	cutoff2    = 6.25 // squared interaction cutoff
)

// body layout in shared memory: per-molecule record of 9 doubles
// (pos xyz, vel xyz, force xyz), padded to 128 bytes.
const molBytes = 128

// NSquared is one Water-Nsquared instance.
type NSquared struct {
	n     int
	steps int

	mol   int64 // base address of the molecule array
	init  []vec3
	procs int
	locks int
}

type vec3 struct{ x, y, z float64 }

// NewNSquared builds the kernel at a scale.
func NewNSquared(s apps.Scale) apps.Instance {
	n, steps := 128, 2
	switch s {
	case apps.Tiny:
		n, steps = 24, 2
	case apps.Large:
		n, steps = 216, 3
	}
	return &NSquared{n: n, steps: steps, locks: 32}
}

// Name implements apps.Instance.
func (w *NSquared) Name() string { return "water-nsquared" }

// MemBytes implements apps.Instance.
func (w *NSquared) MemBytes() int64 { return int64(w.n)*molBytes + 1<<20 }

// SCBlock implements apps.Instance: one 128 B molecule record per block.
func (w *NSquared) SCBlock() int { return 128 }

// Restructured implements apps.Instance.
func (w *NSquared) Restructured() bool { return false }

// Field offsets within a molecule record.
const (
	offPos   = 0
	offVel   = 24
	offForce = 48
)

func (w *NSquared) molAddr(i int, field int64) int64 {
	return w.mol + int64(i)*molBytes + field
}

// initialPositions lays molecules on a jittered lattice.
func initialPositions(n int, seed int64) []vec3 {
	r := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Cbrt(float64(n))))
	out := make([]vec3, 0, n)
	for i := 0; len(out) < n; i++ {
		x := float64(i%side) * 1.8
		y := float64((i/side)%side) * 1.8
		z := float64(i/(side*side)) * 1.8
		out = append(out, vec3{
			x + 0.2*(r.Float64()-0.5),
			y + 0.2*(r.Float64()-0.5),
			z + 0.2*(r.Float64()-0.5),
		})
	}
	return out
}

// Setup allocates the molecule array.
func (w *NSquared) Setup(m *core.Machine) {
	w.procs = m.Cfg.Procs
	w.mol = m.AllocPage(int64(w.n) * molBytes)
	for id := 0; id < w.procs; id++ {
		lo, hi := apps.BlockRange(w.n, w.procs, id)
		m.Place(w.mol+int64(lo)*molBytes, int64(hi-lo)*molBytes, id)
	}
	w.init = initialPositions(w.n, 23)
	for i, p := range w.init {
		m.InitF64(w.molAddr(i, offPos), p.x)
		m.InitF64(w.molAddr(i, offPos+8), p.y)
		m.InitF64(w.molAddr(i, offPos+16), p.z)
		for f := int64(0); f < 6; f++ {
			m.InitF64(w.molAddr(i, offVel+8*f), 0)
		}
	}
}

// pairForce is a truncated soft Lennard-Jones-like force kernel.
func pairForce(dx, dy, dz float64) (fx, fy, fz float64) {
	r2 := dx*dx + dy*dy + dz*dz
	if r2 > cutoff2 || r2 == 0 {
		return 0, 0, 0
	}
	r2 += 0.1 // softening
	inv := 1 / r2
	inv3 := inv * inv * inv
	g := 24 * inv3 * (2*inv3 - 1) * inv
	return g * dx, g * dy, g * dz
}

// halfShell lists the partners molecule i is responsible for: the next
// n/2 molecules around the ring (SPLASH-2's balanced split of the n^2/2
// pair triangle).
func halfShell(i, n int) []int {
	half := n / 2
	out := make([]int, 0, half)
	for d := 1; d <= half; d++ {
		j := (i + d) % n
		if d == half && n%2 == 0 && i >= half {
			break // pair (i, i+n/2) handled by the lower-numbered side
		}
		out = append(out, j)
	}
	return out
}

// Run performs the timestep loop.
func (w *NSquared) Run(t *core.Thread) {
	p := t.NumProcs()
	me := t.Proc()
	lo, hi := apps.BlockRange(w.n, p, me)
	bar := 0
	for step := 0; step < w.steps; step++ {
		// Zero own forces.
		for i := lo; i < hi; i++ {
			for f := int64(0); f < 3; f++ {
				t.StoreF64(w.molAddr(i, offForce+8*f), 0)
			}
		}
		t.Barrier(bar)
		bar ^= 1

		// Pairwise forces, SPLASH-2 style: proc handling i computes pairs
		// (i, j>i), accumulating all contributions in a PRIVATE array,
		// then merges them into the shared force array under
		// per-molecule locks at the end of the phase — the migratory,
		// diff-heavy update pattern the paper describes.
		contrib := make([]vec3, w.n)
		for i := lo; i < hi; i++ {
			xi := t.LoadF64(w.molAddr(i, offPos))
			yi := t.LoadF64(w.molAddr(i, offPos+8))
			zi := t.LoadF64(w.molAddr(i, offPos+16))
			for _, j := range halfShell(i, w.n) {
				xj := t.LoadF64(w.molAddr(j, offPos))
				yj := t.LoadF64(w.molAddr(j, offPos+8))
				zj := t.LoadF64(w.molAddr(j, offPos+16))
				fx, fy, fz := pairForce(xi-xj, yi-yj, zi-zj)
				t.Compute(20 * flopCycles)
				if fx == 0 && fy == 0 && fz == 0 {
					continue
				}
				contrib[i].x += fx
				contrib[i].y += fy
				contrib[i].z += fz
				contrib[j].x -= fx
				contrib[j].y -= fy
				contrib[j].z -= fz
				t.Compute(6 * flopCycles)
			}
		}
		// Locked merge pass over every molecule this proc touched.
		for j := 0; j < w.n; j++ {
			c := contrib[j]
			if c.x == 0 && c.y == 0 && c.z == 0 {
				continue
			}
			lk := 100 + j%w.locks
			t.Acquire(lk)
			t.StoreF64(w.molAddr(j, offForce), t.LoadF64(w.molAddr(j, offForce))+c.x)
			t.StoreF64(w.molAddr(j, offForce+8), t.LoadF64(w.molAddr(j, offForce+8))+c.y)
			t.StoreF64(w.molAddr(j, offForce+16), t.LoadF64(w.molAddr(j, offForce+16))+c.z)
			t.Release(lk)
		}
		t.Barrier(bar)
		bar ^= 1

		// Integrate own molecules.
		for i := lo; i < hi; i++ {
			for f := int64(0); f < 3; f++ {
				v := t.LoadF64(w.molAddr(i, offVel+8*f))
				v += dt * t.LoadF64(w.molAddr(i, offForce+8*f))
				t.StoreF64(w.molAddr(i, offVel+8*f), v)
				x := t.LoadF64(w.molAddr(i, offPos+8*f))
				t.StoreF64(w.molAddr(i, offPos+8*f), x+dt*v)
			}
			t.Compute(12 * flopCycles)
		}
		t.Barrier(bar)
		bar ^= 1
	}
}

// Verify runs the same dynamics sequentially and compares positions.
// Lock-ordered force accumulation reorders floating-point additions, so
// a small tolerance is allowed.
func (w *NSquared) Verify(m *core.Machine) error {
	pos := append([]vec3(nil), w.init...)
	vel := make([]vec3, w.n)
	force := make([]vec3, w.n)
	for step := 0; step < w.steps; step++ {
		for i := range force {
			force[i] = vec3{}
		}
		for i := 0; i < w.n; i++ {
			for _, j := range halfShell(i, w.n) {
				fx, fy, fz := pairForce(pos[i].x-pos[j].x, pos[i].y-pos[j].y, pos[i].z-pos[j].z)
				force[i].x += fx
				force[i].y += fy
				force[i].z += fz
				force[j].x -= fx
				force[j].y -= fy
				force[j].z -= fz
			}
		}
		for i := 0; i < w.n; i++ {
			vel[i].x += dt * force[i].x
			vel[i].y += dt * force[i].y
			vel[i].z += dt * force[i].z
			pos[i].x += dt * vel[i].x
			pos[i].y += dt * vel[i].y
			pos[i].z += dt * vel[i].z
		}
	}
	for i := 0; i < w.n; i++ {
		gx := m.ReadResultF64(w.molAddr(i, offPos))
		gy := m.ReadResultF64(w.molAddr(i, offPos+8))
		gz := m.ReadResultF64(w.molAddr(i, offPos+16))
		if math.Abs(gx-pos[i].x) > 1e-6 || math.Abs(gy-pos[i].y) > 1e-6 || math.Abs(gz-pos[i].z) > 1e-6 {
			return fmt.Errorf("water-nsquared: molecule %d at (%g,%g,%g), want (%g,%g,%g)",
				i, gx, gy, gz, pos[i].x, pos[i].y, pos[i].z)
		}
	}
	return nil
}

var _ apps.Instance = (*NSquared)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "water-nsquared", BaseSize: "128 molecules, 2 steps", PaperSize: "512 molecules",
		InstrumentationPct: 14, Factory: NewNSquared,
	})
}
