package water

import (
	"fmt"
	"math"

	"swsm/internal/apps"
	"swsm/internal/core"
)

// Spatial is one Water-Spatial instance: molecules are binned into a 3-D
// grid of cells, cells are block-assigned to processors, and each
// molecule's owner computes its full force by scanning the 27 neighbour
// cells — reads only, no locks in the force phase (cells do not change
// hands between the few simulated steps; SPLASH-2 reassigns molecules to
// cells as they move, which these short runs do not need).
type Spatial struct {
	n     int
	steps int
	cells int // cells per side

	mol      int64
	cellIdx  apps.I32 // molecule -> cell (static for the short run)
	cellList [][]int  // cell -> molecules (host-side, built at setup)
	init     []vec3
	procs    int
}

// NewSpatial builds the kernel at a scale.
func NewSpatial(s apps.Scale) apps.Instance {
	n, steps, cells := 216, 2, 4
	switch s {
	case apps.Tiny:
		n, steps, cells = 32, 2, 2
	case apps.Large:
		n, steps, cells = 512, 3, 5
	}
	return &Spatial{n: n, steps: steps, cells: cells}
}

// Name implements apps.Instance.
func (w *Spatial) Name() string { return "water-spatial" }

// MemBytes implements apps.Instance.
func (w *Spatial) MemBytes() int64 { return int64(w.n)*molBytes + int64(w.n)*4 + 1<<20 }

// SCBlock implements apps.Instance: one 128 B molecule record per block.
func (w *Spatial) SCBlock() int { return 128 }

// Restructured implements apps.Instance.
func (w *Spatial) Restructured() bool { return false }

func (w *Spatial) molAddr(i int, field int64) int64 {
	return w.mol + int64(i)*molBytes + field
}

// cellOf bins a position.
func (w *Spatial) cellOf(p vec3) int {
	side := float64(w.cells)
	span := 1.8 * math.Ceil(math.Cbrt(float64(w.n))) // lattice extent
	cx := int(p.x / span * side)
	cy := int(p.y / span * side)
	cz := int(p.z / span * side)
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= w.cells {
			return w.cells - 1
		}
		return v
	}
	return (clamp(cx)*w.cells+clamp(cy))*w.cells + clamp(cz)
}

// Setup bins molecules into cells and assigns cell blocks to processors.
func (w *Spatial) Setup(m *core.Machine) {
	w.procs = m.Cfg.Procs
	w.mol = m.AllocPage(int64(w.n) * molBytes)
	w.cellIdx = apps.I32{Base: m.AllocPage(int64(w.n) * 4)}
	w.init = initialPositions(w.n, 31)

	nc := w.cells * w.cells * w.cells
	w.cellList = make([][]int, nc)
	for i, p := range w.init {
		c := w.cellOf(p)
		w.cellList[c] = append(w.cellList[c], i)
	}
	// Owner of a molecule = owner of its cell; place molecule records
	// with their owner.
	for i, p := range w.init {
		c := w.cellOf(p)
		owner := w.cellOwner(c)
		m.Place(w.mol+int64(i)*molBytes, molBytes, owner)
		w.cellIdx.Init(m, i, int32(c))
		m.InitF64(w.molAddr(i, offPos), p.x)
		m.InitF64(w.molAddr(i, offPos+8), p.y)
		m.InitF64(w.molAddr(i, offPos+16), p.z)
		for f := int64(0); f < 6; f++ {
			m.InitF64(w.molAddr(i, offVel+8*f), 0)
		}
	}
}

func (w *Spatial) cellOwner(c int) int {
	nc := w.cells * w.cells * w.cells
	return rowBandOf(c, nc, w.procs)
}

func rowBandOf(i, n, nb int) int {
	for b := 0; b < nb; b++ {
		lo, hi := apps.BlockRange(n, nb, b)
		if i >= lo && i < hi {
			return b
		}
	}
	return nb - 1
}

// neighbours lists the (up to 27) neighbour cells of c.
func (w *Spatial) neighbours(c int) []int {
	cz := c % w.cells
	cy := (c / w.cells) % w.cells
	cx := c / (w.cells * w.cells)
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				x, y, z := cx+dx, cy+dy, cz+dz
				if x < 0 || y < 0 || z < 0 || x >= w.cells || y >= w.cells || z >= w.cells {
					continue
				}
				out = append(out, (x*w.cells+y)*w.cells+z)
			}
		}
	}
	return out
}

// Run performs the timestep loop.
func (w *Spatial) Run(t *core.Thread) {
	p := t.NumProcs()
	me := t.Proc()
	nc := w.cells * w.cells * w.cells
	clo, chi := apps.BlockRange(nc, p, me)
	bar := 0
	for step := 0; step < w.steps; step++ {
		// Force phase: each owner computes full forces for its cells'
		// molecules by scanning neighbour cells (reads only).
		for c := clo; c < chi; c++ {
			for _, i := range w.cellList[c] {
				xi := t.LoadF64(w.molAddr(i, offPos))
				yi := t.LoadF64(w.molAddr(i, offPos+8))
				zi := t.LoadF64(w.molAddr(i, offPos+16))
				var fx, fy, fz float64
				for _, nb := range w.neighbours(c) {
					for _, j := range w.cellList[nb] {
						if j == i {
							continue
						}
						xj := t.LoadF64(w.molAddr(j, offPos))
						yj := t.LoadF64(w.molAddr(j, offPos+8))
						zj := t.LoadF64(w.molAddr(j, offPos+16))
						gx, gy, gz := pairForce(xi-xj, yi-yj, zi-zj)
						fx += gx
						fy += gy
						fz += gz
						t.Compute(20 * flopCycles)
					}
				}
				t.StoreF64(w.molAddr(i, offForce), fx)
				t.StoreF64(w.molAddr(i, offForce+8), fy)
				t.StoreF64(w.molAddr(i, offForce+16), fz)
			}
		}
		t.Barrier(bar)
		bar ^= 1
		// Integrate own molecules.
		for c := clo; c < chi; c++ {
			for _, i := range w.cellList[c] {
				for f := int64(0); f < 3; f++ {
					v := t.LoadF64(w.molAddr(i, offVel+8*f))
					v += dt * t.LoadF64(w.molAddr(i, offForce+8*f))
					t.StoreF64(w.molAddr(i, offVel+8*f), v)
					x := t.LoadF64(w.molAddr(i, offPos+8*f))
					t.StoreF64(w.molAddr(i, offPos+8*f), x+dt*v)
				}
				t.Compute(12 * flopCycles)
			}
		}
		t.Barrier(bar)
		bar ^= 1
	}
}

// Verify runs the identical cell-based dynamics sequentially; operation
// order matches exactly, so the comparison is tight.
func (w *Spatial) Verify(m *core.Machine) error {
	pos := append([]vec3(nil), w.init...)
	vel := make([]vec3, w.n)
	force := make([]vec3, w.n)
	nc := w.cells * w.cells * w.cells
	for step := 0; step < w.steps; step++ {
		for c := 0; c < nc; c++ {
			for _, i := range w.cellList[c] {
				var fx, fy, fz float64
				for _, nb := range w.neighbours(c) {
					for _, j := range w.cellList[nb] {
						if j == i {
							continue
						}
						gx, gy, gz := pairForce(pos[i].x-pos[j].x, pos[i].y-pos[j].y, pos[i].z-pos[j].z)
						fx += gx
						fy += gy
						fz += gz
					}
				}
				force[i] = vec3{fx, fy, fz}
			}
		}
		for i := 0; i < w.n; i++ {
			vel[i].x += dt * force[i].x
			vel[i].y += dt * force[i].y
			vel[i].z += dt * force[i].z
			pos[i].x += dt * vel[i].x
			pos[i].y += dt * vel[i].y
			pos[i].z += dt * vel[i].z
		}
	}
	for i := 0; i < w.n; i++ {
		gx := m.ReadResultF64(w.molAddr(i, offPos))
		gy := m.ReadResultF64(w.molAddr(i, offPos+8))
		gz := m.ReadResultF64(w.molAddr(i, offPos+16))
		if math.Abs(gx-pos[i].x) > 1e-9 || math.Abs(gy-pos[i].y) > 1e-9 || math.Abs(gz-pos[i].z) > 1e-9 {
			return fmt.Errorf("water-spatial: molecule %d at (%g,%g,%g), want (%g,%g,%g)",
				i, gx, gy, gz, pos[i].x, pos[i].y, pos[i].z)
		}
	}
	return nil
}

var _ apps.Instance = (*Spatial)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "water-spatial", BaseSize: "216 molecules, 2 steps", PaperSize: "512 molecules",
		InstrumentationPct: 14, Factory: NewSpatial,
	})
}
