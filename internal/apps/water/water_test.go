package water

import (
	"testing"
	"testing/quick"
)

// Property: halfShell assigns every unordered pair {i,j} to exactly one
// responsible molecule.
func TestHalfShellCoversPairsOnce(t *testing.T) {
	for _, n := range []int{2, 7, 24, 128} {
		count := map[[2]int]int{}
		for i := 0; i < n; i++ {
			for _, j := range halfShell(i, n) {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				count[[2]int{a, b}]++
			}
		}
		want := n * (n - 1) / 2
		if len(count) != want {
			t.Fatalf("n=%d: %d pairs covered, want %d", n, len(count), want)
		}
		for pair, c := range count {
			if c != 1 {
				t.Fatalf("n=%d: pair %v handled %d times", n, pair, c)
			}
		}
	}
}

// Property: halfShell load is balanced within one partner.
func TestHalfShellBalanced(t *testing.T) {
	n := 128
	min, max := n, 0
	for i := 0; i < n; i++ {
		l := len(halfShell(i, n))
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("partner counts range %d..%d", min, max)
	}
}

// Property: pairForce is antisymmetric and zero beyond the cutoff.
func TestPairForceProperties(t *testing.T) {
	f := func(dx, dy, dz float64) bool {
		// Clamp to a sane range.
		if dx != dx || dy != dy || dz != dz {
			return true
		}
		clamp := func(v float64) float64 {
			if v > 10 {
				return 10
			}
			if v < -10 {
				return -10
			}
			return v
		}
		dx, dy, dz = clamp(dx), clamp(dy), clamp(dz)
		fx, fy, fz := pairForce(dx, dy, dz)
		gx, gy, gz := pairForce(-dx, -dy, -dz)
		if fx != -gx || fy != -gy || fz != -gz {
			return false
		}
		if dx*dx+dy*dy+dz*dz > cutoff2 && (fx != 0 || fy != 0 || fz != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialPositionsDistinct(t *testing.T) {
	pos := initialPositions(128, 23)
	if len(pos) != 128 {
		t.Fatalf("len = %d", len(pos))
	}
	seen := map[vec3]bool{}
	for _, p := range pos {
		if seen[p] {
			t.Fatalf("duplicate position %v", p)
		}
		seen[p] = true
	}
}

func TestCellNeighboursWithinBounds(t *testing.T) {
	w := &Spatial{cells: 3}
	for c := 0; c < 27; c++ {
		nbs := w.neighbours(c)
		if len(nbs) < 8 || len(nbs) > 27 {
			t.Fatalf("cell %d has %d neighbours", c, len(nbs))
		}
		self := false
		for _, nb := range nbs {
			if nb < 0 || nb >= 27 {
				t.Fatalf("cell %d neighbour %d out of range", c, nb)
			}
			if nb == c {
				self = true
			}
		}
		if !self {
			t.Fatalf("cell %d not its own neighbour", c)
		}
	}
}
