package lu

import (
	"testing"

	"swsm/internal/apps"
)

func TestOwnerScatter(t *testing.T) {
	l := New(apps.Tiny).(*LU)
	// 2-D scatter over 16 procs: owners repeat with period 4 in each
	// dimension.
	for I := 0; I < l.nb; I++ {
		for J := 0; J < l.nb; J++ {
			if got, want := l.owner(I, J, 16), l.owner(I+4, J+4, 16); got != want {
				t.Fatalf("owner(%d,%d) = %d, owner shifted = %d", I, J, got, want)
			}
		}
	}
	// All 16 owners appear when nb >= 4.
	if l.nb >= 4 {
		seen := map[int]bool{}
		for I := 0; I < 4; I++ {
			for J := 0; J < 4; J++ {
				seen[l.owner(I, J, 16)] = true
			}
		}
		if len(seen) != 16 {
			t.Fatalf("only %d distinct owners", len(seen))
		}
	}
}

func TestBlockAddressing(t *testing.T) {
	l := New(apps.Tiny).(*LU)
	l.a = apps.F64{Base: 1 << 20}
	// Blocks must be disjoint and contiguous: block (I,J) spans
	// [base + (I*nb+J)*b*b*8, ... + b*b*8).
	sz := int64(l.b*l.b) * 8
	for I := 0; I < l.nb; I++ {
		for J := 0; J < l.nb; J++ {
			base := l.blockBase(I, J)
			want := l.a.Base + int64(I*l.nb+J)*sz
			if base != want {
				t.Fatalf("blockBase(%d,%d) = %d, want %d", I, J, base, want)
			}
		}
	}
}

func TestIdxWithinBlock(t *testing.T) {
	l := New(apps.Tiny).(*LU)
	seen := map[int]bool{}
	for ii := 0; ii < l.b; ii++ {
		for jj := 0; jj < l.b; jj++ {
			i := l.idx(1, 2, ii, jj)
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != l.b*l.b {
		t.Fatalf("covered %d cells", len(seen))
	}
}
