// Package lu implements the SPLASH-2 LU-Contiguous kernel: blocked dense
// LU factorization without pivoting, with each B x B block stored
// contiguously and blocks 2-D-scatter-assigned to processors (Table 1:
// 512x512 in the paper; scaled here).  LU is the paper's archetypal
// coarse-grained, single-writer application: almost no protocol activity
// for HLRC, and SC prefers a coarse (2-4 KB) granularity.
package lu

import (
	"fmt"
	"math"
	"math/rand"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const flopCycles = 2

// LU is one instance of the kernel.
type LU struct {
	n  int // matrix dimension
	b  int // block dimension
	nb int // blocks per side

	a     apps.F64 // blocks stored contiguously: block (I,J) at (I*nb+J)*b*b
	orig  []float64
	procs int
}

// New builds the kernel at a scale.
func New(s apps.Scale) apps.Instance {
	n, b := 256, 32
	switch s {
	case apps.Tiny:
		n, b = 64, 16
	case apps.Large:
		n, b = 512, 32
	}
	return &LU{n: n, b: b, nb: n / b}
}

// Name implements apps.Instance.
func (l *LU) Name() string { return "lu" }

// MemBytes implements apps.Instance.
func (l *LU) MemBytes() int64 { return int64(l.n)*int64(l.n)*8 + 1<<20 }

// SCBlock implements apps.Instance: LU uses coarse blocks.
func (l *LU) SCBlock() int { return 2048 }

// Restructured implements apps.Instance.
func (l *LU) Restructured() bool { return false }

// owner 2-D scatters blocks over processors, as SPLASH-2 does.
func (l *LU) owner(I, J, procs int) int {
	dim := 1
	for dim*dim < procs {
		dim++
	}
	return (I%dim)*dim + J%dim
}

// blockBase returns the address of block (I,J).
func (l *LU) blockBase(I, J int) int64 {
	return l.a.Base + int64((I*l.nb+J)*l.b*l.b)*8
}

// Setup allocates the matrix, scatters block homes, and fills a
// diagonally dominant matrix (stable without pivoting).
func (l *LU) Setup(m *core.Machine) {
	l.procs = m.Cfg.Procs
	l.a = apps.F64{Base: m.AllocPage(int64(l.n) * int64(l.n) * 8)}
	blockBytes := int64(l.b*l.b) * 8
	for I := 0; I < l.nb; I++ {
		for J := 0; J < l.nb; J++ {
			m.Place(l.blockBase(I, J), blockBytes, l.owner(I, J, m.Cfg.Procs)%m.Cfg.Procs)
		}
	}
	r := rand.New(rand.NewSource(17))
	l.orig = make([]float64, l.n*l.n)
	for i := 0; i < l.n; i++ {
		for j := 0; j < l.n; j++ {
			v := r.Float64() - 0.5
			if i == j {
				v += float64(l.n) // diagonal dominance
			}
			l.orig[i*l.n+j] = v
			I, J := i/l.b, j/l.b
			ii, jj := i%l.b, j%l.b
			idx := (I*l.nb+J)*l.b*l.b + ii*l.b + jj
			l.a.Init(m, idx, v)
		}
	}
}

// idx addresses element (ii,jj) of block (I,J).
func (l *LU) idx(I, J, ii, jj int) int {
	return (I*l.nb+J)*l.b*l.b + ii*l.b + jj
}

// Run performs right-looking blocked LU with barriers between steps.
func (l *LU) Run(t *core.Thread) {
	p := t.NumProcs()
	me := t.Proc()
	bar := 0
	for k := 0; k < l.nb; k++ {
		// 1. Factor the diagonal block (its owner does it).
		if l.owner(k, k, p)%p == me {
			l.factorDiag(t, k)
		}
		t.Barrier(bar)
		bar ^= 1
		// 2. Update perimeter blocks (row k and column k).
		for J := k + 1; J < l.nb; J++ {
			if l.owner(k, J, p)%p == me {
				l.updateRowBlock(t, k, J)
			}
		}
		for I := k + 1; I < l.nb; I++ {
			if l.owner(I, k, p)%p == me {
				l.updateColBlock(t, I, k)
			}
		}
		t.Barrier(bar)
		bar ^= 1
		// 3. Update interior blocks.
		for I := k + 1; I < l.nb; I++ {
			for J := k + 1; J < l.nb; J++ {
				if l.owner(I, J, p)%p == me {
					l.updateInterior(t, I, J, k)
				}
			}
		}
		t.Barrier(bar)
		bar ^= 1
	}
}

// factorDiag does an unblocked LU of block (k,k): A = L*U in place, unit
// lower diagonal.
func (l *LU) factorDiag(t *core.Thread, k int) {
	b := l.b
	// Work on a local copy: load, factor, store (the block is owned).
	blk := l.loadBlock(t, k, k)
	for j := 0; j < b; j++ {
		for i := j + 1; i < b; i++ {
			blk[i*b+j] /= blk[j*b+j]
			for jj := j + 1; jj < b; jj++ {
				blk[i*b+jj] -= blk[i*b+j] * blk[j*b+jj]
			}
		}
	}
	t.Compute(int64(b*b*b/3) * flopCycles)
	l.storeBlock(t, k, k, blk)
}

// updateRowBlock computes U-part: A[k][J] = L(k,k)^-1 * A[k][J].
func (l *LU) updateRowBlock(t *core.Thread, k, J int) {
	b := l.b
	diag := l.loadBlock(t, k, k)
	blk := l.loadBlock(t, k, J)
	for j := 0; j < b; j++ {
		for i := j + 1; i < b; i++ {
			lij := diag[i*b+j]
			for c := 0; c < b; c++ {
				blk[i*b+c] -= lij * blk[j*b+c]
			}
		}
	}
	t.Compute(int64(b*b*b/2) * flopCycles)
	l.storeBlock(t, k, J, blk)
}

// updateColBlock computes L-part: A[I][k] = A[I][k] * U(k,k)^-1.
func (l *LU) updateColBlock(t *core.Thread, I, k int) {
	b := l.b
	diag := l.loadBlock(t, k, k)
	blk := l.loadBlock(t, I, k)
	for j := 0; j < b; j++ {
		ujj := diag[j*b+j]
		for i := 0; i < b; i++ {
			blk[i*b+j] /= ujj
			for c := j + 1; c < b; c++ {
				blk[i*b+c] -= blk[i*b+j] * diag[j*b+c]
			}
		}
	}
	t.Compute(int64(b*b*b/2) * flopCycles)
	l.storeBlock(t, I, k, blk)
}

// updateInterior computes A[I][J] -= A[I][k] * A[k][J].
func (l *LU) updateInterior(t *core.Thread, I, J, k int) {
	b := l.b
	lb := l.loadBlock(t, I, k)
	ub := l.loadBlock(t, k, J)
	blk := l.loadBlock(t, I, J)
	for i := 0; i < b; i++ {
		for kk := 0; kk < b; kk++ {
			lik := lb[i*b+kk]
			if lik == 0 {
				continue
			}
			for j := 0; j < b; j++ {
				blk[i*b+j] -= lik * ub[kk*b+j]
			}
		}
	}
	t.Compute(int64(2*b*b*b) * flopCycles)
	l.storeBlock(t, I, J, blk)
}

func (l *LU) loadBlock(t *core.Thread, I, J int) []float64 {
	b := l.b
	out := make([]float64, b*b)
	base := (I*l.nb + J) * b * b
	for i := range out {
		out[i] = l.a.Get(t, base+i)
	}
	return out
}

func (l *LU) storeBlock(t *core.Thread, I, J int, blk []float64) {
	base := (I*l.nb + J) * l.b * l.b
	for i, v := range blk {
		l.a.Set(t, base+i, v)
	}
}

// Verify reconstructs A from the computed L and U factors and compares
// with the original matrix.
func (l *LU) Verify(m *core.Machine) error {
	n := l.n
	lu := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			I, J := i/l.b, j/l.b
			ii, jj := i%l.b, j%l.b
			lu[i*n+j] = l.a.Result(m, l.idx(I, J, ii, jj))
		}
	}
	// Column-major copy of the factor: the k-loop below reads column j,
	// which in row-major order is a stride-n walk that thrashes the host
	// cache at Base sizes and beyond.
	luT := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			luT[j*n+i] = lu[i*n+j]
		}
	}
	// Spot-check rows (all rows at Tiny/Base sizes are cheap enough).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				lv := lu[i*n+k]
				if k == i {
					lv = 1 // unit diagonal of L
				}
				if k > i {
					lv = 0
				}
				sum += lv * luT[j*n+k]
			}
			diff := math.Abs(sum - l.orig[i*n+j])
			if diff > 1e-6*(1+math.Abs(l.orig[i*n+j])) {
				return fmt.Errorf("lu: (LU)[%d][%d] = %g, want %g (diff %g)",
					i, j, sum, l.orig[i*n+j], diff)
			}
		}
	}
	return nil
}

var _ apps.Instance = (*LU)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "lu", BaseSize: "256x256, 32x32 blocks", PaperSize: "512x512 matrix",
		InstrumentationPct: 29, Factory: New,
	})
}
