package apps

import (
	"swsm/internal/core"
	"swsm/internal/stats"
)

// TaskQueue is a distributed work queue with stealing, the tasking
// structure of Raytrace and Volrend: each processor owns a queue of task
// ids protected by a lock; when a processor's own queue drains it steals
// from the others.  Stealing is expensive under SVM (lock + protocol
// activity), which is exactly the effect the paper studies in Volrend's
// restructuring.
type TaskQueue struct {
	nproc    int
	cap      int
	lockBase int
	heads    I32 // per-proc pop cursor (padded to 64 B)
	tails    I32 // per-proc fill count (padded to 64 B)
	tasks    I32 // per-proc task arrays
}

const qPad = 16 // 16 words = 64 bytes between per-proc counters

// NewTaskQueue allocates queue structures for nproc processors with the
// given per-processor capacity.  Locks [lockBase, lockBase+nproc) are
// used to protect the queues.
func NewTaskQueue(m *core.Machine, nproc, capacity, lockBase int) *TaskQueue {
	q := &TaskQueue{nproc: nproc, cap: capacity, lockBase: lockBase}
	q.heads = I32{Base: m.AllocPage(int64(nproc*qPad) * 4)}
	q.tails = I32{Base: m.AllocPage(int64(nproc*qPad) * 4)}
	q.tasks = I32{Base: m.AllocPage(int64(nproc*capacity) * 4)}
	for p := 0; p < nproc; p++ {
		q.heads.Init(m, p*qPad, 0)
		q.tails.Init(m, p*qPad, 0)
		m.Place(q.tasks.Base+int64(p*capacity)*4, int64(capacity)*4, p)
	}
	return q
}

// Fill seeds processor p's queue with tasks (during Setup).
func (q *TaskQueue) Fill(m *core.Machine, p int, tasks []int32) {
	if len(tasks) > q.cap {
		panic("apps: task queue overflow")
	}
	for i, task := range tasks {
		q.tasks.Init(m, p*q.cap+i, task)
	}
	q.tails.Init(m, p*qPad, int32(len(tasks)))
}

// popFrom tries to take a task from processor v's queue.
func (q *TaskQueue) popFrom(t *core.Thread, v int) (int32, bool) {
	t.Acquire(q.lockBase + v)
	h := q.heads.Get(t, v*qPad)
	tail := q.tails.Get(t, v*qPad)
	var task int32
	ok := h < tail
	if ok {
		task = q.tasks.Get(t, v*q.cap+int(h))
		q.heads.Set(t, v*qPad, h+1)
	}
	t.Release(q.lockBase + v)
	return task, ok
}

// Next returns the next task for processor `me`: its own queue first,
// then round-robin stealing.  ok=false means global exhaustion.
func (q *TaskQueue) Next(t *core.Thread, me int) (int32, bool) {
	if task, ok := q.popFrom(t, me); ok {
		return task, ok
	}
	for i := 1; i < q.nproc; i++ {
		v := (me + i) % q.nproc
		if task, ok := q.popFrom(t, v); ok {
			t.Machine().Stats.Inc(me, stats.TaskSteals, 1)
			return task, ok
		}
	}
	return 0, false
}
