package apps_test

import (
	"testing"

	"swsm/internal/apps"
	"swsm/internal/core"
	"swsm/internal/fault"
	"swsm/internal/proto/hlrc"
	"swsm/internal/proto/scfg"
	"swsm/internal/stats"
)

// faultedMachine builds a real-protocol machine with deterministic drop
// injection routed through the reliable transport — the configuration
// the existing taskq tests (ideal machine, perfect fabric) never touch.
func faultedMachine(procs int, seed uint64, dropPPM int64, sc bool) *core.Machine {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 8 << 20
	cfg.Fault = fault.Spec{Seed: seed, DropPPM: dropPPM, Reliable: true}
	if sc {
		return core.NewMachine(cfg, scfg.New(scfg.Config{Costs: cfg.Costs, BlockSize: 64}))
	}
	return core.NewMachine(cfg, hlrc.New(hlrc.Config{Costs: cfg.Costs}))
}

// drainAll runs the exactly-once drain workload (uneven fill, so
// stealing and hence cross-node lock traffic is guaranteed) and returns
// the machine for counter assertions.
func drainAll(t *testing.T, m *core.Machine, procs, nTasks int) {
	t.Helper()
	q := apps.NewTaskQueue(m, procs, nTasks, 500)
	all := make([]int32, nTasks)
	for i := range all {
		all[i] = int32(i)
	}
	q.Fill(m, 0, all)

	popped := make([][]int32, procs)
	if _, err := m.Run(func(th *core.Thread) {
		for {
			task, ok := q.Next(th, th.Proc())
			if !ok {
				break
			}
			popped[th.Proc()] = append(popped[th.Proc()], task)
			th.Compute(100)
		}
		th.Barrier(0)
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for p := 0; p < procs; p++ {
		for _, task := range popped[p] {
			seen[task]++
		}
	}
	if len(seen) != nTasks {
		t.Fatalf("saw %d distinct tasks, want %d", len(seen), nTasks)
	}
	for task, n := range seen {
		if n != 1 {
			t.Fatalf("task %d executed %d times", task, n)
		}
	}
}

// TestTaskQueueExactlyOnceUnderFaults pins the queue's core guarantee on
// a lossy wire: with 2% of protocol messages dropped and recovered by
// the reliable transport, every task is still executed exactly once and
// the run visibly exercised the retransmission machinery.
func TestTaskQueueExactlyOnceUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   bool
	}{{"hlrc", false}, {"scfg", true}} {
		t.Run(tc.name, func(t *testing.T) {
			const procs, nTasks = 4, 57
			m := faultedMachine(procs, 11, 20_000, tc.sc)
			drainAll(t, m, procs, nTasks)
			if m.Stats.TotalCount(stats.TaskSteals) == 0 {
				t.Fatal("expected steals with all tasks on one queue")
			}
			if m.Stats.TotalCount(stats.Retransmits) == 0 {
				t.Fatal("2% drops induced no retransmissions — fault plan never bit")
			}
			if m.Stats.TotalCount(stats.AcksSent) == 0 {
				t.Fatal("reliable transport sent no acks under active injection")
			}
		})
	}
}

// TestTaskQueueFaultedDeterministic re-runs the identical faulted
// workload and requires cycle-for-cycle and counter-for-counter
// equality: drop decisions are a pure function of the seed, not of
// wall-clock scheduling.
func TestTaskQueueFaultedDeterministic(t *testing.T) {
	const procs, nTasks = 4, 57
	run := func() (int64, int64) {
		m := faultedMachine(procs, 23, 20_000, false)
		drainAll(t, m, procs, nTasks)
		return m.Now(), m.Stats.TotalCount(stats.Retransmits)
	}
	c1, rx1 := run()
	c2, rx2 := run()
	if c1 != c2 || rx1 != rx2 {
		t.Fatalf("faulted taskq run not deterministic: %d/%d vs %d/%d cycles/retransmits",
			c1, rx1, c2, rx2)
	}
	if rx1 == 0 {
		t.Fatal("fixture induced no retransmissions")
	}
}
