// Package volrend implements the Volrend application: front-to-back ray
// casting through a 3-D density volume (the paper renders a 256^3 CT
// head; that dataset is proprietary, so a deterministic synthetic
// head-like phantom — nested ellipsoid shells — substitutes for it,
// preserving the behaviours under study: read-shared volume data with
// irregular access, tile task queues with stealing, and an output image
// whose page-grain false sharing the restructuring removes).
//
// Two variants:
//
//   - "volrend" (original): image tiles are handed out round-robin, so
//     neighbouring tiles — which share image pages — belong to different
//     processors (page false sharing and fragmentation), and the initial
//     assignment ignores ray cost, so task stealing is frequent.
//   - "volrend-rest" (restructured): each processor starts with a
//     contiguous band of tiles whose image rows are padded to page
//     boundaries, greatly reducing both stealing and image false
//     sharing, as described in the paper's application-layer study.
package volrend

import (
	"fmt"
	"math"

	"swsm/internal/apps"
	"swsm/internal/core"
	"swsm/internal/mem"
)

const (
	flopCycles = 2
	tile       = 8
)

// Volrend is one instance.
type Volrend struct {
	name string
	rest bool
	vol  int // volume edge
	w, h int // image size

	volume    apps.U32 // density 0..255 per voxel
	img       apps.U32
	rowStride int64 // image row stride in words
	queue     *apps.TaskQueue
	density   []uint8
	procs     int
}

// New builds the original variant.
func New(s apps.Scale) apps.Instance { return build(s, false) }

// NewRestructured builds the restructured variant.
func NewRestructured(s apps.Scale) apps.Instance { return build(s, true) }

func build(s apps.Scale, rest bool) *Volrend {
	vol, w, h := 48, 64, 64
	switch s {
	case apps.Tiny:
		vol, w, h = 16, 24, 24
	case apps.Large:
		vol, w, h = 64, 128, 128
	}
	name := "volrend"
	if rest {
		name = "volrend-rest"
	}
	return &Volrend{name: name, rest: rest, vol: vol, w: w, h: h}
}

// Name implements apps.Instance.
func (v *Volrend) Name() string { return v.name }

// MemBytes implements apps.Instance.
func (v *Volrend) MemBytes() int64 {
	return int64(v.vol*v.vol*v.vol)*4 + int64(v.h)*mem.PageSize + 4<<20
}

// SCBlock implements apps.Instance.
func (v *Volrend) SCBlock() int { return 64 }

// Restructured implements apps.Instance.
func (v *Volrend) Restructured() bool { return v.rest }

// phantom computes the synthetic head density at a voxel.
func (v *Volrend) phantom(x, y, z int) uint8 {
	n := float64(v.vol)
	fx, fy, fz := (float64(x)/n-0.5)*2, (float64(y)/n-0.5)*2, (float64(z)/n-0.5)*2
	// Skull: ellipsoid shell; brain: inner blob; air outside.
	r := math.Sqrt(fx*fx*1.2 + fy*fy + fz*fz*1.4)
	switch {
	case r > 0.95:
		return 0
	case r > 0.8:
		return 230 // bone
	case r > 0.75:
		return 40
	default:
		// Brain with lumpy structure.
		l := math.Sin(fx*7) * math.Sin(fy*9) * math.Sin(fz*8)
		return uint8(90 + 40*l)
	}
}

func (v *Volrend) voxIdx(x, y, z int) int { return (z*v.vol+y)*v.vol + x }

// imgIdx returns the word index of pixel (x,y) in the image array.
func (v *Volrend) imgIdx(x, y int) int { return y*int(v.rowStride) + x }

// Setup builds the volume, image and task queues.
func (v *Volrend) Setup(m *core.Machine) {
	v.procs = m.Cfg.Procs
	nvox := v.vol * v.vol * v.vol
	v.volume = apps.U32{Base: m.AllocPage(int64(nvox) * 4)}
	v.density = make([]uint8, nvox)
	for z := 0; z < v.vol; z++ {
		for y := 0; y < v.vol; y++ {
			for x := 0; x < v.vol; x++ {
				d := v.phantom(x, y, z)
				v.density[v.voxIdx(x, y, z)] = d
				v.volume.Init(m, v.voxIdx(x, y, z), uint32(d))
			}
		}
	}

	// Image layout: original packs rows tightly; restructured pads each
	// row to a page so tile bands never share pages.
	if v.rest {
		v.rowStride = mem.PageSize / 4
	} else {
		v.rowStride = int64(v.w)
	}
	v.img = apps.U32{Base: m.AllocPage(int64(v.h) * v.rowStride * 4)}

	// Tasks: original round-robins tiles; restructured assigns each
	// processor a contiguous band (and places those image rows locally).
	tx, ty := (v.w+tile-1)/tile, (v.h+tile-1)/tile
	nTasks := tx * ty
	perProc := make([][]int32, v.procs)
	if v.rest {
		for p := 0; p < v.procs; p++ {
			lo, hi := apps.BlockRange(nTasks, v.procs, p)
			for task := lo; task < hi; task++ {
				perProc[p] = append(perProc[p], int32(task))
			}
			// Place the band's image rows at the owner.
			rowLo := lo / tx * tile
			rowHi := (hi + tx - 1) / tx * tile
			if rowHi > v.h {
				rowHi = v.h
			}
			if rowLo < rowHi {
				m.Place(v.img.Base+int64(rowLo)*v.rowStride*4,
					int64(rowHi-rowLo)*v.rowStride*4, p)
			}
		}
	} else {
		for task := 0; task < nTasks; task++ {
			perProc[task%v.procs] = append(perProc[task%v.procs], int32(task))
		}
	}
	v.queue = apps.NewTaskQueue(m, v.procs, nTasks, 300)
	for p := 0; p < v.procs; p++ {
		v.queue.Fill(m, p, perProc[p])
	}
}

// Run renders tiles until global exhaustion.
func (v *Volrend) Run(t *core.Thread) {
	me := t.Proc()
	tx := (v.w + tile - 1) / tile
	for {
		task, ok := v.queue.Next(t, me)
		if !ok {
			break
		}
		bx, by := int(task)%tx*tile, int(task)/tx*tile
		for y := by; y < by+tile && y < v.h; y++ {
			for x := bx; x < bx+tile && x < v.w; x++ {
				v.img.Set(t, v.imgIdx(x, y), v.castRay(t, x, y))
			}
		}
	}
	t.Barrier(0)
}

// castRay accumulates intensity front to back along +z with early
// termination, sampling the shared volume (nearest neighbour).
func (v *Volrend) castRay(t *core.Thread, px, py int) uint32 {
	vx := px * v.vol / v.w
	vy := py * v.vol / v.h
	var acc, trans float64 = 0, 1
	steps := 0
	for z := 0; z < v.vol && trans > 0.05; z++ {
		d := float64(t.Load32(v.volume.Addr(v.voxIdx(vx, vy, z))) & 0xff)
		op := d / 255 * 0.22
		acc += trans * op * d
		trans *= 1 - op
		steps++
	}
	t.Compute(int64(steps) * 8 * flopCycles)
	val := uint32(acc)
	if val > 255 {
		val = 255
	}
	return val
}

// refRay renders a pixel from the host-side volume copy.
func (v *Volrend) refRay(px, py int) uint32 {
	vx := px * v.vol / v.w
	vy := py * v.vol / v.h
	var acc, trans float64 = 0, 1
	for z := 0; z < v.vol && trans > 0.05; z++ {
		d := float64(v.density[v.voxIdx(vx, vy, z)])
		op := d / 255 * 0.22
		acc += trans * op * d
		trans *= 1 - op
	}
	val := uint32(acc)
	if val > 255 {
		val = 255
	}
	return val
}

// Verify compares each pixel against the sequential reference.
func (v *Volrend) Verify(m *core.Machine) error {
	for y := 0; y < v.h; y++ {
		for x := 0; x < v.w; x++ {
			got := v.img.Result(m, v.imgIdx(x, y))
			want := v.refRay(x, y)
			if got != want {
				return fmt.Errorf("%s: pixel (%d,%d) = %d, want %d", v.name, x, y, got, want)
			}
		}
	}
	return nil
}

var _ apps.Instance = (*Volrend)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "volrend", BaseSize: "48^3 volume, 64x64 image", PaperSize: "256^3 CT head",
		InstrumentationPct: 20, Factory: New,
	})
	apps.Register(apps.Info{
		Name: "volrend-rest", BaseSize: "48^3 volume, 64x64 image", PaperSize: "256^3 CT head",
		InstrumentationPct: 20, RestructuredOf: "volrend", Factory: NewRestructured,
	})
}
