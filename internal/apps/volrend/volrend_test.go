package volrend

import (
	"testing"

	"swsm/internal/apps"
)

func TestPhantomStructure(t *testing.T) {
	v := build(apps.Base, false)
	// Outside the head: air.
	if d := v.phantom(0, 0, 0); d != 0 {
		t.Fatalf("corner density = %d, want 0 (air)", d)
	}
	// Center: brain tissue, mid density.
	c := v.vol / 2
	if d := v.phantom(c, c, c); d < 40 || d > 140 {
		t.Fatalf("center density = %d, want brain range", d)
	}
	// Somewhere on the shell there must be bone (density 230).
	bone := false
	for x := 0; x < v.vol; x++ {
		if v.phantom(x, c, c) == 230 {
			bone = true
			break
		}
	}
	if !bone {
		t.Fatal("no skull found along the midline")
	}
}

func TestRefRayDeterministicAndBounded(t *testing.T) {
	v := build(apps.Tiny, false)
	v.density = make([]uint8, v.vol*v.vol*v.vol)
	for z := 0; z < v.vol; z++ {
		for y := 0; y < v.vol; y++ {
			for x := 0; x < v.vol; x++ {
				v.density[v.voxIdx(x, y, z)] = v.phantom(x, y, z)
			}
		}
	}
	for y := 0; y < v.h; y++ {
		for x := 0; x < v.w; x++ {
			a := v.refRay(x, y)
			b := v.refRay(x, y)
			if a != b {
				t.Fatalf("refRay nondeterministic at (%d,%d)", x, y)
			}
			if a > 255 {
				t.Fatalf("pixel value %d out of range", a)
			}
		}
	}
}

func TestRestructuredImageRowsPageAligned(t *testing.T) {
	v := build(apps.Base, true)
	if v.rest != true {
		t.Fatal("variant flag")
	}
	// rowStride set at Setup; emulate.
	v.rowStride = 4096 / 4
	if v.imgIdx(0, 1)*4%4096 != 0 {
		t.Fatal("restructured image rows not page aligned")
	}
}
