// Package litmus generates small, seeded, deterministic multi-threaded
// load/store/lock/barrier programs over a compact shared array — the
// randomized workload suite the consistency checker runs against.  A
// program is a plain apps.Instance, so litmus runs flow through the
// harness (memoization, tracing, fault injection) and all protocols
// unmodified.
//
// Determinism guarantees: Generate is a pure function of (seed, procs,
// scale) — the same arguments always yield the same Program, on any
// host, in any process.  The structural layout (slot count, stride,
// lock count) is drawn from the seed before any per-thread choices, so
// it does not vary with the processor count.  Programs are barrier-
// uniform (every thread crosses the same barriers in the same order)
// and lock-balanced (acquire/release strictly paired, never nested), so
// they cannot deadlock by construction.
package litmus

import (
	"fmt"
	"strings"

	"swsm/internal/apps"
	"swsm/internal/core"
	"swsm/internal/mem"
)

// OpKind is one litmus operation type.
type OpKind uint8

const (
	OpLoad OpKind = iota
	OpStore
	OpAcquire
	OpRelease
	OpBarrier
	OpCompute
)

// Op is one operation of a litmus thread.
type Op struct {
	Kind OpKind
	// Slot indexes the shared array (loads and stores).
	Slot int
	// Val is the stored value; unique per program so the checker can
	// attribute every observed value to exactly one store.
	Val uint32
	// Lock names the lock (acquire/release).
	Lock int
	// Bar names the barrier (monotone per thread).
	Bar int
	// Cycles is pure compute time (OpCompute), which desynchronizes the
	// threads' relative progress.
	Cycles int64
}

// Program is one generated litmus test.  It implements apps.Instance
// directly, so a shrunk variant can be run through the harness without
// registry involvement.
type Program struct {
	Seed  uint64
	Procs int
	Slots int
	Locks int
	// StrideWords spaces consecutive slots (1 = packed in one page,
	// 16 = one cache line each, 1024 = one page each), picked from the
	// seed to vary false-sharing and invalidation granularity.
	StrideWords int
	Threads     [][]Op

	slotArr apps.U32
	doneArr apps.U32
}

// donePad spreads per-proc completion counters one cache line apart.
const donePad = 16

// splitmix64, the same generator internal/fault uses: every draw is one
// finalizer step of a counter, so program structure is a pure function
// of the seed.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// initVal is slot s's initialization value (distinct from every store).
func initVal(s int) uint32 { return 0xA0000000 | uint32(s) }

// storeVal makes the n-th store by proc globally unique.
func storeVal(proc int, n uint32) uint32 { return uint32(proc+1)<<20 | n }

// opsPerPhase is the mean phase length at each scale.
func opsPerPhase(s apps.Scale) int {
	switch s {
	case apps.Base:
		return 16
	case apps.Large:
		return 40
	}
	return 6
}

// Generate builds the litmus program for (seed, procs, scale).
func Generate(seed uint64, procs int, scale apps.Scale) *Program {
	r := rng(seed)
	// Layout first, from the seed alone (see package doc).
	p := &Program{
		Seed:        seed,
		Procs:       procs,
		Slots:       4 + r.intn(12),
		Locks:       1 + r.intn(3),
		StrideWords: []int{1, 16, 1024}[r.intn(3)],
	}
	phases := 2 + r.intn(3)
	mean := opsPerPhase(scale)
	seq := make([]uint32, procs)
	load := func(ops []Op) []Op {
		return append(ops, Op{Kind: OpLoad, Slot: r.intn(p.Slots)})
	}
	store := func(ops []Op, proc int) []Op {
		seq[proc]++
		return append(ops, Op{Kind: OpStore, Slot: r.intn(p.Slots), Val: storeVal(proc, seq[proc])})
	}
	for proc := 0; proc < procs; proc++ {
		var ops []Op
		for ph := 0; ph < phases; ph++ {
			n := mean/2 + 1 + r.intn(mean)
			for i := 0; i < n; i++ {
				switch roll := r.intn(100); {
				case roll < 35:
					ops = load(ops)
				case roll < 60:
					ops = store(ops, proc)
				case roll < 80:
					l := r.intn(p.Locks)
					ops = append(ops, Op{Kind: OpAcquire, Lock: l})
					for j, inner := 0, 1+r.intn(3); j < inner; j++ {
						if r.intn(2) == 0 {
							ops = load(ops)
						} else {
							ops = store(ops, proc)
						}
					}
					ops = append(ops, Op{Kind: OpRelease, Lock: l})
				default:
					ops = append(ops, Op{Kind: OpCompute, Cycles: int64(1 + r.intn(300))})
				}
			}
			ops = append(ops, Op{Kind: OpBarrier, Bar: ph})
		}
		p.Threads = append(p.Threads, ops)
	}
	return p
}

// --- apps.Instance ---

func (p *Program) Name() string { return Name(p.Seed) }

// MemBytes bounds the address space any layout needs: worst case is 16
// page-strided slots plus the counters page and the unused page 0.
func (p *Program) MemBytes() int64 { return 256 << 10 }

// SCBlock is the fine-grained default granularity.
func (p *Program) SCBlock() int { return 64 }

// Restructured reports false: litmus programs have no SVM restructuring.
func (p *Program) Restructured() bool { return false }

func (p *Program) slotIndex(s int) int { return s * p.StrideWords }

// Setup allocates the slot array (homes distributed round-robin by
// slot) and the per-proc completion counters.
func (p *Program) Setup(m *core.Machine) {
	p.slotArr = apps.U32{Base: m.AllocPage(int64(p.Slots*p.StrideWords) * 4)}
	p.doneArr = apps.U32{Base: m.AllocPage(int64(p.Procs*donePad) * 4)}
	for s := 0; s < p.Slots; s++ {
		p.slotArr.Init(m, p.slotIndex(s), initVal(s))
		m.Place(p.slotArr.Addr(p.slotIndex(s)), 4, s%p.Procs)
	}
	for i := 0; i < p.Procs; i++ {
		p.doneArr.Init(m, i*donePad, 0)
	}
	m.Place(p.doneArr.Addr(0), int64(p.Procs*donePad)*4, 0)
}

// Run executes this thread's operation list.
func (p *Program) Run(t *core.Thread) {
	if t.NumProcs() != p.Procs {
		panic(fmt.Sprintf("litmus: program generated for %d procs run on %d", p.Procs, t.NumProcs()))
	}
	me := t.Proc()
	for _, op := range p.Threads[me] {
		switch op.Kind {
		case OpLoad:
			p.slotArr.Get(t, p.slotIndex(op.Slot))
		case OpStore:
			p.slotArr.Set(t, p.slotIndex(op.Slot), op.Val)
		case OpAcquire:
			t.Acquire(op.Lock)
		case OpRelease:
			t.Release(op.Lock)
		case OpBarrier:
			t.Barrier(op.Bar)
		case OpCompute:
			t.Compute(op.Cycles)
		}
	}
	p.doneArr.Set(t, me*donePad, uint32(len(p.Threads[me])))
}

// Verify checks the weak end-to-end oracle: every slot's final value
// must be its init value or one of the values some thread stored there,
// and every thread must have executed its whole op list.  (The
// consistency checker is the strong oracle; this one catches lost
// writes and wild stores even on unchecked runs.)
func (p *Program) Verify(m *core.Machine) error {
	for s := 0; s < p.Slots; s++ {
		got := p.slotArr.Result(m, p.slotIndex(s))
		if got == initVal(s) {
			continue
		}
		ok := false
		for _, ops := range p.Threads {
			for _, op := range ops {
				if op.Kind == OpStore && op.Slot == s && op.Val == got {
					ok = true
				}
			}
		}
		if !ok {
			return fmt.Errorf("litmus %d: slot %d finished 0x%x, which no thread stored", p.Seed, s, got)
		}
	}
	for i := 0; i < p.Procs; i++ {
		want := uint32(len(p.Threads[i]))
		if got := p.doneArr.Result(m, i*donePad); got != want {
			return fmt.Errorf("litmus %d: proc %d completed %d of %d ops", p.Seed, i, got, want)
		}
	}
	return nil
}

var _ apps.Instance = (*Program)(nil)

// Ops counts the operations across all threads.
func (p *Program) Ops() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// String renders the program as a readable reproducer.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "litmus seed=%d procs=%d slots=%d stride=%dw locks=%d (%d ops)\n",
		p.Seed, p.Procs, p.Slots, p.StrideWords, p.Locks, p.Ops())
	for i, ops := range p.Threads {
		fmt.Fprintf(&b, "  P%d:", i)
		for _, op := range ops {
			b.WriteString(" ")
			b.WriteString(op.String())
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

func (o Op) String() string {
	switch o.Kind {
	case OpLoad:
		return fmt.Sprintf("ld(s%d)", o.Slot)
	case OpStore:
		return fmt.Sprintf("st(s%d=0x%x)", o.Slot, o.Val)
	case OpAcquire:
		return fmt.Sprintf("acq(L%d)", o.Lock)
	case OpRelease:
		return fmt.Sprintf("rel(L%d)", o.Lock)
	case OpBarrier:
		return fmt.Sprintf("bar(%d)", o.Bar)
	case OpCompute:
		return fmt.Sprintf("cmp(%d)", o.Cycles)
	}
	return "?"
}

// --- registry integration ---

// Name is the registry key for a seed.
func Name(seed uint64) string { return fmt.Sprintf("litmus-%d", seed) }

// Ensure registers the seed's litmus app (idempotently) and returns its
// registry name.  The instance generates its program lazily at Setup,
// when the machine's processor count is known.
func Ensure(seed uint64) string {
	name := Name(seed)
	apps.EnsureRegistered(apps.Info{
		Name:     name,
		BaseSize: "seeded random load/store/lock/barrier program",
		Factory: func(s apps.Scale) apps.Instance {
			return &lazyProgram{seed: seed, scale: s}
		},
	})
	return name
}

// lazyProgram defers generation to Setup so the same registered app
// adapts to whatever machine size the spec asks for.
type lazyProgram struct {
	seed  uint64
	scale apps.Scale
	*Program
}

func (l *lazyProgram) Name() string { return Name(l.seed) }

func (l *lazyProgram) MemBytes() int64 { return 256 << 10 }

func (l *lazyProgram) SCBlock() int { return 64 }

func (l *lazyProgram) Restructured() bool { return false }

func (l *lazyProgram) Setup(m *core.Machine) {
	l.Program = Generate(l.seed, m.Cfg.Procs, l.scale)
	l.Program.Setup(m)
}

var _ apps.Instance = (*lazyProgram)(nil)

// Pages reports how many pages the slot array spans (diagnostics).
func (p *Program) Pages() int {
	return int((int64(p.Slots*p.StrideWords)*4 + mem.PageSize - 1) / mem.PageSize)
}
