package litmus

import (
	"reflect"
	"strings"
	"testing"

	"swsm/internal/apps"
	"swsm/internal/core"
	"swsm/internal/proto/ideal"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 4, apps.Tiny)
	b := Generate(42, 4, apps.Tiny)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different programs")
	}
	c := Generate(43, 4, apps.Tiny)
	if reflect.DeepEqual(a.Threads, c.Threads) {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestLayoutIndependentOfProcs(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(seed, 2, apps.Tiny)
		b := Generate(seed, 8, apps.Tiny)
		if a.Slots != b.Slots || a.StrideWords != b.StrideWords || a.Locks != b.Locks {
			t.Fatalf("seed %d: layout varies with procs: %d/%d/%d vs %d/%d/%d",
				seed, a.Slots, a.StrideWords, a.Locks, b.Slots, b.StrideWords, b.Locks)
		}
	}
}

// TestProgramStructure pins the properties that make generated programs
// deadlock-free and checkable: barrier uniformity, strict lock pairing
// without nesting, globally unique store values, in-range slots.
func TestProgramStructure(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p := Generate(seed, 4, apps.Base)
		var barRef []int
		vals := map[uint32]bool{}
		for ti, ops := range p.Threads {
			var bars []int
			held := -1
			for _, op := range ops {
				switch op.Kind {
				case OpBarrier:
					if held != -1 {
						t.Fatalf("seed %d P%d: barrier inside critical section", seed, ti)
					}
					bars = append(bars, op.Bar)
				case OpAcquire:
					if held != -1 {
						t.Fatalf("seed %d P%d: nested acquire", seed, ti)
					}
					held = op.Lock
				case OpRelease:
					if held != op.Lock {
						t.Fatalf("seed %d P%d: release of %d while holding %d", seed, ti, op.Lock, held)
					}
					held = -1
				case OpStore:
					if vals[op.Val] {
						t.Fatalf("seed %d: store value 0x%x not unique", seed, op.Val)
					}
					vals[op.Val] = true
					fallthrough
				case OpLoad:
					if op.Slot < 0 || op.Slot >= p.Slots {
						t.Fatalf("seed %d: slot %d out of range", seed, op.Slot)
					}
				}
			}
			if held != -1 {
				t.Fatalf("seed %d P%d: lock %d never released", seed, ti, held)
			}
			if ti == 0 {
				barRef = bars
			} else if !reflect.DeepEqual(bars, barRef) {
				t.Fatalf("seed %d: thread %d barrier sequence %v != %v", seed, ti, bars, barRef)
			}
		}
	}
}

// TestProgramRunsOnIdeal executes a batch of seeds on the ideal machine
// and checks the weak oracle holds.
func TestProgramRunsOnIdeal(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := Generate(seed, 4, apps.Tiny)
		cfg := core.DefaultConfig()
		cfg.Procs = 4
		cfg.SharedMem = true
		cfg.MemLimit = p.MemBytes()
		m := core.NewMachine(cfg, ideal.New())
		p.Setup(m)
		if _, err := m.Run(p.Run); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestShrinkToEmpty(t *testing.T) {
	p := Generate(7, 4, apps.Base)
	min := Shrink(p, func(*Program) bool { return true })
	if n := min.Ops(); n != 0 {
		t.Fatalf("always-failing predicate should shrink to nothing, kept %d ops:\n%s", n, min)
	}
}

// TestShrinkPreservesPredicate shrinks against a structural predicate
// and verifies the result is 1-minimal for it: the predicate holds, and
// structure invariants survived shrinking.
func TestShrinkPreservesPredicate(t *testing.T) {
	p := Generate(9, 4, apps.Base)
	// Find some store to anchor on.
	var anchor uint32
	for _, op := range p.Threads[2] {
		if op.Kind == OpStore {
			anchor = op.Val
			break
		}
	}
	if anchor == 0 {
		t.Skip("seed 9 thread 2 has no store")
	}
	keep := func(q *Program) bool {
		for _, ops := range q.Threads {
			for _, op := range ops {
				if op.Kind == OpStore && op.Val == anchor {
					return true
				}
			}
		}
		return false
	}
	min := Shrink(p, keep)
	if !keep(min) {
		t.Fatal("shrink lost the predicate")
	}
	if min.Ops() != 1 {
		t.Fatalf("want exactly the anchored store left, got %d ops:\n%s", min.Ops(), min)
	}
	if !strings.Contains(min.String(), "st(") {
		t.Fatalf("reproducer should print the store:\n%s", min)
	}
}

func TestEnsureIdempotent(t *testing.T) {
	n1 := Ensure(123456)
	n2 := Ensure(123456)
	if n1 != n2 {
		t.Fatalf("Ensure not stable: %q vs %q", n1, n2)
	}
	inst, err := apps.New(n1, apps.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name() != n1 {
		t.Fatalf("instance name %q, registry name %q", inst.Name(), n1)
	}
}
