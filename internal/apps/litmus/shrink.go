package litmus

// Shrink minimizes a failing program by delta debugging: it repeatedly
// tries structure-preserving removals — emptying a thread of everything
// but its barriers, deleting a whole barrier (from every thread, so the
// program stays barrier-uniform), deleting an acquire/release pair, and
// deleting single data/compute ops — keeping a removal whenever
// keep(candidate) still reports the failure, until no removal survives.
// keep must be a pure predicate (typically: "re-run under the same spec
// and the checker still reports a violation").
//
// The result is deterministic for a deterministic keep: moves are tried
// in a fixed order, largest first.
func Shrink(p *Program, keep func(*Program) bool) *Program {
	cur := p.clone()
	for {
		improved := false
		// 1. Empty one thread's data ops (barriers stay: removing them
		// unilaterally would deadlock the others).
		for t := range cur.Threads {
			cand := cur.clone()
			var kept []Op
			for _, op := range cand.Threads[t] {
				if op.Kind == OpBarrier {
					kept = append(kept, op)
				}
			}
			if len(kept) == len(cand.Threads[t]) {
				continue
			}
			cand.Threads[t] = kept
			if keep(cand) {
				cur = cand
				improved = true
			}
		}
		// 2. Remove one barrier id everywhere.
		for _, bar := range cur.barIDs() {
			cand := cur.clone()
			for t := range cand.Threads {
				var kept []Op
				for _, op := range cand.Threads[t] {
					if op.Kind == OpBarrier && op.Bar == bar {
						continue
					}
					kept = append(kept, op)
				}
				cand.Threads[t] = kept
			}
			if keep(cand) {
				cur = cand
				improved = true
			}
		}
		// 3. Remove one acquire/release pair (the body stays).
		for t := range cur.Threads {
			for i := 0; i < len(cur.Threads[t]); i++ {
				if cur.Threads[t][i].Kind != OpAcquire {
					continue
				}
				j := matchingRelease(cur.Threads[t], i)
				if j < 0 {
					continue
				}
				cand := cur.clone()
				ops := cand.Threads[t]
				ops = append(ops[:j], ops[j+1:]...)
				ops = append(ops[:i], ops[i+1:]...)
				cand.Threads[t] = ops
				if keep(cand) {
					cur = cand
					improved = true
					break // indices shifted; rescan this thread next round
				}
			}
		}
		// 4. Remove single loads/stores/computes.
		for t := range cur.Threads {
			for i := 0; i < len(cur.Threads[t]); i++ {
				switch cur.Threads[t][i].Kind {
				case OpLoad, OpStore, OpCompute:
				default:
					continue
				}
				cand := cur.clone()
				ops := cand.Threads[t]
				cand.Threads[t] = append(ops[:i], ops[i+1:]...)
				if keep(cand) {
					cur = cand
					improved = true
					i-- // the next op slid into slot i
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// matchingRelease finds the release paired with the acquire at i
// (litmus critical sections never nest, but scan defensively).
func matchingRelease(ops []Op, i int) int {
	lock := ops[i].Lock
	for j := i + 1; j < len(ops); j++ {
		if ops[j].Kind == OpAcquire && ops[j].Lock == lock {
			return -1 // malformed: nested same-lock acquire
		}
		if ops[j].Kind == OpRelease && ops[j].Lock == lock {
			return j
		}
	}
	return -1
}

// Clone returns a deep copy of the program, so shrink candidates and
// repeated harness runs never share op slices.
func (p *Program) Clone() *Program { return p.clone() }

func (p *Program) clone() *Program {
	q := *p
	q.Threads = make([][]Op, len(p.Threads))
	for i, ops := range p.Threads {
		q.Threads[i] = append([]Op(nil), ops...)
	}
	return &q
}

func (p *Program) barIDs() []int {
	seen := map[int]bool{}
	var out []int
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind == OpBarrier && !seen[op.Bar] {
				seen[op.Bar] = true
				out = append(out, op.Bar)
			}
		}
	}
	return out
}
