// Package barnes implements the Barnes-Hut N-body application (Table 1:
// 16K particles in the paper; scaled).  Two variants reproduce the
// paper's application-layer study:
//
//   - "barnes" (original): all processors insert their bodies into one
//     global octree under per-cell locks — the lock-heavy, fine-grained
//     tree-building phase that makes original Barnes the paper's worst
//     lock-serialization case for HLRC (each critical section incurs
//     several page faults).
//   - "barnes-spatial" (restructured): space is pre-partitioned into
//     per-processor slabs; each processor builds its slab subtree with
//     NO locks and computes its subtree's centers of mass in parallel,
//     trading load balance for drastically less synchronization — the
//     one case in the paper where restructuring helps HLRC beyond SC.
//
// The octree produced by the subdivision rule is canonical (independent
// of insertion order), so a sequential golden model reproduces the
// parallel computation bit-for-bit and Verify can compare positions
// exactly.
package barnes

import (
	"math"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const (
	flopCycles = 2
	dt         = 0.01
	theta      = 0.6
	eps2       = 0.05

	bodyBytes = 128
	nodeBytes = 256

	// Node field offsets.
	nCenter   = 0  // 3 x f64
	nHalf     = 24 // f64
	nMass     = 32 // f64
	nCom      = 40 // 3 x f64
	nChildren = 64 // 8 x i32: 0 empty, >0 node idx+1, <0 -(body idx+1)

	// Body field offsets.
	bPos   = 0
	bVel   = 24
	bForce = 48
	bMass  = 72

	allocLock    = 999
	cellLockBase = 1000
	numCellLocks = 256
)

// Barnes is one instance (either variant).
type Barnes struct {
	name    string
	spatial bool
	n       int
	steps   int
	maxNode int

	bodies   int64
	nodes    int64
	nextNode apps.I32 // shared allocation cursor (original variant)
	rootHalf float64
	rootCtr  vec3

	init     []body
	slabs    []float64 // spatial variant: x-axis slab boundaries, len procs+1
	slabCtr  []vec3    // spatial variant: tight bounding cube per slab
	slabHalf []float64
	procs    int
}

type vec3 struct{ x, y, z float64 }

type body struct {
	pos, vel vec3
	mass     float64
}

// New builds the original variant.
func New(s apps.Scale) apps.Instance { return build(s, false) }

// NewSpatial builds the restructured variant.
func NewSpatial(s apps.Scale) apps.Instance { return build(s, true) }

func build(s apps.Scale, spatial bool) *Barnes {
	n, steps := 512, 2
	switch s {
	case apps.Tiny:
		n, steps = 64, 2
	case apps.Large:
		n, steps = 1024, 3
	}
	name := "barnes"
	if spatial {
		name = "barnes-spatial"
	}
	return &Barnes{name: name, spatial: spatial, n: n, steps: steps, maxNode: 8 * n}
}

// Name implements apps.Instance.
func (b *Barnes) Name() string { return b.name }

// MemBytes implements apps.Instance.
func (b *Barnes) MemBytes() int64 {
	return int64(b.n)*bodyBytes + int64(b.maxNode)*nodeBytes + 4<<20
}

// SCBlock implements apps.Instance: the best-performing granularity for
// the tree data is the 256 B node record (the paper's methodology picks
// the best power of two per application).
func (b *Barnes) SCBlock() int { return 256 }

// Restructured implements apps.Instance.
func (b *Barnes) Restructured() bool { return b.spatial }

func (b *Barnes) bodyAddr(i int, f int64) int64 { return b.bodies + int64(i)*bodyBytes + f }
func (b *Barnes) nodeAddr(i int, f int64) int64 { return b.nodes + int64(i)*nodeBytes + f }

// initialBodies is a deterministic clustered distribution.
func initialBodies(n int) []body {
	out := make([]body, n)
	// Two interacting clusters on a jittered shell layout.
	for i := range out {
		fi := float64(i)
		cluster := i % 2
		ang1 := fi * 2.399963 // golden angle
		ang2 := fi * 0.71
		r := 1.0 + 0.6*math.Sin(fi*1.3)
		c := vec3{3, 3, 3}
		if cluster == 1 {
			c = vec3{7, 6, 5}
		}
		out[i] = body{
			pos: vec3{
				c.x + r*math.Cos(ang1)*math.Sin(ang2),
				c.y + r*math.Sin(ang1)*math.Sin(ang2),
				c.z + r*math.Cos(ang2),
			},
			vel:  vec3{0.02 * math.Sin(fi), 0.02 * math.Cos(fi), 0},
			mass: 1.0 + 0.5*math.Sin(fi*0.9),
		}
	}
	return out
}

// Setup allocates bodies and the node pool.
func (b *Barnes) Setup(m *core.Machine) {
	b.procs = m.Cfg.Procs
	b.bodies = m.AllocPage(int64(b.n) * bodyBytes)
	b.nodes = m.AllocPage(int64(b.maxNode) * nodeBytes)
	b.nextNode = apps.I32{Base: m.AllocPage(4096)}
	b.init = initialBodies(b.n)

	// Root cell bounds the whole motion comfortably.
	b.rootCtr = vec3{5, 5, 5}
	b.rootHalf = 8

	for i, bd := range b.init {
		m.InitF64(b.bodyAddr(i, bPos), bd.pos.x)
		m.InitF64(b.bodyAddr(i, bPos+8), bd.pos.y)
		m.InitF64(b.bodyAddr(i, bPos+16), bd.pos.z)
		m.InitF64(b.bodyAddr(i, bVel), bd.vel.x)
		m.InitF64(b.bodyAddr(i, bVel+8), bd.vel.y)
		m.InitF64(b.bodyAddr(i, bVel+16), bd.vel.z)
		m.InitF64(b.bodyAddr(i, bMass), bd.mass)
	}

	if b.spatial {
		// Slab boundaries on x by quantiles of the initial distribution
		// (ownership is static across the short run).
		xs := make([]float64, b.n)
		for i, bd := range b.init {
			xs[i] = bd.pos.x
		}
		sortFloats(xs)
		b.slabs = make([]float64, b.procs+1)
		b.slabs[0] = math.Inf(-1)
		for p := 1; p < b.procs; p++ {
			b.slabs[p] = xs[p*b.n/b.procs]
		}
		b.slabs[b.procs] = math.Inf(1)
		// Tight bounding cube per slab (with margin for motion): a loose
		// cube would never pass the opening criterion and force deep
		// traversals of every slab subtree.
		b.slabCtr = make([]vec3, b.procs)
		b.slabHalf = make([]float64, b.procs)
		for p := 0; p < b.procs; p++ {
			lo := vec3{math.Inf(1), math.Inf(1), math.Inf(1)}
			hi := vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
			any := false
			for i, bd := range b.init {
				if b.slabOf(bd.pos.x) != p {
					_ = i
					continue
				}
				any = true
				lo.x = math.Min(lo.x, bd.pos.x)
				lo.y = math.Min(lo.y, bd.pos.y)
				lo.z = math.Min(lo.z, bd.pos.z)
				hi.x = math.Max(hi.x, bd.pos.x)
				hi.y = math.Max(hi.y, bd.pos.y)
				hi.z = math.Max(hi.z, bd.pos.z)
			}
			if !any {
				b.slabCtr[p] = b.rootCtr
				b.slabHalf[p] = b.rootHalf
				continue
			}
			ctr := vec3{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2, (lo.z + hi.z) / 2}
			half := math.Max(hi.x-lo.x, math.Max(hi.y-lo.y, hi.z-lo.z)) / 2
			b.slabCtr[p] = ctr
			b.slabHalf[p] = half*1.25 + 0.5
		}
	}

	// Place each processor's bodies with it (original: blocked
	// ownership; spatial: slab ownership).
	for i := 0; i < b.n; i++ {
		m.Place(b.bodies+int64(i)*bodyBytes, bodyBytes, b.ownerOf(i))
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// ownerOf maps a body to its owning processor.
func (b *Barnes) ownerOf(i int) int {
	if !b.spatial {
		for id := 0; id < b.procs; id++ {
			lo, hi := apps.BlockRange(b.n, b.procs, id)
			if i >= lo && i < hi {
				return id
			}
		}
		return b.procs - 1
	}
	return b.slabOf(b.init[i].pos.x)
}

// slabOf maps an x coordinate to its slab.
func (b *Barnes) slabOf(x float64) int {
	for p := 0; p < b.procs; p++ {
		if x >= b.slabs[p] && x < b.slabs[p+1] {
			return p
		}
	}
	return b.procs - 1
}

// ownedBodies lists this processor's bodies (either variant).
func (b *Barnes) ownedBodies(id int) []int {
	var out []int
	for i := 0; i < b.n; i++ {
		if b.ownerOf(i) == id {
			out = append(out, i)
		}
	}
	return out
}

// --- simulated-machine octree operations ---

// initNode writes a fresh cell's geometry and clears its children.
func (b *Barnes) initNode(t *core.Thread, idx int, ctr vec3, half float64) {
	t.StoreF64(b.nodeAddr(idx, nCenter), ctr.x)
	t.StoreF64(b.nodeAddr(idx, nCenter+8), ctr.y)
	t.StoreF64(b.nodeAddr(idx, nCenter+16), ctr.z)
	t.StoreF64(b.nodeAddr(idx, nHalf), half)
	for c := 0; c < 8; c++ {
		t.StoreI32(b.nodeAddr(idx, nChildren+int64(4*c)), 0)
	}
}

// octantOf picks the child octant of pos within a cell centered at ctr.
func octantOf(ctr, pos vec3) int {
	oct := 0
	if pos.x >= ctr.x {
		oct |= 1
	}
	if pos.y >= ctr.y {
		oct |= 2
	}
	if pos.z >= ctr.z {
		oct |= 4
	}
	return oct
}

// childCell computes a child cell's center and half-size.
func childCell(ctr vec3, half float64, oct int) (vec3, float64) {
	h := half / 2
	c := ctr
	if oct&1 != 0 {
		c.x += h
	} else {
		c.x -= h
	}
	if oct&2 != 0 {
		c.y += h
	} else {
		c.y -= h
	}
	if oct&4 != 0 {
		c.z += h
	} else {
		c.z -= h
	}
	return c, h
}

// loadBodyPos reads a body's position through the protocol.
func (b *Barnes) loadBodyPos(t *core.Thread, i int) vec3 {
	return vec3{
		t.LoadF64(b.bodyAddr(i, bPos)),
		t.LoadF64(b.bodyAddr(i, bPos+8)),
		t.LoadF64(b.bodyAddr(i, bPos+16)),
	}
}

// loadNodeGeom reads a cell's center and half-size.
func (b *Barnes) loadNodeGeom(t *core.Thread, idx int) (vec3, float64) {
	return vec3{
		t.LoadF64(b.nodeAddr(idx, nCenter)),
		t.LoadF64(b.nodeAddr(idx, nCenter+8)),
		t.LoadF64(b.nodeAddr(idx, nCenter+16)),
	}, t.LoadF64(b.nodeAddr(idx, nHalf))
}

func cellLock(idx int) int { return cellLockBase + idx%numCellLocks }

// allocNodeShared bumps the shared node cursor under the alloc lock
// (original variant).
func (b *Barnes) allocNodeShared(t *core.Thread) int {
	t.Acquire(allocLock)
	idx := int(b.nextNode.Get(t, 0))
	b.nextNode.Set(t, 0, int32(idx+1))
	t.Release(allocLock)
	if idx >= b.maxNode {
		panic("barnes: node pool exhausted")
	}
	return idx
}

// insertLocked inserts body i into the global tree under per-cell locks
// (original variant).  The subtree grown during a subdivision is only
// reachable through the locked parent, so chain nodes need no locks of
// their own.
func (b *Barnes) insertLocked(t *core.Thread, alloc func() int, root int, i int) {
	pos := b.loadBodyPos(t, i)
	cur := root
	for {
		t.Acquire(cellLock(cur))
		ctr, half := b.loadNodeGeom(t, cur)
		oct := octantOf(ctr, pos)
		chAddr := b.nodeAddr(cur, nChildren+int64(4*oct))
		ch := t.LoadI32(chAddr)
		if ch == 0 {
			t.StoreI32(chAddr, int32(-(i + 1)))
			t.Release(cellLock(cur))
			return
		}
		if ch > 0 {
			t.Release(cellLock(cur))
			cur = int(ch) - 1
			continue
		}
		// Collision with an existing body: subdivide until separated.
		e := int(-ch) - 1
		epos := b.loadBodyPos(t, e)
		parentAddr := chAddr
		cctr, chalf := childCell(ctr, half, oct)
		for {
			nn := alloc()
			b.initNode(t, nn, cctr, chalf)
			t.StoreI32(parentAddr, int32(nn+1))
			octE := octantOf(cctr, epos)
			octB := octantOf(cctr, pos)
			if octE != octB {
				t.StoreI32(b.nodeAddr(nn, nChildren+int64(4*octE)), int32(-(e + 1)))
				t.StoreI32(b.nodeAddr(nn, nChildren+int64(4*octB)), int32(-(i + 1)))
				t.Release(cellLock(cur))
				return
			}
			parentAddr = b.nodeAddr(nn, nChildren+int64(4*octE))
			cctr, chalf = childCell(cctr, chalf, octE)
			t.Compute(10 * flopCycles)
		}
	}
}

// computeCOM fills mass and center-of-mass bottom-up for the subtree at
// idx, returning (mass, com).  Child order is fixed, so the float
// summation order is canonical.
func (b *Barnes) computeCOM(t *core.Thread, idx int) (float64, vec3) {
	var mass float64
	var mx, my, mz float64
	for c := 0; c < 8; c++ {
		ch := t.LoadI32(b.nodeAddr(idx, nChildren+int64(4*c)))
		if ch == 0 {
			continue
		}
		var cm float64
		var cp vec3
		if ch > 0 {
			cm, cp = b.computeCOM(t, int(ch)-1)
		} else {
			bi := int(-ch) - 1
			cm = t.LoadF64(b.bodyAddr(bi, bMass))
			cp = b.loadBodyPos(t, bi)
		}
		mass += cm
		mx += cm * cp.x
		my += cm * cp.y
		mz += cm * cp.z
		t.Compute(8 * flopCycles)
	}
	com := vec3{mx / mass, my / mass, mz / mass}
	t.StoreF64(b.nodeAddr(idx, nMass), mass)
	t.StoreF64(b.nodeAddr(idx, nCom), com.x)
	t.StoreF64(b.nodeAddr(idx, nCom+8), com.y)
	t.StoreF64(b.nodeAddr(idx, nCom+16), com.z)
	return mass, com
}

// forceOn computes the Barnes-Hut force on body i by tree traversal.
func (b *Barnes) forceOn(t *core.Thread, root, i int) vec3 {
	pos := b.loadBodyPos(t, i)
	var f vec3
	var walk func(idx int)
	walk = func(idx int) {
		half := t.LoadF64(b.nodeAddr(idx, nHalf))
		mass := t.LoadF64(b.nodeAddr(idx, nMass))
		com := vec3{
			t.LoadF64(b.nodeAddr(idx, nCom)),
			t.LoadF64(b.nodeAddr(idx, nCom+8)),
			t.LoadF64(b.nodeAddr(idx, nCom+16)),
		}
		dx, dy, dz := com.x-pos.x, com.y-pos.y, com.z-pos.z
		d2 := dx*dx + dy*dy + dz*dz
		size := 2 * half
		t.Compute(10 * flopCycles)
		if size*size < theta*theta*d2 {
			// Far enough: use the aggregate.
			ir := 1 / math.Sqrt(d2+eps2)
			g := mass * ir * ir * ir
			f.x += g * dx
			f.y += g * dy
			f.z += g * dz
			t.Compute(12 * flopCycles)
			return
		}
		for c := 0; c < 8; c++ {
			ch := t.LoadI32(b.nodeAddr(idx, nChildren+int64(4*c)))
			if ch == 0 {
				continue
			}
			if ch > 0 {
				walk(int(ch) - 1)
				continue
			}
			bj := int(-ch) - 1
			if bj == i {
				continue
			}
			bp := b.loadBodyPos(t, bj)
			bm := t.LoadF64(b.bodyAddr(bj, bMass))
			ddx, ddy, ddz := bp.x-pos.x, bp.y-pos.y, bp.z-pos.z
			dd2 := ddx*ddx + ddy*ddy + ddz*ddz
			ir := 1 / math.Sqrt(dd2+eps2)
			g := bm * ir * ir * ir
			f.x += g * ddx
			f.y += g * ddy
			f.z += g * ddz
			t.Compute(16 * flopCycles)
		}
	}
	walk(root)
	return f
}

// integrate advances owned bodies.
func (b *Barnes) integrate(t *core.Thread, owned []int) {
	for _, i := range owned {
		for f := int64(0); f < 3; f++ {
			v := t.LoadF64(b.bodyAddr(i, bVel+8*f))
			v += dt * t.LoadF64(b.bodyAddr(i, bForce+8*f))
			t.StoreF64(b.bodyAddr(i, bVel+8*f), v)
			x := t.LoadF64(b.bodyAddr(i, bPos+8*f))
			t.StoreF64(b.bodyAddr(i, bPos+8*f), x+dt*v)
		}
		t.Compute(12 * flopCycles)
	}
}

var _ apps.Instance = (*Barnes)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "barnes", BaseSize: "512 bodies, 2 steps", PaperSize: "16K particles",
		InstrumentationPct: 24, Factory: New,
	})
	apps.Register(apps.Info{
		Name: "barnes-spatial", BaseSize: "512 bodies, 2 steps", PaperSize: "16K particles",
		InstrumentationPct: 24, RestructuredOf: "barnes", Factory: NewSpatial,
	})
}
