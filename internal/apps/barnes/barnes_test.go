package barnes

import (
	"math/rand"
	"testing"
)

func TestOctantOf(t *testing.T) {
	ctr := vec3{0, 0, 0}
	cases := []struct {
		pos vec3
		oct int
	}{
		{vec3{-1, -1, -1}, 0},
		{vec3{1, -1, -1}, 1},
		{vec3{-1, 1, -1}, 2},
		{vec3{1, 1, 1}, 7},
		{vec3{0, 0, 0}, 7}, // boundary goes high
	}
	for _, c := range cases {
		if got := octantOf(ctr, c.pos); got != c.oct {
			t.Fatalf("octantOf(%v) = %d, want %d", c.pos, got, c.oct)
		}
	}
}

func TestChildCellGeometry(t *testing.T) {
	ctr, half := vec3{0, 0, 0}, 4.0
	for oct := 0; oct < 8; oct++ {
		c, h := childCell(ctr, half, oct)
		if h != 2 {
			t.Fatalf("child half = %f", h)
		}
		// The child center must be inside the parent and in the right
		// octant.
		if octantOf(ctr, c) != oct {
			t.Fatalf("child %d center %v is in octant %d", oct, c, octantOf(ctr, c))
		}
	}
}

// Canonical tree: insertion order must not change the tree's center of
// mass computation (the property Verify relies on).
func TestTreeShapeCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 64
	pos := make([]vec3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec3{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		mass[i] = 1 + r.Float64()
	}
	build := func(order []int) (float64, vec3) {
		rt := &refTree{}
		root := rt.alloc(vec3{5, 5, 5}, 8)
		for _, i := range order {
			rt.insert(root, pos, i)
		}
		return rt.computeCOM(root, pos, mass)
	}
	fwd := make([]int, n)
	rev := make([]int, n)
	shuf := make([]int, n)
	for i := 0; i < n; i++ {
		fwd[i] = i
		rev[i] = n - 1 - i
		shuf[i] = i
	}
	r.Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	m1, c1 := build(fwd)
	m2, c2 := build(rev)
	m3, c3 := build(shuf)
	if m1 != m2 || m1 != m3 {
		t.Fatalf("masses differ: %v %v %v", m1, m2, m3)
	}
	if c1 != c2 || c1 != c3 {
		t.Fatalf("centers of mass differ: %v %v %v", c1, c2, c3)
	}
}

func TestReferenceMassConservation(t *testing.T) {
	b := build(0, false) // Tiny original
	b.procs = 4
	b.init = initialBodies(b.n)
	b.rootCtr = vec3{5, 5, 5}
	b.rootHalf = 8
	rt := &refTree{}
	root := rt.alloc(b.rootCtr, b.rootHalf)
	pos := make([]vec3, b.n)
	mass := make([]float64, b.n)
	var want float64
	for i, bd := range b.init {
		pos[i], mass[i] = bd.pos, bd.mass
		want += bd.mass
	}
	for i := 0; i < b.n; i++ {
		rt.insert(root, pos, i)
	}
	got, _ := rt.computeCOM(root, pos, mass)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("root mass %f, want %f", got, want)
	}
}

func TestBodiesInsideRootCube(t *testing.T) {
	for _, n := range []int{64, 512} {
		for _, bd := range initialBodies(n) {
			p := bd.pos
			if p.x < -3 || p.x > 13 || p.y < -3 || p.y > 13 || p.z < -3 || p.z > 13 {
				t.Fatalf("body outside root cube: %v", p)
			}
		}
	}
}
