package barnes

import "math"

// Sequential golden model.  It performs bit-identical arithmetic to the
// simulated run: the octree produced by the subdivision rule is
// canonical (independent of insertion order), center-of-mass summation
// follows fixed child order, and force traversal visits children in the
// same order, so final positions must match the simulated machine's
// exactly (protocol bugs show up as large deviations).

type refNode struct {
	ctr      vec3
	half     float64
	mass     float64
	com      vec3
	children [8]int32 // 0 empty, >0 node idx+1, <0 -(body idx+1)
}

type refTree struct {
	nodes []refNode
}

func (rt *refTree) alloc(ctr vec3, half float64) int {
	rt.nodes = append(rt.nodes, refNode{ctr: ctr, half: half})
	return len(rt.nodes) - 1
}

func (rt *refTree) insert(root int, pos []vec3, i int) {
	cur := root
	for {
		n := &rt.nodes[cur]
		oct := octantOf(n.ctr, pos[i])
		ch := n.children[oct]
		if ch == 0 {
			n.children[oct] = int32(-(i + 1))
			return
		}
		if ch > 0 {
			cur = int(ch) - 1
			continue
		}
		e := int(-ch) - 1
		cctr, chalf := childCell(n.ctr, n.half, oct)
		parent, poct := cur, oct
		for {
			nn := rt.alloc(cctr, chalf)
			rt.nodes[parent].children[poct] = int32(nn + 1)
			octE := octantOf(cctr, pos[e])
			octB := octantOf(cctr, pos[i])
			if octE != octB {
				rt.nodes[nn].children[octE] = int32(-(e + 1))
				rt.nodes[nn].children[octB] = int32(-(i + 1))
				return
			}
			parent, poct = nn, octE
			cctr, chalf = childCell(cctr, chalf, octE)
		}
	}
}

func (rt *refTree) computeCOM(idx int, pos []vec3, mass []float64) (float64, vec3) {
	var m, mx, my, mz float64
	for c := 0; c < 8; c++ {
		ch := rt.nodes[idx].children[c]
		if ch == 0 {
			continue
		}
		var cm float64
		var cp vec3
		if ch > 0 {
			cm, cp = rt.computeCOM(int(ch)-1, pos, mass)
		} else {
			bi := int(-ch) - 1
			cm = mass[bi]
			cp = pos[bi]
		}
		m += cm
		mx += cm * cp.x
		my += cm * cp.y
		mz += cm * cp.z
	}
	com := vec3{mx / m, my / m, mz / m}
	rt.nodes[idx].mass = m
	rt.nodes[idx].com = com
	return m, com
}

func (rt *refTree) force(idx, i int, pos []vec3, mass []float64) vec3 {
	var f vec3
	var walk func(idx int)
	walk = func(idx int) {
		n := &rt.nodes[idx]
		dx, dy, dz := n.com.x-pos[i].x, n.com.y-pos[i].y, n.com.z-pos[i].z
		d2 := dx*dx + dy*dy + dz*dz
		size := 2 * n.half
		if size*size < theta*theta*d2 {
			ir := 1 / math.Sqrt(d2+eps2)
			g := n.mass * ir * ir * ir
			f.x += g * dx
			f.y += g * dy
			f.z += g * dz
			return
		}
		for c := 0; c < 8; c++ {
			ch := n.children[c]
			if ch == 0 {
				continue
			}
			if ch > 0 {
				walk(int(ch) - 1)
				continue
			}
			bj := int(-ch) - 1
			if bj == i {
				continue
			}
			ddx, ddy, ddz := pos[bj].x-pos[i].x, pos[bj].y-pos[i].y, pos[bj].z-pos[i].z
			dd2 := ddx*ddx + ddy*ddy + ddz*ddz
			ir := 1 / math.Sqrt(dd2+eps2)
			g := mass[bj] * ir * ir * ir
			f.x += g * ddx
			f.y += g * ddy
			f.z += g * ddz
		}
	}
	walk(idx)
	return f
}

// reference runs the full simulation sequentially and returns the final
// positions.
func (b *Barnes) reference() []vec3 {
	pos := make([]vec3, b.n)
	vel := make([]vec3, b.n)
	mass := make([]float64, b.n)
	for i, bd := range b.init {
		pos[i], vel[i], mass[i] = bd.pos, bd.vel, bd.mass
	}
	force := make([]vec3, b.n)

	for step := 0; step < b.steps; step++ {
		if b.spatial {
			// Per-slab canonical subtrees; ownership from initial
			// positions, as in the simulated run.
			trees := make([]*refTree, b.procs)
			roots := make([]int, b.procs)
			counts := make([]int, b.procs)
			for p := 0; p < b.procs; p++ {
				trees[p] = &refTree{}
				ctr, half := b.slabCube(p)
				roots[p] = trees[p].alloc(ctr, half)
			}
			for i := 0; i < b.n; i++ {
				p := b.ownerOf(i)
				trees[p].insert(roots[p], pos, i)
				counts[p]++
			}
			for p := 0; p < b.procs; p++ {
				if counts[p] > 0 {
					trees[p].computeCOM(roots[p], pos, mass)
				}
			}
			for i := 0; i < b.n; i++ {
				var f vec3
				for p := 0; p < b.procs; p++ {
					if counts[p] == 0 {
						continue
					}
					g := trees[p].force(roots[p], i, pos, mass)
					f.x += g.x
					f.y += g.y
					f.z += g.z
				}
				force[i] = f
			}
		} else {
			rt := &refTree{}
			root := rt.alloc(b.rootCtr, b.rootHalf)
			for i := 0; i < b.n; i++ {
				rt.insert(root, pos, i)
			}
			rt.computeCOM(root, pos, mass)
			for i := 0; i < b.n; i++ {
				force[i] = rt.force(root, i, pos, mass)
			}
		}
		for i := 0; i < b.n; i++ {
			vel[i].x += dt * force[i].x
			vel[i].y += dt * force[i].y
			vel[i].z += dt * force[i].z
			pos[i].x += dt * vel[i].x
			pos[i].y += dt * vel[i].y
			pos[i].z += dt * vel[i].z
		}
	}
	return pos
}
