package barnes

import (
	"fmt"
	"math"

	"swsm/internal/core"
)

// Run executes the timestep loop for either variant.
func (b *Barnes) Run(t *core.Thread) {
	if b.spatial {
		b.runSpatial(t)
	} else {
		b.runOriginal(t)
	}
}

// runOriginal: global tree built under per-cell locks; processor 0 does
// the (cheap) center-of-mass pass.
func (b *Barnes) runOriginal(t *core.Thread) {
	me := t.Proc()
	owned := b.ownedBodies(me)
	bar := 0
	next := func() {
		t.Barrier(bar)
		bar ^= 1
	}
	for step := 0; step < b.steps; step++ {
		if me == 0 {
			b.initNode(t, 0, b.rootCtr, b.rootHalf)
			b.nextNode.Set(t, 0, 1)
		}
		next()
		for _, i := range owned {
			b.insertLocked(t, func() int { return b.allocNodeShared(t) }, 0, i)
		}
		next()
		if me == 0 {
			b.computeCOM(t, 0)
		}
		next()
		for _, i := range owned {
			f := b.forceOn(t, 0, i)
			t.StoreF64(b.bodyAddr(i, bForce), f.x)
			t.StoreF64(b.bodyAddr(i, bForce+8), f.y)
			t.StoreF64(b.bodyAddr(i, bForce+16), f.z)
		}
		next()
		b.integrate(t, owned)
		next()
	}
}

// slabRootIdx returns the node index reserved for processor p's slab
// subtree root.
func (b *Barnes) slabRootIdx(p int) int {
	per := (b.maxNode - 1) / b.procs
	return 1 + p*per
}

// slabCube returns the tight cubic cell used as processor p's subtree
// root (computed from the initial body distribution at Setup).
func (b *Barnes) slabCube(p int) (vec3, float64) {
	return b.slabCtr[p], b.slabHalf[p]
}

// runSpatial: lock-free per-slab subtree build and parallel COM.
func (b *Barnes) runSpatial(t *core.Thread) {
	me := t.Proc()
	owned := b.ownedBodies(me)
	per := (b.maxNode - 1) / b.procs
	bar := 0
	next := func() {
		t.Barrier(bar)
		bar ^= 1
	}
	for step := 0; step < b.steps; step++ {
		// Build own slab subtree without locks.
		root := b.slabRootIdx(me)
		cursor := root + 1
		limit := root + per
		alloc := func() int {
			idx := cursor
			cursor++
			if cursor > limit {
				panic("barnes-spatial: slab node pool exhausted")
			}
			return idx
		}
		ctr, half := b.slabCube(me)
		b.initNode(t, root, ctr, half)
		for _, i := range owned {
			b.insertPlain(t, alloc, root, i)
		}
		// Parallel per-slab centers of mass (empty slabs have no bodies:
		// leave mass zero).
		if len(owned) > 0 {
			b.computeCOM(t, root)
		} else {
			t.StoreF64(b.nodeAddr(root, nMass), 0)
		}
		next()
		// Forces: traverse every slab subtree in processor order.
		for _, i := range owned {
			var f vec3
			for p := 0; p < b.procs; p++ {
				if t.LoadF64(b.nodeAddr(b.slabRootIdx(p), nMass)) == 0 {
					continue
				}
				g := b.forceOn(t, b.slabRootIdx(p), i)
				f.x += g.x
				f.y += g.y
				f.z += g.z
			}
			t.StoreF64(b.bodyAddr(i, bForce), f.x)
			t.StoreF64(b.bodyAddr(i, bForce+8), f.y)
			t.StoreF64(b.bodyAddr(i, bForce+16), f.z)
		}
		next()
		b.integrate(t, owned)
		next()
	}
}

// insertPlain is insertLocked without the locks (single-writer subtree).
func (b *Barnes) insertPlain(t *core.Thread, alloc func() int, root, i int) {
	pos := b.loadBodyPos(t, i)
	cur := root
	for {
		ctr, half := b.loadNodeGeom(t, cur)
		oct := octantOf(ctr, pos)
		chAddr := b.nodeAddr(cur, nChildren+int64(4*oct))
		ch := t.LoadI32(chAddr)
		if ch == 0 {
			t.StoreI32(chAddr, int32(-(i + 1)))
			return
		}
		if ch > 0 {
			cur = int(ch) - 1
			continue
		}
		e := int(-ch) - 1
		epos := b.loadBodyPos(t, e)
		parentAddr := chAddr
		cctr, chalf := childCell(ctr, half, oct)
		for {
			nn := alloc()
			b.initNode(t, nn, cctr, chalf)
			t.StoreI32(parentAddr, int32(nn+1))
			octE := octantOf(cctr, epos)
			octB := octantOf(cctr, pos)
			if octE != octB {
				t.StoreI32(b.nodeAddr(nn, nChildren+int64(4*octE)), int32(-(e + 1)))
				t.StoreI32(b.nodeAddr(nn, nChildren+int64(4*octB)), int32(-(i + 1)))
				return
			}
			parentAddr = b.nodeAddr(nn, nChildren+int64(4*octE))
			cctr, chalf = childCell(cctr, chalf, octE)
			t.Compute(10 * flopCycles)
		}
	}
}

// Verify compares final positions against the sequential golden model,
// which replays the identical canonical-tree computation.
func (b *Barnes) Verify(m *core.Machine) error {
	want := b.reference()
	for i := 0; i < b.n; i++ {
		gx := m.ReadResultF64(b.bodyAddr(i, bPos))
		gy := m.ReadResultF64(b.bodyAddr(i, bPos+8))
		gz := m.ReadResultF64(b.bodyAddr(i, bPos+16))
		w := want[i]
		if math.Abs(gx-w.x) > 1e-9 || math.Abs(gy-w.y) > 1e-9 || math.Abs(gz-w.z) > 1e-9 {
			return fmt.Errorf("%s: body %d at (%.12g,%.12g,%.12g), want (%.12g,%.12g,%.12g)",
				b.name, i, gx, gy, gz, w.x, w.y, w.z)
		}
	}
	return nil
}
