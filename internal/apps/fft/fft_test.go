package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"swsm/internal/apps"
)

// directDFT is the O(n^2) reference.
func directDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			out[k] += in[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestFFTInPlaceMatchesDFT(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 8, 32} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
		}
		got := append([]complex128(nil), in...)
		fftInPlace(got, false)
		want := directDFT(in)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: element %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	in := make([]complex128, 64)
	for i := range in {
		in[i] = complex(r.Float64(), r.Float64())
	}
	a := append([]complex128(nil), in...)
	fftInPlace(a, false)
	fftInPlace(a, true)
	for i := range a {
		if cmplx.Abs(a[i]-in[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d", i)
		}
	}
}

func TestSixStepReferenceIsDFT(t *testing.T) {
	f := New(apps.Tiny).(*FFT)
	f.p = 4
	f.bs = f.rn / f.p
	r := rand.New(rand.NewSource(5))
	f.input = make([]complex128, f.n)
	for i := range f.input {
		f.input[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
	}
	got := f.sixStepReference()
	want := directDFT(f.input)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("six-step != DFT at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPatchIndexBijective(t *testing.T) {
	f := &FFT{n: 256, rn: 16, p: 4, bs: 4}
	seen := make([]bool, f.n)
	for r := 0; r < f.rn; r++ {
		for c := 0; c < f.rn; c++ {
			i := f.idx(r, c)
			if i < 0 || i >= f.n || seen[i] {
				t.Fatalf("idx(%d,%d) = %d invalid or duplicate", r, c, i)
			}
			seen[i] = true
		}
	}
}

func TestPatchBandContiguous(t *testing.T) {
	// Processor i's patches (rows band) occupy one contiguous range.
	f := &FFT{n: 256, rn: 16, p: 4, bs: 4}
	for band := 0; band < f.p; band++ {
		lo, hi := f.n, 0
		for r := band * f.bs; r < (band+1)*f.bs; r++ {
			for c := 0; c < f.rn; c++ {
				i := f.idx(r, c)
				if i < lo {
					lo = i
				}
				if i >= hi {
					hi = i + 1
				}
			}
		}
		if hi-lo != f.rn*f.bs {
			t.Fatalf("band %d spans %d elements, want %d", band, hi-lo, f.rn*f.bs)
		}
	}
}
