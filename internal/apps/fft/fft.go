// Package fft implements the SPLASH-2 1-D radix-sqrt(n) six-step FFT
// kernel (Table 1: 1M points in the paper; scaled here).  The n complex
// points are viewed as a sqrt(n) x sqrt(n) matrix whose rows are
// block-distributed; as in SPLASH-2, the matrix is stored as p x p
// PATCHES, each (rn/p)^2 points contiguous, so each transpose step
// reads one whole contiguous patch from each other processor — the
// coarse-grained all-to-all that makes FFT bandwidth-bound (the reason
// the paper finds FFT still improves from B to B+ communication, and
// why SC wants its 4 KB granularity here).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const flopCycles = 2 // charged per floating-point operation (1 IPC core)

// FFT is one instance of the kernel.
type FFT struct {
	n  int // total complex points (rn*rn)
	rn int // matrix dimension
	bs int // patch edge (rn / procs), set at Setup
	p  int

	data  apps.F64 // interleaved complex, patch-blocked layout
	trans apps.F64 // transpose target
	input []complex128
}

// New builds the kernel at a scale.
func New(s apps.Scale) apps.Instance {
	n := 65536
	switch s {
	case apps.Tiny:
		n = 1024
	case apps.Large:
		n = 262144
	}
	rn := int(math.Round(math.Sqrt(float64(n))))
	if rn*rn != n {
		panic(fmt.Sprintf("fft: n=%d is not a perfect square", n))
	}
	return &FFT{n: n, rn: rn}
}

// Name implements apps.Instance.
func (f *FFT) Name() string { return "fft" }

// MemBytes implements apps.Instance.
func (f *FFT) MemBytes() int64 { return int64(f.n)*16*2 + 1<<20 }

// SCBlock implements apps.Instance: FFT uses the coarse 4 KB granularity.
func (f *FFT) SCBlock() int { return 4096 }

// Restructured implements apps.Instance.
func (f *FFT) Restructured() bool { return false }

// idx maps matrix coordinates (r, c) to the patch-blocked element index
// (SPLASH-2 layout: processor i's patches (i, 0..p-1) are contiguous).
func (f *FFT) idx(r, c int) int {
	// idx runs once or twice per element access, and bs is a power of
	// two in every standard configuration: shifts and masks replace the
	// four hardware divides, which dominated the kernel's simulation
	// cost.  The three fields occupy disjoint bit ranges, so | equals +.
	if bs := f.bs; bs&(bs-1) == 0 {
		l := uint(bits.TrailingZeros(uint(bs)))
		mask := bs - 1
		return (r>>l*f.p+c>>l)<<(2*l) | (r&mask)<<l | (c & mask)
	}
	pi, pj := r/f.bs, c/f.bs
	return (pi*f.p+pj)*f.bs*f.bs + (r%f.bs)*f.bs + (c % f.bs)
}

// Setup allocates the matrices, distributes patch bands, and fills the
// input with a deterministic pseudo-random signal.
func (f *FFT) Setup(m *core.Machine) {
	p := m.Cfg.Procs
	if f.rn%p != 0 {
		panic(fmt.Sprintf("fft: processor count %d must divide sqrt(n)=%d", p, f.rn))
	}
	f.p = p
	f.bs = f.rn / p
	f.data = apps.F64{Base: m.AllocPage(int64(f.n) * 16)}
	f.trans = apps.F64{Base: m.AllocPage(int64(f.n) * 16)}
	bandBytes := int64(f.rn*f.bs) * 16 // one processor's p patches
	for id := 0; id < p; id++ {
		m.Place(f.data.Base+int64(id)*bandBytes, bandBytes, id)
		m.Place(f.trans.Base+int64(id)*bandBytes, bandBytes, id)
	}
	r := rand.New(rand.NewSource(42))
	f.input = make([]complex128, f.n)
	for i := 0; i < f.n; i++ {
		re, im := r.Float64()-0.5, r.Float64()-0.5
		f.input[i] = complex(re, im)
	}
	for rr := 0; rr < f.rn; rr++ {
		for c := 0; c < f.rn; c++ {
			v := f.input[rr*f.rn+c]
			f.data.Init(m, 2*f.idx(rr, c), real(v))
			f.data.Init(m, 2*f.idx(rr, c)+1, imag(v))
		}
	}
}

// Run implements the six-step algorithm.
func (f *FFT) Run(t *core.Thread) {
	p := t.NumProcs()
	lo, hi := apps.BlockRange(f.rn, p, t.Proc())

	f.transpose(t, f.data, f.trans, lo, hi)
	t.Barrier(0)
	f.rowFFTs(t, f.trans, lo, hi, false)
	t.Barrier(1)
	f.twiddle(t, f.trans, lo, hi)
	t.Barrier(2)
	f.transpose(t, f.trans, f.data, lo, hi)
	t.Barrier(3)
	f.rowFFTs(t, f.data, lo, hi, false)
	t.Barrier(4)
	f.transpose(t, f.data, f.trans, lo, hi)
	t.Barrier(5)
}

// transpose writes rows [lo,hi) of dst from the corresponding columns of
// src: patch by patch, each a contiguous remote read from one processor.
func (f *FFT) transpose(t *core.Thread, src, dst apps.F64, lo, hi int) {
	for r := lo; r < hi; r++ {
		for c := 0; c < f.rn; c++ {
			re := src.Get(t, 2*f.idx(c, r))
			im := src.Get(t, 2*f.idx(c, r)+1)
			dst.Set(t, 2*f.idx(r, c), re)
			dst.Set(t, 2*f.idx(r, c)+1, im)
		}
		// Index arithmetic and loop control, ~10 instructions/element.
		t.Compute(int64(f.rn) * 10)
	}
}

// rowFFTs runs an in-place iterative radix-2 FFT on each owned row.
func (f *FFT) rowFFTs(t *core.Thread, a apps.F64, lo, hi int, inverse bool) {
	buf := make([]complex128, f.rn)
	for r := lo; r < hi; r++ {
		for c := 0; c < f.rn; c++ {
			buf[c] = complex(a.Get(t, 2*f.idx(r, c)), a.Get(t, 2*f.idx(r, c)+1))
		}
		fftInPlace(buf, inverse)
		// log2(rn) stages x rn/2 butterflies x ~10 flops.
		stages := int64(math.Log2(float64(f.rn)))
		t.Compute(stages * int64(f.rn/2) * 10 * flopCycles)
		for c := 0; c < f.rn; c++ {
			a.Set(t, 2*f.idx(r, c), real(buf[c]))
			a.Set(t, 2*f.idx(r, c)+1, imag(buf[c]))
		}
	}
}

// twiddle multiplies element (r,c) by W^(r*c).
func (f *FFT) twiddle(t *core.Thread, a apps.F64, lo, hi int) {
	for r := lo; r < hi; r++ {
		for c := 0; c < f.rn; c++ {
			i := 2 * f.idx(r, c)
			v := complex(a.Get(t, i), a.Get(t, i+1))
			v *= twiddleFactor(r*c, f.n)
			a.Set(t, i, real(v))
			a.Set(t, i+1, imag(v))
		}
		t.Compute(int64(f.rn) * 8 * flopCycles)
	}
}

func twiddleFactor(k, n int) complex128 {
	ang := -2 * math.Pi * float64(k) / float64(n)
	return complex(math.Cos(ang), math.Sin(ang))
}

// fftInPlace is a standard iterative radix-2 Cooley-Tukey FFT.
func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		for i := range a {
			a[i] /= complex(float64(n), 0)
		}
	}
}

// sixStepReference computes the same six-step FFT sequentially.
func (f *FFT) sixStepReference() []complex128 {
	rn, n := f.rn, f.n
	cur := make([]complex128, n)
	copy(cur, f.input)
	tmp := make([]complex128, n)
	transposeRef := func(src, dst []complex128) {
		for r := 0; r < rn; r++ {
			for c := 0; c < rn; c++ {
				dst[r*rn+c] = src[c*rn+r]
			}
		}
	}
	transposeRef(cur, tmp)
	for r := 0; r < rn; r++ {
		fftInPlace(tmp[r*rn:(r+1)*rn], false)
	}
	for r := 0; r < rn; r++ {
		for c := 0; c < rn; c++ {
			tmp[r*rn+c] *= twiddleFactor(r*c, n)
		}
	}
	transposeRef(tmp, cur)
	for r := 0; r < rn; r++ {
		fftInPlace(cur[r*rn:(r+1)*rn], false)
	}
	transposeRef(cur, tmp)
	return tmp
}

// Verify compares the parallel result against the sequential six-step
// reference.
func (f *FFT) Verify(m *core.Machine) error {
	want := f.sixStepReference()
	for r := 0; r < f.rn; r++ {
		for c := 0; c < f.rn; c++ {
			i := r*f.rn + c
			gotRe := f.trans.Result(m, 2*f.idx(r, c))
			gotIm := f.trans.Result(m, 2*f.idx(r, c)+1)
			if math.Abs(gotRe-real(want[i])) > 1e-9 || math.Abs(gotIm-imag(want[i])) > 1e-9 {
				return fmt.Errorf("fft: element %d = (%g,%g), want (%g,%g)",
					i, gotRe, gotIm, real(want[i]), imag(want[i]))
			}
		}
	}
	return nil
}

var _ apps.Instance = (*FFT)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "fft", BaseSize: "64K points", PaperSize: "1M points",
		InstrumentationPct: 29, Factory: New,
	})
}
