package apps_test

import (
	"testing"

	"swsm/internal/apps"
	"swsm/internal/comm"
	"swsm/internal/core"
	"swsm/internal/proto"
	"swsm/internal/proto/ideal"
	"swsm/internal/stats"
)

func idealMachine(procs int) *core.Machine {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.MemLimit = 8 << 20
	cfg.Comm = comm.Best()
	cfg.Costs = proto.BestCosts()
	cfg.SharedMem = true
	cfg.CacheEnabled = false
	return core.NewMachine(cfg, ideal.New())
}

func TestTaskQueueDrainsExactlyOnce(t *testing.T) {
	const procs = 4
	const nTasks = 57
	m := idealMachine(procs)
	q := apps.NewTaskQueue(m, procs, nTasks, 500)
	// Uneven fill: all tasks on processor 0 (forces stealing).
	all := make([]int32, nTasks)
	for i := range all {
		all[i] = int32(i)
	}
	q.Fill(m, 0, all)

	var mu [procs][]int32
	_, err := m.Run(func(th *core.Thread) {
		for {
			task, ok := q.Next(th, th.Proc())
			if !ok {
				break
			}
			mu[th.Proc()] = append(mu[th.Proc()], task)
			th.Compute(100)
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for p := 0; p < procs; p++ {
		for _, task := range mu[p] {
			seen[task]++
		}
	}
	if len(seen) != nTasks {
		t.Fatalf("saw %d distinct tasks, want %d", len(seen), nTasks)
	}
	for task, n := range seen {
		if n != 1 {
			t.Fatalf("task %d executed %d times", task, n)
		}
	}
	if m.Stats.TotalCount(stats.TaskSteals) == 0 {
		t.Fatal("expected steals with all tasks on one queue")
	}
}

func TestTaskQueueBalancedNoSteals(t *testing.T) {
	const procs = 4
	m := idealMachine(procs)
	q := apps.NewTaskQueue(m, procs, 16, 500)
	for p := 0; p < procs; p++ {
		q.Fill(m, p, []int32{int32(p * 4), int32(p*4 + 1), int32(p*4 + 2), int32(p*4 + 3)})
	}
	_, err := m.Run(func(th *core.Thread) {
		for i := 0; i < 4; i++ {
			if _, ok := q.Next(th, th.Proc()); !ok {
				t.Errorf("proc %d queue dry after %d tasks", th.Proc(), i)
				break
			}
			th.Compute(100)
		}
		th.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.TotalCount(stats.TaskSteals); got != 0 {
		t.Fatalf("steals = %d, want 0 (balanced, equal-cost tasks)", got)
	}
}

func TestTaskQueueOverflowPanics(t *testing.T) {
	m := idealMachine(1)
	q := apps.NewTaskQueue(m, 1, 2, 500)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Fill(m, 0, []int32{1, 2, 3})
}
