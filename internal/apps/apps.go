// Package apps hosts the paper's application suite: the SPLASH-2
// programs of Table 1 plus the restructured-for-SVM variants of [the
// paper's reference 5], re-implemented against the simulated
// shared-address-space Thread API.  Every application is self-checking:
// it computes a real result through the coherence protocol, and Verify
// compares it against a sequential golden model, so protocol correctness
// is load-bearing for the whole suite.
package apps

import (
	"fmt"
	"sort"
	"sync"

	"swsm/internal/core"
)

// Instance is one configured application run.
type Instance interface {
	// Name is the registry key, e.g. "fft", "barnes-spatial".
	Name() string
	// MemBytes is the shared address space the instance needs.
	MemBytes() int64
	// Setup allocates and initializes shared data (before Run).
	Setup(m *core.Machine)
	// Run is the SPMD body executed by every thread.
	Run(t *core.Thread)
	// Verify checks the result against the golden model after Run.
	Verify(m *core.Machine) error
	// SCBlock is the best SC granularity for this application (Table 1
	// discussion: 64 B except FFT 4 KB, LU 2 KB, Ocean 1 KB).
	SCBlock() int
	// Restructured reports whether this is a restructured-for-SVM
	// variant.
	Restructured() bool
}

// Scale selects a problem size.
type Scale int

// Problem scales: Tiny keeps unit tests fast; Base is the default used
// by the figures; Large stresses the harness.
const (
	Tiny Scale = iota
	Base
	Large
)

// Factory builds an instance at a given scale.
type Factory func(s Scale) Instance

// Info describes a registered application for Table 1.
type Info struct {
	Name string
	// BaseSize is the problem-size description at Base scale.
	BaseSize string
	// PaperSize is the problem size the paper used.
	PaperSize string
	// InstrumentationPct is Shasta's software access-control
	// instrumentation cost from Table 1 (percent).
	InstrumentationPct int
	// RestructuredOf names the original this variant restructures ("" if
	// original).
	RestructuredOf string
	Factory        Factory
}

// The registry is mutex-guarded because litmus programs register
// lazily, from whatever goroutine first names a seed — including the
// parallel sweep runner's workers.  The static suite still registers
// from init(), before any concurrency exists.
var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register installs an application.
func Register(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("apps: duplicate registration %q", info.Name))
	}
	registry[info.Name] = info
}

// EnsureRegistered installs an application unless the name is already
// taken, atomically — the idempotent form lazy registrars (litmus
// seeds) need, where two racing callers of the same name are fine.
func EnsureRegistered(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[info.Name]; !ok {
		registry[info.Name] = info
	}
}

// Names lists registered applications, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the Info for name.
func Lookup(name string) (Info, error) {
	regMu.RLock()
	info, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return info, nil
}

// New builds an instance by name.
func New(name string, s Scale) (Instance, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.Factory(s), nil
}

// BlockRange computes the contiguous [lo,hi) slice of n items owned by
// processor id out of nproc (the standard SPMD decomposition).
func BlockRange(n, nproc, id int) (lo, hi int) {
	base := n / nproc
	rem := n % nproc
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
