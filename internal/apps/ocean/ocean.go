// Package ocean implements the Ocean kernel: iterative red-black
// Gauss-Seidel relaxation over a 2-D grid, the communication core of the
// SPLASH-2 Ocean simulation (Table 1: 514x514 in the paper; scaled).
//
// Two variants reproduce the paper's application-layer study:
//
//   - "ocean" (original, Ocean-Contiguous): processors own square
//     subgrids, each stored CONTIGUOUSLY (the SPLASH-2 4-D array
//     layout).  Row boundaries transfer as a few contiguous chunks, but
//     COLUMN boundaries are strided through the neighbour's subgrid —
//     little useful data per coherence unit, the paper's "message per
//     word of useful data" behaviour that makes Ocean-Contiguous
//     handler-bound (Table 4).
//   - "ocean-rowwise" (restructured): processors own strips of whole
//     rows, so all communication is contiguous boundary rows; the
//     message count collapses and coarse granularities win.
package ocean

import (
	"fmt"
	"math"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const flopCycles = 2

// Ocean is one instance of the kernel.
type Ocean struct {
	name    string
	rowwise bool
	n       int // interior dimension; grid is (n+2)^2
	iters   int

	// addrOf maps logical cell (i,j) -> simulated address, built by the
	// decomposition-aware allocator.
	addrOf []int64
	init   []float64
	procs  int
}

// New builds the original square-subgrid (contiguous partitions) variant.
func New(s apps.Scale) apps.Instance { return build(s, false) }

// NewRowwise builds the restructured row-strip variant.
func NewRowwise(s apps.Scale) apps.Instance { return build(s, true) }

func build(s apps.Scale, rowwise bool) *Ocean {
	n, iters := 192, 6
	switch s {
	case apps.Tiny:
		n, iters = 32, 4
	case apps.Large:
		n, iters = 256, 8
	}
	name := "ocean"
	if rowwise {
		name = "ocean-rowwise"
	}
	return &Ocean{name: name, rowwise: rowwise, n: n, iters: iters}
}

// Name implements apps.Instance.
func (o *Ocean) Name() string { return o.name }

// MemBytes implements apps.Instance.
func (o *Ocean) MemBytes() int64 {
	return int64(o.n+2)*int64(o.n+2)*8 + 40*4096 + 2<<20
}

// SCBlock implements apps.Instance: Ocean's best SC granularity is 1 KB.
func (o *Ocean) SCBlock() int { return 1024 }

// Restructured implements apps.Instance.
func (o *Ocean) Restructured() bool { return o.rowwise }

func (o *Ocean) addr(i, j int) int64 { return o.addrOf[i*(o.n+2)+j] }

// cellOwner maps a logical cell to its owning processor; boundary-ring
// cells belong with the nearest interior cell.
func (o *Ocean) cellOwner(i, j, p int) int {
	ii, jj := i-1, j-1
	if ii < 0 {
		ii = 0
	}
	if ii >= o.n {
		ii = o.n - 1
	}
	if jj < 0 {
		jj = 0
	}
	if jj >= o.n {
		jj = o.n - 1
	}
	if o.rowwise {
		return rowBand(ii, o.n, p)
	}
	pr, pc := squareDims(p)
	return rowBand(ii, o.n, pr)*pc + rowBand(jj, o.n, pc)
}

// Setup builds the decomposition-aware contiguous layout and boundary
// conditions.
func (o *Ocean) Setup(m *core.Machine) {
	o.procs = m.Cfg.Procs
	w := o.n + 2
	o.addrOf = make([]int64, w*w)
	// Allocate each processor's cells contiguously (SPLASH-2 4-D array):
	// iterate processors, then that processor's cells in row-major order.
	for p := 0; p < o.procs; p++ {
		count := 0
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				if o.cellOwner(i, j, o.procs) == p {
					count++
				}
			}
		}
		base := m.AllocPage(int64(count) * 8)
		m.Place(base, int64(count)*8, p)
		k := int64(0)
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				if o.cellOwner(i, j, o.procs) == p {
					o.addrOf[i*w+j] = base + k
					k += 8
				}
			}
		}
	}

	o.init = make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			var v float64
			switch {
			case i == 0:
				v = 1 + float64(j)*0.01 // warm north boundary
			case i == o.n+1:
				v = -1
			case j == 0 || j == o.n+1:
				v = 0.5
			default:
				v = 0
			}
			o.init[i*w+j] = v
			m.InitF64(o.addr(i, j), v)
		}
	}
}

// squareDims factors p into pr x pc with pr <= pc.
func squareDims(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for p%pr != 0 {
		pr--
	}
	return pr, p / pr
}

// rowBand returns which of the nb bands index i falls into.
func rowBand(i, n, nb int) int {
	for b := 0; b < nb; b++ {
		lo, hi := apps.BlockRange(n, nb, b)
		if i >= lo && i < hi {
			return b
		}
	}
	return nb - 1
}

// myRegion computes this processor's interior sub-rectangle
// [rlo,rhi) x [clo,chi) in interior coordinates (0..n).
func (o *Ocean) myRegion(id, p int) (rlo, rhi, clo, chi int) {
	if o.rowwise {
		rlo, rhi = apps.BlockRange(o.n, p, id)
		return rlo, rhi, 0, o.n
	}
	pr, pc := squareDims(p)
	ri, ci := id/pc, id%pc
	rlo, rhi = apps.BlockRange(o.n, pr, ri)
	clo, chi = apps.BlockRange(o.n, pc, ci)
	return rlo, rhi, clo, chi
}

// Run performs iters red-black relaxation sweeps.
func (o *Ocean) Run(t *core.Thread) {
	p := t.NumProcs()
	rlo, rhi, clo, chi := o.myRegion(t.Proc(), p)
	bar := 0
	for it := 0; it < o.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := rlo; i < rhi; i++ {
				gi := i + 1
				for j := clo; j < chi; j++ {
					gj := j + 1
					if (gi+gj)%2 != color {
						continue
					}
					up := t.LoadF64(o.addr(gi-1, gj))
					down := t.LoadF64(o.addr(gi+1, gj))
					left := t.LoadF64(o.addr(gi, gj-1))
					right := t.LoadF64(o.addr(gi, gj+1))
					t.StoreF64(o.addr(gi, gj), 0.25*(up+down+left+right))
				}
				// ~10 instructions of index arithmetic per updated cell.
				t.Compute(int64(chi-clo) / 2 * 10 * flopCycles)
			}
			t.Barrier(bar)
			bar ^= 1
		}
	}
}

// Verify compares against a sequential red-black reference (identical
// operation order => identical floating point).
func (o *Ocean) Verify(m *core.Machine) error {
	n := o.n
	w := n + 2
	g := make([]float64, w*w)
	copy(g, o.init)
	for it := 0; it < o.iters; it++ {
		for color := 0; color < 2; color++ {
			for gi := 1; gi <= n; gi++ {
				for gj := 1; gj <= n; gj++ {
					if (gi+gj)%2 != color {
						continue
					}
					g[gi*w+gj] = 0.25 * (g[(gi-1)*w+gj] + g[(gi+1)*w+gj] +
						g[gi*w+gj-1] + g[gi*w+gj+1])
				}
			}
		}
	}
	for gi := 1; gi <= n; gi++ {
		for gj := 1; gj <= n; gj++ {
			got := m.ReadResultF64(o.addr(gi, gj))
			want := g[gi*w+gj]
			if math.Abs(got-want) > 1e-12 {
				return fmt.Errorf("%s: cell (%d,%d) = %g, want %g", o.name, gi, gj, got, want)
			}
		}
	}
	return nil
}

var _ apps.Instance = (*Ocean)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "ocean", BaseSize: "192x192 grid, 6 sweeps", PaperSize: "514x514 grid",
		InstrumentationPct: 20, Factory: New,
	})
	apps.Register(apps.Info{
		Name: "ocean-rowwise", BaseSize: "192x192 grid, 6 sweeps", PaperSize: "514x514 grid",
		InstrumentationPct: 20, RestructuredOf: "ocean", Factory: NewRowwise,
	})
}
