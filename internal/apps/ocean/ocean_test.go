package ocean

import (
	"testing"

	"swsm/internal/apps"
)

func TestSquareDims(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}}
	for p, want := range cases {
		pr, pc := squareDims(p)
		if pr != want[0] || pc != want[1] {
			t.Fatalf("squareDims(%d) = %d,%d want %v", p, pr, pc, want)
		}
		if pr*pc != p {
			t.Fatalf("squareDims(%d) does not factor", p)
		}
	}
}

func TestRegionsPartitionInterior(t *testing.T) {
	for _, rowwise := range []bool{false, true} {
		o := build(apps.Tiny, rowwise)
		for _, p := range []int{1, 4, 8, 16} {
			covered := make([][]bool, o.n)
			for i := range covered {
				covered[i] = make([]bool, o.n)
			}
			for id := 0; id < p; id++ {
				rlo, rhi, clo, chi := o.myRegion(id, p)
				for i := rlo; i < rhi; i++ {
					for j := clo; j < chi; j++ {
						if covered[i][j] {
							t.Fatalf("cell (%d,%d) owned twice (p=%d rowwise=%v)", i, j, p, rowwise)
						}
						covered[i][j] = true
					}
				}
			}
			for i := 0; i < o.n; i++ {
				for j := 0; j < o.n; j++ {
					if !covered[i][j] {
						t.Fatalf("cell (%d,%d) unowned (p=%d rowwise=%v)", i, j, p, rowwise)
					}
				}
			}
		}
	}
}

func TestCellOwnerMatchesRegion(t *testing.T) {
	o := build(apps.Tiny, false)
	p := 4
	for id := 0; id < p; id++ {
		rlo, rhi, clo, chi := o.myRegion(id, p)
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				if got := o.cellOwner(i+1, j+1, p); got != id {
					t.Fatalf("cellOwner(%d,%d) = %d, region says %d", i+1, j+1, got, id)
				}
			}
		}
	}
}
