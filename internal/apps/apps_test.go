package apps

import (
	"testing"
	"testing/quick"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	f := func(n8, p8 uint8) bool {
		n, p := int(n8)%500, int(p8)%16+1
		covered := 0
		prevHi := 0
		for id := 0; id < p; id++ {
			lo, hi := BlockRange(n, p, id)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// No block may exceed another by more than one element.
	for _, n := range []int{1, 7, 16, 100, 1001} {
		for _, p := range []int{1, 3, 16} {
			min, max := n, 0
			for id := 0; id < p; id++ {
				lo, hi := BlockRange(n, p, id)
				if hi-lo < min {
					min = hi - lo
				}
				if hi-lo > max {
					max = hi - lo
				}
			}
			if max-min > 1 {
				t.Fatalf("n=%d p=%d: block sizes range %d..%d", n, p, min, max)
			}
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(Info{Name: "dup-test", Factory: nil})
	Register(Info{Name: "dup-test", Factory: nil})
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-app"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := New("no-such-app", Tiny); err == nil {
		t.Fatal("expected error")
	}
}

func TestArrayAddressing(t *testing.T) {
	f := F64{Base: 1000}
	if f.Addr(3) != 1024 {
		t.Fatalf("f64 addr = %d", f.Addr(3))
	}
	u := U32{Base: 1000}
	if u.Addr(3) != 1012 {
		t.Fatalf("u32 addr = %d", u.Addr(3))
	}
	i := I32{Base: 1000}
	if i.Addr(2) != 1008 {
		t.Fatalf("i32 addr = %d", i.Addr(2))
	}
}
